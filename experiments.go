package multimap

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/experiments"
)

// ExperimentConfig scopes a figure regeneration run.
type ExperimentConfig struct {
	// Disks to evaluate (default: the paper's two drives).
	Disks []DiskModel
	// Scale in (0,1] shrinks the datasets; 1 is paper size.
	Scale float64
	// Runs repeats randomized queries (the paper uses 15).
	Runs int
	// Seed fixes the random workload.
	Seed int64
	// Policy forces the drive-internal scheduling policy for every
	// query ("fifo", "sptf", "elevator"); empty keeps each mapping's
	// preferred policy — the paper's configuration.
	Policy string
	// ChunkCells bounds the streaming planner's per-chunk expansion;
	// 0 plans each query as one chunk.
	ChunkCells int64
	// Clients is the number of concurrent sessions in the "serve"
	// throughput experiment (default 4).
	Clients int
	// Queries is how many queries each "serve" client issues
	// (default 32).
	Queries int
	// CacheBlocks sizes the "serve" experiment's shared extent cache
	// in blocks (0 = cache off).
	CacheBlocks int64
	// WriteFraction in [0,1) is the share of each "serve" client's
	// operations that are update bursts submitted through the write
	// path (0 = read-only). Raising it shows the cache hit rate fall
	// as writes invalidate hot extents.
	WriteFraction float64
	// Shards is the maximum shard count of the "serve" experiment's
	// scaling ladder: rows at 1, 2, 4, ... shards up to this value
	// (0 or 1 = single shard only).
	Shards int
	// BatchWindow is the "serve" experiment's time-based admission
	// window per shard service (0 = admit immediately).
	BatchWindow time.Duration
	// Deadline, when positive, gives the "serve" experiment's client 0
	// a context.WithTimeout deadline per query; the table reports that
	// session's completed-query latency and the services' cancelled /
	// deadline-expired drop counts.
	Deadline time.Duration
	// DeadlineAging, when positive, turns on deadline/QoS-aware
	// admission on every shard service: urgent requests (explicit
	// deadline, or queued at least this long) are served ahead of, and
	// never coalesced with, bulk work.
	DeadlineAging time.Duration
	// WriteBack turns on write-back caching with group commit on every
	// service of the "serve" and "burst" experiments: writes are
	// absorbed into dirty extent buffers and committed as one SPTF
	// batch per flush. Compare a -writes run with and without it.
	WriteBack bool
	// WBWatermark and WBInterval tune the write-back flush triggers
	// (dirty-block watermark, oldest-dirty age); 0 keeps the engine
	// defaults. Ignored unless WriteBack is set.
	WBWatermark int64
	WBInterval  time.Duration
	// FairQuantum, when positive, turns on weighted-fair
	// (deficit-round-robin) admission on every service of the "burst"
	// experiment, with the benchmark's built-in 1:4:1
	// interactive:bulk:writer weights. 0 keeps fair sharing off —
	// admission bit-identical to the pre-QoS behavior.
	FairQuantum int64
	// QoSClasses overrides the class registry used with FairQuantum
	// (mmbench -qos). Empty keeps the burst experiment's built-in
	// interactive:1, bulk:4, writer:1 mix.
	QoSClasses []QoSClass
	// PipelineDepth, when positive, lets every shard service keep that
	// many dispatched disk batches in flight while scheduling the next
	// admission pass (mmbench -pipeline; see WithPipeline). 0 keeps
	// lockstep dispatch.
	PipelineDepth int
}

// ExperimentIDs lists the regenerable paper artifacts plus the two
// analysis tables from §4.3-§4.4 and the beyond-the-paper concurrent
// serving benchmarks ("serve", "burst", and the multi-tenant pool
// churn benchmark "tenants").
func ExperimentIDs() []string {
	return []string{"fig1a", "fig1b", "fig6a", "fig6b", "fig7a", "fig7b", "fig8", "eq5", "space", "serve", "burst", "tenants"}
}

// ExperimentTable is a printable experiment result.
type ExperimentTable = experiments.Table

// BurstResult is the burst benchmark's JSON-stable artifact: per-QoS-
// class host-latency percentiles (p50/p99, and p999 when the sample is
// large enough to support it) plus fair-share and group-commit
// evidence, under the "mmbench-burst/v2" schema (v1 artifacts still
// decode and validate).
type BurstResult = experiments.BurstResult

// BurstClass is one QoS class's row in a BurstResult: its registered
// fair-share weight, traffic volume, host-latency percentiles, and how
// many of its ops the weighted-fair scheduler deferred to a later
// admission pass.
type BurstClass = experiments.BurstClass

// RunBurst runs the closed-loop burst-traffic benchmark (experiment id
// "burst") and returns its table together with the structured result,
// for callers that persist the latency trajectory (mmbench -json).
func RunBurst(cfg ExperimentConfig) (*ExperimentTable, *BurstResult, error) {
	ic, err := cfg.internal()
	if err != nil {
		return nil, nil, err
	}
	return experiments.BurstTraffic(ic)
}

// ValidateBurstJSON checks raw JSON against its declared mmbench-burst
// schema version (v1 or v2): every required key present, all three QoS
// classes with traffic, and p50 ≤ p99 ≤ p999 (where present) per
// class. The CI bench-trajectory step runs it over every committed
// artifact.
func ValidateBurstJSON(data []byte) (*BurstResult, error) {
	return experiments.ValidateBurstJSON(data)
}

// internal translates the public config for the experiments package.
func (cfg ExperimentConfig) internal() (experiments.Config, error) {
	ic := experiments.Config{
		Scale: cfg.Scale, Runs: cfg.Runs, Seed: cfg.Seed,
		Policy: cfg.Policy, ChunkCells: cfg.ChunkCells,
		Clients: cfg.Clients, Queries: cfg.Queries, CacheBlocks: cfg.CacheBlocks,
		WriteFraction: cfg.WriteFraction,
		Shards:        cfg.Shards, BatchWindow: cfg.BatchWindow,
		Deadline: cfg.Deadline, DeadlineAging: cfg.DeadlineAging,
		WriteBack: cfg.WriteBack, WBWatermark: cfg.WBWatermark, WBInterval: cfg.WBInterval,
		FairQuantum:   cfg.FairQuantum,
		QoSClasses:    cfg.QoSClasses,
		PipelineDepth: cfg.PipelineDepth,
	}
	for _, m := range cfg.Disks {
		g, err := disk.ModelByName(string(m))
		if err != nil {
			return experiments.Config{}, err
		}
		ic.Disks = append(ic.Disks, g)
	}
	return ic, nil
}

// RunExperiment regenerates one of the paper's figures and returns its
// table. See ExperimentIDs for valid ids.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentTable, error) {
	ic, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	switch id {
	case "fig1a":
		return experiments.Fig1aSeekProfile(ic)
	case "fig1b", "adjacency":
		return experiments.Fig1bAdjacency(ic)
	case "fig6a":
		t, _, err := experiments.Fig6aBeams(ic)
		return t, err
	case "fig6b":
		t, _, err := experiments.Fig6bRanges(ic)
		return t, err
	case "fig7a":
		t, _, err := experiments.Fig7aQuakeBeams(ic)
		return t, err
	case "fig7b":
		t, _, err := experiments.Fig7bQuakeRanges(ic)
		return t, err
	case "fig8":
		t, _, err := experiments.Fig8OLAP(ic)
		return t, err
	case "eq5":
		return experiments.DimensionSupport(ic)
	case "space":
		return experiments.SpaceEfficiency(ic)
	case "serve":
		t, _, err := experiments.ServiceThroughput(ic)
		return t, err
	case "burst":
		t, _, err := experiments.BurstTraffic(ic)
		return t, err
	case "tenants":
		t, _, err := RunTenants(cfg)
		return t, err
	default:
		return nil, fmt.Errorf("multimap: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
}
