package multimap

import (
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/experiments"
)

// ExperimentConfig scopes a figure regeneration run.
type ExperimentConfig struct {
	// Disks to evaluate (default: the paper's two drives).
	Disks []DiskModel
	// Scale in (0,1] shrinks the datasets; 1 is paper size.
	Scale float64
	// Runs repeats randomized queries (the paper uses 15).
	Runs int
	// Seed fixes the random workload.
	Seed int64
	// Policy forces the drive-internal scheduling policy for every
	// query ("fifo", "sptf", "elevator"); empty keeps each mapping's
	// preferred policy — the paper's configuration.
	Policy string
	// ChunkCells bounds the streaming planner's per-chunk expansion;
	// 0 plans each query as one chunk.
	ChunkCells int64
	// Clients is the number of concurrent sessions in the "serve"
	// throughput experiment (default 4).
	Clients int
	// Queries is how many queries each "serve" client issues
	// (default 32).
	Queries int
	// CacheBlocks sizes the "serve" experiment's shared extent cache
	// in blocks (0 = cache off).
	CacheBlocks int64
	// WriteFraction in [0,1) is the share of each "serve" client's
	// operations that are update bursts submitted through the write
	// path (0 = read-only). Raising it shows the cache hit rate fall
	// as writes invalidate hot extents.
	WriteFraction float64
	// Shards is the maximum shard count of the "serve" experiment's
	// scaling ladder: rows at 1, 2, 4, ... shards up to this value
	// (0 or 1 = single shard only).
	Shards int
	// BatchWindow is the "serve" experiment's time-based admission
	// window per shard service (0 = admit immediately).
	BatchWindow time.Duration
	// Deadline, when positive, gives the "serve" experiment's client 0
	// a context.WithTimeout deadline per query; the table reports that
	// session's completed-query latency and the services' cancelled /
	// deadline-expired drop counts.
	Deadline time.Duration
	// DeadlineAging, when positive, turns on deadline/QoS-aware
	// admission on every shard service: urgent requests (explicit
	// deadline, or queued at least this long) are served ahead of, and
	// never coalesced with, bulk work.
	DeadlineAging time.Duration
}

// ExperimentIDs lists the regenerable paper artifacts plus the two
// analysis tables from §4.3-§4.4 and the beyond-the-paper concurrent
// serving benchmark ("serve").
func ExperimentIDs() []string {
	return []string{"fig1a", "fig1b", "fig6a", "fig6b", "fig7a", "fig7b", "fig8", "eq5", "space", "serve"}
}

// ExperimentTable is a printable experiment result.
type ExperimentTable = experiments.Table

// RunExperiment regenerates one of the paper's figures and returns its
// table. See ExperimentIDs for valid ids.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentTable, error) {
	ic := experiments.Config{
		Scale: cfg.Scale, Runs: cfg.Runs, Seed: cfg.Seed,
		Policy: cfg.Policy, ChunkCells: cfg.ChunkCells,
		Clients: cfg.Clients, Queries: cfg.Queries, CacheBlocks: cfg.CacheBlocks,
		WriteFraction: cfg.WriteFraction,
		Shards:        cfg.Shards, BatchWindow: cfg.BatchWindow,
		Deadline: cfg.Deadline, DeadlineAging: cfg.DeadlineAging,
	}
	for _, m := range cfg.Disks {
		g, err := disk.ModelByName(string(m))
		if err != nil {
			return nil, err
		}
		ic.Disks = append(ic.Disks, g)
	}
	switch id {
	case "fig1a":
		return experiments.Fig1aSeekProfile(ic)
	case "fig1b", "adjacency":
		return experiments.Fig1bAdjacency(ic)
	case "fig6a":
		t, _, err := experiments.Fig6aBeams(ic)
		return t, err
	case "fig6b":
		t, _, err := experiments.Fig6bRanges(ic)
		return t, err
	case "fig7a":
		t, _, err := experiments.Fig7aQuakeBeams(ic)
		return t, err
	case "fig7b":
		t, _, err := experiments.Fig7bQuakeRanges(ic)
		return t, err
	case "fig8":
		t, _, err := experiments.Fig8OLAP(ic)
		return t, err
	case "eq5":
		return experiments.DimensionSupport(ic)
	case "space":
		return experiments.SpaceEfficiency(ic)
	case "serve":
		t, _, err := experiments.ServiceThroughput(ic)
		return t, err
	default:
		return nil, fmt.Errorf("multimap: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
}
