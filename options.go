package multimap

import (
	"fmt"
	"time"

	"repro/internal/engine"
)

// Option configures Open. Options replace the old StoreOptions /
// UpdateOptions / ServiceOptions struct triplet with one composable
// list; every knob validates when Open applies it, so a bad value
// fails the open instead of being silently clamped.
type Option func(*config) error

// config is the resolved option set behind Open.
type config struct {
	diskIdx       int
	cellBlocks    int
	policy        string
	chunkCells    int64
	cacheBlocks   int64
	maxInflight   int
	shards        int
	batchWindow   time.Duration
	deadlineAging time.Duration
	writeBack     bool
	wbWatermark   int64
	wbInterval    time.Duration
	fairQuantum   int64
	pipeline      int
	classes       []engine.QoSClass
	qosClass      string
	updatable     bool
	update        UpdateOptions

	// Pool-only state. poolOpen marks a config assembled by Pool.Create;
	// the two pool-only options below validate against it, so plain Open
	// rejects them. provision carries the pre-built thin shard volumes
	// (index 0 included) Create allocated from the pool, replacing the
	// NewLike loop.
	poolOpen  bool
	provision []*Volume
	capacity  int64
	drives    []int
}

func defaultConfig() config {
	return config{diskIdx: 0, maxInflight: 1, shards: 1}
}

// WithDiskIdx pins the dataset to one member drive. -1 lets MultiMap
// decluster basic cubes across drives (§4.4); linear mappings treat -1
// as drive 0. The default is drive 0.
func WithDiskIdx(idx int) Option {
	return func(c *config) error {
		if idx < -1 {
			return fmt.Errorf("multimap: disk index %d must be -1 (decluster) or a drive index", idx)
		}
		c.diskIdx = idx
		return nil
	}
}

// WithCellBlocks sets the cell size in blocks (default 1) — §4's "a
// single cell can occupy multiple LBNs".
func WithCellBlocks(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("multimap: cell blocks must be non-negative")
		}
		c.cellBlocks = n
		return nil
	}
}

// WithPolicy forces the drive-internal scheduling policy for every
// query ("fifo", "sptf", "elevator"); the default keeps each mapping's
// preferred policy (§5.2). Use it for scheduler comparison runs.
func WithPolicy(name string) Option {
	return func(c *config) error {
		c.policy = name
		return nil
	}
}

// WithChunkCells bounds how many cells the streaming planner expands
// per dispatch chunk; 0 (the default) plans each query as one chunk.
// Chunking bounds planner memory on huge ranges at the cost of sorting
// per chunk instead of globally.
func WithChunkCells(n int64) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("multimap: chunk cells must be non-negative")
		}
		c.chunkCells = n
		return nil
	}
}

// WithCache sizes the volume's shared extent cache in blocks. The
// cache is a service-level resource: it starts off, a positive value
// reconfigures it for every store sharing the volume, and 0 leaves the
// volume's current cache configuration unchanged. Overlapping queries
// skip re-simulated I/O (Stats.CacheHits).
func WithCache(blocks int64) Option {
	return func(c *config) error {
		if blocks < 0 {
			return fmt.Errorf("multimap: CacheBlocks must be non-negative")
		}
		c.cacheBlocks = blocks
		return nil
	}
}

// WithMaxInflight sets how many plan chunks each of this store's
// sessions keeps outstanding in the service at once (default 1). Even
// at 1 the planner is pipelined — chunk N+1 is planned while chunk N
// is on the disks; higher values also let one query's chunks share
// admission batches. Values below 1 select the default.
func WithMaxInflight(n int) Option {
	return func(c *config) error {
		if n < 1 {
			n = 1
		}
		c.maxInflight = n
		return nil
	}
}

// WithShards spreads the dataset across this many independent shard
// volumes, each with its own query-service loop, head state, and
// extent cache. The grid is partitioned along Dim0 into slabs aligned
// to MultiMap's basic-cube boundaries; shard 0 lives on the volume
// passed to Open and shards 1..N-1 on internally created volumes
// mirroring its hardware (release them with Store.Close). Queries
// scatter-gather: each box is split by owning shard, served by all
// shard services concurrently, and the per-shard Stats merge by
// summation. 0 and 1 both mean a single shard on the caller's volume.
func WithShards(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("multimap: Shards must be non-negative")
		}
		if n < 1 {
			n = 1
		}
		c.shards = n
		return nil
	}
}

// WithBatchWindow sets the time-based admission window of every shard
// service this store uses: when positive, the service loop waits the
// window out after noticing queued work before admitting it as one
// batch, so bursty concurrent clients coalesce better. Like WithCache
// it reconfigures the (possibly shared) volume service; 0 leaves the
// service's current window unchanged (default: admit immediately). A
// queued request's context deadline shortens the wait, so the window
// never expires a request by itself.
func WithBatchWindow(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("multimap: BatchWindow must be non-negative")
		}
		c.batchWindow = d
		return nil
	}
}

// WithDeadlineAging turns on deadline/QoS-aware admission for every
// shard service this store uses. When positive, each admission pass
// serves urgent requests — those whose context carries a deadline, and
// those queued for at least the aging duration — first, as their own
// batch ordered by effective deadline, never coalesced with the
// pass's bulk. An urgent or old request is therefore delayed by
// coalescing for at most one batch of similarly urgent peers, which is
// how a session under context.WithDeadline gets latency ahead of big
// concurrent batch work. Like WithCache this reconfigures the
// (possibly shared) volume service; 0 leaves the service's current
// setting unchanged (default: off — admission stays in submission
// order, bit-identical to the pre-QoS behavior).
func WithDeadlineAging(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("multimap: DeadlineAging must be non-negative")
		}
		c.deadlineAging = d
		return nil
	}
}

// WithWriteBack turns on write-back caching with group commit for
// every shard service this store uses: Insert/Delete write ops are
// absorbed into a per-service dirty buffer (repeated writes to the
// same extent coalesce) and committed later as ONE SPTF-scheduled
// batch — amortizing disk positioning across adjacent writes the way
// the paper's batching amortizes it across reads. A flush happens when
// the buffer reaches watermarkBlocks, when the oldest dirty extent has
// been buffered for flushInterval, when a read overlaps dirty data
// (reads never observe pre-write disk state), on Store.Flush /
// Session.Flush, and on close. Zero values select the engine defaults;
// negative values fail the open. Cache coherence is unchanged —
// buffered writes still invalidate overlapping cached extents
// immediately. Like WithCache this reconfigures the (possibly shared)
// volume service; omitting the option leaves the service's current
// write-back setting unchanged (default: off, bit-identical to the
// write-through path).
func WithWriteBack(watermarkBlocks int64, flushInterval time.Duration) Option {
	return func(c *config) error {
		if watermarkBlocks < 0 {
			return fmt.Errorf("multimap: write-back watermark must be non-negative")
		}
		if flushInterval < 0 {
			return fmt.Errorf("multimap: write-back flush interval must be non-negative")
		}
		c.writeBack = true
		c.wbWatermark = watermarkBlocks
		c.wbInterval = flushInterval
		return nil
	}
}

// WithQoSClass registers a QoS class on every shard service this store
// uses: name is the label sessions declare (see WithQoS / BeginQoS),
// weight is the class's share of each weighted-fair admission pass
// (values below 1 are treated as 1), and urgent marks a
// strict-priority class whose ops always join the urgent front batch,
// ahead of all weighted sharing, exactly as if each carried an
// explicit context deadline. Registered weights also set the extent
// cache's per-class reserve floors (capacity × weight / Σweights).
// The registration only takes effect together with WithFairShare;
// sessions of unregistered classes get weight 1 and no cache reserve.
func WithQoSClass(name string, weight int, urgent bool) Option {
	return func(c *config) error {
		if weight < 1 {
			return fmt.Errorf("multimap: QoS class %q weight must be at least 1", name)
		}
		for _, cl := range c.classes {
			if cl.Name == name {
				return fmt.Errorf("multimap: QoS class %q registered twice", name)
			}
		}
		c.classes = append(c.classes, engine.QoSClass{Name: name, Weight: weight, Urgent: urgent})
		return nil
	}
}

// WithFairShare turns on weighted-fair (deficit-round-robin) admission
// for every shard service this store uses. Each admission pass grants
// every backlogged QoS class quantum × weight blocks of credit,
// admits each class's ops FIFO while the credit covers their
// simulated block cost, and defers the rest to later passes — so one
// class's bulk burst can no longer monopolize an admission pass, while
// urgent work (an explicit context deadline, a WithQoSClass urgent
// class, or an op aged past WithDeadlineAging) keeps strict priority.
// The same class weights partition the extent cache into per-class
// reserve floors with borrow-but-evict-borrowers-first semantics.
// quantum 0 selects the engine default (engine.DefaultFairQuantum);
// negative fails the open. Like WithCache this reconfigures the
// (possibly shared) volume service; omitting the option leaves fair
// sharing off — admission bit-identical to the pre-QoS behavior.
func WithFairShare(quantum int64) Option {
	return func(c *config) error {
		if quantum < 0 {
			return fmt.Errorf("multimap: fair-share quantum must be non-negative")
		}
		if quantum == 0 {
			quantum = engine.DefaultFairQuantum
		}
		c.fairQuantum = quantum
		return nil
	}
}

// WithPipeline lets every shard service this store uses keep up to
// depth dispatched disk batches in flight while its loop schedules the
// next admission pass — admission, scheduling (QoS, coalescing, cache,
// write-back), dispatch, and completion attribution run as overlapping
// pipeline stages with per-disk completion queues instead of the
// lockstep schedule-then-wait loop. Simulated Stats are unchanged (the
// simulated clock is per-drive either way); what the depth buys is
// host throughput when clients are concurrent. Coherence is preserved
// at every depth: reads overlapping an in-flight batch's cache inserts
// stall until it retires, writes drain or barrier per the service's
// write mode, and cancellation drops undispatched work at zero cost.
// 0 (the default) keeps lockstep dispatch, bit-identical to the
// pre-pipeline behavior; negative depths fail the open. Like WithCache
// this reconfigures the (possibly shared) volume service.
func WithPipeline(depth int) Option {
	return func(c *config) error {
		if depth < 0 {
			return fmt.Errorf("multimap: pipeline depth must be non-negative")
		}
		c.pipeline = depth
		return nil
	}
}

// WithQoS sets the QoS class of the store's default session — the one
// behind the Store-level operations and plain Begin. Use BeginQoS for
// per-session classes. The class should be registered with
// WithQoSClass when fair sharing is on.
func WithQoS(class string) Option {
	return func(c *config) error {
		c.qosClass = class
		return nil
	}
}

// WithCapacity sets a tenant's initial thin-provisioned capacity in
// blocks, split evenly across its shard volumes. 0 (the default) sizes
// the volumes automatically from the dataset shape, growing and
// retrying until the mapping fits. Valid only inside Pool.Create —
// plain Open has no allocator and rejects it.
func WithCapacity(blocks int64) Option {
	return func(c *config) error {
		if !c.poolOpen {
			return fmt.Errorf("multimap: WithCapacity applies only to Pool.Create")
		}
		if blocks < 0 {
			return fmt.Errorf("multimap: capacity must be non-negative")
		}
		c.capacity = blocks
		return nil
	}
}

// WithDrives restricts a tenant's extent allocation to the given pool
// drive indices (shard i prefers drive i mod len(idx), spilling to the
// others in the list before failing). The default allows every pool
// drive. Valid only inside Pool.Create — plain Open has no allocator
// and rejects it.
func WithDrives(idx ...int) Option {
	return func(c *config) error {
		if !c.poolOpen {
			return fmt.Errorf("multimap: WithDrives applies only to Pool.Create")
		}
		if len(idx) == 0 {
			return fmt.Errorf("multimap: WithDrives needs at least one drive index")
		}
		c.drives = append([]int(nil), idx...)
		return nil
	}
}

// Updatable enables the paper's online-update support (§4.6) on the
// store: cells are loaded at a tunable fill factor, inserts that
// overflow a cell go to overflow pages, and underflowing chains are
// reorganized. Sessions of an updatable store serve Insert, Delete,
// and LoadCell alongside the query operations; without this option
// those methods fail with ErrNotUpdatable. The UpdateOptions value
// tunes §4.6 behaviour (zero value selects every default).
func Updatable(opts UpdateOptions) Option {
	return func(c *config) error {
		c.updatable = true
		c.update = opts
		return nil
	}
}
