// Command mminspect prints a simulated drive's geometry, seek curve,
// zone map, and the adjacency list of a given LBN — the low-level facts
// MultiMap's mapping is built on.
//
// Usage:
//
//	mminspect -model atlas10k3
//	mminspect -model cheetah36es -lbn 1000000 -d 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/disk"
)

func main() {
	var (
		model = flag.String("model", "atlas10k3", "disk model; available: "+strings.Join(disk.ModelNames(), ", "))
		lbn   = flag.Int64("lbn", -1, "print the adjacency list of this LBN")
		depth = flag.Int("d", 8, "adjacency depth to print with -lbn")
	)
	flag.Parse()

	g, err := disk.ModelByName(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mminspect:", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", g.Name)
	fmt.Printf("  capacity:     %d blocks (%.1f GB)\n", g.TotalBlocks(), float64(g.TotalBlocks())*512/1e9)
	fmt.Printf("  cylinders:    %d, surfaces: %d, tracks: %d\n", g.Cylinders(), g.Surfaces, g.TotalTracks())
	fmt.Printf("  rotation:     %.2f ms (%d RPM)\n", g.RotationMs(), g.RPM)
	fmt.Printf("  settle:       %.2f ms over %d cylinders -> adjacency span D <= %d\n",
		g.SettleMs, g.SettleCyls, g.AdjSpan())
	fmt.Printf("  head switch:  %.2f ms, command overhead: %.2f ms\n", g.HeadSwitchMs, g.CommandMs)
	fmt.Printf("  seek:         avg %.2f ms, full stroke %.2f ms\n", g.SeekAvgMs, g.SeekMaxMs)

	fmt.Println("  zones:")
	for i := 0; i < g.NumZones(); i++ {
		z := g.ZoneByIndex(i)
		fmt.Printf("    zone %2d: cyls %6d-%6d  T=%d sectors/track  skew %d/%d  start LBN %d\n",
			i, z.StartCyl, z.EndCyl, z.SectorsPerTrack, z.TrackSkew, z.CylSkew, z.StartLBN())
	}

	fmt.Println("  seek curve (ms by cylinder distance):")
	for _, d := range []int{1, 2, 4, 8, 16, 32, 64, 256, 1024, 4096, g.Cylinders() / 3, g.Cylinders() - 1} {
		if d < g.Cylinders() {
			fmt.Printf("    %7d: %6.2f\n", d, g.SeekTimeMs(d))
		}
	}

	if *lbn >= 0 {
		p, err := g.Decode(*lbn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mminspect:", err)
			os.Exit(1)
		}
		start, next, _ := g.TrackBoundaries(*lbn)
		fmt.Printf("\nLBN %d -> %v (track LBNs [%d,%d), T=%d)\n", *lbn, p, start, next, g.TrackLen(*lbn))
		fmt.Printf("  adjacency offset: %d sectors\n", g.AdjOffsetSectors(*lbn))
		adjs, err := g.Adjacent(*lbn, *depth)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mminspect:", err)
			os.Exit(1)
		}
		for i, a := range adjs {
			pa, _ := g.Decode(a)
			fmt.Printf("  adj %3d: LBN %12d  %v\n", i+1, a, pa)
		}
	}
}
