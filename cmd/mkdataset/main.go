// Command mkdataset builds the paper's three evaluation datasets and
// prints their structure: the synthetic 3-D grid chunking (§5.3), the
// earthquake octree's uniform-region decomposition (§5.4), and the
// TPC-H OLAP cube (§5.5).
//
// Usage:
//
//	mkdataset -which synthetic -scale 1
//	mkdataset -which quake -depth 7
//	mkdataset -which olap -rows 100000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dataset"
	"repro/internal/octree"
	"repro/internal/olap"
)

func main() {
	var (
		which = flag.String("which", "all", "dataset: synthetic, quake, olap, or all")
		scale = flag.Float64("scale", 1, "synthetic dataset scale in (0,1]")
		depth = flag.Int("depth", 6, "quake octree maximum depth (5..8)")
		rows  = flag.Int("rows", 200000, "TPC-H rows to generate for the OLAP cube")
		seed  = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "mkdataset: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("synthetic", func() error { return synthetic(*scale) })
	run("quake", func() error { return quake(*depth) })
	run("olap", func() error { return olapCube(*rows, *seed) })
}

func synthetic(scale float64) error {
	g, chunkSide, err := dataset.Synthetic3D(scale)
	if err != nil {
		return err
	}
	chunks, err := g.Chunks([]int{chunkSide, chunkSide, chunkSide})
	if err != nil {
		return err
	}
	fmt.Printf("synthetic 3-D grid: %v cells (%d total, %.1f GB at 512 B/cell)\n",
		g.Dims(), g.Cells(), float64(g.Cells())*512/1e9)
	fmt.Printf("  per-disk chunks of at most %d^3: %d chunks\n", chunkSide, len(chunks))
	fmt.Printf("  first chunk %v at %v, last chunk %v at %v\n",
		chunks[0].Dims, chunks[0].Lo, chunks[len(chunks)-1].Dims, chunks[len(chunks)-1].Lo)
	return nil
}

func quake(depth int) error {
	tr, err := octree.NewQuakeTree(depth)
	if err != nil {
		return err
	}
	regions, rest := octree.GrowRegions(tr.UniformSubtrees(), tr.MaxDepth(), 64)
	rep := octree.Coverage(tr, regions, rest)
	fmt.Printf("earthquake octree: depth %d, domain %d^3 units, %d leaf elements\n",
		depth, tr.DomainSide(), tr.NumLeaves())
	fmt.Printf("  %s\n", rep)
	for i, r := range regions {
		fmt.Printf("  region %d: leaf depth %d, grid %v (%d elements)\n",
			i, r.LeafDepth, r.GridDims(), r.Leaves())
	}
	return nil
}

func olapCube(rows int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	items := olap.GenLineItems(rng, rows)
	cube, err := olap.BuildCube(items, olap.ChunkDims())
	if err != nil {
		return err
	}
	fmt.Printf("OLAP cube: full %v, per-disk chunk %v (%d cells)\n",
		olap.FullDims(), cube.Dims(), func() int64 {
			n := int64(1)
			for _, d := range cube.Dims() {
				n *= int64(d)
			}
			return n
		}())
	fmt.Printf("  aggregated %d TPC-H rows into the chunk\n", rows)
	qs, err := olap.Queries(rng, olap.ChunkDims())
	if err != nil {
		return err
	}
	for _, q := range qs {
		profit, err := cube.ProfitCents(q)
		if err != nil {
			return err
		}
		fmt.Printf("  %s (%s): %d cells, profit $%.2f\n", q.Name, q.Text, q.Cells(), float64(profit)/100)
	}
	return nil
}
