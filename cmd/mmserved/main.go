// Command mmserved is the multimap network daemon: it serves the
// session API over HTTP — open stores and pools, begin plain or QoS
// sessions, run beam/range/fetch/insert/delete/flush, stream range
// results chunk-by-chunk as NDJSON, and watch the live SSE
// event+metrics feed on /v1/events. See the repro/internal/server
// package documentation for the wire protocol.
//
// Usage:
//
//	mmserved -addr :8080
//	mmserved -addr 127.0.0.1:0 -open '{"name":"demo","disks":["atlas10k3"],
//	    "mapping":"multimap","dims":[64,4,4,4]}'
//
// -open takes an OpenStoreRequest JSON spec and may repeat; each spec
// is opened before the listener starts, so a readiness poll on
// /v1/stores sees the boot datasets. On SIGINT/SIGTERM the daemon
// stops accepting connections, drains in-flight requests (streamed
// queries retire or get cancelled by their clients), closes every
// session, store, and pool tenant, and exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

// specList collects repeated -open flags.
type specList []string

func (l *specList) String() string { return fmt.Sprintf("%d specs", len(*l)) }
func (l *specList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mmserved: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9117", "listen address (host:port; port 0 picks a free port)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		opens        specList
	)
	flag.Var(&opens, "open", "OpenStoreRequest JSON spec to open at boot (repeatable)")
	flag.Parse()
	if flag.NArg() > 0 {
		usageErr("unexpected arguments: %v", flag.Args())
	}
	if *drainTimeout <= 0 {
		usageErr("-drain-timeout must be positive, got %v", *drainTimeout)
	}

	srv := server.New()
	for _, raw := range opens {
		var req server.OpenStoreRequest
		if err := json.Unmarshal([]byte(raw), &req); err != nil {
			usageErr("bad -open spec %q: %v", raw, err)
		}
		info, err := srv.OpenStore(context.Background(), req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmserved: open %q: %v\n", req.Name, err)
			os.Exit(1)
		}
		fmt.Printf("opened store %s: mapping=%s dims=%v shards=%d\n",
			info.Name, info.Mapping, info.Dims, info.Shards)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmserved: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	fmt.Printf("mmserved listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		fmt.Printf("mmserved: %v, draining\n", sig)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "mmserved: serve: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain the front-end first: srv.Close wakes the SSE event streams
	// (they only end on its done signal), waits out in-flight requests,
	// and closes every session, store, and pool tenant. Only then stop
	// the listener — its connections are idle once the handlers return.
	if err := srv.Close(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mmserved: close: %v\n", err)
		os.Exit(1)
	}
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mmserved: shutdown: %v\n", err)
	}
	fmt.Println("mmserved: clean shutdown")
}
