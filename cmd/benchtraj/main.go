// Command benchtraj validates a persisted mmbench burst-latency
// trajectory (the BENCH_*.json artifacts the repo commits) against its
// declared mmbench-burst schema version: every required key present,
// all three QoS classes carrying traffic, and p50 ≤ p99 ≤ p999 (where
// present) per class. Given a sequence of artifacts — the committed
// trajectory in PR order — it additionally flags schema drift between
// consecutive points and prints a per-class p50/p99 delta table, so
// the latency trend across PRs is auditable at a glance. CI's
// bench-trajectory step runs it over every committed artifact plus a
// freshly generated one, so a schema break fails the build instead of
// silently breaking trend tooling.
//
// Usage:
//
//	benchtraj -check BENCH_6.json                # validate one artifact
//	benchtraj -check BENCH_6.json BENCH_7.json   # validate a sequence + delta table
package main

import (
	"flag"
	"fmt"
	"os"

	multimap "repro"
)

// point is one validated artifact of the trajectory.
type point struct {
	path string
	res  *multimap.BurstResult
}

func fmtP999(p *float64) string {
	if p == nil {
		return "-"
	}
	return fmt.Sprintf("%.3fms", *p)
}

// classOf finds the named class in an artifact, nil when absent.
func classOf(res *multimap.BurstResult, name string) *multimap.BurstClass {
	for i := range res.Classes {
		if res.Classes[i].Class == name {
			return &res.Classes[i]
		}
	}
	return nil
}

func main() {
	check := flag.String("check", "", "path of the first mmbench-burst JSON artifact to validate; further paths are positional, in trajectory order")
	flag.Parse()
	if *check == "" {
		fmt.Fprintln(os.Stderr, "benchtraj: usage: benchtraj -check <artifact.json> [more.json ...]")
		flag.Usage()
		os.Exit(2)
	}
	paths := append([]string{*check}, flag.Args()...)

	var traj []point
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
			os.Exit(1)
		}
		res, err := multimap.ValidateBurstJSON(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %s: %v\n", path, err)
			os.Exit(1)
		}
		traj = append(traj, point{path: path, res: res})

		wbMode := "off"
		if res.WriteBack {
			wbMode = "on"
		}
		qosMode := "off"
		if res.FairQuantum > 0 {
			qosMode = fmt.Sprintf("quantum %d", res.FairQuantum)
		}
		fmt.Printf("%s: ok (%s, write-back %s, QoS %s, %d flushes, %d coalesced)\n",
			path, res.Schema, wbMode, qosMode, res.FlushBatches, res.Coalesced)
		for _, c := range res.Classes {
			fmt.Printf("  %-11s  %5d ops  p50 %.3fms  p99 %.3fms  p999 %s  sim %.3fms/op\n",
				c.Class, c.Ops, c.P50Ms, c.P99Ms, fmtP999(c.P999Ms), c.MeanSimMs)
		}
	}

	if len(traj) < 2 {
		return
	}

	// Trajectory view: schema drift between consecutive points is
	// expected exactly when the schema version was bumped — flag it so
	// an accidental drift (or a missing migration note) is visible; and
	// the per-class p50/p99 deltas tell whether a PR moved the tail.
	fmt.Printf("\ntrajectory (%d points):\n", len(traj))
	for i := 1; i < len(traj); i++ {
		prev, cur := traj[i-1], traj[i]
		if prev.res.Schema != cur.res.Schema {
			fmt.Printf("  schema drift: %s (%s) -> %s (%s)\n",
				prev.path, prev.res.Schema, cur.path, cur.res.Schema)
		}
	}
	fmt.Printf("  %-30s %-11s %12s %12s %12s %12s\n",
		"step", "class", "p50", "Δp50", "p99", "Δp99")
	for i := 1; i < len(traj); i++ {
		prev, cur := traj[i-1], traj[i]
		step := fmt.Sprintf("%s -> %s", prev.path, cur.path)
		for _, c := range cur.res.Classes {
			pc := classOf(prev.res, c.Class)
			if pc == nil {
				fmt.Printf("  %-30s %-11s %12s %12s %12s %12s\n",
					step, c.Class, fmt.Sprintf("%.3fms", c.P50Ms), "new",
					fmt.Sprintf("%.3fms", c.P99Ms), "new")
				continue
			}
			fmt.Printf("  %-30s %-11s %12s %+11.3fms %12s %+11.3fms\n",
				step, c.Class,
				fmt.Sprintf("%.3fms", c.P50Ms), c.P50Ms-pc.P50Ms,
				fmt.Sprintf("%.3fms", c.P99Ms), c.P99Ms-pc.P99Ms)
			step = ""
		}
	}
}
