// Command benchtraj validates a persisted mmbench burst-latency
// trajectory (the BENCH_*.json artifacts the repo commits) against the
// mmbench-burst/v1 schema: every key present, all three QoS classes
// carrying traffic, and p50 ≤ p99 ≤ p999 per class. CI's
// bench-trajectory step runs it over a freshly generated artifact and
// over the committed one, so a schema drift fails the build instead of
// silently breaking trend tooling.
//
// Usage:
//
//	benchtraj -check BENCH_6.json
package main

import (
	"flag"
	"fmt"
	"os"

	multimap "repro"
)

func main() {
	check := flag.String("check", "", "path of the mmbench-burst/v1 JSON artifact to validate")
	flag.Parse()
	if *check == "" || flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "benchtraj: usage: benchtraj -check <artifact.json>")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
		os.Exit(1)
	}
	res, err := multimap.ValidateBurstJSON(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtraj: %s: %v\n", *check, err)
		os.Exit(1)
	}
	wbMode := "off"
	if res.WriteBack {
		wbMode = "on"
	}
	fmt.Printf("%s: ok (%s, write-back %s, %d flushes, %d coalesced)\n",
		*check, res.Schema, wbMode, res.FlushBatches, res.Coalesced)
	for _, c := range res.Classes {
		fmt.Printf("  %-11s  p50 %.3fms  p99 %.3fms  p999 %.3fms  sim %.3fms/op\n",
			c.Class, c.P50Ms, c.P99Ms, c.P999Ms, c.MeanSimMs)
	}
}
