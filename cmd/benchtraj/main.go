// Command benchtraj validates a persisted mmbench trajectory artifact
// (the BENCH_*.json files the repo commits) against its declared
// schema, dispatching on the artifact's top-level "schema" key:
// mmbench-burst/v1, /v2, and /v3 artifacts get the burst checks (every
// required key present, all three QoS classes carrying traffic, and
// p50 ≤ p99 ≤ p999 where present per class), and mmbench-tenants/v1
// artifacts get the tenant-lifecycle checks (every phase present in
// order with traffic, online growth and copy-on-write evidence, live
// burst latency sane). Given a sequence of artifacts — the committed
// trajectory in PR order — it additionally flags schema drift between
// consecutive points of the same kind and prints per-class p50/p99
// delta tables plus a host-efficiency table (wall clock and, on v3
// points, allocs/op deltas), so both the latency trend and the host
// CPU trend across PRs are auditable at a glance. Schema drift within
// one artifact kind must move forward: a version regression between
// consecutive points of the same kind (a /v3 point followed by a /v2
// one) fails the check — trajectories only ever upgrade. CI's
// bench-trajectory step runs it over every committed artifact plus a
// freshly generated one, so a schema break fails the build instead of
// silently breaking trend tooling.
//
// Usage:
//
//	benchtraj -check BENCH_6.json                # validate one artifact
//	benchtraj -check BENCH_6.json BENCH_8.json   # validate a sequence + delta tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	multimap "repro"
)

// point is one validated artifact of the trajectory.
type point struct {
	path    string
	res     *multimap.BurstResult   // nil for tenants artifacts
	tenants *multimap.TenantsResult // nil for burst artifacts
}

func fmtP999(p *float64) string {
	if p == nil {
		return "-"
	}
	return fmt.Sprintf("%.3fms", *p)
}

// classOf finds the named class in an artifact, nil when absent.
func classOf(res *multimap.BurstResult, name string) *multimap.BurstClass {
	for i := range res.Classes {
		if res.Classes[i].Class == name {
			return &res.Classes[i]
		}
	}
	return nil
}

// schemaOf peeks at the artifact's declared schema so validation can
// dispatch without trial-decoding every known shape.
func schemaOf(data []byte) (string, error) {
	var top struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &top); err != nil {
		return "", fmt.Errorf("not a JSON object: %w", err)
	}
	return top.Schema, nil
}

// schemaVersion parses the trailing "/vN" of a schema tag. Every
// schema the validators accept carries one, so a missing suffix on a
// validated artifact is a programming error, reported as version 0.
func schemaVersion(schema string) int {
	i := strings.LastIndex(schema, "/v")
	if i < 0 {
		return 0
	}
	var n int
	if _, err := fmt.Sscanf(schema[i+2:], "%d", &n); err != nil {
		return 0
	}
	return n
}

// checkNoRegression fails the run when consecutive points of one
// artifact kind step the schema version backwards: the committed
// trajectory (and the fresh CI point appended to it) only ever
// upgrades, so a regression means a tool was rebuilt against an old
// schema or an artifact was overwritten with stale output.
func checkNoRegression(kind string, pts []point, schema func(point) string) {
	for i := 1; i < len(pts); i++ {
		prev, cur := schema(pts[i-1]), schema(pts[i])
		if schemaVersion(cur) < schemaVersion(prev) {
			fmt.Fprintf(os.Stderr,
				"benchtraj: %s schema version regression: %s (%s) -> %s (%s)\n",
				kind, pts[i-1].path, prev, pts[i].path, cur)
			os.Exit(1)
		}
	}
}

func main() {
	check := flag.String("check", "", "path of the first mmbench JSON artifact (burst or tenants schema) to validate; further paths are positional, in trajectory order")
	flag.Parse()
	if *check == "" {
		fmt.Fprintln(os.Stderr, "benchtraj: usage: benchtraj -check <artifact.json> [more.json ...]")
		flag.Usage()
		os.Exit(2)
	}
	paths := append([]string{*check}, flag.Args()...)

	var traj []point
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %v\n", err)
			os.Exit(1)
		}
		schema, err := schemaOf(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %s: %v\n", path, err)
			os.Exit(1)
		}
		if strings.HasPrefix(schema, "mmbench-tenants/") {
			res, err := multimap.ValidateTenantsJSON(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtraj: %s: %v\n", path, err)
				os.Exit(1)
			}
			traj = append(traj, point{path: path, tenants: res})
			qosMode := "off"
			if res.FairQuantum > 0 {
				qosMode = fmt.Sprintf("quantum %d", res.FairQuantum)
			}
			fmt.Printf("%s: ok (%s, %d rounds on %d drives, QoS %s, %d blocks grown, %d COW fault blocks)\n",
				path, res.Schema, res.Rounds, res.Drives, qosMode, res.GrownBlocks, res.CowFaultBlocks)
			fmt.Printf("  live burst   %5d ops  p50 %.3fms  p99 %.3fms\n",
				res.BurstOps, res.BurstP50Ms, res.BurstP99Ms)
			for _, ph := range res.Phases {
				fmt.Printf("  %-11s  %5d ops  %.3fms total\n", ph.Phase, ph.Ops, ph.Ms)
			}
			continue
		}
		res, err := multimap.ValidateBurstJSON(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtraj: %s: %v\n", path, err)
			os.Exit(1)
		}
		traj = append(traj, point{path: path, res: res})

		wbMode := "off"
		if res.WriteBack {
			wbMode = "on"
		}
		qosMode := "off"
		if res.FairQuantum > 0 {
			qosMode = fmt.Sprintf("quantum %d", res.FairQuantum)
		}
		fmt.Printf("%s: ok (%s, write-back %s, QoS %s, %d flushes, %d coalesced)\n",
			path, res.Schema, wbMode, qosMode, res.FlushBatches, res.Coalesced)
		for _, c := range res.Classes {
			fmt.Printf("  %-11s  %5d ops  p50 %.3fms  p99 %.3fms  p999 %s  sim %.3fms/op\n",
				c.Class, c.Ops, c.P50Ms, c.P99Ms, fmtP999(c.P999Ms), c.MeanSimMs)
		}
	}

	// The delta tables compare like with like: burst points against the
	// previous burst point, tenants points against the previous tenants
	// point, regardless of how the kinds interleave in the sequence.
	var bursts, tens []point
	for _, pt := range traj {
		if pt.tenants != nil {
			tens = append(tens, pt)
		} else {
			bursts = append(bursts, pt)
		}
	}
	checkNoRegression("burst", bursts, func(pt point) string { return pt.res.Schema })
	checkNoRegression("tenants", tens, func(pt point) string { return pt.tenants.Schema })

	if len(bursts) >= 2 {
		// Trajectory view: schema drift between consecutive points is
		// expected exactly when the schema version was bumped — flag it so
		// an accidental drift (or a missing migration note) is visible; and
		// the per-class p50/p99 deltas tell whether a PR moved the tail.
		fmt.Printf("\nburst trajectory (%d points):\n", len(bursts))
		for i := 1; i < len(bursts); i++ {
			prev, cur := bursts[i-1], bursts[i]
			if prev.res.Schema != cur.res.Schema {
				fmt.Printf("  schema drift: %s (%s) -> %s (%s)\n",
					prev.path, prev.res.Schema, cur.path, cur.res.Schema)
			}
		}
		fmt.Printf("  %-30s %-11s %12s %12s %12s %12s\n",
			"step", "class", "p50", "Δp50", "p99", "Δp99")
		for i := 1; i < len(bursts); i++ {
			prev, cur := bursts[i-1], bursts[i]
			step := fmt.Sprintf("%s -> %s", prev.path, cur.path)
			for _, c := range cur.res.Classes {
				pc := classOf(prev.res, c.Class)
				if pc == nil {
					fmt.Printf("  %-30s %-11s %12s %12s %12s %12s\n",
						step, c.Class, fmt.Sprintf("%.3fms", c.P50Ms), "new",
						fmt.Sprintf("%.3fms", c.P99Ms), "new")
					continue
				}
				fmt.Printf("  %-30s %-11s %12s %+11.3fms %12s %+11.3fms\n",
					step, c.Class,
					fmt.Sprintf("%.3fms", c.P50Ms), c.P50Ms-pc.P50Ms,
					fmt.Sprintf("%.3fms", c.P99Ms), c.P99Ms-pc.P99Ms)
				step = ""
			}
		}
		// Host-efficiency view: wall clock exists at every schema version;
		// allocs/op (and the GOMAXPROCS/pipeline context that makes the
		// numbers comparable) only from v3 points on — earlier points show
		// "-" rather than a fake zero.
		fmt.Printf("  %-30s %5s %9s %12s %12s %12s %12s\n",
			"step", "procs", "pipeline", "wall", "Δwall", "allocs/op", "Δallocs/op")
		for i := 1; i < len(bursts); i++ {
			prev, cur := bursts[i-1].res, bursts[i].res
			procs, pipe, allocs, dAllocs := "-", "-", "-", "-"
			if schemaVersion(cur.Schema) >= 3 {
				procs = fmt.Sprint(cur.GOMAXPROCS)
				pipe = fmt.Sprint(cur.PipelineDepth)
				allocs = fmt.Sprintf("%.0f", cur.AllocsPerOp)
				if schemaVersion(prev.Schema) >= 3 {
					dAllocs = fmt.Sprintf("%+.0f", cur.AllocsPerOp-prev.AllocsPerOp)
				}
			}
			fmt.Printf("  %-30s %5s %9s %12s %+11.3fs %12s %12s\n",
				fmt.Sprintf("%s -> %s", bursts[i-1].path, bursts[i].path),
				procs, pipe,
				fmt.Sprintf("%.3fs", cur.WallSeconds), cur.WallSeconds-prev.WallSeconds,
				allocs, dAllocs)
		}
	}

	if len(tens) >= 2 {
		fmt.Printf("\ntenants trajectory (%d points):\n", len(tens))
		for i := 1; i < len(tens); i++ {
			prev, cur := tens[i-1], tens[i]
			if prev.tenants.Schema != cur.tenants.Schema {
				fmt.Printf("  schema drift: %s (%s) -> %s (%s)\n",
					prev.path, prev.tenants.Schema, cur.path, cur.tenants.Schema)
			}
		}
		fmt.Printf("  %-30s %12s %12s %12s %12s\n", "step", "p50", "Δp50", "p99", "Δp99")
		for i := 1; i < len(tens); i++ {
			prev, cur := tens[i-1].tenants, tens[i].tenants
			fmt.Printf("  %-30s %12s %+11.3fms %12s %+11.3fms\n",
				fmt.Sprintf("%s -> %s", tens[i-1].path, tens[i].path),
				fmt.Sprintf("%.3fms", cur.BurstP50Ms), cur.BurstP50Ms-prev.BurstP50Ms,
				fmt.Sprintf("%.3fms", cur.BurstP99Ms), cur.BurstP99Ms-prev.BurstP99Ms)
		}
	}
}
