// Command mmbench regenerates the figures of the MultiMap paper's
// evaluation (§5) on the simulated testbed and prints the same rows and
// series the paper reports.
//
// Usage:
//
//	mmbench -exp fig6a                 # one figure, paper scale
//	mmbench -exp all -scale 0.25       # everything, quickly
//	mmbench -exp fig8 -disks atlas10k3 -runs 5 -seed 42
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	multimap "repro"
)

// parseQoSSpecs turns the -qos value — comma-separated
// name:weight[:urgent] specs — into a class registry. An empty value
// means "use the experiment's built-in mix".
func parseQoSSpecs(specs string) ([]multimap.QoSClass, error) {
	if specs == "" {
		return nil, nil
	}
	var classes []multimap.QoSClass
	for _, spec := range strings.Split(specs, ",") {
		parts := strings.Split(strings.TrimSpace(spec), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("-qos spec %q is malformed; want name:weight[:urgent]", spec)
		}
		name := strings.TrimSpace(parts[0])
		if name == "" {
			return nil, fmt.Errorf("-qos spec %q has an empty class name", spec)
		}
		weight, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || weight < 1 {
			return nil, fmt.Errorf("-qos spec %q: weight %q must be a positive integer", spec, parts[1])
		}
		urgent := false
		if len(parts) == 3 {
			if strings.TrimSpace(parts[2]) != "urgent" {
				return nil, fmt.Errorf("-qos spec %q: third field must be the literal \"urgent\"", spec)
			}
			urgent = true
		}
		for _, c := range classes {
			if c.Name == name {
				return nil, fmt.Errorf("-qos class %q registered twice", name)
			}
		}
		classes = append(classes, multimap.QoSClass{Name: name, Weight: weight, Urgent: urgent})
	}
	return classes, nil
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id ("+strings.Join(multimap.ExperimentIDs(), ", ")+") or 'all'")
		scale    = flag.Float64("scale", 1, "dataset scale in (0,1]; 1 = paper size")
		runs     = flag.Int("runs", 0, "randomized repetitions (0 = paper's 15)")
		seed     = flag.Int64("seed", 1, "workload random seed")
		disks    = flag.String("disks", "", "comma-separated disk models (default: the paper's two drives); available: "+strings.Join(multimap.DiskModels(), ", "))
		policy   = flag.String("policy", "", "force the drive scheduler for every query: fifo, sptf, or elevator (default: each mapping's preferred policy)")
		chunk    = flag.Int64("chunk", 0, "streaming-planner chunk size in cells for grid box queries (0 = plan each query as one chunk; fig7's octree leaf planner is never chunked)")
		clients  = flag.Int("clients", 0, "concurrent query sessions for -exp serve (0 = default 4); the table reports queries/sec, cache hit rate, and per-query ms/cell")
		queries  = flag.Int("queries", 0, "queries each -exp serve client issues (0 = default 32)")
		cache    = flag.Int64("cache", 0, "shared extent-cache capacity in blocks for -exp serve (0 = cache off)")
		writes   = flag.Float64("writes", 0, "fraction in [0,1) of each -exp serve client's operations that are update bursts through the write path (0 = read-only)")
		shards   = flag.Int("shards", 0, "max shard count for -exp serve: the dataset is split along Dim0 across N volumes/services and the table gains scaling rows at 1, 2, 4, ... N shards (0 or 1 = single shard)")
		window   = flag.Duration("window", 0, "time-based admission window per shard service for -exp serve, e.g. 200us (0 = admit immediately)")
		deadline = flag.Duration("deadline", 0, "per-query context deadline for -exp serve's client 0, e.g. 5ms (0 = none); the table reports that session's ms/query plus cancelled and deadline-expired drop counts")
		aging    = flag.Duration("aging", 0, "deadline/QoS-aware admission aging for -exp serve, e.g. 1ms: urgent requests (explicit deadline, or queued at least this long) are served ahead of bulk work (0 = off); compare -deadline runs with and without it")
		wb       = flag.Bool("wb", false, "write-back caching with group commit on every -exp serve/burst service: writes are absorbed into dirty extent buffers and committed as one SPTF batch per flush; the tables gain flushes/coalesced columns")
		wbWater  = flag.Int64("wb-watermark", 0, "write-back flush watermark in dirty blocks (0 = engine default); needs -wb")
		wbIvl    = flag.Duration("wb-interval", 0, "write-back flush interval, e.g. 2ms: dirty data older than this is committed (0 = engine default); needs -wb")
		fair     = flag.Int64("fair", 0, "weighted-fair (deficit-round-robin) admission quantum in blocks for -exp burst/tenants, e.g. 1024: each admission pass grants every backlogged QoS class quantum*weight blocks of credit (omit = fair sharing off)")
		qos      = flag.String("qos", "", "comma-separated QoS class specs name:weight[:urgent] registered for -fair runs, e.g. 'interactive:1,bulk:4,ops:2:urgent' (default: the burst benchmark's built-in interactive:1,bulk:4,writer:1 mix); needs -fair")
		pipeline = flag.Int("pipeline", 0, "dispatch pipeline depth per -exp serve/burst service, e.g. 2: the service keeps up to N disk batches in flight while scheduling the next admission pass (0 = lockstep dispatch, bit-identical schedules)")
		jsonOut  = flag.String("json", "", "write -exp burst's structured result (schema mmbench-burst/v3: p50/p99 per QoS class, p999 on large samples, host wall/allocs-per-op) or -exp tenants' (schema mmbench-tenants/v1: lifecycle phases + live-burst latency) to this file")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file (inspect with 'go tool pprof')")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile taken after the experiment run to this file (inspect with 'go tool pprof')")
		remote   = flag.String("remote", "", "client mode: drive serve-style load against a running mmserved daemon at this address (host:port) instead of running experiments in-process; uses -store, -class, -clients, -queries, -writes, -deadline, -seed")
		store    = flag.String("store", "", "store name on the daemon for -remote mode")
		class    = flag.String("class", "", "QoS class for -remote mode sessions (empty = the store's default)")
	)
	flag.Parse()

	// Negative magnitudes are flag misuse, not workload configs: report
	// them as usage errors before any experiment spins up.
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "mmbench: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *writes < 0 {
		usageErr("-writes %v is negative; want a fraction in [0,1)", *writes)
	}
	if *window < 0 {
		usageErr("-window %v is negative; want a duration like 200us", *window)
	}
	if *aging < 0 {
		usageErr("-aging %v is negative; want a duration like 1ms", *aging)
	}
	if *wbWater < 0 || *wbIvl < 0 {
		usageErr("-wb-watermark and -wb-interval must be non-negative")
	}
	if *pipeline < 0 {
		usageErr("-pipeline %d is negative; want a depth of in-flight batches (0 = lockstep)", *pipeline)
	}
	if *scale <= 0 || *scale > 1 {
		usageErr("-scale %v is out of range; want a fraction in (0,1]", *scale)
	}
	if *runs < 0 {
		usageErr("-runs %d is negative; want a repetition count (0 = paper's 15)", *runs)
	}
	if *chunk < 0 {
		usageErr("-chunk %d is negative; want a chunk size in cells (0 = one chunk per query)", *chunk)
	}
	if *clients < 0 {
		usageErr("-clients %d is negative; want a session count (0 = default 4)", *clients)
	}
	if *queries < 0 {
		usageErr("-queries %d is negative; want a per-client query count (0 = default 32)", *queries)
	}
	if *cache < 0 {
		usageErr("-cache %d is negative; want a capacity in blocks (0 = cache off)", *cache)
	}
	if *shards < 0 {
		usageErr("-shards %d is negative; want a max shard count (0 or 1 = single shard)", *shards)
	}
	if *deadline < 0 {
		usageErr("-deadline %v is negative; want a duration like 5ms (0 = none)", *deadline)
	}
	// -fair 0 is indistinguishable from the off default by value, so
	// catch an explicit zero (or negative) quantum by flag presence: a
	// stated quantum must be positive, and omitting the flag is the only
	// way to mean "fair sharing off".
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fair" && *fair <= 0 {
			usageErr("-fair %d is not a usable quantum; want a positive number of blocks (omit the flag to keep fair sharing off)", *fair)
		}
	})
	qosClasses, err := parseQoSSpecs(*qos)
	if err != nil {
		usageErr("%v", err)
	}
	if len(qosClasses) > 0 && *fair <= 0 {
		usageErr("-qos needs -fair: class weights only apply under weighted-fair admission")
	}

	if *remote != "" {
		if *store == "" {
			usageErr("-remote needs -store: name the daemon store to drive")
		}
		if err := runRemote(remoteConfig{
			Addr: *remote, Store: *store, Class: *class,
			Clients: *clients, Queries: *queries,
			Writes: *writes, Deadline: *deadline, Seed: *seed,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "mmbench: remote: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *store != "" || *class != "" {
		usageErr("-store and -class only apply in -remote client mode")
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mmbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
		defer f.Close()
	}

	cfg := multimap.ExperimentConfig{
		Scale: *scale, Runs: *runs, Seed: *seed,
		Policy: *policy, ChunkCells: *chunk,
		Clients: *clients, Queries: *queries, CacheBlocks: *cache,
		WriteFraction: *writes,
		Shards:        *shards, BatchWindow: *window,
		Deadline: *deadline, DeadlineAging: *aging,
		WriteBack: *wb, WBWatermark: *wbWater, WBInterval: *wbIvl,
		FairQuantum: *fair, QoSClasses: qosClasses,
		PipelineDepth: *pipeline,
	}
	if *disks != "" {
		for _, d := range strings.Split(*disks, ",") {
			cfg.Disks = append(cfg.Disks, multimap.DiskModel(strings.TrimSpace(d)))
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = multimap.ExperimentIDs()
	}
	// Experiment failures funnel through this instead of os.Exit so the
	// profile defers above still flush their files.
	exitCode := 0
	for _, id := range ids {
		start := time.Now()
		var (
			table *multimap.ExperimentTable
			err   error
		)
		writeJSON := func(res any) error {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			data = append(data, '\n')
			return os.WriteFile(*jsonOut, data, 0o644)
		}
		switch {
		case id == "burst" && *jsonOut != "":
			var res *multimap.BurstResult
			table, res, err = multimap.RunBurst(cfg)
			if err == nil {
				err = writeJSON(res)
			}
		case id == "tenants" && *jsonOut != "":
			var res *multimap.TenantsResult
			table, res, err = multimap.RunTenants(cfg)
			if err == nil {
				err = writeJSON(res)
			}
		default:
			table, err = multimap.RunExperiment(id, cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmbench: %s: %v\n", id, err)
			exitCode = 1
			break
		}
		fmt.Print(table.String())
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmbench: -memprofile: %v\n", err)
			exitCode = 1
		} else {
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mmbench: -memprofile: %v\n", err)
				exitCode = 1
			}
			f.Close()
		}
	}
	if exitCode != 0 {
		if *cpuProf != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(exitCode)
	}
}
