package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	multimap "repro"
	"repro/internal/server"
)

// remoteConfig is the -remote client-mode knob set, carved out of the
// shared flag block.
type remoteConfig struct {
	Addr     string
	Store    string
	Class    string
	Clients  int
	Queries  int
	Writes   float64
	Deadline time.Duration
	Seed     int64
}

// remoteClientRow is one client session's aggregate over the run.
type remoteClientRow struct {
	id         int
	session    string
	queries    int
	chunks     int
	errs       int
	stats      multimap.Stats // summed per-query simulated stats
	hostMs     []float64      // per-query host wall latency
	firstChunk []float64      // per-query first-chunk host latency
	lifetime   multimap.Stats // session lifetime stats from the daemon
}

// runRemote drives serve-style load against a running mmserved daemon:
// N concurrent wire sessions each issue Q streamed range queries (with
// an optional fraction of insert bursts) against one store, then the
// run reports per-client simulated cost, host latency, first-chunk
// latency — the streaming proof — and the daemon's own metrics
// snapshot.
func runRemote(cfg remoteConfig) error {
	ctx := context.Background()
	c := server.NewClient(cfg.Addr)

	info, err := func() (server.StoreInfo, error) {
		infos, err := c.Stores(ctx)
		if err != nil {
			return server.StoreInfo{}, err
		}
		for _, in := range infos {
			if in.Name == cfg.Store {
				return in, nil
			}
		}
		return server.StoreInfo{}, fmt.Errorf("store %q not open on %s", cfg.Store, cfg.Addr)
	}()
	if err != nil {
		return err
	}
	dims := info.Dims
	if len(dims) == 0 {
		return fmt.Errorf("store %q reports no dimensions", cfg.Store)
	}

	clients := cfg.Clients
	if clients <= 0 {
		clients = 4
	}
	queries := cfg.Queries
	if queries <= 0 {
		queries = 32
	}
	deadlineMs := int64(0)
	if cfg.Deadline > 0 {
		deadlineMs = int64(cfg.Deadline / time.Millisecond)
		if deadlineMs < 1 {
			deadlineMs = 1
		}
	}

	rows := make([]remoteClientRow, clients)
	var wg sync.WaitGroup
	for i := range rows {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows[i] = runRemoteClient(ctx, c, cfg, i, dims, queries, deadlineMs)
		}(i)
	}
	wg.Wait()

	fmt.Printf("remote serve: %s store=%s clients=%d queries=%d", cfg.Addr, cfg.Store, clients, queries)
	if cfg.Class != "" {
		fmt.Printf(" class=%s", cfg.Class)
	}
	if cfg.Writes > 0 {
		fmt.Printf(" writes=%.2f", cfg.Writes)
	}
	if deadlineMs > 0 {
		fmt.Printf(" deadline=%dms", deadlineMs)
	}
	fmt.Println()
	fmt.Printf("%-8s %8s %8s %6s %12s %12s %14s %10s\n",
		"client", "queries", "chunks", "errs", "ms/cell", "host-p50ms", "first-chunkms", "cancelled")
	var sum multimap.Stats
	for _, row := range rows {
		sum.Accumulate(row.stats)
		fmt.Printf("%-8s %8d %8d %6d %12.4f %12.3f %14.3f %10d\n",
			fmt.Sprintf("c%d/%s", row.id, row.session),
			row.queries, row.chunks, row.errs,
			row.stats.MsPerCell(),
			percentile(row.hostMs, 0.50),
			percentile(row.firstChunk, 0.50),
			row.stats.Cancelled+row.stats.DeadlineExceeded)
	}
	fmt.Printf("total: cells=%d requests=%d simulated-ms=%.1f\n",
		sum.Cells, sum.Requests, sum.TotalMs)

	m, err := c.Metrics(ctx, cfg.Store)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	fmt.Printf("daemon: queries=%d queue_depth=%d cache_hit_rate=%.3f p50=%.3fms p99=%.3fms batches=%d merged=%d max_batch=%d\n",
		m.Queries, m.QueueDepth, m.CacheHitRate, m.LatencyP50Ms, m.LatencyP99Ms,
		m.Totals.Batches, m.Totals.MergedBatches, m.Totals.MaxBatchChunks)
	return nil
}

// runRemoteClient is one client goroutine: open a session, issue the
// query mix, close the session, and fold the daemon-reported lifetime
// stats into the row.
func runRemoteClient(ctx context.Context, c *server.Client, cfg remoteConfig, id int, dims []int, queries int, deadlineMs int64) remoteClientRow {
	row := remoteClientRow{id: id}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
	sess, err := c.Begin(ctx, cfg.Store, cfg.Class)
	if err != nil {
		row.errs++
		return row
	}
	row.session = sess
	for q := 0; q < queries; q++ {
		if cfg.Writes > 0 && rng.Float64() < cfg.Writes {
			cell := make([]int, len(dims))
			for d := range dims {
				cell[d] = rng.Intn(dims[d])
			}
			st, err := c.Insert(ctx, cfg.Store, sess, cell, deadlineMs)
			row.stats.Accumulate(st)
			if err != nil {
				row.errs++
			}
			continue
		}
		lo, hi := randomBox(rng, dims)
		start := time.Now()
		first := -1.0
		tr, err := c.RangeQuery(ctx, cfg.Store, sess, lo, hi, deadlineMs, func(ch server.ChunkWire) {
			if first < 0 {
				first = time.Since(start).Seconds() * 1e3
			}
			row.chunks++
		})
		row.hostMs = append(row.hostMs, time.Since(start).Seconds()*1e3)
		if first >= 0 {
			row.firstChunk = append(row.firstChunk, first)
		}
		row.stats.Accumulate(tr.Stats.Stats())
		if err != nil {
			row.errs++
		}
		row.queries++
	}
	if life, err := c.CloseSession(ctx, cfg.Store, sess); err == nil {
		row.lifetime = life
	}
	return row
}

// randomBox picks a non-empty axis-aligned box inside dims, biased
// small (an eighth of each extent) so queries stream several chunks
// without dominating the run.
func randomBox(rng *rand.Rand, dims []int) (lo, hi []int) {
	lo = make([]int, len(dims))
	hi = make([]int, len(dims))
	for d, n := range dims {
		span := n / 8
		if span < 1 {
			span = 1
		}
		w := 1 + rng.Intn(span)
		if w > n {
			w = n
		}
		lo[d] = rng.Intn(n - w + 1)
		hi[d] = lo[d] + w
	}
	return lo, hi
}

// percentile returns the q-quantile of xs (0 when empty), interpolated
// on the sorted sample.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	rank := q * float64(len(s)-1)
	i := int(rank)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := rank - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}
