// Command fig6probe prints raw simulated TotalMs for the paper's
// Figure-6 configurations (beams and ranges on the synthetic 3-D grid)
// so two builds can be diffed value by value.
//
// Args: "small" shrinks the grid to 64³ (seconds instead of minutes);
// "serve" routes every query through a single session of the
// concurrent query service instead of the synchronous engine — diffing
// the two modes is the service's single-session equivalence evidence.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dataset"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

func main() {
	side := 259
	serve := false
	for _, arg := range os.Args[1:] {
		switch arg {
		case "small":
			side = 64
		case "serve":
			serve = true
		default:
			fmt.Fprintf(os.Stderr, "fig6probe: unknown arg %q (want small and/or serve)\n", arg)
			os.Exit(2)
		}
	}
	dims := []int{side, side, side}
	grid, err := dataset.NewGrid(dims...)
	if err != nil {
		panic(err)
	}
	g := disk.AtlasTenKIII()
	for _, kind := range mapping.Kinds() {
		v, err := lvm.New(0, g)
		if err != nil {
			panic(err)
		}
		m, err := mapping.New(kind, v, dims, mapping.Options{DiskIdx: 0})
		if err != nil {
			panic(err)
		}
		e := query.NewExecutor(v, m)
		runner := engine.OnVolume(v)
		if serve {
			svc := engine.NewService(v, engine.ServiceOptions{})
			defer svc.Close()
			runner = svc.NewSession(engine.SessionOptions{})
		}
		// Fig 6(a): beams along each dimension.
		for dim := 0; dim < 3; dim++ {
			rng := rand.New(rand.NewSource(int64(dim)*1000 + 3))
			for r := 0; r < 3; r++ {
				v.Disk(0).RandomizePosition(rng)
				fixed, err := grid.RandomBeam(rng, dim)
				if err != nil {
					panic(err)
				}
				st, err := e.BeamOn(runner, dim, fixed)
				if err != nil {
					panic(err)
				}
				fmt.Printf("%s beam d%d r%d total=%.6f cells=%d reqs=%d\n",
					kind, dim, r, st.TotalMs, st.Cells, st.Requests)
			}
		}
		// Fig 6(b): range queries at the paper's selectivities.
		for _, sel := range []float64{0.01, 1, 10, 40, 100} {
			rng := rand.New(rand.NewSource(int64(sel*1000) + 7919))
			v.Disk(0).RandomizePosition(rng)
			lo, hi, err := grid.RandomRange(rng, sel/100)
			if err != nil {
				panic(err)
			}
			st, err := e.RangeOn(runner, lo, hi)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%s range sel%g total=%.6f cells=%d reqs=%d pad=%d\n",
				kind, sel, st.TotalMs, st.Cells, st.Requests, st.Padding)
		}
	}
}
