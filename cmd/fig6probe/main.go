// Command fig6probe prints raw simulated TotalMs for the paper's
// Figure-6 configurations (beams and ranges on the synthetic 3-D grid)
// so two builds can be diffed value by value.
//
// Args: "small" shrinks the grid to 64³ (seconds instead of minutes);
// "serve" routes every query through a single session of the
// concurrent query service instead of the synchronous engine — diffing
// the two modes is the service's single-session equivalence evidence;
// "shard" routes every query through a single-shard scatter-gather
// session instead — diffing against the plain mode is the shard
// layer's single-shard equivalence evidence.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dataset"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
	"repro/internal/shard"
)

func main() {
	side := 259
	mode := ""
	for _, arg := range os.Args[1:] {
		switch arg {
		case "small":
			side = 64
		case "serve", "shard":
			mode = arg
		default:
			fmt.Fprintf(os.Stderr, "fig6probe: unknown arg %q (want small, serve, or shard)\n", arg)
			os.Exit(2)
		}
	}
	dims := []int{side, side, side}
	grid, err := dataset.NewGrid(dims...)
	if err != nil {
		panic(err)
	}
	g := disk.AtlasTenKIII()
	for _, kind := range mapping.Kinds() {
		v, err := lvm.New(0, g)
		if err != nil {
			panic(err)
		}
		// beam and rangeQ run one query in the selected execution mode.
		var beam func(dim int, fixed []int) (engine.Stats, error)
		var rangeQ func(lo, hi []int) (engine.Stats, error)
		switch mode {
		case "shard":
			svc := engine.NewService(v, engine.ServiceOptions{})
			defer svc.Close()
			grp, err := shard.Build([]*lvm.Volume{v}, []*engine.Service{svc},
				kind, dims, mapping.Options{DiskIdx: 0}, query.ExecOptions{})
			if err != nil {
				panic(err)
			}
			ss := grp.Begin(engine.SessionOptions{})
			beam = func(dim int, fixed []int) (engine.Stats, error) {
				return ss.Beam(context.Background(), dim, fixed)
			}
			rangeQ = func(lo, hi []int) (engine.Stats, error) {
				return ss.Box(context.Background(), lo, hi)
			}
		default:
			m, err := mapping.New(kind, v, dims, mapping.Options{DiskIdx: 0})
			if err != nil {
				panic(err)
			}
			e := query.NewExecutor(v, m)
			runner := engine.OnVolume(v)
			if mode == "serve" {
				svc := engine.NewService(v, engine.ServiceOptions{})
				defer svc.Close()
				runner = svc.NewSession(engine.SessionOptions{})
			}
			beam = func(dim int, fixed []int) (engine.Stats, error) {
				return e.BeamOn(context.Background(), runner, dim, fixed)
			}
			rangeQ = func(lo, hi []int) (engine.Stats, error) {
				return e.RangeOn(context.Background(), runner, lo, hi)
			}
		}
		// Fig 6(a): beams along each dimension.
		for dim := 0; dim < 3; dim++ {
			rng := rand.New(rand.NewSource(int64(dim)*1000 + 3))
			for r := 0; r < 3; r++ {
				v.Disk(0).RandomizePosition(rng)
				fixed, err := grid.RandomBeam(rng, dim)
				if err != nil {
					panic(err)
				}
				st, err := beam(dim, fixed)
				if err != nil {
					panic(err)
				}
				fmt.Printf("%s beam d%d r%d total=%.6f cells=%d reqs=%d\n",
					kind, dim, r, st.TotalMs, st.Cells, st.Requests)
			}
		}
		// Fig 6(b): range queries at the paper's selectivities.
		for _, sel := range []float64{0.01, 1, 10, 40, 100} {
			rng := rand.New(rand.NewSource(int64(sel*1000) + 7919))
			v.Disk(0).RandomizePosition(rng)
			lo, hi, err := grid.RandomRange(rng, sel/100)
			if err != nil {
				panic(err)
			}
			st, err := rangeQ(lo, hi)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%s range sel%g total=%.6f cells=%d reqs=%d pad=%d\n",
				kind, sel, st.TotalMs, st.Cells, st.Requests, st.Padding)
		}
	}
}
