// Command fig6probe prints raw simulated TotalMs for the paper's
// Figure-6 configurations (beams and ranges on the synthetic 3-D grid)
// so two builds can be diffed value by value.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dataset"
	"repro/internal/disk"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

func main() {
	side := 259
	if len(os.Args) > 1 && os.Args[1] == "small" {
		side = 64
	}
	dims := []int{side, side, side}
	grid, err := dataset.NewGrid(dims...)
	if err != nil {
		panic(err)
	}
	g := disk.AtlasTenKIII()
	for _, kind := range mapping.Kinds() {
		v, err := lvm.New(0, g)
		if err != nil {
			panic(err)
		}
		m, err := mapping.New(kind, v, dims, mapping.Options{DiskIdx: 0})
		if err != nil {
			panic(err)
		}
		e := query.NewExecutor(v, m)
		// Fig 6(a): beams along each dimension.
		for dim := 0; dim < 3; dim++ {
			rng := rand.New(rand.NewSource(int64(dim)*1000 + 3))
			for r := 0; r < 3; r++ {
				v.Disk(0).RandomizePosition(rng)
				fixed, err := grid.RandomBeam(rng, dim)
				if err != nil {
					panic(err)
				}
				st, err := e.Beam(dim, fixed)
				if err != nil {
					panic(err)
				}
				fmt.Printf("%s beam d%d r%d total=%.6f cells=%d reqs=%d\n",
					kind, dim, r, st.TotalMs, st.Cells, st.Requests)
			}
		}
		// Fig 6(b): range queries at the paper's selectivities.
		for _, sel := range []float64{0.01, 1, 10, 40, 100} {
			rng := rand.New(rand.NewSource(int64(sel*1000) + 7919))
			v.Disk(0).RandomizePosition(rng)
			lo, hi, err := grid.RandomRange(rng, sel/100)
			if err != nil {
				panic(err)
			}
			st, err := e.Range(lo, hi)
			if err != nil {
				panic(err)
			}
			fmt.Printf("%s range sel%g total=%.6f cells=%d reqs=%d pad=%d\n",
				kind, sel, st.TotalMs, st.Cells, st.Requests, st.Padding)
		}
	}
}
