package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseInts: %v %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad integer accepted")
	}
}

func TestQueryBox(t *testing.T) {
	dims := []int{10, 6, 4}
	lo, hi, err := queryBox(dims, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if lo[1] != 0 || hi[1] != 6 || lo[0] != 5 || hi[0] != 6 {
		t.Fatalf("beam box wrong: %v %v", lo, hi)
	}
	lo, hi, err = queryBox(dims, -1, "0,0,0:5,5,2")
	if err != nil {
		t.Fatal(err)
	}
	if hi[0] != 5 || hi[2] != 2 {
		t.Fatalf("range box wrong: %v %v", lo, hi)
	}
	if _, _, err := queryBox(dims, 1, "0:1"); err == nil {
		t.Error("beam and range together accepted")
	}
	if _, _, err := queryBox(dims, 5, ""); err == nil {
		t.Error("beam dim out of range accepted")
	}
	if _, _, err := queryBox(dims, -1, "nonsense"); err == nil {
		t.Error("malformed range accepted")
	}
	if _, _, err := queryBox(dims, -1, ""); err == nil {
		t.Error("no query accepted")
	}
}
