// Command mmtrace runs one query under a chosen mapping and prints the
// per-request service trace: where every millisecond went, request by
// request. Useful for seeing the mechanisms behind the figures — e.g.
// the flat settle-time positioning of a MultiMap Dim1 beam versus the
// rotational waits of Naive.
//
// Usage:
//
//	mmtrace -mapping multimap -dims 130,130,130 -beam 1
//	mmtrace -mapping naive -dims 130,130,130 -range 0,0,0:64,64,64 -n 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
	"repro/internal/trace"
)

func main() {
	var (
		model   = flag.String("model", "atlas10k3", "disk model")
		mapName = flag.String("mapping", "multimap", "mapping: naive, zorder, hilbert, gray, multimap")
		dimsArg = flag.String("dims", "130,130,130", "dataset side lengths")
		beamDim = flag.Int("beam", -1, "run a beam along this dimension (fixed coords are midpoints)")
		rangeA  = flag.String("range", "", "run a range query lo0,lo1,..:hi0,hi1,..")
		n       = flag.Int("n", 30, "trace rows to print (0 = all)")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "mmtrace:", err)
		os.Exit(1)
	}

	dims, err := parseInts(*dimsArg)
	if err != nil {
		die(err)
	}
	kind, err := mapping.ParseKind(*mapName)
	if err != nil {
		die(err)
	}
	g, err := disk.ModelByName(*model)
	if err != nil {
		die(err)
	}
	v, err := lvm.New(0, g)
	if err != nil {
		die(err)
	}
	m, err := mapping.New(kind, v, dims, mapping.Options{DiskIdx: 0})
	if err != nil {
		die(err)
	}

	// Build the request plan through the executor, then serve it while
	// capturing completions.
	lo, hi, err := queryBox(dims, *beamDim, *rangeA)
	if err != nil {
		die(err)
	}
	e := query.NewExecutor(v, m)
	reqs, policy, _, err := query.PlanForTrace(e, lo, hi)
	if err != nil {
		die(err)
	}
	// Serve the plan through the shared engine, capturing every
	// completion for the trace.
	tr := &trace.Trace{}
	st, err := engine.Run(v, engine.Static(reqs, policy), engine.Options{
		Trace: tr.Add,
	})
	if err != nil {
		die(err)
	}

	fmt.Printf("%s over %v on %s: box [%v, %v), policy %v, elapsed %.1f ms\n\n",
		kind, dims, g.Name, lo, hi, policy, st.ElapsedMs)
	fmt.Println(tr.Summarize().String())
	fmt.Println()
	fmt.Print(tr.Dump(*n))
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func queryBox(dims []int, beamDim int, rangeArg string) (lo, hi []int, err error) {
	switch {
	case beamDim >= 0 && rangeArg != "":
		return nil, nil, fmt.Errorf("choose either -beam or -range")
	case beamDim >= 0:
		if beamDim >= len(dims) {
			return nil, nil, fmt.Errorf("beam dim %d out of range", beamDim)
		}
		lo = make([]int, len(dims))
		hi = make([]int, len(dims))
		for i := range dims {
			if i == beamDim {
				lo[i], hi[i] = 0, dims[i]
			} else {
				lo[i], hi[i] = dims[i]/2, dims[i]/2+1
			}
		}
		return lo, hi, nil
	case rangeArg != "":
		parts := strings.SplitN(rangeArg, ":", 2)
		if len(parts) != 2 {
			return nil, nil, fmt.Errorf("range must be lo,..:hi,..")
		}
		if lo, err = parseInts(parts[0]); err != nil {
			return nil, nil, err
		}
		if hi, err = parseInts(parts[1]); err != nil {
			return nil, nil, err
		}
		return lo, hi, nil
	default:
		return nil, nil, fmt.Errorf("specify -beam or -range")
	}
}
