// Package pool is the placement layer for multi-tenant volumes: a pool
// of simulated drives hosting many datasets on thin-provisioned
// volumes. Where the classic lvm.New path gives a dataset whole drives
// for life, the pool carves track-aligned extents out of shared drives
// and hands back lvm volumes with a full lifecycle:
//
//   - NewVolume allocates a thin volume (lvcreate),
//   - Vol.Grow extends it online (lvextend) — capacity appears
//     mid-flight without reopening anything,
//   - Vol.Snapshot freezes the current extents copy-on-write,
//   - Snap.Clone builds a new volume over the frozen extents whose
//     reads fall through to the shared blocks until a track is dirtied,
//   - Vol.Free / Snap.Free release references; extents return to the
//     free lists when the last referencing volume or snapshot is gone.
//
// Allocation is first-fit in drive preference order at track granule,
// and every extent lies within a single geometry zone, so track and
// zone arithmetic inside a segment is exact (see lvm.NewFromExtents).
// Space is reclaimed at extent granularity only — a volume keeps its
// reference on a shared extent even after copy-on-write has resolved
// every track it maps there, the usual thin-pool accounting trade.
//
// All pool and volume bookkeeping is guarded by the pool mutex; the
// returned lvm volumes follow the lvm package's own concurrency
// contract (shared drives serialize head state per drive).
package pool

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// zinfo caches one geometry zone's shape for the allocator.
type zinfo struct {
	startLBN int64
	tl       int // blocks per track
	nTracks  int
}

// run is a contiguous range of free tracks within one zone.
type run struct {
	zi    int
	start int // first free track, zone-local
	n     int // tracks
}

// drive is one pooled drive with its free-track accounting.
type drive struct {
	dr    *lvm.Drive
	zones []zinfo
	free  []run // ascending (zi, start)
	total int64 // blocks
}

// pext is one allocated pool extent, the refcounted unit of space. It
// is freed back to its drive when the last volume or snapshot
// referencing it is released.
type pext struct {
	di    int
	zi    int
	start int // first track, zone-local
	n     int // tracks
	tl    int
	refs  int
}

func (e *pext) blocks() int64 { return int64(e.n) * int64(e.tl) }

// Pool is a set of simulated drives that volumes are carved from.
type Pool struct {
	mu       sync.Mutex
	adjDepth int
	drives   []*drive
}

// New builds a pool over fresh drives of the given geometries. adjDepth
// is the adjacency depth every pool volume exports (0 for
// lvm.DefaultAdjacencyDepth); it must fit every drive's settle span.
func New(adjDepth int, geoms ...*disk.Geometry) (*Pool, error) {
	if len(geoms) == 0 {
		return nil, fmt.Errorf("pool: needs at least one drive")
	}
	if adjDepth == 0 {
		adjDepth = lvm.DefaultAdjacencyDepth
	}
	if adjDepth < 1 {
		return nil, fmt.Errorf("pool: adjacency depth %d must be positive", adjDepth)
	}
	p := &Pool{adjDepth: adjDepth}
	for _, g := range geoms {
		if span := g.AdjSpan(); adjDepth > span {
			return nil, fmt.Errorf("pool: adjacency depth %d exceeds %s settle span %d",
				adjDepth, g.Name, span)
		}
		d := &drive{dr: lvm.NewDrive(g), total: g.TotalBlocks()}
		for zi := 0; zi < g.NumZones(); zi++ {
			z := g.ZoneByIndex(zi)
			n := z.Cylinders() * g.Surfaces
			d.zones = append(d.zones, zinfo{startLBN: z.StartLBN(), tl: z.SectorsPerTrack, nTracks: n})
			d.free = append(d.free, run{zi: zi, start: 0, n: n})
		}
		p.drives = append(p.drives, d)
	}
	return p, nil
}

// AdjacencyDepth returns the depth every pool volume exports.
func (p *Pool) AdjacencyDepth() int { return p.adjDepth }

// NumDrives returns the number of pooled drives.
func (p *Pool) NumDrives() int { return len(p.drives) }

// Drive returns pooled drive i.
func (p *Pool) Drive(i int) *lvm.Drive { return p.drives[i].dr }

// DriveUsage is one drive's space accounting.
type DriveUsage struct {
	Name        string
	TotalBlocks int64
	FreeBlocks  int64
}

// Usage returns per-drive space accounting.
func (p *Pool) Usage() []DriveUsage {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]DriveUsage, len(p.drives))
	for i, d := range p.drives {
		var free int64
		for _, r := range d.free {
			free += int64(r.n) * int64(d.zones[r.zi].tl)
		}
		out[i] = DriveUsage{Name: d.dr.Geometry().Name, TotalBlocks: d.total, FreeBlocks: free}
	}
	return out
}

// order resolves a drive preference list: the given indices in order,
// or every drive in index order when nil.
func (p *Pool) order(prefer []int) ([]int, error) {
	if len(prefer) == 0 {
		out := make([]int, len(p.drives))
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	for _, di := range prefer {
		if di < 0 || di >= len(p.drives) {
			return nil, fmt.Errorf("pool: drive index %d out of range [0,%d)", di, len(p.drives))
		}
	}
	return prefer, nil
}

// alloc carves at least blocks blocks as track-aligned, single-zone
// extents, first-fit across the preference order. Caller holds p.mu.
func (p *Pool) alloc(blocks int64, prefer []int) ([]*pext, []lvm.Extent, error) {
	if blocks <= 0 {
		return nil, nil, fmt.Errorf("pool: allocation must be positive, got %d blocks", blocks)
	}
	order, err := p.order(prefer)
	if err != nil {
		return nil, nil, err
	}
	var pes []*pext
	var exts []lvm.Extent
	need := blocks
	for _, di := range order {
		d := p.drives[di]
		ri := 0
		for ri < len(d.free) && need > 0 {
			r := d.free[ri]
			tl := d.zones[r.zi].tl
			want := int((need + int64(tl) - 1) / int64(tl))
			t := min(want, r.n)
			pe := &pext{di: di, zi: r.zi, start: r.start, n: t, tl: tl, refs: 1}
			pes = append(pes, pe)
			exts = append(exts, p.extentOf(pe))
			need -= pe.blocks()
			if t == r.n {
				d.free = append(d.free[:ri], d.free[ri+1:]...)
			} else {
				d.free[ri].start += t
				d.free[ri].n -= t
				ri++
			}
		}
		if need <= 0 {
			break
		}
	}
	if need > 0 {
		for _, pe := range pes {
			p.release(pe)
		}
		return nil, nil, fmt.Errorf("pool: out of space: %d of %d blocks unallocatable on drives %v",
			need, blocks, order)
	}
	return pes, exts, nil
}

// allocContig carves one contiguous extent of at least blocks blocks in
// a zone whose track length is exactly tl, preferring the given drive —
// the COW fault allocator. Caller holds p.mu.
func (p *Pool) allocContig(prefer *lvm.Drive, tl int, blocks int64) (*pext, error) {
	tracks := int((blocks + int64(tl) - 1) / int64(tl))
	try := func(di int) *pext {
		d := p.drives[di]
		for ri, r := range d.free {
			if d.zones[r.zi].tl != tl || r.n < tracks {
				continue
			}
			pe := &pext{di: di, zi: r.zi, start: r.start, n: tracks, tl: tl, refs: 1}
			if tracks == r.n {
				d.free = append(d.free[:ri], d.free[ri+1:]...)
			} else {
				d.free[ri].start += tracks
				d.free[ri].n -= tracks
			}
			return pe
		}
		return nil
	}
	for di, d := range p.drives {
		if d.dr == prefer {
			if pe := try(di); pe != nil {
				return pe, nil
			}
		}
	}
	for di, d := range p.drives {
		if d.dr == prefer {
			continue
		}
		if pe := try(di); pe != nil {
			return pe, nil
		}
	}
	return nil, fmt.Errorf("pool: no contiguous run of %d tracks (track length %d) on any drive",
		tracks, tl)
}

func (p *Pool) extentOf(pe *pext) lvm.Extent {
	d := p.drives[pe.di]
	return lvm.Extent{
		Drive:     d.dr,
		PhysStart: d.zones[pe.zi].startLBN + int64(pe.start)*int64(pe.tl),
		Blocks:    pe.blocks(),
	}
}

// release drops one reference; the extent's tracks return to the free
// list (merging with neighbors) when nobody references it anymore.
// Caller holds p.mu.
func (p *Pool) release(pe *pext) {
	pe.refs--
	if pe.refs > 0 {
		return
	}
	d := p.drives[pe.di]
	nr := run{zi: pe.zi, start: pe.start, n: pe.n}
	i := sort.Search(len(d.free), func(i int) bool {
		if d.free[i].zi != nr.zi {
			return d.free[i].zi > nr.zi
		}
		return d.free[i].start > nr.start
	})
	d.free = append(d.free, run{})
	copy(d.free[i+1:], d.free[i:])
	d.free[i] = nr
	if i+1 < len(d.free) && d.free[i+1].zi == nr.zi && nr.start+nr.n == d.free[i+1].start {
		d.free[i].n += d.free[i+1].n
		d.free = append(d.free[:i+1], d.free[i+2:]...)
	}
	if i > 0 && d.free[i-1].zi == d.free[i].zi && d.free[i-1].start+d.free[i-1].n == d.free[i].start {
		d.free[i-1].n += d.free[i].n
		d.free = append(d.free[:i], d.free[i+1:]...)
	}
}

// Vol is the pool's bookkeeping for one allocated volume: the lvm
// volume plus every pool extent it references. Fields are guarded by
// the pool mutex.
type Vol struct {
	p     *Pool
	vol   *lvm.Volume
	refs  []*pext
	freed bool
}

// Volume returns the thin-provisioned lvm volume.
func (v *Vol) Volume() *lvm.Volume { return v.vol }

// Blocks returns the pool space the volume references, in blocks —
// thin-pool accounting: initial allocation, growth, and private COW
// extents, plus shared parent extents a clone still references.
func (v *Vol) Blocks() int64 {
	v.p.mu.Lock()
	defer v.p.mu.Unlock()
	var n int64
	for _, pe := range v.refs {
		n += pe.blocks()
	}
	return n
}

// NewVolume allocates a thin volume of at least blocks blocks (rounded
// up to whole tracks), placing extents first-fit across the preferred
// drive indices (nil: every drive in order). The volume's COW allocator
// is installed so later snapshot/clone faults allocate from this pool
// and are charged to this volume.
func (p *Pool) NewVolume(blocks int64, prefer []int) (*Vol, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pes, exts, err := p.alloc(blocks, prefer)
	if err != nil {
		return nil, err
	}
	lv, err := lvm.NewFromExtents(p.adjDepth, exts)
	if err != nil {
		for _, pe := range pes {
			p.release(pe)
		}
		return nil, err
	}
	v := &Vol{p: p, vol: lv, refs: pes}
	lv.SetCowAlloc(v.cowAlloc)
	return v, nil
}

// Grow extends the volume online by at least blocks blocks — lvextend:
// the new extents append to the VLBN space atomically while traffic is
// in flight, and existing segment indices and addresses are unchanged.
func (v *Vol) Grow(blocks int64, prefer []int) error {
	p := v.p
	p.mu.Lock()
	if v.freed {
		p.mu.Unlock()
		return fmt.Errorf("pool: volume already freed")
	}
	pes, exts, err := p.alloc(blocks, prefer)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	v.refs = append(v.refs, pes...)
	p.mu.Unlock()
	if err := v.vol.Extend(exts); err != nil {
		p.mu.Lock()
		v.refs = v.refs[:len(v.refs)-len(pes)]
		for _, pe := range pes {
			p.release(pe)
		}
		p.mu.Unlock()
		return err
	}
	return nil
}

// cowAlloc is the lvm.CowAllocFunc for this volume: carve a private
// replacement extent and charge it to the volume's accounting.
func (v *Vol) cowAlloc(prefer *lvm.Drive, tl int, blocks int64) (*lvm.Drive, int64, error) {
	p := v.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if v.freed {
		return nil, 0, fmt.Errorf("pool: volume already freed")
	}
	pe, err := p.allocContig(prefer, tl, blocks)
	if err != nil {
		return nil, 0, err
	}
	v.refs = append(v.refs, pe)
	d := p.drives[pe.di]
	return d.dr, d.zones[pe.zi].startLBN + int64(pe.start)*int64(pe.tl), nil
}

// Snap is a frozen copy-on-write view of a volume's extents at
// snapshot time. It holds its own references: the frozen extents stay
// allocated until the snapshot and every clone built from it are freed,
// regardless of what happens to the origin volume.
type Snap struct {
	p     *Pool
	exts  []lvm.Extent
	refs  []*pext
	freed bool
}

// Snapshot freezes the volume's current extent table. The origin keeps
// serving, but its segments are flipped copy-on-write: its next write
// to any frozen track faults that track into a private extent, leaving
// the snapshot's view intact. Callers must quiesce dirty write-back
// state first (the engine layer flushes before snapshotting) so the
// frozen extents hold no un-issued writes.
func (v *Vol) Snapshot() (*Snap, error) {
	p := v.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if v.freed {
		return nil, fmt.Errorf("pool: volume already freed")
	}
	exts := v.vol.Extents()
	for i := range exts {
		exts[i].COW = true
	}
	refs := append([]*pext(nil), v.refs...)
	for _, pe := range refs {
		pe.refs++
	}
	v.vol.MarkCOW()
	return &Snap{p: p, exts: exts, refs: refs}, nil
}

// Clone builds a new thin volume over the snapshot's frozen extents.
// Every segment starts copy-on-write: reads fall through to the shared
// parent blocks, and the clone's first write to a track faults it into
// a private extent charged to the clone.
func (s *Snap) Clone() (*Vol, error) {
	p := s.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if s.freed {
		return nil, fmt.Errorf("pool: snapshot already freed")
	}
	lv, err := lvm.NewFromExtents(p.adjDepth, s.exts)
	if err != nil {
		return nil, err
	}
	refs := append([]*pext(nil), s.refs...)
	for _, pe := range refs {
		pe.refs++
	}
	v := &Vol{p: p, vol: lv, refs: refs}
	lv.SetCowAlloc(v.cowAlloc)
	return v, nil
}

// Free releases the volume's references. Safe to call twice.
func (v *Vol) Free() {
	p := v.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if v.freed {
		return
	}
	v.freed = true
	for _, pe := range v.refs {
		p.release(pe)
	}
	v.refs = nil
}

// Free releases the snapshot's references. Safe to call twice. Clones
// built from the snapshot hold their own references and stay valid.
func (s *Snap) Free() {
	p := s.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if s.freed {
		return
	}
	s.freed = true
	for _, pe := range s.refs {
		p.release(pe)
	}
	s.refs = nil
}
