package pool

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
)

func testPool(t *testing.T) *Pool {
	t.Helper()
	p, err := New(16, disk.SmallTestDisk(), disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// freeBlocks sums the pool's free space per drive.
func freeBlocks(p *Pool) []int64 {
	u := p.Usage()
	out := make([]int64, len(u))
	for i := range u {
		out[i] = u[i].FreeBlocks
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(16); err == nil {
		t.Error("empty pool accepted")
	}
	g := disk.SmallTestDisk()
	if _, err := New(g.AdjSpan()+1, g); err == nil {
		t.Error("depth beyond settle span accepted")
	}
	p, err := New(0, disk.AtlasTenKIII())
	if err != nil {
		t.Fatal(err)
	}
	if p.AdjacencyDepth() != lvm.DefaultAdjacencyDepth {
		t.Errorf("default depth %d, want %d", p.AdjacencyDepth(), lvm.DefaultAdjacencyDepth)
	}
	if p.NumDrives() != 1 {
		t.Errorf("got %d drives, want 1", p.NumDrives())
	}
}

// TestNewVolumePlacement pins first-fit placement: with no preference
// the volume lands on drive 0, with an explicit preference it lands on
// that drive, and the thin accounting (Vol.Blocks, Usage) tracks the
// track-rounded allocation exactly.
func TestNewVolumePlacement(t *testing.T) {
	p := testPool(t)
	free0 := freeBlocks(p)

	a, err := p.NewVolume(100, nil)
	if err != nil {
		t.Fatal(err)
	}
	lv := a.Volume()
	if lv.TotalBlocks() < 100 {
		t.Fatalf("volume of %d blocks for a 100-block ask", lv.TotalBlocks())
	}
	if drs := lv.Drives(); len(drs) != 1 || drs[0] != p.Drive(0) {
		t.Fatal("unpreferred volume not first-fit on drive 0")
	}
	if a.Blocks() != lv.TotalBlocks() {
		t.Fatalf("accounting %d blocks, volume maps %d", a.Blocks(), lv.TotalBlocks())
	}
	free1 := freeBlocks(p)
	if free1[0] != free0[0]-a.Blocks() || free1[1] != free0[1] {
		t.Fatalf("usage %v after allocating %d from drive 0 (was %v)", free1, a.Blocks(), free0)
	}

	b, err := p.NewVolume(100, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if drs := b.Volume().Drives(); len(drs) != 1 || drs[0] != p.Drive(1) {
		t.Fatal("preferred volume not on drive 1")
	}

	a.Free()
	b.Free()
	if got := freeBlocks(p); got[0] != free0[0] || got[1] != free0[1] {
		t.Fatalf("space not reclaimed: %v, want %v", got, free0)
	}
}

func TestAllocErrors(t *testing.T) {
	p := testPool(t)
	if _, err := p.NewVolume(0, nil); err == nil {
		t.Error("zero-block volume accepted")
	}
	if _, err := p.NewVolume(100, []int{7}); err == nil {
		t.Error("bad drive index accepted")
	}
	// An unsatisfiable ask must roll back every partial carve: the free
	// lists (including run merging on release) end up exactly as before.
	free0 := freeBlocks(p)
	total := free0[0] + free0[1]
	if _, err := p.NewVolume(total+1, nil); err == nil {
		t.Error("over-capacity volume accepted")
	}
	if got := freeBlocks(p); got[0] != free0[0] || got[1] != free0[1] {
		t.Fatalf("failed allocation leaked space: %v, want %v", got, free0)
	}
	// The pool's entire capacity is allocatable in one volume (the
	// rollback above merged every run back).
	v, err := p.NewVolume(total, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Blocks() != total {
		t.Fatalf("whole-pool volume references %d blocks, want %d", v.Blocks(), total)
	}
	v.Free()
}

func TestGrow(t *testing.T) {
	p := testPool(t)
	v, err := p.NewVolume(100, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	lv := v.Volume()
	before := lv.TotalBlocks()
	if err := v.Grow(before+5, []int{1}); err != nil {
		t.Fatal(err)
	}
	if lv.TotalBlocks() < 2*before+5 {
		t.Fatalf("grown volume maps %d blocks, want at least %d", lv.TotalBlocks(), 2*before+5)
	}
	if v.Blocks() != lv.TotalBlocks() {
		t.Fatalf("accounting %d blocks after growth, volume maps %d", v.Blocks(), lv.TotalBlocks())
	}
	// The growth extents honored the preference: segment 0 stays on
	// drive 0, the appended segments are on drive 1.
	if lv.NumDisks() < 2 {
		t.Fatalf("growth added no segments: %d", lv.NumDisks())
	}
	if drs := lv.Drives(); len(drs) != 2 {
		t.Fatalf("grown volume spans %d drives, want 2", len(drs))
	}
	if err := v.Grow(0, nil); err == nil {
		t.Error("zero-block growth accepted")
	}
	v.Free()
	if err := v.Grow(100, nil); err == nil {
		t.Error("growth of a freed volume accepted")
	}
	v.Free() // idempotent
	if got := freeBlocks(p); got[0] != got[1] {
		t.Fatalf("asymmetric free space after full reclaim: %v", got)
	}
}

// TestSnapshotCloneRefcounts walks the reference-counting lifecycle:
// snapshots and clones share the frozen extents (no new space), and the
// space returns to the pool only when the LAST referencing volume,
// snapshot, or clone is freed — in any order.
func TestSnapshotCloneRefcounts(t *testing.T) {
	p := testPool(t)
	free0 := freeBlocks(p)
	v, err := p.NewVolume(100, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	used := v.Blocks()

	sn, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Volume().HasCOW() {
		t.Fatal("snapshot did not flip the origin copy-on-write")
	}
	cl, err := sn.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if cl.Volume().TotalBlocks() != v.Volume().TotalBlocks() {
		t.Fatal("clone does not mirror the origin's VLBN space")
	}
	if !cl.Volume().HasCOW() {
		t.Fatal("clone segments not copy-on-write")
	}
	if cl.Blocks() != used {
		t.Fatalf("clone charged %d blocks, want the shared %d", cl.Blocks(), used)
	}
	if got := freeBlocks(p); got[0] != free0[0]-used {
		t.Fatalf("snapshot+clone consumed new space: %v", got)
	}

	// Free origin first: the snapshot and clone keep the extents alive.
	v.Free()
	if got := freeBlocks(p); got[0] != free0[0]-used {
		t.Fatalf("space reclaimed while snapshot and clone live: %v", got)
	}
	sn.Free()
	sn.Free() // idempotent
	if got := freeBlocks(p); got[0] != free0[0]-used {
		t.Fatalf("space reclaimed while clone lives: %v", got)
	}
	cl.Free()
	if got := freeBlocks(p); got[0] != free0[0] || got[1] != free0[1] {
		t.Fatalf("space not reclaimed after last reference: %v, want %v", got, free0)
	}

	if _, err := v.Snapshot(); err == nil {
		t.Error("snapshot of a freed volume accepted")
	}
	if _, err := sn.Clone(); err == nil {
		t.Error("clone from a freed snapshot accepted")
	}
}

// TestCowFaultCharging exercises the installed CowAllocFunc end to end:
// resolving a fault span carves a private contiguous extent — preferring
// the faulting drive — and charges it to the faulting volume's thin
// accounting.
func TestCowFaultCharging(t *testing.T) {
	p := testPool(t)
	v, err := p.NewVolume(100, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	sn, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	lv := v.Volume()
	used := v.Blocks()

	spans := lv.CowSpans([]lvm.Request{{VLBN: 0, Count: 1}})
	if len(spans) != 1 {
		t.Fatalf("got %d fault spans, want 1", len(spans))
	}
	if err := lv.ResolveCOW(spans); err != nil {
		t.Fatal(err)
	}
	faulted := int64(spans[0].Count)
	if v.Blocks() != used+faulted {
		t.Fatalf("fault charged %d blocks, want %d", v.Blocks()-used, faulted)
	}
	// Plenty of room on drive 0, so the private extent stays local.
	di, _, err := lv.Locate(spans[0].VLBN)
	if err != nil {
		t.Fatal(err)
	}
	if lv.Disk(di) != p.Drive(0).Disk() {
		t.Fatal("private extent not placed on the preferred (faulting) drive")
	}

	// A fault against a freed volume must fail at the allocator, not
	// carve space: pick a track that is still frozen.
	rest := lv.CowSpans([]lvm.Request{{VLBN: 0, Count: int(lv.TotalBlocks())}})
	if len(rest) == 0 {
		t.Fatal("no frozen tracks left to fault")
	}
	v.Free()
	sn.Free()
	if err := lv.ResolveCOW(rest[:1]); err == nil {
		t.Error("COW fault on a freed volume accepted")
	}
}

// TestCowFaultExhaustion: when no contiguous run of the right track
// length is free anywhere, the fault surfaces as an error instead of
// corrupting the volume.
func TestCowFaultExhaustion(t *testing.T) {
	p := testPool(t)
	free0 := freeBlocks(p)
	v, err := p.NewVolume(free0[0]+free0[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	sn, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	lv := v.Volume()
	spans := lv.CowSpans([]lvm.Request{{VLBN: 0, Count: 1}})
	if err := lv.ResolveCOW(spans); err == nil {
		t.Error("COW fault succeeded with a full pool")
	}
	sn.Free()
	v.Free()
	if got := freeBlocks(p); got[0] != free0[0] || got[1] != free0[1] {
		t.Fatalf("space not reclaimed: %v, want %v", got, free0)
	}
}
