// Package olap reproduces the paper's 4-D OLAP workload (§5.5): a data
// cube derived from TPC-H with dimensions (OrderDay, Quantity,
// NationID, PartTypeID), rolled up along OrderDay so two days share a
// cell, then chunked per disk — and the five queries Q1-Q5 run over it.
package olap

import (
	"fmt"
	"math/rand"
)

// Cube dimension indices, in the paper's order.
const (
	DimOrderDay = iota
	DimQuantity
	DimNationID
	DimPartTypeID
)

// FullDims returns the paper's cube shape after the 2-day roll-up:
// (1182, 150, 25, 50) for a 100 GB TPC-H dataset.
func FullDims() []int { return []int{1182, 150, 25, 50} }

// ChunkDims returns the per-disk chunk the paper partitions the cube
// into: (591, 75, 25, 25).
func ChunkDims() []int { return []int{591, 75, 25, 25} }

// ScaledChunkDims shrinks the per-disk chunk for fast runs; scale 1 is
// paper size. The two unchunked dimensions (NationID, and the already
// halved PartTypeID) shrink too, but never below 4 cells.
func ScaledChunkDims(scale float64) ([]int, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("olap: scale %v outside (0,1]", scale)
	}
	full := ChunkDims()
	out := make([]int, len(full))
	for i, d := range full {
		out[i] = int(float64(d) * scale)
		if out[i] < 4 {
			out[i] = 4
		}
	}
	return out, nil
}

// Query is one of the paper's five OLAP queries as a box over the
// chunk: a beam (Q1, Q2) or a range (Q3-Q5).
type Query struct {
	Name string
	// Text is the paper's natural-language form.
	Text string
	// Lo and Hi bound the fetched box, hi exclusive.
	Lo, Hi []int
}

// Cells returns the number of cells the query touches.
func (q Query) Cells() int64 {
	n := int64(1)
	for i := range q.Lo {
		n *= int64(q.Hi[i] - q.Lo[i])
	}
	return n
}

// Queries instantiates Q1-Q5 against a chunk of the given shape, using
// rng to draw the fixed coordinates (the paper's P, Q, C, and date
// picks). Extents follow §5.5: a "year" is 183 two-day cells, "20
// days" is 10 cells, and Q5 spans 10 cells in each dimension, capped
// by the chunk.
func Queries(rng *rand.Rand, dims []int) ([]Query, error) {
	if len(dims) != 4 {
		return nil, fmt.Errorf("olap: chunk must be 4-D, got %d dims", len(dims))
	}
	for i, d := range dims {
		if d < 2 {
			return nil, fmt.Errorf("olap: dimension %d too short (%d)", i, d)
		}
	}
	pick := func(d int) int { return rng.Intn(d) }
	span := func(d, want int) (int, int) {
		if want > d {
			want = d
		}
		lo := 0
		if d > want {
			lo = rng.Intn(d - want + 1)
		}
		return lo, lo + want
	}
	year := scaleExtent(dims[DimOrderDay], 591, 183)
	days20 := scaleExtent(dims[DimOrderDay], 591, 10)
	ten := func(dim int) int { return scaleExtent(dims[dim], ChunkDims()[dim], 10) }

	p, q, c := pick(dims[DimPartTypeID]), pick(dims[DimQuantity]), pick(dims[DimNationID])
	day := pick(dims[DimOrderDay])

	queries := make([]Query, 0, 5)

	// Q1: beam along the major order (OrderDay).
	queries = append(queries, Query{
		Name: "Q1",
		Text: "profit of product P with quantity Q to country C over all dates",
		Lo:   []int{0, q, c, p},
		Hi:   []int{dims[DimOrderDay], q + 1, c + 1, p + 1},
	})
	// Q2: beam along a non-major dimension (NationID).
	queries = append(queries, Query{
		Name: "Q2",
		Text: "profit of product P with quantity Q on one date over all countries",
		Lo:   []int{day, q, 0, p},
		Hi:   []int{day + 1, q + 1, dims[DimNationID], p + 1},
	})
	// Q3: 2-D range over OrderDay x Quantity.
	lo0, hi0 := span(dims[DimOrderDay], year)
	queries = append(queries, Query{
		Name: "Q3",
		Text: "profit of product P at all quantities to country C in one year",
		Lo:   []int{lo0, 0, c, p},
		Hi:   []int{hi0, dims[DimQuantity], c + 1, p + 1},
	})
	// Q4: 3-D range adding all countries.
	lo0, hi0 = span(dims[DimOrderDay], year)
	queries = append(queries, Query{
		Name: "Q4",
		Text: "profit of product P over all countries and quantities in one year",
		Lo:   []int{lo0, 0, 0, p},
		Hi:   []int{hi0, dims[DimQuantity], dims[DimNationID], p + 1},
	})
	// Q5: 4-D range: 20 days x 10 quantities x 10 countries x 10 products.
	lo0, hi0 = span(dims[DimOrderDay], days20)
	lo1, hi1 := span(dims[DimQuantity], ten(DimQuantity))
	lo2, hi2 := span(dims[DimNationID], ten(DimNationID))
	lo3, hi3 := span(dims[DimPartTypeID], ten(DimPartTypeID))
	queries = append(queries, Query{
		Name: "Q5",
		Text: "profit of 10 products, 10 quantities, 10 countries within 20 days",
		Lo:   []int{lo0, lo1, lo2, lo3},
		Hi:   []int{hi0, hi1, hi2, hi3},
	})
	return queries, nil
}

// scaleExtent shrinks a paper-size extent proportionally to a scaled
// dimension, staying within [1, dim].
func scaleExtent(dim, fullDim, fullExtent int) int {
	e := fullExtent * dim / fullDim
	if e < 1 {
		e = 1
	}
	if e > dim {
		e = dim
	}
	return e
}
