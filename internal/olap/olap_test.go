package olap

import (
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

func TestPaperDims(t *testing.T) {
	if d := FullDims(); d[0] != 1182 || d[1] != 150 || d[2] != 25 || d[3] != 50 {
		t.Errorf("FullDims=%v", d)
	}
	if d := ChunkDims(); d[0] != 591 || d[1] != 75 || d[2] != 25 || d[3] != 25 {
		t.Errorf("ChunkDims=%v", d)
	}
}

func TestScaledChunkDims(t *testing.T) {
	d, err := ScaledChunkDims(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if d[i] != ChunkDims()[i] {
			t.Errorf("scale 1 altered dims: %v", d)
		}
	}
	d, err = ScaledChunkDims(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 59 || d[1] != 7 {
		t.Errorf("scale 0.1: %v", d)
	}
	for _, x := range d {
		if x < 4 {
			t.Errorf("dimension below floor: %v", d)
		}
	}
	if _, err := ScaledChunkDims(0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := ScaledChunkDims(2); err == nil {
		t.Error("scale 2 accepted")
	}
}

func TestQueriesShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dims := ChunkDims()
	qs, err := Queries(rng, dims)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 5 {
		t.Fatalf("got %d queries, want 5", len(qs))
	}
	// Q1: beam along OrderDay.
	q1 := qs[0]
	if q1.Cells() != int64(dims[DimOrderDay]) {
		t.Errorf("Q1 touches %d cells, want %d", q1.Cells(), dims[DimOrderDay])
	}
	// Q2: beam along NationID.
	q2 := qs[1]
	if q2.Cells() != int64(dims[DimNationID]) {
		t.Errorf("Q2 touches %d cells, want %d", q2.Cells(), dims[DimNationID])
	}
	// Q3: one year x all quantities: 183 * 75.
	q3 := qs[2]
	if q3.Cells() != 183*75 {
		t.Errorf("Q3 touches %d cells, want %d", q3.Cells(), 183*75)
	}
	// Q4: Q3 x all countries.
	q4 := qs[3]
	if q4.Cells() != 183*75*25 {
		t.Errorf("Q4 touches %d cells, want %d", q4.Cells(), 183*75*25)
	}
	// Q5: 10 day-cells x 10 x 10 x 10.
	q5 := qs[4]
	if q5.Cells() != 10*10*10*10 {
		t.Errorf("Q5 touches %d cells, want 10000", q5.Cells())
	}
	for _, q := range qs {
		for i := range q.Lo {
			if q.Lo[i] < 0 || q.Hi[i] > dims[i] || q.Lo[i] >= q.Hi[i] {
				t.Errorf("%s: bad box dim %d: [%d,%d)", q.Name, i, q.Lo[i], q.Hi[i])
			}
		}
	}
}

func TestQueriesValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Queries(rng, []int{5, 5, 5}); err == nil {
		t.Error("3-D chunk accepted")
	}
	if _, err := Queries(rng, []int{5, 5, 5, 1}); err == nil {
		t.Error("degenerate dimension accepted")
	}
}

func TestGenLineItemsRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := GenLineItems(rng, 5000)
	if len(items) != 5000 {
		t.Fatal("wrong count")
	}
	for _, it := range items {
		if it.OrderDay < 0 || it.OrderDay >= 2361 ||
			it.Quantity < 1 || it.Quantity > 150 ||
			it.NationID < 0 || it.NationID >= 25 ||
			it.PartType < 0 || it.PartType >= 50 ||
			it.PriceC <= 0 {
			t.Fatalf("row out of domain: %+v", it)
		}
	}
}

func TestBuildCubeAggregates(t *testing.T) {
	items := []LineItem{
		{OrderDay: 0, Quantity: 1, NationID: 0, PartType: 0, PriceC: 100},
		{OrderDay: 1, Quantity: 1, NationID: 0, PartType: 0, PriceC: 50},   // same 2-day cell
		{OrderDay: 2, Quantity: 1, NationID: 0, PartType: 0, PriceC: 25},   // next cell
		{OrderDay: 9999, Quantity: 1, NationID: 0, PartType: 0, PriceC: 1}, // outside chunk
	}
	c, err := BuildCube(items, []int{4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.CellCount([4]int{0, 0, 0, 0})
	if err != nil || n != 2 {
		t.Fatalf("cell (0,0,0,0) count %d, want 2 (2-day roll-up)", n)
	}
	n, _ = c.CellCount([4]int{1, 0, 0, 0})
	if n != 1 {
		t.Fatalf("cell (1,0,0,0) count %d, want 1", n)
	}
	got, err := c.ProfitCents(Query{Lo: []int{0, 0, 0, 0}, Hi: []int{2, 1, 1, 1}})
	if err != nil || got != 175 {
		t.Fatalf("profit %d, want 175", got)
	}
	if _, err := c.CellCount([4]int{9, 0, 0, 0}); err == nil {
		t.Error("out-of-range cell accepted")
	}
}

// TestOLAPQueryOrderingMatchesFig8 runs the five queries on a scaled
// chunk across all four mappings and checks the orderings the paper
// reports: Q1 Naive/MultiMap crush the curves; Q2 curves beat Naive and
// MultiMap is best; Q5 MultiMap beats all.
func TestOLAPQueryOrderingMatchesFig8(t *testing.T) {
	// Scale 0.5 on a real drive model: large enough that curve-ordered
	// neighbours along the short dimensions sit tracks apart, as in the
	// paper's full-size chunk. (At tiny scales every mapping's blocks
	// are physically close and the orderings collapse.)
	dims, err := ScaledChunkDims(0.5) // (295, 37, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	qs, err := Queries(rng, dims)
	if err != nil {
		t.Fatal(err)
	}
	perCell := map[string]map[string]float64{}
	for _, k := range mapping.Kinds() {
		v, err := lvm.New(0, disk.AtlasTenKIII())
		if err != nil {
			t.Fatal(err)
		}
		m, err := mapping.New(k, v, dims, mapping.Options{DiskIdx: 0})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		e := query.NewExecutor(v, m)
		for _, q := range qs {
			st, err := e.Range(q.Lo, q.Hi)
			if err != nil {
				t.Fatalf("%v %s: %v", k, q.Name, err)
			}
			if perCell[q.Name] == nil {
				perCell[q.Name] = map[string]float64{}
			}
			perCell[q.Name][k.String()] = st.MsPerCell()
		}
	}
	// Q1 (major-order beam): Naive and MultiMap far ahead of the curves
	// ("two orders of magnitude" at paper scale).
	q1 := perCell["Q1"]
	if q1["Naive"]*5 > q1["Z-order"] || q1["MultiMap"]*5 > q1["Hilbert"] {
		t.Errorf("Q1 ordering wrong: %v", q1)
	}
	// Q2 (non-major beam): MultiMap best.
	q2 := perCell["Q2"]
	if q2["MultiMap"] >= q2["Naive"] || q2["MultiMap"] >= q2["Z-order"] || q2["MultiMap"] >= q2["Hilbert"] {
		t.Errorf("Q2 ordering wrong: %v", q2)
	}
	// Q3/Q4 (ranges including the major order): Naive beats the curves
	// and MultiMap stays at least level with Naive.
	for _, name := range []string{"Q3", "Q4"} {
		q := perCell[name]
		if q["Naive"] >= q["Z-order"] || q["Naive"] >= q["Hilbert"] {
			t.Errorf("%s: Naive should beat the curves: %v", name, q)
		}
		if q["MultiMap"] > q["Naive"]*1.25 {
			t.Errorf("%s: MultiMap %.3f should match Naive %.3f", name, q["MultiMap"], q["Naive"])
		}
	}
	// Q5 (4-D range): MultiMap best, and clearly ahead of Hilbert and
	// Naive. (Our Z-order's very fine fragmentation suffers rotational
	// near-misses under command overhead, so unlike the paper it can
	// fall behind Naive here; see EXPERIMENTS.md.)
	q5 := perCell["Q5"]
	if q5["MultiMap"] >= q5["Naive"] || q5["MultiMap"] >= q5["Z-order"] || q5["MultiMap"] >= q5["Hilbert"] {
		t.Errorf("Q5 ordering wrong: %v", q5)
	}
}
