package olap

import (
	"fmt"
	"math/rand"
)

// LineItem is the projection of the TPC-H lineitem/orders/part join the
// paper's cube is built from:
//
//	select o_orderdate, l_quantity, c_nationkey, p_type, l_extendedprice
type LineItem struct {
	OrderDay int // days since the TPC-H epoch
	Quantity int // 1..150
	NationID int // 0..24
	PartType int // 0..49
	PriceC   int // extended price in cents
}

// GenLineItems deterministically generates n TPC-H-flavoured rows:
// order dates uniform over ~6.5 years (2361 days), quantities uniform
// 1..150, nations and part types uniform — matching the uniform
// distributions dbgen uses for these columns.
func GenLineItems(rng *rand.Rand, n int) []LineItem {
	items := make([]LineItem, n)
	for i := range items {
		items[i] = LineItem{
			OrderDay: rng.Intn(2361),
			Quantity: 1 + rng.Intn(150),
			NationID: rng.Intn(25),
			PartType: rng.Intn(50),
			PriceC:   100_000 + rng.Intn(9_900_000),
		}
	}
	return items
}

// Cube is the materialized 4-D aggregate: per-cell row counts and
// profit sums after the 2-day OrderDay roll-up (§5.5: "each cell ...
// corresponds to the sales of a specific order size for a specific
// product sold to a specific country within 2 days").
type Cube struct {
	dims    []int
	counts  []int32
	profitC []int64
}

// BuildCube aggregates rows into the paper's cube shape. dims must be
// 4-D; rows outside the (possibly scaled) cube are dropped, mimicking a
// chunk boundary.
func BuildCube(items []LineItem, dims []int) (*Cube, error) {
	if len(dims) != 4 {
		return nil, fmt.Errorf("olap: cube must be 4-D")
	}
	n := int64(1)
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("olap: dimension %d non-positive", i)
		}
		n *= int64(d)
	}
	c := &Cube{dims: append([]int(nil), dims...), counts: make([]int32, n), profitC: make([]int64, n)}
	for _, it := range items {
		cell := [4]int{it.OrderDay / 2, it.Quantity - 1, it.NationID, it.PartType}
		idx, ok := c.index(cell)
		if !ok {
			continue
		}
		c.counts[idx]++
		c.profitC[idx] += int64(it.PriceC)
	}
	return c, nil
}

// Dims returns the cube shape.
func (c *Cube) Dims() []int { return c.dims }

func (c *Cube) index(cell [4]int) (int64, bool) {
	var idx, stride int64 = 0, 1
	for i := 0; i < 4; i++ {
		if cell[i] < 0 || cell[i] >= c.dims[i] {
			return 0, false
		}
		idx += int64(cell[i]) * stride
		stride *= int64(c.dims[i])
	}
	return idx, true
}

// CellCount returns the number of rows aggregated into a cell.
func (c *Cube) CellCount(cell [4]int) (int32, error) {
	idx, ok := c.index(cell)
	if !ok {
		return 0, fmt.Errorf("olap: cell %v out of range", cell)
	}
	return c.counts[idx], nil
}

// ProfitCents answers a query box against the in-memory aggregate (the
// ground truth a storage experiment's fetched cells must reconstruct).
func (c *Cube) ProfitCents(q Query) (int64, error) {
	if len(q.Lo) != 4 || len(q.Hi) != 4 {
		return 0, fmt.Errorf("olap: query must be 4-D")
	}
	var total int64
	var cell [4]int
	for cell[0] = q.Lo[0]; cell[0] < q.Hi[0]; cell[0]++ {
		for cell[1] = q.Lo[1]; cell[1] < q.Hi[1]; cell[1]++ {
			for cell[2] = q.Lo[2]; cell[2] < q.Hi[2]; cell[2]++ {
				for cell[3] = q.Lo[3]; cell[3] < q.Hi[3]; cell[3]++ {
					idx, ok := c.index(cell)
					if !ok {
						return 0, fmt.Errorf("olap: query cell %v out of range", cell)
					}
					total += c.profitC[idx]
				}
			}
		}
	}
	return total, nil
}
