package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	multimap "repro"
)

// wireContext derives the operation context from the wire: the base is
// the request's own context, so a client disconnect cancels the
// operation (the engine drops its queued chunks and counts them in
// Stats.Cancelled). A ?deadline_ms= query parameter or X-Deadline-Ms
// header adds a deadline, which the engine's deadline-aware admission
// treats as urgency exactly like an embedded caller's context
// deadline.
func wireContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	raw := r.URL.Query().Get("deadline_ms")
	if raw == "" {
		raw = r.Header.Get("X-Deadline-Ms")
	}
	if raw == "" {
		ctx, cancel := context.WithCancel(r.Context())
		return ctx, cancel, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		return nil, nil, fmt.Errorf("invalid deadline_ms %q", raw)
	}
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

// handleRange streams a range query as NDJSON: one {"chunk":...} line
// per retired plan chunk, written and flushed as the engine hands the
// chunk back — the response starts before the query finishes — then
// exactly one {"trailer":...} line with the aggregate Stats, the
// session's lifetime Stats, and the store's per-class totals. Errors
// after the header is sent (including cancellation) travel in the
// trailer.
func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	se, e := s.lookupSession(w, r)
	if e == nil {
		return
	}
	var req RangeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, err := wireContext(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	chunks := 0
	onChunk := func(c multimap.RangeChunk) {
		line := StreamLine{Chunk: &ChunkWire{Seq: c.Seq, Shard: c.Shard, Stats: statsWire(c.Stats)}}
		_ = enc.Encode(line)
		if fl != nil {
			fl.Flush()
		}
		chunks++
		if s.testChunkGate != nil {
			s.testChunkGate(se.name, e.id, c.Seq)
		}
	}

	e.opMu.RLock()
	st, qerr := e.sess.RangeQueryStream(ctx, req.Lo, req.Hi, onChunk)
	trailer := RangeTrailer{
		Stats:        statsWire(st),
		Chunks:       chunks,
		SessionStats: statsWire(e.sess.Stats()),
		Classes:      classWire(se.store.ClassTotals()),
	}
	e.opMu.RUnlock()
	if qerr != nil {
		trailer.Error = qerr.Error()
	}
	_ = enc.Encode(StreamLine{Trailer: &trailer})
	if fl != nil {
		fl.Flush()
	}
}
