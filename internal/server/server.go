package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	multimap "repro"
)

// Server is the daemon's HTTP front-end: a registry of open stores,
// pools, and wire sessions behind a stdlib ServeMux. It implements
// http.Handler; the caller owns the listener (net/http.Server) and the
// process lifecycle, and calls Close to drain and release everything.
type Server struct {
	mu     sync.Mutex
	closed bool
	stores map[string]*storeEntry
	pools  map[string]*multimap.Pool

	// wg tracks in-flight HTTP requests so Close can drain them before
	// tearing down the engine underneath.
	wg   sync.WaitGroup
	done chan struct{}

	mux *http.ServeMux

	events eventHub

	// testChunkGate, when non-nil, is called after each streamed range
	// chunk has been written AND flushed to the client. Tests use it to
	// stall the query mid-stream and prove the first chunk reaches the
	// wire before the query completes. Always nil in production.
	testChunkGate func(store, session string, seq int)
}

// storeEntry is one open store plus the resources the server owns on
// its behalf: the private volume (nil for pool tenants) and the wire
// sessions registered against it.
type storeEntry struct {
	name      string
	store     *multimap.Store
	vol       *multimap.Volume // nil when the store is a pool tenant
	pool      string           // owning pool name, "" for private volumes
	updatable bool

	mu       sync.Mutex
	sessions map[string]*sessionEntry
	nextSess int
}

// sessionEntry is one wire session. opMu serializes close against
// in-flight operations: operations hold the read side, close takes the
// write side, so a DELETE observed mid-query waits for (or, with the
// wire context cancelled, promptly gets) the operation's retirement.
type sessionEntry struct {
	id    string
	class string
	sess  *multimap.Session
	opMu  sync.RWMutex
}

// New builds an empty daemon front-end.
func New() *Server {
	s := &Server{
		stores: make(map[string]*storeEntry),
		pools:  make(map[string]*multimap.Pool),
		done:   make(chan struct{}),
		mux:    http.NewServeMux(),
	}
	s.events.init()
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /v1/stores", s.handleListStores)
	s.mux.HandleFunc("POST /v1/stores", s.handleOpenStore)
	s.mux.HandleFunc("GET /v1/stores/{store}", s.handleStoreInfo)
	s.mux.HandleFunc("DELETE /v1/stores/{store}", s.handleCloseStore)
	s.mux.HandleFunc("GET /v1/stores/{store}/metrics", s.handleStoreMetrics)
	s.mux.HandleFunc("GET /v1/pools", s.handleListPools)
	s.mux.HandleFunc("POST /v1/pools", s.handleOpenPool)
	s.mux.HandleFunc("POST /v1/stores/{store}/sessions", s.handleBeginSession)
	s.mux.HandleFunc("GET /v1/stores/{store}/sessions/{session}", s.handleSessionInfo)
	s.mux.HandleFunc("DELETE /v1/stores/{store}/sessions/{session}", s.handleCloseSession)
	s.mux.HandleFunc("POST /v1/stores/{store}/sessions/{session}/beam", s.opHandler(s.opBeam))
	s.mux.HandleFunc("POST /v1/stores/{store}/sessions/{session}/range", s.handleRange)
	s.mux.HandleFunc("POST /v1/stores/{store}/sessions/{session}/fetch", s.opHandler(s.opFetch))
	s.mux.HandleFunc("POST /v1/stores/{store}/sessions/{session}/insert", s.opHandler(s.opInsert))
	s.mux.HandleFunc("POST /v1/stores/{store}/sessions/{session}/delete", s.opHandler(s.opDelete))
	s.mux.HandleFunc("POST /v1/stores/{store}/sessions/{session}/flush", s.opHandler(s.opFlush))
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
}

// ServeHTTP admits the request into the drain group and dispatches it.
// After Close has begun, new requests are refused with 503 so the
// drain converges.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("server shutting down"))
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	s.mux.ServeHTTP(w, r)
}

// Close drains and tears down: refuse new requests, wake every event
// stream, wait for in-flight requests (streamed queries retire or get
// cancelled by their clients), then close all sessions, stores,
// volumes, and pool tenants. Safe to call more than once.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	s.mu.Unlock()

	s.wg.Wait()

	s.mu.Lock()
	entries := make([]*storeEntry, 0, len(s.stores))
	for _, se := range s.stores {
		entries = append(entries, se)
	}
	s.stores = make(map[string]*storeEntry)
	pools := s.pools
	s.pools = make(map[string]*multimap.Pool)
	s.mu.Unlock()

	var firstErr error
	for _, se := range entries {
		if err := s.closeEntry(ctx, se, pools); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// closeEntry closes one store's sessions and then the store itself —
// private stores close their volume; pool tenants are destroyed in
// their pool so the pool's allocation maps stay consistent.
func (s *Server) closeEntry(ctx context.Context, se *storeEntry, pools map[string]*multimap.Pool) error {
	se.mu.Lock()
	sessions := make([]*sessionEntry, 0, len(se.sessions))
	for _, e := range se.sessions {
		sessions = append(sessions, e)
	}
	se.sessions = make(map[string]*sessionEntry)
	se.mu.Unlock()

	var firstErr error
	for _, e := range sessions {
		e.opMu.Lock()
		if err := e.sess.Close(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
		e.opMu.Unlock()
	}
	if se.pool != "" {
		if p := pools[se.pool]; p != nil {
			if err := p.Destroy(ctx, se.name); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	se.store.Close()
	if se.vol != nil {
		se.vol.Close()
	}
	return firstErr
}

// ---- store and pool handlers ----

func (s *Server) handleListStores(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	infos := make([]StoreInfo, 0, len(s.stores))
	for _, se := range s.stores {
		infos = append(infos, s.storeInfoLocked(se))
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) storeInfoLocked(se *storeEntry) StoreInfo {
	se.mu.Lock()
	n := len(se.sessions)
	se.mu.Unlock()
	return StoreInfo{
		Name:       se.name,
		Mapping:    se.store.Mapping().String(),
		Dims:       se.store.Dims(),
		Shards:     se.store.NumShards(),
		CellBlocks: se.store.CellBlocks(),
		Updatable:  se.updatable,
		Pool:       se.pool,
		Sessions:   n,
	}
}

// buildOptions translates the wire spec's knob fields into the
// library's functional options; zero values stay unset.
func buildOptions(req OpenStoreRequest) []multimap.Option {
	var opts []multimap.Option
	if req.Policy != "" {
		opts = append(opts, multimap.WithPolicy(req.Policy))
	}
	if req.ChunkCells != 0 {
		opts = append(opts, multimap.WithChunkCells(req.ChunkCells))
	}
	if req.CacheBlocks != 0 {
		opts = append(opts, multimap.WithCache(req.CacheBlocks))
	}
	if req.MaxInflight != 0 {
		opts = append(opts, multimap.WithMaxInflight(req.MaxInflight))
	}
	if req.Shards != 0 {
		opts = append(opts, multimap.WithShards(req.Shards))
	}
	if req.BatchWindowUs != 0 {
		opts = append(opts, multimap.WithBatchWindow(time.Duration(req.BatchWindowUs)*time.Microsecond))
	}
	if req.DeadlineAgingUs != 0 {
		opts = append(opts, multimap.WithDeadlineAging(time.Duration(req.DeadlineAgingUs)*time.Microsecond))
	}
	if req.WriteBack {
		opts = append(opts, multimap.WithWriteBack(req.WBWatermarkBlocks, time.Duration(req.WBIntervalUs)*time.Microsecond))
	}
	for _, c := range req.Classes {
		opts = append(opts, multimap.WithQoSClass(c.Name, c.Weight, c.Urgent))
	}
	if req.FairQuantum != 0 {
		opts = append(opts, multimap.WithFairShare(req.FairQuantum))
	}
	if req.DefaultClass != "" {
		opts = append(opts, multimap.WithQoS(req.DefaultClass))
	}
	if req.Pipeline != 0 {
		opts = append(opts, multimap.WithPipeline(req.Pipeline))
	}
	if req.Updatable {
		opts = append(opts, multimap.Updatable(multimap.UpdateOptions{}))
	}
	if req.CapacityBlocks != 0 {
		opts = append(opts, multimap.WithCapacity(req.CapacityBlocks))
	}
	if len(req.Drives) > 0 {
		opts = append(opts, multimap.WithDrives(req.Drives...))
	}
	return opts
}

// OpenStore opens a store from a wire spec and registers it; it backs
// POST /v1/stores and the daemon's -open boot flag.
func (s *Server) OpenStore(ctx context.Context, req OpenStoreRequest) (StoreInfo, error) {
	if req.Name == "" {
		return StoreInfo{}, fmt.Errorf("store name required")
	}
	kind, err := multimap.ParseMapping(req.Mapping)
	if err != nil {
		return StoreInfo{}, err
	}
	opts := buildOptions(req)

	var se *storeEntry
	if req.Pool != "" {
		s.mu.Lock()
		p := s.pools[req.Pool]
		s.mu.Unlock()
		if p == nil {
			return StoreInfo{}, fmt.Errorf("pool %q not open", req.Pool)
		}
		t, err := p.Create(ctx, req.Name, kind, req.Dims, opts...)
		if err != nil {
			return StoreInfo{}, err
		}
		se = &storeEntry{name: req.Name, store: t.Store(), pool: req.Pool}
	} else {
		if len(req.Disks) == 0 {
			return StoreInfo{}, fmt.Errorf("store spec needs disks or a pool")
		}
		models := make([]multimap.DiskModel, len(req.Disks))
		for i, d := range req.Disks {
			models[i] = multimap.DiskModel(d)
		}
		vol, err := multimap.OpenVolumeDepth(req.AdjDepth, models...)
		if err != nil {
			return StoreInfo{}, err
		}
		st, err := multimap.Open(vol, kind, req.Dims, opts...)
		if err != nil {
			vol.Close()
			return StoreInfo{}, err
		}
		se = &storeEntry{name: req.Name, store: st, vol: vol}
	}
	se.updatable = req.Updatable
	se.sessions = make(map[string]*sessionEntry)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.closeEntry(ctx, se, s.pools)
		return StoreInfo{}, fmt.Errorf("server shutting down")
	}
	if _, dup := s.stores[req.Name]; dup {
		s.mu.Unlock()
		s.closeEntry(ctx, se, s.pools)
		return StoreInfo{}, fmt.Errorf("store %q already open", req.Name)
	}
	s.stores[req.Name] = se
	info := s.storeInfoLocked(se)
	s.mu.Unlock()

	s.events.publish(Event{Type: "store_opened", Store: req.Name})
	return info, nil
}

func (s *Server) handleOpenStore(w http.ResponseWriter, r *http.Request) {
	var req OpenStoreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.OpenStore(r.Context(), req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) lookupStore(w http.ResponseWriter, r *http.Request) *storeEntry {
	name := r.PathValue("store")
	s.mu.Lock()
	se := s.stores[name]
	s.mu.Unlock()
	if se == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("store %q not open", name))
		return nil
	}
	return se
}

func (s *Server) handleStoreInfo(w http.ResponseWriter, r *http.Request) {
	se := s.lookupStore(w, r)
	if se == nil {
		return
	}
	writeJSON(w, http.StatusOK, s.storeInfoLocked(se))
}

func (s *Server) handleCloseStore(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("store")
	s.mu.Lock()
	se := s.stores[name]
	delete(s.stores, name)
	pools := s.pools
	s.mu.Unlock()
	if se == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("store %q not open", name))
		return
	}
	err := s.closeEntry(r.Context(), se, pools)
	s.events.publish(Event{Type: "store_closed", Store: name})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"closed": name})
}

func (s *Server) handleStoreMetrics(w http.ResponseWriter, r *http.Request) {
	se := s.lookupStore(w, r)
	if se == nil {
		return
	}
	writeJSON(w, http.StatusOK, metricsWire(se.store.Metrics()))
}

func (s *Server) handleOpenPool(w http.ResponseWriter, r *http.Request) {
	var req OpenPoolRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Name == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("pool name required"))
		return
	}
	popts := []multimap.PoolOption{}
	models := make([]multimap.DiskModel, len(req.Drives))
	for i, d := range req.Drives {
		models[i] = multimap.DiskModel(d)
	}
	popts = append(popts, multimap.WithPoolDrives(models...))
	if req.AdjDepth != 0 {
		popts = append(popts, multimap.WithPoolDepth(req.AdjDepth))
	}
	if req.AutoGrowBlocks != 0 {
		popts = append(popts, multimap.WithAutoGrow(req.AutoGrowBlocks))
	}
	p, err := multimap.OpenPool(popts...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	if _, dup := s.pools[req.Name]; dup {
		s.mu.Unlock()
		writeErr(w, http.StatusBadRequest, fmt.Errorf("pool %q already open", req.Name))
		return
	}
	s.pools[req.Name] = p
	s.mu.Unlock()
	s.events.publish(Event{Type: "pool_opened", Store: req.Name})
	writeJSON(w, http.StatusCreated, poolInfo(req.Name, p))
}

func poolInfo(name string, p *multimap.Pool) PoolInfo {
	info := PoolInfo{Name: name, Tenants: []string{}}
	for _, t := range p.Tenants() {
		info.Tenants = append(info.Tenants, t.Name)
	}
	sort.Strings(info.Tenants)
	for _, u := range p.Usage() {
		info.Usage = append(info.Usage, PoolDriveWire{
			Name:            u.Name,
			TotalBlocks:     u.TotalBlocks,
			FreeBlocks:      u.FreeBlocks,
			AutoGrownBlocks: u.AutoGrownBlocks,
		})
	}
	return info
}

func (s *Server) handleListPools(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.pools))
	for name := range s.pools {
		names = append(names, name)
	}
	pools := make(map[string]*multimap.Pool, len(s.pools))
	for name, p := range s.pools {
		pools[name] = p
	}
	s.mu.Unlock()
	sort.Strings(names)
	infos := make([]PoolInfo, 0, len(names))
	for _, name := range names {
		infos = append(infos, poolInfo(name, pools[name]))
	}
	writeJSON(w, http.StatusOK, infos)
}

// ---- session handlers ----

func (s *Server) handleBeginSession(w http.ResponseWriter, r *http.Request) {
	se := s.lookupStore(w, r)
	if se == nil {
		return
	}
	var req BeginSessionRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	var sess *multimap.Session
	if req.Class != "" {
		sess = se.store.BeginQoS(req.Class)
	} else {
		sess = se.store.Begin()
	}
	se.mu.Lock()
	se.nextSess++
	id := fmt.Sprintf("s%d", se.nextSess)
	e := &sessionEntry{id: id, class: req.Class, sess: sess}
	se.sessions[id] = e
	se.mu.Unlock()
	s.events.publish(Event{Type: "session_begun", Store: se.name, Session: id, Class: req.Class})
	writeJSON(w, http.StatusCreated, s.sessionInfo(se, e))
}

func (s *Server) sessionInfo(se *storeEntry, e *sessionEntry) SessionInfo {
	return SessionInfo{
		Session: e.id,
		Store:   se.name,
		Class:   e.class,
		Stats:   statsWire(e.sess.Stats()),
	}
}

func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) (*storeEntry, *sessionEntry) {
	se := s.lookupStore(w, r)
	if se == nil {
		return nil, nil
	}
	id := r.PathValue("session")
	se.mu.Lock()
	e := se.sessions[id]
	se.mu.Unlock()
	if e == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session %q not open on store %q", id, se.name))
		return nil, nil
	}
	return se, e
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	se, e := s.lookupSession(w, r)
	if e == nil {
		return
	}
	writeJSON(w, http.StatusOK, s.sessionInfo(se, e))
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	se := s.lookupStore(w, r)
	if se == nil {
		return
	}
	id := r.PathValue("session")
	se.mu.Lock()
	e := se.sessions[id]
	delete(se.sessions, id)
	se.mu.Unlock()
	if e == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("session %q not open on store %q", id, se.name))
		return
	}
	e.opMu.Lock()
	info := s.sessionInfo(se, e)
	err := e.sess.Close(r.Context())
	e.opMu.Unlock()
	s.events.publish(Event{Type: "session_closed", Store: se.name, Session: id, Class: e.class})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// ---- plain (non-streamed) session operations ----

// opFunc runs one decoded session operation under the session's op
// lock with the wire-derived context.
type opFunc func(ctx context.Context, e *sessionEntry, body []byte) (multimap.Stats, error)

// opHandler wraps an operation: wire context (disconnect + deadline),
// op lock, and the StatsResponse envelope. Operation errors travel in
// the envelope with status 200 — partial Stats (deadline expiry
// mid-plan) are a result, not a transport failure.
func (s *Server) opHandler(op opFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		_, e := s.lookupSession(w, r)
		if e == nil {
			return
		}
		body, err := readBody(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel, err := wireContext(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		defer cancel()
		e.opMu.RLock()
		st, opErr := op(ctx, e, body)
		e.opMu.RUnlock()
		resp := StatsResponse{Stats: statsWire(st)}
		if opErr != nil {
			resp.Error = opErr.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) opBeam(ctx context.Context, e *sessionEntry, body []byte) (multimap.Stats, error) {
	var req BeamRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return multimap.Stats{}, err
	}
	return e.sess.Beam(ctx, req.Dim, req.Fixed)
}

func (s *Server) opFetch(ctx context.Context, e *sessionEntry, body []byte) (multimap.Stats, error) {
	var req CellRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return multimap.Stats{}, err
	}
	return e.sess.FetchCell(ctx, req.Cell)
}

func (s *Server) opInsert(ctx context.Context, e *sessionEntry, body []byte) (multimap.Stats, error) {
	var req CellRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return multimap.Stats{}, err
	}
	return e.sess.Insert(ctx, req.Cell)
}

func (s *Server) opDelete(ctx context.Context, e *sessionEntry, body []byte) (multimap.Stats, error) {
	var req CellRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return multimap.Stats{}, err
	}
	return e.sess.Delete(ctx, req.Cell)
}

func (s *Server) opFlush(ctx context.Context, e *sessionEntry, _ []byte) (multimap.Stats, error) {
	return multimap.Stats{}, e.sess.Flush(ctx)
}

// ---- metrics ----

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metricsSnapshot())
}

func (s *Server) metricsSnapshot() MetricsResponse {
	s.mu.Lock()
	entries := make(map[string]*storeEntry, len(s.stores))
	for name, se := range s.stores {
		entries[name] = se
	}
	s.mu.Unlock()
	resp := MetricsResponse{Stores: make(map[string]MetricsWire, len(entries))}
	for name, se := range entries {
		resp.Stores[name] = metricsWire(se.store.Metrics())
	}
	return resp
}

// ---- small helpers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

func readBody(r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	defer r.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	return buf, nil
}
