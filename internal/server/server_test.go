package server

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	multimap "repro"
)

// settleGoroutines polls until the goroutine count returns to the
// baseline — service loops exit with their stores, SSE loops with
// their connections.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// testSpec is a small multi-chunk store: chunk_cells keeps range
// queries streaming several chunks.
func testSpec(name string) OpenStoreRequest {
	return OpenStoreRequest{
		Name:       name,
		Disks:      []string{"mediumtest"},
		AdjDepth:   32,
		Mapping:    "multimap",
		Dims:       []int{16, 8, 8},
		ChunkCells: 16,
		Classes:    []ClassSpec{{Name: "interactive", Weight: 2}},
	}
}

func startDaemon(t *testing.T, specs ...OpenStoreRequest) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv := New()
	for _, spec := range specs {
		if _, err := srv.OpenStore(context.Background(), spec); err != nil {
			t.Fatalf("open %q: %v", spec.Name, err)
		}
	}
	ts := httptest.NewServer(srv)
	return srv, ts, NewClient(ts.URL)
}

// underlying returns the library store behind a daemon store, for
// asserting engine-side ground truth.
func underlying(t *testing.T, srv *Server, name string) *multimap.Store {
	t.Helper()
	srv.mu.Lock()
	defer srv.mu.Unlock()
	se := srv.stores[name]
	if se == nil {
		t.Fatalf("store %q not registered", name)
	}
	return se.store
}

// TestDaemonLifecycle drives the full wire surface — open, sessions,
// beam, streamed range, metrics, close — and then proves a graceful
// shutdown drains everything: no goroutine survives Close.
func TestDaemonLifecycle(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, ts, c := startDaemon(t, testSpec("life"))
	ctx := context.Background()

	infos, err := c.Stores(ctx)
	if err != nil || len(infos) != 1 || infos[0].Name != "life" {
		t.Fatalf("stores = %+v, %v", infos, err)
	}

	sess, err := c.Begin(ctx, "life", "interactive")
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Beam(ctx, "life", sess, 0, []int{0, 3, 2}, 0)
	if err != nil {
		t.Fatalf("beam: %v", err)
	}
	if st.Cells == 0 || st.Requests == 0 {
		t.Fatalf("beam returned empty stats %+v", st)
	}

	chunks := 0
	tr, err := c.RangeQuery(ctx, "life", sess, []int{0, 0, 0}, []int{8, 8, 8}, 0, func(ChunkWire) { chunks++ })
	if err != nil {
		t.Fatalf("range: %v", err)
	}
	if chunks < 2 {
		t.Fatalf("want a multi-chunk stream, got %d chunks", chunks)
	}
	if tr.Chunks != chunks {
		t.Fatalf("trailer chunks %d != observed %d", tr.Chunks, chunks)
	}
	// Per-chunk deltas are reported in cell units; they must sum to the
	// aggregate (floats via the same additions, so exact equality on
	// counters suffices here).
	var sum multimap.Stats
	_, err = c.RangeQuery(ctx, "life", sess, []int{0, 0, 0}, []int{8, 8, 8}, 0, func(ch ChunkWire) {
		sum.Accumulate(ch.Stats.Stats())
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cells == 0 {
		t.Fatal("chunk deltas carried no cells")
	}

	m, err := c.Metrics(ctx, "life")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if m.Queries < 3 || m.LatencyP50Ms <= 0 {
		t.Fatalf("metrics missed queries: %+v", m)
	}
	if len(m.Classes) == 0 {
		t.Fatal("metrics lost class totals")
	}

	if _, err := c.CloseSession(ctx, "life", sess); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionStats(ctx, "life", sess); err == nil {
		t.Fatal("closed session still resolves")
	}

	if err := srv.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Closed server refuses new work.
	if _, err := c.Begin(ctx, "life", ""); err == nil {
		t.Fatal("begin succeeded after Close")
	}
	ts.Close()
	settleGoroutines(t, baseline)
}

// TestStreamingFirstChunkBeforeCompletion proves range responses
// stream rather than buffer: the client reads the first chunk line off
// the wire while the daemon-side query is provably still in flight
// (held mid-stream by the test gate).
func TestStreamingFirstChunkBeforeCompletion(t *testing.T) {
	release := make(chan struct{})
	gated := make(chan int, 64)
	srv := New()
	// Install the gate before the listener exists so handlers never race
	// the assignment.
	srv.testChunkGate = func(store, session string, seq int) {
		gated <- seq
		if seq == 0 {
			<-release // hold the query after its first chunk is on the wire
		}
	}
	if _, err := srv.OpenStore(context.Background(), testSpec("stream")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close(context.Background())

	ctx := context.Background()
	c := NewClient(ts.URL)
	sess, err := c.Begin(ctx, "stream", "")
	if err != nil {
		t.Fatal(err)
	}

	body := strings.NewReader(`{"lo":[0,0,0],"hi":[16,8,8]}`)
	req, err := http.NewRequest(http.MethodPost,
		ts.URL+"/v1/stores/stream/sessions/"+sess+"/range", body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The gate is holding the query after chunk 0. Read that first line
	// now: if the server buffered the response, this read would block
	// until the (held) query finished and the test would time out.
	select {
	case seq := <-gated:
		if seq != 0 {
			t.Fatalf("first gated chunk has seq %d", seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no chunk reached the gate")
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	var line StreamLine
	if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if line.Chunk == nil || line.Chunk.Seq != 0 {
		t.Fatalf("first line is not chunk 0: %s", sc.Text())
	}
	if line.Trailer != nil {
		t.Fatal("query completed before first chunk was read")
	}

	close(release)
	var trailer *RangeTrailer
	for sc.Scan() {
		var l StreamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatal(err)
		}
		if l.Trailer != nil {
			trailer = l.Trailer
			break
		}
	}
	if trailer == nil {
		t.Fatalf("stream ended without trailer: %v", sc.Err())
	}
	if trailer.Error != "" || trailer.Chunks < 2 {
		t.Fatalf("bad trailer %+v", trailer)
	}
}

// TestDisconnectCancelsAndAttributes proves wire-level cancellation
// reaches the engine: a client that disconnects mid-stream bumps the
// service Cancelled counters, and the attribution invariant — summed
// session Stats equal ServiceTotals.Attributed — survives the partial
// query.
func TestDisconnectCancelsAndAttributes(t *testing.T) {
	release := make(chan struct{})
	srv := New()
	srv.testChunkGate = func(store, session string, seq int) {
		if seq == 0 {
			<-release
		}
	}
	// The drop store is tuned so chunks are QUEUED at the service when
	// the disconnect lands: the session keeps 4 chunks outstanding, the
	// admission window paces passes 100ms apart, and the small DRR
	// quantum admits roughly one chunk per pass — so after the first
	// chunk is served (and held at the gate), its successors sit in the
	// service queue long enough for the cancelled context to reach the
	// next admission pass.
	spec := testSpec("drop")
	spec.MaxInflight = 4
	spec.BatchWindowUs = 100_000
	spec.FairQuantum = 20
	if _, err := srv.OpenStore(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close(context.Background())
	c := NewClient(ts.URL)

	ctx := context.Background()
	sess, err := c.Begin(ctx, "drop", "")
	if err != nil {
		t.Fatal(err)
	}

	qctx, qcancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(qctx, http.MethodPost,
		ts.URL+"/v1/stores/drop/sessions/"+sess+"/range",
		strings.NewReader(`{"lo":[0,0,0],"hi":[16,8,8]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// First chunk is on the wire and the query is held at the gate.
	// Disconnect: cancelling the request context closes the connection,
	// which cancels the handler's request context on the daemon.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first chunk: %v", sc.Err())
	}
	qcancel()
	resp.Body.Close()
	close(release)

	st := underlying(t, srv, "drop")
	deadline := time.Now().Add(5 * time.Second)
	for {
		var cancelled int64
		for _, tot := range st.ShardServiceTotals() {
			cancelled += tot.Cancelled
		}
		if cancelled > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("disconnect never reached the engine Cancelled counters")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The partial query must not break attribution: what the wire
	// session was handed still sums to what the services attributed.
	wireStats, err := c.SessionStats(ctx, "drop", sess)
	if err != nil {
		t.Fatal(err)
	}
	var attr multimap.Stats
	for _, tot := range st.ShardServiceTotals() {
		attr.Accumulate(tot.Attributed)
	}
	if wireStats.Cells != attr.Cells || wireStats.Requests != attr.Requests ||
		wireStats.CacheHits != attr.CacheHits || wireStats.CacheMisses != attr.CacheMisses {
		t.Fatalf("session sums %+v != attributed %+v", wireStats, attr)
	}
	if diff := math.Abs(wireStats.TotalMs - attr.TotalMs); diff > 1e-6*(1+wireStats.TotalMs) {
		t.Fatalf("attributed time drift %g", diff)
	}
	if wireStats.Cancelled == 0 {
		t.Fatalf("session stats did not record the drop: %+v", wireStats)
	}
}

// TestDeadlinePropagation proves a wire deadline becomes an engine
// deadline: an impossible deadline_ms yields a deadline error and
// DeadlineExceeded drops, not a hung request.
func TestDeadlinePropagation(t *testing.T) {
	srv, ts, c := startDaemon(t, testSpec("ddl"))
	defer ts.Close()
	defer srv.Close(context.Background())

	ctx := context.Background()
	sess, err := c.Begin(ctx, "ddl", "")
	if err != nil {
		t.Fatal(err)
	}
	// Burn the deadline before the query is admitted: the engine sees an
	// already-expired context and drops every chunk.
	start := time.Now()
	deadline := int64(1)
	var sawErr error
	for i := 0; i < 50 && sawErr == nil; i++ {
		_, sawErr = c.RangeQuery(ctx, "ddl", sess, []int{0, 0, 0}, []int{16, 8, 8}, deadline, nil)
	}
	if sawErr == nil {
		t.Skip("1ms deadline never expired on this host")
	}
	if !strings.Contains(sawErr.Error(), "deadline") && !strings.Contains(sawErr.Error(), "cancel") {
		t.Fatalf("unexpected error %v", sawErr)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("deadline queries took implausibly long")
	}
	wireStats, err := c.SessionStats(ctx, "ddl", sess)
	if err != nil {
		t.Fatal(err)
	}
	if wireStats.DeadlineExceeded == 0 && wireStats.Cancelled == 0 {
		t.Fatalf("no drops recorded: %+v", wireStats)
	}
}

// TestEventsFeed checks the SSE stream interleaves metrics frames with
// lifecycle events and ends cleanly on server shutdown.
func TestEventsFeed(t *testing.T) {
	srv, ts, c := startDaemon(t, testSpec("ev"))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	type frame struct {
		event string
		data  []byte
	}
	frames := make(chan frame, 64)
	errCh := make(chan error, 1)
	go func() {
		errCh <- c.Events(ctx, 50, func(event string, data []byte) bool {
			frames <- frame{event, data}
			return true
		})
	}()

	// First frame is an immediate metrics snapshot naming the store.
	select {
	case f := <-frames:
		if f.event != "metrics" {
			t.Fatalf("first frame %q, want metrics", f.event)
		}
		var m MetricsResponse
		if err := json.Unmarshal(f.data, &m); err != nil {
			t.Fatal(err)
		}
		if _, ok := m.Stores["ev"]; !ok {
			t.Fatalf("metrics frame misses store: %s", f.data)
		}
	case <-ctx.Done():
		t.Fatal("no metrics frame")
	}

	// A session begin surfaces as a lifecycle event.
	if _, err := c.Begin(context.Background(), "ev", ""); err != nil {
		t.Fatal(err)
	}
	sawLifecycle := false
	timeout := time.After(5 * time.Second)
	for !sawLifecycle {
		select {
		case f := <-frames:
			if f.event == "lifecycle" {
				var ev Event
				if err := json.Unmarshal(f.data, &ev); err != nil {
					t.Fatal(err)
				}
				if ev.Type == "session_begun" && ev.Store == "ev" {
					sawLifecycle = true
				}
			}
		case <-timeout:
			t.Fatal("no lifecycle frame for session begin")
		}
	}

	// Server shutdown ends the stream without an error.
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil && ctx.Err() == nil {
			t.Fatalf("events stream errored: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("events stream did not end on shutdown")
	}
}

// TestPoolOverWire opens a pool and a tenant store through the wire
// and queries it like any private-volume store.
func TestPoolOverWire(t *testing.T) {
	srv, ts, c := startDaemon(t)
	defer ts.Close()
	defer srv.Close(context.Background())
	ctx := context.Background()

	if _, err := c.OpenPool(ctx, OpenPoolRequest{
		Name: "p", Drives: []string{"mediumtest", "mediumtest"}, AdjDepth: 32,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenStore(ctx, OpenStoreRequest{
		Name: "ten", Pool: "p", Mapping: "multimap", Dims: []int{8, 8, 4}, ChunkCells: 16,
	}); err != nil {
		t.Fatal(err)
	}
	sess, err := c.Begin(ctx, "ten", "")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := c.RangeQuery(ctx, "ten", sess, []int{0, 0, 0}, []int{4, 4, 4}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Cells == 0 {
		t.Fatalf("tenant query returned no cells: %+v", tr.Stats)
	}
	if err := c.CloseStore(ctx, "ten"); err != nil {
		t.Fatal(err)
	}
}
