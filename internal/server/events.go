package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Event is one lifecycle event on the /v1/events feed.
type Event struct {
	Type    string `json:"type"`
	Store   string `json:"store,omitempty"`
	Session string `json:"session,omitempty"`
	Class   string `json:"class,omitempty"`
	Seq     int64  `json:"seq"`
}

// eventHub fans lifecycle events out to the open SSE connections. A
// subscriber that falls behind its buffer drops events rather than
// back-pressuring the serving path — the periodic metrics frames carry
// the ground-truth counters regardless.
type eventHub struct {
	mu   sync.Mutex
	seq  int64
	subs map[int]chan Event
	next int
}

func (h *eventHub) init() {
	h.subs = make(map[int]chan Event)
}

func (h *eventHub) publish(ev Event) {
	h.mu.Lock()
	h.seq++
	ev.Seq = h.seq
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	h.mu.Unlock()
}

func (h *eventHub) subscribe() (int, chan Event) {
	ch := make(chan Event, 64)
	h.mu.Lock()
	id := h.next
	h.next++
	h.subs[id] = ch
	h.mu.Unlock()
	return id, ch
}

func (h *eventHub) unsubscribe(id int) {
	h.mu.Lock()
	delete(h.subs, id)
	h.mu.Unlock()
}

// defaultMetricsInterval paces the periodic metrics frames on an event
// stream that didn't ask for a specific cadence.
const defaultMetricsInterval = time.Second

// handleEvents serves the live feed as Server-Sent Events. Two event
// kinds interleave on one stream:
//
//	event: metrics — a MetricsResponse snapshot of every open store
//	  (queue depths, admission batch sizes, cache hit rate,
//	  flush/pipeline counters, latency percentiles), sent immediately
//	  on connect and then every interval_ms (default 1000, min 10).
//	event: lifecycle — an Event for each store/pool/session open and
//	  close, sent as it happens.
//
// The stream ends when the client disconnects or the daemon shuts
// down.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	interval := defaultMetricsInterval
	if raw := r.URL.Query().Get("interval_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid interval_ms %q", raw))
			return
		}
		if ms < 10 {
			ms = 10
		}
		interval = time.Duration(ms) * time.Millisecond
	}

	id, ch := s.events.subscribe()
	defer s.events.unsubscribe(id)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	if !send("metrics", s.metricsSnapshot()) {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case ev := <-ch:
			if !send("lifecycle", ev) {
				return
			}
		case <-tick.C:
			if !send("metrics", s.metricsSnapshot()) {
				return
			}
		}
	}
}
