// Package server is the network daemon front-end: it exposes the
// multimap session API over HTTP so many remote clients multiplex onto
// the embedded library's admission batcher — the cross-query
// coalescing and weighted-fair scheduling work best when request
// streams are dense, and the wire is where dense streams come from.
//
// The protocol is JSON over stdlib net/http (no new module deps):
//
//	GET    /v1/stores                                  list open stores
//	POST   /v1/stores                                  open a store (OpenStoreRequest)
//	GET    /v1/stores/{store}                          store info
//	DELETE /v1/stores/{store}                          close the store
//	GET    /v1/stores/{store}/metrics                  Metrics snapshot
//	POST   /v1/pools                                   open a pool (OpenPoolRequest)
//	GET    /v1/pools                                   list pools with drive usage
//	POST   /v1/stores/{store}/sessions                 begin a session (BeginSessionRequest)
//	GET    /v1/stores/{store}/sessions/{session}       session info + lifetime stats
//	DELETE /v1/stores/{store}/sessions/{session}       close the session (flushes write-back)
//	POST   /v1/stores/{store}/sessions/{session}/beam    {"dim":d,"fixed":[...]}
//	POST   /v1/stores/{store}/sessions/{session}/range   {"lo":[...],"hi":[...]} — streamed
//	POST   /v1/stores/{store}/sessions/{session}/fetch   {"cell":[...]}
//	POST   /v1/stores/{store}/sessions/{session}/insert  {"cell":[...]}
//	POST   /v1/stores/{store}/sessions/{session}/delete  {"cell":[...]}
//	POST   /v1/stores/{store}/sessions/{session}/flush   commit write-back buffers
//	GET    /v1/metrics                                 one snapshot of every store
//	GET    /v1/events                                  SSE event + metrics feed
//
// Range queries stream: the response is application/x-ndjson, one JSON
// line per retired plan chunk ({"chunk":{...}}) flushed to the client
// as the engine retires it — the streaming planner's chunks go over the
// wire instead of buffering the query — followed by exactly one
// {"trailer":{...}} line carrying the query's aggregate Stats, the
// session's lifetime Stats, and the store's per-class totals.
//
// Cancellation and deadlines propagate from the wire into the engine: a
// client disconnect cancels the request's context (the engine drops the
// query's queued chunks and counts them in Stats.Cancelled), and a
// ?deadline_ms= query parameter (or X-Deadline-Ms header) becomes a
// context deadline, which the deadline/QoS-aware admission batcher
// treats as urgency exactly like an embedded caller's.
package server

import (
	multimap "repro"
)

// StatsWire is engine Stats in wire form (snake_case, omitempty on the
// feature counters so idle fields stay off the wire).
type StatsWire struct {
	Cells             int64   `json:"cells"`
	Padding           int64   `json:"padding,omitempty"`
	Requests          int     `json:"requests"`
	TotalMs           float64 `json:"total_ms"`
	ElapsedMs         float64 `json:"elapsed_ms"`
	CommandMs         float64 `json:"command_ms,omitempty"`
	SeekMs            float64 `json:"seek_ms,omitempty"`
	RotateMs          float64 `json:"rotate_ms,omitempty"`
	TransferMs        float64 `json:"transfer_ms,omitempty"`
	CacheHits         int64   `json:"cache_hits,omitempty"`
	CacheMisses       int64   `json:"cache_misses,omitempty"`
	Writes            int64   `json:"writes,omitempty"`
	InvalidatedBlocks int64   `json:"invalidated_blocks,omitempty"`
	CoalescedWrites   int64   `json:"coalesced_writes,omitempty"`
	FlushBatches      int64   `json:"flush_batches,omitempty"`
	Cancelled         int64   `json:"cancelled,omitempty"`
	DeadlineExceeded  int64   `json:"deadline_exceeded,omitempty"`
	CowFaultBlocks    int64   `json:"cow_fault_blocks,omitempty"`
	Partial           bool    `json:"partial,omitempty"`
}

func statsWire(st multimap.Stats) StatsWire {
	return StatsWire{
		Cells: st.Cells, Padding: st.Padding, Requests: st.Requests,
		TotalMs: st.TotalMs, ElapsedMs: st.ElapsedMs,
		CommandMs: st.CommandMs, SeekMs: st.SeekMs,
		RotateMs: st.RotateMs, TransferMs: st.TransferMs,
		CacheHits: st.CacheHits, CacheMisses: st.CacheMisses,
		Writes:            st.Writes,
		InvalidatedBlocks: st.InvalidatedBlocks,
		CoalescedWrites:   st.CoalescedWrites,
		FlushBatches:      st.FlushBatches,
		Cancelled:         st.Cancelled,
		DeadlineExceeded:  st.DeadlineExceeded,
		CowFaultBlocks:    st.CowFaultBlocks,
		Partial:           st.Partial,
	}
}

// ClassSpec registers one QoS class at store open.
type ClassSpec struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
	Urgent bool   `json:"urgent,omitempty"`
}

// OpenStoreRequest opens a store over the wire. Disks builds a private
// volume for the store (required unless Pool names an open pool to
// create the dataset in). The knob fields mirror the library's
// functional options one-to-one; zero values mean "option omitted".
type OpenStoreRequest struct {
	Name     string   `json:"name"`
	Disks    []string `json:"disks,omitempty"`
	AdjDepth int      `json:"adj_depth,omitempty"`
	Mapping  string   `json:"mapping"`
	Dims     []int    `json:"dims"`

	Policy            string      `json:"policy,omitempty"`
	ChunkCells        int64       `json:"chunk_cells,omitempty"`
	CacheBlocks       int64       `json:"cache_blocks,omitempty"`
	MaxInflight       int         `json:"max_inflight,omitempty"`
	Shards            int         `json:"shards,omitempty"`
	BatchWindowUs     int64       `json:"batch_window_us,omitempty"`
	DeadlineAgingUs   int64       `json:"deadline_aging_us,omitempty"`
	WriteBack         bool        `json:"write_back,omitempty"`
	WBWatermarkBlocks int64       `json:"wb_watermark_blocks,omitempty"`
	WBIntervalUs      int64       `json:"wb_interval_us,omitempty"`
	FairQuantum       int64       `json:"fair_quantum,omitempty"`
	Classes           []ClassSpec `json:"classes,omitempty"`
	DefaultClass      string      `json:"default_class,omitempty"`
	Pipeline          int         `json:"pipeline,omitempty"`
	Updatable         bool        `json:"updatable,omitempty"`

	// Pool-tenant placement (Pool names an open pool; the rest are
	// forwarded to Pool.Create).
	Pool           string `json:"pool,omitempty"`
	CapacityBlocks int64  `json:"capacity_blocks,omitempty"`
	Drives         []int  `json:"drives,omitempty"`
}

// StoreInfo describes one open store.
type StoreInfo struct {
	Name       string `json:"name"`
	Mapping    string `json:"mapping"`
	Dims       []int  `json:"dims"`
	Shards     int    `json:"shards"`
	CellBlocks int    `json:"cell_blocks"`
	Updatable  bool   `json:"updatable,omitempty"`
	Pool       string `json:"pool,omitempty"`
	Sessions   int    `json:"sessions"`
}

// OpenPoolRequest opens a multi-tenant volume pool over the wire.
type OpenPoolRequest struct {
	Name           string   `json:"name"`
	Drives         []string `json:"drives"`
	AdjDepth       int      `json:"adj_depth,omitempty"`
	AutoGrowBlocks int64    `json:"auto_grow_blocks,omitempty"`
}

// PoolInfo describes one open pool.
type PoolInfo struct {
	Name    string          `json:"name"`
	Tenants []string        `json:"tenants"`
	Usage   []PoolDriveWire `json:"usage"`
}

// PoolDriveWire is one pool drive's usage row.
type PoolDriveWire struct {
	Name            string `json:"name"`
	TotalBlocks     int64  `json:"total_blocks"`
	FreeBlocks      int64  `json:"free_blocks"`
	AutoGrownBlocks int64  `json:"auto_grown_blocks,omitempty"`
}

// BeginSessionRequest opens a session; Class selects the QoS class
// (empty = the store's default).
type BeginSessionRequest struct {
	Class string `json:"class,omitempty"`
}

// SessionInfo describes one open session.
type SessionInfo struct {
	Session string    `json:"session"`
	Store   string    `json:"store"`
	Class   string    `json:"class,omitempty"`
	Stats   StatsWire `json:"stats"`
}

// BeamRequest runs a beam query.
type BeamRequest struct {
	Dim   int   `json:"dim"`
	Fixed []int `json:"fixed"`
}

// RangeRequest runs a (streamed) range query over [lo, hi).
type RangeRequest struct {
	Lo []int `json:"lo"`
	Hi []int `json:"hi"`
}

// CellRequest addresses one cell (fetch, insert, delete).
type CellRequest struct {
	Cell []int `json:"cell"`
}

// StatsResponse is the plain (non-streamed) operation result.
type StatsResponse struct {
	Stats StatsWire `json:"stats"`
	// Error carries the operation's error (partial-result queries
	// return Stats alongside it); the HTTP status is still 200 when
	// partial Stats are delivered.
	Error string `json:"error,omitempty"`
}

// ChunkWire is one streamed range-query chunk: the chunk's own Stats
// delta in cell units, the shard that served it, and the delivery
// sequence.
type ChunkWire struct {
	Seq   int       `json:"seq"`
	Shard int       `json:"shard"`
	Stats StatsWire `json:"stats"`
}

// RangeTrailer closes every range stream: the query's aggregate Stats,
// the error if any (partial results set Stats.Partial alongside it),
// the session's lifetime Stats — the attribution the engine guarantees
// sums to ServiceTotals.Attributed — and the store's per-class totals.
type RangeTrailer struct {
	Stats        StatsWire      `json:"stats"`
	Error        string         `json:"error,omitempty"`
	Chunks       int            `json:"chunks"`
	SessionStats StatsWire      `json:"session_stats"`
	Classes      []ClassTotWire `json:"classes,omitempty"`
}

// StreamLine is one NDJSON line of a range stream: exactly one of
// Chunk or Trailer is set.
type StreamLine struct {
	Chunk   *ChunkWire    `json:"chunk,omitempty"`
	Trailer *RangeTrailer `json:"trailer,omitempty"`
}

// ClassTotWire is one QoS class's totals row.
type ClassTotWire struct {
	Class      string    `json:"class"`
	Ops        int64     `json:"ops"`
	UrgentOps  int64     `json:"urgent_ops,omitempty"`
	Deferred   int64     `json:"deferred,omitempty"`
	Attributed StatsWire `json:"attributed"`
}

func classWire(cts []multimap.ClassTotals) []ClassTotWire {
	out := make([]ClassTotWire, len(cts))
	for i, ct := range cts {
		out[i] = ClassTotWire{
			Class: ct.Class, Ops: ct.Ops, UrgentOps: ct.UrgentOps,
			Deferred: ct.Deferred, Attributed: statsWire(ct.Attributed),
		}
	}
	return out
}

// ServiceTotalsWire is ServiceTotals in wire form.
type ServiceTotalsWire struct {
	Batches           int64     `json:"batches"`
	MergedBatches     int64     `json:"merged_batches"`
	MaxBatchChunks    int       `json:"max_batch_chunks"`
	IssuedRequests    int64     `json:"issued_requests"`
	WriteOps          int64     `json:"write_ops,omitempty"`
	InvalidatedBlocks int64     `json:"invalidated_blocks,omitempty"`
	FlushBatches      int64     `json:"flush_batches,omitempty"`
	CoalescedWrites   int64     `json:"coalesced_writes,omitempty"`
	DirtyBlocks       int64     `json:"dirty_blocks,omitempty"`
	Cancelled         int64     `json:"cancelled,omitempty"`
	DeadlineExceeded  int64     `json:"deadline_exceeded,omitempty"`
	Attributed        StatsWire `json:"attributed"`
}

func totalsWire(t multimap.ServiceTotals) ServiceTotalsWire {
	return ServiceTotalsWire{
		Batches: t.Batches, MergedBatches: t.MergedBatches,
		MaxBatchChunks: t.MaxBatchChunks, IssuedRequests: t.IssuedRequests,
		WriteOps: t.WriteOps, InvalidatedBlocks: t.InvalidatedBlocks,
		FlushBatches: t.FlushBatches, CoalescedWrites: t.CoalescedWrites,
		DirtyBlocks: t.DirtyBlocks, Cancelled: t.Cancelled,
		DeadlineExceeded: t.DeadlineExceeded,
		Attributed:       statsWire(t.Attributed),
	}
}

// ShardMetricsWire is one shard service's metrics row.
type ShardMetricsWire struct {
	Shard      int               `json:"shard"`
	QueueDepth int               `json:"queue_depth"`
	Totals     ServiceTotalsWire `json:"totals"`
}

// MetricsWire is one store's Metrics snapshot on the wire — queue
// depths, admission batch evidence, cache hit rate, flush/pipeline
// counters, and completed-query latency percentiles.
type MetricsWire struct {
	QueueDepth   int                `json:"queue_depth"`
	CacheHitRate float64            `json:"cache_hit_rate"`
	Queries      int64              `json:"queries"`
	LatencyP50Ms float64            `json:"latency_p50_ms"`
	LatencyP99Ms float64            `json:"latency_p99_ms"`
	Totals       ServiceTotalsWire  `json:"totals"`
	Shards       []ShardMetricsWire `json:"shards"`
	Classes      []ClassTotWire     `json:"classes,omitempty"`
}

func metricsWire(m multimap.Metrics) MetricsWire {
	w := MetricsWire{
		QueueDepth:   m.QueueDepth,
		CacheHitRate: m.CacheHitRate,
		Queries:      m.Queries,
		LatencyP50Ms: m.LatencyP50Ms,
		LatencyP99Ms: m.LatencyP99Ms,
		Totals:       totalsWire(m.Totals),
		Shards:       make([]ShardMetricsWire, len(m.Shards)),
		Classes:      classWire(m.Classes),
	}
	for i, sm := range m.Shards {
		w.Shards[i] = ShardMetricsWire{Shard: sm.Shard, QueueDepth: sm.QueueDepth, Totals: totalsWire(sm.Totals)}
	}
	return w
}

// MetricsResponse is the /v1/metrics document: every store's snapshot.
type MetricsResponse struct {
	Stores map[string]MetricsWire `json:"stores"`
}

// ErrorResponse is the non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}
