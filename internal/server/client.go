package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	multimap "repro"
)

// Stats converts a wire Stats back to the library's Stats, so remote
// callers (mmbench -remote) aggregate and report exactly like embedded
// ones.
func (w StatsWire) Stats() multimap.Stats {
	return multimap.Stats{
		Cells: w.Cells, Padding: w.Padding, Requests: w.Requests,
		TotalMs: w.TotalMs, ElapsedMs: w.ElapsedMs,
		CommandMs: w.CommandMs, SeekMs: w.SeekMs,
		RotateMs: w.RotateMs, TransferMs: w.TransferMs,
		CacheHits: w.CacheHits, CacheMisses: w.CacheMisses,
		Writes:            w.Writes,
		InvalidatedBlocks: w.InvalidatedBlocks,
		CoalescedWrites:   w.CoalescedWrites,
		FlushBatches:      w.FlushBatches,
		Cancelled:         w.Cancelled,
		DeadlineExceeded:  w.DeadlineExceeded,
		CowFaultBlocks:    w.CowFaultBlocks,
		Partial:           w.Partial,
	}
}

// Client speaks the daemon's wire protocol. The zero HTTPClient means
// http.DefaultClient; Base accepts "host:port" or a full http:// URL.
type Client struct {
	Base       string
	HTTPClient *http.Client
}

// NewClient builds a client for a daemon at addr ("host:port" or
// "http://host:port").
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{Base: strings.TrimRight(addr, "/")}
}

func (c *Client) hc() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do runs one JSON round trip; out may be nil to discard the body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er ErrorResponse
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		return fmt.Errorf("daemon: %s (HTTP %d)", er.Error, resp.StatusCode)
	}
	return fmt.Errorf("daemon: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
}

// OpenStore opens a store on the daemon.
func (c *Client) OpenStore(ctx context.Context, req OpenStoreRequest) (StoreInfo, error) {
	var info StoreInfo
	err := c.do(ctx, http.MethodPost, "/v1/stores", req, &info)
	return info, err
}

// CloseStore closes a store (and its sessions) on the daemon.
func (c *Client) CloseStore(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/stores/"+name, nil, nil)
}

// Stores lists the open stores.
func (c *Client) Stores(ctx context.Context) ([]StoreInfo, error) {
	var infos []StoreInfo
	err := c.do(ctx, http.MethodGet, "/v1/stores", nil, &infos)
	return infos, err
}

// OpenPool opens a multi-tenant pool on the daemon.
func (c *Client) OpenPool(ctx context.Context, req OpenPoolRequest) (PoolInfo, error) {
	var info PoolInfo
	err := c.do(ctx, http.MethodPost, "/v1/pools", req, &info)
	return info, err
}

// Begin opens a session on a store; class "" selects the store's
// default QoS class. It returns the wire session ID.
func (c *Client) Begin(ctx context.Context, store, class string) (string, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodPost, "/v1/stores/"+store+"/sessions",
		BeginSessionRequest{Class: class}, &info)
	return info.Session, err
}

// CloseSession closes a session, flushing its write-back residue, and
// returns its lifetime stats.
func (c *Client) CloseSession(ctx context.Context, store, session string) (multimap.Stats, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodDelete, "/v1/stores/"+store+"/sessions/"+session, nil, &info)
	return info.Stats.Stats(), err
}

// SessionStats fetches a session's lifetime stats without closing it.
func (c *Client) SessionStats(ctx context.Context, store, session string) (multimap.Stats, error) {
	var info SessionInfo
	err := c.do(ctx, http.MethodGet, "/v1/stores/"+store+"/sessions/"+session, nil, &info)
	return info.Stats.Stats(), err
}

// deadlineSuffix renders the wire deadline for an operation URL.
func deadlineSuffix(deadlineMs int64) string {
	if deadlineMs <= 0 {
		return ""
	}
	return fmt.Sprintf("?deadline_ms=%d", deadlineMs)
}

// op runs one plain session operation and unwraps the envelope:
// operation errors arrive as wire text alongside any (partial) Stats.
func (c *Client) op(ctx context.Context, store, session, op string, deadlineMs int64, in any) (multimap.Stats, error) {
	var resp StatsResponse
	path := "/v1/stores/" + store + "/sessions/" + session + "/" + op + deadlineSuffix(deadlineMs)
	if err := c.do(ctx, http.MethodPost, path, in, &resp); err != nil {
		return multimap.Stats{}, err
	}
	st := resp.Stats.Stats()
	if resp.Error != "" {
		return st, fmt.Errorf("%s", resp.Error)
	}
	return st, nil
}

// Beam runs a beam query on a wire session. deadlineMs <= 0 means no
// deadline.
func (c *Client) Beam(ctx context.Context, store, session string, dim int, fixed []int, deadlineMs int64) (multimap.Stats, error) {
	return c.op(ctx, store, session, "beam", deadlineMs, BeamRequest{Dim: dim, Fixed: fixed})
}

// FetchCell fetches one cell's chain on a wire session.
func (c *Client) FetchCell(ctx context.Context, store, session string, cell []int, deadlineMs int64) (multimap.Stats, error) {
	return c.op(ctx, store, session, "fetch", deadlineMs, CellRequest{Cell: cell})
}

// Insert inserts a point into a cell on a wire session.
func (c *Client) Insert(ctx context.Context, store, session string, cell []int, deadlineMs int64) (multimap.Stats, error) {
	return c.op(ctx, store, session, "insert", deadlineMs, CellRequest{Cell: cell})
}

// Delete removes a point from a cell on a wire session.
func (c *Client) Delete(ctx context.Context, store, session string, cell []int, deadlineMs int64) (multimap.Stats, error) {
	return c.op(ctx, store, session, "delete", deadlineMs, CellRequest{Cell: cell})
}

// Flush commits the session's buffered write-back residue.
func (c *Client) Flush(ctx context.Context, store, session string) error {
	_, err := c.op(ctx, store, session, "flush", 0, nil)
	return err
}

// RangeQuery streams a range query. onChunk (may be nil) observes each
// chunk line as it arrives — before the query has finished on the
// daemon. The returned trailer carries the aggregate Stats, the
// session's lifetime Stats, and per-class totals; a query error is
// surfaced as the error return after any partial chunks.
func (c *Client) RangeQuery(ctx context.Context, store, session string, lo, hi []int, deadlineMs int64, onChunk func(ChunkWire)) (RangeTrailer, error) {
	data, err := json.Marshal(RangeRequest{Lo: lo, Hi: hi})
	if err != nil {
		return RangeTrailer{}, err
	}
	path := c.Base + "/v1/stores/" + store + "/sessions/" + session + "/range" + deadlineSuffix(deadlineMs)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, path, bytes.NewReader(data))
	if err != nil {
		return RangeTrailer{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc().Do(req)
	if err != nil {
		return RangeTrailer{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return RangeTrailer{}, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line StreamLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return RangeTrailer{}, fmt.Errorf("bad stream line: %w", err)
		}
		switch {
		case line.Chunk != nil:
			if onChunk != nil {
				onChunk(*line.Chunk)
			}
		case line.Trailer != nil:
			tr := *line.Trailer
			if tr.Error != "" {
				return tr, fmt.Errorf("%s", tr.Error)
			}
			return tr, nil
		}
	}
	if err := sc.Err(); err != nil {
		return RangeTrailer{}, err
	}
	return RangeTrailer{}, fmt.Errorf("stream ended without trailer")
}

// Metrics fetches one store's metrics snapshot.
func (c *Client) Metrics(ctx context.Context, store string) (MetricsWire, error) {
	var m MetricsWire
	err := c.do(ctx, http.MethodGet, "/v1/stores/"+store+"/metrics", nil, &m)
	return m, err
}

// AllMetrics fetches the /v1/metrics document covering every store.
func (c *Client) AllMetrics(ctx context.Context) (MetricsResponse, error) {
	var m MetricsResponse
	err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &m)
	return m, err
}

// Events subscribes to the SSE feed and calls onFrame for each frame
// (event name plus raw JSON payload) until the context ends, the
// server closes the stream, or onFrame returns false.
func (c *Client) Events(ctx context.Context, intervalMs int64, onFrame func(event string, data []byte) bool) error {
	path := c.Base + "/v1/events"
	if intervalMs > 0 {
		path += fmt.Sprintf("?interval_ms=%d", intervalMs)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if !onFrame(event, []byte(strings.TrimPrefix(line, "data: "))) {
				return nil
			}
		}
	}
	return sc.Err()
}
