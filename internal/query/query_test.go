package query

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
)

func testVolume(t *testing.T) *lvm.Volume {
	t.Helper()
	v, err := lvm.New(16, disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func allMappers(t *testing.T, v *lvm.Volume, dims []int) map[string]mapping.Mapper {
	t.Helper()
	out := map[string]mapping.Mapper{}
	for _, k := range []mapping.Kind{mapping.Naive, mapping.ZOrder, mapping.Hilbert, mapping.Gray, mapping.MultiMap} {
		m, err := mapping.New(k, v, dims, mapping.Options{DiskIdx: 0})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		out[k.String()] = m
	}
	return out
}

// TestQueriesFetchExactCellSets: for every mapping, a beam or range
// query must fetch exactly the blocks storing the requested cells — no
// more, no fewer. This is the cross-mapping result-equality invariant.
func TestQueriesFetchExactCellSets(t *testing.T) {
	dims := []int{12, 6, 5}
	for name, m := range allMappers(t, testVolume(t), dims) {
		v := testVolume(t) // fresh volume per mapper so head state is clean
		m2, err := mapping.New(m.Kind(), v, dims, mapping.Options{DiskIdx: 0})
		if err != nil {
			t.Fatal(err)
		}
		e := NewExecutor(v, m2)
		lo, hi := []int{2, 1, 0}, []int{9, 5, 3}
		reqs, _, padding, err := e.plan(lo, hi)
		if err != nil {
			t.Fatalf("%s: plan: %v", name, err)
		}
		got := map[int64]int{}
		for _, r := range reqs {
			for i := 0; i < r.Count; i++ {
				got[r.VLBN+int64(i)]++
			}
		}
		want := map[int64]bool{}
		cell := append([]int(nil), lo...)
		for {
			vlbn, err := m2.CellVLBN(cell)
			if err != nil {
				t.Fatal(err)
			}
			want[vlbn] = true
			if !nextInBox(cell, lo, hi) {
				break
			}
		}
		// Every wanted block exactly once; any extra blocks must be
		// declared as bridged padding.
		if int64(len(got)) != int64(len(want))+padding {
			t.Fatalf("%s: plan covers %d blocks, want %d + %d padding",
				name, len(got), len(want), padding)
		}
		for vlbn := range want {
			if got[vlbn] != 1 {
				t.Fatalf("%s: block %d fetched %d times", name, vlbn, got[vlbn])
			}
		}
		for vlbn, n := range got {
			if n != 1 {
				t.Fatalf("%s: block %d fetched %d times", name, vlbn, n)
			}
		}
	}
}

func TestRangeStatsConsistent(t *testing.T) {
	dims := []int{12, 6, 5}
	v := testVolume(t)
	m, err := mapping.New(mapping.MultiMap, v, dims, mapping.Options{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(v, m)
	st, err := e.Range([]int{0, 0, 0}, []int{12, 6, 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 12*6*5 {
		t.Errorf("Cells=%d, want %d", st.Cells, 12*6*5)
	}
	if st.Requests <= 0 || st.TotalMs <= 0 || st.ElapsedMs <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	if sum := st.CommandMs + st.SeekMs + st.RotateMs + st.TransferMs; math.Abs(sum-st.TotalMs) > 1e-6 {
		t.Errorf("component sum %.4f != total %.4f", sum, st.TotalMs)
	}
	if mpc := st.MsPerCell(); mpc <= 0 || mpc != st.TotalMs/float64(st.Cells) {
		t.Errorf("MsPerCell wrong: %v", mpc)
	}
	if (Stats{}).MsPerCell() != 0 {
		t.Error("MsPerCell of empty stats should be 0")
	}
}

func TestRangeValidation(t *testing.T) {
	v := testVolume(t)
	m, err := mapping.New(mapping.Naive, v, []int{10, 5}, mapping.Options{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(v, m)
	if _, err := e.Range([]int{0}, []int{5}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := e.Range([]int{0, 0}, []int{11, 5}); err == nil {
		t.Error("hi beyond dims accepted")
	}
	if _, err := e.Range([]int{3, 0}, []int{3, 5}); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := e.Beam(2, []int{0, 0}); err == nil {
		t.Error("beam dim out of range accepted")
	}
	if _, err := e.Beam(0, []int{0}); err == nil {
		t.Error("beam fixed arity accepted")
	}
}

// TestBeamEquivalentToThinRange: Beam(dim, fixed) is exactly the
// [lo,hi) box with width 1 everywhere except dim.
func TestBeamEquivalentToThinRange(t *testing.T) {
	dims := []int{10, 6, 4}
	v := testVolume(t)
	m, err := mapping.New(mapping.Naive, v, dims, mapping.Options{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(v, m)
	stBeam, err := e.Beam(1, []int{3, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if stBeam.Cells != int64(dims[1]) {
		t.Fatalf("beam fetched %d cells, want %d", stBeam.Cells, dims[1])
	}
}

// TestNaiveDim0BeamSingleRequest: the major-order beam coalesces to one
// sequential request.
func TestNaiveDim0BeamSingleRequest(t *testing.T) {
	dims := []int{20, 4, 3}
	v := testVolume(t)
	m, err := mapping.New(mapping.Naive, v, dims, mapping.Options{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(v, m)
	reqs, policy, _, err := e.plan([]int{0, 2, 1}, []int{20, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].Count != 20 {
		t.Fatalf("want one 20-block request, got %v", reqs)
	}
	if policy != disk.SchedFIFO {
		t.Errorf("naive should issue FIFO")
	}
}

// TestMultiMapBeamUsesSPTF: MultiMap issues non-Dim0 beams unsorted
// under the SPTF policy (§5.2).
func TestMultiMapBeamUsesSPTF(t *testing.T) {
	dims := []int{20, 6, 4}
	v := testVolume(t)
	m, err := mapping.New(mapping.MultiMap, v, dims, mapping.Options{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(v, m)
	reqs, policy, _, err := e.plan([]int{3, 0, 2}, []int{4, 6, 3})
	if err != nil {
		t.Fatal(err)
	}
	if policy != disk.SchedSPTF {
		t.Errorf("MultiMap should rely on the disk scheduler (SPTF)")
	}
	if len(reqs) != 6 {
		t.Errorf("Dim1 beam should be %d single-block requests, got %d", 6, len(reqs))
	}
}

// TestMultiMapRangeFavoursSequential: a 2-D slab range produces Dim0
// runs, not per-cell requests (§5.2's "three sequential accesses").
func TestMultiMapRangeFavoursSequential(t *testing.T) {
	dims := []int{20, 6, 4}
	v := testVolume(t)
	m, err := mapping.New(mapping.MultiMap, v, dims, mapping.Options{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(v, m)
	reqs, _, _, err := e.plan([]int{0, 0, 0}, []int{20, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	// 2 rows of 20 cells: at most 2 requests per row (track wrap).
	if len(reqs) > 4 {
		t.Errorf("slab expanded to %d requests; sequential runs expected", len(reqs))
	}
	var cells int
	for _, r := range reqs {
		cells += r.Count
	}
	if cells != 40 {
		t.Errorf("requests cover %d cells, want 40", cells)
	}
}

func TestSortCoalesce(t *testing.T) {
	in := []lvm.Request{{VLBN: 10, Count: 2}, {VLBN: 5, Count: 1}, {VLBN: 13, Count: 3}, {VLBN: 6, Count: 4}}
	out := SortCoalesce(in)
	want := []lvm.Request{{VLBN: 5, Count: 7}, {VLBN: 13, Count: 3}}
	if len(out) != len(want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
	if got := SortCoalesce(nil); len(got) != 0 {
		t.Error("empty input should stay empty")
	}
}

func TestCoalesceSorted(t *testing.T) {
	out := CoalesceSortedLBNs([]int64{1, 2, 3, 7, 8, 20})
	want := []lvm.Request{{VLBN: 1, Count: 3}, {VLBN: 7, Count: 2}, {VLBN: 20, Count: 1}}
	if len(out) != len(want) {
		t.Fatalf("got %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
	if CoalesceSortedLBNs(nil) != nil {
		t.Error("nil input should return nil")
	}
}

// TestMultiMapBeamBeatsNaiveOffMajor: the headline behaviour on the
// small disk — MultiMap's Dim1 beam is much cheaper per cell than
// Naive's, while its Dim0 beam matches Naive's streaming.
func TestMultiMapBeamBeatsNaiveOffMajor(t *testing.T) {
	dims := []int{30, 12, 8}
	perCell := func(kind mapping.Kind, dim int) float64 {
		v := testVolume(t)
		m, err := mapping.New(kind, v, dims, mapping.Options{DiskIdx: 0})
		if err != nil {
			t.Fatal(err)
		}
		e := NewExecutor(v, m)
		st, err := e.Beam(dim, []int{3, 3, 3})
		if err != nil {
			t.Fatal(err)
		}
		return st.MsPerCell()
	}
	naive1 := perCell(mapping.Naive, 1)
	mm1 := perCell(mapping.MultiMap, 1)
	if mm1 >= naive1 {
		t.Errorf("Dim1 beam: MultiMap %.3f ms/cell not better than Naive %.3f", mm1, naive1)
	}
	// Dim0: MultiMap matches Naive's streaming up to the small penalty
	// of per-track rotation shifts and cube crossings — pronounced on
	// this toy disk (30-cell beams), negligible at paper scale where a
	// beam covers hundreds of cells per request.
	naive0 := perCell(mapping.Naive, 0)
	mm0 := perCell(mapping.MultiMap, 0)
	if mm0 > naive0*2.0 {
		t.Errorf("Dim0 beam: MultiMap %.3f ms/cell much worse than Naive %.3f", mm0, naive0)
	}
}

// TestMultiBlockCellsAcrossMappings: with 3-block cells (§4's
// multi-LBN cells), every mapping fetches exactly cells*3 blocks and
// the cross-mapping behaviours survive.
func TestMultiBlockCellsAcrossMappings(t *testing.T) {
	dims := []int{10, 5, 4}
	const b = 3
	for _, k := range []mapping.Kind{mapping.Naive, mapping.ZOrder, mapping.Hilbert, mapping.MultiMap} {
		v, err := lvm.New(32, disk.MediumTestDisk())
		if err != nil {
			t.Fatal(err)
		}
		m, err := mapping.New(k, v, dims, mapping.Options{DiskIdx: 0, CellBlocks: b})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		cs, ok := m.(mapping.CellSized)
		if !ok || cs.CellBlocks() != b {
			t.Fatalf("%v: cell size not visible", k)
		}
		e := NewExecutor(v, m)
		st, err := e.Range([]int{1, 0, 1}, []int{9, 4, 3})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		wantCells := int64(8 * 4 * 2)
		if st.Cells != wantCells {
			t.Errorf("%v: fetched %d cells, want %d", k, st.Cells, wantCells)
		}
		if st.TransferMs <= 0 {
			t.Errorf("%v: no transfer time", k)
		}
		// Extent coverage is exactly b blocks per cell.
		exts, err := cs.CellExtents([]int{2, 2, 2})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, r := range exts {
			total += r.Count
		}
		if total != b {
			t.Errorf("%v: cell extents cover %d blocks, want %d", k, total, b)
		}
	}
}

// fakeRunner returns canned Stats and a canned error from RunPlan,
// standing in for a Session whose context died mid-plan.
type fakeRunner struct {
	st  engine.Stats
	err error
}

func (f fakeRunner) RunPlan(context.Context, engine.Plan, engine.Options) (engine.Stats, error) {
	return f.st, f.err
}

// TestRangeOnPartialResults pins the speculative-partial contract: a
// context-death error with cells already aggregated comes back flagged
// Partial (alongside the error), while an empty cancelled run and a
// non-context failure stay unflagged.
func TestRangeOnPartialResults(t *testing.T) {
	dims := []int{12, 6, 5}
	v := testVolume(t)
	m, err := mapping.New(mapping.MultiMap, v, dims, mapping.Options{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(v, m)
	lo, hi := []int{0, 0, 0}, []int{4, 4, 4}

	cases := []struct {
		name    string
		cells   int64
		err     error
		partial bool
	}{
		{"cancelled with cells", 30, context.Canceled, true},
		{"deadline with cells", 30, context.DeadlineExceeded, true},
		{"cancelled empty", 0, context.Canceled, false},
		{"non-context error", 30, errors.New("disk on fire"), false},
	}
	for _, tc := range cases {
		r := fakeRunner{st: engine.Stats{Cells: tc.cells}, err: tc.err}
		st, err := e.RangeOn(context.Background(), r, lo, hi)
		if !errors.Is(err, tc.err) {
			t.Fatalf("%s: error %v, want %v", tc.name, err, tc.err)
		}
		if st.Partial != tc.partial {
			t.Fatalf("%s: Partial=%v, want %v (stats %+v)", tc.name, st.Partial, tc.partial, st)
		}
	}

	// A clean run over the full box must not be flagged.
	st, err := e.Range(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if st.Partial {
		t.Fatalf("complete query flagged Partial: %+v", st)
	}
}
