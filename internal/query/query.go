// Package query implements the database storage manager of the paper's
// prototype (§5.1-5.2): it translates beam and range queries over a
// mapped dataset into disk requests, applying each mapping's preferred
// issue strategy.
//
//   - Linear mappings (Naive, Z-order, Hilbert, Gray): identify the
//     blocks, sort ascending by LBN, coalesce contiguous runs, issue in
//     order — "an easy optimization ... that significantly improves
//     performance in practice".
//   - MultiMap beams along Dim0: contiguous sequential runs.
//   - MultiMap beams along other dimensions: issue the blocks unsorted,
//     all at once; the disk's internal (SPTF) scheduler fetches them
//     along the semi-sequential path.
//   - MultiMap range queries: favour sequential over semi-sequential
//     access — fetch Dim0 runs first, stepping the remaining dimensions
//     in adjacency-chain order.
package query

import (
	"fmt"
	"slices"

	"repro/internal/disk"
	"repro/internal/lvm"
	"repro/internal/mapping"
)

// Stats summarizes the I/O work of one query.
type Stats struct {
	Cells      int64   // useful cells fetched (excludes bridged padding)
	Padding    int64   // padding blocks read and discarded by gap bridging
	Requests   int     // I/O requests issued after coalescing
	TotalMs    float64 // summed service time across disks
	ElapsedMs  float64 // wall-clock time (disks work in parallel)
	CommandMs  float64
	SeekMs     float64
	RotateMs   float64
	TransferMs float64
}

// MsPerCell returns the paper's headline metric: average I/O time per
// cell, including initial positioning (§5.3).
func (s Stats) MsPerCell() float64 {
	if s.Cells == 0 {
		return 0
	}
	return s.TotalMs / float64(s.Cells)
}

func (s *Stats) addCompletions(comps []lvm.Completion, elapsed float64) {
	for _, c := range comps {
		s.Requests++
		s.Cells += int64(c.Req.Count)
		s.TotalMs += c.Cost.TotalMs()
		s.CommandMs += c.Cost.CommandMs
		s.SeekMs += c.Cost.SeekMs
		s.RotateMs += c.Cost.RotateMs
		s.TransferMs += c.Cost.TransferMs
	}
	s.ElapsedMs += elapsed
}

// Executor runs queries for one mapped dataset.
type Executor struct {
	vol       *lvm.Volume
	m         mapping.Mapper
	bridgeGap int
}

// NewExecutor builds an executor over a mapper and its volume.
func NewExecutor(vol *lvm.Volume, m mapping.Mapper) *Executor {
	// Largest same-track gap worth reading through instead of
	// repositioning: a small fraction of the shortest track, capped so
	// the read-through always costs less than command + settle.
	minT := 1 << 30
	for _, z := range vol.Zones() {
		if z.TrackLen < minT {
			minT = z.TrackLen
		}
	}
	gap := minT / 8
	if gap > maxBridgeGap {
		gap = maxBridgeGap
	}
	return &Executor{vol: vol, m: m, bridgeGap: gap}
}

// Mapper returns the executor's mapping.
func (e *Executor) Mapper() mapping.Mapper { return e.m }

// Beam fetches every cell along dimension dim, the other coordinates
// held at fixed (fixed[dim] is ignored). This is the paper's beam
// query: a 1-D query parallel to an axis (§5.1).
func (e *Executor) Beam(dim int, fixed []int) (Stats, error) {
	dims := e.m.Dims()
	if dim < 0 || dim >= len(dims) {
		return Stats{}, fmt.Errorf("query: beam dimension %d out of range", dim)
	}
	if len(fixed) != len(dims) {
		return Stats{}, fmt.Errorf("query: fixed has %d dims, want %d", len(fixed), len(dims))
	}
	lo := append([]int(nil), fixed...)
	hi := append([]int(nil), fixed...)
	lo[dim] = 0
	hi[dim] = dims[dim]
	for i := range hi {
		if i != dim {
			hi[i] = fixed[i] + 1
		}
	}
	return e.Range(lo, hi)
}

// Range fetches the box [lo, hi) (hi exclusive in every dimension).
func (e *Executor) Range(lo, hi []int) (Stats, error) {
	dims := e.m.Dims()
	if len(lo) != len(dims) || len(hi) != len(dims) {
		return Stats{}, fmt.Errorf("query: bounds arity mismatch")
	}
	cells := int64(1)
	for i := range dims {
		if lo[i] < 0 || hi[i] > dims[i] || lo[i] >= hi[i] {
			return Stats{}, fmt.Errorf("query: bad range [%d,%d) on dim %d (length %d)",
				lo[i], hi[i], i, dims[i])
		}
		cells *= int64(hi[i] - lo[i])
	}
	reqs, policy, padding, err := e.plan(lo, hi)
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	comps, elapsed, err := e.vol.ServeBatch(reqs, policy)
	if err != nil {
		return Stats{}, err
	}
	st.addCompletions(comps, elapsed)
	st.Padding = padding
	// Blocks fetched = cells * cell size + bridged padding; report in
	// cells so MsPerCell stays the paper's metric.
	b := int64(1)
	if cs, ok := e.m.(mapping.CellSized); ok {
		b = int64(cs.CellBlocks())
	}
	st.Cells = (st.Cells - padding) / b
	if st.Cells != cells {
		return st, fmt.Errorf("query: fetched %d useful cells, want %d", st.Cells, cells)
	}
	return st, nil
}

// plan translates a box into requests, the issue policy, and the
// number of padding blocks the request set reads beyond the box.
func (e *Executor) plan(lo, hi []int) ([]lvm.Request, disk.SchedPolicy, int64, error) {
	_, semiSeq := e.m.(mapping.SemiSequential)
	runner, hasRuns := e.m.(mapping.Dim0Runner)

	// MultiMap: favour sequential access along Dim0 (§5.2), then leave
	// the final order to the disk's internal scheduler (SPTF). Sorting
	// first merges the track-sharing segments of packed cubes into
	// whole-track reads and keeps each scheduler window confined to a
	// narrow band of tracks, where every candidate is one settle away.
	if semiSeq && hasRuns {
		reqs, err := runsForBox(runner, lo, hi)
		if err != nil {
			return nil, 0, 0, err
		}
		// Bridge the small gaps MultiMap's own layout leaves on a track
		// (unfilled edge-cube sectors, §4.4): reading a few padding
		// blocks and discarding them is far cheaper than a separate
		// positioning. Gaps from adjacency chains span tracks and stay
		// unbridged.
		merged, padding := bridgedCoalesce(sortCoalesce(reqs), e.bridgeGap)
		return merged, disk.SchedSPTF, padding, nil
	}

	// Naive: contiguous Dim0 runs, then sort+coalesce.
	if hasRuns {
		reqs, err := runsForBox(runner, lo, hi)
		if err != nil {
			return nil, 0, 0, err
		}
		return sortCoalesce(reqs), disk.SchedFIFO, 0, nil
	}

	// Curve mappings: per-cell extents, sorted ascending and coalesced.
	b := 1
	if cs, ok := e.m.(mapping.CellSized); ok {
		b = cs.CellBlocks()
	}
	var lbns []int64
	cell := append([]int(nil), lo...)
	for {
		vlbn, err := e.m.CellVLBN(cell)
		if err != nil {
			return nil, 0, 0, err
		}
		lbns = append(lbns, vlbn)
		if !nextInBox(cell, lo, hi) {
			break
		}
	}
	slices.Sort(lbns)
	if b == 1 {
		return coalesceSorted(lbns), disk.SchedFIFO, 0, nil
	}
	reqs := make([]lvm.Request, len(lbns))
	for i, l := range lbns {
		reqs[i] = lvm.Request{VLBN: l, Count: b}
	}
	return sortCoalesce(reqs), disk.SchedFIFO, 0, nil
}

// maxBridgeGap caps the gap-bridging threshold (see NewExecutor).
const maxBridgeGap = 64

// bridgedCoalesce merges ascending-sorted requests whose gaps are at
// most maxGap blocks, returning the merged set and the total padding
// blocks the merges read beyond the originals.
func bridgedCoalesce(reqs []lvm.Request, maxGap int) ([]lvm.Request, int64) {
	if len(reqs) <= 1 {
		return reqs, 0
	}
	var padding int64
	out := reqs[:1]
	for _, r := range reqs[1:] {
		last := &out[len(out)-1]
		gap := r.VLBN - (last.VLBN + int64(last.Count))
		if gap >= 0 && gap <= int64(maxGap) {
			padding += gap
			last.Count += int(gap) + r.Count
		} else {
			out = append(out, r)
		}
	}
	return out, padding
}

// runsForBox expands a box into Dim0 runs, stepping the remaining
// dimensions in row-major order (Dim1 fastest — adjacency-chain order
// for MultiMap).
func runsForBox(runner mapping.Dim0Runner, lo, hi []int) ([]lvm.Request, error) {
	length := hi[0] - lo[0]
	cell := append([]int(nil), lo...)
	var out []lvm.Request
	for {
		reqs, err := runner.Dim0Run(cell, length)
		if err != nil {
			return nil, err
		}
		out = append(out, reqs...)
		if !nextInBoxAbove0(cell, lo, hi) {
			return out, nil
		}
	}
}

// nextInBox advances cell within [lo,hi) in row-major order (dim 0
// fastest); reports false after the last cell.
func nextInBox(cell, lo, hi []int) bool {
	for i := 0; i < len(cell); i++ {
		cell[i]++
		if cell[i] < hi[i] {
			return true
		}
		cell[i] = lo[i]
	}
	return false
}

// nextInBoxAbove0 advances only dimensions >= 1.
func nextInBoxAbove0(cell, lo, hi []int) bool {
	for i := 1; i < len(cell); i++ {
		cell[i]++
		if cell[i] < hi[i] {
			return true
		}
		cell[i] = lo[i]
	}
	return false
}

// sortCoalesce sorts requests by VLBN and merges contiguous ones.
func sortCoalesce(reqs []lvm.Request) []lvm.Request {
	if len(reqs) <= 1 {
		return reqs
	}
	slices.SortFunc(reqs, func(a, b lvm.Request) int {
		switch {
		case a.VLBN < b.VLBN:
			return -1
		case a.VLBN > b.VLBN:
			return 1
		default:
			return a.Count - b.Count
		}
	})
	out := reqs[:1]
	for _, r := range reqs[1:] {
		last := &out[len(out)-1]
		if r.VLBN == last.VLBN+int64(last.Count) {
			last.Count += r.Count
		} else {
			out = append(out, r)
		}
	}
	return out
}

// coalesceSorted merges an ascending LBN list into contiguous requests.
func coalesceSorted(lbns []int64) []lvm.Request {
	if len(lbns) == 0 {
		return nil
	}
	out := []lvm.Request{{VLBN: lbns[0], Count: 1}}
	for _, l := range lbns[1:] {
		last := &out[len(out)-1]
		if l == last.VLBN+int64(last.Count) {
			last.Count++
		} else {
			out = append(out, lvm.Request{VLBN: l, Count: 1})
		}
	}
	return out
}
