// Package query implements the database storage manager of the paper's
// prototype (§5.1-5.2): it translates beam and range queries over a
// mapped dataset into disk requests, applying each mapping's preferred
// issue strategy, and executes them through the shared engine.
//
//   - Linear mappings (Naive, Z-order, Hilbert, Gray): identify the
//     blocks, sort ascending by LBN, coalesce contiguous runs, issue in
//     order — "an easy optimization ... that significantly improves
//     performance in practice".
//   - MultiMap beams along Dim0: contiguous sequential runs.
//   - MultiMap beams along other dimensions: issue the blocks unsorted,
//     all at once; the disk's internal (SPTF) scheduler fetches them
//     along the semi-sequential path.
//   - MultiMap range queries: favour sequential over semi-sequential
//     access — fetch Dim0 runs first, stepping the remaining dimensions
//     in adjacency-chain order.
//
// The planner streams: a query box is sliced along its slowest
// dimension into sub-boxes of at most ChunkCells cells, each planned
// with the strategy above and yielded to engine.Run as its own chunk,
// so a huge range never materializes every block at once. The default
// (ChunkCells 0) plans each query as a single chunk, which preserves
// the global sort the issue optimization depends on.
package query

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
)

// Stats summarizes the I/O work of one query; it is the engine's
// aggregate, re-exported for API stability.
type Stats = engine.Stats

// ExecOptions tunes an executor beyond its defaults.
type ExecOptions struct {
	// PolicyOverride forces every chunk's issue policy (nil keeps each
	// mapping's preferred policy) — the knob behind scheduler
	// comparison runs.
	PolicyOverride *disk.SchedPolicy
	// ChunkCells bounds how many cells the planner expands per chunk; 0
	// plans each query as one chunk. Chunking bounds planner memory on
	// huge ranges at the cost of sorting per chunk instead of globally.
	ChunkCells int64
}

// ExecOptionsFor translates the user-facing engine knobs — a policy
// name ("", "fifo", "sptf", "elevator") and a planner chunk bound —
// into ExecOptions. It is the one place the string knobs are parsed,
// shared by the root API and the experiment drivers.
func ExecOptionsFor(policy string, chunkCells int64) (ExecOptions, error) {
	if chunkCells < 0 {
		return ExecOptions{}, fmt.Errorf("query: chunk cells must be non-negative")
	}
	opts := ExecOptions{ChunkCells: chunkCells}
	if policy != "" {
		p, err := disk.ParsePolicy(policy)
		if err != nil {
			return ExecOptions{}, err
		}
		opts.PolicyOverride = &p
	}
	return opts, nil
}

// Executor runs queries for one mapped dataset.
type Executor struct {
	vol       *lvm.Volume
	m         mapping.Mapper
	bridgeGap int
	opts      ExecOptions
}

// NewExecutor builds an executor over a mapper and its volume with
// default options.
func NewExecutor(vol *lvm.Volume, m mapping.Mapper) *Executor {
	return NewExecutorOptions(vol, m, ExecOptions{})
}

// NewExecutorOptions builds an executor with explicit options.
func NewExecutorOptions(vol *lvm.Volume, m mapping.Mapper, opts ExecOptions) *Executor {
	// Largest same-track gap worth reading through instead of
	// repositioning: a small fraction of the shortest track, capped so
	// the read-through always costs less than command + settle.
	minT := 1 << 30
	for _, z := range vol.Zones() {
		if z.TrackLen < minT {
			minT = z.TrackLen
		}
	}
	gap := minT / 8
	if gap > maxBridgeGap {
		gap = maxBridgeGap
	}
	return &Executor{vol: vol, m: m, bridgeGap: gap, opts: opts}
}

// Mapper returns the executor's mapping.
func (e *Executor) Mapper() mapping.Mapper { return e.m }

// Beam fetches every cell along dimension dim, the other coordinates
// held at fixed (fixed[dim] is ignored). This is the paper's beam
// query: a 1-D query parallel to an axis (§5.1).
func (e *Executor) Beam(dim int, fixed []int) (Stats, error) {
	return e.BeamOn(context.Background(), engine.OnVolume(e.vol), dim, fixed)
}

// BeamBox translates the paper's beam query — all cells along dim with
// the remaining coordinates fixed — into the equivalent box [lo, hi)
// over a dataset of the given side lengths. The scatter-gather shard
// session shares it with BeamOn, so beams route identically on one
// volume and on many.
func BeamBox(dims []int, dim int, fixed []int) (lo, hi []int, err error) {
	if dim < 0 || dim >= len(dims) {
		return nil, nil, fmt.Errorf("query: beam dimension %d out of range", dim)
	}
	if len(fixed) != len(dims) {
		return nil, nil, fmt.Errorf("query: fixed has %d dims, want %d", len(fixed), len(dims))
	}
	lo = append([]int(nil), fixed...)
	hi = append([]int(nil), fixed...)
	lo[dim] = 0
	hi[dim] = dims[dim]
	for i := range hi {
		if i != dim {
			hi[i] = fixed[i] + 1
		}
	}
	return lo, hi, nil
}

// BeamOn runs a beam query through an explicit engine runner — a
// concurrent-service Session, or engine.OnVolume for the synchronous
// single-caller path Beam uses. The context carries cancellation and
// deadline down to the engine's admission batches.
func (e *Executor) BeamOn(ctx context.Context, r engine.Runner, dim int, fixed []int) (Stats, error) {
	lo, hi, err := BeamBox(e.m.Dims(), dim, fixed)
	if err != nil {
		return Stats{}, err
	}
	return e.RangeOn(ctx, r, lo, hi)
}

// Range fetches the box [lo, hi) (hi exclusive in every dimension).
func (e *Executor) Range(lo, hi []int) (Stats, error) {
	return e.RangeOn(context.Background(), engine.OnVolume(e.vol), lo, hi)
}

// RangeOn runs a range query through an explicit engine runner. The
// planner streams chunks to the runner; a Session runner pipelines them
// (chunk N+1 is planned while chunk N is on the disks) and may batch
// them with other sessions' in-flight queries. The planner's chunk loop
// observes ctx: cancellation stops planning between chunks, drops the
// query's queued chunks before admission, and returns the partial
// Stats of the work actually issued (converted to cell units, with the
// full-fetch verification skipped) alongside ctx's error.
func (e *Executor) RangeOn(ctx context.Context, r engine.Runner, lo, hi []int) (Stats, error) {
	return e.rangeOn(ctx, r, lo, hi, nil)
}

// RangeStreamOn is RangeOn with chunk-by-chunk result streaming: as
// each of the plan's chunks retires, onChunk receives that chunk's own
// Stats — Cells already converted to cell units like the final result —
// while later chunks are still being planned and served. The callback
// runs on the query's submitting goroutine, never concurrently, and in
// chunk order; dropped chunks (cancellation, deadline) report nothing.
// The returned aggregate is identical to RangeOn's.
func (e *Executor) RangeStreamOn(ctx context.Context, r engine.Runner, lo, hi []int, onChunk func(Stats)) (Stats, error) {
	return e.rangeOn(ctx, r, lo, hi, onChunk)
}

func (e *Executor) rangeOn(ctx context.Context, r engine.Runner, lo, hi []int, onChunk func(Stats)) (Stats, error) {
	cells, err := e.checkBox(lo, hi)
	if err != nil {
		return Stats{}, err
	}
	var hook func(engine.Stats)
	if onChunk != nil {
		cb := int64(1)
		if cs, ok := e.m.(mapping.CellSized); ok {
			cb = int64(cs.CellBlocks())
		}
		hook = func(d engine.Stats) {
			// Chunks are planned in whole cells, so the per-chunk block
			// count is a multiple of the cell size plus its own padding —
			// the same conversion the aggregate gets applies exactly.
			d.Cells = (d.Cells - d.Padding) / cb
			onChunk(d)
		}
	}
	p := e.newBoxPlan(lo, hi)
	st, runErr := r.RunPlan(ctx, p, engine.Options{Policy: e.opts.PolicyOverride, OnChunk: hook})
	// Blocks fetched = cells * cell size + bridged padding; report in
	// cells so MsPerCell stays the paper's metric. Partial results get
	// the same conversion so a cancelled query's Stats stay in cell
	// units.
	b := int64(1)
	if cs, ok := e.m.(mapping.CellSized); ok {
		b = int64(cs.CellBlocks())
	}
	st.Cells = (st.Cells - st.Padding) / b
	if runErr != nil {
		// Speculative partial result: when the context died mid-plan but
		// some cells were already aggregated, hand them back flagged
		// Partial instead of discarding them with the error — the caller
		// decides whether a partial aggregate is usable.
		if st.Cells > 0 && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded)) {
			st.Partial = true
		}
		return st, runErr
	}
	if st.Cells != cells {
		return st, fmt.Errorf("query: fetched %d useful cells, want %d", st.Cells, cells)
	}
	return st, nil
}

// CheckBox validates a box [lo, hi) against a dataset shape and
// returns its cell count — the storage manager's own validation,
// exported so the scatter-gather shard layer rejects exactly the boxes
// the single-volume path would (instead of the router silently
// clamping an out-of-range Dim0 bound).
func CheckBox(dims, lo, hi []int) (int64, error) {
	if len(lo) != len(dims) || len(hi) != len(dims) {
		return 0, fmt.Errorf("query: bounds arity mismatch")
	}
	cells := int64(1)
	for i := range dims {
		if lo[i] < 0 || hi[i] > dims[i] || lo[i] >= hi[i] {
			return 0, fmt.Errorf("query: bad range [%d,%d) on dim %d (length %d)",
				lo[i], hi[i], i, dims[i])
		}
		cells *= int64(hi[i] - lo[i])
	}
	return cells, nil
}

// checkBox validates the box and returns its cell count.
func (e *Executor) checkBox(lo, hi []int) (int64, error) {
	return CheckBox(e.m.Dims(), lo, hi)
}

// Plan returns the streaming request plan for the box [lo, hi): the
// box is sliced along its slowest dimension into sub-boxes of at most
// ChunkCells cells (one chunk when ChunkCells is 0), each planned with
// the mapping's issue strategy.
func (e *Executor) Plan(lo, hi []int) (engine.Plan, error) {
	if _, err := e.checkBox(lo, hi); err != nil {
		return nil, err
	}
	return e.newBoxPlan(lo, hi), nil
}

// newBoxPlan builds the streaming plan for an already-validated box.
func (e *Executor) newBoxPlan(lo, hi []int) engine.Plan {
	// Copy the bounds: the plan is drained lazily, after the caller may
	// have reused its buffers for the next box.
	lo = append([]int(nil), lo...)
	hi = append([]int(nil), hi...)
	return &boxPlan{e: e, lo: lo, hi: hi, next: lo[len(lo)-1]}
}

// boxPlan streams a box query as sub-box chunks.
type boxPlan struct {
	e      *Executor
	lo, hi []int
	next   int // next unplanned slice of the slowest dimension
}

func (p *boxPlan) Next() (engine.Chunk, bool, error) {
	last := len(p.lo) - 1
	if p.next >= p.hi[last] {
		return engine.Chunk{}, false, nil
	}
	end := p.hi[last]
	if limit := p.e.opts.ChunkCells; limit > 0 {
		perSlice := int64(1)
		for i := 0; i < last; i++ {
			perSlice *= int64(p.hi[i] - p.lo[i])
		}
		slices := int(limit / perSlice)
		if slices < 1 {
			slices = 1
		}
		if e := p.next + slices; e < end {
			end = e
		}
	}
	lo := append([]int(nil), p.lo...)
	hi := append([]int(nil), p.hi...)
	lo[last], hi[last] = p.next, end
	p.next = end
	reqs, policy, padding, err := p.e.planBox(lo, hi)
	if err != nil {
		return engine.Chunk{}, false, err
	}
	return engine.Chunk{Reqs: reqs, Policy: policy, Padding: padding}, true, nil
}

// plan materializes the whole plan of a box — the non-streaming view
// used by tools and tests.
func (e *Executor) plan(lo, hi []int) ([]lvm.Request, disk.SchedPolicy, int64, error) {
	p, err := e.Plan(lo, hi)
	if err != nil {
		return nil, 0, 0, err
	}
	var reqs []lvm.Request
	var policy disk.SchedPolicy
	var padding int64
	for {
		c, ok, err := p.Next()
		if err != nil {
			return nil, 0, 0, err
		}
		if !ok {
			return reqs, policy, padding, nil
		}
		reqs = append(reqs, c.Reqs...)
		policy = c.Policy
		padding += c.Padding
	}
}

// planBox translates one sub-box into requests, the issue policy, and
// the number of padding blocks the request set reads beyond the box.
func (e *Executor) planBox(lo, hi []int) ([]lvm.Request, disk.SchedPolicy, int64, error) {
	_, semiSeq := e.m.(mapping.SemiSequential)
	runner, hasRuns := e.m.(mapping.Dim0Runner)

	// MultiMap: favour sequential access along Dim0 (§5.2), then leave
	// the final order to the disk's internal scheduler (SPTF). Sorting
	// first merges the track-sharing segments of packed cubes into
	// whole-track reads and keeps each scheduler window confined to a
	// narrow band of tracks, where every candidate is one settle away.
	if semiSeq && hasRuns {
		reqs, err := runsForBox(runner, lo, hi)
		if err != nil {
			return nil, 0, 0, err
		}
		// Bridge the small gaps MultiMap's own layout leaves on a track
		// (unfilled edge-cube sectors, §4.4): reading a few padding
		// blocks and discarding them is far cheaper than a separate
		// positioning. Gaps from adjacency chains span tracks and stay
		// unbridged.
		merged, padding := engine.BridgedCoalesce(engine.SortCoalesce(reqs), e.bridgeGap)
		return merged, disk.SchedSPTF, padding, nil
	}

	// Naive: contiguous Dim0 runs, then sort+coalesce.
	if hasRuns {
		reqs, err := runsForBox(runner, lo, hi)
		if err != nil {
			return nil, 0, 0, err
		}
		return engine.SortCoalesce(reqs), disk.SchedFIFO, 0, nil
	}

	// Curve mappings that support bulk expansion: ascending coalesced
	// requests in one sort-and-merge pass.
	if bp, ok := e.m.(mapping.BoxPlanner); ok {
		reqs, err := bp.BoxRequests(lo, hi)
		if err != nil {
			return nil, 0, 0, err
		}
		return reqs, disk.SchedFIFO, 0, nil
	}

	// Fallback: per-cell extents, sorted ascending and coalesced.
	b := 1
	if cs, ok := e.m.(mapping.CellSized); ok {
		b = cs.CellBlocks()
	}
	var lbns []int64
	cell := append([]int(nil), lo...)
	for {
		vlbn, err := e.m.CellVLBN(cell)
		if err != nil {
			return nil, 0, 0, err
		}
		lbns = append(lbns, vlbn)
		if !nextInBox(cell, lo, hi) {
			break
		}
	}
	if b == 1 {
		reqs := make([]lvm.Request, len(lbns))
		for i, l := range lbns {
			reqs[i] = lvm.Request{VLBN: l, Count: 1}
		}
		return engine.SortCoalesce(reqs), disk.SchedFIFO, 0, nil
	}
	reqs := make([]lvm.Request, len(lbns))
	for i, l := range lbns {
		reqs[i] = lvm.Request{VLBN: l, Count: b}
	}
	return engine.SortCoalesce(reqs), disk.SchedFIFO, 0, nil
}

// maxBridgeGap caps the gap-bridging threshold (see NewExecutorOptions).
const maxBridgeGap = 64

// runsForBox expands a box into Dim0 runs, stepping the remaining
// dimensions in row-major order (Dim1 fastest — adjacency-chain order
// for MultiMap).
func runsForBox(runner mapping.Dim0Runner, lo, hi []int) ([]lvm.Request, error) {
	length := hi[0] - lo[0]
	cell := append([]int(nil), lo...)
	var out []lvm.Request
	for {
		reqs, err := runner.Dim0Run(cell, length)
		if err != nil {
			return nil, err
		}
		out = append(out, reqs...)
		if !nextInBoxAbove0(cell, lo, hi) {
			return out, nil
		}
	}
}

// nextInBox advances cell within [lo,hi) in row-major order (dim 0
// fastest); reports false after the last cell.
func nextInBox(cell, lo, hi []int) bool {
	for i := 0; i < len(cell); i++ {
		cell[i]++
		if cell[i] < hi[i] {
			return true
		}
		cell[i] = lo[i]
	}
	return false
}

// nextInBoxAbove0 advances only dimensions >= 1.
func nextInBoxAbove0(cell, lo, hi []int) bool {
	for i := 1; i < len(cell); i++ {
		cell[i]++
		if cell[i] < hi[i] {
			return true
		}
		cell[i] = lo[i]
	}
	return false
}
