package query

import (
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
)

// Execute services a prepared request batch through the shared engine
// and returns its statistics. Dataset stores that plan their own
// requests (the octree and OLAP layers) use this instead of Executor.
func Execute(vol *lvm.Volume, reqs []lvm.Request, policy disk.SchedPolicy) (Stats, error) {
	return engine.Execute(vol, reqs, policy)
}

// SortCoalesce sorts requests in ascending VLBN order and merges
// contiguous ones — the storage manager's issue optimization for the
// linear mappings (§5.2).
func SortCoalesce(reqs []lvm.Request) []lvm.Request { return engine.SortCoalesce(reqs) }

// CoalesceSortedLBNs merges an already-ascending list of single-block
// LBNs into contiguous requests.
func CoalesceSortedLBNs(lbns []int64) []lvm.Request { return engine.CoalesceSortedLBNs(lbns) }

// PolicyFor returns the issue policy a mapping kind uses: MultiMap
// leaves ordering to the disk's internal scheduler, linear mappings
// pre-sort and go FIFO.
func PolicyFor(semiSequential bool) disk.SchedPolicy {
	if semiSequential {
		return disk.SchedSPTF
	}
	return disk.SchedFIFO
}

// PlanForTrace exposes an executor's materialized request plan for a
// box so tools (mmtrace) can inspect it before serving it through the
// engine. It returns the requests, the issue policy, and the planned
// padding.
func PlanForTrace(e *Executor, lo, hi []int) ([]lvm.Request, disk.SchedPolicy, int64, error) {
	return e.plan(lo, hi)
}
