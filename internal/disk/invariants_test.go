package disk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestClockMonotoneQuick: the drive clock never goes backwards and each
// access's cost equals the clock advance.
func TestClockMonotoneQuick(t *testing.T) {
	g := AtlasTenKIII()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(g)
		prev := 0.0
		for i := 0; i < 50; i++ {
			before := d.NowMs()
			cost, err := d.Access(Request{LBN: rng.Int63n(g.TotalBlocks() - 64), Count: 1 + rng.Intn(64)})
			if err != nil {
				return false
			}
			if d.NowMs() < before || d.NowMs() < prev {
				return false
			}
			if diff := d.NowMs() - before - cost.TotalMs(); diff > 1e-9 || diff < -1e-9 {
				return false
			}
			prev = d.NowMs()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAccessCostBoundsQuick: any single-block access costs at least one
// sector transfer and at most command + full-stroke seek + one rotation
// + transfer.
func TestAccessCostBoundsQuick(t *testing.T) {
	for _, g := range []*Geometry{AtlasTenKIII(), CheetahThirtySixES()} {
		g := g
		d := New(g)
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			lbn := rng.Int63n(g.TotalBlocks())
			cost, err := d.Access(Request{LBN: lbn, Count: 1})
			if err != nil {
				return false
			}
			lo := g.RotationMs() / float64(g.ZoneByIndex(0).SectorsPerTrack)
			hi := g.CommandMs + g.SeekMaxMs + g.RotationMs() + g.RotationMs()/400
			return cost.TotalMs() >= lo*0.99 && cost.TotalMs() <= hi
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

// TestSequentialContinuationIsFree: back-to-back requests at
// consecutive LBNs on one track cost pure transfer — the prefetch
// buffer discount that makes per-cell and coalesced issue equivalent.
func TestSequentialContinuationIsFree(t *testing.T) {
	g := AtlasTenKIII()
	d := New(g)
	start := int64(5000)
	if _, err := d.Access(Request{LBN: start, Count: 1}); err != nil {
		t.Fatal(err)
	}
	sector := g.SectorTimeMs(start)
	for i := int64(1); i <= 64; i++ {
		cost, err := d.Access(Request{LBN: start + i, Count: 1})
		if err != nil {
			t.Fatal(err)
		}
		if cost.CommandMs != 0 {
			t.Fatalf("continuation %d paid command overhead", i)
		}
		if cost.TotalMs() > sector*1.01 {
			t.Fatalf("continuation %d cost %.4f ms, want one sector %.4f", i, cost.TotalMs(), sector)
		}
	}
}

// TestZoneCrossingStream: a sequential transfer across a zone boundary
// (track length changes) stays near media rate.
func TestZoneCrossingStream(t *testing.T) {
	g := SmallTestDisk()
	d := New(g)
	z0 := g.ZoneByIndex(0)
	boundary := z0.StartLBN() + int64(z0.Cylinders()*g.Surfaces)*int64(z0.SectorsPerTrack)
	start := boundary - 100
	cost, err := d.Access(Request{LBN: start, Count: 200})
	if err != nil {
		t.Fatal(err)
	}
	// 200 sectors across ~6 tracks: transfer plus a handful of switch
	// waits, never extra full rotations beyond skew alignment.
	maxOk := cost.TransferMs + 8*(g.HeadSwitchMs+g.RotationMs()*0.35) + g.CommandMs + g.SeekAvgMs + g.RotationMs()
	if cost.TotalMs() > maxOk {
		t.Fatalf("zone-crossing stream cost %.2f ms, bound %.2f", cost.TotalMs(), maxOk)
	}
	p, _ := g.Decode(start + 199)
	if p.Zone != 1 {
		t.Fatalf("stream did not cross the zone boundary")
	}
}

// TestRepeatedBatchesDeterministic: identical request batches on fresh
// drives produce identical service times (the simulator is exactly
// reproducible).
func TestRepeatedBatchesDeterministic(t *testing.T) {
	g := CheetahThirtySixES()
	rng := rand.New(rand.NewSource(11))
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{LBN: rng.Int63n(g.TotalBlocks()), Count: 1}
	}
	run := func() float64 {
		d := New(g)
		if _, err := d.ServeBatch(reqs, SchedSPTF); err != nil {
			t.Fatal(err)
		}
		return d.NowMs()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic batch service: %.6f vs %.6f", a, b)
	}
}
