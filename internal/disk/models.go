package disk

import (
	"fmt"
	"sort"
)

// makeZones builds nz zones tiling cyls cylinders with track length
// stepping linearly from sptOuter (zone 0) down to sptInner, each with
// skews sized to cover the head-switch and one-cylinder-seek rotation
// (plus margin), the way real drives choose skew.
func makeZones(cyls, nz, sptOuter, sptInner int, rotationMs, headSwitchMs, settleMs float64) []Zone {
	zones := make([]Zone, nz)
	per := cyls / nz
	for i := 0; i < nz; i++ {
		start := i * per
		end := start + per - 1
		if i == nz-1 {
			end = cyls - 1
		}
		spt := sptOuter
		if nz > 1 {
			spt = sptOuter - (sptOuter-sptInner)*i/(nz-1)
		}
		// Track skew covers the head switch; cylinder skew tops it up to
		// the one-cylinder settle. 10% margin, like production firmware.
		trackSkew := int(headSwitchMs/rotationMs*float64(spt)*1.1) + 1
		cylSkew := int((settleMs-headSwitchMs)/rotationMs*float64(spt)*1.1) + 1
		zones[i] = Zone{
			StartCyl:        start,
			EndCyl:          end,
			SectorsPerTrack: spt,
			TrackSkew:       trackSkew,
			CylSkew:         cylSkew,
		}
	}
	return zones
}

// AtlasTenKIII models the Maxtor Atlas 10k III used in the paper's
// evaluation: 36.7 GB, 10,000 RPM, average seek 4.5 ms. Zone track
// lengths follow the published 686–453 sectors-per-track range.
func AtlasTenKIII() *Geometry {
	const (
		rpm        = 10000
		rotationMs = 60000.0 / rpm
		headSwitch = 0.80
		settle     = 1.15
	)
	return MustGeometry(Geometry{
		Name:         "Maxtor Atlas 10k III",
		RPM:          rpm,
		Surfaces:     4,
		Zones:        makeZones(31000, 12, 686, 453, rotationMs, headSwitch, settle),
		SettleMs:     settle,
		SettleCyls:   35,
		HeadSwitchMs: headSwitch,
		SeekAvgMs:    4.5,
		SeekMaxMs:    10.5,
		CommandMs:    0.25,
	})
}

// CheetahThirtySixES models the Seagate Cheetah 36ES used in the paper's
// evaluation: 36.7 GB, 10,028 RPM (modelled as 10,000), average seek
// 5.2 ms. The paper notes both drives have comparable settle times,
// which is why MultiMap performs almost identically on them.
func CheetahThirtySixES() *Geometry {
	const (
		rpm        = 10000
		rotationMs = 60000.0 / rpm
		headSwitch = 0.85
		settle     = 1.25
	)
	return MustGeometry(Geometry{
		Name:         "Seagate Cheetah 36ES",
		RPM:          rpm,
		Surfaces:     4,
		Zones:        makeZones(28000, 11, 738, 480, rotationMs, headSwitch, settle),
		SettleMs:     settle,
		SettleCyls:   34,
		HeadSwitchMs: headSwitch,
		SeekAvgMs:    5.2,
		SeekMaxMs:    10.8,
		CommandMs:    0.30,
	})
}

// SyntheticModern is a higher-density drive outside the paper's testbed,
// used by ablation benchmarks to check that MultiMap's advantage tracks
// the settle-time/track-density trend the paper extrapolates (§3.1).
func SyntheticModern() *Geometry {
	const (
		rpm        = 10000
		rotationMs = 60000.0 / rpm
		headSwitch = 0.60
		settle     = 0.90
	)
	return MustGeometry(Geometry{
		Name:         "Synthetic Modern 10k",
		RPM:          rpm,
		Surfaces:     4,
		Zones:        makeZones(48000, 14, 1200, 720, rotationMs, headSwitch, settle),
		SettleMs:     settle,
		SettleCyls:   50,
		HeadSwitchMs: headSwitch,
		SeekAvgMs:    4.2,
		SeekMaxMs:    9.5,
		CommandMs:    0.15,
	})
}

// SmallTestDisk is a deliberately tiny geometry (two zones, short
// tracks) for fast exhaustive tests.
func SmallTestDisk() *Geometry {
	return MustGeometry(Geometry{
		Name:     "Small Test Disk",
		RPM:      10000,
		Surfaces: 2,
		Zones: []Zone{
			{StartCyl: 0, EndCyl: 99, SectorsPerTrack: 40, TrackSkew: 6, CylSkew: 3},
			{StartCyl: 100, EndCyl: 199, SectorsPerTrack: 30, TrackSkew: 5, CylSkew: 2},
		},
		SettleMs:     1.0,
		SettleCyls:   10,
		HeadSwitchMs: 0.7,
		SeekAvgMs:    4.0,
		SeekMaxMs:    9.0,
		CommandMs:    0.20,
	})
}

// MediumTestDisk is a mid-size geometry (~1 GB) for integration tests
// that need room for real datasets but not a full drive model.
func MediumTestDisk() *Geometry {
	return MustGeometry(Geometry{
		Name:     "Medium Test Disk",
		RPM:      10000,
		Surfaces: 4,
		Zones: []Zone{
			{StartCyl: 0, EndCyl: 1199, SectorsPerTrack: 160, TrackSkew: 22, CylSkew: 9},
			{StartCyl: 1200, EndCyl: 2399, SectorsPerTrack: 120, TrackSkew: 17, CylSkew: 7},
		},
		SettleMs:     1.1,
		SettleCyls:   16,
		HeadSwitchMs: 0.75,
		SeekAvgMs:    4.2,
		SeekMaxMs:    9.2,
		CommandMs:    0.20,
	})
}

// modelRegistry maps CLI-friendly names to constructors.
var modelRegistry = map[string]func() *Geometry{
	"atlas10k3":   AtlasTenKIII,
	"cheetah36es": CheetahThirtySixES,
	"modern":      SyntheticModern,
	"smalltest":   SmallTestDisk,
	"mediumtest":  MediumTestDisk,
}

// ModelNames returns the registered disk model names, sorted.
func ModelNames() []string {
	names := make([]string, 0, len(modelRegistry))
	for n := range modelRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ModelByName constructs a registered disk model.
func ModelByName(name string) (*Geometry, error) {
	f, ok := modelRegistry[name]
	if !ok {
		return nil, fmt.Errorf("disk: unknown model %q (have %v)", name, ModelNames())
	}
	return f(), nil
}
