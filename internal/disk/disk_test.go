package disk

import (
	"math"
	"math/rand"
	"testing"
)

func TestAccessValidation(t *testing.T) {
	d := New(SmallTestDisk())
	for _, r := range []Request{{LBN: -1, Count: 1}, {LBN: 0, Count: 0}, {LBN: 0, Count: -3},
		{LBN: d.Geometry().TotalBlocks(), Count: 1}, {LBN: d.Geometry().TotalBlocks() - 1, Count: 2}} {
		if _, err := d.Access(r); err == nil {
			t.Errorf("Access(%+v): expected error", r)
		}
	}
	if d.Stats().Requests != 0 {
		t.Errorf("failed requests must not be counted in stats")
	}
}

func TestAccessAdvancesClock(t *testing.T) {
	d := New(AtlasTenKIII())
	cost, err := d.Access(Request{LBN: 1_000_000, Count: 16})
	if err != nil {
		t.Fatal(err)
	}
	if cost.TotalMs() <= 0 {
		t.Fatalf("zero cost for a real access")
	}
	if d.NowMs() != cost.TotalMs() {
		t.Fatalf("clock %v != first access cost %v", d.NowMs(), cost.TotalMs())
	}
	// Re-reading the same block needs a full rotation (heads just
	// passed it), never more.
	cost2, _ := d.Access(Request{LBN: 1_000_000, Count: 16})
	if cost2.SeekMs != 0 {
		t.Errorf("same-track re-read should not seek, got %v", cost2.SeekMs)
	}
	rot := d.Geometry().RotationMs()
	if cost2.RotateMs <= 0 || cost2.RotateMs >= rot {
		t.Errorf("re-read rotational wait %v, want in (0,%v)", cost2.RotateMs, rot)
	}
}

func TestRotateWaitRange(t *testing.T) {
	g := AtlasTenKIII()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		now := rng.Float64() * 1e6
		target := rng.Float64()
		w := g.rotateWaitMs(now, target)
		if w < 0 || w >= g.RotationMs()+1e-9 {
			t.Fatalf("rotateWait(%v,%v)=%v out of [0,rotation)", now, target, w)
		}
	}
}

// TestSequentialStreaming verifies that a long multi-track transfer
// proceeds at near media rate: the skew model must absorb head switches
// without blowing a rotation per track.
func TestSequentialStreaming(t *testing.T) {
	for _, g := range []*Geometry{AtlasTenKIII(), CheetahThirtySixES()} {
		d := New(g)
		spt := g.Zones[0].SectorsPerTrack
		tracks := 64
		n := spt * tracks
		// Position somewhere first so the initial seek is counted once.
		if _, err := d.Access(Request{LBN: 0, Count: 1}); err != nil {
			t.Fatal(err)
		}
		cost, err := d.Access(Request{LBN: 1, Count: n})
		if err != nil {
			t.Fatal(err)
		}
		// Ideal: tracks rotations of transfer. Allow 35% overhead for
		// skew waits at 64 track boundaries.
		ideal := float64(tracks) * g.RotationMs()
		if cost.TotalMs() > ideal*1.35 {
			t.Errorf("%s: streaming %d tracks took %.1f ms, ideal %.1f (overhead too high)",
				g.Name, tracks, cost.TotalMs(), ideal)
		}
		// And it must never beat the media rate.
		if cost.TransferMs < ideal*0.95 {
			t.Errorf("%s: transfer %.1f ms beats media rate %.1f", g.Name, cost.TransferMs, ideal)
		}
	}
}

// TestTrackSwitchNoFullRotation checks the skew sizing directly: reading
// the last sector of one track then the first of the next must cost far
// less than a rotation.
func TestTrackSwitchNoFullRotation(t *testing.T) {
	for _, g := range testGeometries() {
		d := New(g)
		spt := g.Zones[0].SectorsPerTrack
		lastOfTrack0 := int64(spt - 1)
		if _, err := d.Access(Request{LBN: lastOfTrack0, Count: 1}); err != nil {
			t.Fatal(err)
		}
		cost, err := d.Access(Request{LBN: lastOfTrack0 + 1, Count: 1})
		if err != nil {
			t.Fatal(err)
		}
		if cost.TotalMs() > g.RotationMs()*0.5 {
			t.Errorf("%s: track switch cost %.2f ms, want well under a rotation (%.2f)",
				g.Name, cost.TotalMs(), g.RotationMs())
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := New(SmallTestDisk())
	rng := rand.New(rand.NewSource(5))
	var wantBlocks int64
	for i := 0; i < 50; i++ {
		lbn := rng.Int63n(d.Geometry().TotalBlocks() - 8)
		c := 1 + rng.Intn(8)
		if _, err := d.Access(Request{LBN: lbn, Count: c}); err != nil {
			t.Fatal(err)
		}
		wantBlocks += int64(c)
	}
	s := d.Stats()
	if s.Requests != 50 || s.Blocks != wantBlocks {
		t.Fatalf("stats %+v, want 50 requests / %d blocks", s, wantBlocks)
	}
	if sum := s.CommandMs + s.SeekMs + s.RotateMs + s.TransferMs; s.BusyMs <= 0 || math.Abs(s.BusyMs-sum) > 1e-6 {
		t.Fatalf("busy %v != cmd+seek+rot+xfer %v", s.BusyMs, sum)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatalf("ResetStats left residue: %+v", d.Stats())
	}
}

func TestResetAndRandomize(t *testing.T) {
	d := New(SmallTestDisk())
	if _, err := d.Access(Request{LBN: 500, Count: 4}); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	if d.NowMs() != 0 || d.curTrack != 0 {
		t.Fatalf("Reset did not restore initial state")
	}
	rng := rand.New(rand.NewSource(1))
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		d.RandomizePosition(rng)
		seen[d.curTrack] = true
	}
	if len(seen) < 5 {
		t.Errorf("RandomizePosition barely moves the head: %d distinct tracks", len(seen))
	}
}

func TestRandomAccessCostPlausible(t *testing.T) {
	// Average random single-block access = avg seek + half rotation,
	// within slack. Anchors the simulator against spec-sheet math.
	g := AtlasTenKIII()
	d := New(g)
	rng := rand.New(rand.NewSource(42))
	const n = 3000
	var total float64
	for i := 0; i < n; i++ {
		lbn := rng.Int63n(g.TotalBlocks())
		cost, err := d.Access(Request{LBN: lbn, Count: 1})
		if err != nil {
			t.Fatal(err)
		}
		total += cost.TotalMs()
	}
	avg := total / n
	want := g.CommandMs + g.SeekAvgMs + g.RotationMs()/2
	if avg < want*0.75 || avg > want*1.25 {
		t.Errorf("random access avg %.2f ms, want ~%.2f (cmd + avg seek + half rotation)", avg, want)
	}
}
