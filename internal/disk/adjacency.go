package disk

import (
	"fmt"
	"math"
)

// adjGuardSectors is the safety margin added to the settle-time
// rotational offset when placing adjacent blocks. One sector absorbs
// rounding at sector granularity; the second tolerates small arrival
// jitter so a chain never misses a rotation.
const adjGuardSectors = 2

// settleSectors returns the number of sectors (rounded up) that pass
// under the head between issuing the next request and the head settling
// on the destination track: command processing plus settle time. The
// adjacency offset must cover both, exactly as the FAST'05 model's
// empirically-extracted offsets do (they measure request-to-request).
func (g *Geometry) settleSectors(spt int) int {
	return int(math.Ceil((g.CommandMs + g.SettleMs) / g.rotationMs * float64(spt)))
}

// AdjOffsetSectors returns the rotational offset, in sectors of lbn's
// zone, between a block and each of its adjacent blocks. The offset is
// the same for all D adjacent blocks — the paper's "same physical
// offset" property — and equals the settle-time rotation plus a guard.
func (g *Geometry) AdjOffsetSectors(lbn int64) int {
	return g.settleSectors(g.TrackLen(lbn)) + adjGuardSectors
}

// AdjSpan returns the largest usable adjacency depth D: the number of
// tracks reachable within the settle-dominated seek range (the paper's
// D <= R*C). Callers may configure any D up to this value.
func (g *Geometry) AdjSpan() int { return g.Surfaces * g.SettleCyls }

// AdjacentBlock returns the k-th adjacent block of lbn (1 <= k <=
// AdjSpan): the block on track(lbn)+k whose start angle trails lbn's end
// angle by the settle-time rotation, so that it can be read right after
// the head settles, with no rotational latency.
func (g *Geometry) AdjacentBlock(lbn int64, k int) (int64, error) {
	if k < 1 || k > g.AdjSpan() {
		return 0, fmt.Errorf("disk: %s: adjacency depth %d out of range [1,%d]", g.Name, k, g.AdjSpan())
	}
	p, err := g.Decode(lbn)
	if err != nil {
		return 0, err
	}
	target := p.Track + k
	tz := g.zoneOfTrack(target)
	if tz == nil {
		return 0, fmt.Errorf("disk: %s: LBN %d has no %d-th adjacent block (past last track)", g.Name, lbn, k)
	}
	// Angle at which the target block must start: one sector past lbn's
	// start (= lbn's end) plus the settle rotation plus the guard, all
	// measured in the target zone's sector grid.
	srcZone := &g.Zones[p.Zone]
	endAngle := g.angleOfSectorStart(p.Track, p.Sector) + 1.0/float64(srcZone.SectorsPerTrack)
	offFrac := float64(g.settleSectors(tz.SectorsPerTrack)+adjGuardSectors) / float64(tz.SectorsPerTrack)
	targetAngle := endAngle + offFrac

	// Smallest sector on the target track whose start angle is at or
	// after targetAngle (mod one rotation).
	spt := tz.SectorsPerTrack
	base := g.skewOffset(target)
	x := targetAngle*float64(spt) - float64(base)
	j := int(math.Ceil(x - 1e-9))
	j = ((j % spt) + spt) % spt
	return g.Encode(target, j)
}

// Adjacent returns the first d adjacent blocks of lbn, one per
// successive track. If fewer than d tracks remain on the drive, the
// returned slice is shorter; it is empty only on the very last track.
// This is the GetAdjacent interface call the paper's LVM exports.
func (g *Geometry) Adjacent(lbn int64, d int) ([]int64, error) {
	if d < 1 {
		return nil, fmt.Errorf("disk: %s: adjacency depth must be positive, got %d", g.Name, d)
	}
	if span := g.AdjSpan(); d > span {
		return nil, fmt.Errorf("disk: %s: adjacency depth %d exceeds span %d", g.Name, d, span)
	}
	p, err := g.Decode(lbn)
	if err != nil {
		return nil, err
	}
	if remain := g.TotalTracks() - 1 - p.Track; d > remain {
		d = remain
	}
	out := make([]int64, 0, d)
	for k := 1; k <= d; k++ {
		a, err := g.AdjacentBlock(lbn, k)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// SemiSeqStepMs returns the modelled cost of one hop along a
// semi-sequential path in lbn's zone: command overhead plus settle plus
// the guard rotation plus one sector transfer. Useful for analytic
// estimates.
func (g *Geometry) SemiSeqStepMs(lbn int64) float64 {
	spt := g.TrackLen(lbn)
	sector := g.rotationMs / float64(spt)
	busy := g.CommandMs + g.SettleMs
	slack := float64(g.settleSectors(spt))*sector - busy // < one sector
	return busy + slack + float64(adjGuardSectors)*sector + sector
}
