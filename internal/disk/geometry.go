// Package disk implements a detailed single-spindle disk drive simulator.
//
// The simulator models the mechanisms that the MultiMap paper's results
// depend on: zoned recording (track length varies by radial position), a
// three-regime seek curve whose short-seek region is dominated by head
// settle time, rotational position as a function of absolute time,
// track and cylinder skew, and an on-disk scheduler. On top of the
// mechanical model it computes the adjacency relation of Schlosser et
// al. (FAST 2005): for every LBN, the D blocks on the following D tracks
// that can be read immediately after the head settles, with no
// rotational latency.
//
// All times are in milliseconds; all angles are expressed in fractions
// of a rotation [0,1).
package disk

import (
	"errors"
	"fmt"
	"sort"
)

// Zone is a contiguous band of cylinders recorded at the same linear bit
// density, so every track in the zone holds the same number of sectors.
type Zone struct {
	// StartCyl and EndCyl delimit the zone's cylinders, inclusive.
	StartCyl int
	EndCyl   int
	// SectorsPerTrack is the track length T within this zone.
	SectorsPerTrack int
	// TrackSkew is the sector offset added at each track boundary so
	// that a sequential transfer resumes right after a head switch.
	TrackSkew int
	// CylSkew is the additional offset at each cylinder boundary,
	// covering the (longer) single-cylinder seek.
	CylSkew int

	// startLBN and startTrack are derived by Geometry.finish.
	startLBN   int64
	startTrack int
}

// Cylinders returns the number of cylinders in the zone.
func (z *Zone) Cylinders() int { return z.EndCyl - z.StartCyl + 1 }

// StartLBN returns the first logical block number of the zone.
func (z *Zone) StartLBN() int64 { return z.startLBN }

// Geometry describes the physical layout and mechanical timing of a
// disk drive. Construct one with NewGeometry (or use a predefined model
// from models.go) so the derived fields are populated and validated.
type Geometry struct {
	// Name identifies the drive model.
	Name string
	// RPM is the spindle speed in revolutions per minute.
	RPM int
	// Surfaces is the number of recording surfaces (heads); a cylinder
	// therefore contains Surfaces tracks (the paper's R).
	Surfaces int
	// Zones, ordered from the outermost (cylinder 0) inward.
	Zones []Zone

	// SettleMs is the head settle time: the near-constant cost of any
	// seek of at most SettleCyls cylinders (the paper's Fig. 1a plateau).
	SettleMs float64
	// SettleCyls is the paper's C: the longest cylinder distance whose
	// seek cost is dominated by settle time.
	SettleCyls int
	// HeadSwitchMs is the cost of switching heads within a cylinder.
	HeadSwitchMs float64
	// SeekAvgMs is the spec-sheet average seek time, interpreted as the
	// cost of a seek across one third of the cylinders.
	SeekAvgMs float64
	// SeekMaxMs is the full-stroke seek time.
	SeekMaxMs float64
	// CommandMs is the per-request command processing overhead (host
	// protocol + firmware), charged to every request that is not a
	// sequential continuation of the previous one; continuations are
	// served from the drive's prefetch buffer at media rate.
	CommandMs float64

	// derived
	cylinders   int
	totalBlocks int64
	rotationMs  float64
	seek        seekCurve
}

// NewGeometry validates g, derives the per-zone LBN ranges and the seek
// curve coefficients, and returns the ready-to-use geometry.
func NewGeometry(g Geometry) (*Geometry, error) {
	if g.RPM <= 0 {
		return nil, fmt.Errorf("disk: %s: RPM must be positive, got %d", g.Name, g.RPM)
	}
	if g.Surfaces <= 0 {
		return nil, fmt.Errorf("disk: %s: Surfaces must be positive, got %d", g.Name, g.Surfaces)
	}
	if len(g.Zones) == 0 {
		return nil, fmt.Errorf("disk: %s: at least one zone required", g.Name)
	}
	if g.SettleMs <= 0 || g.SettleCyls <= 0 {
		return nil, fmt.Errorf("disk: %s: settle time and settle cylinder range must be positive", g.Name)
	}
	if g.SeekAvgMs < g.SettleMs || g.SeekMaxMs < g.SeekAvgMs {
		return nil, fmt.Errorf("disk: %s: need settle <= avg seek <= max seek", g.Name)
	}
	if g.CommandMs < 0 {
		return nil, fmt.Errorf("disk: %s: command overhead must be non-negative", g.Name)
	}
	if err := g.finish(); err != nil {
		return nil, err
	}
	return &g, nil
}

// MustGeometry is NewGeometry that panics on error; for use with the
// static models in models.go and in tests.
func MustGeometry(g Geometry) *Geometry {
	gg, err := NewGeometry(g)
	if err != nil {
		panic(err)
	}
	return gg
}

var errLBNRange = errors.New("disk: LBN out of range")

// finish derives zone start LBNs, totals, and the seek curve.
func (g *Geometry) finish() error {
	g.rotationMs = 60000.0 / float64(g.RPM)
	var lbn int64
	track := 0
	prevEnd := -1
	for i := range g.Zones {
		z := &g.Zones[i]
		if z.StartCyl != prevEnd+1 {
			return fmt.Errorf("disk: %s: zone %d starts at cylinder %d, want %d (zones must tile the cylinders)",
				g.Name, i, z.StartCyl, prevEnd+1)
		}
		if z.EndCyl < z.StartCyl {
			return fmt.Errorf("disk: %s: zone %d has EndCyl < StartCyl", g.Name, i)
		}
		if z.SectorsPerTrack <= 0 {
			return fmt.Errorf("disk: %s: zone %d has non-positive track length", g.Name, i)
		}
		if z.TrackSkew < 0 || z.TrackSkew >= z.SectorsPerTrack || z.CylSkew < 0 || z.CylSkew >= z.SectorsPerTrack {
			return fmt.Errorf("disk: %s: zone %d skew out of range [0,%d)", g.Name, i, z.SectorsPerTrack)
		}
		z.startLBN = lbn
		z.startTrack = track
		nTracks := z.Cylinders() * g.Surfaces
		lbn += int64(nTracks) * int64(z.SectorsPerTrack)
		track += nTracks
		prevEnd = z.EndCyl
	}
	g.cylinders = prevEnd + 1
	g.totalBlocks = lbn
	if g.SettleCyls >= g.cylinders {
		return fmt.Errorf("disk: %s: settle range %d must be smaller than cylinder count %d",
			g.Name, g.SettleCyls, g.cylinders)
	}
	g.seek = fitSeekCurve(g.SettleMs, g.SettleCyls, g.SeekAvgMs, g.SeekMaxMs, g.cylinders)
	return nil
}

// Cylinders returns the total cylinder count.
func (g *Geometry) Cylinders() int { return g.cylinders }

// TotalBlocks returns the drive capacity in 512-byte blocks.
func (g *Geometry) TotalBlocks() int64 { return g.totalBlocks }

// RotationMs returns the rotational period in milliseconds.
func (g *Geometry) RotationMs() float64 { return g.rotationMs }

// SectorTimeMs returns the time to transfer one sector on a track of the
// zone containing lbn.
func (g *Geometry) SectorTimeMs(lbn int64) float64 {
	z := g.ZoneOf(lbn)
	return g.rotationMs / float64(z.SectorsPerTrack)
}

// ZoneOf returns the zone containing lbn. It panics if lbn is out of
// range; callers must validate first (see Decode).
func (g *Geometry) ZoneOf(lbn int64) *Zone {
	i := sort.Search(len(g.Zones), func(i int) bool {
		return g.Zones[i].startLBN > lbn
	}) - 1
	if i < 0 || lbn >= g.totalBlocks {
		panic(fmt.Sprintf("disk: %s: LBN %d out of range [0,%d)", g.Name, lbn, g.totalBlocks))
	}
	return &g.Zones[i]
}

// ZoneIndexOf returns the index of the zone containing lbn.
func (g *Geometry) ZoneIndexOf(lbn int64) int {
	i := sort.Search(len(g.Zones), func(i int) bool {
		return g.Zones[i].startLBN > lbn
	}) - 1
	if i < 0 || lbn >= g.totalBlocks {
		panic(fmt.Sprintf("disk: %s: LBN %d out of range [0,%d)", g.Name, lbn, g.totalBlocks))
	}
	return i
}

// ZoneByIndex returns the i-th zone (outermost first).
func (g *Geometry) ZoneByIndex(i int) *Zone { return &g.Zones[i] }

// NumZones returns the number of recording zones.
func (g *Geometry) NumZones() int { return len(g.Zones) }
