package disk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testGeometries() []*Geometry {
	return []*Geometry{SmallTestDisk(), AtlasTenKIII(), CheetahThirtySixES(), SyntheticModern()}
}

func TestNewGeometryValidation(t *testing.T) {
	base := func() Geometry {
		return Geometry{
			Name: "g", RPM: 10000, Surfaces: 2,
			Zones:    []Zone{{StartCyl: 0, EndCyl: 99, SectorsPerTrack: 50, TrackSkew: 5, CylSkew: 2}},
			SettleMs: 1, SettleCyls: 5, HeadSwitchMs: 0.7, SeekAvgMs: 4, SeekMaxMs: 9,
		}
	}
	cases := []struct {
		name   string
		mutate func(*Geometry)
	}{
		{"zero RPM", func(g *Geometry) { g.RPM = 0 }},
		{"zero surfaces", func(g *Geometry) { g.Surfaces = 0 }},
		{"no zones", func(g *Geometry) { g.Zones = nil }},
		{"zero settle", func(g *Geometry) { g.SettleMs = 0 }},
		{"avg below settle", func(g *Geometry) { g.SeekAvgMs = 0.5 }},
		{"max below avg", func(g *Geometry) { g.SeekMaxMs = 2 }},
		{"zone gap", func(g *Geometry) { g.Zones[0].StartCyl = 1 }},
		{"inverted zone", func(g *Geometry) { g.Zones[0].EndCyl = -1 }},
		{"zero track length", func(g *Geometry) { g.Zones[0].SectorsPerTrack = 0 }},
		{"skew too large", func(g *Geometry) { g.Zones[0].TrackSkew = 50 }},
		{"settle range too wide", func(g *Geometry) { g.SettleCyls = 100 }},
	}
	for _, tc := range cases {
		g := base()
		tc.mutate(&g)
		if _, err := NewGeometry(g); err == nil {
			t.Errorf("%s: expected validation error, got nil", tc.name)
		}
	}
	if _, err := NewGeometry(base()); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}

func TestZoneTiling(t *testing.T) {
	for _, g := range testGeometries() {
		var lbn int64
		track := 0
		for i := range g.Zones {
			z := &g.Zones[i]
			if z.startLBN != lbn {
				t.Errorf("%s zone %d: startLBN %d, want %d", g.Name, i, z.startLBN, lbn)
			}
			if z.startTrack != track {
				t.Errorf("%s zone %d: startTrack %d, want %d", g.Name, i, z.startTrack, track)
			}
			lbn += int64(z.Cylinders()*g.Surfaces) * int64(z.SectorsPerTrack)
			track += z.Cylinders() * g.Surfaces
		}
		if g.TotalBlocks() != lbn {
			t.Errorf("%s: TotalBlocks %d, want %d", g.Name, g.TotalBlocks(), lbn)
		}
		if g.TotalTracks() != track {
			t.Errorf("%s: TotalTracks %d, want %d", g.Name, g.TotalTracks(), track)
		}
	}
}

func TestPaperDiskCapacities(t *testing.T) {
	// Both evaluation drives are 36.7 GB; the model should land within 15%.
	for _, g := range []*Geometry{AtlasTenKIII(), CheetahThirtySixES()} {
		gb := float64(g.TotalBlocks()) * 512 / 1e9
		if gb < 31 || gb > 42 {
			t.Errorf("%s: capacity %.1f GB, want ~36.7 GB", g.Name, gb)
		}
		if g.AdjSpan() < 128 {
			t.Errorf("%s: AdjSpan %d, want >= 128 (paper uses D=128)", g.Name, g.AdjSpan())
		}
		if g.RotationMs() != 6.0 {
			t.Errorf("%s: rotation %.2f ms, want 6.00 (10k RPM)", g.Name, g.RotationMs())
		}
	}
}

func TestDecodeEncodeRoundTrip(t *testing.T) {
	for _, g := range testGeometries() {
		g := g
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			lbn := rng.Int63n(g.TotalBlocks())
			p, err := g.Decode(lbn)
			if err != nil {
				return false
			}
			back, err := g.Encode(p.Track, p.Sector)
			if err != nil {
				return false
			}
			return back == lbn
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestDecodeConsistency(t *testing.T) {
	g := SmallTestDisk()
	// Exhaustive on the small disk: fields must be in range and monotone.
	var prev PBN
	for lbn := int64(0); lbn < g.TotalBlocks(); lbn++ {
		p, err := g.Decode(lbn)
		if err != nil {
			t.Fatalf("Decode(%d): %v", lbn, err)
		}
		z := &g.Zones[p.Zone]
		if p.Sector < 0 || p.Sector >= z.SectorsPerTrack {
			t.Fatalf("lbn %d: sector %d out of range", lbn, p.Sector)
		}
		if p.Cyl < z.StartCyl || p.Cyl > z.EndCyl {
			t.Fatalf("lbn %d: cylinder %d outside zone %d", lbn, p.Cyl, p.Zone)
		}
		if p.Track != p.Cyl*g.Surfaces+p.Surface {
			t.Fatalf("lbn %d: track %d != cyl*R+surf", lbn, p.Track)
		}
		if lbn > 0 && p.Track < prev.Track {
			t.Fatalf("lbn %d: track went backwards", lbn)
		}
		prev = p
	}
}

func TestDecodeOutOfRange(t *testing.T) {
	g := SmallTestDisk()
	for _, lbn := range []int64{-1, g.TotalBlocks(), g.TotalBlocks() + 10} {
		if _, err := g.Decode(lbn); err == nil {
			t.Errorf("Decode(%d): expected error", lbn)
		}
	}
}

func TestTrackBoundaries(t *testing.T) {
	for _, g := range testGeometries() {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			lbn := rng.Int63n(g.TotalBlocks())
			start, next, err := g.TrackBoundaries(lbn)
			if err != nil {
				t.Fatalf("%s: %v", g.Name, err)
			}
			if lbn < start || lbn >= next {
				t.Fatalf("%s: lbn %d outside own track [%d,%d)", g.Name, lbn, start, next)
			}
			if int(next-start) != g.TrackLen(lbn) {
				t.Fatalf("%s: track [%d,%d) length %d != TrackLen %d",
					g.Name, start, next, next-start, g.TrackLen(lbn))
			}
			ps, _ := g.Decode(start)
			pe, _ := g.Decode(next - 1)
			if ps.Track != pe.Track || ps.Sector != 0 {
				t.Fatalf("%s: boundaries not aligned to a single track", g.Name)
			}
		}
	}
}

func TestZoneOfMatchesDecode(t *testing.T) {
	g := AtlasTenKIII()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		lbn := rng.Int63n(g.TotalBlocks())
		p, _ := g.Decode(lbn)
		if zi := g.ZoneIndexOf(lbn); zi != p.Zone {
			t.Fatalf("ZoneIndexOf(%d)=%d, Decode says %d", lbn, zi, p.Zone)
		}
	}
}

func TestTrackLenDecreasesInward(t *testing.T) {
	for _, g := range []*Geometry{AtlasTenKIII(), CheetahThirtySixES(), SyntheticModern()} {
		for i := 1; i < g.NumZones(); i++ {
			if g.Zones[i].SectorsPerTrack > g.Zones[i-1].SectorsPerTrack {
				t.Errorf("%s: zone %d longer than zone %d", g.Name, i, i-1)
			}
		}
	}
}

func TestSkewOffsetStable(t *testing.T) {
	// Consecutive tracks in a zone differ by exactly TrackSkew
	// (+CylSkew at cylinder boundaries), modulo track length.
	g := SmallTestDisk()
	for track := 0; track < g.TotalTracks()-1; track++ {
		z := g.zoneOfTrack(track)
		zn := g.zoneOfTrack(track + 1)
		if z != zn {
			continue // skew chains restart across zones
		}
		want := z.TrackSkew
		if (track+1)%g.Surfaces == 0 {
			want += z.CylSkew
		}
		got := (g.skewOffset(track+1) - g.skewOffset(track) + z.SectorsPerTrack) % z.SectorsPerTrack
		if got != want%z.SectorsPerTrack {
			t.Fatalf("track %d->%d: skew delta %d, want %d", track, track+1, got, want)
		}
	}
}
