package disk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAdjacentBlockTrackPlacement: the k-th adjacent block lives exactly
// k tracks below its parent.
func TestAdjacentBlockTrackPlacement(t *testing.T) {
	for _, g := range testGeometries() {
		g := g
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			// Keep away from the disk end so all D exist.
			maxTrack := g.TotalTracks() - g.AdjSpan() - 1
			lbn := rng.Int63n(g.TotalBlocks())
			p, _ := g.Decode(lbn)
			if p.Track >= maxTrack {
				return true
			}
			k := 1 + rng.Intn(g.AdjSpan())
			a, err := g.AdjacentBlock(lbn, k)
			if err != nil {
				return false
			}
			pa, err := g.Decode(a)
			return err == nil && pa.Track == p.Track+k
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

// TestAdjacencyNoRotationalLatency is the defining invariant (Fig. 1b):
// reading any adjacent block immediately after its parent costs the
// settle time plus less than a handful of sector times — rotational
// latency is eliminated.
func TestAdjacencyNoRotationalLatency(t *testing.T) {
	for _, g := range []*Geometry{AtlasTenKIII(), CheetahThirtySixES(), SmallTestDisk()} {
		d := New(g)
		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 60; trial++ {
			lbn := rng.Int63n(g.TotalBlocks() / 2) // stay clear of the end
			k := 1 + rng.Intn(g.AdjSpan())
			a, err := g.AdjacentBlock(lbn, k)
			if err != nil {
				t.Fatalf("%s: AdjacentBlock(%d,%d): %v", g.Name, lbn, k, err)
			}
			if _, err := d.Access(Request{LBN: lbn, Count: 1}); err != nil {
				t.Fatal(err)
			}
			cost, err := d.Access(Request{LBN: a, Count: 1})
			if err != nil {
				t.Fatal(err)
			}
			sector := g.SectorTimeMs(a)
			// Command + seek + rotational wait must land exactly in the
			// adjacency window: settle + at most the guard rotation.
			pos := cost.CommandMs + cost.SeekMs + cost.RotateMs
			lo := g.CommandMs + g.SettleMs - 1e-9
			hi := g.CommandMs + g.SettleMs + float64(adjGuardSectors+2)*sector
			if pos < lo || pos > hi {
				t.Fatalf("%s: k=%d positioning %.4f ms, want [cmd+settle=%.2f, +%d sectors=%.4f] (seek %.3f rot %.3f)",
					g.Name, k, pos, g.CommandMs+g.SettleMs, adjGuardSectors+2, hi, cost.SeekMs, cost.RotateMs)
			}
		}
	}
}

// TestAdjacencyConstantAngularOffset: all D adjacent blocks sit at the
// same angular offset from the parent (paper §3.1), modulo the sector
// rounding of their own zone.
func TestAdjacencyConstantAngularOffset(t *testing.T) {
	g := AtlasTenKIII()
	lbn := int64(1_000_000)
	p, _ := g.Decode(lbn)
	parent := g.angleOfSectorStart(p.Track, p.Sector)
	adjs, err := g.Adjacent(lbn, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(adjs) != 128 {
		t.Fatalf("want 128 adjacent blocks, got %d", len(adjs))
	}
	var first float64
	for i, a := range adjs {
		pa, _ := g.Decode(a)
		off := g.angleOfSectorStart(pa.Track, pa.Sector) - parent
		if off < 0 {
			off += 1
		}
		if i == 0 {
			first = off
			continue
		}
		sector := 1.0 / float64(g.TrackLen(a))
		if diff := off - first; diff < -sector || diff > sector {
			t.Fatalf("adjacent %d: angular offset %.5f differs from first %.5f by more than a sector",
				i+1, off, first)
		}
	}
}

// TestSemiSequentialPath: traversing successive first adjacent blocks
// achieves the semi-sequential rate — every hop costs about
// SemiSeqStepMs, four-plus times better than a rotational-latency hop.
func TestSemiSequentialPath(t *testing.T) {
	for _, g := range []*Geometry{AtlasTenKIII(), CheetahThirtySixES()} {
		d := New(g)
		lbn := int64(5000)
		if _, err := d.Access(Request{LBN: lbn, Count: 1}); err != nil {
			t.Fatal(err)
		}
		const hops = 200
		start := d.NowMs()
		cur := lbn
		for i := 0; i < hops; i++ {
			a, err := g.AdjacentBlock(cur, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Access(Request{LBN: a, Count: 1}); err != nil {
				t.Fatal(err)
			}
			cur = a
		}
		perHop := (d.NowMs() - start) / hops
		model := g.SemiSeqStepMs(lbn)
		if perHop > model*1.10 || perHop < g.SettleMs {
			t.Errorf("%s: semi-seq hop %.4f ms, model %.4f, settle %.2f", g.Name, perHop, model, g.SettleMs)
		}
		// The paper: semi-sequential clearly beats rotational-latency
		// access (a factor of ~4 before command overheads).
		rotHop := g.CommandMs + g.RotationMs()/2
		if perHop > rotHop*0.55 {
			t.Errorf("%s: semi-seq hop %.3f ms not clearly better than rotational %.3f", g.Name, perHop, rotHop)
		}
	}
}

// TestSemiSequentialDeepStride: hops of the Dth adjacent block cost the
// same as hops of the 1st (paper: either path achieves equal bandwidth).
func TestSemiSequentialDeepStride(t *testing.T) {
	g := AtlasTenKIII()
	const hops = 64
	perHop := func(stride int) float64 {
		d := New(g)
		cur := int64(9000)
		if _, err := d.Access(Request{LBN: cur, Count: 1}); err != nil {
			t.Fatal(err)
		}
		start := d.NowMs()
		for i := 0; i < hops; i++ {
			a, err := g.AdjacentBlock(cur, stride)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Access(Request{LBN: a, Count: 1}); err != nil {
				t.Fatal(err)
			}
			cur = a
		}
		return (d.NowMs() - start) / hops
	}
	h1 := perHop(1)
	hD := perHop(128)
	if hD > h1*1.05 || h1 > hD*1.05 {
		t.Errorf("stride-1 hop %.4f ms vs stride-128 hop %.4f ms: want equal cost", h1, hD)
	}
}

func TestAdjacentDepthValidation(t *testing.T) {
	g := AtlasTenKIII()
	if _, err := g.AdjacentBlock(0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := g.AdjacentBlock(0, g.AdjSpan()+1); err == nil {
		t.Error("k beyond span accepted")
	}
	if _, err := g.Adjacent(0, 0); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := g.Adjacent(-5, 4); err == nil {
		t.Error("negative LBN accepted")
	}
}

func TestAdjacentNearDiskEnd(t *testing.T) {
	g := SmallTestDisk()
	// A block on the second-to-last track has exactly one adjacent block.
	last := g.TotalBlocks() - 1
	p, _ := g.Decode(last)
	if p.Track != g.TotalTracks()-1 {
		t.Fatalf("last LBN not on last track")
	}
	spt := int64(g.Zones[len(g.Zones)-1].SectorsPerTrack)
	secondToLast := last - spt
	adjs, err := g.Adjacent(secondToLast, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(adjs) != 1 {
		t.Fatalf("second-to-last track: got %d adjacent blocks, want 1", len(adjs))
	}
	// The very last track has none.
	adjs, err = g.Adjacent(last, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(adjs) != 0 {
		t.Fatalf("last track: got %d adjacent blocks, want 0", len(adjs))
	}
}

// TestAdjacencyAcrossZoneBoundary: adjacency still holds when the chain
// crosses into a zone with a different track length.
func TestAdjacencyAcrossZoneBoundary(t *testing.T) {
	g := SmallTestDisk()
	z0 := &g.Zones[0]
	// Last track of zone 0.
	lastTrackZ0 := z0.Cylinders()*g.Surfaces - 1
	lbn, err := g.Encode(lastTrackZ0, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.AdjacentBlock(lbn, 1)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := g.Decode(a)
	if pa.Zone != 1 {
		t.Fatalf("adjacent block stayed in zone %d, want zone 1", pa.Zone)
	}
	d := New(g)
	if _, err := d.Access(Request{LBN: lbn, Count: 1}); err != nil {
		t.Fatal(err)
	}
	cost, err := d.Access(Request{LBN: a, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	sector := g.SectorTimeMs(a)
	if pos := cost.SeekMs + cost.RotateMs; pos > g.CommandMs+g.SettleMs+float64(adjGuardSectors+2)*sector {
		t.Errorf("cross-zone adjacency positioning %.4f ms too slow", pos)
	}
}
