package disk

import (
	"math/rand"
	"testing"
)

func BenchmarkDecode(b *testing.B) {
	g := AtlasTenKIII()
	rng := rand.New(rand.NewSource(1))
	lbns := make([]int64, 1024)
	for i := range lbns {
		lbns[i] = rng.Int63n(g.TotalBlocks())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Decode(lbns[i%len(lbns)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdjacentBlock(b *testing.B) {
	g := AtlasTenKIII()
	rng := rand.New(rand.NewSource(2))
	lbns := make([]int64, 1024)
	for i := range lbns {
		lbns[i] = rng.Int63n(g.TotalBlocks() / 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.AdjacentBlock(lbns[i%len(lbns)], 1+i%128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccessRandom(b *testing.B) {
	g := AtlasTenKIII()
	d := New(g)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Access(Request{LBN: rng.Int63n(g.TotalBlocks()), Count: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccessSemiSequential(b *testing.B) {
	g := AtlasTenKIII()
	d := New(g)
	cur := int64(10000)
	if _, err := d.Access(Request{LBN: cur, Count: 1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := g.AdjacentBlock(cur, 1)
		if err != nil {
			// Wrapped off the end of the drive; restart the chain.
			cur = 10000
			continue
		}
		if _, err := d.Access(Request{LBN: a, Count: 1}); err != nil {
			b.Fatal(err)
		}
		cur = a
	}
}

func BenchmarkServeBatchSPTF(b *testing.B) {
	g := AtlasTenKIII()
	rng := rand.New(rand.NewSource(4))
	reqs := make([]Request, 256)
	for i := range reqs {
		reqs[i] = Request{LBN: rng.Int63n(g.TotalBlocks()), Count: 1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(g)
		if _, err := d.ServeBatch(reqs, SchedSPTF); err != nil {
			b.Fatal(err)
		}
	}
}
