package disk

import (
	"fmt"
	"sort"
)

// PBN is a decoded physical block number: the physical coordinates of a
// logical block.
type PBN struct {
	Zone    int // zone index
	Cyl     int // cylinder (0 = outermost)
	Surface int // recording surface / head
	Track   int // global track index: Cyl*Surfaces + Surface
	Sector  int // sector index within the track, 0-based
}

func (p PBN) String() string {
	return fmt.Sprintf("z%d/c%d/h%d/s%d", p.Zone, p.Cyl, p.Surface, p.Sector)
}

// Decode maps an LBN to its physical coordinates. The layout is
// cylinder-major: all tracks of a cylinder are filled (surface 0..R-1)
// before moving one cylinder inward, matching conventional drives.
func (g *Geometry) Decode(lbn int64) (PBN, error) {
	if lbn < 0 || lbn >= g.totalBlocks {
		return PBN{}, fmt.Errorf("%w: %d not in [0,%d)", errLBNRange, lbn, g.totalBlocks)
	}
	zi := g.ZoneIndexOf(lbn)
	z := &g.Zones[zi]
	idx := lbn - z.startLBN
	spt := int64(z.SectorsPerTrack)
	trackInZone := int(idx / spt)
	sector := int(idx % spt)
	track := z.startTrack + trackInZone
	return PBN{
		Zone:    zi,
		Cyl:     z.StartCyl + trackInZone/g.Surfaces,
		Surface: trackInZone % g.Surfaces,
		Track:   track,
		Sector:  sector,
	}, nil
}

// mustDecode is Decode for internally-generated LBNs that are known valid.
func (g *Geometry) mustDecode(lbn int64) PBN {
	p, err := g.Decode(lbn)
	if err != nil {
		panic(err)
	}
	return p
}

// zoneOfTrack returns the zone containing the global track index, or nil
// if the track is beyond the last zone.
func (g *Geometry) zoneOfTrack(track int) *Zone {
	if track < 0 || track >= g.TotalTracks() {
		return nil
	}
	i := sort.Search(len(g.Zones), func(i int) bool {
		return g.Zones[i].startTrack > track
	}) - 1
	return &g.Zones[i]
}

// Encode maps (global track, sector) back to an LBN. It is the inverse
// of Decode restricted to valid coordinates.
func (g *Geometry) Encode(track, sector int) (int64, error) {
	z := g.zoneOfTrack(track)
	if z == nil {
		return 0, fmt.Errorf("disk: %s: track %d out of range", g.Name, track)
	}
	if sector < 0 || sector >= z.SectorsPerTrack {
		return 0, fmt.Errorf("disk: %s: sector %d out of range [0,%d) on track %d",
			g.Name, sector, z.SectorsPerTrack, track)
	}
	return z.startLBN + int64(track-z.startTrack)*int64(z.SectorsPerTrack) + int64(sector), nil
}

// TotalTracks returns the number of tracks on the drive.
func (g *Geometry) TotalTracks() int { return g.cylinders * g.Surfaces }

// TrackBoundaries returns the first LBN of the track containing lbn and
// the first LBN of the next track, i.e. the half-open interval
// [start, next) of blocks sharing lbn's track. This is the
// GetTrackBoundaries interface call the paper's LVM exports.
func (g *Geometry) TrackBoundaries(lbn int64) (start, next int64, err error) {
	p, err := g.Decode(lbn)
	if err != nil {
		return 0, 0, err
	}
	z := &g.Zones[p.Zone]
	start = lbn - int64(p.Sector)
	next = start + int64(z.SectorsPerTrack)
	return start, next, nil
}

// TrackLen returns the number of sectors on lbn's track (the paper's T,
// which varies by zone).
func (g *Geometry) TrackLen(lbn int64) int {
	return g.ZoneOf(lbn).SectorsPerTrack
}

// skewOffset returns the accumulated skew, in sectors, of a global track:
// the rotational shift of sector 0 relative to sector 0 of the zone's
// first track. Track skew accrues at every track boundary and cylinder
// skew additionally at every cylinder boundary, so a maximal sequential
// transfer loses only the switch time, not a full rotation.
func (g *Geometry) skewOffset(track int) int {
	z := g.zoneOfTrack(track)
	if z == nil {
		return 0
	}
	return g.skewOffsetIn(z, track)
}

// skewOffsetIn is skewOffset with the track's zone already resolved —
// the form the per-request hot paths use.
func (g *Geometry) skewOffsetIn(z *Zone, track int) int {
	t := track - z.startTrack
	cylsCrossed := t / g.Surfaces
	skew := t*z.TrackSkew + cylsCrossed*z.CylSkew
	return skew % z.SectorsPerTrack
}

// angleOfSectorStart returns the angular position, as a fraction of a
// rotation in [0,1), at which the given sector of the given track passes
// under the head.
func (g *Geometry) angleOfSectorStart(track, sector int) float64 {
	z := g.zoneOfTrack(track)
	if z == nil {
		panic(fmt.Sprintf("disk: %s: track %d out of range", g.Name, track))
	}
	return g.angleOfSectorIn(z, track, sector)
}

// angleOfSectorIn is angleOfSectorStart with the zone already resolved.
func (g *Geometry) angleOfSectorIn(z *Zone, track, sector int) float64 {
	s := (sector + g.skewOffsetIn(z, track)) % z.SectorsPerTrack
	return float64(s) / float64(z.SectorsPerTrack)
}

// angleAt returns the spindle phase in [0,1) at absolute time nowMs: the
// angular position currently under the heads.
func (g *Geometry) angleAt(nowMs float64) float64 {
	r := nowMs / g.rotationMs
	return r - float64(int64(r))
}

// rotAngleEps absorbs floating-point noise when a target angle
// coincides with the current head position (exact sequential
// continuation): without it, an error of one ulp turns a zero wait into
// a full spurious rotation.
const rotAngleEps = 1e-9

// rotateWaitMs returns the time to wait, starting at nowMs, until the
// platter reaches target angle (fraction of rotation).
func (g *Geometry) rotateWaitMs(nowMs, target float64) float64 {
	cur := g.angleAt(nowMs)
	d := target - cur
	if d < 0 {
		d += 1.0
	}
	if d < 0 || d > 1-rotAngleEps {
		d = 0
	}
	return d * g.rotationMs
}
