package disk

import (
	"math/rand"
	"testing"
)

func TestServeBatchFIFOOrder(t *testing.T) {
	d := New(SmallTestDisk())
	reqs := []Request{{LBN: 100, Count: 2}, {LBN: 50, Count: 1}, {LBN: 900, Count: 3}}
	comps, err := d.ServeBatch(reqs, SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != len(reqs) {
		t.Fatalf("got %d completions, want %d", len(comps), len(reqs))
	}
	for i := range reqs {
		if comps[i].Req != reqs[i] {
			t.Fatalf("FIFO reordered requests: %v", comps)
		}
	}
	for i := 1; i < len(comps); i++ {
		if comps[i].FinishMs <= comps[i-1].FinishMs {
			t.Fatalf("finish times not increasing")
		}
	}
}

func TestServeBatchValidatesUpfront(t *testing.T) {
	d := New(SmallTestDisk())
	bad := []Request{{LBN: 0, Count: 1}, {LBN: -4, Count: 1}}
	if _, err := d.ServeBatch(bad, SchedSPTF); err == nil {
		t.Fatal("invalid request accepted")
	}
	if d.Stats().Requests != 0 {
		t.Fatal("batch partially executed despite validation error")
	}
}

// TestSPTFFindsSemiSequentialPath is the paper's §5.2 scenario: the
// storage manager issues a beam query's blocks unsorted; the disk's
// internal scheduler must discover the efficient semi-sequential order.
func TestSPTFFindsSemiSequentialPath(t *testing.T) {
	g := AtlasTenKIII()
	// Build a semi-sequential chain of 64 blocks.
	chain := make([]Request, 0, 64)
	cur := int64(20000)
	chain = append(chain, Request{LBN: cur, Count: 1})
	for i := 0; i < 63; i++ {
		a, err := g.AdjacentBlock(cur, 1)
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, Request{LBN: a, Count: 1})
		cur = a
	}
	shuffled := make([]Request, len(chain))
	copy(shuffled, chain)
	rand.New(rand.NewSource(17)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	dS := New(g)
	compsS, err := dS.ServeBatch(shuffled, SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	sptfMs := dS.NowMs()

	dF := New(g)
	if _, err := dF.ServeBatch(shuffled, SchedFIFO); err != nil {
		t.Fatal(err)
	}
	fifoMs := dF.NowMs()

	if sptfMs >= fifoMs/2 {
		t.Errorf("SPTF %.1f ms vs FIFO %.1f ms on shuffled semi-seq chain: want >2x win", sptfMs, fifoMs)
	}
	// SPTF should reconstruct (nearly) the chain order: per-request cost
	// about one semi-seq step after the first.
	perHop := (sptfMs - compsS[0].FinishMs) / float64(len(chain)-1)
	if model := g.SemiSeqStepMs(20000); perHop > model*1.25 {
		t.Errorf("SPTF per-hop %.3f ms, semi-seq model %.3f: path not found", perHop, model)
	}
}

func TestSPTFNotWorseThanFIFOOnRandom(t *testing.T) {
	g := CheetahThirtySixES()
	rng := rand.New(rand.NewSource(23))
	reqs := make([]Request, 120)
	for i := range reqs {
		reqs[i] = Request{LBN: rng.Int63n(g.TotalBlocks()), Count: 1}
	}
	dS, dF := New(g), New(g)
	if _, err := dS.ServeBatch(reqs, SchedSPTF); err != nil {
		t.Fatal(err)
	}
	if _, err := dF.ServeBatch(reqs, SchedFIFO); err != nil {
		t.Fatal(err)
	}
	if dS.NowMs() > dF.NowMs()*1.02 {
		t.Errorf("SPTF %.1f ms worse than FIFO %.1f ms on random batch", dS.NowMs(), dF.NowMs())
	}
}

func TestLargeBatchWindowedSPTF(t *testing.T) {
	// Oversized SPTF batches are served in windows: every request is
	// still serviced exactly once, and requests never migrate across
	// window boundaries.
	d := New(SmallTestDisk())
	n := maxSPTFBatch + 10
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{LBN: int64(i % 1000), Count: 1}
	}
	comps, err := d.ServeBatch(reqs, SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != n {
		t.Fatalf("served %d of %d requests", len(comps), n)
	}
	// The tail window (last 10 requests) must be the original tail set.
	want := map[Request]int{}
	for _, r := range reqs[maxSPTFBatch:] {
		want[r]++
	}
	for _, c := range comps[maxSPTFBatch:] {
		want[c.Req]--
	}
	for r, cnt := range want {
		if cnt != 0 {
			t.Fatalf("request %v leaked across the window boundary", r)
		}
	}
}

// serveSPTFGreedy is the O(n²) reference scheduler: before every pick it
// re-estimates the positioning cost of every pending request and services
// the argmin. The production scheduler must match its schedules.
func serveSPTFGreedy(d *Disk, reqs []Request) ([]Completion, error) {
	pending := make([]Request, len(reqs))
	copy(pending, reqs)
	out := make([]Completion, 0, len(reqs))
	for len(pending) > 0 {
		best, bestCost := 0, d.positioningEstimateMs(pending[0])
		for i := 1; i < len(pending); i++ {
			if c := d.positioningEstimateMs(pending[i]); c < bestCost {
				best, bestCost = i, c
			}
		}
		r := pending[best]
		pending[best] = pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		cost, err := d.Access(r)
		if err != nil {
			return nil, err
		}
		out = append(out, Completion{Req: r, Cost: cost, FinishMs: d.nowMs})
	}
	return out, nil
}

// TestSPTFMatchesGreedyReference is the scheduler-equivalence property
// test: across geometries, batch shapes, and head states, the bucketed
// O(n log n) SPTF must service exactly the reference's request set with
// total time within a small tolerance (exact ties may break differently).
func TestSPTFMatchesGreedyReference(t *testing.T) {
	// Exact-cost ties (same seek plateau, same discrete sector angle) can
	// break differently between the two implementations and compound, so
	// the tolerance is workload-dependent: tight on the paper's drives,
	// looser on the toy geometry where nearly everything ties.
	geoms := []struct {
		g   *Geometry
		tol float64
	}{
		{SmallTestDisk(), 0.05},
		{AtlasTenKIII(), 0.01},
		{CheetahThirtySixES(), 0.01},
	}
	for gi, gt := range geoms {
		g, tol := gt.g, gt.tol
		for trial := 0; trial < 8; trial++ {
			rng := rand.New(rand.NewSource(int64(gi*100 + trial)))
			n := 1 + rng.Intn(500)
			reqs := make([]Request, n)
			for i := range reqs {
				switch trial % 3 {
				case 0: // uniform random over the drive
					reqs[i] = Request{LBN: rng.Int63n(g.TotalBlocks() - 8), Count: 1 + rng.Intn(8)}
				case 1: // compact band (MultiMap's windows)
					span := int64(20000)
					if span > g.TotalBlocks()/2 {
						span = g.TotalBlocks() / 2
					}
					base := rng.Int63n(g.TotalBlocks() - span)
					reqs[i] = Request{LBN: base + rng.Int63n(span), Count: 1}
				default: // heavy duplication on few tracks
					span := int64(2000)
					if span > g.TotalBlocks() {
						span = g.TotalBlocks()
					}
					reqs[i] = Request{LBN: rng.Int63n(span), Count: 1}
				}
			}
			dNew, dRef := New(g), New(g)
			dNew.RandomizePosition(rand.New(rand.NewSource(int64(trial))))
			dRef.RandomizePosition(rand.New(rand.NewSource(int64(trial))))

			compsNew, err := dNew.serveSPTF(reqs)
			if err != nil {
				t.Fatal(err)
			}
			compsRef, err := serveSPTFGreedy(dRef, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if len(compsNew) != n || len(compsRef) != n {
				t.Fatalf("%s trial %d: served %d/%d of %d", g.Name, trial, len(compsNew), len(compsRef), n)
			}
			seen := map[Request]int{}
			for _, c := range compsNew {
				seen[c.Req]++
			}
			for _, c := range compsRef {
				seen[c.Req]--
			}
			for r, cnt := range seen {
				if cnt != 0 {
					t.Fatalf("%s trial %d: request %v served a different number of times", g.Name, trial, r)
				}
			}
			newMs, refMs := dNew.NowMs(), dRef.NowMs()
			if diff := newMs - refMs; diff > refMs*tol+1e-6 || diff < -refMs*tol-1e-6 {
				t.Errorf("%s trial %d (n=%d): new SPTF %.3f ms vs greedy %.3f ms (%.2f%%)",
					g.Name, trial, n, newMs, refMs, 100*(newMs-refMs)/refMs)
			}
		}
	}
}

// TestSPTFPicksTrueArgmin checks the scheduler's core invariant
// directly: every pick's estimated positioning cost equals the
// brute-force minimum over the requests still pending at that moment.
func TestSPTFPicksTrueArgmin(t *testing.T) {
	g := AtlasTenKIII()
	rng := rand.New(rand.NewSource(99))
	n := 300
	reqs := make([]Request, n)
	for i := range reqs {
		base := rng.Int63n(g.TotalBlocks() - 40000)
		reqs[i] = Request{LBN: base + rng.Int63n(40000), Count: 1 + rng.Intn(4)}
	}
	d := New(g)
	s := newSPTF(d, reqs)
	pending := map[int]bool{}
	for i := range reqs {
		pending[i] = true
	}
	for s.live > 0 {
		e := s.pop()
		got := d.positioningEstimateMs(e.req)
		want := -1.0
		for i := range pending {
			if c := d.positioningEstimateMs(reqs[i]); want < 0 || c < want {
				want = c
			}
		}
		if got > want+1e-9 {
			t.Fatalf("picked cost %.6f ms, brute-force min %.6f ms (pending %d)",
				got, want, len(pending))
		}
		// Drop one pending instance matching the pick.
		for i := range pending {
			if reqs[i] == e.req {
				delete(pending, i)
				break
			}
		}
		if _, err := d.Access(e.req); err != nil {
			t.Fatal(err)
		}
	}
	if len(pending) != 0 {
		t.Fatalf("%d requests never served", len(pending))
	}
}

func TestElevatorCLOOKOrder(t *testing.T) {
	d := New(SmallTestDisk())
	// Park the heads mid-disk so the sweep must wrap.
	if _, err := d.Access(Request{LBN: d.g.TotalBlocks() / 2, Count: 1}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	reqs := make([]Request, 64)
	for i := range reqs {
		reqs[i] = Request{LBN: rng.Int63n(d.g.TotalBlocks()), Count: 1}
	}
	comps, err := d.ServeBatch(reqs, SchedELEVATOR)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != len(reqs) {
		t.Fatalf("served %d of %d", len(comps), len(reqs))
	}
	// Tracks ascend from the head position, wrap exactly once, then
	// ascend again.
	startTrack := d.g.mustDecode(d.g.TotalBlocks() / 2).Track
	wraps := 0
	prev := -1
	for i, c := range comps {
		tr := d.g.mustDecode(c.Req.LBN).Track
		if i == 0 && tr < startTrack {
			t.Fatalf("sweep started below the heads (track %d < %d)", tr, startTrack)
		}
		if prev >= 0 && tr < prev {
			wraps++
		}
		prev = tr
	}
	if wraps > 1 {
		t.Errorf("C-LOOK wrapped %d times", wraps)
	}
}

func TestElevatorNotWorseThanFIFOOnRandom(t *testing.T) {
	g := AtlasTenKIII()
	rng := rand.New(rand.NewSource(31))
	reqs := make([]Request, 150)
	for i := range reqs {
		reqs[i] = Request{LBN: rng.Int63n(g.TotalBlocks()), Count: 1}
	}
	dE, dF := New(g), New(g)
	if _, err := dE.ServeBatch(reqs, SchedELEVATOR); err != nil {
		t.Fatal(err)
	}
	if _, err := dF.ServeBatch(reqs, SchedFIFO); err != nil {
		t.Fatal(err)
	}
	if dE.NowMs() > dF.NowMs() {
		t.Errorf("elevator %.1f ms worse than FIFO %.1f ms on random batch", dE.NowMs(), dF.NowMs())
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SchedPolicy
	}{{"fifo", SchedFIFO}, {"sptf", SchedSPTF}, {"elevator", SchedELEVATOR}, {"clook", SchedELEVATOR}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Error("bad policy name accepted")
	}
}

func TestBatchTimeMs(t *testing.T) {
	d := New(SmallTestDisk())
	comps, err := d.ServeBatch([]Request{{LBN: 10, Count: 1}, {LBN: 500, Count: 2}}, SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	want := comps[0].Cost.TotalMs() + comps[1].Cost.TotalMs()
	if got := BatchTimeMs(comps); got != want {
		t.Fatalf("BatchTimeMs=%v, want %v", got, want)
	}
	if got := d.Stats().BusyMs; got != want {
		t.Fatalf("stats BusyMs=%v, want %v", got, want)
	}
}

func TestSchedPolicyString(t *testing.T) {
	if SchedFIFO.String() != "fifo" || SchedSPTF.String() != "sptf" || SchedELEVATOR.String() != "elevator" {
		t.Error("policy names wrong")
	}
	if SchedPolicy(99).String() != "unknown" {
		t.Error("unknown policy name wrong")
	}
}
