package disk

import (
	"math/rand"
	"testing"
)

func TestServeBatchFIFOOrder(t *testing.T) {
	d := New(SmallTestDisk())
	reqs := []Request{{LBN: 100, Count: 2}, {LBN: 50, Count: 1}, {LBN: 900, Count: 3}}
	comps, err := d.ServeBatch(reqs, SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != len(reqs) {
		t.Fatalf("got %d completions, want %d", len(comps), len(reqs))
	}
	for i := range reqs {
		if comps[i].Req != reqs[i] {
			t.Fatalf("FIFO reordered requests: %v", comps)
		}
	}
	for i := 1; i < len(comps); i++ {
		if comps[i].FinishMs <= comps[i-1].FinishMs {
			t.Fatalf("finish times not increasing")
		}
	}
}

func TestServeBatchValidatesUpfront(t *testing.T) {
	d := New(SmallTestDisk())
	bad := []Request{{LBN: 0, Count: 1}, {LBN: -4, Count: 1}}
	if _, err := d.ServeBatch(bad, SchedSPTF); err == nil {
		t.Fatal("invalid request accepted")
	}
	if d.Stats().Requests != 0 {
		t.Fatal("batch partially executed despite validation error")
	}
}

// TestSPTFFindsSemiSequentialPath is the paper's §5.2 scenario: the
// storage manager issues a beam query's blocks unsorted; the disk's
// internal scheduler must discover the efficient semi-sequential order.
func TestSPTFFindsSemiSequentialPath(t *testing.T) {
	g := AtlasTenKIII()
	// Build a semi-sequential chain of 64 blocks.
	chain := make([]Request, 0, 64)
	cur := int64(20000)
	chain = append(chain, Request{LBN: cur, Count: 1})
	for i := 0; i < 63; i++ {
		a, err := g.AdjacentBlock(cur, 1)
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, Request{LBN: a, Count: 1})
		cur = a
	}
	shuffled := make([]Request, len(chain))
	copy(shuffled, chain)
	rand.New(rand.NewSource(17)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	dS := New(g)
	compsS, err := dS.ServeBatch(shuffled, SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	sptfMs := dS.NowMs()

	dF := New(g)
	if _, err := dF.ServeBatch(shuffled, SchedFIFO); err != nil {
		t.Fatal(err)
	}
	fifoMs := dF.NowMs()

	if sptfMs >= fifoMs/2 {
		t.Errorf("SPTF %.1f ms vs FIFO %.1f ms on shuffled semi-seq chain: want >2x win", sptfMs, fifoMs)
	}
	// SPTF should reconstruct (nearly) the chain order: per-request cost
	// about one semi-seq step after the first.
	perHop := (sptfMs - compsS[0].FinishMs) / float64(len(chain)-1)
	if model := g.SemiSeqStepMs(20000); perHop > model*1.25 {
		t.Errorf("SPTF per-hop %.3f ms, semi-seq model %.3f: path not found", perHop, model)
	}
}

func TestSPTFNotWorseThanFIFOOnRandom(t *testing.T) {
	g := CheetahThirtySixES()
	rng := rand.New(rand.NewSource(23))
	reqs := make([]Request, 120)
	for i := range reqs {
		reqs[i] = Request{LBN: rng.Int63n(g.TotalBlocks()), Count: 1}
	}
	dS, dF := New(g), New(g)
	if _, err := dS.ServeBatch(reqs, SchedSPTF); err != nil {
		t.Fatal(err)
	}
	if _, err := dF.ServeBatch(reqs, SchedFIFO); err != nil {
		t.Fatal(err)
	}
	if dS.NowMs() > dF.NowMs()*1.02 {
		t.Errorf("SPTF %.1f ms worse than FIFO %.1f ms on random batch", dS.NowMs(), dF.NowMs())
	}
}

func TestLargeBatchWindowedSPTF(t *testing.T) {
	// Oversized SPTF batches are served in windows: every request is
	// still serviced exactly once, and requests never migrate across
	// window boundaries.
	d := New(SmallTestDisk())
	n := maxSPTFBatch + 10
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{LBN: int64(i % 1000), Count: 1}
	}
	comps, err := d.ServeBatch(reqs, SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != n {
		t.Fatalf("served %d of %d requests", len(comps), n)
	}
	// The tail window (last 10 requests) must be the original tail set.
	want := map[Request]int{}
	for _, r := range reqs[maxSPTFBatch:] {
		want[r]++
	}
	for _, c := range comps[maxSPTFBatch:] {
		want[c.Req]--
	}
	for r, cnt := range want {
		if cnt != 0 {
			t.Fatalf("request %v leaked across the window boundary", r)
		}
	}
}

func TestBatchTimeMs(t *testing.T) {
	d := New(SmallTestDisk())
	comps, err := d.ServeBatch([]Request{{LBN: 10, Count: 1}, {LBN: 500, Count: 2}}, SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	want := comps[0].Cost.TotalMs() + comps[1].Cost.TotalMs()
	if got := BatchTimeMs(comps); got != want {
		t.Fatalf("BatchTimeMs=%v, want %v", got, want)
	}
	if got := d.Stats().BusyMs; got != want {
		t.Fatalf("stats BusyMs=%v, want %v", got, want)
	}
}

func TestSchedPolicyString(t *testing.T) {
	if SchedFIFO.String() != "fifo" || SchedSPTF.String() != "sptf" {
		t.Error("policy names wrong")
	}
	if SchedPolicy(99).String() != "unknown" {
		t.Error("unknown policy name wrong")
	}
}
