package disk

import (
	"math"
	"slices"
	"sort"
)

// This file implements the positioning-aware SPTF scheduler. The naive
// formulation re-estimates the positioning cost of every pending
// request before every pick — an O(n²) scan per window. This scheduler
// exploits two structural facts instead:
//
//  1. Seek time is a nondecreasing function of cylinder distance, so
//     candidate cylinders can be examined outward from the heads in
//     nondecreasing seek order and the search cut off as soon as even a
//     zero-rotation candidate on the next band cannot beat the best
//     cost found so far.
//  2. On one track every candidate shares the same seek cost, so the
//     minimum-rotational-wait request is the cyclic successor of the
//     head's arrival angle — a binary search in an angle-sorted bucket.
//
// Requests are decoded once on admission and bucketed by track within
// cylinder bands; each pick is a bounded best-first search over the
// nearest bands. Service order matches the greedy reference (the true
// positioning-cost argmin) up to floating-point ties.

// sptfEntry is one pending request with its precomputed physical
// coordinates; the scheduler never re-decodes an LBN after admission.
type sptfEntry struct {
	req   Request
	track int
	cyl   int
	angle float64 // angle at which the request's first sector passes the head
	dead  bool
}

// sptfTrack holds one track's pending entries in ascending angle order.
// Serviced entries are tombstoned and compacted once they outnumber the
// live ones, keeping successor scans amortized O(1).
type sptfTrack struct {
	entries []*sptfEntry
	live    int
	dead    int
}

func (b *sptfTrack) compact() {
	kept := b.entries[:0]
	for _, e := range b.entries {
		if !e.dead {
			kept = append(kept, e)
		}
	}
	b.entries = kept
	b.dead = 0
}

// minWait returns the live entry with the least rotational wait for a
// head arriving at arriveMs, and that wait. The candidate is the cyclic
// successor of the arrival angle; the predecessor is also probed to
// honour rotateWaitMs's epsilon for exact continuations.
func (b *sptfTrack) minWait(g *Geometry, arriveMs float64) (*sptfEntry, float64) {
	es := b.entries
	target := g.angleAt(arriveMs)
	idx := sort.Search(len(es), func(i int) bool { return es[i].angle >= target })

	var succ, pred *sptfEntry
	for k, i := 0, idx; k < len(es); k, i = k+1, i+1 {
		if i == len(es) {
			i = 0
		}
		if !es[i].dead {
			succ = es[i]
			break
		}
	}
	for k, i := 0, idx-1; k < len(es); k, i = k+1, i-1 {
		if i < 0 {
			i = len(es) - 1
		}
		if !es[i].dead {
			pred = es[i]
			break
		}
	}
	if succ == nil {
		return nil, 0
	}
	e, w := succ, g.rotateWaitMs(arriveMs, succ.angle)
	if pred != nil && pred != succ {
		if pw := g.rotateWaitMs(arriveMs, pred.angle); pw < w {
			e, w = pred, pw
		}
	}
	return e, w
}

// sptfSched is the pending-request index for one scheduling window.
type sptfSched struct {
	d       *Disk
	byTrack map[int]*sptfTrack
	byLBN   map[int64][]*sptfEntry // continuation candidates, insertion order

	// Non-empty cylinder bands, sorted. left/right stitch over emptied
	// bands so the outward walk skips them.
	cyls    []int
	liveCyl []int
	left    []int
	right   []int

	live int
}

func newSPTF(d *Disk, reqs []Request) *sptfSched {
	s := &sptfSched{
		d:       d,
		byTrack: make(map[int]*sptfTrack),
		byLBN:   make(map[int64][]*sptfEntry, len(reqs)),
		live:    len(reqs),
	}
	entries := make([]sptfEntry, len(reqs))
	cylSet := make(map[int]int) // cylinder -> live count
	for i, r := range reqs {
		p := d.g.mustDecode(r.LBN)
		z := &d.g.Zones[p.Zone]
		e := &entries[i]
		*e = sptfEntry{
			req:   r,
			track: p.Track,
			cyl:   p.Cyl,
			angle: d.g.angleOfSectorIn(z, p.Track, p.Sector),
		}
		s.byLBN[r.LBN] = append(s.byLBN[r.LBN], e)
		b := s.byTrack[p.Track]
		if b == nil {
			b = &sptfTrack{}
			s.byTrack[p.Track] = b
		}
		b.entries = append(b.entries, e)
		b.live++
		cylSet[p.Cyl]++
	}
	for _, b := range s.byTrack {
		slices.SortFunc(b.entries, func(a, c *sptfEntry) int {
			switch {
			case a.angle != c.angle:
				if a.angle < c.angle {
					return -1
				}
				return 1
			case a.req.LBN != c.req.LBN:
				if a.req.LBN < c.req.LBN {
					return -1
				}
				return 1
			default:
				return a.req.Count - c.req.Count
			}
		})
	}
	s.cyls = make([]int, 0, len(cylSet))
	for c := range cylSet {
		s.cyls = append(s.cyls, c)
	}
	slices.Sort(s.cyls)
	s.liveCyl = make([]int, len(s.cyls))
	s.left = make([]int, len(s.cyls))
	s.right = make([]int, len(s.cyls))
	for i, c := range s.cyls {
		s.liveCyl[i] = cylSet[c]
		s.left[i] = i - 1
		s.right[i] = i + 1
	}
	return s
}

func (s *sptfSched) liveLeftFrom(i int) int {
	for i >= 0 && s.liveCyl[i] == 0 {
		i = s.left[i]
	}
	return i
}

func (s *sptfSched) liveRightFrom(i int) int {
	for i < len(s.cyls) && s.liveCyl[i] == 0 {
		i = s.right[i]
	}
	return i
}

// pop removes and returns the pending request with the least estimated
// positioning cost from the drive's current head state.
func (s *sptfSched) pop() *sptfEntry {
	d, g := s.d, s.d.g
	var best *sptfEntry
	bestCost := math.Inf(1)

	// Prefetch-continuation fast path: the request beginning exactly
	// where the last transfer ended pays no command overhead.
	for _, e := range s.byLBN[d.lastEnd] {
		if !e.dead {
			best, bestCost = e, d.positioningEstimateMs(e.req)
			break
		}
	}

	curCyl := g.cylOfTrack(d.curTrack)
	pos := sort.SearchInts(s.cyls, curCyl)
	li := s.liveLeftFrom(pos - 1)
	ri := s.liveRightFrom(pos)
	if ri < len(s.cyls) && s.cyls[ri] == curCyl {
		// Examine the current band first: it holds the only zero-seek
		// candidates.
		s.evalBand(ri, curCyl, &best, &bestCost)
		ri = s.liveRightFrom(s.right[ri])
	}
	for li >= 0 || ri < len(s.cyls) {
		var i int
		if ri >= len(s.cyls) || (li >= 0 && curCyl-s.cyls[li] <= s.cyls[ri]-curCyl) {
			i = li
			li = s.liveLeftFrom(s.left[li])
		} else {
			i = ri
			ri = s.liveRightFrom(s.right[ri])
		}
		dc := s.cyls[i] - curCyl
		if dc < 0 {
			dc = -dc
		}
		// Every remaining band is at least this far, so even a request
		// with zero rotational wait there cannot win: stop searching.
		if g.CommandMs+g.SeekTimeMs(dc) >= bestCost {
			break
		}
		s.evalBand(i, curCyl, &best, &bestCost)
	}
	if best != nil {
		s.remove(best)
	}
	return best
}

// evalBand scores the best candidate on every non-empty track of the
// band at cyls[i] against the current best.
func (s *sptfSched) evalBand(i, curCyl int, best **sptfEntry, bestCost *float64) {
	d, g := s.d, s.d.g
	base := s.cyls[i] * g.Surfaces
	for t := base; t < base+g.Surfaces; t++ {
		b := s.byTrack[t]
		if b == nil || b.live == 0 {
			continue
		}
		seekMs := g.positionTimeMs(d.curTrack, t)
		if g.CommandMs+seekMs >= *bestCost {
			continue
		}
		arrive := d.nowMs + g.CommandMs + seekMs
		if e, w := b.minWait(g, arrive); e != nil {
			if c := g.CommandMs + seekMs + w; c <= *bestCost {
				*best, *bestCost = e, c
			}
		}
	}
}

func (s *sptfSched) remove(e *sptfEntry) {
	e.dead = true
	s.live--
	b := s.byTrack[e.track]
	b.live--
	b.dead++
	if b.live == 0 {
		delete(s.byTrack, e.track)
	} else if b.dead > b.live && b.dead > 16 {
		b.compact()
	}
	ci := sort.SearchInts(s.cyls, e.cyl)
	s.liveCyl[ci]--
	if s.liveCyl[ci] == 0 {
		// Stitch neighbours so the outward walk skips this band.
		if l := s.left[ci]; l >= 0 {
			s.right[l] = s.right[ci]
		}
		if r := s.right[ci]; r < len(s.cyls) {
			s.left[r] = s.left[ci]
		}
	}
}

// serveSPTF services one scheduling window in shortest-positioning-time
// order, advancing the drive clock and heads.
func (d *Disk) serveSPTF(reqs []Request) ([]Completion, error) {
	out := make([]Completion, 0, len(reqs))
	if len(reqs) == 1 {
		cost, err := d.Access(reqs[0])
		if err != nil {
			return nil, err
		}
		return append(out, Completion{Req: reqs[0], Cost: cost, FinishMs: d.nowMs}), nil
	}
	s := newSPTF(d, reqs)
	for s.live > 0 {
		e := s.pop()
		cost, err := d.Access(e.req)
		if err != nil {
			return nil, err
		}
		out = append(out, Completion{Req: e.req, Cost: cost, FinishMs: d.nowMs})
	}
	return out, nil
}

// serveElevator services one window in C-LOOK order: ascending track
// (and angle within a track) starting from the current head position,
// wrapping once to the outermost pending request.
func (d *Disk) serveElevator(reqs []Request) ([]Completion, error) {
	type elevEntry struct {
		req    Request
		track  int
		sector int
	}
	order := make([]elevEntry, len(reqs))
	for i, r := range reqs {
		p := d.g.mustDecode(r.LBN)
		order[i] = elevEntry{req: r, track: p.Track, sector: p.Sector}
	}
	slices.SortFunc(order, func(a, b elevEntry) int {
		switch {
		case a.track != b.track:
			return a.track - b.track
		case a.sector != b.sector:
			return a.sector - b.sector
		default:
			return int(a.req.LBN - b.req.LBN)
		}
	})
	split := sort.Search(len(order), func(i int) bool { return order[i].track >= d.curTrack })
	out := make([]Completion, 0, len(reqs))
	serve := func(es []elevEntry) error {
		for _, e := range es {
			cost, err := d.Access(e.req)
			if err != nil {
				return err
			}
			out = append(out, Completion{Req: e.req, Cost: cost, FinishMs: d.nowMs})
		}
		return nil
	}
	if err := serve(order[split:]); err != nil {
		return nil, err
	}
	if err := serve(order[:split]); err != nil {
		return nil, err
	}
	return out, nil
}
