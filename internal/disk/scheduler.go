package disk

// SchedPolicy selects how a batch of outstanding requests is ordered by
// the drive's internal scheduler.
type SchedPolicy int

const (
	// SchedFIFO services requests in arrival order. The paper's storage
	// manager pre-sorts large batches in ascending LBN order and relies
	// on in-order service.
	SchedFIFO SchedPolicy = iota
	// SchedSPTF services the request with the shortest positioning time
	// (seek + rotational wait) first. This is the "disk's internal
	// scheduler" that fetches MultiMap's unsorted semi-sequential
	// batches along the most efficient path (§5.2).
	SchedSPTF
)

func (p SchedPolicy) String() string {
	switch p {
	case SchedFIFO:
		return "fifo"
	case SchedSPTF:
		return "sptf"
	default:
		return "unknown"
	}
}

// maxSPTFBatch bounds the O(n²) greedy SPTF scan. Real drives hold a
// bounded number of outstanding commands; larger batches are served in
// windows of this size, preserving the issue order across windows —
// which the storage manager arranges to be adjacency-chain order, so
// each window covers a compact band of tracks.
const maxSPTFBatch = 4096

// ServeBatch services every request in reqs according to the policy and
// returns per-request completions in service order. The drive clock and
// head position advance across the whole batch.
func (d *Disk) ServeBatch(reqs []Request, policy SchedPolicy) ([]Completion, error) {
	for _, r := range reqs {
		if err := r.validate(d.g); err != nil {
			return nil, err
		}
	}
	if policy == SchedSPTF {
		out := make([]Completion, 0, len(reqs))
		for start := 0; start < len(reqs); start += maxSPTFBatch {
			end := start + maxSPTFBatch
			if end > len(reqs) {
				end = len(reqs)
			}
			comps, err := d.serveSPTF(reqs[start:end])
			if err != nil {
				return nil, err
			}
			out = append(out, comps...)
		}
		return out, nil
	}
	out := make([]Completion, 0, len(reqs))
	for _, r := range reqs {
		cost, err := d.Access(r)
		if err != nil {
			return nil, err
		}
		out = append(out, Completion{Req: r, Cost: cost, FinishMs: d.nowMs})
	}
	return out, nil
}

// serveSPTF greedily picks the pending request with the least estimated
// positioning cost from the current head state.
func (d *Disk) serveSPTF(reqs []Request) ([]Completion, error) {
	pending := make([]Request, len(reqs))
	copy(pending, reqs)
	out := make([]Completion, 0, len(reqs))
	for len(pending) > 0 {
		best, bestCost := 0, d.positioningEstimateMs(pending[0])
		for i := 1; i < len(pending); i++ {
			if c := d.positioningEstimateMs(pending[i]); c < bestCost {
				best, bestCost = i, c
			}
		}
		r := pending[best]
		pending[best] = pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		cost, err := d.Access(r)
		if err != nil {
			return nil, err
		}
		out = append(out, Completion{Req: r, Cost: cost, FinishMs: d.nowMs})
	}
	return out, nil
}

// BatchTimeMs sums the service time of a set of completions.
func BatchTimeMs(comps []Completion) float64 {
	var t float64
	for _, c := range comps {
		t += c.Cost.TotalMs()
	}
	return t
}
