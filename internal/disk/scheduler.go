package disk

import "fmt"

// SchedPolicy selects how a batch of outstanding requests is ordered by
// the drive's internal scheduler.
type SchedPolicy int

const (
	// SchedFIFO services requests in arrival order. The paper's storage
	// manager pre-sorts large batches in ascending LBN order and relies
	// on in-order service.
	SchedFIFO SchedPolicy = iota
	// SchedSPTF services the request with the shortest positioning time
	// (seek + rotational wait) first. This is the "disk's internal
	// scheduler" that fetches MultiMap's unsorted semi-sequential
	// batches along the most efficient path (§5.2).
	SchedSPTF
	// SchedELEVATOR services requests in C-LOOK order: one ascending
	// track sweep from the current head position, then a wrap to the
	// outermost pending request. A seek-only scheduler for comparison
	// runs against the positioning-aware SPTF.
	SchedELEVATOR
)

func (p SchedPolicy) String() string {
	switch p {
	case SchedFIFO:
		return "fifo"
	case SchedSPTF:
		return "sptf"
	case SchedELEVATOR:
		return "elevator"
	default:
		return "unknown"
	}
}

// ParsePolicy converts a CLI-friendly name to a scheduling policy.
func ParsePolicy(s string) (SchedPolicy, error) {
	switch s {
	case "fifo":
		return SchedFIFO, nil
	case "sptf":
		return SchedSPTF, nil
	case "elevator", "clook", "c-look":
		return SchedELEVATOR, nil
	default:
		return 0, fmt.Errorf("disk: unknown scheduling policy %q", s)
	}
}

// maxSPTFBatch bounds one scheduling window. Real drives hold a bounded
// number of outstanding commands; larger batches are served in windows
// of this size, preserving the issue order across windows — which the
// storage manager arranges to be adjacency-chain order, so each window
// covers a compact band of tracks.
const maxSPTFBatch = 4096

// ServeBatch services every request in reqs according to the policy and
// returns per-request completions in service order. The drive clock and
// head position advance across the whole batch.
func (d *Disk) ServeBatch(reqs []Request, policy SchedPolicy) ([]Completion, error) {
	for _, r := range reqs {
		if err := r.validate(d.g); err != nil {
			return nil, err
		}
	}
	switch policy {
	case SchedSPTF:
		return d.serveWindowed(reqs, d.serveSPTF)
	case SchedELEVATOR:
		return d.serveWindowed(reqs, d.serveElevator)
	default:
		out := make([]Completion, 0, len(reqs))
		for _, r := range reqs {
			cost, err := d.Access(r)
			if err != nil {
				return nil, err
			}
			out = append(out, Completion{Req: r, Cost: cost, FinishMs: d.nowMs})
		}
		return out, nil
	}
}

// serveWindowed applies a reordering scheduler window by window.
func (d *Disk) serveWindowed(reqs []Request, serve func([]Request) ([]Completion, error)) ([]Completion, error) {
	out := make([]Completion, 0, len(reqs))
	for start := 0; start < len(reqs); start += maxSPTFBatch {
		end := start + maxSPTFBatch
		if end > len(reqs) {
			end = len(reqs)
		}
		comps, err := serve(reqs[start:end])
		if err != nil {
			return nil, err
		}
		out = append(out, comps...)
	}
	return out, nil
}

// BatchTimeMs sums the service time of a set of completions.
func BatchTimeMs(comps []Completion) float64 {
	var t float64
	for _, c := range comps {
		t += c.Cost.TotalMs()
	}
	return t
}
