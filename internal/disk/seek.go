package disk

import "math"

// seekCurve is the three-regime seek-time model of the paper's Fig. 1(a):
//
//	d == 0                  -> 0
//	1 <= d <= settleCyls    -> settleMs (plateau: settle-dominated)
//	settleCyls < d <= knee  -> settleMs + alpha*sqrt(d-settleCyls)
//	d > knee                -> linear, continuous at the knee
//
// The sqrt regime models the acceleration-limited portion of the arm
// motion, the linear regime the coast-limited portion. Coefficients are
// fitted so that seek(cyls/3) == avgMs and seek(cyls-1) == maxMs, the
// usual spec-sheet interpretation.
type seekCurve struct {
	settleMs   float64
	settleCyls int
	knee       int     // cylinder distance where sqrt hands over to linear
	alpha      float64 // sqrt coefficient
	beta       float64 // linear slope
	kneeMs     float64 // seek time at the knee (continuity)
}

// fitSeekCurve computes curve coefficients from the headline numbers.
func fitSeekCurve(settleMs float64, settleCyls int, avgMs, maxMs float64, cyls int) seekCurve {
	c := seekCurve{settleMs: settleMs, settleCyls: settleCyls}
	// Knee at one third of the stroke: by construction the average seek
	// distance of uniformly random request pairs is cyls/3, so placing
	// the knee there and pinning the curve to avgMs at the knee makes
	// the fitted curve hit the spec-sheet average where it matters.
	c.knee = cyls / 3
	if c.knee <= settleCyls {
		c.knee = settleCyls + 1
	}
	c.alpha = (avgMs - settleMs) / math.Sqrt(float64(c.knee-settleCyls))
	c.kneeMs = avgMs
	span := float64(cyls - 1 - c.knee)
	if span < 1 {
		span = 1
	}
	c.beta = (maxMs - c.kneeMs) / span
	if c.beta < 0 {
		c.beta = 0
	}
	return c
}

// timeMs returns the seek time for a cylinder distance d >= 0.
func (c *seekCurve) timeMs(d int) float64 {
	switch {
	case d <= 0:
		return 0
	case d <= c.settleCyls:
		return c.settleMs
	case d <= c.knee:
		return c.settleMs + c.alpha*math.Sqrt(float64(d-c.settleCyls))
	default:
		return c.kneeMs + c.beta*float64(d-c.knee)
	}
}

// SeekTimeMs returns the modelled time to move the heads across d
// cylinders. Distances within the settle range all cost the settle time,
// which is what makes adjacent-block chains efficient.
func (g *Geometry) SeekTimeMs(d int) float64 {
	if d < 0 {
		d = -d
	}
	return g.seek.timeMs(d)
}
