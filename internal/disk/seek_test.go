package disk

import (
	"math"
	"testing"
)

func TestSeekCurveShape(t *testing.T) {
	for _, g := range testGeometries() {
		if got := g.SeekTimeMs(0); got != 0 {
			t.Errorf("%s: seek(0)=%v, want 0", g.Name, got)
		}
		// Plateau: every distance within the settle range costs settle.
		for d := 1; d <= g.SettleCyls; d++ {
			if got := g.SeekTimeMs(d); got != g.SettleMs {
				t.Errorf("%s: seek(%d)=%v, want settle %v", g.Name, d, got, g.SettleMs)
				break
			}
		}
		// Monotone non-decreasing beyond the plateau.
		prev := 0.0
		for d := 0; d < g.Cylinders(); d += 97 {
			cur := g.SeekTimeMs(d)
			if cur+1e-12 < prev {
				t.Errorf("%s: seek not monotone at d=%d (%v < %v)", g.Name, d, cur, prev)
				break
			}
			prev = cur
		}
		// Endpoints: one-third stroke hits the spec average; full stroke
		// hits the spec maximum.
		third := g.SeekTimeMs(g.Cylinders() / 3)
		if math.Abs(third-g.SeekAvgMs) > 0.25 {
			t.Errorf("%s: seek(cyls/3)=%.2f, want ~%.2f", g.Name, third, g.SeekAvgMs)
		}
		full := g.SeekTimeMs(g.Cylinders() - 1)
		if math.Abs(full-g.SeekMaxMs) > 0.25 {
			t.Errorf("%s: full-stroke seek %.2f, want ~%.2f", g.Name, full, g.SeekMaxMs)
		}
	}
}

func TestSeekSymmetricInSign(t *testing.T) {
	g := AtlasTenKIII()
	for _, d := range []int{1, 10, 100, 5000} {
		if g.SeekTimeMs(d) != g.SeekTimeMs(-d) {
			t.Errorf("seek(%d) != seek(-%d)", d, d)
		}
	}
}

func TestSeekContinuityAtKnee(t *testing.T) {
	// The sqrt and linear regimes must join without a jump; a
	// discontinuity would put a kink in the fig1a series.
	for _, g := range testGeometries() {
		k := g.seek.knee
		below := g.SeekTimeMs(k)
		above := g.SeekTimeMs(k + 1)
		if above < below {
			t.Errorf("%s: seek decreases across knee (%v -> %v)", g.Name, below, above)
		}
		if above-below > 0.5 {
			t.Errorf("%s: seek jumps %.3f ms across knee", g.Name, above-below)
		}
	}
}

func TestPositionTime(t *testing.T) {
	g := AtlasTenKIII()
	if got := g.positionTimeMs(100, 100); got != 0 {
		t.Errorf("same track: %v, want 0", got)
	}
	// Same cylinder, different surface: head switch.
	if got := g.positionTimeMs(100, 101); got != g.HeadSwitchMs {
		t.Errorf("head switch: %v, want %v", got, g.HeadSwitchMs)
	}
	// Any jump within the settle cylinder range: settle time. This is
	// the property that makes all D adjacent blocks equally cheap.
	for k := 1; k <= g.AdjSpan(); k++ {
		from := 1000
		got := g.positionTimeMs(from, from+k)
		if got != g.SettleMs && got != g.HeadSwitchMs {
			t.Fatalf("jump of %d tracks costs %v, want settle %v or head switch %v",
				k, got, g.SettleMs, g.HeadSwitchMs)
		}
	}
}
