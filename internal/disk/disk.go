package disk

import (
	"fmt"
	"math/rand"
)

// Request is a contiguous read of Count blocks starting at LBN.
type Request struct {
	LBN   int64
	Count int
}

// Validate reports whether the request lies within the drive.
func (r Request) validate(g *Geometry) error {
	if r.Count <= 0 {
		return fmt.Errorf("disk: request count must be positive, got %d", r.Count)
	}
	if r.LBN < 0 || r.LBN+int64(r.Count) > g.totalBlocks {
		return fmt.Errorf("%w: request [%d,%d) not in [0,%d)",
			errLBNRange, r.LBN, r.LBN+int64(r.Count), g.totalBlocks)
	}
	return nil
}

// AccessCost is the breakdown of one request's service time.
type AccessCost struct {
	CommandMs  float64 // command processing overhead (0 for sequential continuations)
	SeekMs     float64 // arm movement and head switches
	RotateMs   float64 // rotational latency (all waits for the platter)
	TransferMs float64 // media transfer
}

// TotalMs returns the request's total service time.
func (c AccessCost) TotalMs() float64 {
	return c.CommandMs + c.SeekMs + c.RotateMs + c.TransferMs
}

// Completion records the service of one request within a batch.
type Completion struct {
	Req      Request
	Cost     AccessCost
	FinishMs float64 // absolute time at which the request completed
}

// Stats accumulates service-time totals across requests.
type Stats struct {
	Requests   int64
	Blocks     int64
	CommandMs  float64
	SeekMs     float64
	RotateMs   float64
	TransferMs float64
	BusyMs     float64
}

func (s *Stats) add(r Request, c AccessCost) {
	s.Requests++
	s.Blocks += int64(r.Count)
	s.CommandMs += c.CommandMs
	s.SeekMs += c.SeekMs
	s.RotateMs += c.RotateMs
	s.TransferMs += c.TransferMs
	s.BusyMs += c.TotalMs()
}

// Disk is a simulated drive: a geometry plus mutable head state. A Disk
// is not safe for concurrent use; wrap it (as internal/lvm does) if
// multiple goroutines issue requests.
type Disk struct {
	g        *Geometry
	nowMs    float64
	curTrack int
	lastEnd  int64 // LBN right after the last transferred block (-1 = none)
	stats    Stats
}

// New returns a disk with the given geometry, heads at track 0, time 0.
func New(g *Geometry) *Disk {
	return &Disk{g: g, lastEnd: -1}
}

// Geometry returns the drive's geometry.
func (d *Disk) Geometry() *Geometry { return d.g }

// NowMs returns the drive's current clock.
func (d *Disk) NowMs() float64 { return d.nowMs }

// Stats returns the accumulated service statistics.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats clears the accumulated statistics without moving the heads.
func (d *Disk) ResetStats() { d.stats = Stats{} }

// Reset returns the heads to track 0 and the clock to 0, clearing stats.
func (d *Disk) Reset() {
	d.nowMs = 0
	d.curTrack = 0
	d.lastEnd = -1
	d.stats = Stats{}
}

// RandomizePosition moves the heads to a uniformly random track and the
// spindle to a uniformly random phase, modelling an unknown prior state
// between experiment runs.
func (d *Disk) RandomizePosition(rng *rand.Rand) {
	d.curTrack = rng.Intn(d.g.TotalTracks())
	d.nowMs += rng.Float64() * d.g.rotationMs
	d.lastEnd = -1
}

// cylOfTrack returns the cylinder of a global track index.
func (g *Geometry) cylOfTrack(track int) int { return track / g.Surfaces }

// positionTimeMs returns the arm/head cost of moving from track `from`
// to track `to`: zero on the same track, a head switch within a
// cylinder, and the seek curve otherwise. Settle time (which already
// includes the head switch) covers all seeks of at most SettleCyls
// cylinders — the mechanism behind adjacent blocks.
func (g *Geometry) positionTimeMs(from, to int) float64 {
	if from == to {
		return 0
	}
	dc := g.cylOfTrack(to) - g.cylOfTrack(from)
	if dc == 0 {
		return g.HeadSwitchMs
	}
	return g.SeekTimeMs(dc)
}

// Access services one request starting from the current head state,
// advancing the clock. Transfers that span track or zone boundaries pay
// the head switch / seek and any skew-induced rotational wait at each
// boundary, exactly as a real sequential transfer does.
func (d *Disk) Access(r Request) (AccessCost, error) {
	if err := r.validate(d.g); err != nil {
		return AccessCost{}, err
	}
	var cost AccessCost
	// Command processing: free only when the request continues exactly
	// where the previous transfer ended (prefetch-buffer hit).
	if r.LBN != d.lastEnd {
		cost.CommandMs = d.g.CommandMs
		d.nowMs += cost.CommandMs
	}
	remaining := r.Count
	cur := r.LBN
	for remaining > 0 {
		p := d.g.mustDecode(cur)
		z := &d.g.Zones[p.Zone]
		run := z.SectorsPerTrack - p.Sector
		if run > remaining {
			run = remaining
		}

		seekMs := d.g.positionTimeMs(d.curTrack, p.Track)
		arrive := d.nowMs + seekMs
		rotMs := d.g.rotateWaitMs(arrive, d.g.angleOfSectorIn(z, p.Track, p.Sector))
		xferMs := float64(run) * d.g.rotationMs / float64(z.SectorsPerTrack)

		cost.SeekMs += seekMs
		cost.RotateMs += rotMs
		cost.TransferMs += xferMs
		d.nowMs = arrive + rotMs + xferMs
		d.curTrack = p.Track

		remaining -= run
		cur += int64(run)
	}
	d.lastEnd = cur
	d.stats.add(r, cost)
	return cost, nil
}

// positioningEstimateMs estimates the positioning (seek + rotational
// wait) cost of starting request r now, without moving the heads. Used
// by the SPTF scheduler.
func (d *Disk) positioningEstimateMs(r Request) float64 {
	var cmd float64
	if r.LBN != d.lastEnd {
		cmd = d.g.CommandMs
	}
	p := d.g.mustDecode(r.LBN)
	seekMs := d.g.positionTimeMs(d.curTrack, p.Track)
	arrive := d.nowMs + cmd + seekMs
	rotMs := d.g.rotateWaitMs(arrive, d.g.angleOfSectorIn(&d.g.Zones[p.Zone], p.Track, p.Sector))
	return cmd + seekMs + rotMs
}
