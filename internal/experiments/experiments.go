// Package experiments regenerates every figure in the paper's
// evaluation (§5): Fig. 1(a) seek profiles, the Fig. 1(b) adjacency
// property, Fig. 6 synthetic 3-D beams and ranges, Fig. 7 earthquake
// beams and ranges, and Fig. 8 OLAP queries Q1-Q5. Each driver returns
// a Table with the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/query"
)

// Config scopes an experiment run.
type Config struct {
	// Disks to evaluate; defaults to the paper's two drives.
	Disks []*disk.Geometry
	// Scale in (0,1] shrinks datasets for fast runs; 1 is paper size.
	Scale float64
	// Runs is the number of repetitions with random parameters
	// (the paper uses 15 for beam queries).
	Runs int
	// Seed makes runs reproducible.
	Seed int64
	// Policy forces the drive-internal scheduling policy for every
	// query ("fifo", "sptf", "elevator"); empty keeps each mapping's
	// preferred policy — the paper's configuration.
	Policy string
	// ChunkCells bounds how many cells the streaming planner expands
	// per dispatch chunk; 0 plans each query as one chunk.
	ChunkCells int64
	// Clients is the number of concurrent query sessions in the
	// service-throughput experiment (default 4).
	Clients int
	// Queries is how many queries each client issues there (default 32).
	Queries int
	// CacheBlocks sizes the shared extent cache for that experiment
	// (0 = cache off).
	CacheBlocks int64
	// WriteFraction in [0,1) is the share of each client's operations
	// that are update bursts (point inserts submitted as service write
	// ops) in the service-throughput experiment. 0 = read-only.
	WriteFraction float64
	// Shards is the maximum shard count for the service-throughput
	// experiment's scaling ladder: the run repeats at 1, 2, 4, ...
	// shards up to this value (0 or 1 = single shard only).
	Shards int
	// BatchWindow is the time-based admission window of each shard
	// service in the service-throughput experiment (0 = admit
	// immediately).
	BatchWindow time.Duration
	// Deadline, when positive, gives the service-throughput
	// experiment's client 0 a context.WithTimeout deadline per query —
	// the QoS session. Queries it cannot finish in time are dropped by
	// the services (counted, not fatal) and the table reports the
	// session's observed latency separately.
	Deadline time.Duration
	// DeadlineAging, when positive, turns on deadline/QoS-aware
	// admission on every shard service (engine
	// ServiceOptions.DeadlineAging): urgent requests are served ahead
	// of — and never coalesced with — bulk work. Compare a -deadline
	// run with and without it to see the QoS policy's effect.
	DeadlineAging time.Duration
	// WriteBack turns on write-back caching with group commit on every
	// shard service: writes are absorbed into per-extent dirty buffers
	// and committed as one SPTF batch per flush trigger. Compare a
	// -writes run with and without it to see the group-commit win.
	WriteBack bool
	// WBWatermark and WBInterval tune the write-back flush triggers
	// (dirty-block watermark and oldest-dirty age); 0 keeps the engine
	// defaults. Ignored unless WriteBack is set.
	WBWatermark int64
	WBInterval  time.Duration
	// FairQuantum, when positive, turns on weighted-fair
	// (deficit-round-robin) admission on every shard service in the
	// service-throughput experiment: each admission pass grants every
	// backlogged QoS class quantum × weight blocks of simulated-cost
	// credit. 0 keeps fair sharing off — admission bit-identical to the
	// pre-QoS behavior.
	FairQuantum int64
	// QoSClasses registers the class weights used with FairQuantum.
	// Empty selects the burst experiment's built-in mix when
	// FairQuantum is positive.
	QoSClasses []engine.QoSClass
	// PipelineDepth, when positive, lets every shard service keep that
	// many dispatched batches in flight on the disks while the loop
	// schedules the next admission pass (engine ServiceOptions.Pipeline).
	// 0 keeps the lockstep schedule-then-wait loop, bit-identical to the
	// pre-pipeline behavior.
	PipelineDepth int
}

// Defaults fills unset fields: both paper drives, full scale, 15 runs.
func (c Config) Defaults() Config {
	if len(c.Disks) == 0 {
		c.Disks = []*disk.Geometry{disk.AtlasTenKIII(), disk.CheetahThirtySixES()}
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Runs == 0 {
		c.Runs = 15
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) validate() error {
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("experiments: scale %v outside (0,1]", c.Scale)
	}
	if c.Runs < 1 {
		return fmt.Errorf("experiments: runs must be positive")
	}
	if c.Clients < 0 || c.Queries < 0 || c.CacheBlocks < 0 {
		return fmt.Errorf("experiments: clients, queries, and cache blocks must be non-negative")
	}
	if c.WriteFraction < 0 || c.WriteFraction >= 1 {
		return fmt.Errorf("experiments: write fraction %v outside [0,1)", c.WriteFraction)
	}
	if c.Shards < 0 {
		return fmt.Errorf("experiments: shard count must be non-negative")
	}
	if c.BatchWindow < 0 {
		return fmt.Errorf("experiments: batch window must be non-negative")
	}
	if c.Deadline < 0 || c.DeadlineAging < 0 {
		return fmt.Errorf("experiments: deadline and deadline aging must be non-negative")
	}
	if c.WBWatermark < 0 || c.WBInterval < 0 {
		return fmt.Errorf("experiments: write-back watermark and interval must be non-negative")
	}
	if c.FairQuantum < 0 {
		return fmt.Errorf("experiments: fair-share quantum must be non-negative")
	}
	if c.PipelineDepth < 0 {
		return fmt.Errorf("experiments: pipeline depth must be non-negative")
	}
	if _, err := c.execOptions(); err != nil {
		return err
	}
	return nil
}

// execOptions translates the engine knobs for the query layer.
func (c Config) execOptions() (query.ExecOptions, error) {
	return query.ExecOptionsFor(c.Policy, c.ChunkCells)
}

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
