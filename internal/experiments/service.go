package experiments

// Service-throughput experiment: the concurrent serving mode beyond the
// paper. N client sessions issue mixed beam/range queries — and, with
// cfg.WriteFraction > 0, §4.6 point inserts submitted as service write
// ops — against one MultiMap store at once; the per-volume service loop
// merges their in-flight chunks into shared SPTF batches, the optional
// extent cache absorbs overlapping reads, and every write invalidates
// the cached extents it dirties. The table reports aggregate throughput
// (queries/sec), cache hit rate, and per-query ms/cell alongside the
// service's own batching and invalidation evidence — run it with rising
// -writes fractions to watch the hit rate fall as writes churn the
// cache.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

// ServeResult holds one throughput run per configured disk, keyed by
// drive name.
type ServeResult map[string]ServeRun

// ServeRun summarizes the service-throughput run on one drive.
type ServeRun struct {
	Clients        int
	Queries        int     // total completed queries (writes included)
	WallSeconds    float64 // host wall-clock time
	QueriesPerSec  float64
	MsPerCell      float64 // aggregate simulated ms per cell
	MeanQueryMs    float64 // mean simulated TotalMs per query
	HitRate        float64 // cache hits / (hits + misses); 0 with cache off
	MaxBatchChunks int     // largest admission batch: queries in flight together
	MergedBatches  int64
	IssuedRequests int64
	WriteOps       int64 // write ops served by the service loop
	BlocksWritten  int64
	Invalidated    int64          // cached blocks dropped by write invalidation
	PerSession     []engine.Stats // lifetime stats of each client session
	Totals         engine.ServiceTotals
}

// ServiceThroughput drives cfg.Clients concurrent sessions per
// configured drive, each issuing cfg.Queries mixed beam/range queries
// over the synthetic 3-D dataset, through one volume service with
// cfg.CacheBlocks of extent cache; a cfg.WriteFraction share of each
// client's operations are update bursts on the hot region. Queries are
// seeded per client, so a run is reproducible in workload (though not
// in interleaving).
func ServiceThroughput(cfg Config) (*Table, ServeResult, error) {
	cfg = cfg.Defaults()
	if cfg.Clients == 0 {
		cfg.Clients = 4
	}
	if cfg.Queries == 0 {
		cfg.Queries = 32
	}
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	dims := synthChunkDims(cfg.Scale)
	grid, err := dataset.NewGrid(dims...)
	if err != nil {
		return nil, nil, err
	}
	res := ServeResult{}
	t := &Table{
		ID: "serve",
		Title: fmt.Sprintf("Concurrent query service, %v cells, cache %d blocks, write fraction %.2f",
			dims, cfg.CacheBlocks, cfg.WriteFraction),
		Header: []string{"disk", "clients", "queries", "q/s", "ms/cell", "ms/query",
			"hit rate", "max batch", "merged", "issued reqs", "writes", "inval blk"},
	}
	for _, g := range cfg.Disks {
		run, err := serveOneDisk(cfg, g, grid, dims)
		if err != nil {
			return nil, nil, err
		}
		res[g.Name] = run
		t.Rows = append(t.Rows, []string{
			g.Name, fmt.Sprint(run.Clients), fmt.Sprint(run.Queries),
			fmt.Sprintf("%.1f", run.QueriesPerSec), f3(run.MsPerCell),
			fmt.Sprintf("%.1f", run.MeanQueryMs), fmt.Sprintf("%.2f", run.HitRate),
			fmt.Sprint(run.MaxBatchChunks), fmt.Sprint(run.MergedBatches),
			fmt.Sprint(run.IssuedRequests), fmt.Sprint(run.BlocksWritten),
			fmt.Sprint(run.Invalidated),
		})
	}
	return t, res, nil
}

// serveOneDisk runs the concurrent workload against one drive.
func serveOneDisk(cfg Config, g *disk.Geometry, grid *dataset.Grid, dims []int) (ServeRun, error) {
	v, err := lvm.New(0, g)
	if err != nil {
		return ServeRun{}, err
	}
	m, err := mapping.New(mapping.MultiMap, v, dims, mapping.Options{DiskIdx: 0})
	if err != nil {
		return ServeRun{}, err
	}
	eo, err := cfg.execOptions()
	if err != nil {
		return ServeRun{}, err
	}
	exec := query.NewExecutorOptions(v, m, eo)

	// The update layer for the write share: overflow pages live past the
	// mapped span, clear of every cell (the same invariant the public
	// UpdatableStore validates).
	var cells *core.CellStore
	if cfg.WriteFraction > 0 {
		_, hi := m.(mapping.Spanned).SpanVLBN()
		overflow := v.TotalBlocks() - hi
		if overflow <= 0 {
			return ServeRun{}, fmt.Errorf("experiments: no room for an overflow extent past VLBN %d", hi)
		}
		if overflow > 1<<16 {
			overflow = 1 << 16
		}
		cells, err = core.NewCellStore(m.CellVLBN, 64, 0.75, 0.25, v.TotalBlocks()-overflow, overflow)
		if err != nil {
			return ServeRun{}, err
		}
	}

	svc := engine.NewService(v, engine.ServiceOptions{CacheBlocks: cfg.CacheBlocks})
	defer svc.Close()

	// MaxInflight 2 keeps each session one chunk ahead of the disks, so
	// with a chunked planner (cfg.ChunkCells) admission batches merge
	// even when the host serializes the client goroutines.
	sessions := make([]*engine.Session, cfg.Clients)
	for i := range sessions {
		sessions[i] = svc.NewSession(engine.SessionOptions{MaxInflight: 2})
	}
	errs := make([]error, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			for q := 0; q < cfg.Queries; q++ {
				var err error
				if cells != nil && rng.Float64() < cfg.WriteFraction {
					err = runInsertBurst(cells, sessions[i], dims, rng)
				} else {
					err = runMixedQuery(exec, sessions[i], grid, dims, rng)
				}
				if err != nil {
					errs[i] = fmt.Errorf("client %d query %d: %w", i, q, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return ServeRun{}, err
		}
	}

	run := ServeRun{
		Clients:     cfg.Clients,
		Queries:     cfg.Clients * cfg.Queries,
		WallSeconds: wall,
		Totals:      svc.Totals(),
	}
	var sum engine.Stats
	for _, s := range sessions {
		st := s.Totals()
		run.PerSession = append(run.PerSession, st)
		sum.Accumulate(st)
	}
	if wall > 0 {
		run.QueriesPerSec = float64(run.Queries) / wall
	}
	run.MsPerCell = sum.MsPerCell()
	if run.Queries > 0 {
		run.MeanQueryMs = sum.TotalMs / float64(run.Queries)
	}
	if lookups := sum.CacheHits + sum.CacheMisses; lookups > 0 {
		run.HitRate = float64(sum.CacheHits) / float64(lookups)
	}
	run.MaxBatchChunks = run.Totals.MaxBatchChunks
	run.MergedBatches = run.Totals.MergedBatches
	run.IssuedRequests = run.Totals.IssuedRequests
	run.WriteOps = run.Totals.WriteOps
	run.BlocksWritten = sum.Writes
	run.Invalidated = run.Totals.InvalidatedBlocks
	return run, nil
}

// runInsertBurst performs one update operation: a burst of point
// inserts into a cell on the hot-region alignment grid (the same
// region the hot range queries keep re-reading), each submitted as a
// service write op so the loop invalidates any cached extents over the
// dirtied blocks before charging the write.
func runInsertBurst(cells *core.CellStore, sess *engine.Session, dims []int, rng *rand.Rand) error {
	cell := make([]int, len(dims))
	for i, d := range dims {
		side := max(1, d/16)
		slots := max(1, d/8/side)
		cell[i] = rng.Intn(slots) * side
	}
	for k := 0; k < 8; k++ {
		reqs, err := cells.Insert(cell)
		if err != nil {
			return err
		}
		if _, err := sess.Write(reqs, disk.SchedSPTF); err != nil {
			return err
		}
	}
	return nil
}

// runMixedQuery issues one query through the client's session: half
// uniform beams, a quarter uniform small range boxes, and a quarter
// hot-region range boxes on a quantized grid — the overlapping share of
// a real workload, which is what the extent cache absorbs.
func runMixedQuery(exec *query.Executor, sess *engine.Session, grid *dataset.Grid, dims []int, rng *rand.Rand) error {
	switch roll := rng.Intn(4); {
	case roll < 2:
		dim := rng.Intn(len(dims))
		fixed, err := grid.RandomBeam(rng, dim)
		if err != nil {
			return err
		}
		_, err = exec.BeamOn(sess, dim, fixed)
		return err
	case roll == 2:
		lo := make([]int, len(dims))
		hi := make([]int, len(dims))
		for i, d := range dims {
			side := 1 + rng.Intn(max(1, d/8))
			lo[i] = rng.Intn(d - side + 1)
			hi[i] = lo[i] + side
		}
		_, err := exec.RangeOn(sess, lo, hi)
		return err
	default:
		// Hot region: boxes of a fixed side on a coarse alignment grid
		// inside the first eighth of every dimension, so concurrent
		// clients keep re-reading (and cache-hitting) the same extents.
		lo := make([]int, len(dims))
		hi := make([]int, len(dims))
		for i, d := range dims {
			side := max(1, d/16)
			slots := max(1, d/8/side)
			lo[i] = rng.Intn(slots) * side
			hi[i] = min(lo[i]+side, d)
		}
		_, err := exec.RangeOn(sess, lo, hi)
		return err
	}
}
