package experiments

// Service-throughput experiment: the concurrent serving mode beyond the
// paper. N client sessions issue mixed beam/range queries — and, with
// cfg.WriteFraction > 0, §4.6 point inserts submitted as service write
// ops — against one MultiMap dataset at once; each per-volume service
// loop merges its in-flight chunks into shared SPTF batches, the
// optional extent cache absorbs overlapping reads, and every write
// invalidates the cached extents it dirties. With cfg.Shards > 1 the
// dataset is split along Dim0 across several shard volumes, each with
// its own service loop, and every client runs a scatter-gather session
// over them — the shard-scaling rows show queries/sec at 1, 2, 4, ...
// shards, the first workload where the simulator's speedup comes from
// true CPU parallelism rather than batching. The table reports
// aggregate throughput (queries/sec), cache hit rate, and per-query
// ms/cell alongside the services' batching and invalidation evidence —
// run it with rising -writes fractions to watch the hit rate fall as
// writes churn the cache.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/shard"
)

// ServeResult holds the throughput runs per configured disk, keyed by
// drive name, one entry per shard count.
type ServeResult map[string][]ServeRun

// ServeRun summarizes one service-throughput run (one drive model, one
// shard count).
type ServeRun struct {
	Shards         int
	Clients        int
	Queries        int     // total completed queries (writes included)
	WallSeconds    float64 // host wall-clock time
	QueriesPerSec  float64
	MsPerCell      float64 // aggregate simulated ms per cell
	MeanQueryMs    float64 // mean simulated TotalMs per query
	HitRate        float64 // cache hits / (hits + misses); 0 with cache off
	MaxBatchChunks int     // largest admission batch on any shard
	MergedBatches  int64
	IssuedRequests int64
	WriteOps       int64 // write ops served by the service loops
	BlocksWritten  int64
	Invalidated    int64                  // cached blocks dropped by write invalidation
	Flushes        int64                  // write-back group commits across the shards
	Coalesced      int64                  // write ops absorbed into already-dirty extents
	Cancelled      int64                  // ops dropped before admission on cancelled contexts
	Expired        int64                  // ops dropped before admission on passed deadlines
	PerSession     []engine.Stats         // lifetime stats of each client session
	PerShard       []engine.ServiceTotals // each shard service's own totals
	// The deadline (QoS) session — client 0 when cfg.Deadline > 0:
	// how many of its queries completed inside the deadline vs.
	// expired, and the mean simulated elapsed ms it observed per
	// completed query (the p-latency the QoS admission improves).
	DLCompleted int
	DLExpired   int
	DLMeanMs    float64
}

// shardCounts returns the scaling ladder 1, 2, 4, ... capped at max,
// always ending on max itself.
func shardCounts(max int) []int {
	if max <= 1 {
		return []int{1}
	}
	var out []int
	for n := 1; n < max; n *= 2 {
		out = append(out, n)
	}
	return append(out, max)
}

// ServiceThroughput drives cfg.Clients concurrent sessions per
// configured drive, each issuing cfg.Queries mixed beam/range queries
// over the synthetic 3-D dataset, through one scatter-gather session
// per client with cfg.CacheBlocks of extent cache per shard; a
// cfg.WriteFraction share of each client's operations are update
// bursts on the hot region. With cfg.Shards > 1 the run repeats at
// 1, 2, 4, ... shards so the scaling is visible side by side. Queries
// are seeded per client, so a run is reproducible in workload (though
// not in interleaving).
func ServiceThroughput(cfg Config) (*Table, ServeResult, error) {
	cfg = cfg.Defaults()
	if cfg.Clients == 0 {
		cfg.Clients = 4
	}
	if cfg.Queries == 0 {
		cfg.Queries = 32
	}
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	dims := synthChunkDims(cfg.Scale)
	grid, err := dataset.NewGrid(dims...)
	if err != nil {
		return nil, nil, err
	}
	res := ServeResult{}
	wbMode := "off"
	if cfg.WriteBack {
		wbMode = "on"
	}
	t := &Table{
		ID: "serve",
		Title: fmt.Sprintf("Concurrent query service, %v cells, cache %d blocks, write fraction %.2f, write-back %s",
			dims, cfg.CacheBlocks, cfg.WriteFraction, wbMode),
		Header: []string{"disk", "shards", "clients", "queries", "q/s", "ms/cell", "ms/query",
			"hit rate", "max batch", "merged", "issued reqs", "writes", "inval blk",
			"flushes", "coalesced", "cancel", "expired", "dl ms/q"},
	}
	for _, g := range cfg.Disks {
		for _, shards := range shardCounts(cfg.Shards) {
			run, err := serveOneDisk(cfg, g, grid, dims, shards)
			if err != nil {
				return nil, nil, err
			}
			res[g.Name] = append(res[g.Name], run)
			dl := "-"
			if cfg.Deadline > 0 {
				dl = fmt.Sprintf("%.1f", run.DLMeanMs)
			}
			t.Rows = append(t.Rows, []string{
				g.Name, fmt.Sprint(run.Shards), fmt.Sprint(run.Clients), fmt.Sprint(run.Queries),
				fmt.Sprintf("%.1f", run.QueriesPerSec), f3(run.MsPerCell),
				fmt.Sprintf("%.1f", run.MeanQueryMs), fmt.Sprintf("%.2f", run.HitRate),
				fmt.Sprint(run.MaxBatchChunks), fmt.Sprint(run.MergedBatches),
				fmt.Sprint(run.IssuedRequests), fmt.Sprint(run.BlocksWritten),
				fmt.Sprint(run.Invalidated),
				fmt.Sprint(run.Flushes), fmt.Sprint(run.Coalesced),
				fmt.Sprint(run.Cancelled), fmt.Sprint(run.Expired), dl,
			})
		}
	}
	return t, res, nil
}

// serveRig is the shared concurrent-service testbed: per-shard volumes
// and service loops over one drive model, the scatter-gather group, and
// (when the workload writes) a per-shard update layer. Both the serve
// scaling ladder and the burst-traffic harness run on it.
type serveRig struct {
	grp   *shard.Group
	cells []*core.CellStore // nil when the workload is read-only
	svcs  []*engine.Service
}

func (r *serveRig) close() {
	for _, svc := range r.svcs {
		svc.Close()
	}
}

// buildServeRig assembles the rig for one drive model at one shard
// count: every shard is an independent volume over that model with its
// own service loop, write-back enabled when the config asks for it.
func buildServeRig(cfg Config, g *disk.Geometry, dims []int, shards int) (*serveRig, error) {
	eo, err := cfg.execOptions()
	if err != nil {
		return nil, err
	}
	rig := &serveRig{
		svcs: make([]*engine.Service, shards),
	}
	vols := make([]*lvm.Volume, shards)
	for i := range vols {
		v, err := lvm.New(0, g)
		if err != nil {
			rig.close()
			return nil, err
		}
		vols[i] = v
		rig.svcs[i] = engine.NewService(v, engine.ServiceOptions{
			CacheBlocks: cfg.CacheBlocks, BatchWindow: cfg.BatchWindow,
			DeadlineAging: cfg.DeadlineAging,
			FairQuantum:   cfg.FairQuantum,
			Classes:       cfg.QoSClasses,
			Pipeline:      cfg.PipelineDepth,
			WriteBack: engine.WriteBackOptions{
				Enabled:         cfg.WriteBack,
				WatermarkBlocks: cfg.WBWatermark,
				FlushInterval:   cfg.WBInterval,
			},
		})
	}
	rig.grp, err = shard.Build(vols, rig.svcs, mapping.MultiMap, dims, mapping.Options{DiskIdx: 0}, eo)
	if err != nil {
		rig.close()
		return nil, err
	}

	// The update layer for the write share: per shard, overflow pages
	// live past the mapped span, clear of every cell (the same invariant
	// the public UpdatableStore validates per disk).
	if cfg.WriteFraction > 0 {
		rig.cells = make([]*core.CellStore, shards)
		for i := range rig.cells {
			member := rig.grp.Member(i)
			_, hi := member.Map.(mapping.Spanned).SpanVLBN()
			overflow := member.Vol.TotalBlocks() - hi
			if overflow <= 0 {
				rig.close()
				return nil, fmt.Errorf("experiments: no room for an overflow extent past VLBN %d", hi)
			}
			if overflow > 1<<16 {
				overflow = 1 << 16
			}
			rig.cells[i], err = core.NewCellStore(member.Map.CellVLBN, 64, 0.75, 0.25,
				[]lvm.Request{{VLBN: member.Vol.TotalBlocks() - overflow, Count: int(overflow)}})
			if err != nil {
				rig.close()
				return nil, err
			}
		}
	}
	return rig, nil
}

// serveOneDisk runs the concurrent workload against one drive model at
// one shard count on a fresh rig.
func serveOneDisk(cfg Config, g *disk.Geometry, grid *dataset.Grid, dims []int, shards int) (ServeRun, error) {
	rig, err := buildServeRig(cfg, g, dims, shards)
	if err != nil {
		return ServeRun{}, err
	}
	defer rig.close()
	grp, cells := rig.grp, rig.cells

	// MaxInflight 2 keeps each session one chunk ahead of the disks, so
	// with a chunked planner (cfg.ChunkCells) admission batches merge
	// even when the host serializes the client goroutines.
	sessions := make([]*shard.Session, cfg.Clients)
	for i := range sessions {
		sessions[i] = grp.Begin(engine.SessionOptions{MaxInflight: 2})
	}
	errs := make([]error, cfg.Clients)
	var dlCompleted, dlExpired int
	var dlElapsedMs float64
	var wg sync.WaitGroup
	start := time.Now()
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			// Client 0 is the QoS session when a deadline is configured:
			// each of its queries runs under context.WithTimeout, expiry
			// is counted rather than fatal, and its observed per-query
			// elapsed time is reported separately.
			qos := i == 0 && cfg.Deadline > 0
			for q := 0; q < cfg.Queries; q++ {
				if qos {
					ctx, cancel := context.WithTimeout(context.Background(), cfg.Deadline)
					st, err := runMixedQuery(ctx, sessions[i], grid, dims, rng)
					cancel()
					switch {
					case err == nil:
						dlCompleted++
						dlElapsedMs += st.ElapsedMs
					case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
						dlExpired++
					default:
						errs[i] = fmt.Errorf("client %d query %d: %w", i, q, err)
						return
					}
					continue
				}
				var err error
				if cells != nil && rng.Float64() < cfg.WriteFraction {
					_, err = runInsertBurst(context.Background(), grp, cells, sessions[i], dims, rng)
				} else {
					_, err = runMixedQuery(context.Background(), sessions[i], grid, dims, rng)
				}
				if err != nil {
					errs[i] = fmt.Errorf("client %d query %d: %w", i, q, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ServeRun{}, err
		}
	}
	// Drain the write-back buffers before the books close, so deferred
	// group-commit costs land in the session totals the table reports
	// (the flush is free with write-back off or nothing dirty).
	if err := sessions[0].Flush(context.Background()); err != nil {
		return ServeRun{}, err
	}
	wall := time.Since(start).Seconds()

	run := ServeRun{
		Shards:      shards,
		Clients:     cfg.Clients,
		Queries:     cfg.Clients * cfg.Queries,
		WallSeconds: wall,
		PerShard:    grp.ServiceTotals(),
		DLCompleted: dlCompleted,
		DLExpired:   dlExpired,
	}
	if dlCompleted > 0 {
		run.DLMeanMs = dlElapsedMs / float64(dlCompleted)
	}
	var sum engine.Stats
	for _, s := range sessions {
		st := s.Totals()
		run.PerSession = append(run.PerSession, st)
		sum.Accumulate(st)
	}
	if wall > 0 {
		run.QueriesPerSec = float64(run.Queries) / wall
	}
	run.MsPerCell = sum.MsPerCell()
	if run.Queries > 0 {
		run.MeanQueryMs = sum.TotalMs / float64(run.Queries)
	}
	if lookups := sum.CacheHits + sum.CacheMisses; lookups > 0 {
		run.HitRate = float64(sum.CacheHits) / float64(lookups)
	}
	for _, tot := range run.PerShard {
		if tot.MaxBatchChunks > run.MaxBatchChunks {
			run.MaxBatchChunks = tot.MaxBatchChunks
		}
		run.MergedBatches += tot.MergedBatches
		run.IssuedRequests += tot.IssuedRequests
		run.WriteOps += tot.WriteOps
		run.Invalidated += tot.InvalidatedBlocks
		run.Flushes += tot.FlushBatches
		run.Coalesced += tot.CoalescedWrites
		run.Cancelled += tot.Cancelled
		run.Expired += tot.DeadlineExceeded
	}
	run.BlocksWritten = sum.Writes
	return run, nil
}

// runInsertBurst performs one update operation: a burst of point
// inserts into a cell on a hot-region alignment grid, each routed to
// the owning shard and submitted as a service write op there, so that
// shard's loop invalidates any cached extents over the dirtied blocks
// before charging the write. The Dim0 hot slots are laid out per shard
// slab — every shard gets write traffic, so the scaling ladder's write
// and invalidation columns measure all of them; with one shard the
// slab is the whole dimension and the workload reduces exactly to the
// unsharded hot region (the same region the hot range queries keep
// re-reading).
func runInsertBurst(ctx context.Context, grp *shard.Group, cells []*core.CellStore, sess *shard.Session, dims []int, rng *rand.Rand) (engine.Stats, error) {
	cell := make([]int, len(dims))
	for i, d := range dims {
		side := max(1, d/16)
		slots := max(1, d/8/side)
		cell[i] = rng.Intn(slots) * side
	}
	si := 0
	if n := grp.NumShards(); n > 1 {
		si = rng.Intn(n)
		lo, hi := grp.Router().Slab(si)
		side := max(1, (hi-lo)/16)
		slots := max(1, (hi-lo)/8/side)
		cell[0] = lo + rng.Intn(slots)*side
	}
	local := grp.Router().Localize(si, cell)
	var sum engine.Stats
	for k := 0; k < 8; k++ {
		reqs, err := cells[si].Insert(local)
		if err != nil {
			return sum, err
		}
		st, err := sess.Member(si).Write(ctx, reqs, disk.SchedSPTF)
		if err != nil {
			return sum, err
		}
		sum.Accumulate(st)
	}
	return sum, nil
}

// runMixedQuery issues one query through the client's scatter-gather
// session: half uniform beams, a quarter uniform small range boxes, and
// a quarter hot-region range boxes on a quantized grid — the
// overlapping share of a real workload, which is what the extent cache
// absorbs.
func runMixedQuery(ctx context.Context, sess *shard.Session, grid *dataset.Grid, dims []int, rng *rand.Rand) (engine.Stats, error) {
	switch roll := rng.Intn(4); {
	case roll < 2:
		dim := rng.Intn(len(dims))
		fixed, err := grid.RandomBeam(rng, dim)
		if err != nil {
			return engine.Stats{}, err
		}
		return sess.Beam(ctx, dim, fixed)
	case roll == 2:
		lo := make([]int, len(dims))
		hi := make([]int, len(dims))
		for i, d := range dims {
			side := 1 + rng.Intn(max(1, d/8))
			lo[i] = rng.Intn(d - side + 1)
			hi[i] = lo[i] + side
		}
		return sess.Box(ctx, lo, hi)
	default:
		// Hot region: boxes of a fixed side on a coarse alignment grid
		// inside the first eighth of every dimension, so concurrent
		// clients keep re-reading (and cache-hitting) the same extents.
		lo := make([]int, len(dims))
		hi := make([]int, len(dims))
		for i, d := range dims {
			side := max(1, d/16)
			slots := max(1, d/8/side)
			lo[i] = rng.Intn(slots) * side
			hi[i] = min(lo[i]+side, d)
		}
		return sess.Box(ctx, lo, hi)
	}
}
