package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/disk"
)

// Fig1aSeekProfile regenerates the paper's Fig. 1(a): seek time as a
// function of cylinder distance, showing the settle-dominated plateau
// for short distances. One column per configured disk.
func Fig1aSeekProfile(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig1a",
		Title:  "Seek time vs cylinder distance (settle plateau at short distances)",
		Header: []string{"distance_cyls"},
	}
	for _, g := range cfg.Disks {
		t.Header = append(t.Header, g.Name+" [ms]")
	}
	// Log-spaced distances plus the settle boundary of each disk.
	dists := []int{1, 2, 4, 8, 16, 24, 32, 40, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}
	for _, g := range cfg.Disks {
		dists = append(dists, g.SettleCyls, g.SettleCyls+1, g.Cylinders()-1)
	}
	seen := map[int]bool{}
	var uniq []int
	for _, d := range dists {
		if !seen[d] {
			seen[d] = true
			uniq = append(uniq, d)
		}
	}
	for i := 1; i < len(uniq); i++ {
		for j := i; j > 0 && uniq[j] < uniq[j-1]; j-- {
			uniq[j], uniq[j-1] = uniq[j-1], uniq[j]
		}
	}
	for _, d := range uniq {
		row := []string{fmt.Sprintf("%d", d)}
		for _, g := range cfg.Disks {
			if d >= g.Cylinders() {
				row = append(row, "-")
				continue
			}
			row = append(row, f3(g.SeekTimeMs(d)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig1bAdjacency validates the adjacency property of Fig. 1(b) by
// measurement: for each adjacency depth k, the positioning cost of
// fetching the k-th adjacent block right after its parent. All D rows
// should sit at (command + settle) plus at most the guard rotation —
// flat across k, unlike a rotational-latency access.
func Fig1bAdjacency(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig1b",
		Title:  "Positioning cost of the k-th adjacent block (flat = no rotational latency)",
		Header: []string{"k"},
	}
	for _, g := range cfg.Disks {
		t.Header = append(t.Header, g.Name+" [ms]", g.Name+" rot-latency access [ms]")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ks := []int{1, 2, 4, 8, 16, 32, 64, 96, 128}
	for _, k := range ks {
		row := []string{fmt.Sprintf("%d", k)}
		for _, g := range cfg.Disks {
			d := disk.New(g)
			var adjPos, rotPos float64
			const trials = 20
			for i := 0; i < trials; i++ {
				lbn := rng.Int63n(g.TotalBlocks() / 2)
				a, err := g.AdjacentBlock(lbn, k)
				if err != nil {
					return nil, err
				}
				if _, err := d.Access(disk.Request{LBN: lbn, Count: 1}); err != nil {
					return nil, err
				}
				cost, err := d.Access(disk.Request{LBN: a, Count: 1})
				if err != nil {
					return nil, err
				}
				adjPos += cost.CommandMs + cost.SeekMs + cost.RotateMs
				// Comparison: same track distance but a random sector —
				// pays rotational latency.
				if _, err := d.Access(disk.Request{LBN: lbn, Count: 1}); err != nil {
					return nil, err
				}
				start, next, err := g.TrackBoundaries(a)
				if err != nil {
					return nil, err
				}
				randBlock := start + rng.Int63n(next-start)
				cost, err = d.Access(disk.Request{LBN: randBlock, Count: 1})
				if err != nil {
					return nil, err
				}
				rotPos += cost.CommandMs + cost.SeekMs + cost.RotateMs
			}
			row = append(row, f3(adjPos/trials), f3(rotPos/trials))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
