package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/mapping"
	"repro/internal/olap"
)

// Fig8Result holds ms/cell per disk, mapping, query name.
type Fig8Result map[string]map[string]map[string]float64

// Fig8OLAP reproduces Fig. 8: the five OLAP queries Q1-Q5 on the TPC-H
// derived 4-D cube chunk; average I/O time per cell.
func Fig8OLAP(cfg Config) (*Table, Fig8Result, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	dims, err := olap.ScaledChunkDims(cfg.Scale)
	if err != nil {
		return nil, nil, err
	}
	res := Fig8Result{}
	t := &Table{
		ID:     "fig8",
		Title:  fmt.Sprintf("OLAP queries on the TPC-H cube chunk %v: avg I/O time per cell [ms]", dims),
		Header: []string{"disk", "mapping", "Q1", "Q2", "Q3", "Q4", "Q5"},
	}
	for _, g := range cfg.Disks {
		res[g.Name] = map[string]map[string]float64{}
		for _, kind := range mapping.Kinds() {
			e, v, err := buildExecutor(cfg, g, kind, dims)
			if err != nil {
				return nil, nil, err
			}
			byQ := map[string]float64{}
			res[g.Name][kind.String()] = byQ
			row := []string{g.Name, kind.String()}
			// The same query instances across mappings: the rng depends
			// only on the seed and run index.
			for qi := 0; qi < 5; qi++ {
				var total float64
				var cells int64
				for r := 0; r < cfg.Runs; r++ {
					rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*104729))
					qs, err := olap.Queries(rng, dims)
					if err != nil {
						return nil, nil, err
					}
					q := qs[qi]
					v.Disk(0).RandomizePosition(rng)
					st, err := e.Range(q.Lo, q.Hi)
					if err != nil {
						return nil, nil, err
					}
					total += st.TotalMs
					cells += st.Cells
				}
				name := fmt.Sprintf("Q%d", qi+1)
				byQ[name] = total / float64(cells)
				row = append(row, f3(byQ[name]))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, res, nil
}
