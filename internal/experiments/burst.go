package experiments

// Burst-traffic serving benchmark: a closed-loop mixed workload where
// every client belongs to one of three QoS classes — "interactive"
// (small hot-region reads, the latency-sensitive traffic), "bulk"
// (large uniform range scans), and "writer" (update bursts through the
// write path) — all hammering one rig at once. Each class reports the
// host-observed per-op latency trajectory (p50/p99/p999) plus the mean
// simulated disk time, so a write-back run shows directly where group
// commit buys tail latency: writer ops return as soon as the buffer
// absorbs them, and readers pay the (merged, cheaper) flushes instead
// of queueing behind every small write. The result serializes to the
// versioned "mmbench-burst" JSON schema (see BurstSchema) the CI
// bench-trajectory step diffs.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/shard"
)

// BurstSchema versions the burst benchmark's JSON artifact. Bump it
// whenever a field changes meaning; the trajectory checker accepts
// every version it knows (v1, v2, v3) and refuses anything else, so a
// committed trajectory may span schema bumps without rewriting
// history.
//
// v2 over v1: adds the top-level "fair_quantum" (the weighted-fair
// admission quantum the run used; 0 = QoS off) and the per-class
// "weight" and "deferred_ops"; percentiles move from nearest-rank to
// linear rank interpolation; "p999_ms" becomes optional — omitted
// when the class's sample is too small (< 1000 ops) for the 99.9th
// percentile to be distinguishable from the maximum.
//
// v3 over v2: adds the host-side efficiency dimension the pipelined
// dispatch work optimizes — top-level "gomaxprocs" (the host
// parallelism the run had), "allocs_per_op" (mean heap allocations
// per client op over the whole run, from runtime.MemStats.Mallocs),
// and "pipeline_depth" (ServiceOptions.Pipeline; 0 = lockstep
// dispatch). "wall_seconds" keeps its v1 meaning but is now a
// first-class trajectory axis next to the simulated times.
const (
	BurstSchema   = "mmbench-burst/v3"
	BurstSchemaV2 = "mmbench-burst/v2"
	BurstSchemaV1 = "mmbench-burst/v1"
)

// burstP999MinOps is the smallest per-class sample for which p999 is
// reported: below 1000 ops the 99.9th percentile is just the sample
// maximum, which BENCH_6.json demonstrated (p99 == p999 at 96 ops).
const burstP999MinOps = 1000

// BurstClass is one QoS class's latency trajectory.
type BurstClass struct {
	Class   string `json:"class"`
	Weight  int    `json:"weight"` // DRR weight the run used (1 when QoS off)
	Clients int    `json:"clients"`
	// Ops is the class's sample size — read it before trusting the tail
	// percentiles.
	Ops   int     `json:"ops"`
	P50Ms float64 `json:"p50_ms"` // host-observed per-op latency percentiles
	P99Ms float64 `json:"p99_ms"` // (closed loop: queueing included)
	// P999Ms is omitted (nil) when Ops < burstP999MinOps.
	P999Ms    *float64 `json:"p999_ms,omitempty"`
	MeanSimMs float64  `json:"mean_sim_ms"` // mean simulated disk ms per op
	// DeferredOps counts ops the weighted-fair scheduler held back for
	// at least one admission pass — direct evidence DRR engaged (0 when
	// QoS off).
	DeferredOps int64 `json:"deferred_ops"`
}

// BurstResult is the burst benchmark's full artifact.
type BurstResult struct {
	Schema        string  `json:"schema"`
	Disk          string  `json:"disk"`
	Scale         float64 `json:"scale"`
	Shards        int     `json:"shards"`
	WriteFraction float64 `json:"write_fraction"`
	WriteBack     bool    `json:"write_back"`
	CacheBlocks   int64   `json:"cache_blocks"`
	// FairQuantum is the weighted-fair admission quantum in blocks per
	// weight unit per pass; 0 = QoS off (v1 artifacts decode as 0).
	FairQuantum int64 `json:"fair_quantum"`
	// PipelineDepth is the service dispatch pipeline depth the run used
	// (engine ServiceOptions.Pipeline); 0 = lockstep dispatch (and the
	// only value pre-v3 artifacts can decode as).
	PipelineDepth int `json:"pipeline_depth"`
	// GOMAXPROCS is the host parallelism the run had — wall_seconds and
	// allocs_per_op are only comparable between runs at the same value.
	// Pre-v3 artifacts decode as 0 (unrecorded).
	GOMAXPROCS  int     `json:"gomaxprocs"`
	WallSeconds float64 `json:"wall_seconds"`
	// AllocsPerOp is the mean number of heap allocations per client op
	// across the whole closed-loop run (runtime.MemStats.Mallocs delta
	// over total ops) — the admission hot path's allocation trajectory.
	// Host-side noise (GC bookkeeping, other goroutines) is included, so
	// read it as a trend line, not an exact -benchmem figure.
	AllocsPerOp  float64      `json:"allocs_per_op"`
	FlushBatches int64        `json:"flush_batches"`
	Coalesced    int64        `json:"coalesced_writes"`
	Classes      []BurstClass `json:"classes"`
}

// burstQoSClasses is the class registry a QoS-on burst run uses: the
// acceptance mix weights interactive:bulk 1:4 — bulk holds most of the
// weighted share, and interactive's tail still collapses because its
// small ops are admitted every pass in their own batches instead of
// coalescing into (and waiting out) bulk's mega-batches.
var burstQoSClasses = []engine.QoSClass{
	{Name: "interactive", Weight: 1},
	{Name: "bulk", Weight: 4},
	{Name: "writer", Weight: 1},
}

// burstWeight returns the registered DRR weight of a class in this
// run's registry (1 when QoS is off or the class is unregistered).
func burstWeight(classes []engine.QoSClass, quantum int64, name string) int {
	if quantum <= 0 {
		return 1
	}
	for _, c := range classes {
		if c.Name == name && c.Weight > 1 {
			return c.Weight
		}
	}
	return 1
}

// burstClient is one closed-loop client: a class, a seed lane, and the
// recorded per-op host latencies and simulated costs.
type burstClient struct {
	class  string
	hostMs []float64
	simMs  float64
	err    error
}

// BurstTraffic runs the closed-loop burst benchmark on the first
// configured drive. Client counts derive from cfg.Clients and
// cfg.WriteFraction: the write share of the clients are writers, the
// rest split two-to-one between interactive and bulk, at least one
// client per class. Each client issues cfg.Queries ops back to back.
// With cfg.FairQuantum > 0 every session declares its class and the
// services run weighted-fair admission under the 1:4
// interactive:bulk registry (burstQoSClasses) with class-partitioned
// extent caches.
func BurstTraffic(cfg Config) (*Table, *BurstResult, error) {
	cfg = cfg.Defaults()
	if cfg.Clients == 0 {
		cfg.Clients = 4
	}
	if cfg.Queries == 0 {
		// 64 ops per client: enough sample for an interpolated p99 to
		// separate from the maximum even on the smallest default class.
		cfg.Queries = 64
	}
	if cfg.WriteFraction == 0 {
		cfg.WriteFraction = 0.25
	}
	if cfg.FairQuantum > 0 && len(cfg.QoSClasses) == 0 {
		cfg.QoSClasses = burstQoSClasses
	}
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	g := cfg.Disks[0]
	dims := synthChunkDims(cfg.Scale)
	grid, err := dataset.NewGrid(dims...)
	if err != nil {
		return nil, nil, err
	}
	rig, err := buildServeRig(cfg, g, dims, shards)
	if err != nil {
		return nil, nil, err
	}
	defer rig.close()

	writers := int(math.Round(float64(cfg.Clients) * cfg.WriteFraction))
	if writers < 1 {
		writers = 1
	}
	if writers > cfg.Clients-2 {
		writers = max(1, cfg.Clients-2)
	}
	rest := cfg.Clients - writers
	interactive := max(1, (rest*2+2)/3)
	bulk := max(1, rest-interactive)

	var clients []*burstClient
	for i := 0; i < interactive; i++ {
		clients = append(clients, &burstClient{class: "interactive"})
	}
	for i := 0; i < bulk; i++ {
		clients = append(clients, &burstClient{class: "bulk"})
	}
	for i := 0; i < writers; i++ {
		clients = append(clients, &burstClient{class: "writer"})
	}

	sessions := make([]*shard.Session, len(clients))
	for i := range sessions {
		sessions[i] = rig.grp.Begin(engine.SessionOptions{MaxInflight: 2, Class: clients[i].class})
	}
	var wg sync.WaitGroup
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *burstClient) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			for q := 0; q < cfg.Queries; q++ {
				var (
					st  engine.Stats
					err error
				)
				t0 := time.Now()
				switch c.class {
				case "writer":
					st, err = runInsertBurst(context.Background(), rig.grp, rig.cells, sessions[i], dims, rng)
				case "bulk":
					st, err = runBulkScan(context.Background(), sessions[i], dims, rng)
				default:
					st, err = runMixedQuery(context.Background(), sessions[i], grid, dims, rng)
				}
				if err != nil {
					c.err = fmt.Errorf("%s client %d op %d: %w", c.class, i, q, err)
					return
				}
				c.hostMs = append(c.hostMs, float64(time.Since(t0))/float64(time.Millisecond))
				c.simMs += st.TotalMs
			}
		}(i, c)
	}
	wg.Wait()
	for _, c := range clients {
		if c.err != nil {
			return nil, nil, c.err
		}
	}
	// Drain the write-back buffers so deferred group-commit work is in
	// the books (free when nothing is dirty).
	if err := sessions[0].Flush(context.Background()); err != nil {
		return nil, nil, err
	}
	wall := time.Since(start).Seconds()
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	totalOps := cfg.Clients * cfg.Queries

	res := &BurstResult{
		Schema: BurstSchema,
		Disk:   g.Name, Scale: cfg.Scale, Shards: shards,
		WriteFraction: cfg.WriteFraction, WriteBack: cfg.WriteBack,
		CacheBlocks: cfg.CacheBlocks, FairQuantum: cfg.FairQuantum,
		PipelineDepth: cfg.PipelineDepth,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		WallSeconds:   wall,
	}
	if totalOps > 0 {
		res.AllocsPerOp = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(totalOps)
	}
	for _, tot := range rig.grp.ServiceTotals() {
		res.FlushBatches += tot.FlushBatches
		res.Coalesced += tot.CoalescedWrites
	}
	deferredBy := map[string]int64{}
	for _, ct := range rig.grp.ClassTotals() {
		deferredBy[ct.Class] = ct.Deferred
	}
	for _, class := range []string{"interactive", "bulk", "writer"} {
		var lat []float64
		var sim float64
		n := 0
		for _, c := range clients {
			if c.class != class {
				continue
			}
			n++
			lat = append(lat, c.hostMs...)
			sim += c.simMs
		}
		sort.Float64s(lat)
		bc := BurstClass{
			Class:   class,
			Weight:  burstWeight(cfg.QoSClasses, cfg.FairQuantum, class),
			Clients: n, Ops: len(lat),
			P50Ms:       pctl(lat, 0.50),
			P99Ms:       pctl(lat, 0.99),
			DeferredOps: deferredBy[class],
		}
		if len(lat) >= burstP999MinOps {
			p := pctl(lat, 0.999)
			bc.P999Ms = &p
		}
		if len(lat) > 0 {
			bc.MeanSimMs = sim / float64(len(lat))
		}
		res.Classes = append(res.Classes, bc)
	}

	wbMode := "off"
	if cfg.WriteBack {
		wbMode = "on"
	}
	qosMode := "off"
	if cfg.FairQuantum > 0 {
		qosMode = fmt.Sprintf("quantum %d", cfg.FairQuantum)
	}
	t := &Table{
		ID: "burst",
		Title: fmt.Sprintf("Closed-loop burst traffic on %s, %v cells, write-back %s, QoS %s, pipeline %d, %d flushes, %d coalesced; %.2fs wall, %.0f allocs/op at GOMAXPROCS=%d",
			g.Name, dims, wbMode, qosMode, res.PipelineDepth, res.FlushBatches, res.Coalesced,
			res.WallSeconds, res.AllocsPerOp, res.GOMAXPROCS),
		Header: []string{"class", "weight", "clients", "ops", "p50 ms", "p99 ms", "p999 ms", "sim ms/op", "deferred"},
	}
	for _, bc := range res.Classes {
		p999 := "-"
		if bc.P999Ms != nil {
			p999 = f3(*bc.P999Ms)
		}
		t.Rows = append(t.Rows, []string{
			bc.Class, fmt.Sprint(bc.Weight), fmt.Sprint(bc.Clients), fmt.Sprint(bc.Ops),
			f3(bc.P50Ms), f3(bc.P99Ms), p999, f3(bc.MeanSimMs), fmt.Sprint(bc.DeferredOps),
		})
	}
	return t, res, nil
}

// runBulkScan issues one large uniform range box — the bulk class's
// scan-heavy op shape, sized well above the interactive class's
// hot-region boxes.
func runBulkScan(ctx context.Context, sess *shard.Session, dims []int, rng *rand.Rand) (engine.Stats, error) {
	lo := make([]int, len(dims))
	hi := make([]int, len(dims))
	for i, d := range dims {
		side := max(2, d/4)
		if side > d {
			side = d
		}
		lo[i] = rng.Intn(d - side + 1)
		hi[i] = lo[i] + side
	}
	return sess.Box(ctx, lo, hi)
}

// pctl returns the p-quantile of an ascending-sorted sample by linear
// rank interpolation (the R-7 / NumPy "linear" method): rank p×(n-1)
// interpolated between its two closest order statistics. Unlike the
// nearest-rank method this never collapses distinct percentiles of a
// small sample onto the same order statistic unless the sample truly
// cannot distinguish them.
func pctl(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := p * float64(n-1)
	lo := int(math.Floor(rank))
	if lo < 0 {
		lo = 0
	}
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// ValidateBurst checks a burst artifact's invariants: a known schema
// version, all three QoS classes present with traffic, and a sane
// latency trajectory (0 ≤ p50 ≤ p99 ≤ p999 where present) per class.
func ValidateBurst(res *BurstResult) error {
	switch res.Schema {
	case BurstSchema, BurstSchemaV2, BurstSchemaV1:
	default:
		return fmt.Errorf("burst: schema %q, want %q, %q, or %q",
			res.Schema, BurstSchema, BurstSchemaV2, BurstSchemaV1)
	}
	if res.Disk == "" {
		return fmt.Errorf("burst: missing disk name")
	}
	if res.WallSeconds <= 0 {
		return fmt.Errorf("burst: non-positive wall_seconds %v", res.WallSeconds)
	}
	if res.FairQuantum < 0 {
		return fmt.Errorf("burst: negative fair_quantum %d", res.FairQuantum)
	}
	if res.PipelineDepth < 0 {
		return fmt.Errorf("burst: negative pipeline_depth %d", res.PipelineDepth)
	}
	if res.AllocsPerOp < 0 {
		return fmt.Errorf("burst: negative allocs_per_op %v", res.AllocsPerOp)
	}
	if res.Schema == BurstSchema && res.GOMAXPROCS < 1 {
		return fmt.Errorf("burst: gomaxprocs %d below 1", res.GOMAXPROCS)
	}
	want := map[string]bool{"interactive": false, "bulk": false, "writer": false}
	for _, bc := range res.Classes {
		seen, known := want[bc.Class]
		if !known {
			return fmt.Errorf("burst: unknown class %q", bc.Class)
		}
		if seen {
			return fmt.Errorf("burst: duplicate class %q", bc.Class)
		}
		want[bc.Class] = true
		if bc.Clients < 1 || bc.Ops < 1 {
			return fmt.Errorf("burst: class %q has no traffic: %+v", bc.Class, bc)
		}
		if bc.P50Ms < 0 || bc.P50Ms > bc.P99Ms {
			return fmt.Errorf("burst: class %q latency trajectory out of order: p50=%v p99=%v",
				bc.Class, bc.P50Ms, bc.P99Ms)
		}
		if bc.P999Ms != nil && bc.P99Ms > *bc.P999Ms {
			return fmt.Errorf("burst: class %q latency trajectory out of order: p99=%v p999=%v",
				bc.Class, bc.P99Ms, *bc.P999Ms)
		}
		if res.Schema != BurstSchemaV1 && bc.Weight < 1 {
			return fmt.Errorf("burst: class %q weight %d below 1", bc.Class, bc.Weight)
		}
		if bc.MeanSimMs < 0 {
			return fmt.Errorf("burst: class %q negative simulated ms %v", bc.Class, bc.MeanSimMs)
		}
		if bc.DeferredOps < 0 {
			return fmt.Errorf("burst: class %q negative deferred_ops %d", bc.Class, bc.DeferredOps)
		}
	}
	for class, seen := range want {
		if !seen {
			return fmt.Errorf("burst: class %q missing", class)
		}
	}
	return nil
}

// burstRequiredKeys are the per-schema top-level and per-class JSON
// keys the trajectory checker demands — a schema diff, not just a
// decode. p999_ms is required in v1 (always emitted there) and
// optional in v2 (omitted on small samples).
var burstRequiredKeys = map[string]struct{ top, class []string }{
	BurstSchemaV1: {
		top: []string{"schema", "disk", "scale", "shards", "write_fraction", "write_back",
			"cache_blocks", "wall_seconds", "flush_batches", "coalesced_writes", "classes"},
		class: []string{"class", "clients", "ops", "p50_ms", "p99_ms", "p999_ms", "mean_sim_ms"},
	},
	BurstSchemaV2: {
		top: []string{"schema", "disk", "scale", "shards", "write_fraction", "write_back",
			"cache_blocks", "fair_quantum", "wall_seconds", "flush_batches", "coalesced_writes", "classes"},
		class: []string{"class", "weight", "clients", "ops", "p50_ms", "p99_ms", "mean_sim_ms", "deferred_ops"},
	},
	BurstSchema: {
		top: []string{"schema", "disk", "scale", "shards", "write_fraction", "write_back",
			"cache_blocks", "fair_quantum", "pipeline_depth", "gomaxprocs", "wall_seconds",
			"allocs_per_op", "flush_batches", "coalesced_writes", "classes"},
		class: []string{"class", "weight", "clients", "ops", "p50_ms", "p99_ms", "mean_sim_ms", "deferred_ops"},
	},
}

// ValidateBurstJSON checks raw JSON against its declared mmbench-burst
// schema version: every required key present (missing keys decode
// silently, so this is an explicit diff) and the decoded result's
// invariants hold.
func ValidateBurstJSON(data []byte) (*BurstResult, error) {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return nil, fmt.Errorf("burst: not a JSON object: %w", err)
	}
	var schema string
	if raw, ok := top["schema"]; ok {
		if err := json.Unmarshal(raw, &schema); err != nil {
			return nil, fmt.Errorf("burst: schema key: %w", err)
		}
	}
	required, ok := burstRequiredKeys[schema]
	if !ok {
		return nil, fmt.Errorf("burst: schema %q, want %q, %q, or %q",
			schema, BurstSchema, BurstSchemaV2, BurstSchemaV1)
	}
	for _, k := range required.top {
		if _, ok := top[k]; !ok {
			return nil, fmt.Errorf("burst: missing key %q", k)
		}
	}
	var classes []map[string]json.RawMessage
	if err := json.Unmarshal(top["classes"], &classes); err != nil {
		return nil, fmt.Errorf("burst: classes not a JSON array: %w", err)
	}
	for i, c := range classes {
		for _, k := range required.class {
			if _, ok := c[k]; !ok {
				return nil, fmt.Errorf("burst: classes[%d] missing key %q", i, k)
			}
		}
	}
	var res BurstResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("burst: %w", err)
	}
	if err := ValidateBurst(&res); err != nil {
		return nil, err
	}
	return &res, nil
}
