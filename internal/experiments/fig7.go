package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/disk"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/octree"
)

// quakeDepth maps the scale knob to the octree's maximum depth:
// scale 1 gives the full synthetic earthquake tree (~660k elements).
func quakeDepth(scale float64) int {
	switch {
	case scale >= 0.9:
		return 7
	case scale >= 0.4:
		return 6
	default:
		return 5
	}
}

// quakeStore builds the earthquake dataset under one mapping, wiring
// the config's scheduler-override knob through to query execution.
func quakeStore(cfg Config, g *disk.Geometry, kind mapping.Kind, md int) (*octree.Store, *lvm.Volume, *octree.Tree, error) {
	eo, err := cfg.execOptions()
	if err != nil {
		return nil, nil, nil, err
	}
	v, err := lvm.New(0, g)
	if err != nil {
		return nil, nil, nil, err
	}
	tr, err := octree.NewQuakeTree(md)
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := octree.NewStore(v, tr, kind, octree.StoreOptions{
		DiskIdx:        0,
		PolicyOverride: eo.PolicyOverride,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return s, v, tr, nil
}

// Fig7aResult holds ms/cell per disk, mapping, axis.
type Fig7aResult map[string]map[string][3]float64

// Fig7aQuakeBeams reproduces Fig. 7(a): beam queries along X/Y/Z of the
// earthquake dataset, average I/O time per fetched element.
func Fig7aQuakeBeams(cfg Config) (*Table, Fig7aResult, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	md := quakeDepth(cfg.Scale)
	res := Fig7aResult{}
	t := &Table{
		ID:     "fig7a",
		Title:  fmt.Sprintf("Earthquake dataset beam queries (octree depth %d): avg I/O time per cell [ms]", md),
		Header: []string{"disk", "mapping", "X", "Y", "Z"},
	}
	for _, g := range cfg.Disks {
		res[g.Name] = map[string][3]float64{}
		for _, kind := range mapping.Kinds() {
			s, v, tr, err := quakeStore(cfg, g, kind, md)
			if err != nil {
				return nil, nil, err
			}
			var per [3]float64
			for axis := 0; axis < 3; axis++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(axis)*1000))
				var total float64
				var cells int64
				for r := 0; r < cfg.Runs; r++ {
					v.Disk(0).RandomizePosition(rng)
					p := [3]int{
						rng.Intn(tr.DomainSide()),
						rng.Intn(tr.DomainSide()),
						rng.Intn(tr.DomainSide()),
					}
					leaves, err := s.BeamLeaves(axis, p)
					if err != nil {
						return nil, nil, err
					}
					st, err := s.Query(leaves)
					if err != nil {
						return nil, nil, err
					}
					total += st.TotalMs
					cells += st.Cells
				}
				per[axis] = total / float64(cells)
			}
			res[g.Name][kind.String()] = per
			t.Rows = append(t.Rows, []string{
				g.Name, kind.String(), f3(per[0]), f3(per[1]), f3(per[2]),
			})
		}
	}
	return t, res, nil
}

// Fig7bSelectivities are the paper's earthquake range selectivities, in
// percent of the domain volume.
var Fig7bSelectivities = []float64{0.0001, 0.001, 0.003}

// Fig7bResult holds total I/O ms per disk, mapping, selectivity.
type Fig7bResult map[string]map[string]map[float64]float64

// Fig7bQuakeRanges reproduces Fig. 7(b): small range queries on the
// earthquake dataset; total I/O time in ms.
func Fig7bQuakeRanges(cfg Config) (*Table, Fig7bResult, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	md := quakeDepth(cfg.Scale)
	res := Fig7bResult{}
	t := &Table{
		ID:    "fig7b",
		Title: fmt.Sprintf("Earthquake dataset range queries (octree depth %d): total I/O time [ms]", md),
	}
	t.Header = []string{"selectivity_%"}
	for _, g := range cfg.Disks {
		for _, kind := range mapping.Kinds() {
			t.Header = append(t.Header, g.Name+"/"+kind.String())
		}
	}
	// store per (disk, kind), reused across selectivities.
	type sk struct{ d, k string }
	stores := map[sk]*octree.Store{}
	vols := map[sk]*lvm.Volume{}
	var domain int
	for _, g := range cfg.Disks {
		for _, kind := range mapping.Kinds() {
			s, v, tr, err := quakeStore(cfg, g, kind, md)
			if err != nil {
				return nil, nil, err
			}
			stores[sk{g.Name, kind.String()}] = s
			vols[sk{g.Name, kind.String()}] = v
			domain = tr.DomainSide()
		}
		res[g.Name] = map[string]map[float64]float64{}
		for _, kind := range mapping.Kinds() {
			res[g.Name][kind.String()] = map[float64]float64{}
		}
	}
	for _, sel := range Fig7bSelectivities {
		row := []string{fmt.Sprintf("%g", sel)}
		vol := float64(domain) * float64(domain) * float64(domain) * sel / 100
		side := int(math.Cbrt(vol) + 0.5)
		if side < 1 {
			side = 1
		}
		for _, g := range cfg.Disks {
			for _, kind := range mapping.Kinds() {
				s := stores[sk{g.Name, kind.String()}]
				v := vols[sk{g.Name, kind.String()}]
				rng := rand.New(rand.NewSource(cfg.Seed + int64(sel*1e6)))
				var total float64
				for r := 0; r < cfg.Runs; r++ {
					v.Disk(0).RandomizePosition(rng)
					var lo, hi [3]int
					for i := 0; i < 3; i++ {
						lo[i] = rng.Intn(domain - side + 1)
						hi[i] = lo[i] + side
					}
					leaves, err := s.RangeLeaves(lo, hi)
					if err != nil {
						return nil, nil, err
					}
					st, err := s.Query(leaves)
					if err != nil {
						return nil, nil, err
					}
					total += st.TotalMs
				}
				avg := total / float64(cfg.Runs)
				res[g.Name][kind.String()][sel] = avg
				row = append(row, f2(avg))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, res, nil
}
