package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestBurstTraffic runs the closed-loop burst benchmark small, with and
// without write-back, and checks the artifact: all three QoS classes
// carry traffic, the trajectory is ordered, group commit shows up in
// the write-back run, and the JSON round-trips through the schema
// checker.
func TestBurstTraffic(t *testing.T) {
	cfg := fastCfg()
	cfg.Clients = 4
	cfg.Queries = 6
	cfg.ChunkCells = 512
	cfg.CacheBlocks = 1 << 22
	cfg.WriteFraction = 0.3

	tb, plain, err := BurstTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBurst(plain); err != nil {
		t.Fatalf("write-through artifact invalid: %v", err)
	}
	if plain.WriteBack || plain.FlushBatches != 0 || plain.Coalesced != 0 {
		t.Fatalf("write-back evidence in a write-through run: %+v", plain)
	}
	if !strings.Contains(tb.String(), "p999 ms") {
		t.Fatalf("table missing trajectory columns:\n%s", tb)
	}

	cfg.WriteBack = true
	_, wb, err := BurstTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBurst(wb); err != nil {
		t.Fatalf("write-back artifact invalid: %v", err)
	}
	if !wb.WriteBack || wb.Coalesced == 0 || wb.FlushBatches == 0 {
		t.Fatalf("write-back run shows no group commit: %+v", wb)
	}

	data, err := json.Marshal(wb)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateBurstJSON(data)
	if err != nil {
		t.Fatalf("round-trip rejected: %v", err)
	}
	if back.Coalesced != wb.Coalesced || len(back.Classes) != len(wb.Classes) {
		t.Fatalf("round-trip drifted: %+v vs %+v", back, wb)
	}

	// QoS on: the artifact records the quantum and the registered 1:4
	// interactive:bulk weights, and the table says so.
	cfg.FairQuantum = 4096
	tq, qos, err := BurstTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBurst(qos); err != nil {
		t.Fatalf("QoS artifact invalid: %v", err)
	}
	if qos.FairQuantum != 4096 {
		t.Fatalf("fair quantum not recorded: %+v", qos)
	}
	wantWeight := map[string]int{"interactive": 1, "bulk": 4, "writer": 1}
	for _, bc := range qos.Classes {
		if bc.Weight != wantWeight[bc.Class] {
			t.Fatalf("class %q weight %d, want %d", bc.Class, bc.Weight, wantWeight[bc.Class])
		}
		if bc.Ops < burstP999MinOps && bc.P999Ms != nil {
			t.Fatalf("class %q reports p999 on %d ops", bc.Class, bc.Ops)
		}
	}
	if !strings.Contains(tq.Title, "QoS quantum 4096") {
		t.Fatalf("table title missing QoS mode: %s", tq.Title)
	}
	if !strings.Contains(tb.Title, "QoS off") {
		t.Fatalf("QoS-off table title missing mode: %s", tb.Title)
	}

	// v3 host-efficiency fields: recorded on every run, and a pipelined
	// run carries its depth through to the artifact.
	if qos.GOMAXPROCS < 1 || qos.AllocsPerOp <= 0 || qos.PipelineDepth != 0 {
		t.Fatalf("v3 host fields wrong on lockstep run: %+v", qos)
	}
	cfg.PipelineDepth = 2
	tp, piped, err := BurstTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBurst(piped); err != nil {
		t.Fatalf("pipelined artifact invalid: %v", err)
	}
	if piped.PipelineDepth != 2 {
		t.Fatalf("pipeline depth not recorded: %+v", piped)
	}
	if !strings.Contains(tp.Title, "pipeline 2") {
		t.Fatalf("table title missing pipeline depth: %s", tp.Title)
	}
}

// TestValidateBurstJSON exercises the schema checker's rejections: the
// CI trajectory diff must catch a wrong schema tag, a missing key, a
// missing class, and an out-of-order trajectory.
func TestValidateBurstJSON(t *testing.T) {
	good := `{
		"schema": "mmbench-burst/v1", "disk": "d", "scale": 1, "shards": 1,
		"write_fraction": 0.3, "write_back": true, "cache_blocks": 0,
		"wall_seconds": 0.5, "flush_batches": 1, "coalesced_writes": 2,
		"classes": [
			{"class": "interactive", "clients": 2, "ops": 12, "p50_ms": 1, "p99_ms": 2, "p999_ms": 3, "mean_sim_ms": 4},
			{"class": "bulk", "clients": 1, "ops": 6, "p50_ms": 1, "p99_ms": 1, "p999_ms": 1, "mean_sim_ms": 0},
			{"class": "writer", "clients": 1, "ops": 6, "p50_ms": 0, "p99_ms": 0, "p999_ms": 0, "mean_sim_ms": 0}
		]
	}`
	if _, err := ValidateBurstJSON([]byte(good)); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
	for name, mangle := range map[string]func(string) string{
		"unknown schema": func(s string) string {
			return strings.Replace(s, "mmbench-burst/v1", "mmbench-burst/v9", 1)
		},
		"v2 tag on v1 body": func(s string) string {
			// A v1 body relabeled v2 lacks fair_quantum / weight /
			// deferred_ops — the checker must demand the v2 keys.
			return strings.Replace(s, "mmbench-burst/v1", "mmbench-burst/v2", 1)
		},
		"missing key": func(s string) string {
			return strings.Replace(s, `"wall_seconds": 0.5,`, "", 1)
		},
		"missing class key": func(s string) string {
			return strings.Replace(s, `"p999_ms": 3,`, "", 1)
		},
		"missing class": func(s string) string {
			return strings.Replace(s, `"class": "writer"`, `"class": "bulk"`, 1)
		},
		"out-of-order trajectory": func(s string) string {
			return strings.Replace(s, `"p99_ms": 2`, `"p99_ms": 9`, 1)
		},
		"no traffic": func(s string) string {
			return strings.Replace(s, `"ops": 12`, `"ops": 0`, 1)
		},
		"not json": func(string) string { return "{" },
	} {
		if _, err := ValidateBurstJSON([]byte(mangle(good))); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestValidateBurstJSONV3 pins the v3 schema contract: pipeline_depth,
// gomaxprocs, and allocs_per_op are required on top of the v2 keys, a
// v2 body relabeled v3 is rejected, and the v3-only invariants reject
// a zero gomaxprocs and negative depths/allocs.
func TestValidateBurstJSONV3(t *testing.T) {
	good := `{
		"schema": "mmbench-burst/v3", "disk": "d", "scale": 1, "shards": 1,
		"write_fraction": 0.3, "write_back": true, "cache_blocks": 0,
		"fair_quantum": 4096, "pipeline_depth": 2, "gomaxprocs": 4,
		"wall_seconds": 0.5, "allocs_per_op": 812.5, "flush_batches": 1,
		"coalesced_writes": 2,
		"classes": [
			{"class": "interactive", "weight": 1, "clients": 2, "ops": 12, "p50_ms": 1, "p99_ms": 2, "mean_sim_ms": 4, "deferred_ops": 0},
			{"class": "bulk", "weight": 4, "clients": 1, "ops": 6, "p50_ms": 1, "p99_ms": 1, "mean_sim_ms": 0, "deferred_ops": 3},
			{"class": "writer", "weight": 1, "clients": 1, "ops": 6, "p50_ms": 0, "p99_ms": 0, "mean_sim_ms": 0, "deferred_ops": 0}
		]
	}`
	res, err := ValidateBurstJSON([]byte(good))
	if err != nil {
		t.Fatalf("valid v3 artifact rejected: %v", err)
	}
	if res.PipelineDepth != 2 || res.GOMAXPROCS != 4 || res.AllocsPerOp != 812.5 {
		t.Fatalf("v3 fields lost in decode: %+v", res)
	}
	for name, mangle := range map[string]func(string) string{
		"v3 tag on v2 body": func(s string) string {
			s = strings.Replace(s, `"pipeline_depth": 2, "gomaxprocs": 4,`, "", 1)
			return strings.Replace(s, `"allocs_per_op": 812.5, `, "", 1)
		},
		"missing pipeline_depth": func(s string) string {
			return strings.Replace(s, `"pipeline_depth": 2, `, "", 1)
		},
		"missing gomaxprocs": func(s string) string {
			return strings.Replace(s, `"gomaxprocs": 4,`, "", 1)
		},
		"missing allocs_per_op": func(s string) string {
			return strings.Replace(s, `"allocs_per_op": 812.5, `, "", 1)
		},
		"negative pipeline_depth": func(s string) string {
			return strings.Replace(s, `"pipeline_depth": 2`, `"pipeline_depth": -1`, 1)
		},
		"zero gomaxprocs": func(s string) string {
			return strings.Replace(s, `"gomaxprocs": 4`, `"gomaxprocs": 0`, 1)
		},
		"negative allocs_per_op": func(s string) string {
			return strings.Replace(s, `"allocs_per_op": 812.5`, `"allocs_per_op": -1`, 1)
		},
	} {
		if _, err := ValidateBurstJSON([]byte(mangle(good))); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestValidateBurstJSONV2 pins the v2 schema contract: fair_quantum,
// per-class weight and deferred_ops are required, p999_ms is optional
// (small samples omit it), and the v2-only invariants reject bad
// weights and negative deferrals.
func TestValidateBurstJSONV2(t *testing.T) {
	good := `{
		"schema": "mmbench-burst/v2", "disk": "d", "scale": 1, "shards": 1,
		"write_fraction": 0.3, "write_back": true, "cache_blocks": 0,
		"fair_quantum": 4096, "wall_seconds": 0.5, "flush_batches": 1,
		"coalesced_writes": 2,
		"classes": [
			{"class": "interactive", "weight": 1, "clients": 2, "ops": 12, "p50_ms": 1, "p99_ms": 2, "mean_sim_ms": 4, "deferred_ops": 0},
			{"class": "bulk", "weight": 4, "clients": 1, "ops": 6, "p50_ms": 1, "p99_ms": 1, "p999_ms": 1, "mean_sim_ms": 0, "deferred_ops": 3},
			{"class": "writer", "weight": 1, "clients": 1, "ops": 6, "p50_ms": 0, "p99_ms": 0, "mean_sim_ms": 0, "deferred_ops": 0}
		]
	}`
	res, err := ValidateBurstJSON([]byte(good))
	if err != nil {
		t.Fatalf("valid v2 artifact rejected: %v", err)
	}
	if res.FairQuantum != 4096 {
		t.Fatalf("fair_quantum lost in decode: %+v", res)
	}
	if res.Classes[0].P999Ms != nil || res.Classes[1].P999Ms == nil {
		t.Fatalf("optional p999 decoded wrong: %+v", res.Classes)
	}
	for name, mangle := range map[string]func(string) string{
		"missing fair_quantum": func(s string) string {
			return strings.Replace(s, `"fair_quantum": 4096,`, "", 1)
		},
		"missing weight": func(s string) string {
			return strings.Replace(s, `"weight": 4, `, "", 1)
		},
		"zero weight": func(s string) string {
			return strings.Replace(s, `"weight": 4`, `"weight": 0`, 1)
		},
		"missing deferred_ops": func(s string) string {
			return strings.Replace(s, `, "deferred_ops": 3`, "", 1)
		},
		"negative deferred_ops": func(s string) string {
			return strings.Replace(s, `"deferred_ops": 3`, `"deferred_ops": -1`, 1)
		},
		"p999 below p99": func(s string) string {
			return strings.Replace(s, `"p999_ms": 1,`, `"p999_ms": 0.5,`, 1)
		},
		"negative fair_quantum": func(s string) string {
			return strings.Replace(s, `"fair_quantum": 4096`, `"fair_quantum": -1`, 1)
		},
	} {
		if _, err := ValidateBurstJSON([]byte(mangle(good))); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
