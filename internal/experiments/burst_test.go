package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestBurstTraffic runs the closed-loop burst benchmark small, with and
// without write-back, and checks the artifact: all three QoS classes
// carry traffic, the trajectory is ordered, group commit shows up in
// the write-back run, and the JSON round-trips through the schema
// checker.
func TestBurstTraffic(t *testing.T) {
	cfg := fastCfg()
	cfg.Clients = 4
	cfg.Queries = 6
	cfg.ChunkCells = 512
	cfg.CacheBlocks = 1 << 22
	cfg.WriteFraction = 0.3

	tb, plain, err := BurstTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBurst(plain); err != nil {
		t.Fatalf("write-through artifact invalid: %v", err)
	}
	if plain.WriteBack || plain.FlushBatches != 0 || plain.Coalesced != 0 {
		t.Fatalf("write-back evidence in a write-through run: %+v", plain)
	}
	if !strings.Contains(tb.String(), "p999 ms") {
		t.Fatalf("table missing trajectory columns:\n%s", tb)
	}

	cfg.WriteBack = true
	_, wb, err := BurstTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBurst(wb); err != nil {
		t.Fatalf("write-back artifact invalid: %v", err)
	}
	if !wb.WriteBack || wb.Coalesced == 0 || wb.FlushBatches == 0 {
		t.Fatalf("write-back run shows no group commit: %+v", wb)
	}

	data, err := json.Marshal(wb)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateBurstJSON(data)
	if err != nil {
		t.Fatalf("round-trip rejected: %v", err)
	}
	if back.Coalesced != wb.Coalesced || len(back.Classes) != len(wb.Classes) {
		t.Fatalf("round-trip drifted: %+v vs %+v", back, wb)
	}
}

// TestValidateBurstJSON exercises the schema checker's rejections: the
// CI trajectory diff must catch a wrong schema tag, a missing key, a
// missing class, and an out-of-order trajectory.
func TestValidateBurstJSON(t *testing.T) {
	good := `{
		"schema": "mmbench-burst/v1", "disk": "d", "scale": 1, "shards": 1,
		"write_fraction": 0.3, "write_back": true, "cache_blocks": 0,
		"wall_seconds": 0.5, "flush_batches": 1, "coalesced_writes": 2,
		"classes": [
			{"class": "interactive", "clients": 2, "ops": 12, "p50_ms": 1, "p99_ms": 2, "p999_ms": 3, "mean_sim_ms": 4},
			{"class": "bulk", "clients": 1, "ops": 6, "p50_ms": 1, "p99_ms": 1, "p999_ms": 1, "mean_sim_ms": 0},
			{"class": "writer", "clients": 1, "ops": 6, "p50_ms": 0, "p99_ms": 0, "p999_ms": 0, "mean_sim_ms": 0}
		]
	}`
	if _, err := ValidateBurstJSON([]byte(good)); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
	for name, mangle := range map[string]func(string) string{
		"wrong schema": func(s string) string {
			return strings.Replace(s, "mmbench-burst/v1", "mmbench-burst/v2", 1)
		},
		"missing key": func(s string) string {
			return strings.Replace(s, `"wall_seconds": 0.5,`, "", 1)
		},
		"missing class key": func(s string) string {
			return strings.Replace(s, `"p999_ms": 3,`, "", 1)
		},
		"missing class": func(s string) string {
			return strings.Replace(s, `"class": "writer"`, `"class": "bulk"`, 1)
		},
		"out-of-order trajectory": func(s string) string {
			return strings.Replace(s, `"p99_ms": 2`, `"p99_ms": 9`, 1)
		},
		"no traffic": func(s string) string {
			return strings.Replace(s, `"ops": 12`, `"ops": 0`, 1)
		},
		"not json": func(string) string { return "{" },
	} {
		if _, err := ValidateBurstJSON([]byte(mangle(good))); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
