package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/disk"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

// synthChunkDims returns the per-disk chunk of the synthetic 3-D
// dataset at the configured scale (259^3 at scale 1, §5.3).
func synthChunkDims(scale float64) []int {
	side := int(259 * scale)
	if side < 16 {
		side = 16
	}
	return []int{side, side, side}
}

// buildExecutor maps the dataset on a fresh single-disk volume, wiring
// the run's engine knobs (policy override, planner chunking) through.
func buildExecutor(cfg Config, g *disk.Geometry, kind mapping.Kind, dims []int) (*query.Executor, *lvm.Volume, error) {
	v, err := lvm.New(0, g)
	if err != nil {
		return nil, nil, err
	}
	m, err := mapping.New(kind, v, dims, mapping.Options{DiskIdx: 0})
	if err != nil {
		return nil, nil, err
	}
	opts, err := cfg.execOptions()
	if err != nil {
		return nil, nil, err
	}
	return query.NewExecutorOptions(v, m, opts), v, nil
}

// Fig6aResult holds ms/cell per disk, mapping, and dimension.
type Fig6aResult map[string]map[string][3]float64

// Fig6aBeams reproduces Fig. 6(a): beam queries along Dim0/Dim1/Dim2 of
// the synthetic uniform 3-D dataset, average I/O time per cell over
// cfg.Runs random beams.
func Fig6aBeams(cfg Config) (*Table, Fig6aResult, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	dims := synthChunkDims(cfg.Scale)
	grid, err := dataset.NewGrid(dims...)
	if err != nil {
		return nil, nil, err
	}
	res := Fig6aResult{}
	t := &Table{
		ID:     "fig6a",
		Title:  fmt.Sprintf("Synthetic 3-D beam queries, %v cells/disk: avg I/O time per cell [ms]", dims),
		Header: []string{"disk", "mapping", "Dim0", "Dim1", "Dim2"},
	}
	for _, g := range cfg.Disks {
		res[g.Name] = map[string][3]float64{}
		for _, kind := range mapping.Kinds() {
			e, v, err := buildExecutor(cfg, g, kind, dims)
			if err != nil {
				return nil, nil, err
			}
			var per [3]float64
			for dim := 0; dim < 3; dim++ {
				rng := rand.New(rand.NewSource(cfg.Seed + int64(dim)*1000))
				var total float64
				var cells int64
				for r := 0; r < cfg.Runs; r++ {
					v.Disk(0).RandomizePosition(rng)
					fixed, err := grid.RandomBeam(rng, dim)
					if err != nil {
						return nil, nil, err
					}
					st, err := e.Beam(dim, fixed)
					if err != nil {
						return nil, nil, err
					}
					total += st.TotalMs
					cells += st.Cells
				}
				per[dim] = total / float64(cells)
			}
			res[g.Name][kind.String()] = per
			t.Rows = append(t.Rows, []string{
				g.Name, kind.String(), f3(per[0]), f3(per[1]), f3(per[2]),
			})
		}
	}
	return t, res, nil
}

// Fig6bSelectivities is the paper's selectivity sweep (percent).
var Fig6bSelectivities = []float64{0.01, 0.1, 1, 5, 10, 20, 40, 60, 80, 100}

// Fig6bResult holds speedup vs Naive per disk, mapping, selectivity.
type Fig6bResult map[string]map[string]map[float64]float64

// Fig6bRanges reproduces Fig. 6(b): equal-side-length cube range
// queries at increasing selectivity; speedup of each mapping relative
// to Naive on the same boxes.
func Fig6bRanges(cfg Config) (*Table, Fig6bResult, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	dims := synthChunkDims(cfg.Scale)
	grid, err := dataset.NewGrid(dims...)
	if err != nil {
		return nil, nil, err
	}
	res := Fig6bResult{}
	t := &Table{
		ID:    "fig6b",
		Title: fmt.Sprintf("Synthetic 3-D range queries, %v cells/disk: speedup relative to Naive", dims),
	}
	t.Header = []string{"selectivity_%"}
	for _, g := range cfg.Disks {
		for _, kind := range mapping.Kinds() {
			if kind == mapping.Naive {
				continue
			}
			t.Header = append(t.Header, g.Name+"/"+kind.String())
		}
	}

	type cell struct{ total float64 }
	// totals[disk][kind][sel]
	totals := map[string]map[string]map[float64]*cell{}
	for _, g := range cfg.Disks {
		totals[g.Name] = map[string]map[float64]*cell{}
		for _, kind := range mapping.Kinds() {
			e, v, err := buildExecutor(cfg, g, kind, dims)
			if err != nil {
				return nil, nil, err
			}
			byKind := map[float64]*cell{}
			totals[g.Name][kind.String()] = byKind
			for _, sel := range Fig6bSelectivities {
				runs := rangeRuns(cfg, sel)
				// Identical boxes across mappings: seed depends only on
				// selectivity and run index.
				var total float64
				for r := 0; r < runs; r++ {
					rng := rand.New(rand.NewSource(cfg.Seed + int64(sel*1000) + int64(r)*7919))
					v.Disk(0).RandomizePosition(rng)
					lo, hi, err := grid.RandomRange(rng, sel/100)
					if err != nil {
						return nil, nil, err
					}
					st, err := e.Range(lo, hi)
					if err != nil {
						return nil, nil, err
					}
					total += st.TotalMs
				}
				byKind[sel] = &cell{total: total / float64(runs)}
			}
		}
	}
	for _, g := range cfg.Disks {
		res[g.Name] = map[string]map[float64]float64{}
		for _, kind := range mapping.Kinds() {
			if kind == mapping.Naive {
				continue
			}
			res[g.Name][kind.String()] = map[float64]float64{}
		}
	}
	for _, sel := range Fig6bSelectivities {
		row := []string{fmt.Sprintf("%g", sel)}
		for _, g := range cfg.Disks {
			naive := totals[g.Name][mapping.Naive.String()][sel].total
			for _, kind := range mapping.Kinds() {
				if kind == mapping.Naive {
					continue
				}
				sp := naive / totals[g.Name][kind.String()][sel].total
				res[g.Name][kind.String()][sel] = sp
				row = append(row, f2(sp))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, res, nil
}

// rangeRuns bounds repetitions: large selectivities cover most of the
// dataset, so extra random boxes add little and cost a lot.
func rangeRuns(cfg Config, selPct float64) int {
	switch {
	case selPct >= 40:
		return 1
	case selPct >= 5:
		return min(cfg.Runs, 3)
	default:
		return min(cfg.Runs, 5)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
