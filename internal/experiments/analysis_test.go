package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestDimensionSupportTable(t *testing.T) {
	tb, err := DimensionSupport(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: hundreds of adjacent blocks -> more than 10
	// dimensions. Find the D=512 row.
	found := false
	for _, row := range tb.Rows {
		if row[0] == "512" {
			n, err := strconv.Atoi(row[1])
			if err != nil || n <= 10 {
				t.Errorf("D=512 supports %s dims, want > 10", row[1])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("D=512 row missing")
	}
	// Monotone in D.
	prev := 0
	for _, row := range tb.Rows {
		if _, err := strconv.Atoi(row[0]); err != nil {
			continue // per-disk summary rows
		}
		n, _ := strconv.Atoi(row[1])
		if n < prev {
			t.Fatalf("Nmax not monotone at D=%s", row[0])
		}
		prev = n
	}
}

func TestSpaceEfficiencyTable(t *testing.T) {
	tb, err := SpaceEfficiency(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 5 {
		t.Fatal("too few rows")
	}
	pct := func(s string) int {
		v, err := strconv.Atoi(strings.TrimSuffix(s, "%"))
		if err != nil {
			t.Fatalf("bad percentage %q", s)
		}
		return v
	}
	for _, row := range tb.Rows {
		// Column pairs: naive-K0 waste, packed-K0 waste. Packing must
		// never lose, and all waste stays under the paper's 50% worst
		// case.
		for c := 1; c+1 < len(row); c += 2 {
			naive, packed := pct(row[c]), pct(row[c+1])
			if packed > naive {
				t.Errorf("S0=%s: packed waste %d%% worse than naive %d%%", row[0], packed, naive)
			}
			if naive > 50 || packed > 50 {
				t.Errorf("S0=%s: waste beyond the paper's 50%% bound", row[0])
			}
			if packed > 10 {
				t.Errorf("S0=%s: packed waste %d%%, expected single digits", row[0], packed)
			}
		}
	}
}
