package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/disk"
)

// fastCfg keeps integration runs quick: one small drive, scaled
// datasets, few repetitions.
func fastCfg() Config {
	return Config{
		Disks: []*disk.Geometry{disk.AtlasTenKIII()},
		Scale: 0.15,
		Runs:  3,
		Seed:  7,
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if len(c.Disks) != 2 || c.Scale != 1 || c.Runs != 15 || c.Seed == 0 {
		t.Errorf("defaults wrong: %+v", c)
	}
	bad := Config{Scale: 2, Runs: 1, Seed: 1, Disks: c.Disks}
	if err := bad.validate(); err == nil {
		t.Error("scale 2 accepted")
	}
	bad = Config{Scale: 0.5, Runs: 0, Seed: 1, Disks: c.Disks}
	bad.Runs = -1
	if err := bad.validate(); err == nil {
		t.Error("negative runs accepted")
	}
}

func TestTableString(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "bb") {
		t.Errorf("table render wrong:\n%s", s)
	}
}

func TestFig1aSeekProfile(t *testing.T) {
	tb, err := Fig1aSeekProfile(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 10 {
		t.Fatalf("too few distances: %d", len(tb.Rows))
	}
	// First rows (within the settle range) must show the plateau.
	if tb.Rows[0][1] != tb.Rows[1][1] {
		t.Errorf("no settle plateau: %v vs %v", tb.Rows[0], tb.Rows[1])
	}
}

func TestFig1bAdjacencyFlat(t *testing.T) {
	tb, err := Fig1bAdjacency(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 5 {
		t.Fatal("too few adjacency depths")
	}
	// Adjacent-block positioning must beat the rotational-latency
	// comparison column at every depth.
	for _, row := range tb.Rows {
		var adj, rot float64
		if _, err := sscan(row[1], &adj); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(row[2], &rot); err != nil {
			t.Fatal(err)
		}
		if adj >= rot {
			t.Errorf("k=%s: adjacent %.3f not better than rotational %.3f", row[0], adj, rot)
		}
	}
}

func TestFig6aSmoke(t *testing.T) {
	// Small-scale plumbing check. The MultiMap-vs-Naive orderings on
	// Dim1/Dim2 only emerge once the Dim1 stride spans a sizeable
	// fraction of a rotation — which is exactly why the paper uses
	// 259-cell chunks; see TestFig6aPaperScale.
	_, res, err := Fig6aBeams(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for diskName, byKind := range res {
		naive := byKind["Naive"]
		mm := byKind["MultiMap"]
		z := byKind["Z-order"]
		h := byKind["Hilbert"]
		// Dim0: Naive and MultiMap stream; curves are orders slower.
		if naive[0]*5 > z[0] || mm[0]*5 > h[0] {
			t.Errorf("%s: Dim0 streaming gap missing: naive=%.3f mm=%.3f z=%.3f h=%.3f",
				diskName, naive[0], mm[0], z[0], h[0])
		}
		// Even at toy scale MultiMap must beat the curve mappings on
		// the non-major dimensions.
		for d := 1; d < 3; d++ {
			if mm[d] >= z[d] || mm[d] >= h[d] {
				t.Errorf("%s: Dim%d MultiMap %.3f not better than curves (z %.3f h %.3f)",
					diskName, d, mm[d], z[d], h[d])
			}
		}
	}
}

func TestFig6aPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale fig6a takes ~20s")
	}
	cfg := Config{Disks: []*disk.Geometry{disk.AtlasTenKIII()}, Scale: 1, Runs: 5, Seed: 3}
	_, res, err := Fig6aBeams(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for diskName, byKind := range res {
		naive := byKind["Naive"]
		mm := byKind["MultiMap"]
		z := byKind["Z-order"]
		h := byKind["Hilbert"]
		// Streaming on Dim0: two orders of magnitude over the curves.
		if naive[0]*50 > z[0] || mm[0]*50 > h[0] {
			t.Errorf("%s: Dim0 gap not ~2 orders: naive=%.3f mm=%.3f z=%.3f h=%.3f",
				diskName, naive[0], mm[0], z[0], h[0])
		}
		if mm[0] > naive[0]*1.5 {
			t.Errorf("%s: MultiMap Dim0 %.3f does not match Naive streaming %.3f", diskName, mm[0], naive[0])
		}
		// Dim1/Dim2: MultiMap strictly best, as in Fig. 6(a).
		for d := 1; d < 3; d++ {
			if mm[d] >= naive[d] || mm[d] >= z[d] || mm[d] >= h[d] {
				t.Errorf("%s: Dim%d MultiMap %.3f not best (naive %.3f z %.3f h %.3f)",
					diskName, d, mm[d], naive[d], z[d], h[d])
			}
		}
	}
}

func TestFig6bSmoke(t *testing.T) {
	_, res, err := Fig6bRanges(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for diskName, byKind := range res {
		for kind, bySel := range byKind {
			for sel, sp := range bySel {
				if sp <= 0 {
					t.Errorf("%s/%s: non-positive speedup at %g%%", diskName, kind, sel)
				}
			}
		}
	}
}

func TestFig6bPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale fig6b takes minutes")
	}
	cfg := Config{Disks: []*disk.Geometry{disk.AtlasTenKIII()}, Scale: 1, Runs: 3, Seed: 3}
	_, res, err := Fig6bRanges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for diskName, byKind := range res {
		mm := byKind["MultiMap"]
		best := 0.0
		for sel, sp := range mm {
			if sp > best {
				best = sp
			}
			// Fig. 6(b): MultiMap's worst case in the paper is 6% slower
			// than Naive in the 10-40% band on one disk; our simulator
			// reproduces the dip slightly deeper (~0.75) because Naive's
			// mid-selectivity runs coalesce into perfectly sequential
			// sweeps with no per-request overhead.
			if sp < 0.7 {
				t.Errorf("%s: MultiMap speedup %.2f at %g%%, never below ~0.9 in the paper",
					diskName, sp, sel)
			}
		}
		if best < 1.5 {
			t.Errorf("%s: MultiMap max speedup %.2f, paper reaches ~3.5", diskName, best)
		}
		// Convergence at 100% selectivity.
		for kind, bySel := range byKind {
			if sp := bySel[100]; sp < 0.5 || sp > 2 {
				t.Errorf("%s/%s: no convergence at 100%% (speedup %.2f)", diskName, kind, sp)
			}
		}
	}
}

func TestFig7aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7a shape needs the depth-6 tree (~10s)")
	}
	cfg := Config{Disks: []*disk.Geometry{disk.AtlasTenKIII()}, Scale: 0.5, Runs: 8, Seed: 7}
	_, res, err := Fig7aQuakeBeams(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for diskName, byKind := range res {
		naive := byKind["Naive"]
		mm := byKind["MultiMap"]
		z := byKind["Z-order"]
		h := byKind["Hilbert"]
		// MultiMap best on every axis (Fig. 7a), with X matching
		// Naive's streaming.
		for axis := 0; axis < 3; axis++ {
			if mm[axis] >= z[axis] || mm[axis] >= h[axis] {
				t.Errorf("%s: axis %d MultiMap %.3f not better than curves (z %.3f h %.3f)",
					diskName, axis, mm[axis], z[axis], h[axis])
			}
		}
		for axis := 1; axis < 3; axis++ {
			if mm[axis] >= naive[axis] {
				t.Errorf("%s: axis %d MultiMap %.3f not better than Naive %.3f",
					diskName, axis, mm[axis], naive[axis])
			}
		}
		if mm[0] > naive[0]*1.5 {
			t.Errorf("%s: X beam MultiMap %.3f vs Naive %.3f: streaming parity lost",
				diskName, mm[0], naive[0])
		}
	}
}

func TestFig7bRuns(t *testing.T) {
	tb, res, err := Fig7bQuakeRanges(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(Fig7bSelectivities) {
		t.Fatalf("got %d rows, want %d", len(tb.Rows), len(Fig7bSelectivities))
	}
	for diskName, byKind := range res {
		for kind, bySel := range byKind {
			for sel, ms := range bySel {
				if ms <= 0 {
					t.Errorf("%s/%s: selectivity %g: non-positive time", diskName, kind, sel)
				}
			}
		}
	}
}

func TestFig8Shape(t *testing.T) {
	cfg := fastCfg()
	cfg.Scale = 0.5 // OLAP orderings need realistic physical spread
	_, res, err := Fig8OLAP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for diskName, byKind := range res {
		naive := byKind["Naive"]
		mm := byKind["MultiMap"]
		z := byKind["Z-order"]
		if naive["Q1"]*5 > z["Q1"] {
			t.Errorf("%s: Q1 Naive %.3f vs Z %.3f: streaming gap missing", diskName, naive["Q1"], z["Q1"])
		}
		if mm["Q2"] >= naive["Q2"] || mm["Q2"] >= z["Q2"] {
			t.Errorf("%s: Q2 MultiMap %.3f not best (naive %.3f z %.3f)",
				diskName, mm["Q2"], naive["Q2"], z["Q2"])
		}
		if mm["Q5"] >= naive["Q5"] {
			t.Errorf("%s: Q5 MultiMap %.3f not better than Naive %.3f",
				diskName, mm["Q5"], naive["Q5"])
		}
	}
}

func TestFig8PaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale fig8 takes ~30s")
	}
	cfg := Config{Disks: []*disk.Geometry{disk.AtlasTenKIII()}, Scale: 1, Runs: 2, Seed: 3}
	_, res, err := Fig8OLAP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for diskName, byKind := range res {
		naive := byKind["Naive"]
		mm := byKind["MultiMap"]
		z := byKind["Z-order"]
		h := byKind["Hilbert"]
		// Q1: Naive and MultiMap two orders ahead of the curves.
		if naive["Q1"]*50 > z["Q1"] || mm["Q1"]*50 > h["Q1"] {
			t.Errorf("%s: Q1 streaming gap not ~2 orders: %v", diskName, byKind)
		}
		// Q2: curves beat Naive; MultiMap best.
		if z["Q2"] >= naive["Q2"] || h["Q2"] >= naive["Q2"] {
			t.Errorf("%s: Q2 curves should beat Naive: %v", diskName, byKind)
		}
		if mm["Q2"] >= z["Q2"] || mm["Q2"] >= h["Q2"] {
			t.Errorf("%s: Q2 MultiMap not best: %v", diskName, byKind)
		}
		// Q3/Q4: Naive beats curves; MultiMap stays in Naive's league.
		// (Whether MultiMap lands slightly above or below Naive depends
		// on whether the random year window straddles a basic-cube
		// boundary along OrderDay; the paper's averages put it slightly
		// below.)
		for _, q := range []string{"Q3", "Q4"} {
			if naive[q] >= z[q] || naive[q] >= h[q] {
				t.Errorf("%s: %s Naive should beat curves: %v", diskName, q, byKind)
			}
			if mm[q] > naive[q]*1.6 {
				t.Errorf("%s: %s MultiMap %.3f vs Naive %.3f", diskName, q, mm[q], naive[q])
			}
		}
		// Q5: MultiMap best, clearly ahead of Hilbert and Naive.
		if mm["Q5"] >= h["Q5"] || mm["Q5"] >= naive["Q5"] {
			t.Errorf("%s: Q5 MultiMap not best: %v", diskName, byKind)
		}
	}
}

// sscan parses one float rendered by the table formatter.
func sscan(s string, out *float64) (int, error) {
	return fmt.Sscanf(s, "%f", out)
}
