package experiments

import (
	"fmt"

	"repro/internal/core"
)

// DimensionSupport tabulates §4.3's Equation 5: the maximum number of
// dimensions a disk supports as a function of its adjacency depth D,
// assuming equal-length middle dimensions. The paper: "For modern
// disks, D is typically on the order of hundreds, allowing mapping for
// more than 10 dimensions."
func DimensionSupport(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "eq5",
		Title:  "Dimensions supported vs adjacency depth (Eq. 5: Nmax = 2 + log2 D)",
		Header: []string{"D", "Nmax"},
	}
	for _, d := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", core.MaxDims(d)),
		})
	}
	for _, g := range cfg.Disks {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s (D<=%d)", g.Name, g.AdjSpan()),
			fmt.Sprintf("%d", core.MaxDims(g.AdjSpan())),
		})
	}
	return t, nil
}

// SpaceEfficiency tabulates §4.4's wasted-space analysis: the fraction
// of track capacity MultiMap strands as a function of the dataset's
// Dim0 length, on each disk's outermost and innermost zones, with and
// without the packing-aware K0 choice. The paper's worst case —
// (T mod K0)/T up to 50% — is what the packing pass avoids.
func SpaceEfficiency(cfg Config) (*Table, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "space",
		Title: "Track space stranded by MultiMap vs dataset Dim0 length (§4.4)",
	}
	t.Header = []string{"S0"}
	for _, g := range cfg.Disks {
		outer := g.ZoneByIndex(0).SectorsPerTrack
		t.Header = append(t.Header,
			fmt.Sprintf("%s T=%d naive-K0", g.Name, outer),
			fmt.Sprintf("%s T=%d packed-K0", g.Name, outer),
		)
	}
	for _, s0 := range []int{64, 128, 259, 400, 591, 800, 1200} {
		row := []string{fmt.Sprintf("%d", s0)}
		for _, g := range cfg.Disks {
			tlen := g.ZoneByIndex(0).SectorsPerTrack
			// Naive choice: K0 = min(S0, T), one cube per slot count.
			k0 := s0
			if k0 > tlen {
				k0 = tlen
			}
			row = append(row, wastePct(tlen, k0))
			// Packing-aware choice, as ChooseBasicCube makes it.
			spec, err := core.ChooseBasicCube([]int{s0, 1 << 20, 1 << 20},
				tlen, 128, g.TotalTracks())
			if err != nil {
				return nil, err
			}
			row = append(row, wastePct(tlen, spec.K[0]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func wastePct(trackLen, k0 int) string {
	used := (trackLen / k0) * k0
	return fmt.Sprintf("%.0f%%", 100*float64(trackLen-used)/float64(trackLen))
}
