package experiments

import (
	"strings"
	"testing"
)

// TestServiceThroughput runs the concurrent serving benchmark at a
// small scale, cache off and on, and checks its invariants: every query
// completes, attribution reaches the table, and the cache absorbs part
// of the hot-region workload.
func TestServiceThroughput(t *testing.T) {
	cfg := fastCfg()
	cfg.Clients = 4
	cfg.Queries = 8
	cfg.ChunkCells = 512

	tb, byDisk, err := ServiceThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(byDisk) != len(cfg.Disks) {
		t.Fatalf("want one run per disk, got %d for %d disks", len(byDisk), len(cfg.Disks))
	}
	runs, ok := byDisk[cfg.Disks[0].Name]
	if !ok || len(runs) != 1 {
		t.Fatalf("want one single-shard run for %s: %v", cfg.Disks[0].Name, byDisk)
	}
	res := runs[0]
	if res.Shards != 1 {
		t.Fatalf("default run sharded: %+v", res)
	}
	if res.Queries != 32 || res.QueriesPerSec <= 0 || res.MsPerCell <= 0 {
		t.Fatalf("cold result wrong: %+v", res)
	}
	if res.HitRate != 0 {
		t.Fatalf("cache off but hit rate %v", res.HitRate)
	}
	if len(res.PerSession) != 4 {
		t.Fatalf("want 4 session stats, got %d", len(res.PerSession))
	}
	var cells int64
	for _, st := range res.PerSession {
		cells += st.Cells
	}
	if cells != attributedCells(res) {
		t.Fatalf("session cells %d != attributed %d", cells, attributedCells(res))
	}
	if !strings.Contains(tb.String(), "q/s") {
		t.Fatalf("table missing throughput column:\n%s", tb)
	}

	cfg.CacheBlocks = 1 << 22
	_, warmByDisk, err := ServiceThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := warmByDisk[cfg.Disks[0].Name][0]
	if warm.HitRate <= 0 || warm.HitRate > 1 {
		t.Fatalf("hot-region workload should hit the cache: %+v", warm)
	}
	if warm.IssuedRequests >= res.IssuedRequests {
		t.Fatalf("cache did not reduce issued requests: %d vs %d",
			warm.IssuedRequests, res.IssuedRequests)
	}

	bad := cfg
	bad.Clients = -1
	if _, _, err := ServiceThroughput(bad); err == nil {
		t.Fatal("negative clients accepted")
	}
	bad = cfg
	bad.WriteFraction = 1
	if _, _, err := ServiceThroughput(bad); err == nil {
		t.Fatal("write fraction 1 accepted")
	}
}

// TestServiceThroughputWithWrites mixes update bursts into the cached
// workload: the writes must reach the service as write ops, invalidate
// hot cached extents, and drag the hit rate below the read-only run's.
func TestServiceThroughputWithWrites(t *testing.T) {
	cfg := fastCfg()
	cfg.Clients = 4
	cfg.Queries = 8
	cfg.ChunkCells = 512
	cfg.CacheBlocks = 1 << 22

	_, readOnly, err := ServiceThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ro := readOnly[cfg.Disks[0].Name][0]

	cfg.WriteFraction = 0.3
	tb, mixedByDisk, err := ServiceThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mixed := mixedByDisk[cfg.Disks[0].Name][0]
	if mixed.WriteOps == 0 || mixed.BlocksWritten == 0 {
		t.Fatalf("write fraction 0.3 produced no write ops: %+v", mixed)
	}
	if mixed.Invalidated == 0 {
		t.Fatalf("hot-region writes invalidated nothing: %+v", mixed)
	}
	if mixed.HitRate >= ro.HitRate {
		t.Fatalf("hit rate did not fall under writes: %.3f (mixed) vs %.3f (read-only)",
			mixed.HitRate, ro.HitRate)
	}
	var writes, attrWrites int64
	for _, st := range mixed.PerSession {
		writes += st.Writes
	}
	for _, tot := range mixed.PerShard {
		attrWrites += tot.Attributed.Writes
	}
	if writes != attrWrites {
		t.Fatalf("session writes %d != attributed %d", writes, attrWrites)
	}
	if !strings.Contains(tb.String(), "inval blk") {
		t.Fatalf("table missing invalidation column:\n%s", tb)
	}
}

// attributedCells sums the attributed cell counts over a run's shards.
func attributedCells(r ServeRun) int64 {
	var n int64
	for _, tot := range r.PerShard {
		n += tot.Attributed.Cells
	}
	return n
}

// TestServiceThroughputSharded runs the scaling ladder at up to 4
// shards with mixed reads and writes: the ladder rows must appear, the
// queries must complete on every rung, and on each rung the per-session
// stats must still sum to the per-shard attributed totals.
func TestServiceThroughputSharded(t *testing.T) {
	cfg := fastCfg()
	cfg.Clients = 4
	cfg.Queries = 6
	cfg.ChunkCells = 512
	cfg.CacheBlocks = 1 << 22
	cfg.WriteFraction = 0.25
	cfg.Shards = 4

	tb, byDisk, err := ServiceThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runs := byDisk[cfg.Disks[0].Name]
	if len(runs) != 3 {
		t.Fatalf("want rungs at 1/2/4 shards, got %d runs", len(runs))
	}
	for i, want := range []int{1, 2, 4} {
		r := runs[i]
		if r.Shards != want {
			t.Fatalf("rung %d at %d shards, want %d", i, r.Shards, want)
		}
		if len(r.PerShard) != want {
			t.Fatalf("rung %d has %d shard totals, want %d", i, len(r.PerShard), want)
		}
		if r.Queries != cfg.Clients*cfg.Queries || r.QueriesPerSec <= 0 {
			t.Fatalf("rung %d incomplete: %+v", i, r)
		}
		var cells, attr int64
		for _, st := range r.PerSession {
			cells += st.Cells
		}
		for _, tot := range r.PerShard {
			attr += tot.Attributed.Cells
		}
		if cells != attr {
			t.Fatalf("rung %d: session cells %d != attributed %d", i, cells, attr)
		}
		if want > 1 {
			served, wrote := 0, 0
			for _, tot := range r.PerShard {
				if tot.Batches > 0 {
					served++
				}
				if tot.WriteOps > 0 {
					wrote++
				}
			}
			if served < 2 {
				t.Fatalf("rung %d: only %d shards served work", i, served)
			}
			// Write bursts are laid out per shard slab, so the write
			// columns measure more than shard 0.
			if wrote < 2 {
				t.Fatalf("rung %d: only %d shards served write ops", i, wrote)
			}
		}
	}
	if !strings.Contains(tb.String(), "shards") {
		t.Fatalf("table missing shards column:\n%s", tb)
	}
}
