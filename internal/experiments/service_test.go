package experiments

import (
	"strings"
	"testing"
)

// TestServiceThroughput runs the concurrent serving benchmark at a
// small scale, cache off and on, and checks its invariants: every query
// completes, attribution reaches the table, and the cache absorbs part
// of the hot-region workload.
func TestServiceThroughput(t *testing.T) {
	cfg := fastCfg()
	cfg.Clients = 4
	cfg.Queries = 8
	cfg.ChunkCells = 512

	tb, byDisk, err := ServiceThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(byDisk) != len(cfg.Disks) {
		t.Fatalf("want one run per disk, got %d for %d disks", len(byDisk), len(cfg.Disks))
	}
	res, ok := byDisk[cfg.Disks[0].Name]
	if !ok {
		t.Fatalf("no run for %s: %v", cfg.Disks[0].Name, byDisk)
	}
	if res.Queries != 32 || res.QueriesPerSec <= 0 || res.MsPerCell <= 0 {
		t.Fatalf("cold result wrong: %+v", res)
	}
	if res.HitRate != 0 {
		t.Fatalf("cache off but hit rate %v", res.HitRate)
	}
	if len(res.PerSession) != 4 {
		t.Fatalf("want 4 session stats, got %d", len(res.PerSession))
	}
	var cells int64
	for _, st := range res.PerSession {
		cells += st.Cells
	}
	if cells != res.Totals.Attributed.Cells {
		t.Fatalf("session cells %d != attributed %d", cells, res.Totals.Attributed.Cells)
	}
	if !strings.Contains(tb.String(), "q/s") {
		t.Fatalf("table missing throughput column:\n%s", tb)
	}

	cfg.CacheBlocks = 1 << 22
	_, warmByDisk, err := ServiceThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := warmByDisk[cfg.Disks[0].Name]
	if warm.HitRate <= 0 || warm.HitRate > 1 {
		t.Fatalf("hot-region workload should hit the cache: %+v", warm)
	}
	if warm.IssuedRequests >= res.IssuedRequests {
		t.Fatalf("cache did not reduce issued requests: %d vs %d",
			warm.IssuedRequests, res.IssuedRequests)
	}

	bad := cfg
	bad.Clients = -1
	if _, _, err := ServiceThroughput(bad); err == nil {
		t.Fatal("negative clients accepted")
	}
	bad = cfg
	bad.WriteFraction = 1
	if _, _, err := ServiceThroughput(bad); err == nil {
		t.Fatal("write fraction 1 accepted")
	}
}

// TestServiceThroughputWithWrites mixes update bursts into the cached
// workload: the writes must reach the service as write ops, invalidate
// hot cached extents, and drag the hit rate below the read-only run's.
func TestServiceThroughputWithWrites(t *testing.T) {
	cfg := fastCfg()
	cfg.Clients = 4
	cfg.Queries = 8
	cfg.ChunkCells = 512
	cfg.CacheBlocks = 1 << 22

	_, readOnly, err := ServiceThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ro := readOnly[cfg.Disks[0].Name]

	cfg.WriteFraction = 0.3
	tb, mixedByDisk, err := ServiceThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mixed := mixedByDisk[cfg.Disks[0].Name]
	if mixed.WriteOps == 0 || mixed.BlocksWritten == 0 {
		t.Fatalf("write fraction 0.3 produced no write ops: %+v", mixed)
	}
	if mixed.Invalidated == 0 {
		t.Fatalf("hot-region writes invalidated nothing: %+v", mixed)
	}
	if mixed.HitRate >= ro.HitRate {
		t.Fatalf("hit rate did not fall under writes: %.3f (mixed) vs %.3f (read-only)",
			mixed.HitRate, ro.HitRate)
	}
	var writes int64
	for _, st := range mixed.PerSession {
		writes += st.Writes
	}
	if writes != mixed.Totals.Attributed.Writes {
		t.Fatalf("session writes %d != attributed %d", writes, mixed.Totals.Attributed.Writes)
	}
	if !strings.Contains(tb.String(), "inval blk") {
		t.Fatalf("table missing invalidation column:\n%s", tb)
	}
}
