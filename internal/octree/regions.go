package octree

import (
	"fmt"
	"sort"
)

// Region is a grown uniform area (§4.5): an axis-aligned box of
// equal-depth leaves that MultiMap can treat as a grid. Lo and Hi are
// in leaf-side units at LeafDepth (Hi exclusive).
type Region struct {
	LeafDepth int
	Lo, Hi    [3]int
}

// GridDims returns the region's grid shape in cells (leaves).
func (r Region) GridDims() []int {
	return []int{r.Hi[0] - r.Lo[0], r.Hi[1] - r.Lo[1], r.Hi[2] - r.Lo[2]}
}

// Leaves returns the region's cell count.
func (r Region) Leaves() int64 {
	d := r.GridDims()
	return int64(d[0]) * int64(d[1]) * int64(d[2])
}

// ContainsLeaf reports whether a leaf (with the region's depth) lies in
// the region.
func (r Region) ContainsLeaf(l Leaf, maxDepth int) bool {
	if l.Depth != r.LeafDepth {
		return false
	}
	side := l.Side(maxDepth)
	for i := 0; i < 3; i++ {
		u := l.Anchor[i] / side
		if u < r.Lo[i] || u >= r.Hi[i] {
			return false
		}
	}
	return true
}

// GrowRegions merges uniform subtrees of equal leaf depth (equal
// density, §4.5: "incorporating its neighbors of similar density ...
// we just need to compare the levels of the elements") into maximal
// axis-aligned boxes. Subtrees whose boxes cannot merge stay as
// single-subtree regions. minLeaves filters out regions too small to
// fill a basic cube profitably; they fall back to linear mapping.
func GrowRegions(subs []Subtree, maxDepth int, minLeaves int64) (regions []Region, rest []Subtree) {
	byDepth := map[int][]Region{}
	for _, s := range subs {
		leafSide := 1 << uint(maxDepth-s.LeafDepth)
		span := 1 << uint(s.LeafDepth-s.Depth) // leaves per axis
		var r Region
		r.LeafDepth = s.LeafDepth
		for i := 0; i < 3; i++ {
			r.Lo[i] = s.Anchor[i] / leafSide
			r.Hi[i] = r.Lo[i] + span
		}
		byDepth[s.LeafDepth] = append(byDepth[s.LeafDepth], r)
	}
	var depths []int
	for d := range byDepth {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	var all []Region
	for _, d := range depths {
		all = append(all, mergeBoxes(byDepth[d])...)
	}
	// Large regions are mapped with MultiMap; the rest revert to the
	// linear layout (§4.5 "as a last resort").
	for _, r := range all {
		if r.Leaves() >= minLeaves {
			regions = append(regions, r)
		} else {
			// Recover the constituent subtrees for the remainder list.
			for _, s := range subs {
				leafSide := 1 << uint(maxDepth-s.LeafDepth)
				if s.LeafDepth == r.LeafDepth &&
					s.Anchor[0]/leafSide >= r.Lo[0] && s.Anchor[0]/leafSide < r.Hi[0] &&
					s.Anchor[1]/leafSide >= r.Lo[1] && s.Anchor[1]/leafSide < r.Hi[1] &&
					s.Anchor[2]/leafSide >= r.Lo[2] && s.Anchor[2]/leafSide < r.Hi[2] {
					rest = append(rest, s)
				}
			}
		}
	}
	return regions, rest
}

// mergeBoxes repeatedly merges pairs of boxes that are identical in two
// axes and adjacent in the third, until no merge applies.
func mergeBoxes(boxes []Region) []Region {
	merged := true
	for merged {
		merged = false
	outer:
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes); j++ {
				if m, ok := tryMerge(boxes[i], boxes[j]); ok {
					boxes[i] = m
					boxes = append(boxes[:j], boxes[j+1:]...)
					merged = true
					break outer
				}
			}
		}
	}
	// Deterministic order for callers.
	sort.Slice(boxes, func(i, j int) bool {
		a, b := boxes[i], boxes[j]
		if a.Lo[2] != b.Lo[2] {
			return a.Lo[2] < b.Lo[2]
		}
		if a.Lo[1] != b.Lo[1] {
			return a.Lo[1] < b.Lo[1]
		}
		return a.Lo[0] < b.Lo[0]
	})
	return boxes
}

func tryMerge(a, b Region) (Region, bool) {
	if a.LeafDepth != b.LeafDepth {
		return Region{}, false
	}
	for axis := 0; axis < 3; axis++ {
		same := true
		for i := 0; i < 3; i++ {
			if i == axis {
				continue
			}
			if a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		if a.Hi[axis] == b.Lo[axis] {
			a.Hi[axis] = b.Hi[axis]
			return a, true
		}
		if b.Hi[axis] == a.Lo[axis] {
			a.Lo[axis] = b.Lo[axis]
			return a, true
		}
	}
	return Region{}, false
}

// CoverageReport summarizes how much of the dataset the grown regions
// capture — the paper reports the earthquake dataset has roughly four
// uniform subareas, two covering more than 60% of all elements.
type CoverageReport struct {
	TotalLeaves  int64
	Regions      int
	RegionLeaves int64
	TopTwoLeaves int64
	RestSubtrees int
	RestLeaves   int64
}

// Coverage computes the report for a tree and its grown regions.
func Coverage(t *Tree, regions []Region, rest []Subtree) CoverageReport {
	rep := CoverageReport{TotalLeaves: t.NumLeaves(), Regions: len(regions), RestSubtrees: len(rest)}
	sizes := make([]int64, 0, len(regions))
	for _, r := range regions {
		n := r.Leaves()
		rep.RegionLeaves += n
		sizes = append(sizes, n)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] > sizes[j] })
	for i := 0; i < len(sizes) && i < 2; i++ {
		rep.TopTwoLeaves += sizes[i]
	}
	for _, s := range rest {
		rep.RestLeaves += s.Leaves
	}
	return rep
}

func (r CoverageReport) String() string {
	return fmt.Sprintf("%d regions covering %d/%d leaves (top two: %.0f%%), %d remainder subtrees (%d leaves)",
		r.Regions, r.RegionLeaves, r.TotalLeaves,
		100*float64(r.TopTwoLeaves)/float64(r.TotalLeaves), r.RestSubtrees, r.RestLeaves)
}
