// Package octree implements the index structure behind the paper's
// earthquake dataset (§5.4): an octree whose leaf nodes are the stored
// elements, plus the §4.5 machinery for non-grid datasets — finding
// maximal uniform subtrees and growing them into grid-like regions that
// MultiMap can map.
package octree

import "fmt"

// Leaf is one stored element: an axis-aligned cube of the domain.
type Leaf struct {
	// Anchor is the leaf's minimum corner in finest-resolution units
	// (the domain is a cube of side 2^MaxDepth units).
	Anchor [3]int
	// Depth is the leaf's depth; its side is 2^(MaxDepth-Depth) units.
	Depth int
}

// Side returns the leaf's side length in finest units.
func (l Leaf) Side(maxDepth int) int { return 1 << uint(maxDepth-l.Depth) }

// Tree is an octree over a cubic domain of side 2^MaxDepth finest
// units. Construction is either from a point set (BuildFromPoints) or
// from a refinement function (BuildFromDepthFn), the latter standing in
// for loading a pre-built index like the Quake project's etree.
type Tree struct {
	maxDepth int
	root     *node
	leaves   int64
}

type node struct {
	depth    int
	anchor   [3]int
	children *[8]*node // nil for leaves
	points   int       // points contained (point-built trees)
}

// MaxDepth returns the tree's maximum depth.
func (t *Tree) MaxDepth() int { return t.maxDepth }

// NumLeaves returns the number of leaf elements.
func (t *Tree) NumLeaves() int64 { return t.leaves }

// DomainSide returns the domain's side in finest units.
func (t *Tree) DomainSide() int { return 1 << uint(t.maxDepth) }

// Point is a dataset point in finest-resolution coordinates.
type Point [3]int

// BuildFromPoints builds the octree by splitting any node holding more
// than leafCap points until maxDepth.
func BuildFromPoints(points []Point, leafCap, maxDepth int) (*Tree, error) {
	if leafCap < 1 {
		return nil, fmt.Errorf("octree: leaf capacity must be positive, got %d", leafCap)
	}
	if maxDepth < 1 || maxDepth > 20 {
		return nil, fmt.Errorf("octree: max depth %d out of [1,20]", maxDepth)
	}
	side := 1 << uint(maxDepth)
	for _, p := range points {
		for i := 0; i < 3; i++ {
			if p[i] < 0 || p[i] >= side {
				return nil, fmt.Errorf("octree: point %v outside domain [0,%d)^3", p, side)
			}
		}
	}
	t := &Tree{maxDepth: maxDepth}
	t.root = t.buildNode(points, 0, [3]int{0, 0, 0}, leafCap)
	t.leaves = countLeaves(t.root)
	return t, nil
}

func (t *Tree) buildNode(points []Point, depth int, anchor [3]int, leafCap int) *node {
	n := &node{depth: depth, anchor: anchor, points: len(points)}
	if len(points) <= leafCap || depth == t.maxDepth {
		return n
	}
	half := 1 << uint(t.maxDepth-depth-1)
	var buckets [8][]Point
	for _, p := range points {
		idx := 0
		for i := 0; i < 3; i++ {
			if p[i] >= anchor[i]+half {
				idx |= 1 << uint(i)
			}
		}
		buckets[idx] = append(buckets[idx], p)
	}
	n.children = new([8]*node)
	for idx := 0; idx < 8; idx++ {
		ca := anchor
		for i := 0; i < 3; i++ {
			if idx&(1<<uint(i)) != 0 {
				ca[i] += half
			}
		}
		n.children[idx] = t.buildNode(buckets[idx], depth+1, ca, leafCap)
	}
	return n
}

// DepthFn prescribes the leaf depth at a finest-unit coordinate.
// BuildFromDepthFn refines a node while its target depth anywhere
// inside exceeds the node's depth.
type DepthFn func(x, y, z int) int

// BuildFromDepthFn deterministically reconstructs an octree with the
// given refinement structure. fn must return depths in [0, maxDepth].
func BuildFromDepthFn(fn DepthFn, maxDepth int) (*Tree, error) {
	if maxDepth < 1 || maxDepth > 20 {
		return nil, fmt.Errorf("octree: max depth %d out of [1,20]", maxDepth)
	}
	t := &Tree{maxDepth: maxDepth}
	t.root = t.buildDepthNode(fn, 0, [3]int{0, 0, 0})
	t.leaves = countLeaves(t.root)
	return t, nil
}

func (t *Tree) buildDepthNode(fn DepthFn, depth int, anchor [3]int) *node {
	n := &node{depth: depth, anchor: anchor}
	if depth == t.maxDepth || !t.needsSplit(fn, depth, anchor) {
		return n
	}
	half := 1 << uint(t.maxDepth-depth-1)
	n.children = new([8]*node)
	for idx := 0; idx < 8; idx++ {
		ca := anchor
		for i := 0; i < 3; i++ {
			if idx&(1<<uint(i)) != 0 {
				ca[i] += half
			}
		}
		n.children[idx] = t.buildDepthNode(fn, depth+1, ca)
	}
	return n
}

// needsSplit samples the target depth across the node's extent. The
// depth functions we use are piecewise constant on power-of-two boxes,
// so sampling the 8 child anchors plus the center is exact.
func (t *Tree) needsSplit(fn DepthFn, depth int, anchor [3]int) bool {
	side := 1 << uint(t.maxDepth-depth)
	half := side / 2
	offs := []int{0, half}
	if half == 0 {
		offs = []int{0}
	}
	for _, dx := range offs {
		for _, dy := range offs {
			for _, dz := range offs {
				if fn(anchor[0]+dx, anchor[1]+dy, anchor[2]+dz) > depth {
					return true
				}
			}
		}
	}
	return false
}

func countLeaves(n *node) int64 {
	if n.children == nil {
		return 1
	}
	var c int64
	for _, ch := range n.children {
		c += countLeaves(ch)
	}
	return c
}

// Leaves appends every leaf to dst and returns it, in child order
// (Morton order of the hierarchy).
func (t *Tree) Leaves(dst []Leaf) []Leaf {
	var walk func(n *node)
	walk = func(n *node) {
		if n.children == nil {
			dst = append(dst, Leaf{Anchor: n.anchor, Depth: n.depth})
			return
		}
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(t.root)
	return dst
}

// LeafAt returns the leaf containing the finest-unit coordinate.
func (t *Tree) LeafAt(x, y, z int) (Leaf, error) {
	side := t.DomainSide()
	if x < 0 || x >= side || y < 0 || y >= side || z < 0 || z >= side {
		return Leaf{}, fmt.Errorf("octree: coordinate (%d,%d,%d) outside domain", x, y, z)
	}
	n := t.root
	for n.children != nil {
		half := 1 << uint(t.maxDepth-n.depth-1)
		idx := 0
		if x >= n.anchor[0]+half {
			idx |= 1
		}
		if y >= n.anchor[1]+half {
			idx |= 2
		}
		if z >= n.anchor[2]+half {
			idx |= 4
		}
		n = n.children[idx]
	}
	return Leaf{Anchor: n.anchor, Depth: n.depth}, nil
}

// Subtree is a maximal internal node whose leaves all share one depth:
// a uniform grid of 8^(LeafDepth-Depth) elements (§4.5's "largest
// sub-trees on which all the leaf nodes are at the same level").
type Subtree struct {
	Anchor    [3]int
	Depth     int // subtree root depth
	LeafDepth int // common depth of all leaves underneath
	Leaves    int64
}

// UniformSubtrees returns the maximal uniform subtrees, in Morton
// order. A leaf node is itself a (degenerate) uniform subtree.
func (t *Tree) UniformSubtrees() []Subtree {
	var out []Subtree
	var walk func(n *node) (uniformDepth int, ok bool)
	walk = func(n *node) (int, bool) {
		if n.children == nil {
			return n.depth, true
		}
		depth := -1
		uniform := true
		type res struct {
			d  int
			ok bool
		}
		results := make([]res, 8)
		for i, ch := range n.children {
			d, ok := walk(ch)
			results[i] = res{d, ok}
			if !ok {
				uniform = false
			} else if depth == -1 {
				depth = d
			} else if d != depth {
				uniform = false
			}
		}
		if uniform {
			return depth, true
		}
		// This node is mixed: each uniform child subtree is maximal.
		for i, ch := range n.children {
			if results[i].ok {
				side := int64(1) << uint(3*(results[i].d-ch.depth))
				out = append(out, Subtree{
					Anchor: ch.anchor, Depth: ch.depth,
					LeafDepth: results[i].d, Leaves: side,
				})
			}
		}
		return 0, false
	}
	if d, ok := walk(t.root); ok {
		out = append(out, Subtree{
			Anchor: t.root.anchor, Depth: 0, LeafDepth: d,
			Leaves: int64(1) << uint(3*d),
		})
	}
	return out
}
