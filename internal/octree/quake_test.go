package octree

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
	"repro/internal/mapping"
)

func quakeFixture(t *testing.T) (*lvm.Volume, *Tree) {
	t.Helper()
	v, err := lvm.New(32, disk.MediumTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewQuakeTree(5)
	if err != nil {
		t.Fatal(err)
	}
	return v, tr
}

func allQuakeStores(t *testing.T) map[string]*Store {
	t.Helper()
	out := map[string]*Store{}
	for _, k := range mapping.Kinds() {
		v, tr := quakeFixture(t)
		s, err := NewStore(v, tr, k, StoreOptions{DiskIdx: 0})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		out[k.String()] = s
	}
	return out
}

func TestQuakeStoreBijective(t *testing.T) {
	for name, s := range allQuakeStores(t) {
		seen := map[int64]bool{}
		for _, lf := range s.tree.Leaves(nil) {
			vlbn, err := s.LeafVLBN(lf)
			if err != nil {
				t.Fatalf("%s: LeafVLBN(%+v): %v", name, lf, err)
			}
			if seen[vlbn] {
				t.Fatalf("%s: block %d assigned twice", name, vlbn)
			}
			seen[vlbn] = true
		}
	}
}

func TestQuakeStoreUnknownLeaf(t *testing.T) {
	for name, s := range allQuakeStores(t) {
		if _, err := s.LeafVLBN(Leaf{Anchor: [3]int{1, 1, 1}, Depth: 5}); err == nil {
			// (1,1,1) at depth 5 exists only if region A covers it —
			// it does (z=1 < 8), so pick an impossible one instead.
			if _, err := s.LeafVLBN(Leaf{Anchor: [3]int{1, 1, 31}, Depth: 5}); err == nil {
				t.Errorf("%s: nonexistent leaf accepted", name)
			}
		}
	}
}

func TestQuakeMultiMapUsesRegions(t *testing.T) {
	v, tr := quakeFixture(t)
	s, err := NewStore(v, tr, mapping.MultiMap, StoreOptions{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Regions()) < 3 {
		t.Fatalf("only %d regions mapped", len(s.Regions()))
	}
	if s.Kind() != mapping.MultiMap {
		t.Error("kind wrong")
	}
	// Leaves inside the dense slab must resolve through a region
	// mapping; checkerboard leaves through the remainder extent.
	slabLeaf, err := tr.LeafAt(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ri := s.regionOf(slabLeaf); ri < 0 {
		t.Error("slab leaf not in any region")
	}
}

func TestBeamLeavesTileLine(t *testing.T) {
	_, tr := quakeFixture(t)
	v, _ := quakeFixture(t)
	s, err := NewStore(v, tr, mapping.Naive, StoreOptions{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	for axis := 0; axis < 3; axis++ {
		leaves, err := s.BeamLeaves(axis, [3]int{5, 9, 17})
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for _, lf := range leaves {
			covered += lf.Side(tr.MaxDepth())
		}
		if covered != tr.DomainSide() {
			t.Fatalf("axis %d: beam covers %d units, want %d", axis, covered, tr.DomainSide())
		}
	}
	if _, err := s.BeamLeaves(3, [3]int{0, 0, 0}); err == nil {
		t.Error("bad axis accepted")
	}
}

func TestRangeLeavesMatchesBruteForce(t *testing.T) {
	v, tr := quakeFixture(t)
	s, err := NewStore(v, tr, mapping.Naive, StoreOptions{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := [3]int{3, 7, 1}, [3]int{19, 15, 30}
	leaves, err := s.RangeLeaves(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want := map[Leaf]bool{}
	for x := lo[0]; x < hi[0]; x++ {
		for y := lo[1]; y < hi[1]; y++ {
			for z := lo[2]; z < hi[2]; z++ {
				lf, err := tr.LeafAt(x, y, z)
				if err != nil {
					t.Fatal(err)
				}
				want[lf] = true
			}
		}
	}
	if len(leaves) != len(want) {
		t.Fatalf("RangeLeaves found %d, brute force %d", len(leaves), len(want))
	}
	for _, lf := range leaves {
		if !want[lf] {
			t.Fatalf("leaf %+v not expected", lf)
		}
	}
	if _, err := s.RangeLeaves([3]int{0, 0, 0}, [3]int{0, 1, 1}); err == nil {
		t.Error("empty range accepted")
	}
}

func TestQuakePlanPoliciesAndExecution(t *testing.T) {
	for name, s := range allQuakeStores(t) {
		leaves, err := s.BeamLeaves(0, [3]int{0, 2, 2})
		if err != nil {
			t.Fatal(err)
		}
		_, policy, err := s.Plan(leaves)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		isMM := name == mapping.MultiMap.String()
		if isMM && policy != disk.SchedSPTF {
			t.Errorf("%s: want SPTF", name)
		}
		if !isMM && policy != disk.SchedFIFO {
			t.Errorf("%s: want FIFO", name)
		}
		st, err := s.Query(leaves)
		if err != nil {
			t.Fatalf("%s: execute: %v", name, err)
		}
		if st.Cells != int64(len(leaves)) {
			t.Errorf("%s: fetched %d blocks for %d leaves", name, st.Cells, len(leaves))
		}
	}
}

// TestQuakeMultiMapBeatsNaiveOffMajor mirrors Fig. 7(a)'s ordering on
// the scaled-down tree: MultiMap's Y/Z beams are much cheaper per cell
// than Naive's.
func TestQuakeMultiMapBeatsNaiveOffMajor(t *testing.T) {
	perCell := func(kind mapping.Kind, axis int) float64 {
		v, tr := quakeFixture(t)
		s, err := NewStore(v, tr, kind, StoreOptions{DiskIdx: 0})
		if err != nil {
			t.Fatal(err)
		}
		leaves, err := s.BeamLeaves(axis, [3]int{3, 3, 3}) // through the dense slab
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.Query(leaves)
		if err != nil {
			t.Fatal(err)
		}
		return st.MsPerCell()
	}
	for axis := 1; axis < 3; axis++ {
		n := perCell(mapping.Naive, axis)
		m := perCell(mapping.MultiMap, axis)
		if m >= n {
			t.Errorf("axis %d: MultiMap %.3f ms/cell not better than Naive %.3f", axis, m, n)
		}
	}
}

// TestQuakeFromPointsMatchesDepthFn: building the octree from the raw
// point cloud (capacity 1) reconstructs exactly the tree the depth
// function describes — the full §4.5 pipeline from data to regions.
func TestQuakeFromPointsMatchesDepthFn(t *testing.T) {
	const md = 5
	want, err := NewQuakeTree(md)
	if err != nil {
		t.Fatal(err)
	}
	pts := QuakePoints(md)
	got, err := BuildFromPoints(pts, 1, md)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLeaves() != want.NumLeaves() {
		t.Fatalf("point-built tree has %d leaves, depth-fn tree %d",
			got.NumLeaves(), want.NumLeaves())
	}
	wantLeaves := map[Leaf]bool{}
	for _, lf := range want.Leaves(nil) {
		wantLeaves[lf] = true
	}
	for _, lf := range got.Leaves(nil) {
		if !wantLeaves[lf] {
			t.Fatalf("point-built leaf %+v not in depth-fn tree", lf)
		}
	}
	// And the region pipeline works on the point-built tree.
	regions, _ := GrowRegions(got.UniformSubtrees(), got.MaxDepth(), 64)
	if len(regions) < 3 {
		t.Fatalf("point-built tree yields %d regions", len(regions))
	}
	v, err := lvm.New(32, disk.MediumTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(v, got, mapping.MultiMap, StoreOptions{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	leaves, err := s.BeamLeaves(0, [3]int{0, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Query(leaves)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != int64(len(leaves)) {
		t.Fatalf("fetched %d blocks for %d leaves", st.Cells, len(leaves))
	}
}
