package octree

import (
	"math/rand"
	"testing"
)

func TestBuildFromPointsBasics(t *testing.T) {
	pts := []Point{{0, 0, 0}, {1, 1, 1}, {15, 15, 15}, {15, 0, 0}, {0, 15, 0}}
	tr, err := BuildFromPoints(pts, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() < 5 {
		t.Fatalf("too few leaves: %d", tr.NumLeaves())
	}
	if tr.DomainSide() != 16 {
		t.Fatalf("domain side %d, want 16", tr.DomainSide())
	}
	// Every point must land in a distinct leaf (capacity 1, all points
	// pairwise separable at depth 4).
	seen := map[Leaf]bool{}
	for _, p := range pts {
		lf, err := tr.LeafAt(p[0], p[1], p[2])
		if err != nil {
			t.Fatal(err)
		}
		if seen[lf] {
			t.Fatalf("two points share leaf %+v at capacity 1", lf)
		}
		seen[lf] = true
	}
}

func TestBuildFromPointsValidation(t *testing.T) {
	if _, err := BuildFromPoints(nil, 0, 4); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := BuildFromPoints(nil, 1, 0); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := BuildFromPoints([]Point{{-1, 0, 0}}, 1, 4); err == nil {
		t.Error("out-of-domain point accepted")
	}
}

func TestLeavesTileDomain(t *testing.T) {
	tr, err := NewQuakeTree(5)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, lf := range tr.Leaves(nil) {
		s := int64(lf.Side(tr.MaxDepth()))
		total += s * s * s
	}
	l := int64(tr.DomainSide())
	if total != l*l*l {
		t.Fatalf("leaves cover %d units, domain has %d", total, l*l*l)
	}
}

func TestLeafAtMatchesLeafList(t *testing.T) {
	tr, err := NewQuakeTree(5)
	if err != nil {
		t.Fatal(err)
	}
	inList := map[Leaf]bool{}
	for _, lf := range tr.Leaves(nil) {
		inList[lf] = true
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		x, y, z := rng.Intn(32), rng.Intn(32), rng.Intn(32)
		lf, err := tr.LeafAt(x, y, z)
		if err != nil {
			t.Fatal(err)
		}
		if !inList[lf] {
			t.Fatalf("LeafAt(%d,%d,%d)=%+v not in leaf list", x, y, z, lf)
		}
		side := lf.Side(tr.MaxDepth())
		if x < lf.Anchor[0] || x >= lf.Anchor[0]+side {
			t.Fatalf("point outside returned leaf")
		}
	}
	if _, err := tr.LeafAt(-1, 0, 0); err == nil {
		t.Error("out-of-domain accepted")
	}
}

func TestQuakeTreeStructure(t *testing.T) {
	// The md=6 quake tree reproduces the paper's description: roughly
	// four uniform subareas, two holding well over 60% of elements.
	tr, err := NewQuakeTree(6)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.NumLeaves(), int64(65536+8192+8192+512+36); got != want {
		t.Fatalf("NumLeaves=%d, want %d", got, want)
	}
	regions, rest := GrowRegions(tr.UniformSubtrees(), tr.MaxDepth(), 64)
	if len(regions) != 4 {
		t.Fatalf("got %d uniform regions, want 4: %+v", len(regions), regions)
	}
	rep := Coverage(tr, regions, rest)
	if frac := float64(rep.TopTwoLeaves) / float64(rep.TotalLeaves); frac < 0.6 {
		t.Errorf("top two regions cover %.0f%%, want > 60%%", 100*frac)
	}
	// Region A: the full-resolution slab (64,64,16).
	var foundA bool
	for _, r := range regions {
		d := r.GridDims()
		if d[0] == 64 && d[1] == 64 && d[2] == 16 && r.LeafDepth == 6 {
			foundA = true
		}
	}
	if !foundA {
		t.Errorf("densest slab region missing: %+v", regions)
	}
	if rep.RegionLeaves+rep.RestLeaves != rep.TotalLeaves {
		t.Errorf("region + rest leaves %d != total %d",
			rep.RegionLeaves+rep.RestLeaves, rep.TotalLeaves)
	}
}

func TestUniformSubtreesMaximal(t *testing.T) {
	tr, err := NewQuakeTree(5)
	if err != nil {
		t.Fatal(err)
	}
	subs := tr.UniformSubtrees()
	var total int64
	for _, s := range subs {
		if s.LeafDepth < s.Depth {
			t.Fatalf("subtree %+v has leaf depth above root depth", s)
		}
		total += s.Leaves
	}
	if total != tr.NumLeaves() {
		t.Fatalf("subtrees cover %d leaves, tree has %d", total, tr.NumLeaves())
	}
}

func TestGrowRegionsMergesSlab(t *testing.T) {
	// Two side-by-side subtrees of equal depth must merge into one box.
	subs := []Subtree{
		{Anchor: [3]int{0, 0, 0}, Depth: 1, LeafDepth: 3, Leaves: 64},
		{Anchor: [3]int{16, 0, 0}, Depth: 1, LeafDepth: 3, Leaves: 64},
	}
	regions, rest := GrowRegions(subs, 5, 1)
	if len(rest) != 0 {
		t.Fatalf("unexpected remainder: %+v", rest)
	}
	if len(regions) != 1 {
		t.Fatalf("got %d regions, want 1 merged: %+v", len(regions), regions)
	}
	d := regions[0].GridDims()
	if d[0] != 8 || d[1] != 4 || d[2] != 4 {
		t.Fatalf("merged dims %v, want [8 4 4]", d)
	}
}

func TestGrowRegionsKeepsDifferentDepthsApart(t *testing.T) {
	subs := []Subtree{
		{Anchor: [3]int{0, 0, 0}, Depth: 1, LeafDepth: 3, Leaves: 64},
		{Anchor: [3]int{16, 0, 0}, Depth: 1, LeafDepth: 4, Leaves: 512},
	}
	regions, _ := GrowRegions(subs, 5, 1)
	if len(regions) != 2 {
		t.Fatalf("different densities merged: %+v", regions)
	}
}

func TestGrowRegionsMinLeavesFilter(t *testing.T) {
	subs := []Subtree{
		{Anchor: [3]int{0, 0, 0}, Depth: 2, LeafDepth: 3, Leaves: 8},
	}
	regions, rest := GrowRegions(subs, 5, 64)
	if len(regions) != 0 || len(rest) != 1 {
		t.Fatalf("small region not demoted: regions=%v rest=%v", regions, rest)
	}
}

func TestRegionContainsLeaf(t *testing.T) {
	r := Region{LeafDepth: 3, Lo: [3]int{0, 0, 0}, Hi: [3]int{4, 4, 4}}
	if !r.ContainsLeaf(Leaf{Anchor: [3]int{4, 8, 12}, Depth: 3}, 5) {
		t.Error("leaf inside rejected")
	}
	if r.ContainsLeaf(Leaf{Anchor: [3]int{16, 0, 0}, Depth: 3}, 5) {
		t.Error("leaf outside accepted")
	}
	if r.ContainsLeaf(Leaf{Anchor: [3]int{0, 0, 0}, Depth: 2}, 5) {
		t.Error("wrong-depth leaf accepted")
	}
}
