package octree

import (
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/sfc"
)

// QuakeDepthFn reconstructs the refinement structure of the paper's
// earthquake ground-motion dataset (§5.4): a skewed octree with
// "roughly four uniform subareas", two of which hold well over 60% of
// all elements, plus a mixed-resolution remainder. The densest slab
// models the soft-soil layer near the surface of the 3-D velocity
// model. maxDepth must be at least 5.
func QuakeDepthFn(maxDepth int) DepthFn {
	l := 1 << uint(maxDepth)
	return func(x, y, z int) int {
		switch {
		case z < l/4: // region A: finest resolution, biggest uniform area
			return maxDepth
		case z < l/2: // region B
			return maxDepth - 1
		case y < l/2: // region C
			return maxDepth - 1
		case x < l/2: // region D
			return maxDepth - 2
		default: // region E: mixed checkerboard -> non-uniform remainder
			if ((x/16)+(y/16)+(z/16))%2 == 0 {
				return maxDepth - 4
			}
			return maxDepth - 3
		}
	}
}

// NewQuakeTree builds the synthetic earthquake octree at the given
// maximum depth (5..8 are sensible sizes; 6 gives ~82k elements).
func NewQuakeTree(maxDepth int) (*Tree, error) {
	if maxDepth < 5 {
		return nil, fmt.Errorf("octree: quake tree needs maxDepth >= 5, got %d", maxDepth)
	}
	return BuildFromDepthFn(QuakeDepthFn(maxDepth), maxDepth)
}

// QuakePoints emits a deterministic point cloud whose density follows
// QuakeDepthFn: one point per target-depth cell. Feeding it to
// BuildFromPoints with capacity 1 reconstructs the same octree the
// depth function builds directly, exercising the full §4.5 pipeline
// from raw data (the path a real simulation output would take).
func QuakePoints(maxDepth int) []Point {
	fn := QuakeDepthFn(maxDepth)
	l := 1 << uint(maxDepth)
	var pts []Point
	for z := 0; z < l; z++ {
		for y := 0; y < l; y++ {
			for x := 0; x < l; x++ {
				d := fn(x, y, z)
				side := 1 << uint(maxDepth-d)
				// One point at each target-depth cell's anchor.
				if x%side == 0 && y%side == 0 && z%side == 0 {
					pts = append(pts, Point{x, y, z})
				}
			}
		}
	}
	return pts
}

// StoreOptions configures dataset placement.
type StoreOptions struct {
	// DiskIdx selects the member disk holding the dataset.
	DiskIdx int
	// MinRegionLeaves is the smallest uniform region worth a MultiMap
	// grid (§4.5); smaller ones revert to the linear remainder.
	// Zero selects a reasonable default.
	MinRegionLeaves int64
	// PolicyOverride forces the issue policy of every query (nil keeps
	// each plan's preferred policy) — the scheduler-comparison knob.
	PolicyOverride *disk.SchedPolicy
}

// Store places an octree dataset on a volume under one of the four
// mappings and plans beam/range queries over it. For MultiMap it
// applies §4.5: each grown uniform region becomes its own grid mapping
// and the remainder reverts to the linear layout.
type Store struct {
	vol            *lvm.Volume
	kind           mapping.Kind
	tree           *Tree
	policyOverride *disk.SchedPolicy

	// MultiMap state
	regions  []Region
	mms      []*core.Mapping
	restBase int64
	restRank map[Leaf]int64

	// Linear-mapping state
	base  int64
	keys  []uint64
	keyOf func(Leaf) (uint64, error)
}

// NewStore lays the tree's leaves out under the given mapping kind.
func NewStore(vol *lvm.Volume, tree *Tree, kind mapping.Kind, opts StoreOptions) (*Store, error) {
	if opts.DiskIdx < 0 || opts.DiskIdx >= vol.NumDisks() {
		return nil, fmt.Errorf("octree: disk index %d out of range", opts.DiskIdx)
	}
	s := &Store{vol: vol, kind: kind, tree: tree, policyOverride: opts.PolicyOverride}
	if kind == mapping.MultiMap {
		return s, s.placeMultiMap(opts)
	}
	return s, s.placeLinear(opts)
}

// placeLinear orders all leaves by the mapping's curve (Naive: X-major
// lexicographic; Z-order/Hilbert/Gray: curve value of the leaf anchor,
// §5.4) and packs them into one contiguous extent.
func (s *Store) placeLinear(opts StoreOptions) error {
	l := s.tree.DomainSide()
	switch s.kind {
	case mapping.Naive:
		s.keyOf = func(lf Leaf) (uint64, error) {
			return (uint64(lf.Anchor[2])*uint64(l)+uint64(lf.Anchor[1]))*uint64(l) + uint64(lf.Anchor[0]), nil
		}
	case mapping.ZOrder, mapping.Hilbert, mapping.Gray:
		var curve sfc.Curve
		var err error
		dims := []int{l, l, l}
		switch s.kind {
		case mapping.ZOrder:
			curve, err = sfc.NewZOrder(dims)
		case mapping.Hilbert:
			curve, err = sfc.NewHilbert(dims)
		default:
			curve, err = sfc.NewGrayCurve(dims)
		}
		if err != nil {
			return err
		}
		s.keyOf = func(lf Leaf) (uint64, error) {
			return curve.Key([]int{lf.Anchor[0], lf.Anchor[1], lf.Anchor[2]})
		}
	default:
		return fmt.Errorf("octree: unsupported linear kind %v", s.kind)
	}
	leaves := s.tree.Leaves(nil)
	s.keys = make([]uint64, 0, len(leaves))
	for _, lf := range leaves {
		k, err := s.keyOf(lf)
		if err != nil {
			return err
		}
		s.keys = append(s.keys, k)
	}
	slices.Sort(s.keys)
	for i := 1; i < len(s.keys); i++ {
		if s.keys[i] == s.keys[i-1] {
			return fmt.Errorf("octree: duplicate placement key %d", s.keys[i])
		}
	}
	s.base = s.vol.DiskStart(opts.DiskIdx)
	if int64(len(s.keys)) > s.vol.DiskBlocks(opts.DiskIdx) {
		return fmt.Errorf("octree: %d leaves exceed disk capacity", len(s.keys))
	}
	return nil
}

// placeMultiMap applies §4.5: detect maximal uniform subtrees, grow
// them into grid regions, map each region with MultiMap, and place the
// remainder in X-major order in a trailing extent.
func (s *Store) placeMultiMap(opts StoreOptions) error {
	minLeaves := opts.MinRegionLeaves
	if minLeaves == 0 {
		minLeaves = 64
	}
	regions, rest := GrowRegions(s.tree.UniformSubtrees(), s.tree.MaxDepth(), minLeaves)
	if len(regions) == 0 {
		return fmt.Errorf("octree: no uniform regions found; use a linear mapping")
	}
	s.regions = regions
	cur := int64(0)
	for _, r := range regions {
		mm, err := core.NewMapping(s.vol, r.GridDims(), core.MapOptions{
			DiskIdx: opts.DiskIdx, StartVLBN: cur,
		})
		if err != nil {
			return fmt.Errorf("octree: mapping region %+v: %w", r, err)
		}
		s.mms = append(s.mms, mm)
		cur = mm.NextFreeVLBN()
	}
	// Remainder: every leaf not covered by a region, X-major.
	s.restRank = make(map[Leaf]int64)
	_ = rest
	var rem []Leaf
	for _, lf := range s.tree.Leaves(nil) {
		if s.regionOf(lf) < 0 {
			rem = append(rem, lf)
		}
	}
	l := s.tree.DomainSide()
	slices.SortFunc(rem, func(a, b Leaf) int {
		ka := (a.Anchor[2]*l+a.Anchor[1])*l + a.Anchor[0]
		kb := (b.Anchor[2]*l+b.Anchor[1])*l + b.Anchor[0]
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		default:
			return 0
		}
	})
	s.restBase = cur
	if cur+int64(len(rem)) > s.vol.DiskStart(opts.DiskIdx)+s.vol.DiskBlocks(opts.DiskIdx) {
		return fmt.Errorf("octree: remainder extent does not fit")
	}
	for i, lf := range rem {
		s.restRank[lf] = int64(i)
	}
	return nil
}

// Kind returns the store's mapping kind.
func (s *Store) Kind() mapping.Kind { return s.kind }

// Regions returns the grown uniform regions (MultiMap stores only).
func (s *Store) Regions() []Region { return s.regions }

// regionOf returns the index of the region containing the leaf, or -1.
func (s *Store) regionOf(lf Leaf) int {
	for i, r := range s.regions {
		if r.ContainsLeaf(lf, s.tree.MaxDepth()) {
			return i
		}
	}
	return -1
}

// LeafVLBN returns the block storing a leaf element.
func (s *Store) LeafVLBN(lf Leaf) (int64, error) {
	if s.kind == mapping.MultiMap {
		if ri := s.regionOf(lf); ri >= 0 {
			r := s.regions[ri]
			side := lf.Side(s.tree.MaxDepth())
			cell := []int{
				lf.Anchor[0]/side - r.Lo[0],
				lf.Anchor[1]/side - r.Lo[1],
				lf.Anchor[2]/side - r.Lo[2],
			}
			return s.mms[ri].CellVLBN(cell)
		}
		rank, ok := s.restRank[lf]
		if !ok {
			return 0, fmt.Errorf("octree: leaf %+v not in dataset", lf)
		}
		return s.restBase + rank, nil
	}
	k, err := s.keyOf(lf)
	if err != nil {
		return 0, err
	}
	i, ok := slices.BinarySearch(s.keys, k)
	if !ok {
		return 0, fmt.Errorf("octree: leaf %+v not in dataset", lf)
	}
	return s.base + int64(i), nil
}

// BeamLeaves returns the leaves crossed by an axis-parallel line
// through point p — the paper's beam query on the quake dataset.
func (s *Store) BeamLeaves(axis int, p [3]int) ([]Leaf, error) {
	if axis < 0 || axis > 2 {
		return nil, fmt.Errorf("octree: axis %d out of range", axis)
	}
	var out []Leaf
	c := p
	for t := 0; t < s.tree.DomainSide(); {
		c[axis] = t
		lf, err := s.tree.LeafAt(c[0], c[1], c[2])
		if err != nil {
			return nil, err
		}
		out = append(out, lf)
		// Skip to the end of this leaf along the axis.
		t = lf.Anchor[axis] + lf.Side(s.tree.MaxDepth())
	}
	return out, nil
}

// RangeLeaves returns the leaves intersecting the box [lo, hi).
func (s *Store) RangeLeaves(lo, hi [3]int) ([]Leaf, error) {
	for i := 0; i < 3; i++ {
		if lo[i] < 0 || hi[i] > s.tree.DomainSide() || lo[i] >= hi[i] {
			return nil, fmt.Errorf("octree: bad range on axis %d", i)
		}
	}
	var out []Leaf
	var walk func(n *node)
	walk = func(n *node) {
		side := 1 << uint(s.tree.maxDepth-n.depth)
		for i := 0; i < 3; i++ {
			if n.anchor[i] >= hi[i] || n.anchor[i]+side <= lo[i] {
				return
			}
		}
		if n.children == nil {
			out = append(out, Leaf{Anchor: n.anchor, Depth: n.depth})
			return
		}
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(s.tree.root)
	return out, nil
}

// Plan turns a leaf set into I/O requests plus the issue policy:
// MultiMap issues unsorted single-block requests for the disk scheduler
// (§5.2); linear mappings sort ascending and coalesce.
func (s *Store) Plan(leaves []Leaf) ([]lvm.Request, disk.SchedPolicy, error) {
	lbns := make([]int64, 0, len(leaves))
	for _, lf := range leaves {
		vlbn, err := s.LeafVLBN(lf)
		if err != nil {
			return nil, 0, err
		}
		lbns = append(lbns, vlbn)
	}
	if s.kind == mapping.MultiMap {
		// Sorted issue keeps scheduler windows track-local; the disk's
		// SPTF pass finds the semi-sequential path within them (§5.2).
		slices.Sort(lbns)
		reqs := make([]lvm.Request, len(lbns))
		for i, l := range lbns {
			reqs[i] = lvm.Request{VLBN: l, Count: 1}
		}
		return reqs, disk.SchedSPTF, nil
	}
	slices.Sort(lbns)
	return engine.CoalesceSortedLBNs(lbns), disk.SchedFIFO, nil
}

// Query plans a leaf set and services it through the shared execution
// engine, returning the simulated I/O statistics.
func (s *Store) Query(leaves []Leaf) (engine.Stats, error) {
	reqs, policy, err := s.Plan(leaves)
	if err != nil {
		return engine.Stats{}, err
	}
	if s.policyOverride != nil {
		policy = *s.policyOverride
	}
	return engine.Execute(s.vol, reqs, policy)
}
