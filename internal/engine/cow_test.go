package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/lvm"
	"repro/internal/pool"
)

// cowVolume builds a snapshotted pool volume: every segment frozen
// copy-on-write with the pool's fault allocator installed, so service
// writes must break sharing before their I/O lands.
func cowVolume(t *testing.T) (*lvm.Volume, func()) {
	t.Helper()
	p, err := pool.New(16, disk.SmallTestDisk(), disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.NewVolume(1000, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	sn, err := v.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return v.Volume(), func() { sn.Free(); v.Free() }
}

// TestServiceWriteCowFault pins the write-through COW path: the first
// write to a frozen track faults exactly that track into private
// storage — charged to the writing session as CowFaultBlocks plus the
// fault read's I/O — and a second write to the same track pays no
// fault, while the service's attributed totals reproduce the session's.
func TestServiceWriteCowFault(t *testing.T) {
	lv, cleanup := cowVolume(t)
	defer cleanup()
	svc := NewService(lv, ServiceOptions{})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	ctx := context.Background()

	start, next, err := lv.GetTrackBoundaries(10)
	if err != nil {
		t.Fatal(err)
	}
	track := next - start
	wst, err := sess.Write(ctx, []lvm.Request{{VLBN: 10, Count: 2}}, disk.SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	if wst.CowFaultBlocks != track {
		t.Fatalf("first write faulted %d blocks, want the whole track (%d)", wst.CowFaultBlocks, track)
	}
	// The fault read's completions are folded into the write's own cost.
	if wst.Writes != 2+track || wst.Requests < 2 || wst.TotalMs <= 0 {
		t.Fatalf("fault cost not attributed to the write: %+v", wst)
	}
	if lv.CowSpans([]lvm.Request{{VLBN: 10, Count: 2}}) != nil {
		t.Fatal("written track still copy-on-write after the fault")
	}

	// Same track again: private now, no further fault.
	wst, err = sess.Write(ctx, []lvm.Request{{VLBN: start, Count: 1}}, disk.SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	if wst.CowFaultBlocks != 0 {
		t.Fatalf("second write to a private track faulted %d blocks", wst.CowFaultBlocks)
	}

	// A different frozen track faults independently.
	start2, next2, err := lv.GetTrackBoundaries(next + 1)
	if err != nil {
		t.Fatal(err)
	}
	wst, err = sess.Write(ctx, []lvm.Request{{VLBN: next + 1, Count: 1}}, disk.SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	if wst.CowFaultBlocks != next2-start2 {
		t.Fatalf("second track faulted %d blocks, want %d", wst.CowFaultBlocks, next2-start2)
	}

	// Reads through the resolved mapping still serve (the resolve split
	// segments under the service's feet, by design between batches).
	if _, err := sess.RunPlan(ctx, Static([]lvm.Request{{VLBN: 10, Count: 2}}, disk.SchedSPTF), Options{}); err != nil {
		t.Fatal(err)
	}

	tot := svc.Totals()
	if tot.Attributed.CowFaultBlocks != track+(next2-start2) {
		t.Fatalf("service attributed %d fault blocks, want %d",
			tot.Attributed.CowFaultBlocks, track+(next2-start2))
	}
	if st := sess.Totals(); st.CowFaultBlocks != tot.Attributed.CowFaultBlocks {
		t.Fatalf("session faulted %d blocks, service attributed %d",
			st.CowFaultBlocks, tot.Attributed.CowFaultBlocks)
	}
}

// TestWriteBackCowFaultAtAbsorb pins the absorb-path contract: COW
// coherence is not deferred to the group commit — the fault happens at
// absorb time, before the write is acknowledged, and the flush commits
// only into private extents with no second fault.
func TestWriteBackCowFaultAtAbsorb(t *testing.T) {
	lv, cleanup := cowVolume(t)
	defer cleanup()
	svc := NewService(lv, ServiceOptions{WriteBack: WriteBackOptions{
		Enabled:         true,
		WatermarkBlocks: 1 << 30,
		FlushInterval:   time.Hour,
	}})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	ctx := context.Background()

	start, next, err := lv.GetTrackBoundaries(0)
	if err != nil {
		t.Fatal(err)
	}
	wst, err := sess.Write(ctx, []lvm.Request{{VLBN: 0, Count: 4}}, disk.SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	if wst.CowFaultBlocks != next-start {
		t.Fatalf("absorbed write faulted %d blocks, want %d", wst.CowFaultBlocks, next-start)
	}
	if lv.CowSpans([]lvm.Request{{VLBN: 0, Count: 4}}) != nil {
		t.Fatal("absorbed track still copy-on-write before the flush")
	}
	if err := sess.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	tot := svc.Totals()
	if tot.Attributed.CowFaultBlocks != next-start {
		t.Fatalf("flush double-charged the fault: attributed %d blocks, want %d",
			tot.Attributed.CowFaultBlocks, next-start)
	}
	if st := sess.Totals(); st.CowFaultBlocks != next-start {
		t.Fatalf("session faulted %d blocks, want %d", st.CowFaultBlocks, next-start)
	}
}

// TestFailedWriteKeepsCowCharge: when the write I/O fails AFTER its COW
// fault resolved (here: a second, out-of-range request in the same op),
// the fault already moved blocks and must stay visible in both the
// reply and the service totals — the session/attributed sum property
// holds for failed writes too.
func TestFailedWriteKeepsCowCharge(t *testing.T) {
	lv, cleanup := cowVolume(t)
	defer cleanup()
	svc := NewService(lv, ServiceOptions{})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})

	start, next, err := lv.GetTrackBoundaries(0)
	if err != nil {
		t.Fatal(err)
	}
	wst, err := sess.Write(context.Background(), []lvm.Request{
		{VLBN: 0, Count: 1},
		{VLBN: lv.TotalBlocks(), Count: 1}, // out of range: the write I/O fails
	}, disk.SchedSPTF)
	if err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if wst.CowFaultBlocks != next-start {
		t.Fatalf("failed write reply carries %d fault blocks, want %d", wst.CowFaultBlocks, next-start)
	}
	tot := svc.Totals()
	if tot.WriteOps != 1 || tot.Attributed.CowFaultBlocks != next-start {
		t.Fatalf("failed write bookkeeping wrong: %+v", tot)
	}
	if st := sess.Totals(); st.CowFaultBlocks != tot.Attributed.CowFaultBlocks {
		t.Fatalf("session faulted %d blocks, service attributed %d",
			st.CowFaultBlocks, tot.Attributed.CowFaultBlocks)
	}
	// The fault resolved: the track is private despite the failed write.
	if lv.CowSpans([]lvm.Request{{VLBN: 0, Count: 1}}) != nil {
		t.Fatal("faulted track still copy-on-write")
	}
}
