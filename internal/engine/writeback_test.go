package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// wbService builds a service with write-back on and triggers pushed out
// of the way (huge watermark, hour-long interval), so each test fires
// exactly the trigger it is about.
func wbService(t testing.TB, v *lvm.Volume, cacheBlocks int64) *Service {
	t.Helper()
	return NewService(v, ServiceOptions{
		CacheBlocks: cacheBlocks,
		WriteBack: WriteBackOptions{
			Enabled:         true,
			WatermarkBlocks: 1 << 40,
			FlushInterval:   time.Hour,
		},
	})
}

// TestWriteBackAbsorbAndExplicitFlush: buffered writes are acknowledged
// with zero I/O cost, coalesce into dirty extents, and pay exactly once
// on the explicit flush — a second Flush is a no-op, so nothing is
// double-charged.
func TestWriteBackAbsorbAndExplicitFlush(t *testing.T) {
	v := testVolume(t)
	svc := wbService(t, v, 0)
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})

	// Three writes: two overlapping/adjacent (they coalesce into one
	// dirty extent), one disjoint.
	for i, reqs := range [][]lvm.Request{
		{{VLBN: 100, Count: 8}},
		{{VLBN: 104, Count: 8}}, // overlaps the first — coalesces
		{{VLBN: 400, Count: 4}},
	} {
		st, err := sess.Write(context.Background(), reqs, disk.SchedSPTF)
		if err != nil {
			t.Fatal(err)
		}
		if st.TotalMs != 0 || st.Requests != 0 || st.ElapsedMs != 0 {
			t.Fatalf("write %d charged I/O at absorb time: %+v", i, st)
		}
		if st.Writes != int64(reqs[0].Count) {
			t.Fatalf("write %d blocks not counted at absorb: %+v", i, st)
		}
		if want := int64(0); i == 1 {
			want = 1
			if st.CoalescedWrites != want {
				t.Fatalf("overlapping write %d not counted as coalesced: %+v", i, st)
			}
		} else if st.CoalescedWrites != want {
			t.Fatalf("disjoint write %d counted as coalesced: %+v", i, st)
		}
	}
	tot := svc.Totals()
	// [100,112) merged plus [400,404).
	if tot.DirtyBlocks != 16 || tot.WriteOps != 3 || tot.CoalescedWrites != 1 {
		t.Fatalf("dirty bookkeeping wrong before flush: %+v", tot)
	}
	if tot.FlushBatches != 0 || tot.IssuedRequests != 0 {
		t.Fatalf("I/O issued before any flush trigger: %+v", tot)
	}

	if err := sess.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	tot = svc.Totals()
	if tot.FlushBatches != 1 || tot.DirtyBlocks != 0 || tot.IssuedRequests != 2 {
		t.Fatalf("explicit flush bookkeeping wrong: %+v", tot)
	}
	lt := sess.Totals()
	if lt.TotalMs <= 0 || lt.Requests != 2 || lt.FlushBatches != 1 {
		t.Fatalf("flush cost not credited to the owning session: %+v", lt)
	}
	// Exactly once: flushing an empty buffer changes nothing.
	if err := sess.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tot2 := svc.Totals(); tot2 != tot {
		t.Fatalf("empty flush changed totals: %+v vs %+v", tot2, tot)
	}
	if lt2 := sess.Totals(); lt2 != lt {
		t.Fatalf("empty flush re-charged the session: %+v vs %+v", lt2, lt)
	}
	lt.ElapsedMs = tot.Attributed.ElapsedMs
	statsClose(lt, tot.Attributed, t)
}

// TestWriteBackMatchesWriteThrough: one buffered write committed by one
// flush must cost exactly what the write-through path charges for the
// same op — the group commit defers the I/O, it does not change it. And
// N adjacent writes committed together must cost exactly what ONE
// write-through op over their union costs: the whole point of group
// commit, asserted bit-for-bit.
func TestWriteBackMatchesWriteThrough(t *testing.T) {
	reqs := []lvm.Request{{VLBN: 200, Count: 8}}

	vA := testVolume(t)
	svcA := NewService(vA, ServiceOptions{})
	defer svcA.Close()
	sessA := svcA.NewSession(SessionOptions{})
	if _, err := sessA.Write(context.Background(), reqs, disk.SchedSPTF); err != nil {
		t.Fatal(err)
	}

	vB := testVolume(t)
	svcB := wbService(t, vB, 0)
	defer svcB.Close()
	sessB := svcB.NewSession(SessionOptions{})
	if _, err := sessB.Write(context.Background(), reqs, disk.SchedSPTF); err != nil {
		t.Fatal(err)
	}
	if err := sessB.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := sessB.Totals()
	got.FlushBatches = 0 // the only field write-back may add
	if want := sessA.Totals(); got != want {
		t.Fatalf("single buffered write != write-through: %+v vs %+v", got, want)
	}

	// Four adjacent 4-block writes, buffered then group-committed ≡ one
	// 16-block write-through op.
	vC := testVolume(t)
	svcC := NewService(vC, ServiceOptions{})
	defer svcC.Close()
	sessC := svcC.NewSession(SessionOptions{})
	if _, err := sessC.Write(context.Background(), []lvm.Request{{VLBN: 300, Count: 16}}, disk.SchedSPTF); err != nil {
		t.Fatal(err)
	}

	vD := testVolume(t)
	svcD := wbService(t, vD, 0)
	defer svcD.Close()
	sessD := svcD.NewSession(SessionOptions{})
	for i := 0; i < 4; i++ {
		if _, err := sessD.Write(context.Background(),
			[]lvm.Request{{VLBN: 300 + int64(4*i), Count: 4}}, disk.SchedSPTF); err != nil {
			t.Fatal(err)
		}
	}
	if err := sessD.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	got = sessD.Totals()
	if got.CoalescedWrites != 3 {
		t.Fatalf("adjacent writes did not coalesce: %+v", got)
	}
	got.FlushBatches, got.CoalescedWrites = 0, 0
	if want := sessC.Totals(); got != want {
		t.Fatalf("group commit of 4 adjacent writes != one merged write: %+v vs %+v", got, want)
	}
}

// TestWriteBackWatermarkTrigger: reaching the watermark flushes within
// the same admission pass, without any explicit Flush.
func TestWriteBackWatermarkTrigger(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{
		WriteBack: WriteBackOptions{Enabled: true, WatermarkBlocks: 12, FlushInterval: time.Hour},
	})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})

	if _, err := sess.Write(context.Background(), []lvm.Request{{VLBN: 100, Count: 8}}, disk.SchedSPTF); err != nil {
		t.Fatal(err)
	}
	// Below the watermark: Flush here would commit, so check via a
	// barrier-free snapshot after the write's ack (the loop flushed — or
	// not — before replying to nothing else; WriteOps==1 proves the pass
	// ran).
	if tot := svc.Totals(); tot.FlushBatches != 0 || tot.DirtyBlocks != 8 {
		t.Fatalf("flushed below watermark: %+v", tot)
	}
	if _, err := sess.Write(context.Background(), []lvm.Request{{VLBN: 400, Count: 4}}, disk.SchedSPTF); err != nil {
		t.Fatal(err)
	}
	// 12 dirty blocks == watermark: the serving pass flushes right after
	// absorbing. The ack races the flush by a hair, so synchronize on an
	// (empty, free) explicit Flush barrier before asserting.
	if err := sess.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	tot := svc.Totals()
	if tot.FlushBatches != 1 || tot.DirtyBlocks != 0 {
		t.Fatalf("watermark did not trigger exactly one flush: %+v", tot)
	}
	lt := sess.Totals()
	if lt.TotalMs <= 0 || lt.FlushBatches != 1 {
		t.Fatalf("watermark flush not credited: %+v", lt)
	}
	lt.ElapsedMs = tot.Attributed.ElapsedMs
	statsClose(lt, tot.Attributed, t)
}

// TestWriteBackIntervalTrigger: dirty data on an otherwise idle service
// commits once the flush interval elapses — the loop stays alive,
// sleeping, instead of exiting with the queue.
func TestWriteBackIntervalTrigger(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{
		WriteBack: WriteBackOptions{Enabled: true, WatermarkBlocks: 1 << 40, FlushInterval: 10 * time.Millisecond},
	})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	if _, err := sess.Write(context.Background(), []lvm.Request{{VLBN: 100, Count: 8}}, disk.SchedSPTF); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		tot := svc.Totals()
		if tot.FlushBatches == 1 && tot.DirtyBlocks == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("interval flush never fired: %+v", tot)
		}
		time.Sleep(time.Millisecond)
	}
	if lt := sess.Totals(); lt.TotalMs <= 0 || lt.FlushBatches != 1 {
		t.Fatalf("interval flush not credited: %+v", lt)
	}
}

// TestWriteBackReadDependencyTrigger: a read overlapping dirty data
// forces the flush before the read is served; a disjoint read does not.
func TestWriteBackReadDependencyTrigger(t *testing.T) {
	v := testVolume(t)
	svc := wbService(t, v, 0)
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	if _, err := sess.Write(context.Background(), []lvm.Request{{VLBN: 100, Count: 8}}, disk.SchedSPTF); err != nil {
		t.Fatal(err)
	}
	// Disjoint read: no dependency, nothing flushes. RunPlan returning is
	// the barrier — a read-dep flush would have happened before it was
	// served.
	if _, err := sess.RunPlan(context.Background(), Static([]lvm.Request{{VLBN: 400, Count: 4}}, disk.SchedSPTF), Options{}); err != nil {
		t.Fatal(err)
	}
	if tot := svc.Totals(); tot.FlushBatches != 0 || tot.DirtyBlocks != 8 {
		t.Fatalf("disjoint read flushed the buffer: %+v", tot)
	}
	// Overlapping read: the dirty extent commits first.
	if _, err := sess.RunPlan(context.Background(), Static([]lvm.Request{{VLBN: 104, Count: 2}}, disk.SchedSPTF), Options{}); err != nil {
		t.Fatal(err)
	}
	tot := svc.Totals()
	if tot.FlushBatches != 1 || tot.DirtyBlocks != 0 {
		t.Fatalf("overlapping read did not force the flush: %+v", tot)
	}
	lt := sess.Totals()
	lt.ElapsedMs = tot.Attributed.ElapsedMs
	statsClose(lt, tot.Attributed, t)
}

// TestWriteBackCloseFlushes: Close drains the dirty buffer before the
// loop retires — no acknowledged write is lost to shutdown — and
// post-close submissions fail with ErrClosed.
func TestWriteBackCloseFlushes(t *testing.T) {
	v := testVolume(t)
	svc := wbService(t, v, 0)
	sess := svc.NewSession(SessionOptions{})
	if _, err := sess.Write(context.Background(), []lvm.Request{{VLBN: 100, Count: 8}}, disk.SchedSPTF); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	tot := svc.Totals()
	if tot.FlushBatches != 1 || tot.DirtyBlocks != 0 {
		t.Fatalf("Close did not flush exactly once: %+v", tot)
	}
	if lt := sess.Totals(); lt.TotalMs <= 0 || lt.FlushBatches != 1 {
		t.Fatalf("close-time flush not credited: %+v", lt)
	}
	if _, err := sess.Write(context.Background(), []lvm.Request{{VLBN: 100, Count: 8}}, disk.SchedSPTF); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Write: %v, want ErrClosed", err)
	}
	if err := sess.Flush(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Flush: %v, want ErrClosed", err)
	}
}

// TestWriteBackFlushCancelledCtx: a Flush whose ctx is already dead
// aborts without flushing — the dirty buffer stays intact and commits,
// once, on a later healthy trigger.
func TestWriteBackFlushCancelledCtx(t *testing.T) {
	v := testVolume(t)
	svc := wbService(t, v, 0)
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	if _, err := sess.Write(context.Background(), []lvm.Request{{VLBN: 100, Count: 8}}, disk.SchedSPTF); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sess.Flush(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Flush: %v, want context.Canceled", err)
	}
	if tot := svc.Totals(); tot.FlushBatches != 0 || tot.DirtyBlocks != 8 {
		t.Fatalf("cancelled Flush committed or dropped dirty data: %+v", tot)
	}
	if err := sess.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	tot := svc.Totals()
	if tot.FlushBatches != 1 || tot.DirtyBlocks != 0 {
		t.Fatalf("recovery flush wrong: %+v", tot)
	}
	lt := sess.Totals()
	if lt.FlushBatches != 1 || lt.TotalMs <= 0 {
		t.Fatalf("recovery flush not credited exactly once: %+v", lt)
	}
	lt.ElapsedMs = tot.Attributed.ElapsedMs
	statsClose(lt, tot.Attributed, t)
}

// TestWriteBackCancelledWriteInvalidates: a write dropped on a dead ctx
// is never buffered — but its cache invalidation still happens, the
// same coherence-survives-cancellation contract as write-through.
func TestWriteBackCancelledWriteInvalidates(t *testing.T) {
	v := testVolume(t)
	svc := wbService(t, v, 1<<20)
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	if _, err := sess.RunPlan(context.Background(), Static([]lvm.Request{{VLBN: 100, Count: 8}}, disk.SchedSPTF), Options{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := sess.Write(ctx, []lvm.Request{{VLBN: 102, Count: 2}}, disk.SchedSPTF)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled write: %v, want context.Canceled", err)
	}
	if st.InvalidatedBlocks != 2 || st.Cancelled != 1 || st.Writes != 0 {
		t.Fatalf("cancelled write bookkeeping: %+v", st)
	}
	if tot := svc.Totals(); tot.DirtyBlocks != 0 || tot.WriteOps != 0 {
		t.Fatalf("cancelled write was buffered: %+v", tot)
	}
	// The invalidated blocks must miss on re-read.
	rst, err := sess.RunPlan(context.Background(), Static([]lvm.Request{{VLBN: 100, Count: 8}}, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rst.CacheHits != 0 || rst.CacheMisses != 1 {
		t.Fatalf("stale extent survived a cancelled write: %+v", rst)
	}
}

// TestWriteBackSetWriteBack: reconfiguring flushes under the old
// configuration first, and turning write-back off restores the
// write-through path.
func TestWriteBackSetWriteBack(t *testing.T) {
	v := testVolume(t)
	svc := wbService(t, v, 0)
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	if _, err := sess.Write(context.Background(), []lvm.Request{{VLBN: 100, Count: 8}}, disk.SchedSPTF); err != nil {
		t.Fatal(err)
	}
	if err := svc.SetWriteBack(WriteBackOptions{}); err != nil {
		t.Fatal(err)
	}
	tot := svc.Totals()
	if tot.FlushBatches != 1 || tot.DirtyBlocks != 0 {
		t.Fatalf("reconfiguration stranded the dirty buffer: %+v", tot)
	}
	// Now write-through: a write pays immediately.
	st, err := sess.Write(context.Background(), []lvm.Request{{VLBN: 400, Count: 4}}, disk.SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalMs <= 0 || st.Requests != 1 {
		t.Fatalf("write after disabling write-back was buffered: %+v", st)
	}
	if tot := svc.Totals(); tot.DirtyBlocks != 0 {
		t.Fatalf("dirty data accumulated with write-back off: %+v", tot)
	}
}

// TestWriteBackConcurrentAttribution: readers and writers race under
// write-back (run with -race); after a final drain, summed session
// totals must still reproduce the service's attributed ground truth —
// the attribution-sum property survives deferred, shared flush costs.
func TestWriteBackConcurrentAttribution(t *testing.T) {
	v := testVolume(t, disk.SmallTestDisk(), disk.SmallTestDisk())
	svc := NewService(v, ServiceOptions{
		CacheBlocks: 4096,
		WriteBack:   WriteBackOptions{Enabled: true, WatermarkBlocks: 64, FlushInterval: 5 * time.Millisecond},
	})
	defer svc.Close()

	const clients = 6
	sessions := make([]*Session, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		sessions[i] = svc.NewSession(SessionOptions{MaxInflight: 1 + i%2})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(900 + i)))
			for q := 0; q < 8; q++ {
				if q%2 == 1 {
					reqs := SortCoalesce(randomReqs(rng, v, 5))
					if _, err := sessions[i].Write(context.Background(), reqs, disk.SchedSPTF); err != nil {
						errs[i] = err
						return
					}
					continue
				}
				chunks := randomChunks(rng, v, 1+rng.Intn(2), 20)
				if _, err := sessions[i].RunPlan(context.Background(), chunkPlan(chunks), Options{}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	// Drain whatever is still buffered so the books are closed.
	if err := sessions[0].Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	var sum Stats
	for _, s := range sessions {
		sum.Accumulate(s.Totals())
	}
	tot := svc.Totals()
	if tot.DirtyBlocks != 0 {
		t.Fatalf("dirty data left after drain: %+v", tot)
	}
	if sum.Writes == 0 || tot.WriteOps != clients*4 {
		t.Fatalf("write traffic missing: %+v (writes=%d)", tot, sum.Writes)
	}
	sum.ElapsedMs = tot.Attributed.ElapsedMs
	statsClose(sum, tot.Attributed, t)
}
