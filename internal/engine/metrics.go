package engine

import (
	"math"
	"slices"
	"sync"
)

// QueueDepth reports how many operations are queued at the service
// awaiting admission — the live backlog gauge behind the daemon's
// metrics feed. It is a point-in-time snapshot under the service mutex
// (two loads and a slice length), cheap enough to poll from a metrics
// ticker without perturbing the admission path.
func (s *Service) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// LatencyRing is a lock-cheap ring of recent latency observations in
// host milliseconds. Producers call Record on every completed query —
// a mutex-guarded store into a fixed slot, no allocation — and a
// metrics reader calls Snapshot to get count and percentiles over the
// retained window. The ring keeps the last Size observations; the
// percentile sort happens only at snapshot time, on a copy, so the
// recording hot path never pays for it.
type LatencyRing struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	fill  int
	count int64
}

// NewLatencyRing builds a ring retaining the last size observations
// (minimum 16).
func NewLatencyRing(size int) *LatencyRing {
	if size < 16 {
		size = 16
	}
	return &LatencyRing{buf: make([]float64, size)}
}

// Record stores one completed-query latency in milliseconds.
func (r *LatencyRing) Record(ms float64) {
	r.mu.Lock()
	r.buf[r.next] = ms
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.fill < len(r.buf) {
		r.fill++
	}
	r.count++
	r.mu.Unlock()
}

// Snapshot returns the lifetime count of recorded observations and the
// p50/p99 latency over the retained window (zeroes when nothing has
// been recorded). Percentiles use linear rank interpolation over the
// sorted window, matching the burst benchmark's definition.
func (r *LatencyRing) Snapshot() (count int64, p50, p99 float64) {
	r.mu.Lock()
	window := append([]float64(nil), r.buf[:r.fill]...)
	count = r.count
	r.mu.Unlock()
	if len(window) == 0 {
		return count, 0, 0
	}
	slices.Sort(window)
	return count, percentileSorted(window, 0.50), percentileSorted(window, 0.99)
}

// percentileSorted interpolates the q-th percentile (q in [0,1]) of an
// ascending sample.
func percentileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := q * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
