package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
)

func testVolume(t testing.TB, geoms ...*disk.Geometry) *lvm.Volume {
	t.Helper()
	if len(geoms) == 0 {
		geoms = []*disk.Geometry{disk.SmallTestDisk()}
	}
	v, err := lvm.New(16, geoms...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func randomReqs(rng *rand.Rand, v *lvm.Volume, n int) []lvm.Request {
	reqs := make([]lvm.Request, n)
	for i := range reqs {
		reqs[i] = lvm.Request{VLBN: rng.Int63n(v.TotalBlocks() - 4), Count: 1 + rng.Intn(4)}
		di, lbn, _ := v.Locate(reqs[i].VLBN)
		if over := lbn + int64(reqs[i].Count) - v.DiskBlocks(di); over > 0 {
			reqs[i].VLBN -= over
		}
	}
	return reqs
}

func TestExecuteMatchesDirectServe(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vEng := testVolume(t)
	vRef := testVolume(t)
	reqs := randomReqs(rng, vEng, 200)

	st, err := Execute(vEng, reqs, disk.SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	comps, elapsed, err := vRef.ServeBatch(reqs, disk.SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	var want Stats
	want.AddCompletions(comps, elapsed)
	if st != want {
		t.Fatalf("engine stats %+v differ from direct serve %+v", st, want)
	}
	if sum := st.CommandMs + st.SeekMs + st.RotateMs + st.TransferMs; math.Abs(sum-st.TotalMs) > 1e-6 {
		t.Errorf("component sum %.4f != total %.4f", sum, st.TotalMs)
	}
}

func TestRunStreamsChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := testVolume(t)
	reqs := randomReqs(rng, v, 90)

	// A three-chunk plan must aggregate the same cells/blocks as one
	// static chunk and deliver every completion to the trace hook.
	chunks := []Chunk{
		{Reqs: reqs[:30], Policy: disk.SchedSPTF, Padding: 1},
		{Reqs: reqs[30:60], Policy: disk.SchedFIFO, Padding: 2},
		{Reqs: reqs[60:], Policy: disk.SchedSPTF},
	}
	i := 0
	p := planFunc(func() (Chunk, bool, error) {
		if i == len(chunks) {
			return Chunk{}, false, nil
		}
		i++
		return chunks[i-1], true, nil
	})
	var traced int
	st, err := Run(v, p, Options{Trace: func(cs []lvm.Completion) { traced += len(cs) }})
	if err != nil {
		t.Fatal(err)
	}
	var blocks int64
	for _, r := range reqs {
		blocks += int64(r.Count)
	}
	if st.Cells != blocks {
		t.Errorf("streamed stats cover %d blocks, want %d", st.Cells, blocks)
	}
	if st.Padding != 3 {
		t.Errorf("padding %d, want 3", st.Padding)
	}
	if traced != len(reqs) {
		t.Errorf("trace saw %d completions, want %d", traced, len(reqs))
	}
}

// planFunc adapts a closure to the Plan interface.
type planFunc func() (Chunk, bool, error)

func (f planFunc) Next() (Chunk, bool, error) { return f() }

func TestPolicyOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vA := testVolume(t)
	vB := testVolume(t)
	reqs := randomReqs(rng, vA, 120)

	// Forcing FIFO over an SPTF chunk must reproduce the FIFO schedule.
	fifo := disk.SchedFIFO
	stForced, err := Run(vA, Static(reqs, disk.SchedSPTF), Options{Policy: &fifo})
	if err != nil {
		t.Fatal(err)
	}
	stFIFO, err := Execute(vB, reqs, disk.SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	if stForced != stFIFO {
		t.Errorf("override stats %+v != native FIFO stats %+v", stForced, stFIFO)
	}
}

// TestExecuteMultiDiskConcurrent exercises the per-disk goroutines of
// the volume layer through the engine; run with -race to verify drive
// isolation.
func TestExecuteMultiDiskConcurrent(t *testing.T) {
	v := testVolume(t, disk.SmallTestDisk(), disk.SmallTestDisk(), disk.SmallTestDisk())
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 4; round++ {
		reqs := randomReqs(rng, v, 240)
		st, err := Execute(v, reqs, disk.SchedSPTF)
		if err != nil {
			t.Fatal(err)
		}
		if st.Requests != len(reqs) {
			t.Fatalf("round %d: %d completions for %d requests", round, st.Requests, len(reqs))
		}
		if st.ElapsedMs <= 0 || st.ElapsedMs > st.TotalMs {
			t.Fatalf("round %d: elapsed %.3f outside (0, %.3f]: disks not parallel",
				round, st.ElapsedMs, st.TotalMs)
		}
	}
}

func TestStatsMsPerCell(t *testing.T) {
	if (Stats{}).MsPerCell() != 0 {
		t.Error("MsPerCell of empty stats should be 0")
	}
	s := Stats{Cells: 4, TotalMs: 10}
	if s.MsPerCell() != 2.5 {
		t.Errorf("MsPerCell = %v, want 2.5", s.MsPerCell())
	}
}

// BenchmarkExecuteSPTF measures the full plan-free execution path —
// routing, scheduling, and aggregation — across batch sizes spanning
// 1e3 to 1e5 requests on the paper's primary drive.
func BenchmarkExecuteSPTF(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			v := testVolume(b, disk.AtlasTenKIII())
			rng := rand.New(rand.NewSource(7))
			// A compact band, like a MultiMap window set.
			base := rng.Int63n(v.TotalBlocks() / 2)
			reqs := make([]lvm.Request, n)
			for i := range reqs {
				reqs[i] = lvm.Request{VLBN: base + rng.Int63n(400_000), Count: 1}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.Reset()
				if _, err := Execute(v, reqs, disk.SchedSPTF); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecuteFIFO is the sequential-issue baseline at the same
// batch sizes.
func BenchmarkExecuteFIFO(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			v := testVolume(b, disk.AtlasTenKIII())
			reqs := make([]lvm.Request, n)
			for i := range reqs {
				reqs[i] = lvm.Request{VLBN: int64(i) * 16, Count: 8}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.Reset()
				if _, err := Execute(v, reqs, disk.SchedFIFO); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
