package engine

import (
	"slices"

	"repro/internal/lvm"
)

// SortCoalesce sorts requests by VLBN and merges contiguous ones — the
// storage manager's issue optimization for the linear mappings (§5.2).
func SortCoalesce(reqs []lvm.Request) []lvm.Request {
	if len(reqs) <= 1 {
		return reqs
	}
	slices.SortFunc(reqs, func(a, b lvm.Request) int {
		switch {
		case a.VLBN < b.VLBN:
			return -1
		case a.VLBN > b.VLBN:
			return 1
		default:
			return a.Count - b.Count
		}
	})
	out := reqs[:1]
	for _, r := range reqs[1:] {
		last := &out[len(out)-1]
		if r.VLBN == last.VLBN+int64(last.Count) {
			last.Count += r.Count
		} else {
			out = append(out, r)
		}
	}
	return out
}

// BridgedCoalesce merges ascending-sorted requests whose gaps are at
// most maxGap blocks, returning the merged set and the total padding
// blocks the merges read beyond the originals.
func BridgedCoalesce(reqs []lvm.Request, maxGap int) ([]lvm.Request, int64) {
	if len(reqs) <= 1 {
		return reqs, 0
	}
	var padding int64
	out := reqs[:1]
	for _, r := range reqs[1:] {
		last := &out[len(out)-1]
		gap := r.VLBN - (last.VLBN + int64(last.Count))
		if gap >= 0 && gap <= int64(maxGap) {
			padding += gap
			last.Count += int(gap) + r.Count
		} else {
			out = append(out, r)
		}
	}
	return out, padding
}

// CoalesceSortedLBNs merges an ascending single-block LBN list into
// contiguous requests.
func CoalesceSortedLBNs(lbns []int64) []lvm.Request {
	if len(lbns) == 0 {
		return nil
	}
	out := []lvm.Request{{VLBN: lbns[0], Count: 1}}
	for _, l := range lbns[1:] {
		last := &out[len(out)-1]
		if l == last.VLBN+int64(last.Count) {
			last.Count++
		} else {
			out = append(out, lvm.Request{VLBN: l, Count: 1})
		}
	}
	return out
}
