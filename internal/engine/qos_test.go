package engine

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// drrOp builds a bare work op of one class with an exact block cost,
// for driving the scheduler directly.
func drrOp(class string, cost int64) *serviceOp {
	return &serviceOp{
		kind:  opChunk,
		class: class,
		chunk: Chunk{Reqs: []lvm.Request{{VLBN: 0, Count: int(cost)}}},
	}
}

func groupClasses(groups [][]*serviceOp) []string {
	var names []string
	for _, g := range groups {
		names = append(names, g[0].class)
	}
	return names
}

// TestDRRDeficitCarry pins the deficit-round-robin core: credit that a
// pass could not spend carries to the next pass while the class stays
// backlogged, admission is FIFO within the class, and a class whose
// backlog drains forfeits its leftover credit (the classic DRR
// anti-hoarding rule).
func TestDRRDeficitCarry(t *testing.T) {
	classes := map[string]QoSClass{}
	d := newDRRSched()
	d.push([]*serviceOp{drrOp("a", 8), drrOp("a", 8), drrOp("b", 4)})

	// Pass 1, quantum 10: a affords one 8-cost op (deficit 2 carries),
	// b affords its whole 4-cost backlog and resets to 0 on drain.
	groups := d.grant(classes, 10)
	if got := groupClasses(groups); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("pass 1 groups %v, want [b a] (cheapest group first)", got)
	}
	if len(groups[1]) != 1 || len(groups[0]) != 1 {
		t.Fatalf("pass 1 admitted %d+%d ops, want 1+1", len(groups[0]), len(groups[1]))
	}
	if d.deficit["a"] != 2 {
		t.Fatalf("a deficit %d after pass 1, want 2 carried", d.deficit["a"])
	}
	if d.deficit["b"] != 0 {
		t.Fatalf("b deficit %d after drain, want 0 forfeited", d.deficit["b"])
	}
	if d.count != 1 {
		t.Fatalf("backlog %d after pass 1, want 1", d.count)
	}

	// Pass 2: a's carried 2 + fresh 10 covers the second 8-cost op.
	groups = d.grant(classes, 10)
	if len(groups) != 1 || len(groups[0]) != 1 || groups[0][0].class != "a" {
		t.Fatalf("pass 2 groups %v", groupClasses(groups))
	}
	if d.count != 0 || d.deficit["a"] != 0 {
		t.Fatalf("drained backlog left count %d, a deficit %d", d.count, d.deficit["a"])
	}
	if d.grant(classes, 10) != nil {
		t.Fatal("grant on empty backlog returned groups")
	}
}

// TestDRRWeightedShare: weights scale the per-pass credit, so a
// weight-3 class admits three times the blocks of a weight-1 class in
// the same pass.
func TestDRRWeightedShare(t *testing.T) {
	classes := map[string]QoSClass{
		"light": {Name: "light", Weight: 1},
		"heavy": {Name: "heavy", Weight: 3},
	}
	d := newDRRSched()
	for i := 0; i < 4; i++ {
		d.push([]*serviceOp{drrOp("light", 10), drrOp("heavy", 10)})
	}
	groups := d.grant(classes, 10)
	admitted := map[string]int{}
	for _, g := range groups {
		admitted[g[0].class] = len(g)
	}
	if admitted["light"] != 1 || admitted["heavy"] != 3 {
		t.Fatalf("pass admitted %v, want light:1 heavy:3", admitted)
	}
}

// TestDRRAntiLivelock: an op costlier than its class's whole per-pass
// grant still goes — rounds repeat, accumulating credit, until one op
// is admitted, so a huge scan cannot wedge the scheduler.
func TestDRRAntiLivelock(t *testing.T) {
	d := newDRRSched()
	d.push([]*serviceOp{drrOp("big", 1000)})
	groups := d.grant(map[string]QoSClass{}, 10)
	if len(groups) != 1 || len(groups[0]) != 1 {
		t.Fatalf("expensive op not admitted: %v", groupClasses(groups))
	}
	if d.count != 0 {
		t.Fatalf("backlog count %d after admission", d.count)
	}
}

// TestDRRCheapestGroupFirst: within a pass the admitted groups are
// served cheapest first (ties on class name), so a light class's ops
// complete ahead of a heavy scan group instead of waiting it out.
func TestDRRCheapestGroupFirst(t *testing.T) {
	d := newDRRSched()
	d.push([]*serviceOp{
		drrOp("aheavy", 90),
		drrOp("zlight", 2),
		drrOp("mid", 40),
	})
	groups := d.grant(map[string]QoSClass{}, 100)
	if got := groupClasses(groups); len(got) != 3 ||
		got[0] != "zlight" || got[1] != "mid" || got[2] != "aheavy" {
		t.Fatalf("group order %v, want [zlight mid aheavy]", got)
	}

	// Equal-cost groups fall back to class-name order — deterministic
	// whatever map iteration did.
	d2 := newDRRSched()
	d2.push([]*serviceOp{drrOp("b", 5), drrOp("a", 5)})
	groups = d2.grant(map[string]QoSClass{}, 100)
	if got := groupClasses(groups); got[0] != "a" || got[1] != "b" {
		t.Fatalf("tie order %v, want [a b]", got)
	}
}

// TestDRRDrainAndUrgentPromotion: drain flushes every backlog in class
// order zeroing deficits, and takeUrgent pulls aged / deadline /
// urgent-class ops out of the weighted backlogs (how aging bounds DRR
// deferral).
func TestDRRDrainAndUrgentPromotion(t *testing.T) {
	d := newDRRSched()
	d.push([]*serviceOp{drrOp("b", 5), drrOp("a", 5), drrOp("b", 5)})
	d.deficit["a"] = 3
	groups := d.drain()
	if got := groupClasses(groups); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("drain groups %v, want [a b]", got)
	}
	if len(groups[1]) != 2 {
		t.Fatalf("b drained %d ops, want 2 FIFO", len(groups[1]))
	}
	if d.count != 0 || d.deficit["a"] != 0 {
		t.Fatalf("drain left count %d, deficit %d", d.count, d.deficit["a"])
	}

	now := time.Now()
	classes := map[string]QoSClass{"rt": {Name: "rt", Urgent: true}}
	aged := drrOp("slow", 5)
	aged.enqueued = now.Add(-time.Second)
	fresh := drrOp("slow", 5)
	fresh.enqueued = now
	dl := drrOp("slow", 5)
	dl.enqueued = now
	dl.deadline = now.Add(time.Millisecond)
	urgent := drrOp("rt", 5)
	urgent.enqueued = now
	d.push([]*serviceOp{aged, fresh, dl, urgent})
	got := d.takeUrgent(classes, 100*time.Millisecond, now)
	if len(got) != 3 {
		t.Fatalf("takeUrgent pulled %d ops, want 3 (aged, deadline, urgent class)", len(got))
	}
	if d.count != 1 || len(d.pending["slow"]) != 1 || d.pending["slow"][0] != fresh {
		t.Fatalf("fresh op not left in backlog (count %d)", d.count)
	}
}

// TestServiceFairShareDeferral: with a tiny quantum and two chunks in
// flight, the second chunk of the pass is deferred at least once (the
// Deferred counter counts it), yet everything still completes and the
// class's attribution matches the session's observed stats.
func TestServiceFairShareDeferral(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{
		BatchWindow: 30 * time.Millisecond,
		FairQuantum: 1,
		Classes:     []QoSClass{{Name: "bulk", Weight: 1}},
	})
	defer svc.Close()

	sess := svc.NewSession(SessionOptions{MaxInflight: 2, Class: "bulk"})
	chunks := randomChunks(rng, v, 4, 30)
	if _, err := sess.RunPlan(context.Background(), chunkPlan(chunks), Options{}); err != nil {
		t.Fatal(err)
	}

	cts := svc.ClassTotals()
	if len(cts) != 1 || cts[0].Class != "bulk" {
		t.Fatalf("ClassTotals = %+v, want one bulk entry", cts)
	}
	ct := cts[0]
	if ct.Ops != int64(len(chunks)) {
		t.Fatalf("bulk served %d ops, want %d", ct.Ops, len(chunks))
	}
	if ct.Deferred == 0 {
		t.Fatal("tiny quantum with pipelined chunks never deferred — DRR not engaged")
	}
	if ct.UrgentOps != 0 {
		t.Fatalf("no deadline anywhere but %d urgent ops", ct.UrgentOps)
	}
}

// TestServiceUrgentClass: a class registered Urgent bypasses weighted
// sharing entirely — every op goes through the strict-priority front
// and none is ever deferred.
func TestServiceUrgentClass(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{
		FairQuantum: 1, // would defer heavily if the ops were weighted
		Classes:     []QoSClass{{Name: "rt", Weight: 1, Urgent: true}},
	})
	defer svc.Close()

	sess := svc.NewSession(SessionOptions{MaxInflight: 2, Class: "rt"})
	chunks := randomChunks(rng, v, 4, 20)
	if _, err := sess.RunPlan(context.Background(), chunkPlan(chunks), Options{}); err != nil {
		t.Fatal(err)
	}
	cts := svc.ClassTotals()
	if len(cts) != 1 || cts[0].Class != "rt" {
		t.Fatalf("ClassTotals = %+v", cts)
	}
	if cts[0].UrgentOps != int64(len(chunks)) || cts[0].Deferred != 0 {
		t.Fatalf("urgent class served urgent=%d deferred=%d, want %d/0",
			cts[0].UrgentOps, cts[0].Deferred, len(chunks))
	}
}

// stripElapsed zeroes the fields whose per-class observation is
// documented as non-additive (a batch's elapsed is observed once per
// contributing class, like sessions observe it).
func stripElapsed(s Stats) Stats {
	s.ElapsedMs = 0
	return s
}

// TestClassAttributionSum is the per-class attribution-sum property
// with reads, writes, flushes, and cancellations in play: summing
// every class's Attributed reproduces ServiceTotals.Attributed field
// for field (ElapsedMs excepted, as documented), and a class served by
// exactly one session matches that session's own totals.
func TestClassAttributionSum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{
		CacheBlocks: 4096,
		FairQuantum: 64,
		Classes: []QoSClass{
			{Name: "int", Weight: 1},
			{Name: "bulk", Weight: 4},
		},
		WriteBack: WriteBackOptions{Enabled: true},
	})
	defer svc.Close()

	si := svc.NewSession(SessionOptions{MaxInflight: 2, Class: "int"})
	sb := svc.NewSession(SessionOptions{MaxInflight: 2, Class: "bulk"})
	sw := svc.NewSession(SessionOptions{Class: "wr"}) // unregistered class
	sd := svc.NewSession(SessionOptions{})            // default "" class

	intChunks := randomChunks(rng, v, 3, 10)
	bulkChunks := randomChunks(rng, v, 3, 40)
	dfltChunks := randomChunks(rng, v, 2, 10)

	var wg sync.WaitGroup
	run := func(f func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f(); err != nil {
				t.Error(err)
			}
		}()
	}
	run(func() error {
		_, err := si.RunPlan(context.Background(), chunkPlan(intChunks), Options{})
		return err
	})
	run(func() error {
		_, err := sb.RunPlan(context.Background(), chunkPlan(bulkChunks), Options{})
		return err
	})
	run(func() error {
		for i := 0; i < 4; i++ {
			if _, err := sw.Write(context.Background(),
				[]lvm.Request{{VLBN: int64(100 + 8*i), Count: 4}}, disk.SchedSPTF); err != nil {
				return err
			}
		}
		return sw.Flush(context.Background())
	})
	run(func() error {
		_, err := sd.RunPlan(context.Background(), chunkPlan(dfltChunks), Options{})
		return err
	})
	wg.Wait()
	if err := svc.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	cts := svc.ClassTotals()
	want := []string{"", "bulk", "int", "wr"}
	if len(cts) != len(want) {
		t.Fatalf("ClassTotals classes %v, want %v", cts, want)
	}
	var classSum Stats
	byClass := map[string]ClassTotals{}
	for i, ct := range cts {
		if ct.Class != want[i] {
			t.Fatalf("ClassTotals[%d] = %q, want %q (sorted)", i, ct.Class, want[i])
		}
		byClass[ct.Class] = ct
		st := stripElapsed(ct.Attributed)
		classSum.Accumulate(st)
	}
	svcAttr := stripElapsed(svc.Totals().Attributed)
	statsClose(classSum, svcAttr, t)

	// One session per class: the class's slice is exactly what the
	// session observed.
	for _, pair := range []struct {
		name string
		sess *Session
	}{{"int", si}, {"bulk", sb}, {"wr", sw}, {"", sd}} {
		statsClose(stripElapsed(byClass[pair.name].Attributed),
			stripElapsed(pair.sess.Totals()), t)
	}
}

// TestStatsAccumulatePartial: the Partial flag OR-folds through
// Accumulate, so one partial shard/chunk marks the merged result.
func TestStatsAccumulatePartial(t *testing.T) {
	var sum Stats
	sum.Accumulate(Stats{Cells: 1})
	if sum.Partial {
		t.Fatal("Partial set without a partial input")
	}
	sum.Accumulate(Stats{Cells: 2, Partial: true})
	sum.Accumulate(Stats{Cells: 3})
	if !sum.Partial {
		t.Fatal("Partial lost in accumulation")
	}
}
