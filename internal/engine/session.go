package engine

import (
	"context"
	"errors"
	"sync"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// ErrClosed is returned by sessions and services once their service has
// been closed (Service.Close, or the volume layers' Close above it).
// Submissions after Close fail fast with this sentinel instead of
// panicking or hanging on the retired loop; test with errors.Is.
var ErrClosed = errors.New("engine: service is closed")

// Runner executes a plan and aggregates its statistics. Two
// implementations exist: OnVolume (the synchronous single-caller path,
// identical to Run) and Session (submission through a volume's
// concurrent Service). The context governs cancellation: a cancelled or
// past-deadline context stops the drain between chunks and returns the
// partial Stats of the work already issued alongside ctx's error.
type Runner interface {
	RunPlan(ctx context.Context, p Plan, opts Options) (Stats, error)
}

// QuerySession is the full session surface a query layer needs from
// one volume's service: plan execution, write submission, and lifetime
// totals. It is the interchange point between the single-volume
// *Session and the shard layer — a scatter-gather session hands out one
// QuerySession per shard, so code written against the interface (the
// update path, cell fetches) runs unchanged whether the dataset lives
// on one volume or on many.
type QuerySession interface {
	Runner
	Write(ctx context.Context, reqs []lvm.Request, policy disk.SchedPolicy) (Stats, error)
	// Flush commits the service's write-back dirty buffer (a no-op with
	// write-back off); see Session.Flush.
	Flush(ctx context.Context) error
	Totals() Stats
}

// volumeRunner adapts the synchronous RunContext to the Runner
// interface.
type volumeRunner struct{ vol *lvm.Volume }

func (r volumeRunner) RunPlan(ctx context.Context, p Plan, opts Options) (Stats, error) {
	return RunContext(ctx, r.vol, p, opts)
}

// OnVolume returns the synchronous Runner for a volume: RunPlan is
// exactly RunContext. Use it only when nothing else touches the volume
// — for concurrent callers, go through a Service and its Sessions.
func OnVolume(vol *lvm.Volume) Runner { return volumeRunner{vol: vol} }

// SessionOptions tunes one session.
type SessionOptions struct {
	// MaxInflight is how many plan chunks the session keeps outstanding
	// in the service at once (minimum and default 1). Even at 1 the
	// planner is pipelined: chunk N+1 is planned while chunk N is on
	// the disks. Values above 1 let one query's chunks share admission
	// batches, trading exact single-stream schedule reproduction for
	// more cross-chunk coalescing.
	MaxInflight int
	// Class is the session's QoS class name (see QoSClass). Every op the
	// session submits is queued, scheduled, cached, and accounted under
	// it. "" is the default class; class names of sessions on one
	// service should be registered via ServiceOptions.Classes /
	// SetFairShare when fair sharing is on (unregistered names get
	// weight 1 and no cache reserve).
	Class string
}

// Session is one client's handle on a Service. Sessions are cheap and
// safe for concurrent use; each RunPlan call gets its own Stats, and
// the session accumulates lifetime totals.
type Session struct {
	svc         *Service
	maxInflight int
	class       string

	mu     sync.Mutex
	totals Stats
}

// NewSession opens a client session on the service.
func (s *Service) NewSession(opts SessionOptions) *Session {
	mi := opts.MaxInflight
	if mi < 1 {
		mi = 1
	}
	return &Session{svc: s, maxInflight: mi, class: opts.Class}
}

// Class returns the session's QoS class name ("" for the default
// class).
func (s *Session) Class() string { return s.class }

// Totals returns the session's accumulated statistics across every
// completed RunPlan.
func (s *Session) Totals() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totals
}

// RunPlan drains a plan through the service, planning ahead of the
// disks: a planner goroutine produces the next chunk while earlier
// chunks are in flight, and up to MaxInflight chunks ride the service
// queue at once. Costs attributed by the service loop are folded into
// this query's Stats in chunk order, so a lone session with the cache
// off returns bit-identical Stats to Run. Options.Trace, when set, is
// invoked from the service loop with this query's attributed
// completions.
//
// Cancellation: the submit loop checks ctx before every chunk, and the
// service drops this query's already-queued chunks before admission —
// dropped chunks free their inflight slots, charge no simulated I/O,
// and bump Stats.Cancelled/DeadlineExceeded. On any error RunPlan
// returns the partial Stats of the chunks that were served (the same
// partial work is folded into the session's lifetime totals, so
// summing session totals still reproduces ServiceTotals.Attributed for
// issued work).
func (s *Session) RunPlan(ctx context.Context, p Plan, opts Options) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	type planned struct {
		c   Chunk
		ok  bool
		err error
	}
	quit := make(chan struct{})
	defer close(quit)
	planCh := make(chan planned, s.maxInflight)
	go func() {
		defer close(planCh)
		for {
			c, ok, err := p.Next()
			select {
			case planCh <- planned{c: c, ok: ok, err: err}:
				if !ok || err != nil {
					return
				}
			case <-quit:
				return
			}
		}
	}()

	var st Stats
	var pending []*serviceOp
	// credit folds one served chunk's attributed results into the
	// query's Stats — the single copy both the success path and the
	// failure drain use, so the attribution-sum property cannot drift
	// between them. A dropped chunk contributes only its cancellation
	// counter.
	credit := func(op *serviceOp, r opResult) {
		if r.err != nil {
			st.countContextErr(r.err)
			return
		}
		st.AddCompletions(r.comps, r.elapsed)
		st.Padding += op.chunk.Padding
		st.Cells += r.hitCells
		st.CacheHits += r.hits
		st.CacheMisses += r.misses
		if opts.OnChunk != nil {
			// Rebuild the chunk's own delta from its results instead of
			// diffing st, so the query's running totals accumulate in
			// exactly the same order whether streaming is on or off.
			var d Stats
			d.AddCompletions(r.comps, r.elapsed)
			d.Padding = op.chunk.Padding
			d.Cells += r.hitCells
			d.CacheHits = r.hits
			d.CacheMisses = r.misses
			opts.OnChunk(d)
		}
	}
	fold := func(op *serviceOp) error {
		r := <-op.reply
		credit(op, r)
		putOp(op) // reply consumed: this goroutine is the last holder
		return r.err
	}
	// finish folds (or, after a failure, waits out) every outstanding
	// op. Submitted chunks are always drained to their reply: the query
	// must not return while the loop could still serve its chunks and
	// fire its Trace callback. Chunks the loop already served are folded
	// into the session's lifetime totals even when the query fails, so
	// summing session totals still reproduces ServiceTotals.Attributed.
	finish := func(failed error) (Stats, error) {
		var err error
		for _, op := range pending {
			if failed != nil || err != nil {
				credit(op, <-op.reply)
				putOp(op)
				continue
			}
			err = fold(op)
		}
		pending = nil
		if failed == nil {
			failed = err
		}
		s.mu.Lock()
		s.totals.Accumulate(st)
		s.mu.Unlock()
		return st, failed
	}

	for pl := range planCh {
		if pl.err != nil {
			return finish(pl.err)
		}
		if !pl.ok {
			break
		}
		if err := ctx.Err(); err != nil {
			// Stop planning: this chunk was never queued, so it counts
			// here rather than in the service's drop bookkeeping.
			st.countContextErr(err)
			return finish(err)
		}
		policy := pl.c.Policy
		if opts.Policy != nil {
			policy = *opts.Policy
		}
		op := getOp()
		op.kind = opChunk
		op.ctx = ctx
		op.chunk = pl.c
		op.policy = policy
		op.trace = opts.Trace
		op.class = s.class
		if err := s.svc.submit(op); err != nil {
			putOp(op) // never queued: submit sends no reply
			return finish(err)
		}
		pending = append(pending, op)
		if len(pending) >= s.maxInflight {
			if err := fold(pending[0]); err != nil {
				pending = pending[1:]
				return finish(err)
			}
			pending = pending[1:]
		}
	}
	return finish(nil)
}

// Write submits one batch of block writes through the service as a
// first-class write op. The service loop invalidates every cached
// extent overlapping the mutated [lbn, lbn+count) ranges before the
// write's simulated I/O is served under the given policy; by the time
// Write returns, no stale extent over those blocks survives, so a
// subsequent read through any session pays the full disk cost. The
// returned Stats carry the write's I/O time with the blocks in Writes
// (not Cells) and the invalidation count in InvalidatedBlocks.
//
// A write whose ctx is cancelled or past its deadline before admission
// is dropped before any simulated I/O is issued or charged — but its
// cache invalidation still happens (the submitter's cell state already
// mutated, so stale extents must not stay readable): the returned
// Stats carry the invalidation count and the matching cancellation
// counter alongside the context error. Writes are therefore always
// submitted, never short-circuited on a pre-cancelled ctx.
func (s *Session) Write(ctx context.Context, reqs []lvm.Request, policy disk.SchedPolicy) (Stats, error) {
	op := getOp()
	op.kind = opWrite
	op.ctx = ctx
	op.chunk = Chunk{Reqs: reqs}
	op.policy = policy
	op.owner = s
	op.class = s.class
	if err := s.svc.submit(op); err != nil {
		putOp(op)
		return Stats{}, err
	}
	r := <-op.reply
	putOp(op)
	var st Stats
	if r.err != nil {
		// A drop before admission carries a context error; a served
		// write that failed carries a volume error, which the classifier
		// ignores.
		st.countContextErr(r.err)
	}
	st.AddWriteCompletions(r.comps, r.elapsed)
	// Write-back absorption acknowledges the op with zero I/O cost: the
	// blocks land in Writes here, at absorb time, and the deferred I/O
	// is credited to the session's lifetime totals when the group commit
	// flushes (see Service.flushDirty).
	st.Writes += r.written
	st.CoalescedWrites = r.coalesced
	st.InvalidatedBlocks = r.invalidated
	st.CowFaultBlocks = r.cowFaults
	// Invalidation sticks even when the write I/O itself failed, so it
	// is folded into the lifetime totals either way (the sum property
	// against ServiceTotals.Attributed holds for failed writes too).
	s.mu.Lock()
	s.totals.Accumulate(st)
	s.mu.Unlock()
	if r.err != nil {
		return st, r.err
	}
	return st, nil
}

// Flush commits the service's write-back dirty buffer as one group
// commit and returns once every previously buffered write — this
// session's and everyone else's — has paid its simulated I/O. A no-op
// with write-back off or nothing dirty. The committed cost lands in
// the contributing sessions' lifetime Totals (not in this call's
// return, which has none); a ctx already dead when the loop reaches
// the op aborts without flushing. Returns ErrClosed after Close.
func (s *Session) Flush(ctx context.Context) error {
	return s.svc.Flush(ctx)
}

// creditFlush folds this session's attributed share of one group
// commit into its lifetime totals. Called from the service loop at
// flush time — the deferred half of a write acknowledged at absorb
// time.
func (s *Session) creditFlush(st Stats) {
	s.mu.Lock()
	s.totals.Accumulate(st)
	s.mu.Unlock()
}

var _ QuerySession = (*Session)(nil)

// Accumulate folds another query's stats into s — lifetime session
// totals, experiment aggregation.
func (s *Stats) Accumulate(q Stats) {
	s.Cells += q.Cells
	s.Padding += q.Padding
	s.Requests += q.Requests
	s.TotalMs += q.TotalMs
	s.ElapsedMs += q.ElapsedMs
	s.CommandMs += q.CommandMs
	s.SeekMs += q.SeekMs
	s.RotateMs += q.RotateMs
	s.TransferMs += q.TransferMs
	s.CacheHits += q.CacheHits
	s.CacheMisses += q.CacheMisses
	s.Writes += q.Writes
	s.InvalidatedBlocks += q.InvalidatedBlocks
	s.CoalescedWrites += q.CoalescedWrites
	s.CowFaultBlocks += q.CowFaultBlocks
	s.FlushBatches += q.FlushBatches
	s.Cancelled += q.Cancelled
	s.DeadlineExceeded += q.DeadlineExceeded
	s.Partial = s.Partial || q.Partial
}
