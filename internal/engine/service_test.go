package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// chunkPlan replays a fixed chunk sequence (fresh cursor per plan).
func chunkPlan(chunks []Chunk) Plan {
	i := 0
	return planFunc(func() (Chunk, bool, error) {
		if i == len(chunks) {
			return Chunk{}, false, nil
		}
		i++
		return chunks[i-1], true, nil
	})
}

func randomChunks(rng *rand.Rand, v *lvm.Volume, nChunks, perChunk int) []Chunk {
	chunks := make([]Chunk, nChunks)
	for i := range chunks {
		policy := disk.SchedSPTF
		if i%2 == 1 {
			policy = disk.SchedFIFO
		}
		chunks[i] = Chunk{
			Reqs:    SortCoalesce(randomReqs(rng, v, perChunk)),
			Policy:  policy,
			Padding: int64(i % 3),
		}
	}
	return chunks
}

// TestSessionSingleMatchesRun: a lone session with the cache off must
// return bit-identical Stats to the synchronous engine — same chunks,
// same policies, same floating-point fold order.
func TestSessionSingleMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vRun := testVolume(t)
	vSvc := testVolume(t)
	chunks := randomChunks(rng, vRun, 5, 40)

	want, err := Run(vRun, chunkPlan(chunks), Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(vSvc, ServiceOptions{})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	got, err := sess.RunPlan(context.Background(), chunkPlan(chunks), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("session stats %+v != engine.Run stats %+v", got, want)
	}
	if tot := svc.Totals(); tot.Attributed != want || tot.Batches != 5 || tot.MergedBatches != 0 {
		t.Fatalf("service totals %+v inconsistent with %+v", tot, want)
	}
	if sess.Totals() != want {
		t.Fatalf("session lifetime totals %+v != %+v", sess.Totals(), want)
	}

	// The policy override must flow through sessions too.
	vRun2, vSvc2 := testVolume(t), testVolume(t)
	fifo := disk.SchedFIFO
	want2, err := Run(vRun2, chunkPlan(chunks), Options{Policy: &fifo})
	if err != nil {
		t.Fatal(err)
	}
	svc2 := NewService(vSvc2, ServiceOptions{})
	defer svc2.Close()
	got2, err := svc2.NewSession(SessionOptions{}).RunPlan(context.Background(), chunkPlan(chunks), Options{Policy: &fifo})
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want2 {
		t.Fatalf("override via session %+v != via Run %+v", got2, want2)
	}
}

// statsClose compares two stats up to floating-point attribution drift.
func statsClose(a, b Stats, tb testing.TB) {
	tb.Helper()
	if a.Cells != b.Cells || a.Padding != b.Padding || a.Requests != b.Requests ||
		a.CacheHits != b.CacheHits || a.CacheMisses != b.CacheMisses ||
		a.Writes != b.Writes || a.InvalidatedBlocks != b.InvalidatedBlocks ||
		a.CoalescedWrites != b.CoalescedWrites || a.FlushBatches != b.FlushBatches {
		tb.Fatalf("integer stats differ: %+v vs %+v", a, b)
	}
	for _, p := range [][2]float64{
		{a.TotalMs, b.TotalMs}, {a.CommandMs, b.CommandMs}, {a.SeekMs, b.SeekMs},
		{a.RotateMs, b.RotateMs}, {a.TransferMs, b.TransferMs},
	} {
		if diff := math.Abs(p[0] - p[1]); diff > 1e-6*(1+math.Abs(p[0])) {
			tb.Fatalf("float stats differ by %g: %+v vs %+v", diff, a, b)
		}
	}
}

// TestServiceConcurrentSessions runs many goroutines' worth of mixed
// plans through one service (run with -race): each session must be
// credited exactly its own blocks, and the per-session Stats must sum
// to the service loop's attributed totals.
func TestServiceConcurrentSessions(t *testing.T) {
	v := testVolume(t, disk.SmallTestDisk(), disk.SmallTestDisk(), disk.SmallTestDisk())
	svc := NewService(v, ServiceOptions{CacheBlocks: 4096})
	defer svc.Close()

	const clients = 8
	var wg sync.WaitGroup
	sessions := make([]*Session, clients)
	wantCells := make([]int64, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		sessions[i] = svc.NewSession(SessionOptions{MaxInflight: 1 + i%3})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			for q := 0; q < 6; q++ {
				chunks := randomChunks(rng, v, 1+rng.Intn(3), 30)
				for _, c := range chunks {
					for _, r := range c.Reqs {
						wantCells[i] += int64(r.Count)
					}
				}
				st, err := sessions[i].RunPlan(context.Background(), chunkPlan(chunks), Options{})
				if err != nil {
					errs[i] = err
					return
				}
				if st.Requests+int(st.CacheHits) == 0 {
					errs[i] = fmt.Errorf("query credited no work: %+v", st)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	var sum Stats
	for i, s := range sessions {
		st := s.Totals()
		if st.Cells != wantCells[i] {
			t.Errorf("session %d credited %d cells, want %d", i, st.Cells, wantCells[i])
		}
		sum.Accumulate(st)
	}
	tot := svc.Totals()
	// ElapsedMs is per-batch for the loop but per-chunk for sessions, so
	// align it before the exact comparison.
	sum.ElapsedMs = tot.Attributed.ElapsedMs
	statsClose(sum, tot.Attributed, t)
	if tot.Batches == 0 || tot.IssuedRequests == 0 {
		t.Fatalf("service served nothing: %+v", tot)
	}
	if sum.TotalMs <= 0 {
		t.Fatal("no simulated time attributed")
	}
}

// TestServeMergedAttribution drives the cross-query coalescing path
// directly: overlapping, adjacent, identical, and disjoint requests
// from two queries must merge into shared extents whose costs are split
// back in proportion to the blocks each query asked for.
func TestServeMergedAttribution(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{})
	defer svc.Close()

	mk := func(reqs ...lvm.Request) *serviceOp {
		return &serviceOp{
			kind:   opChunk,
			chunk:  Chunk{Reqs: reqs, Policy: disk.SchedSPTF},
			policy: disk.SchedSPTF,
			reply:  make(chan opResult, 1),
		}
	}
	a := mk(
		lvm.Request{VLBN: 1000, Count: 16}, // overlaps b's first
		lvm.Request{VLBN: 5000, Count: 8},  // identical to b's second
		lvm.Request{VLBN: 9000, Count: 4},  // disjoint
	)
	b := mk(
		lvm.Request{VLBN: 1008, Count: 16}, // overlaps a's first
		lvm.Request{VLBN: 5000, Count: 8},
		lvm.Request{VLBN: 1024, Count: 8}, // adjacent to the merged [1000,1024)
	)
	svc.serveMerged([]*serviceOp{a, b})
	ra, rb := <-a.reply, <-b.reply
	if ra.err != nil || rb.err != nil {
		t.Fatal(ra.err, rb.err)
	}
	// Extents: [1000,1032) from three requests, [5000,5008) shared,
	// [9000,9004) alone.
	tot := svc.Totals()
	if tot.IssuedRequests != 3 {
		t.Fatalf("issued %d extents, want 3", tot.IssuedRequests)
	}
	if tot.Batches != 1 || tot.MergedBatches != 1 || tot.MaxBatchChunks != 2 {
		t.Fatalf("batch bookkeeping wrong: %+v", tot)
	}
	var stA, stB Stats
	stA.AddCompletions(ra.comps, ra.elapsed)
	stB.AddCompletions(rb.comps, rb.elapsed)
	if stA.Cells != 16+8+4 || stB.Cells != 16+8+8 {
		t.Fatalf("cells credited A=%d B=%d, want 28 and 32", stA.Cells, stB.Cells)
	}
	if stA.Requests != 3 || stB.Requests != 3 {
		t.Fatalf("requests credited A=%d B=%d, want 3 and 3", stA.Requests, stB.Requests)
	}
	// The attributed shares must sum to the actual disk time.
	var sum Stats
	sum.Accumulate(stA)
	sum.Accumulate(stB)
	sum.ElapsedMs = tot.Attributed.ElapsedMs
	statsClose(sum, tot.Attributed, t)
	var diskMs float64
	for _, ds := range v.Stats() {
		diskMs += ds.BusyMs
	}
	if diff := math.Abs(diskMs - sum.TotalMs); diff > 1e-6*(1+diskMs) {
		t.Fatalf("attributed %.6f ms != disk busy %.6f ms", sum.TotalMs, diskMs)
	}
	// The identical request must have cost each query half the extent.
	var costA, costB float64
	for _, c := range ra.comps {
		if c.Req.VLBN == 5000 {
			costA = c.Cost.TotalMs()
		}
	}
	for _, c := range rb.comps {
		if c.Req.VLBN == 5000 {
			costB = c.Cost.TotalMs()
		}
	}
	if costA <= 0 || math.Abs(costA-costB) > 1e-9 {
		t.Fatalf("shared extent split unevenly: %.6f vs %.6f", costA, costB)
	}
}

// TestServeMergedRespectsDiskBoundaries: adjacent requests from two
// queries that touch across a disk-segment boundary must not merge into
// one extent (which the volume would reject).
func TestServeMergedRespectsDiskBoundaries(t *testing.T) {
	v := testVolume(t, disk.SmallTestDisk(), disk.SmallTestDisk())
	svc := NewService(v, ServiceOptions{})
	defer svc.Close()
	edge := v.DiskBlocks(0)
	a := &serviceOp{kind: opChunk, policy: disk.SchedSPTF, reply: make(chan opResult, 1),
		chunk: Chunk{Reqs: []lvm.Request{{VLBN: edge - 8, Count: 8}}}}
	b := &serviceOp{kind: opChunk, policy: disk.SchedSPTF, reply: make(chan opResult, 1),
		chunk: Chunk{Reqs: []lvm.Request{{VLBN: edge, Count: 8}}}}
	svc.serveMerged([]*serviceOp{a, b})
	ra, rb := <-a.reply, <-b.reply
	if ra.err != nil || rb.err != nil {
		t.Fatal(ra.err, rb.err)
	}
	if tot := svc.Totals(); tot.IssuedRequests != 2 {
		t.Fatalf("issued %d requests, want 2 (no cross-disk merge)", tot.IssuedRequests)
	}
	if ra.comps[0].DiskIdx != 0 || rb.comps[0].DiskIdx != 1 {
		t.Fatalf("requests routed to disks %d/%d, want 0/1",
			ra.comps[0].DiskIdx, rb.comps[0].DiskIdx)
	}
}

// TestServiceExtentCache: a repeated plan must be served from the cache
// the second time — zero disk time, full hit accounting — and Reset
// must drop the cached extents.
func TestServiceExtentCache(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{CacheBlocks: 1 << 20})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	reqs := []lvm.Request{{VLBN: 100, Count: 8}, {VLBN: 400, Count: 16}, {VLBN: 900, Count: 4}}

	first, err := sess.RunPlan(context.Background(), Static(reqs, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHits != 0 || first.CacheMisses != 3 || first.Requests != 3 {
		t.Fatalf("cold run accounting wrong: %+v", first)
	}
	second, err := sess.RunPlan(context.Background(), Static(reqs, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != 3 || second.CacheMisses != 0 || second.Requests != 0 {
		t.Fatalf("warm run accounting wrong: %+v", second)
	}
	if second.TotalMs != 0 || second.Cells != first.Cells {
		t.Fatalf("warm run should cost nothing and credit %d cells: %+v", first.Cells, second)
	}
	// A sub-extent of a cached extent hits too.
	sub, err := sess.RunPlan(context.Background(), Static([]lvm.Request{{VLBN: 404, Count: 4}}, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sub.CacheHits != 1 || sub.Cells != 4 {
		t.Fatalf("contained request missed the cache: %+v", sub)
	}

	if err := svc.Reset(); err != nil {
		t.Fatal(err)
	}
	cold, err := sess.RunPlan(context.Background(), Static(reqs, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 || cold.CacheMisses != 3 {
		t.Fatalf("reset did not clear the cache: %+v", cold)
	}
}

// TestExtentCacheEviction exercises the LRU bound and extent merging
// directly.
func TestExtentCacheEviction(t *testing.T) {
	c := newExtentCache(100)
	c.insert(0, 40)
	c.insert(100, 140)
	c.insert(200, 240) // over capacity: evicts [0,40), the LRU
	if c.used != 80 {
		t.Fatalf("used %d blocks, want 80", c.used)
	}
	if c.covered(0, 40) {
		t.Fatal("evicted extent still reported cached")
	}
	if !c.covered(100, 140) || !c.covered(200, 240) {
		t.Fatal("recent extents missing")
	}
	// An extent larger than the whole cache is not admitted.
	c.insert(1000, 2000)
	if c.covered(1000, 1001) {
		t.Fatal("oversized extent admitted")
	}

	// Overlap and adjacency merge into one extent.
	c = newExtentCache(200)
	c.insert(100, 140)
	c.insert(200, 240)
	c.insert(140, 160) // adjacent to [100,140)
	c.insert(150, 200) // bridges to [200,240)
	if len(c.byStart) != 1 || !c.covered(100, 240) {
		t.Fatalf("extents did not merge: %d extents, used %d", len(c.byStart), c.used)
	}
	if c.used != 140 {
		t.Fatalf("merged used %d blocks, want 140", c.used)
	}

	// A merge whose union would exceed the whole cache is skipped: the
	// existing neighbours must survive rather than be evicted through.
	c = newExtentCache(100)
	c.insert(0, 60)
	c.insert(100, 140)
	c.insert(60, 100) // union [0,140) = 140 > 100: not cached
	if !c.covered(0, 60) || !c.covered(100, 140) {
		t.Fatal("oversized merge evicted its neighbours")
	}
	if c.covered(60, 100) || c.used != 100 {
		t.Fatalf("oversized merge was cached anyway (used %d)", c.used)
	}
}

// TestExtentCacheInvalidate exercises write-aware invalidation: full
// drops, trims, straddling splits, and recency preservation.
func TestExtentCacheInvalidate(t *testing.T) {
	c := newExtentCache(1000)
	c.insert(100, 200)
	c.insert(300, 400)
	c.insert(500, 600)

	// Fully covered extent drops.
	if got := c.invalidate(300, 400); got != 100 {
		t.Fatalf("invalidated %d blocks, want 100", got)
	}
	if c.covered(300, 301) || c.used != 200 {
		t.Fatalf("extent survived full invalidation (used %d)", c.used)
	}

	// A range straddling the middle splits the extent in two.
	if got := c.invalidate(130, 150); got != 20 {
		t.Fatalf("invalidated %d blocks, want 20", got)
	}
	if !c.covered(100, 130) || !c.covered(150, 200) {
		t.Fatal("split remnants missing")
	}
	if c.covered(130, 131) || c.covered(125, 155) {
		t.Fatal("invalidated gap still reported covered")
	}
	if c.used != 180 {
		t.Fatalf("used %d blocks after split, want 180", c.used)
	}

	// Overlapping several extents: trim edges, keep the outside.
	if got := c.invalidate(190, 520); got != 30 {
		t.Fatalf("invalidated %d blocks, want 30 (10 + 20)", got)
	}
	if !c.covered(150, 190) || !c.covered(520, 600) {
		t.Fatal("trimmed remnants missing")
	}
	if c.covered(195, 196) || c.covered(505, 506) {
		t.Fatal("trimmed ranges still covered")
	}

	// A miss range invalidates nothing.
	if got := c.invalidate(700, 800); got != 0 {
		t.Fatalf("invalidated %d blocks in empty range", got)
	}

	// Remnants keep their LRU position: filling the cache must evict
	// the oldest remnant first, not a fresh insert.
	c = newExtentCache(100)
	c.insert(0, 60)      // oldest
	c.insert(100, 140)   // newer
	c.invalidate(20, 40) // splits [0,60) into two remnants, same recency
	c.insert(200, 240)   // 40+40+40+... = 120 > 100: evicts LRU remnants
	if !c.covered(100, 140) || !c.covered(200, 240) {
		t.Fatal("newer extents evicted instead of the old remnants")
	}
}

// TestServiceWriteInvalidates: a write op must drop exactly the cached
// extents overlapping its ranges, charge real I/O to the session, and
// force the next read of those blocks back to the disks.
func TestServiceWriteInvalidates(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{CacheBlocks: 1 << 20})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	reqs := []lvm.Request{{VLBN: 100, Count: 8}, {VLBN: 400, Count: 16}}
	if _, err := sess.RunPlan(context.Background(), Static(reqs, disk.SchedSPTF), Options{}); err != nil {
		t.Fatal(err)
	}

	// Write over the second extent only.
	wst, err := sess.Write(context.Background(), []lvm.Request{{VLBN: 404, Count: 4}}, disk.SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	if wst.Writes != 4 || wst.Requests != 1 || wst.TotalMs <= 0 {
		t.Fatalf("write not charged: %+v", wst)
	}
	// Only the dirtied blocks drop; the clean remnants [400,404) and
	// [408,416) stay cached (they still hold valid data).
	if wst.InvalidatedBlocks != 4 {
		t.Fatalf("invalidated %d blocks, want exactly the dirtied range (4)", wst.InvalidatedBlocks)
	}
	if wst.Cells != 0 {
		t.Fatalf("write blocks credited as cells: %+v", wst)
	}

	// First extent still hits; the written one must miss again.
	st, err := sess.RunPlan(context.Background(), Static(reqs, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("post-write read: hits=%d misses=%d, want 1/1: %+v", st.CacheHits, st.CacheMisses, st)
	}

	tot := svc.Totals()
	if tot.WriteOps != 1 || tot.InvalidatedBlocks != 4 {
		t.Fatalf("service write bookkeeping wrong: %+v", tot)
	}
	if tot.Attributed.Writes != 4 {
		t.Fatalf("attributed writes %d, want 4", tot.Attributed.Writes)
	}
	// The session's lifetime totals must reproduce the attributed sum.
	lt := sess.Totals()
	lt.ElapsedMs = tot.Attributed.ElapsedMs
	statsClose(lt, tot.Attributed, t)
	if lt.Writes != tot.Attributed.Writes || lt.InvalidatedBlocks != tot.Attributed.InvalidatedBlocks {
		t.Fatalf("write fields differ: session %+v vs attributed %+v", lt, tot.Attributed)
	}
}

// TestServiceBatchReadsBeforeWrites pins the documented ordering policy:
// within one admission batch, read chunks are served before writes, so
// a read admitted with a conflicting write linearizes before it (and
// the write's invalidation lands after the read primed the cache).
func TestServiceBatchReadsBeforeWrites(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{CacheBlocks: 1 << 20})
	defer svc.Close()

	read := &serviceOp{
		kind:   opChunk,
		chunk:  Chunk{Reqs: []lvm.Request{{VLBN: 100, Count: 8}}, Policy: disk.SchedSPTF},
		policy: disk.SchedSPTF,
		reply:  make(chan opResult, 1),
	}
	write := &serviceOp{
		kind:   opWrite,
		chunk:  Chunk{Reqs: []lvm.Request{{VLBN: 100, Count: 8}}},
		policy: disk.SchedSPTF,
		reply:  make(chan opResult, 1),
	}
	// Write submitted BEFORE the read, same admission batch: the read
	// must still be served first (miss — nothing cached yet), then the
	// write invalidates what the read just cached.
	svc.process([]*serviceOp{write, read}, 0)
	rr, rw := <-read.reply, <-write.reply
	if rr.err != nil || rw.err != nil {
		t.Fatal(rr.err, rw.err)
	}
	if rr.hits != 0 || rr.misses != 1 {
		t.Fatalf("read in mixed batch: hits=%d misses=%d, want 0/1", rr.hits, rr.misses)
	}
	if rw.invalidated != 8 {
		t.Fatalf("write invalidated %d blocks, want the read's fresh extent (8)", rw.invalidated)
	}
	// After the batch, the blocks are uncached.
	sess := svc.NewSession(SessionOptions{})
	st, err := sess.RunPlan(context.Background(), Static([]lvm.Request{{VLBN: 100, Count: 8}}, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 0 || st.CacheMisses != 1 {
		t.Fatalf("blocks still cached after in-batch write: %+v", st)
	}
}

// TestServiceConcurrentWrites mixes writers and readers under -race and
// re-checks the attribution sum property with write ops in play.
func TestServiceConcurrentWrites(t *testing.T) {
	v := testVolume(t, disk.SmallTestDisk(), disk.SmallTestDisk())
	svc := NewService(v, ServiceOptions{CacheBlocks: 4096})
	defer svc.Close()

	const clients = 6
	sessions := make([]*Session, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		sessions[i] = svc.NewSession(SessionOptions{MaxInflight: 1 + i%2})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + i)))
			for q := 0; q < 8; q++ {
				if q%3 == 2 {
					reqs := SortCoalesce(randomReqs(rng, v, 5))
					if _, err := sessions[i].Write(context.Background(), reqs, disk.SchedSPTF); err != nil {
						errs[i] = err
						return
					}
					continue
				}
				chunks := randomChunks(rng, v, 1+rng.Intn(2), 20)
				if _, err := sessions[i].RunPlan(context.Background(), chunkPlan(chunks), Options{}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	var sum Stats
	for _, s := range sessions {
		sum.Accumulate(s.Totals())
	}
	tot := svc.Totals()
	sum.ElapsedMs = tot.Attributed.ElapsedMs
	statsClose(sum, tot.Attributed, t)
	if sum.Writes != tot.Attributed.Writes || sum.InvalidatedBlocks != tot.Attributed.InvalidatedBlocks {
		t.Fatalf("write attribution mismatch: sessions %+v vs service %+v", sum, tot.Attributed)
	}
	// q%3==2 fires twice per client over 8 queries.
	if tot.WriteOps != clients*2 || sum.Writes == 0 {
		t.Fatalf("expected %d write ops with blocks written, got %+v (writes=%d)",
			clients*2, tot, sum.Writes)
	}
}

// TestServiceMaxBatch: a MaxBatch cap must split one admission run into
// several batches, with every chunk still answered and accounted.
func TestServiceMaxBatch(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{MaxBatch: 2})
	defer svc.Close()
	rng := rand.New(rand.NewSource(21))
	ops := make([]*serviceOp, 5)
	for i := range ops {
		ops[i] = &serviceOp{
			kind:   opChunk,
			chunk:  Chunk{Reqs: SortCoalesce(randomReqs(rng, v, 8)), Policy: disk.SchedSPTF},
			policy: disk.SchedSPTF,
			reply:  make(chan opResult, 1),
		}
	}
	svc.process(ops, 0)
	var credited int64
	for i, op := range ops {
		r := <-op.reply
		if r.err != nil {
			t.Fatalf("op %d: %v", i, r.err)
		}
		for _, c := range r.comps {
			credited += int64(c.Req.Count)
		}
	}
	var want int64
	for _, op := range ops {
		for _, r := range op.chunk.Reqs {
			want += int64(r.Count)
		}
	}
	if credited != want {
		t.Fatalf("credited %d blocks across split batches, want %d", credited, want)
	}
	tot := svc.Totals()
	if tot.Batches != 3 || tot.MaxBatchChunks != 2 || tot.MergedBatches != 2 {
		t.Fatalf("MaxBatch=2 over 5 chunks should give 3 batches (2+2+1): %+v", tot)
	}
}

// TestServiceClose: submitting after Close fails cleanly, Close is
// idempotent, and Reset on a closed service reports the error.
func TestServiceClose(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{})
	sess := svc.NewSession(SessionOptions{})
	if _, err := sess.RunPlan(context.Background(), Static(randomReqs(rand.New(rand.NewSource(5)), v, 10), disk.SchedSPTF), Options{}); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close()
	if _, err := sess.RunPlan(context.Background(), Static([]lvm.Request{{VLBN: 0, Count: 1}}, disk.SchedSPTF), Options{}); err == nil {
		t.Fatal("RunPlan after Close should fail")
	}
	if err := svc.Reset(); err == nil {
		t.Fatal("Reset after Close should fail")
	}
}

// TestSessionPlanError: a failing plan aborts the query and reports the
// planner's error — but chunks the service already served still land in
// the session's lifetime totals, preserving the attribution sum
// property for workloads containing failed queries.
func TestSessionPlanError(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{})
	defer svc.Close()
	boom := fmt.Errorf("boom")
	i := 0
	p := planFunc(func() (Chunk, bool, error) {
		i++
		if i > 2 {
			return Chunk{}, false, boom
		}
		return Chunk{Reqs: []lvm.Request{{VLBN: int64(i) * 100, Count: 4}}, Policy: disk.SchedSPTF}, true, nil
	})
	sess := svc.NewSession(SessionOptions{MaxInflight: 2})
	if _, err := sess.RunPlan(context.Background(), p, Options{}); err != boom {
		t.Fatalf("got %v, want planner error", err)
	}
	tot := svc.Totals()
	lt := sess.Totals()
	lt.ElapsedMs = tot.Attributed.ElapsedMs
	statsClose(lt, tot.Attributed, t)
	if lt.Cells != 8 {
		t.Fatalf("served chunks of the failed query not in lifetime totals: %+v", lt)
	}
}

// BenchmarkService measures end-to-end service throughput at 1, 4, and
// 16 concurrent clients, cache off and on, with a pure-read and a
// 10%-writes workload, next to the raw Execute benchmarks: each op is
// one client-query of 200 requests over a compact band (overlapping
// across clients, so the cache has work — and the writes give its
// invalidation path work).
func BenchmarkService(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		for _, cacheBlocks := range []int64{0, 1 << 22} {
			for _, writeEvery := range []int{0, 10} { // 0 = read-only, 10 = 10% writes
				name := fmt.Sprintf("clients=%d/cache=%d/writes=%d%%", clients, cacheBlocks, writeEvery)
				b.Run(name, func(b *testing.B) {
					v := testVolume(b, disk.AtlasTenKIII())
					svc := NewService(v, ServiceOptions{CacheBlocks: cacheBlocks})
					defer svc.Close()
					plans := make([][]lvm.Request, clients)
					writes := make([][]lvm.Request, clients)
					for i := range plans {
						rng := rand.New(rand.NewSource(int64(40 + i)))
						base := int64(1_000_000)
						plans[i] = make([]lvm.Request, 200)
						for j := range plans[i] {
							plans[i][j] = lvm.Request{VLBN: base + rng.Int63n(400_000), Count: 1 + rng.Intn(8)}
						}
						if writeEvery > 0 {
							// One write op per writeEvery reads, over the
							// same band so it collides with cached extents.
							writes[i] = make([]lvm.Request, len(plans[i])/writeEvery)
							for j := range writes[i] {
								writes[i][j] = lvm.Request{VLBN: base + rng.Int63n(400_000), Count: 1 + rng.Intn(4)}
							}
						}
					}
					b.ResetTimer()
					for n := 0; n < b.N; n++ {
						var wg sync.WaitGroup
						for i := 0; i < clients; i++ {
							wg.Add(1)
							go func(i int) {
								defer wg.Done()
								sess := svc.NewSession(SessionOptions{})
								if _, err := sess.RunPlan(context.Background(), Static(plans[i], disk.SchedSPTF), Options{}); err != nil {
									b.Error(err)
									return
								}
								for _, w := range writes[i] {
									if _, err := sess.Write(context.Background(), []lvm.Request{w}, disk.SchedSPTF); err != nil {
										b.Error(err)
										return
									}
								}
							}(i)
						}
						wg.Wait()
					}
				})
			}
		}
	}
}
