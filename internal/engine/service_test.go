package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// chunkPlan replays a fixed chunk sequence (fresh cursor per plan).
func chunkPlan(chunks []Chunk) Plan {
	i := 0
	return planFunc(func() (Chunk, bool, error) {
		if i == len(chunks) {
			return Chunk{}, false, nil
		}
		i++
		return chunks[i-1], true, nil
	})
}

func randomChunks(rng *rand.Rand, v *lvm.Volume, nChunks, perChunk int) []Chunk {
	chunks := make([]Chunk, nChunks)
	for i := range chunks {
		policy := disk.SchedSPTF
		if i%2 == 1 {
			policy = disk.SchedFIFO
		}
		chunks[i] = Chunk{
			Reqs:    SortCoalesce(randomReqs(rng, v, perChunk)),
			Policy:  policy,
			Padding: int64(i % 3),
		}
	}
	return chunks
}

// TestSessionSingleMatchesRun: a lone session with the cache off must
// return bit-identical Stats to the synchronous engine — same chunks,
// same policies, same floating-point fold order.
func TestSessionSingleMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vRun := testVolume(t)
	vSvc := testVolume(t)
	chunks := randomChunks(rng, vRun, 5, 40)

	want, err := Run(vRun, chunkPlan(chunks), Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(vSvc, ServiceOptions{})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	got, err := sess.RunPlan(chunkPlan(chunks), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("session stats %+v != engine.Run stats %+v", got, want)
	}
	if tot := svc.Totals(); tot.Attributed != want || tot.Batches != 5 || tot.MergedBatches != 0 {
		t.Fatalf("service totals %+v inconsistent with %+v", tot, want)
	}
	if sess.Totals() != want {
		t.Fatalf("session lifetime totals %+v != %+v", sess.Totals(), want)
	}

	// The policy override must flow through sessions too.
	vRun2, vSvc2 := testVolume(t), testVolume(t)
	fifo := disk.SchedFIFO
	want2, err := Run(vRun2, chunkPlan(chunks), Options{Policy: &fifo})
	if err != nil {
		t.Fatal(err)
	}
	svc2 := NewService(vSvc2, ServiceOptions{})
	defer svc2.Close()
	got2, err := svc2.NewSession(SessionOptions{}).RunPlan(chunkPlan(chunks), Options{Policy: &fifo})
	if err != nil {
		t.Fatal(err)
	}
	if got2 != want2 {
		t.Fatalf("override via session %+v != via Run %+v", got2, want2)
	}
}

// statsClose compares two stats up to floating-point attribution drift.
func statsClose(a, b Stats, tb testing.TB) {
	tb.Helper()
	if a.Cells != b.Cells || a.Padding != b.Padding || a.Requests != b.Requests ||
		a.CacheHits != b.CacheHits || a.CacheMisses != b.CacheMisses {
		tb.Fatalf("integer stats differ: %+v vs %+v", a, b)
	}
	for _, p := range [][2]float64{
		{a.TotalMs, b.TotalMs}, {a.CommandMs, b.CommandMs}, {a.SeekMs, b.SeekMs},
		{a.RotateMs, b.RotateMs}, {a.TransferMs, b.TransferMs},
	} {
		if diff := math.Abs(p[0] - p[1]); diff > 1e-6*(1+math.Abs(p[0])) {
			tb.Fatalf("float stats differ by %g: %+v vs %+v", diff, a, b)
		}
	}
}

// TestServiceConcurrentSessions runs many goroutines' worth of mixed
// plans through one service (run with -race): each session must be
// credited exactly its own blocks, and the per-session Stats must sum
// to the service loop's attributed totals.
func TestServiceConcurrentSessions(t *testing.T) {
	v := testVolume(t, disk.SmallTestDisk(), disk.SmallTestDisk(), disk.SmallTestDisk())
	svc := NewService(v, ServiceOptions{CacheBlocks: 4096})
	defer svc.Close()

	const clients = 8
	var wg sync.WaitGroup
	sessions := make([]*Session, clients)
	wantCells := make([]int64, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		sessions[i] = svc.NewSession(SessionOptions{MaxInflight: 1 + i%3})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			for q := 0; q < 6; q++ {
				chunks := randomChunks(rng, v, 1+rng.Intn(3), 30)
				for _, c := range chunks {
					for _, r := range c.Reqs {
						wantCells[i] += int64(r.Count)
					}
				}
				st, err := sessions[i].RunPlan(chunkPlan(chunks), Options{})
				if err != nil {
					errs[i] = err
					return
				}
				if st.Requests+int(st.CacheHits) == 0 {
					errs[i] = fmt.Errorf("query credited no work: %+v", st)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	var sum Stats
	for i, s := range sessions {
		st := s.Totals()
		if st.Cells != wantCells[i] {
			t.Errorf("session %d credited %d cells, want %d", i, st.Cells, wantCells[i])
		}
		sum.Accumulate(st)
	}
	tot := svc.Totals()
	// ElapsedMs is per-batch for the loop but per-chunk for sessions, so
	// align it before the exact comparison.
	sum.ElapsedMs = tot.Attributed.ElapsedMs
	statsClose(sum, tot.Attributed, t)
	if tot.Batches == 0 || tot.IssuedRequests == 0 {
		t.Fatalf("service served nothing: %+v", tot)
	}
	if sum.TotalMs <= 0 {
		t.Fatal("no simulated time attributed")
	}
}

// TestServeMergedAttribution drives the cross-query coalescing path
// directly: overlapping, adjacent, identical, and disjoint requests
// from two queries must merge into shared extents whose costs are split
// back in proportion to the blocks each query asked for.
func TestServeMergedAttribution(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{})
	defer svc.Close()

	mk := func(reqs ...lvm.Request) *serviceOp {
		return &serviceOp{
			kind:   opChunk,
			chunk:  Chunk{Reqs: reqs, Policy: disk.SchedSPTF},
			policy: disk.SchedSPTF,
			reply:  make(chan opResult, 1),
		}
	}
	a := mk(
		lvm.Request{VLBN: 1000, Count: 16}, // overlaps b's first
		lvm.Request{VLBN: 5000, Count: 8},  // identical to b's second
		lvm.Request{VLBN: 9000, Count: 4},  // disjoint
	)
	b := mk(
		lvm.Request{VLBN: 1008, Count: 16}, // overlaps a's first
		lvm.Request{VLBN: 5000, Count: 8},
		lvm.Request{VLBN: 1024, Count: 8}, // adjacent to the merged [1000,1024)
	)
	svc.serveMerged([]*serviceOp{a, b})
	ra, rb := <-a.reply, <-b.reply
	if ra.err != nil || rb.err != nil {
		t.Fatal(ra.err, rb.err)
	}
	// Extents: [1000,1032) from three requests, [5000,5008) shared,
	// [9000,9004) alone.
	tot := svc.Totals()
	if tot.IssuedRequests != 3 {
		t.Fatalf("issued %d extents, want 3", tot.IssuedRequests)
	}
	if tot.Batches != 1 || tot.MergedBatches != 1 || tot.MaxBatchChunks != 2 {
		t.Fatalf("batch bookkeeping wrong: %+v", tot)
	}
	var stA, stB Stats
	stA.AddCompletions(ra.comps, ra.elapsed)
	stB.AddCompletions(rb.comps, rb.elapsed)
	if stA.Cells != 16+8+4 || stB.Cells != 16+8+8 {
		t.Fatalf("cells credited A=%d B=%d, want 28 and 32", stA.Cells, stB.Cells)
	}
	if stA.Requests != 3 || stB.Requests != 3 {
		t.Fatalf("requests credited A=%d B=%d, want 3 and 3", stA.Requests, stB.Requests)
	}
	// The attributed shares must sum to the actual disk time.
	var sum Stats
	sum.Accumulate(stA)
	sum.Accumulate(stB)
	sum.ElapsedMs = tot.Attributed.ElapsedMs
	statsClose(sum, tot.Attributed, t)
	var diskMs float64
	for _, ds := range v.Stats() {
		diskMs += ds.BusyMs
	}
	if diff := math.Abs(diskMs - sum.TotalMs); diff > 1e-6*(1+diskMs) {
		t.Fatalf("attributed %.6f ms != disk busy %.6f ms", sum.TotalMs, diskMs)
	}
	// The identical request must have cost each query half the extent.
	var costA, costB float64
	for _, c := range ra.comps {
		if c.Req.VLBN == 5000 {
			costA = c.Cost.TotalMs()
		}
	}
	for _, c := range rb.comps {
		if c.Req.VLBN == 5000 {
			costB = c.Cost.TotalMs()
		}
	}
	if costA <= 0 || math.Abs(costA-costB) > 1e-9 {
		t.Fatalf("shared extent split unevenly: %.6f vs %.6f", costA, costB)
	}
}

// TestServeMergedRespectsDiskBoundaries: adjacent requests from two
// queries that touch across a disk-segment boundary must not merge into
// one extent (which the volume would reject).
func TestServeMergedRespectsDiskBoundaries(t *testing.T) {
	v := testVolume(t, disk.SmallTestDisk(), disk.SmallTestDisk())
	svc := NewService(v, ServiceOptions{})
	defer svc.Close()
	edge := v.DiskBlocks(0)
	a := &serviceOp{kind: opChunk, policy: disk.SchedSPTF, reply: make(chan opResult, 1),
		chunk: Chunk{Reqs: []lvm.Request{{VLBN: edge - 8, Count: 8}}}}
	b := &serviceOp{kind: opChunk, policy: disk.SchedSPTF, reply: make(chan opResult, 1),
		chunk: Chunk{Reqs: []lvm.Request{{VLBN: edge, Count: 8}}}}
	svc.serveMerged([]*serviceOp{a, b})
	ra, rb := <-a.reply, <-b.reply
	if ra.err != nil || rb.err != nil {
		t.Fatal(ra.err, rb.err)
	}
	if tot := svc.Totals(); tot.IssuedRequests != 2 {
		t.Fatalf("issued %d requests, want 2 (no cross-disk merge)", tot.IssuedRequests)
	}
	if ra.comps[0].DiskIdx != 0 || rb.comps[0].DiskIdx != 1 {
		t.Fatalf("requests routed to disks %d/%d, want 0/1",
			ra.comps[0].DiskIdx, rb.comps[0].DiskIdx)
	}
}

// TestServiceExtentCache: a repeated plan must be served from the cache
// the second time — zero disk time, full hit accounting — and Reset
// must drop the cached extents.
func TestServiceExtentCache(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{CacheBlocks: 1 << 20})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	reqs := []lvm.Request{{VLBN: 100, Count: 8}, {VLBN: 400, Count: 16}, {VLBN: 900, Count: 4}}

	first, err := sess.RunPlan(Static(reqs, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHits != 0 || first.CacheMisses != 3 || first.Requests != 3 {
		t.Fatalf("cold run accounting wrong: %+v", first)
	}
	second, err := sess.RunPlan(Static(reqs, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != 3 || second.CacheMisses != 0 || second.Requests != 0 {
		t.Fatalf("warm run accounting wrong: %+v", second)
	}
	if second.TotalMs != 0 || second.Cells != first.Cells {
		t.Fatalf("warm run should cost nothing and credit %d cells: %+v", first.Cells, second)
	}
	// A sub-extent of a cached extent hits too.
	sub, err := sess.RunPlan(Static([]lvm.Request{{VLBN: 404, Count: 4}}, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sub.CacheHits != 1 || sub.Cells != 4 {
		t.Fatalf("contained request missed the cache: %+v", sub)
	}

	if err := svc.Reset(); err != nil {
		t.Fatal(err)
	}
	cold, err := sess.RunPlan(Static(reqs, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 || cold.CacheMisses != 3 {
		t.Fatalf("reset did not clear the cache: %+v", cold)
	}
}

// TestExtentCacheEviction exercises the LRU bound and extent merging
// directly.
func TestExtentCacheEviction(t *testing.T) {
	c := newExtentCache(100)
	c.insert(0, 40)
	c.insert(100, 140)
	c.insert(200, 240) // over capacity: evicts [0,40), the LRU
	if c.used != 80 {
		t.Fatalf("used %d blocks, want 80", c.used)
	}
	if c.covered(0, 40) {
		t.Fatal("evicted extent still reported cached")
	}
	if !c.covered(100, 140) || !c.covered(200, 240) {
		t.Fatal("recent extents missing")
	}
	// An extent larger than the whole cache is not admitted.
	c.insert(1000, 2000)
	if c.covered(1000, 1001) {
		t.Fatal("oversized extent admitted")
	}

	// Overlap and adjacency merge into one extent.
	c = newExtentCache(200)
	c.insert(100, 140)
	c.insert(200, 240)
	c.insert(140, 160) // adjacent to [100,140)
	c.insert(150, 200) // bridges to [200,240)
	if len(c.byStart) != 1 || !c.covered(100, 240) {
		t.Fatalf("extents did not merge: %d extents, used %d", len(c.byStart), c.used)
	}
	if c.used != 140 {
		t.Fatalf("merged used %d blocks, want 140", c.used)
	}
}

// TestServiceMaxBatch: a MaxBatch cap must split one admission run into
// several batches, with every chunk still answered and accounted.
func TestServiceMaxBatch(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{MaxBatch: 2})
	defer svc.Close()
	rng := rand.New(rand.NewSource(21))
	ops := make([]*serviceOp, 5)
	for i := range ops {
		ops[i] = &serviceOp{
			kind:   opChunk,
			chunk:  Chunk{Reqs: SortCoalesce(randomReqs(rng, v, 8)), Policy: disk.SchedSPTF},
			policy: disk.SchedSPTF,
			reply:  make(chan opResult, 1),
		}
	}
	svc.process(ops)
	var credited int64
	for i, op := range ops {
		r := <-op.reply
		if r.err != nil {
			t.Fatalf("op %d: %v", i, r.err)
		}
		for _, c := range r.comps {
			credited += int64(c.Req.Count)
		}
	}
	var want int64
	for _, op := range ops {
		for _, r := range op.chunk.Reqs {
			want += int64(r.Count)
		}
	}
	if credited != want {
		t.Fatalf("credited %d blocks across split batches, want %d", credited, want)
	}
	tot := svc.Totals()
	if tot.Batches != 3 || tot.MaxBatchChunks != 2 || tot.MergedBatches != 2 {
		t.Fatalf("MaxBatch=2 over 5 chunks should give 3 batches (2+2+1): %+v", tot)
	}
}

// TestServiceClose: submitting after Close fails cleanly, Close is
// idempotent, and Reset on a closed service reports the error.
func TestServiceClose(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{})
	sess := svc.NewSession(SessionOptions{})
	if _, err := sess.RunPlan(Static(randomReqs(rand.New(rand.NewSource(5)), v, 10), disk.SchedSPTF), Options{}); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close()
	if _, err := sess.RunPlan(Static([]lvm.Request{{VLBN: 0, Count: 1}}, disk.SchedSPTF), Options{}); err == nil {
		t.Fatal("RunPlan after Close should fail")
	}
	if err := svc.Reset(); err == nil {
		t.Fatal("Reset after Close should fail")
	}
}

// TestSessionPlanError: a failing plan aborts the query and reports the
// planner's error.
func TestSessionPlanError(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{})
	defer svc.Close()
	boom := fmt.Errorf("boom")
	i := 0
	p := planFunc(func() (Chunk, bool, error) {
		i++
		if i > 2 {
			return Chunk{}, false, boom
		}
		return Chunk{Reqs: []lvm.Request{{VLBN: int64(i) * 100, Count: 4}}, Policy: disk.SchedSPTF}, true, nil
	})
	if _, err := svc.NewSession(SessionOptions{MaxInflight: 2}).RunPlan(p, Options{}); err != boom {
		t.Fatalf("got %v, want planner error", err)
	}
}

// BenchmarkService measures end-to-end service throughput at 1, 4, and
// 16 concurrent clients, cache off and on, next to the raw Execute
// benchmarks: each op is one client-query of 200 requests over a
// compact band (overlapping across clients, so the cache has work).
func BenchmarkService(b *testing.B) {
	for _, clients := range []int{1, 4, 16} {
		for _, cacheBlocks := range []int64{0, 1 << 22} {
			name := fmt.Sprintf("clients=%d/cache=%d", clients, cacheBlocks)
			b.Run(name, func(b *testing.B) {
				v := testVolume(b, disk.AtlasTenKIII())
				svc := NewService(v, ServiceOptions{CacheBlocks: cacheBlocks})
				defer svc.Close()
				plans := make([][]lvm.Request, clients)
				for i := range plans {
					rng := rand.New(rand.NewSource(int64(40 + i)))
					base := int64(1_000_000)
					plans[i] = make([]lvm.Request, 200)
					for j := range plans[i] {
						plans[i][j] = lvm.Request{VLBN: base + rng.Int63n(400_000), Count: 1 + rng.Intn(8)}
					}
				}
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					var wg sync.WaitGroup
					for i := 0; i < clients; i++ {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							sess := svc.NewSession(SessionOptions{})
							if _, err := sess.RunPlan(Static(plans[i], disk.SchedSPTF), Options{}); err != nil {
								b.Error(err)
							}
						}(i)
					}
					wg.Wait()
				}
			})
		}
	}
}
