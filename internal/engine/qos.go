package engine

import (
	"slices"
	"sort"
	"time"
)

// Weighted fair QoS admission. Sessions declare a QoS class
// (SessionOptions.Class); the service registers classes with weights
// (ServiceOptions.Classes / SetFairShare). When FairQuantum is
// positive the admission batcher runs deficit round-robin over
// simulated block cost: each admission pass grants every class with
// pending work quantum × weight blocks of credit (deficits carry
// across passes while the class stays backlogged, and reset when its
// backlog drains, the classic DRR anti-hoarding rule), admits each
// class's ops FIFO while its credit covers their block cost, and
// serves every class's grant as its own admission batch — ops of
// different classes are never coalesced into one disk batch, so one
// class's bulk scan cannot ride ahead inside another's batch. Ops a
// pass could not afford stay queued for the next pass; the loop keeps
// making passes (each granting fresh credit, and always admitting at
// least one op when anything is pending, so a single op costlier than
// its class's whole grant still goes) until the backlog drains.
//
// PR 5's urgent-front behavior is the strict-priority edge of the same
// scheduler: ops with an explicit context deadline, ops of a class
// registered Urgent, and ops queued at least the DeadlineAging
// duration bypass DRR entirely and are served first, as their own
// batch ordered by effective deadline — aging therefore promotes a
// starving bulk op into the urgent class, which bounds how long
// weighted sharing may defer anyone. Urgent service is not charged
// against the class's deficit.
//
// With FairQuantum 0 the DRR machinery is never engaged: admission
// degenerates to exactly the PR 5 behavior (DeadlineAging on) or the
// pre-QoS submission order (aging off), bit for bit.

// QoSClass declares one admission class.
type QoSClass struct {
	// Name is the class label sessions reference via
	// SessionOptions.Class. The empty name is the default class every
	// unlabelled session belongs to.
	Name string
	// Weight is the class's share of each admission pass: a pass
	// grants the class FairQuantum × Weight blocks of credit. Values
	// below 1 are treated as 1.
	Weight int
	// Urgent marks a strict-priority class: its ops always join the
	// urgent front batch (ahead of all weighted sharing), exactly as
	// if each carried an explicit context deadline.
	Urgent bool
}

// DefaultFairQuantum is the DRR quantum applied when fair-share
// admission is enabled with a zero quantum: blocks of admission credit
// per weight unit per pass.
const DefaultFairQuantum = int64(1024)

// weight returns the registered weight of a class (1 for unregistered
// classes, and at least 1 always).
func classWeight(classes map[string]QoSClass, name string) int64 {
	if c, ok := classes[name]; ok && c.Weight > 1 {
		return int64(c.Weight)
	}
	return 1
}

// opCost is the DRR measure of one work op: the simulated blocks it
// asks for. A zero-block op costs 1 so admission always drains it.
func opCost(op *serviceOp) int64 {
	var n int64
	for _, r := range op.chunk.Reqs {
		n += int64(r.Count)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// drrSched is the loop-owned deficit-round-robin state: per-class FIFO
// backlogs and credit counters. Only the service loop touches it.
type drrSched struct {
	pending map[string][]*serviceOp
	deficit map[string]int64
	count   int
}

func newDRRSched() *drrSched {
	return &drrSched{
		pending: make(map[string][]*serviceOp),
		deficit: make(map[string]int64),
	}
}

// push appends ops to their classes' backlogs in submission order.
func (d *drrSched) push(ops []*serviceOp) {
	for _, op := range ops {
		d.pending[op.class] = append(d.pending[op.class], op)
		d.count++
	}
}

// activeClasses returns the backlogged class names in sorted order —
// the deterministic round-robin sequence.
func (d *drrSched) activeClasses() []string {
	names := make([]string, 0, len(d.pending))
	for name, q := range d.pending {
		if len(q) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// takeUrgent pulls every backlogged op that has become urgent — aged
// past the aging cap, holding an explicit deadline, or in an Urgent
// class — out of the class backlogs, preserving order within each
// class. This is how aging promotes a DRR-deferred op into the urgent
// class.
func (d *drrSched) takeUrgent(classes map[string]QoSClass, aging time.Duration, now time.Time) []*serviceOp {
	var urgent []*serviceOp
	for name, q := range d.pending {
		kept := q[:0]
		for _, op := range q {
			if isUrgent(op, classes, aging, now) {
				urgent = append(urgent, op)
				d.count--
			} else {
				kept = append(kept, op)
			}
		}
		d.pending[name] = kept
	}
	return urgent
}

// grant runs one DRR round: every backlogged class earns quantum ×
// weight credit, then admits ops FIFO while the credit covers their
// block cost. A class whose backlog drains forfeits its leftover
// credit. When a full round admits nothing (every class's head op
// costs more than its accumulated credit), rounds repeat until one op
// is admitted — progress per pass is guaranteed. Returns the admitted
// ops grouped per class, cheapest group first: groups are served
// sequentially within the pass, so a light latency-sensitive group
// (an interactive class's point reads) completes ahead of a heavy
// scan group's simulation instead of waiting it out, at the cost of
// delaying the heavy group by only the light groups' small service
// time. Ties break on class name, keeping the order deterministic.
func (d *drrSched) grant(classes map[string]QoSClass, quantum int64) [][]*serviceOp {
	if d.count == 0 {
		return nil
	}
	var groups [][]*serviceOp
	for len(groups) == 0 {
		for _, name := range d.activeClasses() {
			d.deficit[name] += quantum * classWeight(classes, name)
			q := d.pending[name]
			n := 0
			for n < len(q) && opCost(q[n]) <= d.deficit[name] {
				d.deficit[name] -= opCost(q[n])
				n++
			}
			if n > 0 {
				groups = append(groups, q[:n:n])
				d.pending[name] = q[n:]
				d.count -= n
			}
			if len(d.pending[name]) == 0 {
				d.deficit[name] = 0
			}
		}
	}
	sort.SliceStable(groups, func(i, j int) bool {
		ci, cj := groupCost(groups[i]), groupCost(groups[j])
		if ci != cj {
			return ci < cj
		}
		return groups[i][0].class < groups[j][0].class
	})
	return groups
}

// groupCost is one admitted group's total simulated block cost.
func groupCost(group []*serviceOp) int64 {
	var sum int64
	for _, op := range group {
		sum += opCost(op)
	}
	return sum
}

// drain empties every backlog — ops grouped per class in sorted class
// order, FIFO within each class — forfeiting all credit. Used before
// control-op barriers and on close, where deferral would reorder ops
// across a barrier or strand submitters.
func (d *drrSched) drain() [][]*serviceOp {
	if d.count == 0 {
		return nil
	}
	var groups [][]*serviceOp
	for _, name := range d.activeClasses() {
		groups = append(groups, d.pending[name])
		d.pending[name] = nil
		d.deficit[name] = 0
	}
	d.count = 0
	return groups
}

// isUrgent classifies one op for the strict-priority front: explicit
// context deadline, Urgent class, or queued at least the aging cap.
func isUrgent(op *serviceOp, classes map[string]QoSClass, aging time.Duration, now time.Time) bool {
	if !op.deadline.IsZero() {
		return true
	}
	if c, ok := classes[op.class]; ok && c.Urgent {
		return true
	}
	return aging > 0 && now.Sub(op.enqueued) >= aging
}

// sortUrgent orders the urgent front batch by effective deadline: the
// explicit context deadline when present, otherwise enqueue time plus
// the aging cap (plain enqueue time when aging is off) — PR 5's
// ordering, extended to Urgent-class ops.
func sortUrgent(ops []*serviceOp, aging time.Duration) {
	eff := func(op *serviceOp) time.Time {
		if !op.deadline.IsZero() {
			return op.deadline
		}
		return op.enqueued.Add(aging)
	}
	slices.SortStableFunc(ops, func(a, b *serviceOp) int { return eff(a).Compare(eff(b)) })
}

// ClassTotals is one QoS class's slice of the service bookkeeping.
// Summing every class's Attributed reproduces ServiceTotals.Attributed
// field for field — the attribution-sum property, now per class —
// except ElapsedMs: a batch's elapsed time is observed once per
// contributing class (like sessions observe it), so summed class
// ElapsedMs can exceed the service's.
type ClassTotals struct {
	// Class is the class name ("" is the default class).
	Class string
	// Ops counts work ops (read chunks and writes) served or absorbed
	// for the class; UrgentOps counts the subset that went through the
	// strict-priority front; Deferred counts deferral events — an op
	// held back by DRR for at least one admission pass.
	Ops       int64
	UrgentOps int64
	Deferred  int64
	// Attributed is the class's share of ServiceTotals.Attributed:
	// exactly what was handed back to the class's sessions.
	Attributed Stats
}
