package engine

// Pipelined batch dispatch — the opt-in overlap stage between the
// service loop's schedule stage and the disks.
//
// The service is an explicit staged pipeline:
//
//	admit ──► schedule ──► dispatch ──► complete/attribute
//	(queue)   (QoS, coalesce,  (per-disk      (cache insert,
//	          cache probe,      completion     cost attribution,
//	          write-back)       queues)        replies)
//
// At Pipeline depth 0 (the default) the stages run in lockstep on the
// loop goroutine, bit-identical to the pre-pipeline service. At depth
// N >= 1 the dispatch stage fans each planned read batch out per
// member drive to a persistent dispatcher goroutine (one per drive,
// FIFO input queue), and the schedule stage keeps admitting and
// planning batch N+1 while up to N batches' I/O is in flight. Each
// drive's dispatcher serves its sub-batches in dispatch order, so
// per-drive head-state evolution matches the lockstep schedule;
// batches retire strictly in dispatch order on the loop goroutine,
// which alone performs the completion stage (cache insertion,
// attribution, traces, replies).
//
// # Coherence contract
//
// The schedule stage remains the sole owner of the extent cache, the
// write-back dirty set, and the COW fault path. The invariants:
//
//   - A read overlapping any in-flight batch's to-be-inserted extents
//     stalls (drains the pipeline) before its cache probe, so it
//     observes the same cache state the lockstep schedule would.
//   - A write overlapping any in-flight batch's extents stalls before
//     its invalidation, so invalidation is never reordered ahead of an
//     earlier read's insertion (read-your-write preserved). Cancelled
//     writes stall the same way before their invalidation.
//   - Any operation that performs I/O on the loop goroutine —
//     write-through writes, COW faults, group-commit flushes, control
//     ops — is a pipeline barrier: all in-flight batches drain first,
//     keeping every drive's service order identical to admission
//     order. Write-back absorption of a non-overlapping, non-COW
//     write is acknowledged without stalling (it performs no I/O).
//   - Cancellation drops not-yet-dispatched work without simulated
//     cost, exactly as at depth 0; dispatched work always completes
//     and is attributed.
//
// Per-session attribution is unchanged: completion-stage accounting
// runs the same code at every depth, so session and class Stats still
// sum to ServiceTotals.Attributed.

import (
	"sort"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// span is a half-open block range [start, end) in volume LBN space.
type span struct{ start, end int64 }

// partResult is one drive sub-batch's outcome, written by that drive's
// dispatcher goroutine and read by the loop after the part's
// completion token has been received.
type partResult struct {
	comps   []lvm.Completion
	elapsed float64
	err     error
}

// dispatchPart is one per-drive share of an in-flight batch.
type dispatchPart struct {
	fb     *flightBatch
	slot   int
	reqs   []lvm.Request
	policy disk.SchedPolicy
}

// flightBatch is one dispatched admission batch awaiting completion.
// All fields except parts slots are owned by the loop goroutine.
type flightBatch struct {
	// Single-chunk batch state (mp nil): the op, its probe result, and
	// how many requests were issued.
	op     *serviceOp
	res    opResult
	issued int

	// Merged batch state (op nil).
	mp *mergedPlan

	parts     []partResult
	remaining int
	// spans are the extents this batch will insert into the cache on
	// completion (its dispatched requests), sorted and merged — the
	// stall set later reads and writes are checked against.
	spans []span
}

// overlaps reports whether [start, end) intersects the batch's spans.
func (fb *flightBatch) overlaps(start, end int64) bool {
	i := sort.Search(len(fb.spans), func(i int) bool { return fb.spans[i].end > start })
	return i < len(fb.spans) && fb.spans[i].start < end
}

// pipelineState is the loop-owned dispatch-stage state: per-drive
// dispatcher input queues, the shared completion queue, and the FIFO
// of in-flight batches.
type pipelineState struct {
	dispatchers map[*disk.Disk]chan dispatchPart
	running     int
	stopped     chan struct{} // closed dispatchers signal here on exit
	done        chan *flightBatch
	inflight    []*flightBatch
}

// spansOf builds the sorted, merged stall set of a request list.
func spansOf(reqs []lvm.Request) []span {
	spans := make([]span, 0, len(reqs))
	for _, r := range reqs {
		spans = append(spans, span{r.VLBN, r.VLBN + int64(r.Count)})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	out := spans[:0]
	for _, sp := range spans {
		if n := len(out); n > 0 && sp.start <= out[n-1].end {
			if sp.end > out[n-1].end {
				out[n-1].end = sp.end
			}
			continue
		}
		out = append(out, sp)
	}
	return out
}

// plOverlaps reports whether any request overlaps an in-flight batch's
// to-be-inserted extents — the stall predicate. Always false with
// nothing in flight (in particular at depth 0 and with the cache off,
// where the stall sets are empty).
func (s *Service) plOverlaps(reqs []lvm.Request) bool {
	for _, fb := range s.pl.inflight {
		if len(fb.spans) == 0 {
			continue
		}
		for _, r := range reqs {
			if fb.overlaps(r.VLBN, r.VLBN+int64(r.Count)) {
				return true
			}
		}
	}
	return false
}

// plOverlapsOps is plOverlaps over every op in a batch.
func (s *Service) plOverlapsOps(items []*serviceOp) bool {
	if len(s.pl.inflight) == 0 {
		return false
	}
	for _, it := range items {
		if s.plOverlaps(it.chunk.Reqs) {
			return true
		}
	}
	return false
}

// plDrain retires every in-flight batch in dispatch order — the
// pipeline barrier. A no-op with nothing in flight, so barrier call
// sites need no depth guard.
func (s *Service) plDrain() {
	for len(s.pl.inflight) > 0 {
		s.plRetireOne()
	}
}

// plRetireOne blocks until the oldest in-flight batch has completed,
// then runs its completion stage on the loop goroutine. Completion
// tokens for younger batches received while waiting are folded into
// their counters, but batches always retire in dispatch order.
func (s *Service) plRetireOne() {
	head := s.pl.inflight[0]
	for head.remaining > 0 {
		fb := <-s.pl.done
		fb.remaining--
	}
	s.plPopHead()
}

// plPopHead pops the completed head batch and finishes it.
func (s *Service) plPopHead() {
	head := s.pl.inflight[0]
	copy(s.pl.inflight, s.pl.inflight[1:])
	s.pl.inflight[len(s.pl.inflight)-1] = nil
	s.pl.inflight = s.pl.inflight[:len(s.pl.inflight)-1]
	s.plFinish(head)
}

// plAwait parks an idle-queue loop that still has batches in flight:
// it wakes on the next completion token (retiring any batches that
// completed, in order) or on a wake signal (new submission, Close).
func (s *Service) plAwait() {
	select {
	case fb := <-s.pl.done:
		fb.remaining--
		for len(s.pl.inflight) > 0 && s.pl.inflight[0].remaining == 0 {
			s.plPopHead()
		}
	case <-s.wake:
	}
}

// plFinish runs one batch's completion stage: fold the per-drive part
// results (elapsed is the max over parts, exactly ServeBatch's
// max-over-busy-drives), then hand off to the plan's finish path.
func (s *Service) plFinish(fb *flightBatch) {
	var err error
	var elapsed float64
	n := 0
	for i := range fb.parts {
		p := &fb.parts[i]
		if p.err != nil && err == nil {
			err = p.err
		}
		if p.elapsed > elapsed {
			elapsed = p.elapsed
		}
		n += len(p.comps)
	}
	if err != nil {
		if fb.mp != nil {
			fb.mp.fail(err)
		} else {
			fb.op.reply <- opResult{err: err}
		}
		return
	}
	comps := make([]lvm.Completion, 0, n)
	for i := range fb.parts {
		comps = append(comps, fb.parts[i].comps...)
	}
	if fb.mp != nil {
		s.finishMerged(fb.mp, comps, elapsed)
		return
	}
	s.finishSingle(fb.op, fb.res, fb.issued, comps, elapsed)
}

// plPartition splits a request list into per-drive sub-batches in
// first-seen drive order (deterministic slot assignment). Returns
// ok=false when any request fails to locate — the caller serves the
// batch inline so the address error surfaces exactly as at depth 0.
func (s *Service) plPartition(reqs []lvm.Request) (parts [][]lvm.Request, drives []*disk.Disk, ok bool) {
	slot := make(map[*disk.Disk]int)
	for _, r := range reqs {
		si, _, err := s.vol.Locate(r.VLBN)
		if err != nil {
			return nil, nil, false
		}
		d := s.vol.Disk(si)
		k, seen := slot[d]
		if !seen {
			k = len(parts)
			slot[d] = k
			parts = append(parts, nil)
			drives = append(drives, d)
		}
		parts[k] = append(parts[k], r)
	}
	return parts, drives, true
}

// plLaunch registers one planned batch as in flight and fans its parts
// out to the per-drive dispatchers, retiring the oldest batch first
// when the pipeline is at depth. Dispatcher input queues have capacity
// depth, and at most depth batches (each contributing at most one part
// per drive) are ever in flight, so the sends below never block.
func (s *Service) plLaunch(depth int, fb *flightBatch, parts [][]lvm.Request, drives []*disk.Disk, policy disk.SchedPolicy) {
	for len(s.pl.inflight) >= depth {
		s.plRetireOne()
	}
	if s.pl.done == nil {
		s.pl.done = make(chan *flightBatch, 16)
	}
	fb.parts = make([]partResult, len(parts))
	fb.remaining = len(parts)
	s.pl.inflight = append(s.pl.inflight, fb)
	for i, reqs := range parts {
		s.plDispatcher(drives[i], depth) <- dispatchPart{fb: fb, slot: i, reqs: reqs, policy: policy}
	}
}

// plDispatcher returns drive d's dispatcher input queue, starting the
// dispatcher goroutine on first use. Dispatchers persist for the loop
// goroutine's lifetime and are retired with it (plShutdown), so an
// idle service holds no goroutines.
func (s *Service) plDispatcher(d *disk.Disk, depth int) chan dispatchPart {
	ch := s.pl.dispatchers[d]
	if ch == nil {
		if s.pl.dispatchers == nil {
			s.pl.dispatchers = make(map[*disk.Disk]chan dispatchPart)
			s.pl.stopped = make(chan struct{})
		}
		ch = make(chan dispatchPart, depth)
		s.pl.dispatchers[d] = ch
		s.pl.running++
		go s.plRun(ch)
	}
	return ch
}

// plRun is one drive's dispatcher goroutine: serve each queued part —
// every request in a part lies on this dispatcher's drive, and
// lvm.ServeBatch serializes per drive, so concurrent dispatchers never
// interleave on one head — then post the part's completion token.
func (s *Service) plRun(ch chan dispatchPart) {
	for part := range ch {
		comps, elapsed, err := s.vol.ServeBatch(part.reqs, part.policy)
		part.fb.parts[part.slot] = partResult{comps: comps, elapsed: elapsed, err: err}
		s.pl.done <- part.fb
	}
	s.pl.stopped <- struct{}{}
}

// plShutdown retires every dispatcher goroutine. Callers guarantee
// nothing is in flight (pipeline drained), so the dispatchers are idle
// and exit promptly.
func (s *Service) plShutdown() {
	if s.pl.dispatchers == nil {
		return
	}
	for _, ch := range s.pl.dispatchers {
		close(ch)
	}
	for i := 0; i < s.pl.running; i++ {
		<-s.pl.stopped
	}
	s.pl.dispatchers = nil
	s.pl.running = 0
}

// dispatchSingle plans a lone read chunk and fans it out to the
// per-drive dispatchers. Returns false when the batch must be served
// inline (unlocatable address at partition time — the depth-0 path
// surfaces the error identically).
func (s *Service) dispatchSingle(depth int, op *serviceOp) bool {
	if s.plOverlaps(op.chunk.Reqs) {
		s.plDrain()
	}
	var res opResult
	kept := s.planSingle(op, &res, nil)
	if len(kept) == 0 {
		s.finishSingle(op, res, 0, nil, 0)
		return true
	}
	parts, drives, ok := s.plPartition(kept)
	if !ok {
		// An address ServeBatch will reject: serve inline so the error
		// surfaces now. Inline I/O needs the barrier.
		s.plDrain()
		comps, elapsed, err := s.vol.ServeBatch(kept, op.policy)
		if err != nil {
			op.reply <- opResult{err: err}
			return true
		}
		s.finishSingle(op, res, len(kept), comps, elapsed)
		return true
	}
	fb := &flightBatch{op: op, res: res, issued: len(kept), spans: spansOf(kept)}
	s.plLaunch(depth, fb, parts, drives, op.policy)
	return true
}

// dispatchMerged plans one multi-chunk read batch and fans its
// coalesced extents out to the per-drive dispatchers. Always handles
// the batch (planning failures reply inline, exactly as at depth 0).
func (s *Service) dispatchMerged(depth int, items []*serviceOp) {
	if s.plOverlapsOps(items) {
		s.plDrain()
	}
	// The plan state must survive until completion alongside other
	// in-flight merged batches, so it gets its own scratch.
	mp, ok := s.planMerged(append([]*serviceOp(nil), items...), &mergeScratch{})
	if !ok {
		return // planMerged already replied with the error
	}
	if len(mp.sc.reqs) == 0 {
		s.finishMerged(mp, nil, 0)
		return
	}
	parts, drives, ok := s.plPartition(mp.sc.reqs)
	if !ok {
		// Unreachable in practice: planMerged located every extent.
		s.plDrain()
		comps, elapsed, err := s.vol.ServeBatch(mp.sc.reqs, mp.policy)
		if err != nil {
			mp.fail(err)
			return
		}
		s.finishMerged(mp, comps, elapsed)
		return
	}
	fb := &flightBatch{mp: mp, spans: spansOf(mp.sc.reqs)}
	s.plLaunch(depth, fb, parts, drives, mp.policy)
}
