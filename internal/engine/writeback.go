package engine

import (
	"sort"
	"time"

	"repro/internal/lvm"
)

// Write-back caching with group commit. With WriteBackOptions.Enabled,
// the service loop no longer charges each write op its own simulated
// I/O: the op's mutated extents are absorbed into a per-service dirty
// buffer (repeated writes to the same extent coalesce), and the whole
// dirty set is later flushed as ONE SPTF-scheduled batch — amortizing
// disk positioning across spatially adjacent writes exactly as the
// paper's SPTF batching amortizes it across reads. A flush happens
// when any of five triggers fires:
//
//   - watermark: the dirty buffer reaches WatermarkBlocks;
//   - interval: the oldest dirty extent has been buffered for
//     FlushInterval (the loop stays alive, sleeping, while dirty data
//     is pending so the interval fires even on an otherwise idle
//     service);
//   - read dependency: an admitted read overlaps a dirty extent — the
//     dirty set is flushed before the read is served, so a read never
//     observes a disk state older than an acknowledged write;
//   - explicit Flush(ctx);
//   - Close (service close drains the dirty set before the loop
//     exits).
//
// Coherence is unchanged from write-through: absorbing a write still
// invalidates every cached read extent overlapping the mutated blocks
// (and a cancelled write still invalidates without being buffered), so
// no stale cached cost can be replayed; the only thing deferred is the
// write's own simulated I/O.
//
// Cost attribution: a write op's submitter is acknowledged at absorb
// time with zero I/O cost; the flush batch's cost is attributed to the
// sessions whose buffered writes it commits, per dirty extent in
// proportion to the blocks each asked for (the same split serveMerged
// uses for shared read extents), and folded into their lifetime
// Totals. Summing session Totals therefore still reproduces
// ServiceTotals.Attributed for issued work, ElapsedMs aside.

// WriteBackOptions tunes the service's write-back buffer; see
// ServiceOptions.WriteBack.
type WriteBackOptions struct {
	// Enabled turns write-back on. Off (the default) serves every
	// write op immediately — bit-identical to the write-through
	// service.
	Enabled bool
	// WatermarkBlocks flushes the dirty buffer when it reaches this
	// many blocks. 0 selects DefaultWriteBackWatermark.
	WatermarkBlocks int64
	// FlushInterval flushes dirty extents this long after they first
	// became dirty, bounding how long an acknowledged write may stay
	// uncommitted. 0 selects DefaultWriteBackInterval.
	FlushInterval time.Duration
}

// Default write-back knobs, applied when the corresponding
// WriteBackOptions field is zero.
const (
	DefaultWriteBackWatermark = int64(4096)
	DefaultWriteBackInterval  = 2 * time.Millisecond
)

// withDefaults fills zero knobs.
func (o WriteBackOptions) withDefaults() WriteBackOptions {
	if o.WatermarkBlocks <= 0 {
		o.WatermarkBlocks = DefaultWriteBackWatermark
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = DefaultWriteBackInterval
	}
	return o
}

// dirtyExtent is one buffered run of mutated blocks [start, end),
// clipped to a single disk segment (boundary is the segment's end
// VLBN, so extents never merge across member disks). contribs records
// how many blocks each submitting session asked to write here —
// re-writes of already-dirty blocks count again, mirroring how
// serveMerged credits overlapping readers — and since is when the
// extent first became dirty (merging keeps the oldest timestamp, so
// the interval trigger bounds the oldest buffered write).
type dirtyExtent struct {
	start, end int64
	boundary   int64
	since      time.Time
	contribs   map[*Session]int64
}

// dirtySet is the loop-owned write-back buffer: sorted disjoint dirty
// extents plus the running block total. Only the service loop touches
// it, so it needs no locking of its own.
type dirtySet struct {
	extents []*dirtyExtent // ascending by start; disjoint
	blocks  int64
}

// search returns the index of the first extent with start > x.
func (d *dirtySet) search(x int64) int {
	return sort.Search(len(d.extents), func(i int) bool { return d.extents[i].start > x })
}

// overlaps reports whether any request intersects a dirty extent — the
// read-dependency probe.
func (d *dirtySet) overlaps(reqs []lvm.Request) bool {
	if len(d.extents) == 0 {
		return false
	}
	for _, r := range reqs {
		start, end := r.VLBN, r.VLBN+int64(r.Count)
		i := d.search(start) - 1
		if i >= 0 && d.extents[i].end > start {
			return true
		}
		if i+1 < len(d.extents) && d.extents[i+1].start < end {
			return true
		}
	}
	return false
}

// absorb merges one segment-clipped mutated extent into the buffer on
// behalf of owner, returning whether it coalesced with (overlapped or
// sat adjacent to) an already-dirty extent in the same segment.
// Adjacent extents from different segments stay separate — each flush
// request must lie within one member disk.
func (d *dirtySet) absorb(owner *Session, start, end, boundary int64, now time.Time) bool {
	if end <= start {
		return false
	}
	lo := d.search(start - 1)
	if lo > 0 && d.extents[lo-1].end >= start && d.extents[lo-1].boundary == boundary {
		lo--
	}
	hi := lo
	merged := &dirtyExtent{
		start: start, end: end, boundary: boundary, since: now,
		contribs: map[*Session]int64{owner: end - start},
	}
	coalesced := false
	for hi < len(d.extents) && d.extents[hi].start <= end {
		e := d.extents[hi]
		if e.boundary != boundary {
			break
		}
		coalesced = true
		if e.start < merged.start {
			merged.start = e.start
		}
		if e.end > merged.end {
			merged.end = e.end
		}
		if e.since.Before(merged.since) {
			merged.since = e.since
		}
		for s, n := range e.contribs {
			merged.contribs[s] += n
		}
		d.blocks -= e.end - e.start
		hi++
	}
	if hi > lo {
		d.extents[lo] = merged
		d.extents = append(d.extents[:lo+1], d.extents[hi:]...)
	} else {
		d.extents = append(d.extents, nil)
		copy(d.extents[lo+1:], d.extents[lo:])
		d.extents[lo] = merged
	}
	d.blocks += merged.end - merged.start
	return coalesced
}

// oldest returns the earliest since timestamp of a dirty extent; ok is
// false on an empty buffer.
func (d *dirtySet) oldest() (time.Time, bool) {
	var t time.Time
	ok := false
	for _, e := range d.extents {
		if !ok || e.since.Before(t) {
			t, ok = e.since, true
		}
	}
	return t, ok
}

// take empties the buffer and returns its extents in ascending VLBN
// order — the group-commit batch to be flushed.
func (d *dirtySet) take() []*dirtyExtent {
	out := d.extents
	d.extents = nil
	d.blocks = 0
	return out
}
