package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// TestExtentCacheZeroCapacity pins the zero-capacity no-op path: a
// capacity of 0 (or less) yields the nil cache, and every operation on
// it is a safe no-op rather than a panic — the guard the service relies
// on when a store runs with caching off.
func TestExtentCacheZeroCapacity(t *testing.T) {
	for _, capBlocks := range []int64{0, -5} {
		c := newExtentCache(capBlocks)
		if c != nil {
			t.Fatalf("capacity %d built a live cache", capBlocks)
		}
		c.insert(0, 10)
		if c.covered(0, 1) {
			t.Fatal("nil cache reported coverage")
		}
		if got := c.invalidate(0, 10); got != 0 {
			t.Fatalf("nil cache invalidated %d blocks", got)
		}
		c.clear()
	}
}

// TestExtentCacheInvalidateBoundaries exercises invalidation ranges
// that end exactly on extent boundaries: a range touching an extent's
// edge from outside must not trim it, a range ending exactly at the
// edge drops only the inside part, and exact-cover drops the extent
// with nothing left behind.
func TestExtentCacheInvalidateBoundaries(t *testing.T) {
	c := newExtentCache(1000)
	c.insert(100, 200)

	// Adjacent-outside ranges: no overlap, nothing dropped.
	if got := c.invalidate(0, 100); got != 0 {
		t.Fatalf("range ending at the extent start invalidated %d blocks", got)
	}
	if got := c.invalidate(200, 300); got != 0 {
		t.Fatalf("range starting at the extent end invalidated %d blocks", got)
	}
	if !c.covered(100, 200) || c.used != 100 {
		t.Fatalf("untouched extent changed (used %d)", c.used)
	}

	// Trim exactly at the left edge: remnant [150,200) only.
	if got := c.invalidate(100, 150); got != 50 {
		t.Fatalf("left trim invalidated %d blocks, want 50", got)
	}
	if c.covered(100, 150) || !c.covered(150, 200) || c.used != 50 {
		t.Fatalf("left trim wrong (used %d)", c.used)
	}

	// Trim exactly at the right edge: remnant [150,180) only.
	if got := c.invalidate(180, 200); got != 20 {
		t.Fatalf("right trim invalidated %d blocks, want 20", got)
	}
	if c.covered(180, 200) || !c.covered(150, 180) || c.used != 30 {
		t.Fatalf("right trim wrong (used %d)", c.used)
	}

	// Exact cover: the extent vanishes, no empty remnants survive.
	if got := c.invalidate(150, 180); got != 30 {
		t.Fatalf("exact cover invalidated %d blocks, want 30", got)
	}
	if len(c.byStart) != 0 || c.used != 0 || c.lru.Len() != 0 {
		t.Fatalf("empty remnants left behind: %d extents, used %d, lru %d",
			len(c.byStart), c.used, c.lru.Len())
	}
}

// TestExtentCacheSplitKeepsStructure checks the straddling split in
// detail: both remnants are present, disjoint, in byStart order, and
// the accounting matches, including a second split of a remnant.
func TestExtentCacheSplitKeepsStructure(t *testing.T) {
	c := newExtentCache(1000)
	c.insert(100, 300)
	if got := c.invalidate(180, 220); got != 40 {
		t.Fatalf("split invalidated %d blocks, want 40", got)
	}
	if len(c.byStart) != 2 || c.used != 160 || c.lru.Len() != 2 {
		t.Fatalf("split structure wrong: %d extents, used %d, lru %d",
			len(c.byStart), c.used, c.lru.Len())
	}
	if c.byStart[0].start != 100 || c.byStart[0].end != 180 ||
		c.byStart[1].start != 220 || c.byStart[1].end != 300 {
		t.Fatalf("remnants [%d,%d) [%d,%d), want [100,180) [220,300)",
			c.byStart[0].start, c.byStart[0].end, c.byStart[1].start, c.byStart[1].end)
	}
	// Split a remnant again.
	if got := c.invalidate(120, 140); got != 20 {
		t.Fatalf("re-split invalidated %d, want 20", got)
	}
	if len(c.byStart) != 3 || c.used != 140 {
		t.Fatalf("re-split wrong: %d extents, used %d", len(c.byStart), c.used)
	}
	for _, want := range [][2]int64{{100, 120}, {140, 180}, {220, 300}} {
		if !c.covered(want[0], want[1]) {
			t.Fatalf("remnant [%d,%d) missing", want[0], want[1])
		}
	}
}

// TestExtentCacheEvictionOrderAfterSplit: split remnants inherit the
// original extent's recency slot, so they are evicted before
// more-recent extents and after less-recent refreshes.
func TestExtentCacheEvictionOrderAfterSplit(t *testing.T) {
	c := newExtentCache(120)
	c.insert(0, 40)      // A (oldest)
	c.insert(100, 140)   // B
	c.insert(200, 240)   // C (newest); cache is exactly full
	c.invalidate(10, 30) // splits A into [0,10) and [30,40), same recency

	// Touch B: order is now A-remnants (LRU), C, B (MRU).
	if !c.covered(100, 140) {
		t.Fatal("B missing before eviction")
	}
	// Insert 40 fresh blocks: over capacity by 20, so both A remnants
	// (10 blocks each, at the LRU tail) must go — not C or B.
	c.insert(300, 340)
	if c.covered(0, 10) || c.covered(30, 40) {
		t.Fatal("old split remnants survived eviction")
	}
	if !c.covered(100, 140) || !c.covered(200, 240) || !c.covered(300, 340) {
		t.Fatal("recent extents evicted instead of the split remnants")
	}
	if c.used != 120 {
		t.Fatalf("used %d blocks after eviction, want 120", c.used)
	}
}

// TestWriteSplitsAtSegmentBoundary: a write extent coalesced across a
// disk-segment boundary (overflow tail of one disk adjacent in VLBN
// space to the next disk's first block) must be split into per-disk
// requests instead of erroring mid-update.
func TestWriteSplitsAtSegmentBoundary(t *testing.T) {
	v := testVolume(t, disk.SmallTestDisk(), disk.SmallTestDisk())
	svc := NewService(v, ServiceOptions{CacheBlocks: 1 << 16})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	edge := v.DiskBlocks(0)

	// Prime the cache on both sides of the boundary.
	reads := []lvm.Request{{VLBN: edge - 4, Count: 4}, {VLBN: edge, Count: 4}}
	if _, err := sess.RunPlan(context.Background(), Static(reads, disk.SchedSPTF), Options{}); err != nil {
		t.Fatal(err)
	}

	st, err := sess.Write(context.Background(), []lvm.Request{{VLBN: edge - 2, Count: 4}}, disk.SchedSPTF)
	if err != nil {
		t.Fatalf("boundary-crossing write rejected: %v", err)
	}
	if st.Writes != 4 || st.Requests != 2 {
		t.Fatalf("want 4 blocks over 2 split requests, got %+v", st)
	}
	if st.InvalidatedBlocks != 4 {
		t.Fatalf("invalidated %d blocks, want 4 (2 per side)", st.InvalidatedBlocks)
	}
	// Both sides of the boundary were dirtied: re-reads miss.
	post, err := sess.RunPlan(context.Background(), Static(reads, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if post.CacheMisses != 2 {
		t.Fatalf("post-write reads: %+v, want both sides invalidated", post)
	}
}

// TestServiceBatchWindow: with a time-based admission window, ops
// submitted shortly after the first one must land in the same admission
// batch instead of being admitted immediately — and the default window
// of zero admits each lone submission on its own as before.
func TestServiceBatchWindow(t *testing.T) {
	v := testVolume(t)
	// A generous window: the submits below must all land inside it even
	// when a loaded -race CI runner deschedules this goroutine between
	// them for a while.
	svc := NewService(v, ServiceOptions{BatchWindow: 500 * time.Millisecond})
	defer svc.Close()

	const n = 3
	ops := make([]*serviceOp, n)
	for i := range ops {
		ops[i] = &serviceOp{
			kind:   opChunk,
			chunk:  Chunk{Reqs: []lvm.Request{{VLBN: int64(1000 * (i + 1)), Count: 4}}, Policy: disk.SchedSPTF},
			policy: disk.SchedSPTF,
			reply:  make(chan opResult, 1),
		}
	}
	// The first submission starts the loop, which then waits the window
	// out; the rest arrive microseconds later, well inside it.
	for _, op := range ops {
		if err := svc.submit(op); err != nil {
			t.Fatal(err)
		}
	}
	for i, op := range ops {
		if r := <-op.reply; r.err != nil {
			t.Fatalf("op %d: %v", i, r.err)
		}
	}
	tot := svc.Totals()
	if tot.Batches != 1 || tot.MaxBatchChunks != n {
		t.Fatalf("window did not coalesce the burst into one batch: %+v", tot)
	}

	// SetBatchWindow(0) restores immediate admission; sequential lone
	// submissions each form their own batch.
	svc.SetBatchWindow(0)
	for i := 0; i < 2; i++ {
		op := &serviceOp{
			kind:   opChunk,
			chunk:  Chunk{Reqs: []lvm.Request{{VLBN: 500, Count: 2}}, Policy: disk.SchedSPTF},
			policy: disk.SchedSPTF,
			reply:  make(chan opResult, 1),
		}
		if err := svc.submit(op); err != nil {
			t.Fatal(err)
		}
		if r := <-op.reply; r.err != nil {
			t.Fatal(r.err)
		}
	}
	tot = svc.Totals()
	if tot.Batches != 3 || tot.MaxBatchChunks != n {
		t.Fatalf("zero window still batching: %+v", tot)
	}
}
