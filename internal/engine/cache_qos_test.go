package engine

import (
	"testing"
)

// checkUsedBy asserts the per-class accounting invariant: the class
// usage counters sum to used, and match the byStart extents exactly.
func checkUsedBy(t *testing.T, c *extentCache) {
	t.Helper()
	byClass := map[string]int64{}
	var total int64
	for _, e := range c.byStart {
		byClass[e.class] += e.blocks()
		total += e.blocks()
	}
	if total != c.used {
		t.Fatalf("byStart holds %d blocks, used says %d", total, c.used)
	}
	for class, n := range c.usedBy {
		if n != byClass[class] {
			t.Fatalf("usedBy[%q] = %d, extents hold %d", class, n, byClass[class])
		}
	}
	for class, n := range byClass {
		if n != c.usedBy[class] {
			t.Fatalf("extents hold %d for %q, usedBy says %d", n, class, c.usedBy[class])
		}
	}
}

// TestExtentCacheBorrowThenReclaim pins the borrower-first rule: a
// class may grow past its reserve into idle capacity, but once the
// cache overflows the victim is the LRU-most extent among over-reserve
// classes — an at-reserve class's colder extents are skipped.
func TestExtentCacheBorrowThenReclaim(t *testing.T) {
	c := newExtentCache(100)
	c.setShares(map[string]int64{"a": 50, "b": 50})

	// a borrows into b's idle reserve: 80 blocks fit without eviction.
	c.insertFor(0, 80, "a")
	checkUsedBy(t, c)
	if c.used != 80 {
		t.Fatalf("borrow blocked: used %d, want 80", c.used)
	}

	// b shows up under its reserve (40 ≤ 50): the overflow must come
	// out of a's borrowed blocks, not block b's insert.
	c.insertFor(100, 140, "b")
	checkUsedBy(t, c)
	if c.covered(0, 80) {
		t.Fatal("borrower extent survived the owner's return")
	}
	if !c.covered(100, 140) {
		t.Fatal("under-reserve insert was evicted")
	}
	if c.usedBy["a"] != 0 || c.usedBy["b"] != 40 {
		t.Fatalf("usedBy a=%d b=%d, want 0/40", c.usedBy["a"], c.usedBy["b"])
	}

	// Both classes at reserve, then b goes over: plain LRU would evict
	// a's [200,250) (the LRU back); borrower-first skips it because a
	// is at its floor, and reclaims b's own older extent instead.
	c.insertFor(200, 250, "a") // a back to exactly 50
	c.insertFor(300, 310, "b") // used 100, both at/under reserve
	c.insertFor(400, 450, "b") // b now 100 > 50: overflow by 60
	checkUsedBy(t, c)
	if c.covered(100, 140) || c.covered(300, 310) {
		t.Fatal("over-reserve class kept its LRU-most extents")
	}
	if !c.covered(200, 250) || !c.covered(400, 450) {
		t.Fatal("at-reserve extent was evicted instead of the borrower's")
	}
	if c.usedBy["a"] != 50 || c.usedBy["b"] != 50 {
		t.Fatalf("usedBy a=%d b=%d, want 50/50", c.usedBy["a"], c.usedBy["b"])
	}
}

// TestExtentCacheReserveFloor: a class at or under its reserve is
// immune to another class's pressure — repeated bulk inserts can fill
// every idle block but never push the protected class below its floor.
func TestExtentCacheReserveFloor(t *testing.T) {
	c := newExtentCache(100)
	c.setShares(map[string]int64{"hot": 40, "bulk": 60})

	c.insertFor(0, 40, "hot") // exactly at its reserve
	for i := int64(0); i < 8; i++ {
		c.insertFor(1000+40*i, 1000+40*i+30, "bulk")
		checkUsedBy(t, c)
		if !c.covered(0, 40) {
			t.Fatalf("bulk insert %d evicted the protected class", i)
		}
		if c.usedBy["hot"] < 40 {
			t.Fatalf("hot below reserve: %d", c.usedBy["hot"])
		}
	}
	if c.used > 100 {
		t.Fatalf("capacity exceeded: %d", c.used)
	}
}

// TestExtentCacheNilSharesPlainLRU: class tags without shares must not
// change eviction at all — the victim is the LRU back, whatever class
// it belongs to (the bit-equivalence the QoS-off path relies on).
func TestExtentCacheNilSharesPlainLRU(t *testing.T) {
	c := newExtentCache(100)
	c.insertFor(0, 40, "b")
	c.insertFor(100, 160, "a")
	c.insertFor(200, 250, "b")
	checkUsedBy(t, c)
	// Overflowed by 50: plain LRU drops [0,40) then [100,160)'s 60
	// covers the rest.
	if c.covered(0, 40) {
		t.Fatal("LRU back survived")
	}
	if c.covered(100, 160) {
		t.Fatal("second-oldest survived a 50-block overflow")
	}
	if !c.covered(200, 250) {
		t.Fatal("most recent extent evicted")
	}
}

// TestExtentCacheMergeRetags: merging re-tags the union to the
// inserting class and moves the blocks between the class counters.
func TestExtentCacheMergeRetags(t *testing.T) {
	c := newExtentCache(1000)
	c.setShares(map[string]int64{"a": 500, "b": 500})
	c.insertFor(0, 50, "a")
	c.insertFor(50, 100, "b") // adjacent: merges into [0,100) tagged b
	checkUsedBy(t, c)
	if len(c.byStart) != 1 || c.byStart[0].class != "b" {
		t.Fatalf("merge kept class %q over %d extents", c.byStart[0].class, len(c.byStart))
	}
	if c.usedBy["a"] != 0 || c.usedBy["b"] != 100 {
		t.Fatalf("usedBy a=%d b=%d after re-tag, want 0/100", c.usedBy["a"], c.usedBy["b"])
	}
}

// TestExtentCacheInvalidatePartitioned: trims and splits keep the
// remnants' class tags and the per-class accounting exact — the
// write-path invalidation the service runs before charging a write.
func TestExtentCacheInvalidatePartitioned(t *testing.T) {
	c := newExtentCache(1000)
	c.setShares(map[string]int64{"a": 500, "b": 500})
	c.insertFor(0, 100, "a")
	c.insertFor(200, 300, "b")

	// Straddling split of a's extent: both remnants stay class a.
	if got := c.invalidate(40, 60); got != 20 {
		t.Fatalf("split invalidated %d blocks, want 20", got)
	}
	checkUsedBy(t, c)
	if c.usedBy["a"] != 80 {
		t.Fatalf("usedBy[a] = %d after split, want 80", c.usedBy["a"])
	}
	for _, e := range c.byStart {
		if e.start < 200 && e.class != "a" {
			t.Fatalf("remnant [%d,%d) lost its class: %q", e.start, e.end, e.class)
		}
	}

	// Boundary trim of b's extent.
	if got := c.invalidate(200, 250); got != 50 {
		t.Fatalf("trim invalidated %d blocks, want 50", got)
	}
	checkUsedBy(t, c)
	if c.usedBy["b"] != 50 {
		t.Fatalf("usedBy[b] = %d after trim, want 50", c.usedBy["b"])
	}

	// Cross-class range: drops a's remnants and b's trim in one sweep.
	if got := c.invalidate(0, 1000); got != 50+80 {
		t.Fatalf("full invalidate dropped %d, want 130", got)
	}
	checkUsedBy(t, c)
	if c.used != 0 || c.usedBy["a"] != 0 || c.usedBy["b"] != 0 {
		t.Fatalf("accounting nonzero after full invalidate: used=%d a=%d b=%d",
			c.used, c.usedBy["a"], c.usedBy["b"])
	}
}

// TestExtentCacheSetSharesOnExisting: shares installed over an
// already-populated cache partition the existing contents — usedBy is
// maintained from the start, so the first over-capacity insert already
// evicts borrower-first, and unregistered classes (share 0) are the
// first reclaimed.
func TestExtentCacheSetSharesOnExisting(t *testing.T) {
	c := newExtentCache(100)
	c.insertFor(0, 60, "old") // plain-LRU era population
	c.insertFor(100, 130, "keep")
	c.setShares(map[string]int64{"keep": 50}) // "old" unregistered: share 0

	// keep's insert overflows: "old" is over its (zero) reserve and is
	// reclaimed even though "keep"'s first extent is the LRU back? No —
	// [0,60) of "old" IS older, but the point is class policy: victims
	// must come from "old" until it holds nothing.
	c.insertFor(200, 240, "keep")
	checkUsedBy(t, c)
	if c.covered(0, 60) {
		t.Fatal("unregistered class kept borrowed blocks past setShares")
	}
	if !c.covered(100, 130) || !c.covered(200, 240) {
		t.Fatal("registered class lost extents while a share-0 class held blocks")
	}
	if c.usedBy["old"] != 0 {
		t.Fatalf("usedBy[old] = %d, want 0", c.usedBy["old"])
	}

	// Reverting to nil shares restores plain LRU behavior.
	c.setShares(nil)
	c.insertFor(300, 400, "new") // 100 blocks: evicts everything else LRU-first
	checkUsedBy(t, c)
	if !c.covered(300, 400) || c.used != 100 {
		t.Fatalf("plain LRU not restored: used=%d", c.used)
	}
}

// TestExtentCacheClearResetsClasses: clear zeroes the per-class
// counters along with the extents.
func TestExtentCacheClearResetsClasses(t *testing.T) {
	c := newExtentCache(100)
	c.setShares(map[string]int64{"a": 50})
	c.insertFor(0, 40, "a")
	c.insertFor(50, 60, "b")
	c.clear()
	if len(c.usedBy) != 0 || c.used != 0 || len(c.byStart) != 0 {
		t.Fatalf("clear left state: usedBy=%v used=%d extents=%d",
			c.usedBy, c.used, len(c.byStart))
	}
	c.insertFor(0, 10, "a")
	checkUsedBy(t, c)
}
