// Package engine is the shared execution engine behind every query
// layer: it owns the plan → dispatch → schedule → aggregate pipeline.
//
// A planner (the storage manager in internal/query, the octree and OLAP
// dataset stores, or a tool with a prepared request batch) produces a
// Plan: a stream of request Chunks, each carrying the issue policy the
// paper's storage manager would choose for it (§5.2). Run drains the
// plan chunk by chunk through the logical volume — whose member disks
// service their sub-batches concurrently and apply the drive-internal
// scheduler (SPTF, or C-LOOK for comparison runs) — and aggregates the
// completions into Stats. Layers therefore share one serve-and-sum
// loop instead of each hand-rolling its own, and a planner can yield a
// large query in bounded-memory chunks instead of materializing every
// block up front.
//
// Run is the synchronous single-caller path. For concurrent clients,
// Service runs a per-volume loop goroutine that owns all disk head
// state: Sessions submit plan chunks over its queue (pipelined — chunk
// N+1 is planned while chunk N is on the disks), the loop merges
// everything queued since its last pass into one admission batch
// (cross-query coalescing into shared SPTF extents), serves it, and
// attributes per-request costs back to the originating sessions. An
// optional shared extent cache (LRU over coalesced [lbn, lbn+count)
// extents) lets overlapping queries skip re-simulated I/O, with
// hit/miss accounting in Stats.
package engine

import (
	"context"
	"errors"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// Stats summarizes the I/O work of one query.
type Stats struct {
	Cells      int64   // useful cells fetched (excludes bridged padding)
	Padding    int64   // padding blocks read and discarded by gap bridging
	Requests   int     // I/O requests issued after coalescing
	TotalMs    float64 // summed service time across disks
	ElapsedMs  float64 // wall-clock time (disks work in parallel)
	CommandMs  float64
	SeekMs     float64
	RotateMs   float64
	TransferMs float64
	// CacheHits counts requests served entirely from the service's
	// shared extent cache (no disk I/O); CacheMisses counts requests
	// that reached the disks. Both stay zero when queries run without a
	// service or with the cache disabled.
	CacheHits   int64
	CacheMisses int64
	// Writes counts blocks written through the service's write path
	// (Session.Write); write I/O requests fold into Requests and their
	// simulated time into TotalMs/ElapsedMs like reads, while written
	// blocks stay out of Cells. Note that on a mixed workload MsPerCell
	// therefore spreads total I/O time — write time included — over the
	// read cells only.
	Writes int64
	// InvalidatedBlocks counts cached blocks dropped by write-aware
	// invalidation on behalf of this query's writes.
	InvalidatedBlocks int64
	// CoalescedWrites counts write ops of this session that the
	// write-back buffer absorbed into an already-dirty extent
	// (overlapping or adjacent), so they will share one group-commit
	// I/O with the writes already buffered there. Zero with write-back
	// off.
	CoalescedWrites int64
	// FlushBatches counts group-commit flushes that carried buffered
	// writes of this session. Like ElapsedMs, a flush shared by several
	// sessions is observed by each of them, so summed session counters
	// can exceed the service's own ServiceTotals.FlushBatches.
	FlushBatches int64
	// Cancelled and DeadlineExceeded count this query's operations
	// (plan chunks or write ops) dropped because their context was
	// cancelled or had passed its deadline — either by the service
	// before admission, or by the submitter before the op was queued
	// (a session aborting between planner chunks). Dropped operations
	// are never issued to the disks and charge no simulated I/O, so
	// everything else in a partial Stats still sums to
	// ServiceTotals.Attributed for the work that WAS issued.
	Cancelled        int64
	DeadlineExceeded int64
	// CowFaultBlocks counts blocks this query's writes faulted out of
	// shared copy-on-write extents: each first write to a frozen track
	// (snapshotted parent, or clone) reads the track at its shared
	// location and remaps it onto a private extent before the write's
	// own I/O. The fault copy's blocks also land in Writes and its I/O
	// time in the usual cost fields, attributed to the writing session.
	// Zero on volumes never snapshotted or cloned.
	CowFaultBlocks int64
	// Partial marks a speculative partial result: the query's context
	// expired (or was cancelled) mid-plan, and these Stats carry the
	// cells already aggregated rather than the full box — returned
	// alongside the context error instead of discarding the work. Folded
	// with OR by Accumulate, so a session's lifetime totals record
	// whether any query returned partial data.
	Partial bool
}

// MsPerCell returns the paper's headline metric: average I/O time per
// cell, including initial positioning (§5.3).
func (s Stats) MsPerCell() float64 {
	if s.Cells == 0 {
		return 0
	}
	return s.TotalMs / float64(s.Cells)
}

// AddCompletions folds one served batch into the running totals.
func (s *Stats) AddCompletions(comps []lvm.Completion, elapsed float64) {
	for _, c := range comps {
		s.Requests++
		s.Cells += int64(c.Req.Count)
		s.TotalMs += c.Cost.TotalMs()
		s.CommandMs += c.Cost.CommandMs
		s.SeekMs += c.Cost.SeekMs
		s.RotateMs += c.Cost.RotateMs
		s.TransferMs += c.Cost.TransferMs
	}
	s.ElapsedMs += elapsed
}

// AddWriteCompletions folds one served write batch into the running
// totals: same time accounting as reads, but blocks land in Writes
// instead of Cells.
func (s *Stats) AddWriteCompletions(comps []lvm.Completion, elapsed float64) {
	for _, c := range comps {
		s.Requests++
		s.Writes += int64(c.Req.Count)
		s.TotalMs += c.Cost.TotalMs()
		s.CommandMs += c.Cost.CommandMs
		s.SeekMs += c.Cost.SeekMs
		s.RotateMs += c.Cost.RotateMs
		s.TransferMs += c.Cost.TransferMs
	}
	s.ElapsedMs += elapsed
}

// AddFlushCompletions folds one group-commit flush's attributed share
// into the running totals: cost and request accounting like writes,
// but no blocks land in Writes — the flushed blocks were already
// counted there when the service absorbed the write ops that dirtied
// them.
func (s *Stats) AddFlushCompletions(comps []lvm.Completion, elapsed float64) {
	for _, c := range comps {
		s.Requests++
		s.TotalMs += c.Cost.TotalMs()
		s.CommandMs += c.Cost.CommandMs
		s.SeekMs += c.Cost.SeekMs
		s.RotateMs += c.Cost.RotateMs
		s.TransferMs += c.Cost.TransferMs
	}
	s.ElapsedMs += elapsed
}

// Chunk is one dispatch window of planned requests.
type Chunk struct {
	Reqs []lvm.Request
	// Policy is the drive-internal scheduling policy to issue under.
	Policy disk.SchedPolicy
	// Padding counts blocks in Reqs read only to bridge small gaps.
	Padding int64
}

// Plan is a streaming source of request chunks. Next returns ok=false
// once the plan is exhausted.
type Plan interface {
	Next() (c Chunk, ok bool, err error)
}

// staticPlan serves one prepared batch as a single chunk.
type staticPlan struct {
	chunk Chunk
	done  bool
}

func (p *staticPlan) Next() (Chunk, bool, error) {
	if p.done {
		return Chunk{}, false, nil
	}
	p.done = true
	return p.chunk, true, nil
}

// Static wraps a prepared request batch as a single-chunk plan.
func Static(reqs []lvm.Request, policy disk.SchedPolicy) Plan {
	return &staticPlan{chunk: Chunk{Reqs: reqs, Policy: policy}}
}

// Options tunes one execution.
type Options struct {
	// Policy, when non-nil, overrides every chunk's issue policy — the
	// knob behind comparison runs (e.g. forcing C-LOOK under a
	// MultiMap plan). Nil keeps the planner's choice.
	Policy *disk.SchedPolicy
	// Trace, when set, receives every chunk's completions in service
	// order (the mmtrace hook).
	Trace func([]lvm.Completion)
	// OnChunk, when set, receives each served chunk's own Stats as the
	// chunk retires, in chunk order — the hook behind wire-level result
	// streaming: a network front-end ships every retired chunk to its
	// client while later chunks are still being planned and served.
	// Invoked from the submitting goroutine (never concurrently for one
	// query); dropped chunks (cancellation, deadline) invoke nothing.
	// Nil leaves the execution path bit-identical.
	OnChunk func(Stats)
}

// Run drains a plan through the volume and aggregates its statistics.
func Run(vol *lvm.Volume, p Plan, opts Options) (Stats, error) {
	st, err := RunContext(context.Background(), vol, p, opts)
	if err != nil {
		return Stats{}, err
	}
	return st, nil
}

// RunContext is Run observing a context: the drain loop checks ctx
// between chunks and stops planning as soon as it is cancelled or past
// its deadline. On a context error the Stats accumulated so far are
// returned alongside it — the partial-stats contract — with the
// matching Cancelled or DeadlineExceeded counter bumped once for the
// chunk that was not issued.
func RunContext(ctx context.Context, vol *lvm.Volume, p Plan, opts Options) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var st Stats
	for {
		if err := ctx.Err(); err != nil {
			st.countContextErr(err)
			return st, err
		}
		c, ok, err := p.Next()
		if err != nil {
			return st, err
		}
		if !ok {
			return st, nil
		}
		policy := c.Policy
		if opts.Policy != nil {
			policy = *opts.Policy
		}
		comps, elapsed, err := vol.ServeBatch(c.Reqs, policy)
		if err != nil {
			return st, err
		}
		st.AddCompletions(comps, elapsed)
		st.Padding += c.Padding
		if opts.Trace != nil {
			opts.Trace(comps)
		}
		if opts.OnChunk != nil {
			// The chunk's own delta is rebuilt from the completions
			// rather than diffed off st, so the running totals keep their
			// exact accumulation order (bit-equivalence when OnChunk is
			// nil is trivial; when set, st is still summed identically).
			var d Stats
			d.AddCompletions(comps, elapsed)
			d.Padding = c.Padding
			opts.OnChunk(d)
		}
	}
}

// countContextErr folds one dropped (never-issued) operation into the
// cancellation counters, classifying by the context error.
func (s *Stats) countContextErr(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.DeadlineExceeded++
	} else if errors.Is(err, context.Canceled) {
		s.Cancelled++
	}
}

// Execute services a prepared request batch under one policy — the
// entry point for layers that plan their own batches (octree, OLAP,
// updates, tools).
func Execute(vol *lvm.Volume, reqs []lvm.Request, policy disk.SchedPolicy) (Stats, error) {
	return Run(vol, Static(reqs, policy), Options{})
}
