package engine

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (loop goroutines exit once their queues drain; planner
// goroutines exit with their queries).
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// blockingPlan yields prepared chunks, blocking on gate between them so
// the test controls exactly when the next chunk becomes available.
type blockingPlan struct {
	chunks []Chunk
	gate   chan struct{}
	i      int
}

func (p *blockingPlan) Next() (Chunk, bool, error) {
	if p.i == len(p.chunks) {
		return Chunk{}, false, nil
	}
	if p.gate != nil {
		<-p.gate
	}
	p.i++
	return p.chunks[p.i-1], true, nil
}

// TestRunPlanCancelMidPipeline cancels a pipelined query between chunks
// and checks the partial-stats contract: the error is ctx's, the
// session's lifetime totals equal exactly what the service attributed
// (nothing charged for unissued chunks), the Cancelled counters agree
// between session and service, and no goroutine outlives the query.
func TestRunPlanCancelMidPipeline(t *testing.T) {
	baseline := runtime.NumGoroutine()
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{})
	defer svc.Close()
	rng := rand.New(rand.NewSource(42))
	chunks := randomChunks(rng, v, 6, 20)

	ctx, cancel := context.WithCancel(context.Background())
	gate := make(chan struct{})
	p := &blockingPlan{chunks: chunks, gate: gate}
	sess := svc.NewSession(SessionOptions{MaxInflight: 2})
	done := make(chan struct{})
	var st Stats
	var err error
	go func() {
		defer close(done)
		st, err = sess.RunPlan(ctx, p, Options{})
	}()
	gate <- struct{}{} // chunk 1 planned
	// Wait until the service actually served chunk 1 — only then is the
	// "partial stats" claim meaningful in every interleaving.
	for start := time.Now(); svc.Totals().Attributed.Cells == 0; {
		if time.Since(start) > 5*time.Second {
			t.Fatal("chunk 1 never served")
		}
		time.Sleep(time.Millisecond)
	}
	gate <- struct{}{} // chunk 2 planned
	cancel()
	close(gate) // release the planner; the submit loop must stop on ctx
	<-done

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Cells == 0 {
		t.Fatal("no partial stats returned for the chunks that were issued")
	}
	if st.Cancelled == 0 {
		t.Fatal("cancelled chunks not counted in Stats.Cancelled")
	}
	// Nothing may be attributed for unissued chunks: the session's
	// lifetime totals must equal the service's attributed totals.
	tot := svc.Totals()
	lt := sess.Totals()
	if lt.Cells != tot.Attributed.Cells || lt.Requests != tot.Attributed.Requests ||
		lt.Padding != tot.Attributed.Padding {
		t.Fatalf("session totals %+v != attributed %+v after cancel", lt, tot.Attributed)
	}
	// Session-side counters = service drops + the pre-submit abort.
	if lt.Cancelled != tot.Cancelled+1 {
		t.Fatalf("session cancelled %d, service dropped %d (+1 pre-submit abort expected)",
			lt.Cancelled, tot.Cancelled)
	}
	settleGoroutines(t, baseline)
}

// TestRunPlanDeadlineExceeded runs a query under an already-expired
// deadline: it must not issue any I/O and must report DeadlineExceeded.
func TestRunPlanDeadlineExceeded(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{})
	defer svc.Close()
	rng := rand.New(rand.NewSource(7))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	sess := svc.NewSession(SessionOptions{})
	st, err := sess.RunPlan(ctx, chunkPlan(randomChunks(rng, v, 3, 10)), Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if st.Cells != 0 || st.Requests != 0 || st.TotalMs != 0 {
		t.Fatalf("expired query still charged I/O: %+v", st)
	}
	if st.DeadlineExceeded == 0 {
		t.Fatal("DeadlineExceeded not counted")
	}
	if tot := svc.Totals(); tot.Attributed.Cells != 0 || tot.IssuedRequests != 0 {
		t.Fatalf("service attributed work for an expired query: %+v", tot)
	}
}

// TestCancelledWriteStillInvalidates: a write op whose context is dead
// at admission is dropped — no simulated I/O — but its invalidation
// still happens, because the submitter's cell state already mutated.
func TestCancelledWriteStillInvalidates(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{CacheBlocks: 1 << 16})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{})
	reqs := []lvm.Request{{VLBN: 100, Count: 8}}

	// Prime the cache.
	if _, err := sess.RunPlan(context.Background(), Static(reqs, disk.SchedSPTF), Options{}); err != nil {
		t.Fatal(err)
	}
	warm, err := sess.RunPlan(context.Background(), Static(reqs, disk.SchedSPTF), Options{})
	if err != nil || warm.CacheHits != 1 {
		t.Fatalf("cache not primed: %+v %v", warm, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	wst, werr := sess.Write(ctx, reqs, disk.SchedSPTF)
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("write err = %v, want Canceled", werr)
	}
	if wst.Writes != 0 || wst.TotalMs != 0 {
		t.Fatalf("dropped write still charged I/O: %+v", wst)
	}
	if wst.Cancelled != 1 {
		t.Fatalf("dropped write not counted: %+v", wst)
	}
	if wst.InvalidatedBlocks != 8 {
		t.Fatalf("dropped write invalidated %d blocks, want 8", wst.InvalidatedBlocks)
	}
	tot := svc.Totals()
	if tot.Cancelled != 1 || tot.InvalidatedBlocks != 8 {
		t.Fatalf("service totals after dropped write: %+v", tot)
	}
	// The extent is gone: the next read pays disk I/O again.
	cold, err := sess.RunPlan(context.Background(), Static(reqs, disk.SchedSPTF), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 || cold.TotalMs == 0 {
		t.Fatalf("read after dropped write replayed stale cache: %+v", cold)
	}
}

// TestQoSGroups covers the admission classifier directly: aging off is
// one batch in submission order; aging on carves deadline-carrying and
// over-age ops into a front batch ordered by effective deadline.
func TestQoSGroups(t *testing.T) {
	now := time.Now()
	mk := func(deadline time.Time, age time.Duration) *serviceOp {
		return &serviceOp{kind: opChunk, deadline: deadline, enqueued: now.Add(-age)}
	}
	bulk1 := mk(time.Time{}, 0)
	bulk2 := mk(time.Time{}, 0)
	urgent := mk(now.Add(2*time.Millisecond), 0)
	urgentSoon := mk(now.Add(time.Millisecond), 0)
	aged := mk(time.Time{}, 50*time.Millisecond)

	ops := []*serviceOp{bulk1, urgent, bulk2, aged, urgentSoon}
	if g := qosGroups(ops, 0, now); len(g) != 1 || len(g[0]) != 5 {
		t.Fatalf("aging off: got %d groups", len(g))
	}
	g := qosGroups(ops, 10*time.Millisecond, now)
	if len(g) != 2 {
		t.Fatalf("aging on: got %d groups, want urgent+bulk", len(g))
	}
	// Front batch: both deadline ops (soonest first) and the aged op
	// (effective deadline enqueued+aging = now-40ms, the oldest of all).
	if len(g[0]) != 3 || g[0][0] != aged || g[0][1] != urgentSoon || g[0][2] != urgent {
		t.Fatalf("urgent batch wrong: %v", g[0])
	}
	if len(g[1]) != 2 || g[1][0] != bulk1 || g[1][1] != bulk2 {
		t.Fatalf("bulk batch reordered")
	}
}

// TestErrClosedSentinel: operations on a closed service fail fast with
// ErrClosed (errors.Is), never panicking or hanging on the retired
// loop.
func TestErrClosedSentinel(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{})
	sess := svc.NewSession(SessionOptions{})
	if _, err := sess.RunPlan(context.Background(),
		Static([]lvm.Request{{VLBN: 0, Count: 1}}, disk.SchedSPTF), Options{}); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := sess.RunPlan(context.Background(),
		Static([]lvm.Request{{VLBN: 0, Count: 1}}, disk.SchedSPTF), Options{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("RunPlan after Close: err = %v, want ErrClosed", err)
	}
	if _, err := sess.Write(context.Background(),
		[]lvm.Request{{VLBN: 0, Count: 1}}, disk.SchedSPTF); !errors.Is(err, ErrClosed) {
		t.Fatalf("Write after Close: err = %v, want ErrClosed", err)
	}
	if err := svc.Reset(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reset after Close: err = %v, want ErrClosed", err)
	}
}
