package engine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// rawOp builds a loop-ready read op outside a session (white-box).
func rawOp(reqs []lvm.Request) *serviceOp {
	return &serviceOp{kind: opChunk, chunk: Chunk{Reqs: reqs}, policy: disk.SchedSPTF, reply: make(chan opResult, 1)}
}

// TestPipelineMatchesLockstep drives the same single-chunk op sequence
// through a depth-0 and a depth-2 service (white-box: the test plays
// the loop goroutine, so dispatch windows are deterministic) over a
// 3-disk volume and requires identical per-op costs: per-drive
// partitioned dispatch must reproduce the lockstep ServeBatch schedule
// exactly, including the max-over-drives elapsed time.
func TestPipelineMatchesLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	geoms := []*disk.Geometry{disk.SmallTestDisk(), disk.SmallTestDisk(), disk.SmallTestDisk()}
	v0 := testVolume(t, geoms...)
	v2 := testVolume(t, geoms...)
	s0 := NewService(v0, ServiceOptions{})
	s2 := NewService(v2, ServiceOptions{Pipeline: 2})

	var ops0, ops2 []*serviceOp
	for i := 0; i < 12; i++ {
		reqs := SortCoalesce(randomReqs(rng, v0, 30))
		ops0 = append(ops0, rawOp(reqs))
		ops2 = append(ops2, rawOp(reqs))
	}
	for _, op := range ops0 {
		s0.serveChunks([]*serviceOp{op})
	}
	for _, op := range ops2 {
		s2.serveChunks([]*serviceOp{op})
	}
	s2.plDrain()
	s2.plShutdown()

	for i := range ops0 {
		r0, r2 := <-ops0[i].reply, <-ops2[i].reply
		if r0.err != nil || r2.err != nil {
			t.Fatalf("op %d: errs %v / %v", i, r0.err, r2.err)
		}
		if r2.elapsed != r0.elapsed {
			t.Fatalf("op %d: pipelined elapsed %g != lockstep %g", i, r2.elapsed, r0.elapsed)
		}
		var a, b Stats
		a.AddCompletions(r0.comps, r0.elapsed)
		b.AddCompletions(r2.comps, r2.elapsed)
		statsClose(a, b, t)
	}
	t0, t2 := s0.Totals(), s2.Totals()
	if t0.IssuedRequests != t2.IssuedRequests || t0.Batches != t2.Batches {
		t.Fatalf("totals diverge: %+v vs %+v", t0, t2)
	}
}

// TestPipelineReadStallsOnInflightInsert: with the cache on, a read
// overlapping an in-flight batch's to-be-inserted extents must stall
// until that batch retires — and then hit the cache — while a disjoint
// read overlaps in flight freely.
func TestPipelineReadStallsOnInflightInsert(t *testing.T) {
	v := testVolume(t)
	s := NewService(v, ServiceOptions{CacheBlocks: 1 << 20, Pipeline: 2})

	opA := rawOp([]lvm.Request{{VLBN: 1000, Count: 8}})
	s.serveChunks([]*serviceOp{opA})
	if got := len(s.pl.inflight); got != 1 {
		t.Fatalf("after dispatch: %d batches in flight, want 1", got)
	}

	// Disjoint read: no stall, both batches in flight together.
	opB := rawOp([]lvm.Request{{VLBN: 8000, Count: 8}})
	s.serveChunks([]*serviceOp{opB})
	if got := len(s.pl.inflight); got != 2 {
		t.Fatalf("after disjoint dispatch: %d in flight, want 2", got)
	}

	// Overlapping read: must drain A (and B, FIFO order) first, then
	// probe — a full cache hit, so nothing new is dispatched.
	opC := rawOp([]lvm.Request{{VLBN: 1002, Count: 4}})
	s.serveChunks([]*serviceOp{opC})
	if got := len(s.pl.inflight); got != 0 {
		t.Fatalf("after overlapping read: %d in flight, want 0 (stall + hit)", got)
	}
	rA, rB, rC := <-opA.reply, <-opB.reply, <-opC.reply
	if rA.err != nil || rB.err != nil || rC.err != nil {
		t.Fatalf("errs: %v %v %v", rA.err, rB.err, rC.err)
	}
	if rC.hits != 1 || rC.hitCells != 4 || len(rC.comps) != 0 {
		t.Fatalf("overlapping read should be a pure cache hit, got %+v", rC)
	}
	s.plShutdown()
}

// TestPipelineCancelledWriteStalls: a cancelled write whose
// invalidation overlaps an in-flight insert must drain the pipeline
// before invalidating (else the retiring batch would re-insert stale
// data), charge no simulated I/O, and still invalidate.
func TestPipelineCancelledWriteStalls(t *testing.T) {
	v := testVolume(t)
	s := NewService(v, ServiceOptions{CacheBlocks: 1 << 20, Pipeline: 2})

	opA := rawOp([]lvm.Request{{VLBN: 2000, Count: 8}})
	s.serveChunks([]*serviceOp{opA})
	if len(s.pl.inflight) != 1 {
		t.Fatal("setup: batch not in flight")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := &serviceOp{kind: opWrite, ctx: ctx, chunk: Chunk{Reqs: []lvm.Request{{VLBN: 2002, Count: 2}}},
		policy: disk.SchedSPTF, reply: make(chan opResult, 1)}
	live := s.dropCancelled([]*serviceOp{w})
	if len(live) != 0 {
		t.Fatal("cancelled write survived dropCancelled")
	}
	if got := len(s.pl.inflight); got != 0 {
		t.Fatalf("cancelled overlapping write left %d in flight, want 0", got)
	}
	rw := <-w.reply
	if rw.err == nil || len(rw.comps) != 0 {
		t.Fatalf("cancelled write must carry ctx error and no I/O, got %+v", rw)
	}
	if rw.invalidated != 2 {
		t.Fatalf("invalidated %d blocks, want 2 (insert retired before invalidation)", rw.invalidated)
	}
	if tot := s.Totals(); tot.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", tot.Cancelled)
	}
	<-opA.reply
	s.plShutdown()
}

// TestPipelineWriteBarriers: a write-through write drains the whole
// pipeline; a write-back absorb stalls only when it overlaps an
// in-flight insert (no COW in play).
func TestPipelineWriteBarriers(t *testing.T) {
	v := testVolume(t)
	s := NewService(v, ServiceOptions{CacheBlocks: 1 << 20, Pipeline: 4,
		WriteBack: WriteBackOptions{Enabled: true, WatermarkBlocks: 1 << 20}})

	mk := func(vlbn int64) *serviceOp { return rawOp([]lvm.Request{{VLBN: vlbn, Count: 8}}) }
	a, b := mk(3000), mk(11000)
	s.serveChunks([]*serviceOp{a})
	s.serveChunks([]*serviceOp{b})
	if len(s.pl.inflight) != 2 {
		t.Fatal("setup: want 2 in flight")
	}

	// Disjoint buffered write: absorbed with the pipeline untouched.
	w1 := &serviceOp{kind: opWrite, chunk: Chunk{Reqs: []lvm.Request{{VLBN: 9000, Count: 4}}},
		policy: disk.SchedSPTF, reply: make(chan opResult, 1)}
	s.serveChunks([]*serviceOp{w1})
	if got := len(s.pl.inflight); got != 2 {
		t.Fatalf("disjoint absorb drained pipeline: %d in flight, want 2", got)
	}
	if r := <-w1.reply; r.err != nil || r.written != 4 {
		t.Fatalf("absorb result %+v", r)
	}

	// Overlapping buffered write: must drain before invalidating.
	w2 := &serviceOp{kind: opWrite, chunk: Chunk{Reqs: []lvm.Request{{VLBN: 3004, Count: 2}}},
		policy: disk.SchedSPTF, reply: make(chan opResult, 1)}
	s.serveChunks([]*serviceOp{w2})
	if got := len(s.pl.inflight); got != 0 {
		t.Fatalf("overlapping absorb left %d in flight, want 0", got)
	}
	if r := <-w2.reply; r.err != nil || r.invalidated != 2 {
		t.Fatalf("overlapping absorb result %+v (want 2 invalidated)", r)
	}
	<-a.reply
	<-b.reply

	// Write-through: always a full barrier.
	s.wb = nil // white-box: force the write-through path
	c := mk(5000)
	s.serveChunks([]*serviceOp{c})
	if len(s.pl.inflight) != 1 {
		t.Fatal("setup: want 1 in flight")
	}
	w3 := &serviceOp{kind: opWrite, chunk: Chunk{Reqs: []lvm.Request{{VLBN: 12000, Count: 4}}},
		policy: disk.SchedSPTF, reply: make(chan opResult, 1)}
	s.serveChunks([]*serviceOp{w3})
	if got := len(s.pl.inflight); got != 0 {
		t.Fatalf("write-through left %d in flight, want 0", got)
	}
	<-c.reply
	if r := <-w3.reply; r.err != nil || len(r.comps) == 0 {
		t.Fatalf("write-through result %+v", r)
	}
	s.plDrain()
	s.plShutdown()
}

// pipelineWorkload runs a concurrent mixed read/write workload at one
// pipeline depth and asserts the attribution-sum invariant: summed
// per-session Stats reproduce ServiceTotals.Attributed (ElapsedMs
// aside), at every depth, under -race.
func pipelineWorkload(t *testing.T, depth int, cacheBlocks int64, writeBack bool) {
	t.Helper()
	v := testVolume(t, disk.SmallTestDisk(), disk.SmallTestDisk(), disk.SmallTestDisk())
	opts := ServiceOptions{CacheBlocks: cacheBlocks, Pipeline: depth}
	if writeBack {
		opts.WriteBack = WriteBackOptions{Enabled: true}
	}
	svc := NewService(v, opts)
	defer svc.Close()

	const clients = 6
	var wg sync.WaitGroup
	sums := make([]Stats, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			sess := svc.NewSession(SessionOptions{MaxInflight: 2})
			for q := 0; q < 6; q++ {
				chunks := randomChunks(rng, v, 4, 25)
				st, err := sess.RunPlan(context.Background(), chunkPlan(chunks), Options{})
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				sums[c].Accumulate(st)
				if q%2 == 1 {
					wst, err := sess.Write(context.Background(), SortCoalesce(randomReqs(rng, v, 6)), disk.SchedSPTF)
					if err != nil {
						t.Errorf("client %d write: %v", c, err)
						return
					}
					sums[c].Accumulate(wst)
				}
			}
			if err := sess.Flush(context.Background()); err != nil {
				t.Errorf("client %d flush: %v", c, err)
			}
			// Flush credits land in lifetime totals, not RunPlan returns:
			// re-read the session's totals as its contribution.
			sums[c] = sess.Totals()
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	svc.Close() // drain everything, including the final write-back flush

	var sum Stats
	for c := range sums {
		sum.Accumulate(sums[c])
	}
	att := svc.Totals().Attributed
	sum.ElapsedMs, att.ElapsedMs = 0, 0 // documented exception to the sum
	statsClose(sum, att, t)
	if sum.FlushBatches != att.FlushBatches || sum.CowFaultBlocks != att.CowFaultBlocks {
		t.Fatalf("write-back attribution differs: %+v vs %+v", sum, att)
	}
}

// TestPipelineAttributionSums proves the attribution-sum invariant at
// depths 0/1/2 under GOMAXPROCS 1 and 4 (run with -race).
func TestPipelineAttributionSums(t *testing.T) {
	for _, procs := range []int{1, 4} {
		for _, depth := range []int{0, 1, 2} {
			for _, cfg := range []struct {
				name   string
				cache  int64
				wrBack bool
			}{
				{"plain", 0, false},
				{"cache", 1 << 22, false},
				{"cache+wb", 1 << 22, true},
			} {
				t.Run(fmt.Sprintf("procs=%d/depth=%d/%s", procs, depth, cfg.name), func(t *testing.T) {
					old := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(old)
					pipelineWorkload(t, depth, cfg.cache, cfg.wrBack)
				})
			}
		}
	}
}

// TestPipelineCloseDrains: Close during pipelined dispatch must drain
// in-flight work cleanly — every submitted chunk gets its reply, late
// submissions fail with ErrClosed, and accepted work is attributed.
func TestPipelineCloseDrains(t *testing.T) {
	for i := 0; i < 20; i++ {
		v := testVolume(t)
		svc := NewService(v, ServiceOptions{CacheBlocks: 1 << 20, Pipeline: 3})
		const clients = 4
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(i*10 + c)))
				sess := svc.NewSession(SessionOptions{MaxInflight: 3})
				for q := 0; q < 4; q++ {
					_, err := sess.RunPlan(context.Background(), chunkPlan(randomChunks(rng, v, 3, 20)), Options{})
					if err != nil && err != ErrClosed {
						t.Errorf("unexpected error: %v", err)
						return
					}
					if err == ErrClosed {
						return
					}
				}
			}(c)
		}
		svc.Close() // races with the submissions above — must not hang
		wg.Wait()
		svc.Close()
	}
}

// TestSetPipelineLive flips the depth on a busy service and requires
// the workload (and the attribution sum) to survive the transitions.
func TestSetPipelineLive(t *testing.T) {
	v := testVolume(t)
	svc := NewService(v, ServiceOptions{CacheBlocks: 1 << 20})
	defer svc.Close()
	sess := svc.NewSession(SessionOptions{MaxInflight: 2})
	rng := rand.New(rand.NewSource(7))
	var sum Stats
	for _, depth := range []int{2, 0, 1, 4, 0} {
		if err := svc.SetPipeline(depth); err != nil {
			t.Fatal(err)
		}
		st, err := sess.RunPlan(context.Background(), chunkPlan(randomChunks(rng, v, 5, 30)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		sum.Accumulate(st)
	}
	att := svc.Totals().Attributed
	sum.ElapsedMs, att.ElapsedMs = 0, 0
	statsClose(sum, att, t)
}
