package engine

import (
	"container/list"
	"slices"
	"sort"
)

// extentCache is the service's shared read cache: an LRU over disjoint
// block extents [start, end) in volume LBN space, capacity-bounded in
// blocks. A request hits only when one cached extent fully covers it —
// a partial overlap still costs the full disk access, exactly as a
// block cache that refuses partial reads would behave. Extents inserted
// after a serve are unioned with any cached neighbours (overlapping or
// exactly adjacent), so repeated overlapping queries converge onto a
// few large extents instead of fragmenting.
//
// The cache is owned by the service loop and needs no locking of its
// own.
type extentCache struct {
	capBlocks int64
	used      int64
	lru       *list.List      // front = most recently used; values are *cachedExtent
	byStart   []*cachedExtent // ascending by start; extents are disjoint
}

type cachedExtent struct {
	start, end int64
	elem       *list.Element
}

func newExtentCache(capBlocks int64) *extentCache {
	if capBlocks <= 0 {
		return nil
	}
	return &extentCache{capBlocks: capBlocks, lru: list.New()}
}

// blocks returns the extent's size.
func (e *cachedExtent) blocks() int64 { return e.end - e.start }

// search returns the index of the first cached extent with start > x.
func (c *extentCache) search(x int64) int {
	return sort.Search(len(c.byStart), func(i int) bool { return c.byStart[i].start > x })
}

// covered reports whether [start, end) lies entirely inside one cached
// extent, refreshing that extent's recency on a hit. Like every other
// method, it is a no-op on the nil cache a zero capacity yields.
func (c *extentCache) covered(start, end int64) bool {
	if c == nil {
		return false
	}
	i := c.search(start) - 1
	if i < 0 {
		return false
	}
	if e := c.byStart[i]; e.end >= end {
		c.lru.MoveToFront(e.elem)
		return true
	}
	return false
}

// insert adds [start, end) as most-recently-used, merging it with every
// overlapping or adjacent cached extent, then evicts least-recently-used
// extents until the capacity holds. Extents larger than the whole cache
// are not cached at all — and when merging would produce such an
// extent, the insert is skipped entirely so the existing cached
// neighbours survive instead of being evicted through.
func (c *extentCache) insert(start, end int64) {
	if c == nil || end-start > c.capBlocks || end <= start {
		return
	}
	// All cached extents with e.end >= start and e.start <= end merge.
	lo := c.search(start - 1)
	if lo > 0 && c.byStart[lo-1].end >= start {
		lo--
	}
	hi := lo
	for hi < len(c.byStart) && c.byStart[hi].start <= end {
		e := c.byStart[hi]
		if e.start < start {
			start = e.start
		}
		if e.end > end {
			end = e.end
		}
		hi++
	}
	if end-start > c.capBlocks {
		return
	}
	for _, e := range c.byStart[lo:hi] {
		c.used -= e.blocks()
		c.lru.Remove(e.elem)
	}
	merged := &cachedExtent{start: start, end: end}
	merged.elem = c.lru.PushFront(merged)
	if hi > lo {
		c.byStart[lo] = merged
		c.byStart = append(c.byStart[:lo+1], c.byStart[hi:]...)
	} else {
		c.byStart = slices.Insert(c.byStart, lo, merged)
	}
	c.used += merged.blocks()
	for c.used > c.capBlocks {
		victim := c.lru.Back().Value.(*cachedExtent)
		c.lru.Remove(victim.elem)
		i := c.search(victim.start) - 1
		c.byStart = append(c.byStart[:i], c.byStart[i+1:]...)
		c.used -= victim.blocks()
	}
}

// invalidate removes [start, end) from the cache: fully covered extents
// are dropped, partially covered ones are trimmed, and an extent
// straddling the range splits in two — every remnant keeps the original
// extent's recency. Only the service loop calls this, on behalf of a
// write op mutating those blocks, before the write's cost is charged.
// Returns the number of cached blocks invalidated.
func (c *extentCache) invalidate(start, end int64) int64 {
	if c == nil || end <= start || len(c.byStart) == 0 {
		return 0
	}
	lo := c.search(start) - 1
	if lo < 0 || c.byStart[lo].end <= start {
		lo++
	}
	hi := lo
	var dropped int64
	var remnants []*cachedExtent
	for hi < len(c.byStart) && c.byStart[hi].start < end {
		e := c.byStart[hi]
		cutLo, cutHi := max(e.start, start), min(e.end, end)
		dropped += cutHi - cutLo
		if e.start < start {
			left := &cachedExtent{start: e.start, end: start}
			left.elem = c.lru.InsertBefore(left, e.elem)
			remnants = append(remnants, left)
		}
		if e.end > end {
			right := &cachedExtent{start: end, end: e.end}
			right.elem = c.lru.InsertBefore(right, e.elem)
			remnants = append(remnants, right)
		}
		c.lru.Remove(e.elem)
		hi++
	}
	if hi > lo {
		c.byStart = slices.Replace(c.byStart, lo, hi, remnants...)
		c.used -= dropped
	}
	return dropped
}

// clear drops every cached extent (volume reset, cache reconfiguration).
func (c *extentCache) clear() {
	if c == nil {
		return
	}
	c.lru.Init()
	c.byStart = c.byStart[:0]
	c.used = 0
}
