package engine

import (
	"container/list"
	"slices"
	"sort"
)

// extentCache is the service's shared read cache: an LRU over disjoint
// block extents [start, end) in volume LBN space, capacity-bounded in
// blocks. A request hits only when one cached extent fully covers it —
// a partial overlap still costs the full disk access, exactly as a
// block cache that refuses partial reads would behave. Extents inserted
// after a serve are unioned with any cached neighbours (overlapping or
// exactly adjacent), so repeated overlapping queries converge onto a
// few large extents instead of fragmenting.
//
// The cache is owned by the service loop and needs no locking of its
// own.
//
// # QoS partitioning
//
// With fair sharing on, setShares installs per-class reserve floors
// (capacity × weight / Σweights) and the cache becomes class-aware:
// every extent is tagged with the QoS class that inserted it (a merge
// re-tags the union to the inserting class), per-class usage is
// tracked, and eviction turns borrower-first — a class may grow past
// its reserve into idle capacity, but when the cache overflows the
// victim is the least-recently-used extent belonging to a class that
// is OVER its reserve. A class at or under its reserve keeps its
// extents no matter who is inserting: a bulk scan can fill idle cache
// yet can never push an interactive class's working set below its
// floor. With shares nil (fair sharing off) eviction is the plain
// LRU-back rule, bit-identical to the unpartitioned cache.
type extentCache struct {
	capBlocks int64
	used      int64
	lru       *list.List      // front = most recently used; values are *cachedExtent
	byStart   []*cachedExtent // ascending by start; extents are disjoint

	// shares is the per-class reserve floor in blocks (nil = plain
	// unpartitioned LRU); usedBy tracks each class's cached blocks
	// (maintained even with shares nil, so a later setShares partitions
	// the already-cached population correctly).
	shares map[string]int64
	usedBy map[string]int64
}

type cachedExtent struct {
	start, end int64
	class      string // QoS class that inserted (or last re-merged) it
	elem       *list.Element
}

func newExtentCache(capBlocks int64) *extentCache {
	if capBlocks <= 0 {
		return nil
	}
	return &extentCache{capBlocks: capBlocks, lru: list.New(), usedBy: make(map[string]int64)}
}

// capacity returns the cache capacity in blocks (0 for the nil cache a
// zero capacity yields).
func (c *extentCache) capacity() int64 {
	if c == nil {
		return 0
	}
	return c.capBlocks
}

// setShares installs the per-class reserve floors; nil reverts to the
// plain unpartitioned LRU. Cached contents survive a reconfiguration —
// only future evictions change policy.
func (c *extentCache) setShares(shares map[string]int64) {
	if c == nil {
		return
	}
	c.shares = shares
}

// blocks returns the extent's size.
func (e *cachedExtent) blocks() int64 { return e.end - e.start }

// search returns the index of the first cached extent with start > x.
func (c *extentCache) search(x int64) int {
	return sort.Search(len(c.byStart), func(i int) bool { return c.byStart[i].start > x })
}

// covered reports whether [start, end) lies entirely inside one cached
// extent, refreshing that extent's recency on a hit. Like every other
// method, it is a no-op on the nil cache a zero capacity yields.
func (c *extentCache) covered(start, end int64) bool {
	if c == nil {
		return false
	}
	i := c.search(start) - 1
	if i < 0 {
		return false
	}
	if e := c.byStart[i]; e.end >= end {
		c.lru.MoveToFront(e.elem)
		return true
	}
	return false
}

// insert adds [start, end) as most-recently-used under the default
// class, merging it with every overlapping or adjacent cached extent,
// then evicts until the capacity holds (see insertFor).
func (c *extentCache) insert(start, end int64) { c.insertFor(start, end, "") }

// insertFor adds [start, end) as most-recently-used, tagged with the
// inserting QoS class, merging it with every overlapping or adjacent
// cached extent (the union is re-tagged to the inserting class), then
// evicts extents until the capacity holds — LRU-back with shares nil,
// borrower-first with shares set. Extents larger than the whole cache
// are not cached at all — and when merging would produce such an
// extent, the insert is skipped entirely so the existing cached
// neighbours survive instead of being evicted through.
func (c *extentCache) insertFor(start, end int64, class string) {
	if c == nil || end-start > c.capBlocks || end <= start {
		return
	}
	// All cached extents with e.end >= start and e.start <= end merge.
	lo := c.search(start - 1)
	if lo > 0 && c.byStart[lo-1].end >= start {
		lo--
	}
	hi := lo
	for hi < len(c.byStart) && c.byStart[hi].start <= end {
		e := c.byStart[hi]
		if e.start < start {
			start = e.start
		}
		if e.end > end {
			end = e.end
		}
		hi++
	}
	if end-start > c.capBlocks {
		return
	}
	for _, e := range c.byStart[lo:hi] {
		c.used -= e.blocks()
		c.usedBy[e.class] -= e.blocks()
		c.lru.Remove(e.elem)
	}
	merged := &cachedExtent{start: start, end: end, class: class}
	merged.elem = c.lru.PushFront(merged)
	if hi > lo {
		c.byStart[lo] = merged
		c.byStart = append(c.byStart[:lo+1], c.byStart[hi:]...)
	} else {
		c.byStart = slices.Insert(c.byStart, lo, merged)
	}
	c.used += merged.blocks()
	c.usedBy[class] += merged.blocks()
	for c.used > c.capBlocks {
		victim := c.evictVictim()
		if victim == nil {
			break
		}
		c.lru.Remove(victim.elem)
		i := c.search(victim.start) - 1
		c.byStart = append(c.byStart[:i], c.byStart[i+1:]...)
		c.used -= victim.blocks()
		c.usedBy[victim.class] -= victim.blocks()
	}
}

// evictVictim picks the next extent to evict. With shares nil it is the
// plain LRU back. With shares set it is the least-recently-used extent
// whose class is over its reserve floor — the borrower-first rule: a
// class at or under its reserve is immune, so over-capacity pressure
// always reclaims borrowed blocks before anyone's guaranteed share.
// Since Σ reserves ≤ capacity, an over-capacity cache always holds at
// least one over-reserve extent; the LRU-back fallback only guards the
// impossible empty walk.
func (c *extentCache) evictVictim() *cachedExtent {
	back := c.lru.Back()
	if back == nil {
		return nil
	}
	if c.shares == nil {
		return back.Value.(*cachedExtent)
	}
	for el := back; el != nil; el = el.Prev() {
		e := el.Value.(*cachedExtent)
		if c.usedBy[e.class] > c.shares[e.class] {
			return e
		}
	}
	return back.Value.(*cachedExtent)
}

// invalidate removes [start, end) from the cache: fully covered extents
// are dropped, partially covered ones are trimmed, and an extent
// straddling the range splits in two — every remnant keeps the original
// extent's recency. Only the service loop calls this, on behalf of a
// write op mutating those blocks, before the write's cost is charged.
// Returns the number of cached blocks invalidated.
func (c *extentCache) invalidate(start, end int64) int64 {
	if c == nil || end <= start || len(c.byStart) == 0 {
		return 0
	}
	lo := c.search(start) - 1
	if lo < 0 || c.byStart[lo].end <= start {
		lo++
	}
	hi := lo
	var dropped int64
	var remnants []*cachedExtent
	for hi < len(c.byStart) && c.byStart[hi].start < end {
		e := c.byStart[hi]
		cutLo, cutHi := max(e.start, start), min(e.end, end)
		dropped += cutHi - cutLo
		c.usedBy[e.class] -= cutHi - cutLo
		if e.start < start {
			left := &cachedExtent{start: e.start, end: start, class: e.class}
			left.elem = c.lru.InsertBefore(left, e.elem)
			remnants = append(remnants, left)
		}
		if e.end > end {
			right := &cachedExtent{start: end, end: e.end, class: e.class}
			right.elem = c.lru.InsertBefore(right, e.elem)
			remnants = append(remnants, right)
		}
		c.lru.Remove(e.elem)
		hi++
	}
	if hi > lo {
		c.byStart = slices.Replace(c.byStart, lo, hi, remnants...)
		c.used -= dropped
	}
	return dropped
}

// clear drops every cached extent (volume reset, cache reconfiguration).
func (c *extentCache) clear() {
	if c == nil {
		return
	}
	c.lru.Init()
	c.byStart = c.byStart[:0]
	c.used = 0
	clearMap(c.usedBy)
}

func clearMap(m map[string]int64) {
	for k := range m {
		delete(m, k)
	}
}
