package engine

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// Service is the concurrent query service for one logical volume. A
// single service-loop goroutine owns every member disk's mutable head
// state: sessions submit plan chunks over a queue, the loop admits
// everything queued since the last batch as one admission batch, merges
// the batch's requests into a shared SPTF schedule (cross-query
// coalescing), serves it through lvm.Volume.ServeBatch, and attributes
// per-request costs back to the originating sessions so every query
// still gets its own Stats. An optional shared extent cache lets
// overlapping queries skip re-simulated I/O entirely.
//
// A batch of exactly one chunk is served verbatim — same requests, same
// issue policy, no re-coalescing — so a single session with the cache
// off produces bit-identical Stats to calling Run directly.
//
// # Write path and cache coherence
//
// Writes (Session.Write) are first-class service ops, admitted in the
// same batches as reads. The ordering policy is: within one admission
// batch every read chunk is served before the batch's writes, and
// writes then apply in submission order. A write op first invalidates
// every cached extent overlapping its mutated [lbn, lbn+count) ranges
// — the service loop is the only goroutine allowed to touch the extent
// cache, so invalidation needs no further synchronization — and only
// then is the write's I/O served and its cost charged. Because a
// write's submitter does not unblock until after invalidation, any
// read issued after a write completes observes the invalidation; a
// read admitted concurrently with an in-flight write linearizes before
// it and may still be served from pre-write cache state. Writes do not
// populate the cache (invalidate-on-write, not write-allocate).
type Service struct {
	vol  *lvm.Volume
	opts ServiceOptions

	mu      sync.Mutex
	idle    sync.Cond // signalled when running drops to false
	queue   []*serviceOp
	running bool // a loop goroutine exists and owns the disks
	closed  bool
	cache   *extentCache // owned by the loop; guarded by mu only for reconfiguration
	totals  ServiceTotals
}

// ServiceOptions tunes a service.
type ServiceOptions struct {
	// CacheBlocks is the shared extent cache capacity in blocks;
	// 0 disables the cache.
	CacheBlocks int64
	// MaxBatch caps how many chunks one admission batch may merge;
	// 0 means no cap (admit everything queued).
	MaxBatch int
	// BatchWindow is the time-based admission window: when positive, the
	// loop waits the window out after noticing a non-empty queue before
	// admitting it as a batch, so bursty concurrent clients coalesce
	// into shared batches even when their submissions are microseconds
	// apart. 0 (the default) admits immediately — bit-for-bit today's
	// behavior. The window trades per-op latency for batching: a lone
	// synchronous client pays the full window per chunk with nothing to
	// coalesce against (pipelined sessions overlap the wait with
	// planning), so enable it only for genuinely concurrent workloads.
	// A pass whose queue holds a control op (Reset, Close drain, cache
	// reconfiguration) skips the window, keeping those prompt; a queued
	// request deadline or age cap (DeadlineAging) shortens the wait so
	// the window never delays an urgent request past its deadline.
	BatchWindow time.Duration
	// DeadlineAging enables deadline/QoS-aware admission. When positive,
	// every admission pass classifies its work ops: ops whose context
	// carries a deadline, and ops that have already been queued for at
	// least the aging duration, are urgent — they are served first, as
	// their own admission batch ordered by effective deadline (explicit
	// deadline, or enqueue time + aging for aged ops), ahead of — and
	// never coalesced with — the pass's non-urgent bulk. An old or
	// urgent request therefore bounds how long cross-query coalescing
	// may delay it: at most one batch of similarly urgent peers. 0 (the
	// default) disables classification — every pass admits in submission
	// order, bit-for-bit the pre-QoS behavior.
	DeadlineAging time.Duration
}

// ServiceTotals is the service loop's own bookkeeping, the ground truth
// the per-session Stats must add up to.
type ServiceTotals struct {
	// Batches counts admission batches served; MergedBatches counts
	// those that coalesced more than one chunk, and MaxBatchChunks is
	// the largest admission batch seen — direct evidence of how many
	// queries were in flight together.
	Batches        int64
	MergedBatches  int64
	MaxBatchChunks int
	// IssuedRequests counts requests actually sent to the disks after
	// cross-query coalescing and cache hits.
	IssuedRequests int64
	// WriteOps counts write ops served; InvalidatedBlocks counts cached
	// blocks their write-aware invalidation dropped (also folded into
	// Attributed.InvalidatedBlocks).
	WriteOps          int64
	InvalidatedBlocks int64
	// Cancelled and DeadlineExceeded count queued operations dropped
	// before admission because their context was cancelled or past its
	// deadline. Dropped ops charge no simulated I/O and contribute
	// nothing to Attributed. Each drop is also counted by its
	// submitting session's Stats — but session counters additionally
	// include drops that never reached the queue (a session aborting
	// between planner chunks), so summed session counters are an upper
	// bound on these fields, not an equality.
	Cancelled        int64
	DeadlineExceeded int64
	// Attributed aggregates exactly what was handed back to sessions:
	// summing every session's per-query Stats reproduces these fields
	// (ElapsedMs aside — each chunk of a merged batch observes the full
	// batch's elapsed time, while Attributed counts it once).
	Attributed Stats
}

type opKind int

const (
	opChunk opKind = iota
	opWrite
	opReset
	opCacheCfg
)

// serviceOp is one message to the service loop.
type serviceOp struct {
	kind opKind

	// ctx is the submitting request's context (nil means background):
	// the loop drops a work op whose ctx is done before admission.
	// enqueued and deadline feed the QoS batcher — deadline is ctx's
	// deadline resolved once at submission (zero when none).
	ctx      context.Context
	enqueued time.Time
	deadline time.Time

	// opChunk and opWrite fields; a write op carries its mutated block
	// extents in chunk.Reqs.
	chunk  Chunk
	policy disk.SchedPolicy // effective issue policy (session override applied)
	trace  func([]lvm.Completion)

	// opCacheCfg field.
	cacheBlocks int64

	reply chan opResult
}

// opResult is the loop's answer to one chunk: the completions
// attributed to that chunk (synthesized shares when the batch merged
// requests across queries), cache accounting, and the batch's elapsed
// time.
type opResult struct {
	comps       []lvm.Completion
	hits        int64 // requests served whole from the extent cache
	hitCells    int64 // blocks those hits covered
	misses      int64 // requests that reached the disks (cache enabled only)
	invalidated int64 // cached blocks dropped by a write op's invalidation
	elapsed     float64
	err         error
}

// NewService builds the service for a volume. The caller hands the
// volume's head state to the service: until Close, every ServeBatch and
// Reset must go through it. The loop goroutine runs only while work is
// queued — the first submission of a busy period starts it, and it
// exits once the queue drains — so an idle or abandoned service holds
// no goroutine.
func NewService(vol *lvm.Volume, opts ServiceOptions) *Service {
	s := &Service{
		vol:   vol,
		opts:  opts,
		cache: newExtentCache(opts.CacheBlocks),
	}
	s.idle.L = &s.mu
	return s
}

// SetBatchWindow reconfigures the admission window (see
// ServiceOptions.BatchWindow); it applies from the loop's next
// admission pass. Negative durations are treated as 0. The mutable
// service options (the window and the aging knob) live in s.opts under
// mu, so there is exactly one copy to read.
func (s *Service) SetBatchWindow(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.opts.BatchWindow = d
	s.mu.Unlock()
}

// SetDeadlineAging reconfigures the deadline/QoS-aware admission knob
// (see ServiceOptions.DeadlineAging); it applies from the loop's next
// admission pass. Negative durations are treated as 0 (QoS off).
func (s *Service) SetDeadlineAging(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.opts.DeadlineAging = d
	s.mu.Unlock()
}

// Close rejects further submissions and waits for the in-flight batches
// to finish, so the caller regains exclusive use of the volume. Close
// is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for s.running {
		s.idle.Wait()
	}
}

// Closed reports whether Close has been called. A closed service may
// still be draining; Close (idempotent) waits for quiescence.
func (s *Service) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Reset restores every member disk to its initial state and clears the
// extent cache and totals, serialized after all in-flight batches.
func (s *Service) Reset() error {
	return s.control(&serviceOp{kind: opReset, reply: make(chan opResult, 1)})
}

// ConfigureCache resizes the shared extent cache (0 disables it),
// dropping its current contents. Serialized with in-flight batches.
func (s *Service) ConfigureCache(blocks int64) error {
	return s.control(&serviceOp{kind: opCacheCfg, cacheBlocks: blocks, reply: make(chan opResult, 1)})
}

// Totals snapshots the service-loop bookkeeping.
func (s *Service) Totals() ServiceTotals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totals
}

func (s *Service) control(op *serviceOp) error {
	if err := s.submit(op); err != nil {
		return err
	}
	return (<-op.reply).err
}

// submit enqueues one op, starting a loop goroutine if none is running.
// The op's reply channel (buffer >= 1) receives exactly one result
// unless submit returns an error.
func (s *Service) submit(op *serviceOp) error {
	op.enqueued = time.Now()
	if op.ctx != nil {
		if d, ok := op.ctx.Deadline(); ok {
			op.deadline = d
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.queue = append(s.queue, op)
	if !s.running {
		s.running = true
		go s.loop()
	}
	s.mu.Unlock()
	return nil
}

// loop is the service goroutine: it grabs everything queued since the
// last pass as one admission batch, serves it, and exits when the queue
// drains. At most one loop runs at a time (the running flag), so the
// disks have a single owner. A positive admission window makes the loop
// wait it out after noticing pending work, admitting everything that
// arrived meanwhile as one batch — unless a control op is already
// queued, which is admitted promptly.
func (s *Service) loop() {
	for {
		s.mu.Lock()
		if w := s.opts.BatchWindow; w > 0 && len(s.queue) > 0 && !s.queuedControl() {
			// An urgent queued request bounds the wait: never sleep past
			// an explicit context deadline, nor past the point where a
			// queued op's age reaches the QoS aging cap.
			if wake, ok := s.earliestWake(s.opts.DeadlineAging); ok {
				if until := time.Until(wake); until < w {
					w = until
				}
			}
			s.mu.Unlock()
			if w > 0 {
				time.Sleep(w)
			}
			s.mu.Lock()
		}
		batch := s.queue
		s.queue = nil
		aging := s.opts.DeadlineAging
		if len(batch) == 0 {
			s.running = false
			s.idle.Broadcast()
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s.process(batch, aging)
	}
}

// queuedControl reports whether the queue holds a control op (caller
// must hold mu).
func (s *Service) queuedControl() bool {
	for _, op := range s.queue {
		if op.kind != opChunk && op.kind != opWrite {
			return true
		}
	}
	return false
}

// earliestWake returns the soonest instant by which the admission
// window should end on behalf of a queued urgent request: the earliest
// explicit context deadline, or the earliest enqueue time plus the
// aging cap when QoS admission is on (caller must hold mu).
func (s *Service) earliestWake(aging time.Duration) (time.Time, bool) {
	var wake time.Time
	ok := false
	consider := func(t time.Time) {
		if !ok || t.Before(wake) {
			wake, ok = t, true
		}
	}
	for _, op := range s.queue {
		if !op.deadline.IsZero() {
			consider(op.deadline)
		}
		if aging > 0 {
			consider(op.enqueued.Add(aging))
		}
	}
	return wake, ok
}

// process serves one admitted batch in submission order: consecutive
// chunk and write ops form admission batches; control ops are barriers.
func (s *Service) process(batch []*serviceOp, aging time.Duration) {
	isWork := func(k opKind) bool { return k == opChunk || k == opWrite }
	for i := 0; i < len(batch); {
		if !isWork(batch[i].kind) {
			s.handleControl(batch[i])
			i++
			continue
		}
		j := i
		for j < len(batch) && isWork(batch[j].kind) {
			j++
		}
		s.serveWork(batch[i:j], aging)
		i = j
	}
}

// serveWork admits one run of work ops: ops whose context is already
// cancelled or past its deadline are dropped first — before admission,
// so they are never issued and charge no simulated I/O — then the QoS
// classifier (when DeadlineAging is on) carves urgent work into its own
// front batch, and MaxBatch caps each served batch's size.
func (s *Service) serveWork(ops []*serviceOp, aging time.Duration) {
	live := s.dropCancelled(ops)
	for _, group := range qosGroups(live, aging, time.Now()) {
		for len(group) > 0 {
			k := len(group)
			if m := s.opts.MaxBatch; m > 0 && k > m {
				k = m
			}
			s.serveChunks(group[:k])
			group = group[k:]
		}
	}
}

// dropCancelled replies to — and filters out — every op whose context
// is done, counting the drops in the service totals. The reply carries
// the context error and no completions; the submitting session folds
// the drop into its own Cancelled/DeadlineExceeded counters, so the
// two sides agree event for event. A dropped write op still performs
// its cache invalidation: the submitter's cell state already mutated
// by the time the write was queued, so skipping the invalidation would
// leave stale extents readable — the coherence contract survives
// cancellation, only the simulated I/O is never issued or charged.
func (s *Service) dropCancelled(ops []*serviceOp) []*serviceOp {
	var cancelled, expired, invalidated int64
	live := ops[:0]
	for _, op := range ops {
		if op.ctx != nil {
			if err := op.ctx.Err(); err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					expired++
				} else {
					cancelled++
				}
				var inv int64
				if op.kind == opWrite {
					for _, r := range s.splitAtSegmentEnds(op.chunk.Reqs) {
						inv += s.cache.invalidate(r.VLBN, r.VLBN+int64(r.Count)) // nil-safe
					}
					invalidated += inv
				}
				op.reply <- opResult{err: err, invalidated: inv}
				continue
			}
		}
		live = append(live, op)
	}
	if cancelled+expired > 0 {
		s.mu.Lock()
		s.totals.Cancelled += cancelled
		s.totals.DeadlineExceeded += expired
		s.totals.InvalidatedBlocks += invalidated
		s.totals.Attributed.InvalidatedBlocks += invalidated
		s.mu.Unlock()
	}
	return live
}

// qosGroups splits one admission pass's live work ops into served
// batches (see ServiceOptions.DeadlineAging). With aging off the whole
// pass is one batch in submission order — the pre-QoS behavior, bit
// for bit. With aging on, urgent ops (explicit context deadline, or
// queued at least the aging duration) form their own front batch,
// ordered by effective deadline, and are never coalesced with the
// remaining bulk.
func qosGroups(ops []*serviceOp, aging time.Duration, now time.Time) [][]*serviceOp {
	if len(ops) == 0 {
		return nil
	}
	if aging <= 0 {
		return [][]*serviceOp{ops}
	}
	var urgent, bulk []*serviceOp
	for _, op := range ops {
		if !op.deadline.IsZero() || now.Sub(op.enqueued) >= aging {
			urgent = append(urgent, op)
		} else {
			bulk = append(bulk, op)
		}
	}
	eff := func(op *serviceOp) time.Time {
		if !op.deadline.IsZero() {
			return op.deadline
		}
		return op.enqueued.Add(aging)
	}
	slices.SortStableFunc(urgent, func(a, b *serviceOp) int { return eff(a).Compare(eff(b)) })
	var groups [][]*serviceOp
	if len(urgent) > 0 {
		groups = append(groups, urgent)
	}
	if len(bulk) > 0 {
		groups = append(groups, bulk)
	}
	return groups
}

func (s *Service) handleControl(op *serviceOp) {
	var err error
	switch op.kind {
	case opReset:
		s.vol.Reset()
		s.mu.Lock()
		s.cache.clear() // nil-safe when the cache is off
		s.totals = ServiceTotals{}
		s.mu.Unlock()
	case opCacheCfg:
		s.mu.Lock()
		s.cache = newExtentCache(op.cacheBlocks)
		s.mu.Unlock()
	default:
		err = fmt.Errorf("engine: unknown service op %d", op.kind)
	}
	op.reply <- opResult{err: err}
}

// serveChunks services one admission batch of chunk and write ops
// under the documented ordering policy: all read chunks first (merged
// across queries when more than one), then the batch's writes in
// submission order, each invalidating overlapping cached extents
// before its cost is charged.
func (s *Service) serveChunks(items []*serviceOp) {
	var reads, writes []*serviceOp
	for _, op := range items {
		if op.kind == opWrite {
			writes = append(writes, op)
		} else {
			reads = append(reads, op)
		}
	}
	switch len(reads) {
	case 0:
	case 1:
		s.serveSingle(reads[0])
	default:
		s.serveMerged(reads)
	}
	for _, op := range writes {
		s.serveWrite(op)
	}
}

// splitAtSegmentEnds clips extents at member-disk segment boundaries:
// a request must stay within one disk (the same invariant the read
// coalescer enforces), but write submitters coalesce the blocks a
// mutation dirties by plain VLBN adjacency, and an overflow extent
// ending exactly at one disk's tail can sit adjacent to the next
// disk's first block. Out-of-range addresses pass through unchanged so
// ServeBatch surfaces the error to the submitter.
func (s *Service) splitAtSegmentEnds(reqs []lvm.Request) []lvm.Request {
	out := make([]lvm.Request, 0, len(reqs))
	for _, r := range reqs {
		for {
			di, lbn, err := s.vol.Locate(r.VLBN)
			if err != nil {
				out = append(out, r)
				break
			}
			room := s.vol.DiskBlocks(di) - lbn
			if int64(r.Count) <= room {
				out = append(out, r)
				break
			}
			out = append(out, lvm.Request{VLBN: r.VLBN, Count: int(room)})
			r.VLBN += room
			r.Count -= int(room)
		}
	}
	return out
}

// serveWrite applies one write op: invalidate every cached extent
// overlapping the mutated ranges, then serve the write I/O and charge
// its cost to the submitting session. Writes never populate the cache.
// Extents crossing a disk-segment boundary are split here, so Write's
// contract needs no per-disk precondition from its callers.
func (s *Service) serveWrite(op *serviceOp) {
	var res opResult
	op.chunk.Reqs = s.splitAtSegmentEnds(op.chunk.Reqs)
	for _, r := range op.chunk.Reqs {
		// invalidate is nil-safe when the cache is off.
		res.invalidated += s.cache.invalidate(r.VLBN, r.VLBN+int64(r.Count))
	}
	if len(op.chunk.Reqs) > 0 {
		comps, elapsed, err := s.vol.ServeBatch(op.chunk.Reqs, op.policy)
		if err != nil {
			// The invalidation already happened and stays visible to
			// later reads, so it must stay visible in the bookkeeping
			// too — and in the reply, so the session's totals match.
			s.mu.Lock()
			s.totals.WriteOps++
			s.totals.InvalidatedBlocks += res.invalidated
			s.totals.Attributed.InvalidatedBlocks += res.invalidated
			s.mu.Unlock()
			op.reply <- opResult{err: err, invalidated: res.invalidated}
			return
		}
		res.comps, res.elapsed = comps, elapsed
	}
	s.mu.Lock()
	t := &s.totals
	t.WriteOps++
	t.InvalidatedBlocks += res.invalidated
	t.IssuedRequests += int64(len(op.chunk.Reqs))
	t.Attributed.AddWriteCompletions(res.comps, res.elapsed)
	t.Attributed.InvalidatedBlocks += res.invalidated
	s.mu.Unlock()
	if op.trace != nil && len(res.comps) > 0 {
		op.trace(res.comps)
	}
	op.reply <- res
}

// serveSingle services a lone chunk exactly as Run would: the planner's
// requests, the chunk's policy, no re-coalescing. With the cache off
// this path is bit-identical to the synchronous engine.
func (s *Service) serveSingle(op *serviceOp) {
	var res opResult
	reqs := op.chunk.Reqs
	if s.cache != nil {
		kept := make([]lvm.Request, 0, len(reqs))
		for _, r := range reqs {
			if s.cache.covered(r.VLBN, r.VLBN+int64(r.Count)) {
				res.hits++
				res.hitCells += int64(r.Count)
				continue
			}
			res.misses++
			kept = append(kept, r)
		}
		reqs = kept
	}
	if len(reqs) > 0 {
		comps, elapsed, err := s.vol.ServeBatch(reqs, op.policy)
		if err != nil {
			op.reply <- opResult{err: err}
			return
		}
		res.comps, res.elapsed = comps, elapsed
		for _, c := range comps {
			s.cache.insert(c.Req.VLBN, c.Req.VLBN+int64(c.Req.Count)) // nil-safe
		}
	}
	s.account([]*serviceOp{op}, []opResult{res}, int64(len(reqs)), res.elapsed)
	if op.trace != nil && len(res.comps) > 0 {
		op.trace(res.comps)
	}
	op.reply <- res
}

// serveMerged coalesces the batch's requests across queries into shared
// extents, serves them as one batch — under the chunks' unanimous
// policy, or SPTF when the batch mixes policies (cross-query order is
// the drive's to choose) — and splits each served extent's cost among
// its contributors in proportion to the blocks each asked for. Blocks
// wanted by several queries are read once; every query is still
// credited its own cells.
func (s *Service) serveMerged(items []*serviceOp) {
	results := make([]opResult, len(items))
	fail := func(err error) {
		for _, it := range items {
			it.reply <- opResult{err: err}
		}
	}

	type entry struct {
		item int
		req  lvm.Request
	}
	var entries []entry
	for i, it := range items {
		for _, r := range it.chunk.Reqs {
			if s.cache != nil {
				if s.cache.covered(r.VLBN, r.VLBN+int64(r.Count)) {
					results[i].hits++
					results[i].hitCells += int64(r.Count)
					continue
				}
				results[i].misses++
			}
			entries = append(entries, entry{item: i, req: r})
		}
	}

	var reqs []lvm.Request
	var elapsed float64
	// members[k] lists the entry indices merged into extent reqs[k].
	var members [][]int
	if len(entries) > 0 {
		slices.SortStableFunc(entries, func(a, b entry) int {
			switch {
			case a.req.VLBN != b.req.VLBN:
				if a.req.VLBN < b.req.VLBN {
					return -1
				}
				return 1
			default:
				return a.req.Count - b.req.Count
			}
		})
		var boundary int64 // end VLBN of the current extent's disk segment
		for idx, e := range entries {
			start := e.req.VLBN
			end := start + int64(e.req.Count)
			if n := len(reqs); n > 0 {
				last := &reqs[n-1]
				lastEnd := last.VLBN + int64(last.Count)
				// Merge overlap or exact adjacency, but never across a
				// disk-segment boundary: each original request lies in one
				// segment, so extents clipped to the boundary stay valid.
				if start <= lastEnd && start < boundary {
					if end > lastEnd {
						last.Count = int(end - last.VLBN)
					}
					members[n-1] = append(members[n-1], idx)
					continue
				}
			}
			di, lbn, err := s.vol.Locate(start)
			if err != nil {
				fail(err)
				return
			}
			boundary = start - lbn + s.vol.DiskBlocks(di)
			reqs = append(reqs, lvm.Request{VLBN: start, Count: e.req.Count})
			members = append(members, []int{idx})
		}

		policy := items[0].policy
		for _, it := range items[1:] {
			if it.policy != policy {
				policy = disk.SchedSPTF
				break
			}
		}
		comps, el, err := s.vol.ServeBatch(reqs, policy)
		if err != nil {
			fail(err)
			return
		}
		elapsed = el
		// Extents are disjoint, so a completion maps back by start VLBN.
		compAt := make(map[int64]lvm.Completion, len(comps))
		for _, c := range comps {
			compAt[c.Req.VLBN] = c
		}
		for k, r := range reqs {
			c := compAt[r.VLBN]
			s.cache.insert(r.VLBN, r.VLBN+int64(r.Count)) // nil-safe
			if len(members[k]) == 1 {
				e := entries[members[k][0]]
				results[e.item].comps = append(results[e.item].comps, c)
				continue
			}
			var owned int64
			for _, mi := range members[k] {
				owned += int64(entries[mi].req.Count)
			}
			for _, mi := range members[k] {
				e := entries[mi]
				f := float64(e.req.Count) / float64(owned)
				results[e.item].comps = append(results[e.item].comps, lvm.Completion{
					Req:     e.req,
					DiskIdx: c.DiskIdx,
					Cost: disk.AccessCost{
						CommandMs:  c.Cost.CommandMs * f,
						SeekMs:     c.Cost.SeekMs * f,
						RotateMs:   c.Cost.RotateMs * f,
						TransferMs: c.Cost.TransferMs * f,
					},
					FinishMs: c.FinishMs,
				})
			}
		}
	}
	for i := range results {
		results[i].elapsed = elapsed
	}
	s.account(items, results, int64(len(reqs)), elapsed)
	for i, it := range items {
		if it.trace != nil && len(results[i].comps) > 0 {
			it.trace(results[i].comps)
		}
		it.reply <- results[i]
	}
}

// account folds one served admission batch into the service totals,
// mirroring exactly the folds the sessions will perform.
func (s *Service) account(items []*serviceOp, results []opResult, issued int64, elapsed float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &s.totals
	t.Batches++
	if len(items) > 1 {
		t.MergedBatches++
	}
	if len(items) > t.MaxBatchChunks {
		t.MaxBatchChunks = len(items)
	}
	t.IssuedRequests += issued
	for i, it := range items {
		r := &results[i]
		t.Attributed.AddCompletions(r.comps, 0)
		t.Attributed.Padding += it.chunk.Padding
		t.Attributed.Cells += r.hitCells
		t.Attributed.CacheHits += r.hits
		t.Attributed.CacheMisses += r.misses
	}
	t.Attributed.ElapsedMs += elapsed
}
