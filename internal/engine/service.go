package engine

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// Service is the concurrent query service for one logical volume. A
// single service-loop goroutine owns every member disk's mutable head
// state: sessions submit plan chunks over a queue, the loop admits
// everything queued since the last batch as one admission batch, merges
// the batch's requests into a shared SPTF schedule (cross-query
// coalescing), serves it through lvm.Volume.ServeBatch, and attributes
// per-request costs back to the originating sessions so every query
// still gets its own Stats. An optional shared extent cache lets
// overlapping queries skip re-simulated I/O entirely.
//
// A batch of exactly one chunk is served verbatim — same requests, same
// issue policy, no re-coalescing — so a single session with the cache
// off produces bit-identical Stats to calling Run directly.
//
// # Write path and cache coherence
//
// Writes (Session.Write) are first-class service ops, admitted in the
// same batches as reads. The ordering policy is: within one admission
// batch every read chunk is served before the batch's writes, and
// writes then apply in submission order. A write op first invalidates
// every cached extent overlapping its mutated [lbn, lbn+count) ranges
// — the service loop is the only goroutine allowed to touch the extent
// cache, so invalidation needs no further synchronization — and only
// then is the write's I/O served and its cost charged. Because a
// write's submitter does not unblock until after invalidation, any
// read issued after a write completes observes the invalidation; a
// read admitted concurrently with an in-flight write linearizes before
// it and may still be served from pre-write cache state. Writes do not
// populate the cache (invalidate-on-write, not write-allocate).
type Service struct {
	vol  *lvm.Volume
	opts ServiceOptions

	mu      sync.Mutex
	idle    sync.Cond // signalled when running drops to false
	queue   []*serviceOp
	running bool // a loop goroutine exists and owns the disks
	closed  bool
	cache   *extentCache // owned by the loop; guarded by mu only for reconfiguration
	totals  ServiceTotals
	// perClass is the per-QoS-class slice of totals, keyed by class
	// name; guarded by mu like totals.
	perClass map[string]*ClassTotals

	// classes is the QoS class registry and drr the deficit-round-robin
	// backlog of the weighted-fair admission batcher. Both are owned by
	// the loop goroutine: reconfiguration goes through the opQoSCfg
	// control op, which the loop itself executes.
	classes map[string]QoSClass
	drr     *drrSched

	// wake (buffered 1) nudges a loop that is idle-waiting on dirty
	// write-back data: submit signals it on every enqueue and Close on
	// shutdown, so neither waits out the whole flush interval.
	wake chan struct{}
	// wb is the write-back dirty buffer; nil when write-back is off.
	// Owned by the loop goroutine (reconfigured only via the
	// opWriteBackCfg control op, which the loop itself executes).
	wb *dirtySet

	// pl is the dispatch-stage state (per-drive dispatcher queues and
	// the in-flight batch FIFO); scratch and spare are the loop's
	// reusable buffers. All three are owned by the loop goroutine.
	pl      pipelineState
	scratch svcScratch
	spare   []*serviceOp // recycled admission-queue backing array
}

// svcScratch is the loop goroutine's reusable buffer set: the
// admission hot path runs allocation-free in steady state by building
// each pass's transient state into these buffers instead of fresh
// per-pass allocations.
type svcScratch struct {
	reads, writes []*serviceOp
	kept          []lvm.Request // serveSingle's cache-probe survivor list
	rr, split     []lvm.Request // read-dependency screen buffers
	merge         mergeScratch  // lockstep merged-batch plan buffers
	touched       map[string]bool
	flushComp     map[int64]lvm.Completion
}

// ServiceOptions tunes a service.
type ServiceOptions struct {
	// CacheBlocks is the shared extent cache capacity in blocks;
	// 0 disables the cache.
	CacheBlocks int64
	// MaxBatch caps how many chunks one admission batch may merge;
	// 0 means no cap (admit everything queued).
	MaxBatch int
	// BatchWindow is the time-based admission window: when positive, the
	// loop waits the window out after noticing a non-empty queue before
	// admitting it as a batch, so bursty concurrent clients coalesce
	// into shared batches even when their submissions are microseconds
	// apart. 0 (the default) admits immediately — bit-for-bit today's
	// behavior. The window trades per-op latency for batching: a lone
	// synchronous client pays the full window per chunk with nothing to
	// coalesce against (pipelined sessions overlap the wait with
	// planning), so enable it only for genuinely concurrent workloads.
	// A pass whose queue holds a control op (Reset, Close drain, cache
	// reconfiguration) skips the window, keeping those prompt; a queued
	// request deadline or age cap (DeadlineAging) shortens the wait so
	// the window never delays an urgent request past its deadline.
	BatchWindow time.Duration
	// DeadlineAging enables deadline/QoS-aware admission. When positive,
	// every admission pass classifies its work ops: ops whose context
	// carries a deadline, and ops that have already been queued for at
	// least the aging duration, are urgent — they are served first, as
	// their own admission batch ordered by effective deadline (explicit
	// deadline, or enqueue time + aging for aged ops), ahead of — and
	// never coalesced with — the pass's non-urgent bulk. An old or
	// urgent request therefore bounds how long cross-query coalescing
	// may delay it: at most one batch of similarly urgent peers. 0 (the
	// default) disables classification — every pass admits in submission
	// order, bit-for-bit the pre-QoS behavior.
	DeadlineAging time.Duration
	// FairQuantum enables weighted-fair (deficit-round-robin) admission
	// when positive: each admission pass grants every backlogged QoS
	// class FairQuantum × weight blocks of credit, admits each class's
	// ops FIFO while the credit covers their simulated block cost, and
	// defers the rest to later passes — so one class's burst can no
	// longer monopolize an admission pass. Urgent work (explicit
	// context deadline, Urgent class, or op aged past DeadlineAging)
	// keeps strict priority ahead of the weighted shares. 0 (the
	// default) disables DRR — admission is bit-identical to the
	// FairQuantum-less service. See qos.go for the full contract.
	FairQuantum int64
	// Classes registers the QoS classes (weights, urgency) the fair
	// scheduler and the class-partitioned extent cache use. Sessions
	// reference classes by SessionOptions.Class; unregistered classes
	// get weight 1 and no cache reserve.
	Classes []QoSClass
	// Pipeline is the dispatch pipeline depth: how many admission
	// batches' read I/O may be in flight on the per-drive dispatcher
	// goroutines while the schedule stage admits and plans the next
	// batch. 0 (the default) runs the stages in lockstep on the loop
	// goroutine — bit-identical to the pre-pipeline service. See
	// pipeline.go for the staged-pipeline coherence contract (what
	// stalls, what overlaps, what drains). Negative is treated as 0.
	Pipeline int
	// WriteBack configures write-back caching with group commit: write
	// ops are absorbed into a dirty buffer instead of being charged
	// immediately, and the buffer is committed as one SPTF batch on
	// watermark, flush interval, read dependency, explicit Flush, or
	// Close. Disabled (the zero value) serves every write immediately —
	// bit-identical to the write-through service. See writeback.go for
	// the full contract.
	WriteBack WriteBackOptions
}

// ServiceTotals is the service loop's own bookkeeping, the ground truth
// the per-session Stats must add up to.
type ServiceTotals struct {
	// Batches counts admission batches served; MergedBatches counts
	// those that coalesced more than one chunk, and MaxBatchChunks is
	// the largest admission batch seen — direct evidence of how many
	// queries were in flight together.
	Batches        int64
	MergedBatches  int64
	MaxBatchChunks int
	// IssuedRequests counts requests actually sent to the disks after
	// cross-query coalescing and cache hits.
	IssuedRequests int64
	// WriteOps counts write ops served (write-through) or absorbed into
	// the write-back buffer; InvalidatedBlocks counts cached blocks
	// their write-aware invalidation dropped (also folded into
	// Attributed.InvalidatedBlocks).
	WriteOps          int64
	InvalidatedBlocks int64
	// FlushBatches counts group commits of the write-back buffer — each
	// flush issues the whole dirty set as one SPTF batch.
	// CoalescedWrites counts write ops absorbed into an already-dirty
	// extent, i.e. writes that will share a group-commit I/O with
	// earlier buffered writes instead of paying their own positioning
	// cost. DirtyBlocks is the current write-back buffer size in blocks
	// — a gauge, not a counter; it returns to 0 after every flush. All
	// three stay zero with write-back off.
	FlushBatches    int64
	CoalescedWrites int64
	DirtyBlocks     int64
	// Cancelled and DeadlineExceeded count queued operations dropped
	// before admission because their context was cancelled or past its
	// deadline. Dropped ops charge no simulated I/O and contribute
	// nothing to Attributed. Each drop is also counted by its
	// submitting session's Stats — but session counters additionally
	// include drops that never reached the queue (a session aborting
	// between planner chunks), so summed session counters are an upper
	// bound on these fields, not an equality.
	Cancelled        int64
	DeadlineExceeded int64
	// Attributed aggregates exactly what was handed back to sessions:
	// summing every session's per-query Stats reproduces these fields
	// (ElapsedMs aside — each chunk of a merged batch observes the full
	// batch's elapsed time, while Attributed counts it once).
	Attributed Stats
}

type opKind int

const (
	opChunk opKind = iota
	opWrite
	opReset
	opCacheCfg
	opFlush
	opWriteBackCfg
	opQoSCfg
	opPipelineCfg
)

// serviceOp is one message to the service loop.
type serviceOp struct {
	kind opKind

	// ctx is the submitting request's context (nil means background):
	// the loop drops a work op whose ctx is done before admission.
	// enqueued and deadline feed the QoS batcher — deadline is ctx's
	// deadline resolved once at submission (zero when none).
	ctx      context.Context
	enqueued time.Time
	deadline time.Time

	// opChunk and opWrite fields; a write op carries its mutated block
	// extents in chunk.Reqs. owner is the submitting session of a write
	// op — the write-back flusher credits the group commit's cost back
	// to it (nil for reads and for raw test submissions). class is the
	// submitting session's QoS class ("" for the default class); the
	// fair scheduler queues and charges the op against it. deferred
	// marks an op DRR has already held back at least one pass, so the
	// Deferred counter counts each op once.
	chunk    Chunk
	policy   disk.SchedPolicy // effective issue policy (session override applied)
	trace    func([]lvm.Completion)
	owner    *Session
	class    string
	deferred bool

	// opCacheCfg field.
	cacheBlocks int64
	// opWriteBackCfg field.
	wbCfg WriteBackOptions
	// opQoSCfg fields.
	qosQuantum int64
	qosClasses []QoSClass
	// opPipelineCfg field.
	pipelineDepth int

	reply chan opResult
}

// opPool recycles serviceOps so the admission hot path allocates none
// in steady state. An op's reply channel (capacity 1, always drained
// by the reply's recipient before the op is recycled) survives across
// lives; everything else is zeroed on put.
var opPool = sync.Pool{New: func() any {
	return &serviceOp{reply: make(chan opResult, 1)}
}}

// getOp returns a zeroed op with a ready reply channel.
func getOp() *serviceOp { return opPool.Get().(*serviceOp) }

// putOp recycles an op whose reply has been consumed. Only the reply's
// recipient may call it: the service loop never touches an op after
// sending its result, so the recipient is the last holder.
func putOp(op *serviceOp) {
	reply := op.reply
	*op = serviceOp{reply: reply}
	opPool.Put(op)
}

// opResult is the loop's answer to one chunk: the completions
// attributed to that chunk (synthesized shares when the batch merged
// requests across queries), cache accounting, and the batch's elapsed
// time.
type opResult struct {
	comps       []lvm.Completion
	hits        int64 // requests served whole from the extent cache
	hitCells    int64 // blocks those hits covered
	misses      int64 // requests that reached the disks (cache enabled only)
	invalidated int64 // cached blocks dropped by a write op's invalidation
	written     int64 // blocks absorbed into the write-back buffer
	coalesced   int64 // 1 when the absorbed op coalesced with dirty data
	cowFaults   int64 // blocks faulted out of shared COW extents for this write
	elapsed     float64
	err         error
}

// NewService builds the service for a volume. The caller hands the
// volume's head state to the service: until Close, every ServeBatch and
// Reset must go through it. The loop goroutine runs only while work is
// queued — the first submission of a busy period starts it, and it
// exits once the queue drains — so an idle or abandoned service holds
// no goroutine.
func NewService(vol *lvm.Volume, opts ServiceOptions) *Service {
	s := &Service{
		vol:      vol,
		opts:     opts,
		cache:    newExtentCache(opts.CacheBlocks),
		wake:     make(chan struct{}, 1),
		perClass: make(map[string]*ClassTotals),
		classes:  make(map[string]QoSClass),
		drr:      newDRRSched(),
	}
	if opts.WriteBack.Enabled {
		s.opts.WriteBack = opts.WriteBack.withDefaults()
		s.wb = &dirtySet{}
	}
	if s.opts.Pipeline < 0 {
		s.opts.Pipeline = 0
	}
	s.scratch.touched = make(map[string]bool, 8)
	s.applyQoS(opts.FairQuantum, opts.Classes)
	s.idle.L = &s.mu
	return s
}

// applyQoS installs a fair-share configuration: the quantum (clamped
// to DefaultFairQuantum when enabled with 0), the class registry, and
// the extent cache's per-class reserve shares. Called from NewService
// before the loop exists and from the loop itself (opQoSCfg), so the
// loop-owned registry needs no extra synchronization.
func (s *Service) applyQoS(quantum int64, classes []QoSClass) {
	if quantum < 0 {
		quantum = 0
	}
	if quantum > 0 && len(classes) > 0 {
		// The default class exists whenever fair sharing is on, so
		// unlabelled sessions are a schedulable class of their own.
		if _, ok := hasClass(classes, ""); !ok {
			classes = append(slices.Clone(classes), QoSClass{Name: "", Weight: 1})
		}
	}
	reg := make(map[string]QoSClass, len(classes))
	for _, c := range classes {
		if c.Weight < 1 {
			c.Weight = 1
		}
		reg[c.Name] = c
	}
	s.classes = reg
	s.mu.Lock()
	s.opts.FairQuantum = quantum
	cache := s.cache
	s.mu.Unlock()
	cache.setShares(cacheShares(cache.capacity(), quantum, reg))
}

// hasClass reports whether a class list names a class.
func hasClass(classes []QoSClass, name string) (QoSClass, bool) {
	for _, c := range classes {
		if c.Name == name {
			return c, true
		}
	}
	return QoSClass{}, false
}

// cacheShares computes the extent cache's per-class reserve floors:
// capacity × weight / Σweights over the registered classes. Nil — a
// plain unpartitioned LRU — when fair sharing is off or no classes are
// registered.
func cacheShares(capBlocks, quantum int64, classes map[string]QoSClass) map[string]int64 {
	if quantum <= 0 || len(classes) == 0 || capBlocks <= 0 {
		return nil
	}
	var sum int64
	for _, c := range classes {
		sum += int64(c.Weight)
	}
	shares := make(map[string]int64, len(classes))
	for name, c := range classes {
		shares[name] = capBlocks * int64(c.Weight) / sum
	}
	return shares
}

// SetFairShare reconfigures weighted-fair admission, serialized with
// in-flight batches: quantum is the DRR credit in blocks per weight
// unit per admission pass (0 turns fair sharing off, negative is
// treated as 0; an enabled zero-ish quantum below 1 uses
// DefaultFairQuantum via the caller passing it explicitly), and
// classes replaces the QoS class registry. The extent cache's
// per-class reserves are recomputed from the same registry. Ops
// already deferred by the old configuration are drained first —
// reconfiguration is a scheduling barrier like every control op.
func (s *Service) SetFairShare(quantum int64, classes []QoSClass) error {
	op := getOp()
	op.kind = opQoSCfg
	op.qosQuantum = quantum
	op.qosClasses = classes
	return s.control(op)
}

// SetPipeline reconfigures the dispatch pipeline depth (see
// ServiceOptions.Pipeline). Like every control op it is a barrier: all
// in-flight batches drain first, so the pipeline is empty when the new
// depth takes effect and the per-drive dispatcher queues are rebuilt
// lazily at the new capacity. Negative depths are treated as 0, which
// restores the lockstep loop.
func (s *Service) SetPipeline(depth int) error {
	if depth < 0 {
		depth = 0
	}
	op := getOp()
	op.kind = opPipelineCfg
	op.pipelineDepth = depth
	return s.control(op)
}

// SetBatchWindow reconfigures the admission window (see
// ServiceOptions.BatchWindow); it applies from the loop's next
// admission pass. Negative durations are treated as 0. The mutable
// service options (the window and the aging knob) live in s.opts under
// mu, so there is exactly one copy to read.
func (s *Service) SetBatchWindow(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.opts.BatchWindow = d
	s.mu.Unlock()
}

// SetDeadlineAging reconfigures the deadline/QoS-aware admission knob
// (see ServiceOptions.DeadlineAging); it applies from the loop's next
// admission pass. Negative durations are treated as 0 (QoS off).
func (s *Service) SetDeadlineAging(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.opts.DeadlineAging = d
	s.mu.Unlock()
}

// Close rejects further submissions and waits for the in-flight batches
// to finish, so the caller regains exclusive use of the volume. A
// write-back service commits its dirty buffer before the loop retires —
// Close is the fifth flush trigger — so no acknowledged write is ever
// lost to shutdown. Close is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.signalWake() // a loop idle-waiting on dirty data must notice closed
	for s.running {
		s.idle.Wait()
	}
}

// Closed reports whether Close has been called. A closed service may
// still be draining; Close (idempotent) waits for quiescence.
func (s *Service) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Reset restores every member disk to its initial state and clears the
// extent cache and totals, serialized after all in-flight batches.
func (s *Service) Reset() error {
	op := getOp()
	op.kind = opReset
	return s.control(op)
}

// ConfigureCache resizes the shared extent cache (0 disables it),
// dropping its current contents. Serialized with in-flight batches.
func (s *Service) ConfigureCache(blocks int64) error {
	op := getOp()
	op.kind = opCacheCfg
	op.cacheBlocks = blocks
	return s.control(op)
}

// SetWriteBack reconfigures write-back caching, serialized with
// in-flight batches. The dirty buffer accumulated under the old
// configuration is flushed first, so no buffered write is stranded by
// a reconfiguration (including turning write-back off).
func (s *Service) SetWriteBack(cfg WriteBackOptions) error {
	if cfg.Enabled {
		cfg = cfg.withDefaults()
	}
	op := getOp()
	op.kind = opWriteBackCfg
	op.wbCfg = cfg
	return s.control(op)
}

// Flush commits the write-back dirty buffer as one group-commit batch
// and returns once every previously buffered write has paid its
// simulated I/O. Like all control ops it is a barrier: writes submitted
// before the Flush are absorbed (and therefore committed) first. A ctx
// already cancelled or past its deadline when the loop reaches the op
// returns that error WITHOUT flushing — the dirty data stays buffered
// and commits on a later trigger, never half-flushed. With write-back
// off (or nothing dirty) Flush is a no-op. Returns ErrClosed after
// Close.
func (s *Service) Flush(ctx context.Context) error {
	op := getOp()
	op.kind = opFlush
	op.ctx = ctx
	return s.control(op)
}

// Totals snapshots the service-loop bookkeeping.
func (s *Service) Totals() ServiceTotals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totals
}

func (s *Service) control(op *serviceOp) error {
	if err := s.submit(op); err != nil {
		putOp(op)
		return err
	}
	err := (<-op.reply).err
	putOp(op)
	return err
}

// submit enqueues one op, starting a loop goroutine if none is running.
// The op's reply channel (buffer >= 1) receives exactly one result
// unless submit returns an error.
func (s *Service) submit(op *serviceOp) error {
	op.enqueued = time.Now()
	if op.ctx != nil {
		if d, ok := op.ctx.Deadline(); ok {
			op.deadline = d
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.queue = append(s.queue, op)
	if !s.running {
		s.running = true
		go s.loop()
	} else {
		s.signalWake() // interrupt an idle-wait on dirty write-back data
	}
	s.mu.Unlock()
	return nil
}

// signalWake posts a non-blocking token on the wake channel (buffer 1,
// so a pending token is enough — the loop re-checks state after every
// wake; a stale token at worst causes one harmless extra pass).
func (s *Service) signalWake() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// loop is the service goroutine: it grabs everything queued since the
// last pass as one admission batch, serves it, and exits when the queue
// drains. At most one loop runs at a time (the running flag), so the
// disks have a single owner. A positive admission window makes the loop
// wait it out after noticing pending work, admitting everything that
// arrived meanwhile as one batch — unless a control op is already
// queued, which is admitted promptly.
func (s *Service) loop() {
	for {
		s.mu.Lock()
		if w := s.opts.BatchWindow; w > 0 && len(s.queue) > 0 && !s.queuedControl() {
			// An urgent queued request bounds the wait: never sleep past
			// an explicit context deadline, nor past the point where a
			// queued op's age reaches the QoS aging cap.
			if wake, ok := s.earliestWake(s.opts.DeadlineAging); ok {
				if until := time.Until(wake); until < w {
					w = until
				}
			}
			s.mu.Unlock()
			if w > 0 {
				time.Sleep(w)
			}
			s.mu.Lock()
		}
		batch := s.queue
		s.queue = s.spare // recycled backing array (nil on first pass)
		s.spare = nil
		aging := s.opts.DeadlineAging
		wb := s.opts.WriteBack
		closed := s.closed
		if len(batch) == 0 {
			s.spare = batch[:0]
			if s.drr.count > 0 {
				// A DRR backlog keeps the loop alive: each extra pass
				// grants fresh per-class credit and admits at least one
				// deferred op, so the backlog drains in bounded passes.
				// After Close nothing new can arrive to share passes
				// with, so the backlog is served out in one drain.
				s.mu.Unlock()
				if closed {
					s.drainDeferred(aging)
				} else {
					s.serveWork(nil, aging)
				}
				continue
			}
			if len(s.pl.inflight) > 0 {
				// In-flight pipelined batches keep the loop alive: park
				// until the next completion token (retiring completed
				// batches in dispatch order) or a wake signal delivers new
				// work to overlap with them.
				s.mu.Unlock()
				s.plAwait()
				continue
			}
			if s.wb != nil && s.wb.blocks > 0 {
				// Dirty write-back data keeps the loop alive: on Close it
				// flushes immediately (trigger five); otherwise it sleeps
				// until the oldest extent's flush interval elapses — or a
				// wake signal delivers new work — and re-checks.
				s.mu.Unlock()
				if !closed {
					if since, ok := s.wb.oldest(); ok {
						if wait := time.Until(since.Add(wb.FlushInterval)); wait > 0 {
							s.waitDirty(wait)
							continue
						}
					}
				}
				s.flushDirty()
				continue
			}
			// Idle: retire the dispatcher goroutines with the loop (the
			// pipeline is empty, so they are parked on their queues and
			// never touch mu) — an idle service holds no goroutines.
			s.plShutdown()
			s.running = false
			s.idle.Broadcast()
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		s.process(batch, aging)
		clear(batch)
		s.spare = batch[:0]
		// A busy service still honors the interval bound: dirty data
		// older than the flush interval commits between admission passes
		// instead of waiting for the queue to drain.
		if s.wb != nil && s.wb.blocks > 0 {
			if since, ok := s.wb.oldest(); ok && !time.Now().Before(since.Add(wb.FlushInterval)) {
				s.flushDirty()
			}
		}
	}
}

// waitDirty sleeps until the next flush deadline or a wake signal (a
// new submission, or Close).
func (s *Service) waitDirty(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.wake:
	case <-t.C:
	}
}

// queuedControl reports whether the queue holds a control op (caller
// must hold mu).
func (s *Service) queuedControl() bool {
	for _, op := range s.queue {
		if op.kind != opChunk && op.kind != opWrite {
			return true
		}
	}
	return false
}

// earliestWake returns the soonest instant by which the admission
// window should end on behalf of a queued urgent request: the earliest
// explicit context deadline, or the earliest enqueue time plus the
// aging cap when QoS admission is on (caller must hold mu).
func (s *Service) earliestWake(aging time.Duration) (time.Time, bool) {
	var wake time.Time
	ok := false
	consider := func(t time.Time) {
		if !ok || t.Before(wake) {
			wake, ok = t, true
		}
	}
	for _, op := range s.queue {
		if !op.deadline.IsZero() {
			consider(op.deadline)
		}
		if aging > 0 {
			consider(op.enqueued.Add(aging))
		}
	}
	return wake, ok
}

// process serves one admitted batch in submission order: consecutive
// chunk and write ops form admission batches; control ops are
// barriers. A control op also drains the DRR backlog first — ops the
// fair scheduler deferred were submitted before the control op, so
// deferring them past it would reorder work across the barrier.
func (s *Service) process(batch []*serviceOp, aging time.Duration) {
	isWork := func(k opKind) bool { return k == opChunk || k == opWrite }
	for i := 0; i < len(batch); {
		if !isWork(batch[i].kind) {
			s.drainDeferred(aging)
			// Control ops are pipeline barriers too: the deferred drain
			// above may have dispatched, so drain after it.
			s.plDrain()
			s.handleControl(batch[i])
			i++
			continue
		}
		j := i
		for j < len(batch) && isWork(batch[j].kind) {
			j++
		}
		s.serveWork(batch[i:j], aging)
		i = j
	}
}

// serveWork admits one run of work ops: ops whose context is already
// cancelled or past its deadline are dropped first — before admission,
// so they are never issued and charge no simulated I/O — then the QoS
// scheduler takes over. With fair sharing off (FairQuantum 0) the
// classifier (when DeadlineAging is on) carves urgent work into its
// own front batch exactly as before; with fair sharing on the ops join
// the per-class DRR backlog and one weighted admission pass runs:
// urgent work first (strict priority, ordered by effective deadline),
// then each backlogged class's granted ops as their own batch, never
// coalescing across classes. MaxBatch caps each served batch's size.
// A nil ops slice runs a pure backlog pass — how the loop drains
// deferred work when the queue is empty.
func (s *Service) serveWork(ops []*serviceOp, aging time.Duration) {
	live := s.dropCancelled(ops)
	s.mu.Lock()
	quantum := s.opts.FairQuantum
	s.mu.Unlock()
	if quantum <= 0 {
		if aging <= 0 {
			// Fast path: the whole pass is one batch in submission order
			// (what qosGroups would return, minus its slice allocation).
			if len(live) > 0 {
				s.serveGroup(live)
			}
			return
		}
		for _, group := range qosGroups(live, aging, time.Now()) {
			s.serveGroup(group)
		}
		return
	}
	s.drr.push(live)
	s.sweepDeferred()
	now := time.Now()
	if urgent := s.drr.takeUrgent(s.classes, aging, now); len(urgent) > 0 {
		sortUrgent(urgent, aging)
		s.countUrgent(urgent)
		s.serveGroup(urgent)
	}
	for _, group := range s.drr.grant(s.classes, quantum) {
		s.serveGroup(group)
	}
	s.markDeferred()
}

// serveGroup serves one scheduler-admitted group in MaxBatch slices.
func (s *Service) serveGroup(group []*serviceOp) {
	for len(group) > 0 {
		k := len(group)
		if m := s.opts.MaxBatch; m > 0 && k > m {
			k = m
		}
		s.serveChunks(group[:k])
		group = group[k:]
	}
}

// drainDeferred serves the entire DRR backlog immediately — per class
// in sorted class order — forfeiting all credit. Runs ahead of control
// barriers and on close.
func (s *Service) drainDeferred(aging time.Duration) {
	for _, group := range s.drr.drain() {
		s.serveGroup(s.dropCancelled(group))
	}
}

// sweepDeferred re-drops backlogged ops whose context died while they
// were deferred, so a deferral never turns into simulated I/O for a
// caller that already gave up.
func (s *Service) sweepDeferred() {
	if s.drr.count == 0 {
		return
	}
	for name, q := range s.drr.pending {
		if len(q) == 0 {
			continue
		}
		kept := s.dropCancelled(q)
		s.drr.count -= len(q) - len(kept)
		s.drr.pending[name] = kept
	}
}

// countUrgent tallies strict-priority service per class.
func (s *Service) countUrgent(ops []*serviceOp) {
	s.mu.Lock()
	for _, op := range ops {
		s.classTot(op.class).UrgentOps++
	}
	s.mu.Unlock()
}

// markDeferred counts ops DRR held back this pass — once per op.
func (s *Service) markDeferred() {
	if s.drr.count == 0 {
		return
	}
	s.mu.Lock()
	for _, q := range s.drr.pending {
		for _, op := range q {
			if !op.deferred {
				op.deferred = true
				s.classTot(op.class).Deferred++
			}
		}
	}
	s.mu.Unlock()
}

// classTot returns the per-class totals bucket, creating it on first
// use. Caller must hold mu.
func (s *Service) classTot(name string) *ClassTotals {
	ct := s.perClass[name]
	if ct == nil {
		ct = &ClassTotals{Class: name}
		s.perClass[name] = ct
	}
	return ct
}

// ClassTotals snapshots the per-QoS-class slice of the service
// bookkeeping, sorted by class name. Each entry's Attributed is the
// class's share of Totals().Attributed: summing the entries
// reproduces it field for field, ElapsedMs aside (a shared batch's
// elapsed time is observed once per contributing class).
func (s *Service) ClassTotals() []ClassTotals {
	s.mu.Lock()
	out := make([]ClassTotals, 0, len(s.perClass))
	for _, ct := range s.perClass {
		out = append(out, *ct)
	}
	s.mu.Unlock()
	slices.SortFunc(out, func(a, b ClassTotals) int {
		return cmp.Compare(a.Class, b.Class)
	})
	return out
}

// dropCancelled replies to — and filters out — every op whose context
// is done, counting the drops in the service totals. The reply carries
// the context error and no completions; the submitting session folds
// the drop into its own Cancelled/DeadlineExceeded counters, so the
// two sides agree event for event. A dropped write op still performs
// its cache invalidation: the submitter's cell state already mutated
// by the time the write was queued, so skipping the invalidation would
// leave stale extents readable — the coherence contract survives
// cancellation, only the simulated I/O is never issued or charged.
func (s *Service) dropCancelled(ops []*serviceOp) []*serviceOp {
	var cancelled, expired, invalidated int64
	var perClass map[string]int64 // lazily allocated — drops are rare
	live := ops[:0]
	for _, op := range ops {
		if op.ctx != nil {
			if err := op.ctx.Err(); err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					expired++
				} else {
					cancelled++
				}
				var inv int64
				if op.kind == opWrite {
					// An in-flight read batch overlapping the dropped
					// write's extents will insert them into the cache at
					// retirement; invalidating before that insertion would
					// leave stale data readable, so the invalidation stalls
					// behind the batch.
					if s.plOverlaps(op.chunk.Reqs) {
						s.plDrain()
					}
					split := s.splitInto(s.scratch.split[:0], op.chunk.Reqs)
					s.scratch.split = split[:0]
					for _, r := range split {
						inv += s.cache.invalidate(r.VLBN, r.VLBN+int64(r.Count)) // nil-safe
					}
					invalidated += inv
					if perClass == nil {
						perClass = make(map[string]int64, 4)
					}
					perClass[op.class] += inv
				}
				op.reply <- opResult{err: err, invalidated: inv}
				continue
			}
		}
		live = append(live, op)
	}
	if cancelled+expired > 0 {
		s.mu.Lock()
		s.totals.Cancelled += cancelled
		s.totals.DeadlineExceeded += expired
		s.totals.InvalidatedBlocks += invalidated
		s.totals.Attributed.InvalidatedBlocks += invalidated
		for class, inv := range perClass {
			s.classTot(class).Attributed.InvalidatedBlocks += inv
		}
		s.mu.Unlock()
	}
	return live
}

// qosGroups splits one admission pass's live work ops into served
// batches (see ServiceOptions.DeadlineAging). With aging off the whole
// pass is one batch in submission order — the pre-QoS behavior, bit
// for bit. With aging on, urgent ops (explicit context deadline, or
// queued at least the aging duration) form their own front batch,
// ordered by effective deadline, and are never coalesced with the
// remaining bulk.
func qosGroups(ops []*serviceOp, aging time.Duration, now time.Time) [][]*serviceOp {
	if len(ops) == 0 {
		return nil
	}
	if aging <= 0 {
		return [][]*serviceOp{ops}
	}
	var urgent, bulk []*serviceOp
	for _, op := range ops {
		if !op.deadline.IsZero() || now.Sub(op.enqueued) >= aging {
			urgent = append(urgent, op)
		} else {
			bulk = append(bulk, op)
		}
	}
	eff := func(op *serviceOp) time.Time {
		if !op.deadline.IsZero() {
			return op.deadline
		}
		return op.enqueued.Add(aging)
	}
	slices.SortStableFunc(urgent, func(a, b *serviceOp) int { return eff(a).Compare(eff(b)) })
	var groups [][]*serviceOp
	if len(urgent) > 0 {
		groups = append(groups, urgent)
	}
	if len(bulk) > 0 {
		groups = append(groups, bulk)
	}
	return groups
}

func (s *Service) handleControl(op *serviceOp) {
	var err error
	switch op.kind {
	case opReset:
		s.vol.Reset()
		if s.wb != nil {
			// Reset rewinds the disks to their initial state; buffered
			// writes against the pre-reset state are dropped unflushed
			// (their gauge is zeroed with the totals below).
			s.wb.take()
		}
		s.mu.Lock()
		s.cache.clear() // nil-safe when the cache is off
		s.totals = ServiceTotals{}
		s.perClass = make(map[string]*ClassTotals)
		s.mu.Unlock()
	case opCacheCfg:
		s.mu.Lock()
		s.cache = newExtentCache(op.cacheBlocks)
		cache := s.cache
		quantum := s.opts.FairQuantum
		s.mu.Unlock()
		// A resized cache keeps the QoS partition: reapply the class
		// reserve shares at the new capacity.
		cache.setShares(cacheShares(op.cacheBlocks, quantum, s.classes))
	case opQoSCfg:
		s.applyQoS(op.qosQuantum, op.qosClasses)
	case opPipelineCfg:
		// The control barrier drained the pipeline; retire the dispatcher
		// goroutines so their queues are rebuilt at the new depth on the
		// next dispatch.
		s.plShutdown()
		s.mu.Lock()
		s.opts.Pipeline = op.pipelineDepth
		s.mu.Unlock()
	case opFlush:
		if op.ctx != nil {
			if cerr := op.ctx.Err(); cerr != nil {
				// A dead ctx aborts the flush before it starts: nothing is
				// committed, nothing is charged, and the dirty buffer stays
				// intact for a later trigger — a flush is all-or-nothing.
				err = cerr
				break
			}
		}
		err = s.flushDirty()
	case opWriteBackCfg:
		// Commit under the old configuration first so no buffered write
		// is stranded, then swap the knobs.
		err = s.flushDirty()
		if op.wbCfg.Enabled && s.wb == nil {
			s.wb = &dirtySet{}
		} else if !op.wbCfg.Enabled {
			s.wb = nil
		}
		s.mu.Lock()
		s.opts.WriteBack = op.wbCfg
		s.mu.Unlock()
	default:
		err = fmt.Errorf("engine: unknown service op %d", op.kind)
	}
	op.reply <- opResult{err: err}
}

// serveChunks services one admission batch of chunk and write ops
// under the documented ordering policy: all read chunks first (merged
// across queries when more than one), then the batch's writes in
// submission order, each invalidating overlapping cached extents
// before its cost is charged. With write-back on, writes are absorbed
// into the dirty buffer instead of served (invalidation still happens
// at absorb time), a read overlapping dirty data forces a flush before
// the reads are served (read-your-write: a read never observes a disk
// state older than an acknowledged write), and reaching the watermark
// flushes after the batch's writes are absorbed.
func (s *Service) serveChunks(items []*serviceOp) {
	reads, writes := s.scratch.reads[:0], s.scratch.writes[:0]
	for _, op := range items {
		if op.kind == opWrite {
			writes = append(writes, op)
		} else {
			reads = append(reads, op)
		}
	}
	s.scratch.reads, s.scratch.writes = reads, writes
	s.mu.Lock()
	wb := s.opts.WriteBack
	depth := s.opts.Pipeline
	s.mu.Unlock()
	wbOn := wb.Enabled && s.wb != nil
	if wbOn && len(reads) > 0 && len(s.wb.extents) > 0 {
		rr := s.scratch.rr[:0]
		for _, op := range reads {
			rr = append(rr, op.chunk.Reqs...)
		}
		split := s.splitInto(s.scratch.split[:0], rr)
		s.scratch.rr, s.scratch.split = rr[:0], split[:0]
		if s.wb.overlaps(split) {
			s.flushDirty()
		}
	}
	switch {
	case len(reads) == 0:
	case depth > 0:
		if len(reads) == 1 {
			s.dispatchSingle(depth, reads[0])
		} else {
			s.dispatchMerged(depth, reads)
		}
	case len(reads) == 1:
		s.serveSingle(reads[0])
	default:
		s.serveMerged(reads)
	}
	for _, op := range writes {
		if wbOn {
			// Absorption performs no I/O, so it needs no barrier — unless
			// it would invalidate an extent an in-flight batch will insert
			// (stale data would become readable), or it must COW-fault
			// (loop-side I/O must not interleave with the dispatchers).
			if len(s.pl.inflight) > 0 && (s.vol.HasCOW() || s.plOverlaps(op.chunk.Reqs)) {
				s.plDrain()
			}
			s.absorbWrite(op)
		} else {
			// Write-through I/O runs on the loop goroutine — a barrier.
			s.plDrain()
			s.serveWrite(op)
		}
	}
	if wbOn && s.wb.blocks >= wb.WatermarkBlocks {
		s.flushDirty()
	}
}

// splitAtSegmentEnds clips extents at member-disk segment boundaries:
// a request must stay within one disk (the same invariant the read
// coalescer enforces), but write submitters coalesce the blocks a
// mutation dirties by plain VLBN adjacency, and an overflow extent
// ending exactly at one disk's tail can sit adjacent to the next
// disk's first block. Out-of-range addresses pass through unchanged so
// ServeBatch surfaces the error to the submitter.
func (s *Service) splitAtSegmentEnds(reqs []lvm.Request) []lvm.Request {
	return s.splitInto(make([]lvm.Request, 0, len(reqs)), reqs)
}

// splitInto is splitAtSegmentEnds appending into a caller-provided
// buffer, for hot-path callers that reuse loop scratch.
func (s *Service) splitInto(out []lvm.Request, reqs []lvm.Request) []lvm.Request {
	for _, r := range reqs {
		for {
			di, lbn, err := s.vol.Locate(r.VLBN)
			if err != nil {
				out = append(out, r)
				break
			}
			room := s.vol.DiskBlocks(di) - lbn
			if int64(r.Count) <= room {
				out = append(out, r)
				break
			}
			out = append(out, lvm.Request{VLBN: r.VLBN, Count: int(room)})
			r.VLBN += room
			r.Count -= int(room)
		}
	}
	return out
}

// cowFault serves the copy-on-write fault set of one write op: the
// track-granule spans of its target blocks still mapped to shared
// frozen extents (a snapshotted parent's, or the parent extents under a
// clone) are read at their current shared location — the simulated
// copy-out — and then remapped onto privately allocated extents, so the
// write I/O that follows lands in storage this volume owns. The fault
// read's completions and elapsed time are folded into the op's result,
// so its cost is attributed to the writing session exactly like the
// write itself; the faulted block count lands in CowFaultBlocks.
// Returns the number of fault requests issued. A volume with no COW
// segments detects the no-op with one atomic load.
//
// Ordering matters: callers must re-derive segment boundaries
// (splitAtSegmentEnds) AFTER a successful fault, because resolving
// splits segments and renumbers their indices.
func (s *Service) cowFault(op *serviceOp, res *opResult) (int, error) {
	spans := s.vol.CowSpans(op.chunk.Reqs)
	if len(spans) == 0 {
		return 0, nil
	}
	comps, elapsed, err := s.vol.ServeBatch(spans, op.policy)
	if err != nil {
		return 0, err
	}
	if err := s.vol.ResolveCOW(spans); err != nil {
		return 0, err
	}
	res.comps = append(res.comps, comps...)
	res.elapsed += elapsed
	for _, sp := range spans {
		res.cowFaults += int64(sp.Count)
	}
	return len(spans), nil
}

// failWrite replies to a write op that failed before any I/O beyond its
// COW fault could be charged, keeping the already-performed fault and
// invalidation visible in the bookkeeping and the reply so the
// session's totals still sum to Attributed.
func (s *Service) failWrite(op *serviceOp, res opResult, faultReqs int, err error) {
	s.mu.Lock()
	t := &s.totals
	t.WriteOps++
	t.InvalidatedBlocks += res.invalidated
	t.IssuedRequests += int64(faultReqs)
	t.Attributed.AddWriteCompletions(res.comps, res.elapsed)
	t.Attributed.InvalidatedBlocks += res.invalidated
	t.Attributed.CowFaultBlocks += res.cowFaults
	ct := s.classTot(op.class)
	ct.Ops++
	ct.Attributed.AddWriteCompletions(res.comps, res.elapsed)
	ct.Attributed.InvalidatedBlocks += res.invalidated
	ct.Attributed.CowFaultBlocks += res.cowFaults
	s.mu.Unlock()
	res.err = err
	op.reply <- res
}

// serveWrite applies one write op: fault any copy-on-write target
// tracks into private extents, invalidate every cached extent
// overlapping the mutated ranges, then serve the write I/O and charge
// its cost to the submitting session. Writes never populate the cache.
// Extents crossing a segment boundary are split here — after the COW
// resolve, whose segment splits move the boundaries — so Write's
// contract needs no per-disk precondition from its callers.
func (s *Service) serveWrite(op *serviceOp) {
	var res opResult
	faultReqs, err := s.cowFault(op, &res)
	if err != nil {
		s.failWrite(op, opResult{}, 0, err)
		return
	}
	// The split result lives only until the reply below (nothing reads
	// chunk.Reqs after a write is answered), so loop scratch is safe.
	split := s.splitInto(s.scratch.split[:0], op.chunk.Reqs)
	s.scratch.split = split[:0]
	op.chunk.Reqs = split
	for _, r := range op.chunk.Reqs {
		// invalidate is nil-safe when the cache is off.
		res.invalidated += s.cache.invalidate(r.VLBN, r.VLBN+int64(r.Count))
	}
	if len(op.chunk.Reqs) > 0 {
		comps, elapsed, err := s.vol.ServeBatch(op.chunk.Reqs, op.policy)
		if err != nil {
			// The fault and invalidation already happened and stay
			// visible to later reads, so they must stay visible in the
			// bookkeeping too — and in the reply, so the session's
			// totals match.
			s.failWrite(op, res, faultReqs, err)
			return
		}
		res.comps = append(res.comps, comps...)
		res.elapsed += elapsed
	}
	s.mu.Lock()
	t := &s.totals
	t.WriteOps++
	t.InvalidatedBlocks += res.invalidated
	t.IssuedRequests += int64(len(op.chunk.Reqs) + faultReqs)
	t.Attributed.AddWriteCompletions(res.comps, res.elapsed)
	t.Attributed.InvalidatedBlocks += res.invalidated
	t.Attributed.CowFaultBlocks += res.cowFaults
	ct := s.classTot(op.class)
	ct.Ops++
	ct.Attributed.AddWriteCompletions(res.comps, res.elapsed)
	ct.Attributed.InvalidatedBlocks += res.invalidated
	ct.Attributed.CowFaultBlocks += res.cowFaults
	s.mu.Unlock()
	if op.trace != nil && len(res.comps) > 0 {
		op.trace(res.comps)
	}
	op.reply <- res
}

// absorbWrite buffers one write op in the write-back dirty set instead
// of serving it: the submitter is acknowledged immediately with zero
// I/O cost (its blocks in Writes, its invalidation count, and the
// coalesced flag when the op merged into already-dirty data), and the
// simulated I/O is deferred to the next group commit. Cache coherence
// is NOT deferred — every cached extent overlapping the mutated blocks
// is invalidated here, exactly as on the write-through path. Extents
// whose addresses fall outside the volume are routed to the immediate
// write path instead, so address errors surface to the submitter
// synchronously rather than at some later flush. COW coherence is not
// deferred either: target tracks still mapped to shared frozen extents
// are faulted into private storage here, before absorption — the
// address screen runs first (VLBN validity is unaffected by the
// resolve), so the serveWrite fallback never double-charges a fault —
// and the absorbed extents therefore only ever cover private segments,
// which are never re-split, keeping their recorded flush boundaries
// valid at group-commit time.
func (s *Service) absorbWrite(op *serviceOp) {
	screen := s.splitInto(s.scratch.split[:0], op.chunk.Reqs)
	s.scratch.split = screen[:0]
	for _, r := range screen {
		if _, _, err := s.vol.Locate(r.VLBN); err != nil {
			// Write-through fallback performs I/O on the loop goroutine.
			s.plDrain()
			s.serveWrite(op)
			return
		}
	}
	var res opResult
	faultReqs, err := s.cowFault(op, &res)
	if err != nil {
		s.failWrite(op, opResult{}, 0, err)
		return
	}
	// Split after the resolve: it may have split segments under the
	// target blocks, moving the boundaries the dirty buffer records.
	// Scratch-backed like serveWrite's split: dead once the op replies.
	split := s.splitInto(s.scratch.split[:0], op.chunk.Reqs)
	s.scratch.split = split[:0]
	op.chunk.Reqs = split
	now := time.Now()
	for _, r := range op.chunk.Reqs {
		start, end := r.VLBN, r.VLBN+int64(r.Count)
		res.invalidated += s.cache.invalidate(start, end) // nil-safe
		di, lbn, _ := s.vol.Locate(start)
		boundary := start - lbn + s.vol.DiskBlocks(di)
		if s.wb.absorb(op.owner, start, end, boundary, now) {
			res.coalesced = 1
		}
		res.written += int64(r.Count)
	}
	s.mu.Lock()
	t := &s.totals
	t.WriteOps++
	t.CoalescedWrites += res.coalesced
	t.InvalidatedBlocks += res.invalidated
	t.IssuedRequests += int64(faultReqs)
	t.DirtyBlocks = s.wb.blocks
	t.Attributed.AddWriteCompletions(res.comps, res.elapsed)
	t.Attributed.Writes += res.written
	t.Attributed.InvalidatedBlocks += res.invalidated
	t.Attributed.CoalescedWrites += res.coalesced
	t.Attributed.CowFaultBlocks += res.cowFaults
	ct := s.classTot(op.class)
	ct.Ops++
	ct.Attributed.AddWriteCompletions(res.comps, res.elapsed)
	ct.Attributed.Writes += res.written
	ct.Attributed.InvalidatedBlocks += res.invalidated
	ct.Attributed.CoalescedWrites += res.coalesced
	ct.Attributed.CowFaultBlocks += res.cowFaults
	s.mu.Unlock()
	op.reply <- res
}

// flushDirty group-commits the entire dirty buffer as one SPTF batch —
// the write-back payoff: every buffered write shares one head
// trajectory instead of paying its own positioning cost. The batch's
// per-extent costs are split among the sessions whose buffered writes
// dirtied the extent, in proportion to the blocks each asked for (the
// same split serveMerged applies to shared read extents), and folded
// into both the sessions' lifetime Totals and Attributed — so summing
// session totals still reproduces Attributed after a flush. Each
// contributing session observes the full batch ElapsedMs and counts
// one FlushBatches (Attributed.FlushBatches grows by the number of
// contributors to keep the sum exact; the top-level
// ServiceTotals.FlushBatches counts actual batches). A flush of an
// empty buffer is free.
func (s *Service) flushDirty() error {
	if s.wb == nil || len(s.wb.extents) == 0 {
		return nil
	}
	// The group commit serves I/O on the loop goroutine — a pipeline
	// barrier, so the flush batch never interleaves with dispatched
	// reads on any drive's schedule.
	s.plDrain()
	extents := s.wb.take()
	reqs := make([]lvm.Request, len(extents))
	for i, e := range extents {
		reqs[i] = lvm.Request{VLBN: e.start, Count: int(e.end - e.start)}
	}
	comps, elapsed, err := s.vol.ServeBatch(reqs, disk.SchedSPTF)
	if err != nil {
		// Unreachable in practice: absorbWrite screens out every address
		// ServeBatch can reject. Coherence survives regardless (the
		// invalidation happened at absorb); only the gauge is corrected.
		s.mu.Lock()
		s.totals.DirtyBlocks = 0
		s.mu.Unlock()
		return err
	}
	// Extents are disjoint, so completions map back by start VLBN.
	compAt := s.scratch.flushComp
	if compAt == nil {
		compAt = make(map[int64]lvm.Completion, len(comps))
		s.scratch.flushComp = compAt
	} else {
		clear(compAt)
	}
	for _, c := range comps {
		compAt[c.Req.VLBN] = c
	}
	perOwner := make(map[*Session]*Stats)
	for i, e := range extents {
		c := compAt[reqs[i].VLBN]
		var asked int64
		for _, n := range e.contribs {
			asked += n
		}
		for owner, n := range e.contribs {
			f := float64(n) / float64(asked)
			st := perOwner[owner]
			if st == nil {
				st = &Stats{}
				perOwner[owner] = st
			}
			st.AddFlushCompletions([]lvm.Completion{{
				Req:     lvm.Request{VLBN: e.start, Count: int(n)},
				DiskIdx: c.DiskIdx,
				Cost: disk.AccessCost{
					CommandMs:  c.Cost.CommandMs * f,
					SeekMs:     c.Cost.SeekMs * f,
					RotateMs:   c.Cost.RotateMs * f,
					TransferMs: c.Cost.TransferMs * f,
				},
				FinishMs: c.FinishMs,
			}}, 0)
		}
	}
	s.mu.Lock()
	t := &s.totals
	t.FlushBatches++
	t.IssuedRequests += int64(len(reqs))
	t.DirtyBlocks = 0
	touched := s.scratch.touched
	clear(touched)
	for owner, st := range perOwner {
		st.FlushBatches = 1
		t.Attributed.Accumulate(*st)
		class := ""
		if owner != nil {
			class = owner.class
		}
		s.classTot(class).Attributed.Accumulate(*st)
		touched[class] = true
	}
	t.Attributed.ElapsedMs += elapsed
	for class := range touched {
		s.classTot(class).Attributed.ElapsedMs += elapsed
	}
	s.mu.Unlock()
	for owner, st := range perOwner {
		st.ElapsedMs = elapsed
		if owner != nil {
			owner.creditFlush(*st)
		}
	}
	return nil
}

// planSingle is a lone chunk's schedule stage: probe the cache,
// folding hits into res, and return the requests that must reach the
// disks. With the cache off the chunk's own request slice is returned
// untouched; otherwise the survivors are appended to dst[:0] (callers
// that reuse scratch must not store the result back when the cache is
// off — it would alias the submitter's memory).
func (s *Service) planSingle(op *serviceOp, res *opResult, dst []lvm.Request) []lvm.Request {
	if s.cache == nil {
		return op.chunk.Reqs
	}
	kept := dst[:0]
	for _, r := range op.chunk.Reqs {
		if s.cache.covered(r.VLBN, r.VLBN+int64(r.Count)) {
			res.hits++
			res.hitCells += int64(r.Count)
			continue
		}
		res.misses++
		kept = append(kept, r)
	}
	return kept
}

// finishSingle is a lone chunk's completion stage: insert the served
// extents into the cache, account, trace, reply. issued is the number
// of requests that reached the disks (the plan's survivors).
func (s *Service) finishSingle(op *serviceOp, res opResult, issued int, comps []lvm.Completion, elapsed float64) {
	if issued > 0 {
		res.comps, res.elapsed = comps, elapsed
		for _, c := range comps {
			s.cache.insertFor(c.Req.VLBN, c.Req.VLBN+int64(c.Req.Count), op.class) // nil-safe
		}
	}
	s.account1(op, &res, int64(issued), res.elapsed)
	if op.trace != nil && len(res.comps) > 0 {
		op.trace(res.comps)
	}
	op.reply <- res
}

// serveSingle services a lone chunk exactly as Run would: the planner's
// requests, the chunk's policy, no re-coalescing. With the cache off
// this path is bit-identical to the synchronous engine. This is the
// lockstep (depth-0) plan→dispatch→finish path; dispatchSingle is the
// pipelined one.
func (s *Service) serveSingle(op *serviceOp) {
	var res opResult
	reqs := s.planSingle(op, &res, s.scratch.kept)
	if s.cache != nil {
		s.scratch.kept = reqs[:0] // keep the grown probe buffer
	}
	if len(reqs) > 0 {
		comps, elapsed, err := s.vol.ServeBatch(reqs, op.policy)
		if err != nil {
			op.reply <- opResult{err: err}
			return
		}
		s.finishSingle(op, res, len(reqs), comps, elapsed)
		return
	}
	s.finishSingle(op, res, 0, nil, 0)
}

// mergeEntry ties one item's request to its slot in a merged plan.
type mergeEntry struct {
	item int
	req  lvm.Request
}

// mergeScratch is the buffer set one merged plan builds into. The loop
// owns one (svcScratch.merge) for the lockstep path and reuses it
// across batches; each in-flight pipelined batch carries its own,
// since its plan must survive until retirement.
type mergeScratch struct {
	entries []mergeEntry
	reqs    []lvm.Request // the coalesced extents to issue
	// members[k] lists the entry indices merged into extent reqs[k].
	members [][]int
	results []opResult
	compAt  map[int64]lvm.Completion
}

// reset readies the scratch for a plan over n items, reusing every
// backing allocation from earlier plans.
func (sc *mergeScratch) reset(n int) {
	sc.entries = sc.entries[:0]
	sc.reqs = sc.reqs[:0]
	sc.members = sc.members[:0]
	if cap(sc.results) < n {
		sc.results = make([]opResult, n)
	} else {
		sc.results = sc.results[:n]
		clear(sc.results)
	}
}

// pushMember opens extent slot k = len(members) holding one entry
// index, reusing the retained inner slice when one exists.
func (sc *mergeScratch) pushMember(idx int) {
	if n := len(sc.members); n < cap(sc.members) {
		sc.members = sc.members[:n+1]
		sc.members[n] = append(sc.members[n][:0], idx)
		return
	}
	sc.members = append(sc.members, []int{idx})
}

// mergedPlan is one planned multi-chunk read batch: the items, the
// scratch holding the coalesced extents and per-item results, and the
// batch's issue policy.
type mergedPlan struct {
	items  []*serviceOp
	sc     *mergeScratch
	policy disk.SchedPolicy
}

// fail replies the error to every item of the plan.
func (mp *mergedPlan) fail(err error) {
	for _, it := range mp.items {
		it.reply <- opResult{err: err}
	}
}

// planMerged is a multi-chunk batch's schedule stage: probe the cache
// per request, coalesce the survivors across queries into shared
// extents (merging overlap and exact adjacency, never across a
// disk-segment boundary), and pick the batch policy — the chunks'
// unanimous policy, or SPTF when the batch mixes policies (cross-query
// order is the drive's to choose). Returns ok=false after replying the
// error to every item when an extent fails to locate.
func (s *Service) planMerged(items []*serviceOp, sc *mergeScratch) (*mergedPlan, bool) {
	sc.reset(len(items))
	mp := &mergedPlan{items: items, sc: sc}
	for i, it := range items {
		for _, r := range it.chunk.Reqs {
			if s.cache != nil {
				if s.cache.covered(r.VLBN, r.VLBN+int64(r.Count)) {
					sc.results[i].hits++
					sc.results[i].hitCells += int64(r.Count)
					continue
				}
				sc.results[i].misses++
			}
			sc.entries = append(sc.entries, mergeEntry{item: i, req: r})
		}
	}
	if len(sc.entries) == 0 {
		return mp, true
	}
	slices.SortStableFunc(sc.entries, func(a, b mergeEntry) int {
		switch {
		case a.req.VLBN != b.req.VLBN:
			if a.req.VLBN < b.req.VLBN {
				return -1
			}
			return 1
		default:
			return a.req.Count - b.req.Count
		}
	})
	var boundary int64 // end VLBN of the current extent's disk segment
	for idx, e := range sc.entries {
		start := e.req.VLBN
		end := start + int64(e.req.Count)
		if n := len(sc.reqs); n > 0 {
			last := &sc.reqs[n-1]
			lastEnd := last.VLBN + int64(last.Count)
			// Merge overlap or exact adjacency, but never across a
			// disk-segment boundary: each original request lies in one
			// segment, so extents clipped to the boundary stay valid.
			if start <= lastEnd && start < boundary {
				if end > lastEnd {
					last.Count = int(end - last.VLBN)
				}
				sc.members[n-1] = append(sc.members[n-1], idx)
				continue
			}
		}
		di, lbn, err := s.vol.Locate(start)
		if err != nil {
			mp.fail(err)
			return nil, false
		}
		boundary = start - lbn + s.vol.DiskBlocks(di)
		sc.reqs = append(sc.reqs, lvm.Request{VLBN: start, Count: e.req.Count})
		sc.pushMember(idx)
	}
	mp.policy = items[0].policy
	for _, it := range items[1:] {
		if it.policy != mp.policy {
			mp.policy = disk.SchedSPTF
			break
		}
	}
	return mp, true
}

// finishMerged is a merged batch's completion stage: map each served
// extent's completion back to its contributors, splitting its cost in
// proportion to the blocks each asked for (blocks wanted by several
// queries are read once; every query is still credited its own cells),
// insert the extents into the cache, account, trace, reply.
func (s *Service) finishMerged(mp *mergedPlan, comps []lvm.Completion, elapsed float64) {
	sc, items := mp.sc, mp.items
	if len(sc.reqs) > 0 {
		// Extents are disjoint, so a completion maps back by start VLBN.
		if sc.compAt == nil {
			sc.compAt = make(map[int64]lvm.Completion, len(comps))
		} else {
			clear(sc.compAt)
		}
		for _, c := range comps {
			sc.compAt[c.Req.VLBN] = c
		}
		for k, r := range sc.reqs {
			c := sc.compAt[r.VLBN]
			// A shared extent is tagged with its first contributor's class.
			s.cache.insertFor(r.VLBN, r.VLBN+int64(r.Count), items[sc.entries[sc.members[k][0]].item].class) // nil-safe
			if len(sc.members[k]) == 1 {
				e := sc.entries[sc.members[k][0]]
				sc.results[e.item].comps = append(sc.results[e.item].comps, c)
				continue
			}
			var owned int64
			for _, mi := range sc.members[k] {
				owned += int64(sc.entries[mi].req.Count)
			}
			for _, mi := range sc.members[k] {
				e := sc.entries[mi]
				f := float64(e.req.Count) / float64(owned)
				sc.results[e.item].comps = append(sc.results[e.item].comps, lvm.Completion{
					Req:     e.req,
					DiskIdx: c.DiskIdx,
					Cost: disk.AccessCost{
						CommandMs:  c.Cost.CommandMs * f,
						SeekMs:     c.Cost.SeekMs * f,
						RotateMs:   c.Cost.RotateMs * f,
						TransferMs: c.Cost.TransferMs * f,
					},
					FinishMs: c.FinishMs,
				})
			}
		}
	}
	for i := range sc.results {
		sc.results[i].elapsed = elapsed
	}
	s.account(items, sc.results, int64(len(sc.reqs)), elapsed)
	for i, it := range items {
		if it.trace != nil && len(sc.results[i].comps) > 0 {
			it.trace(sc.results[i].comps)
		}
		it.reply <- sc.results[i]
	}
}

// serveMerged coalesces the batch's requests across queries into shared
// extents, serves them as one batch, and splits each served extent's
// cost among its contributors. This is the lockstep (depth-0)
// plan→dispatch→finish path, reusing the loop's merge scratch;
// dispatchMerged is the pipelined one.
func (s *Service) serveMerged(items []*serviceOp) {
	mp, ok := s.planMerged(items, &s.scratch.merge)
	if !ok {
		return
	}
	var comps []lvm.Completion
	var elapsed float64
	if len(mp.sc.reqs) > 0 {
		var err error
		comps, elapsed, err = s.vol.ServeBatch(mp.sc.reqs, mp.policy)
		if err != nil {
			mp.fail(err)
			return
		}
	}
	s.finishMerged(mp, comps, elapsed)
}

// account folds one served admission batch into the service totals,
// mirroring exactly the folds the sessions will perform.
func (s *Service) account(items []*serviceOp, results []opResult, issued int64, elapsed float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &s.totals
	t.Batches++
	if len(items) > 1 {
		t.MergedBatches++
	}
	if len(items) > t.MaxBatchChunks {
		t.MaxBatchChunks = len(items)
	}
	t.IssuedRequests += issued
	touched := s.scratch.touched
	clear(touched)
	for i, it := range items {
		r := &results[i]
		t.Attributed.AddCompletions(r.comps, 0)
		t.Attributed.Padding += it.chunk.Padding
		t.Attributed.Cells += r.hitCells
		t.Attributed.CacheHits += r.hits
		t.Attributed.CacheMisses += r.misses
		ct := s.classTot(it.class)
		ct.Ops++
		ct.Attributed.AddCompletions(r.comps, 0)
		ct.Attributed.Padding += it.chunk.Padding
		ct.Attributed.Cells += r.hitCells
		ct.Attributed.CacheHits += r.hits
		ct.Attributed.CacheMisses += r.misses
		touched[it.class] = true
	}
	t.Attributed.ElapsedMs += elapsed
	// A shared batch's elapsed time is observed once per contributing
	// class — like sessions, summed class ElapsedMs is not additive.
	for class := range touched {
		s.classTot(class).Attributed.ElapsedMs += elapsed
	}
}

// account1 is account for a single-chunk batch — the same folds
// without the per-item loop's slice and map traffic.
func (s *Service) account1(op *serviceOp, r *opResult, issued int64, elapsed float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &s.totals
	t.Batches++
	if t.MaxBatchChunks < 1 {
		t.MaxBatchChunks = 1
	}
	t.IssuedRequests += issued
	t.Attributed.AddCompletions(r.comps, 0)
	t.Attributed.Padding += op.chunk.Padding
	t.Attributed.Cells += r.hitCells
	t.Attributed.CacheHits += r.hits
	t.Attributed.CacheMisses += r.misses
	ct := s.classTot(op.class)
	ct.Ops++
	ct.Attributed.AddCompletions(r.comps, 0)
	ct.Attributed.Padding += op.chunk.Padding
	ct.Attributed.Cells += r.hitCells
	ct.Attributed.CacheHits += r.hits
	ct.Attributed.CacheMisses += r.misses
	t.Attributed.ElapsedMs += elapsed
	ct.Attributed.ElapsedMs += elapsed
}
