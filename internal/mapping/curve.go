package mapping

import (
	"fmt"

	"repro/internal/lvm"
	"repro/internal/sfc"
)

// curveMapper stores cells in space-filling-curve order: the cell with
// dense curve rank r lives at base+r (§5.2: cells ordered by curve
// value, packed with fill factor 1, stored sequentially).
type curveMapper struct {
	kind       Kind
	dims       []int
	ranked     *sfc.Ranked
	base       int64
	cellBlocks int
	diskIdx    int // the one disk holding the extent
}

func newCurveMapper(kind Kind, vol *lvm.Volume, dims []int, curve sfc.Curve, opts Options) (Mapper, error) {
	base, diskIdx, err := checkExtent(vol, dims, opts)
	if err != nil {
		return nil, err
	}
	r, err := sfc.NewRanked(curve)
	if err != nil {
		return nil, err
	}
	return &curveMapper{
		kind: kind, dims: append([]int(nil), dims...),
		ranked: r, base: base, cellBlocks: opts.CellBlocks, diskIdx: diskIdx,
	}, nil
}

func (c *curveMapper) Kind() Kind  { return c.kind }
func (c *curveMapper) Dims() []int { return c.dims }

func (c *curveMapper) CellVLBN(cell []int) (int64, error) {
	r, err := c.ranked.Rank(cell)
	if err != nil {
		return 0, err
	}
	return c.base + r*int64(c.cellBlocks), nil
}

func (c *curveMapper) CellBlocks() int { return c.cellBlocks }

func (c *curveMapper) CellExtents(cell []int) ([]lvm.Request, error) {
	vlbn, err := c.CellVLBN(cell)
	if err != nil {
		return nil, err
	}
	return []lvm.Request{{VLBN: vlbn, Count: c.cellBlocks}}, nil
}

// BoxRequests expands the box [lo,hi) into ascending coalesced
// requests: raw curve keys for every cell, one bulk sort, one bulk
// rank conversion, and an on-the-fly coalesce of consecutive ranks.
func (c *curveMapper) BoxRequests(lo, hi []int) ([]lvm.Request, error) {
	if len(lo) != len(c.dims) || len(hi) != len(c.dims) {
		return nil, fmt.Errorf("mapping: box arity mismatch")
	}
	n := int64(1)
	for i := range c.dims {
		if lo[i] < 0 || hi[i] > c.dims[i] || lo[i] >= hi[i] {
			return nil, fmt.Errorf("mapping: bad box [%d,%d) on dim %d", lo[i], hi[i], i)
		}
		n *= int64(hi[i] - lo[i])
	}
	keys := make([]uint64, 0, n)
	cell := append([]int(nil), lo...)
	for {
		k, err := c.ranked.KeyOf(cell)
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
		done := true
		for i := 0; i < len(cell); i++ {
			cell[i]++
			if cell[i] < hi[i] {
				done = false
				break
			}
			cell[i] = lo[i]
		}
		if done {
			break
		}
	}
	sfc.SortKeys(keys)
	if err := c.ranked.RanksOfSortedKeys(keys); err != nil {
		return nil, err
	}
	b := int64(c.cellBlocks)
	var out []lvm.Request
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j] == keys[j-1]+1 {
			j++
		}
		out = append(out, lvm.Request{
			VLBN:  c.base + int64(keys[i])*b,
			Count: (j - i) * int(b),
		})
		i = j
	}
	return out, nil
}

// CellAt inverts the placement: the cell stored at the block.
func (c *curveMapper) CellAt(vlbn int64, out []int) error {
	if vlbn < c.base || vlbn >= c.base+c.ranked.Len()*int64(c.cellBlocks) {
		return fmt.Errorf("mapping: VLBN %d outside the %s extent", vlbn, c.kind)
	}
	return c.ranked.CellAt((vlbn-c.base)/int64(c.cellBlocks), out)
}

// SpanVLBN: a curve-ordered dataset is one contiguous extent of densely
// packed ranks.
func (c *curveMapper) SpanVLBN() (int64, int64) {
	return c.base, c.base + sfc.NumCells(c.dims)*int64(c.cellBlocks)
}

// SpanOnDisk: the extent lives wholly on one disk.
func (c *curveMapper) SpanOnDisk(di int) (int64, int64) {
	if di != c.diskIdx {
		return 0, 0
	}
	return c.SpanVLBN()
}

var (
	_ Mapper      = (*curveMapper)(nil)
	_ CellSized   = (*curveMapper)(nil)
	_ BoxPlanner  = (*curveMapper)(nil)
	_ Spanned     = (*curveMapper)(nil)
	_ DiskSpanned = (*curveMapper)(nil)
)
