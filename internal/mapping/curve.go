package mapping

import (
	"fmt"

	"repro/internal/lvm"
	"repro/internal/sfc"
)

// curveMapper stores cells in space-filling-curve order: the cell with
// dense curve rank r lives at base+r (§5.2: cells ordered by curve
// value, packed with fill factor 1, stored sequentially).
type curveMapper struct {
	kind       Kind
	dims       []int
	ranked     *sfc.Ranked
	base       int64
	cellBlocks int
}

func newCurveMapper(kind Kind, vol *lvm.Volume, dims []int, curve sfc.Curve, opts Options) (Mapper, error) {
	base, _, err := checkExtent(vol, dims, opts)
	if err != nil {
		return nil, err
	}
	r, err := sfc.NewRanked(curve)
	if err != nil {
		return nil, err
	}
	return &curveMapper{
		kind: kind, dims: append([]int(nil), dims...),
		ranked: r, base: base, cellBlocks: opts.CellBlocks,
	}, nil
}

func (c *curveMapper) Kind() Kind  { return c.kind }
func (c *curveMapper) Dims() []int { return c.dims }

func (c *curveMapper) CellVLBN(cell []int) (int64, error) {
	r, err := c.ranked.Rank(cell)
	if err != nil {
		return 0, err
	}
	return c.base + r*int64(c.cellBlocks), nil
}

func (c *curveMapper) CellBlocks() int { return c.cellBlocks }

func (c *curveMapper) CellExtents(cell []int) ([]lvm.Request, error) {
	vlbn, err := c.CellVLBN(cell)
	if err != nil {
		return nil, err
	}
	return []lvm.Request{{VLBN: vlbn, Count: c.cellBlocks}}, nil
}

// CellAt inverts the placement: the cell stored at the block.
func (c *curveMapper) CellAt(vlbn int64, out []int) error {
	if vlbn < c.base || vlbn >= c.base+c.ranked.Len()*int64(c.cellBlocks) {
		return fmt.Errorf("mapping: VLBN %d outside the %s extent", vlbn, c.kind)
	}
	return c.ranked.CellAt((vlbn-c.base)/int64(c.cellBlocks), out)
}

var (
	_ Mapper    = (*curveMapper)(nil)
	_ CellSized = (*curveMapper)(nil)
)
