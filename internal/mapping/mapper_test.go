package mapping

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
	"repro/internal/sfc"
)

func testVolume(t *testing.T) *lvm.Volume {
	t.Helper()
	v, err := lvm.New(16, disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestKindStringsAndParse(t *testing.T) {
	for _, k := range []Kind{Naive, ZOrder, Hilbert, Gray, MultiMap} {
		s := k.String()
		if s == "" || s[0] == 'K' {
			t.Errorf("kind %d has bad name %q", int(k), s)
		}
	}
	for in, want := range map[string]Kind{
		"naive": Naive, "zorder": ZOrder, "z-order": ZOrder, "z": ZOrder,
		"hilbert": Hilbert, "gray": Gray, "multimap": MultiMap, "mm": MultiMap,
	} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q)=%v,%v", in, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
	if len(Kinds()) != 4 {
		t.Error("the paper compares exactly four mappings")
	}
}

func TestEveryMapperBijective(t *testing.T) {
	dims := []int{11, 5, 4}
	n := sfc.NumCells(dims)
	for _, k := range []Kind{Naive, ZOrder, Hilbert, Gray, MultiMap} {
		v := testVolume(t)
		m, err := New(k, v, dims, Options{DiskIdx: 0})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if m.Kind() != k {
			t.Errorf("%v: Kind()=%v", k, m.Kind())
		}
		seen := map[int64]bool{}
		cell := make([]int, len(dims))
		count := int64(0)
		for {
			vlbn, err := m.CellVLBN(cell)
			if err != nil {
				t.Fatalf("%v: CellVLBN(%v): %v", k, cell, err)
			}
			if seen[vlbn] {
				t.Fatalf("%v: duplicate VLBN %d", k, vlbn)
			}
			seen[vlbn] = true
			count++
			i := 0
			for i < len(dims) {
				cell[i]++
				if cell[i] < dims[i] {
					break
				}
				cell[i] = 0
				i++
			}
			if i == len(dims) {
				break
			}
		}
		if count != n {
			t.Fatalf("%v: enumerated %d cells, want %d", k, count, n)
		}
	}
}

func TestLinearMappersDense(t *testing.T) {
	// Naive and the curve mappings fill exactly [base, base+N) with no
	// holes — the fill-factor-1 packing of §5.2.
	dims := []int{7, 6, 3}
	n := sfc.NumCells(dims)
	for _, k := range []Kind{Naive, ZOrder, Hilbert, Gray} {
		v := testVolume(t)
		m, err := New(k, v, dims, Options{DiskIdx: 0, BaseVLBN: 100})
		if err != nil {
			t.Fatal(err)
		}
		min, max := int64(1<<62), int64(-1)
		cell := make([]int, len(dims))
		for i := int64(0); i < n; i++ {
			vlbn, err := m.CellVLBN(cell)
			if err != nil {
				t.Fatal(err)
			}
			if vlbn < min {
				min = vlbn
			}
			if vlbn > max {
				max = vlbn
			}
			advance(cell, dims)
		}
		base := v.DiskStart(0) + 100
		if min != base || max != base+n-1 {
			t.Errorf("%v: extent [%d,%d], want [%d,%d]", k, min, max, base, base+n-1)
		}
	}
}

func advance(cell, dims []int) {
	for i := 0; i < len(dims); i++ {
		cell[i]++
		if cell[i] < dims[i] {
			return
		}
		cell[i] = 0
	}
}

func TestNaiveRowMajor(t *testing.T) {
	v := testVolume(t)
	m, err := New(Naive, v, []int{4, 3, 2}, Options{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Dim0 fastest: cell (x,y,z) at x + 4y + 12z.
	for _, tc := range []struct {
		cell []int
		off  int64
	}{
		{[]int{0, 0, 0}, 0},
		{[]int{3, 0, 0}, 3},
		{[]int{0, 1, 0}, 4},
		{[]int{0, 0, 1}, 12},
		{[]int{3, 2, 1}, 23},
	} {
		got, err := m.CellVLBN(tc.cell)
		if err != nil {
			t.Fatal(err)
		}
		if got != v.DiskStart(0)+tc.off {
			t.Errorf("cell %v at %d, want offset %d", tc.cell, got, tc.off)
		}
	}
}

func TestNaiveDim0Run(t *testing.T) {
	v := testVolume(t)
	m, err := New(Naive, v, []int{10, 3}, Options{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	r := m.(Dim0Runner)
	reqs, err := r.Dim0Run([]int{2, 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].Count != 5 {
		t.Fatalf("got %v, want one 5-block run", reqs)
	}
	if _, err := r.Dim0Run([]int{8, 0}, 5); err == nil {
		t.Error("overlong run accepted")
	}
	if _, err := r.Dim0Run([]int{0, 0}, 0); err == nil {
		t.Error("zero run accepted")
	}
}

func TestCurveMapperCellAt(t *testing.T) {
	v := testVolume(t)
	m, err := New(Hilbert, v, []int{6, 5}, Options{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	cm := m.(*curveMapper)
	out := make([]int, 2)
	for _, cell := range [][]int{{0, 0}, {5, 4}, {3, 2}} {
		vlbn, err := m.CellVLBN(cell)
		if err != nil {
			t.Fatal(err)
		}
		if err := cm.CellAt(vlbn, out); err != nil {
			t.Fatal(err)
		}
		if out[0] != cell[0] || out[1] != cell[1] {
			t.Errorf("CellAt(%d)=%v, want %v", vlbn, out, cell)
		}
	}
	if err := cm.CellAt(-1, out); err == nil {
		t.Error("VLBN before extent accepted")
	}
}

func TestExtentValidation(t *testing.T) {
	v := testVolume(t)
	if _, err := New(Naive, v, []int{10, 10}, Options{DiskIdx: 5}); err == nil {
		t.Error("bad disk index accepted")
	}
	if _, err := New(Naive, v, []int{10, 10}, Options{DiskIdx: 0, BaseVLBN: -1}); err == nil {
		t.Error("negative base accepted")
	}
	huge := []int{100000, 100}
	if _, err := New(Naive, v, huge, Options{DiskIdx: 0}); err == nil {
		t.Error("oversized extent accepted")
	}
	if _, err := New(Naive, v, nil, Options{}); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := New(Naive, v, []int{0, 5}, Options{}); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := New(Kind(99), v, []int{4, 4}, Options{}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMultiMapperInterfaces(t *testing.T) {
	v := testVolume(t)
	m, err := New(MultiMap, v, []int{10, 4, 3}, Options{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(SemiSequential); !ok {
		t.Error("MultiMap must advertise semi-sequential access")
	}
	if _, ok := m.(Dim0Runner); !ok {
		t.Error("MultiMap must support Dim0 runs")
	}
	mm := m.(*multiMapper)
	if mm.Core() == nil {
		t.Error("Core() returned nil")
	}
	// Linear mappings must not advertise semi-sequential access.
	for _, k := range []Kind{Naive, ZOrder, Hilbert, Gray} {
		lm, err := New(k, v, []int{10, 4}, Options{DiskIdx: 0})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := lm.(SemiSequential); ok {
			t.Errorf("%v wrongly advertises semi-sequential access", k)
		}
	}
}
