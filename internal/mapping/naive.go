package mapping

import (
	"fmt"

	"repro/internal/lvm"
)

// naiveMapper is the traditional linearization (§1): the dataset is
// stored row-major with Dim0 as the major order, in one contiguous
// extent. Access along Dim0 is sequential; every other dimension
// strides across the extent.
type naiveMapper struct {
	dims       []int
	strides    []int64 // row-major strides in blocks
	base       int64
	cells      int64
	cellBlocks int
	diskIdx    int // the one disk holding the extent
}

func newNaive(vol *lvm.Volume, dims []int, opts Options) (Mapper, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("mapping: empty dimension list")
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("mapping: dimension %d has non-positive length %d", i, d)
		}
	}
	base, diskIdx, err := checkExtent(vol, dims, opts)
	if err != nil {
		return nil, err
	}
	n := &naiveMapper{dims: append([]int(nil), dims...), base: base,
		cellBlocks: opts.CellBlocks, diskIdx: diskIdx}
	n.strides = make([]int64, len(dims))
	stride := int64(opts.CellBlocks)
	for i := range dims {
		n.strides[i] = stride
		stride *= int64(dims[i])
	}
	n.cells = stride / int64(opts.CellBlocks)
	return n, nil
}

func (n *naiveMapper) CellBlocks() int { return n.cellBlocks }

func (n *naiveMapper) CellExtents(cell []int) ([]lvm.Request, error) {
	vlbn, err := n.CellVLBN(cell)
	if err != nil {
		return nil, err
	}
	return []lvm.Request{{VLBN: vlbn, Count: n.cellBlocks}}, nil
}

func (n *naiveMapper) Kind() Kind  { return Naive }
func (n *naiveMapper) Dims() []int { return n.dims }

func (n *naiveMapper) CellVLBN(cell []int) (int64, error) {
	if len(cell) != len(n.dims) {
		return 0, fmt.Errorf("mapping: cell has %d dims, want %d", len(cell), len(n.dims))
	}
	var off int64
	for i, x := range cell {
		if x < 0 || x >= n.dims[i] {
			return 0, fmt.Errorf("mapping: coordinate %d = %d outside [0,%d)", i, x, n.dims[i])
		}
		off += int64(x) * n.strides[i]
	}
	return n.base + off, nil
}

// Dim0Run: a run along the major order is one contiguous request.
func (n *naiveMapper) Dim0Run(cell []int, length int) ([]lvm.Request, error) {
	if length <= 0 {
		return nil, fmt.Errorf("mapping: run length must be positive, got %d", length)
	}
	if cell[0]+length > n.dims[0] {
		return nil, fmt.Errorf("mapping: run [%d,+%d) exceeds Dim0 length %d", cell[0], length, n.dims[0])
	}
	vlbn, err := n.CellVLBN(cell)
	if err != nil {
		return nil, err
	}
	return []lvm.Request{{VLBN: vlbn, Count: length * n.cellBlocks}}, nil
}

// SpanVLBN: a naive dataset is one contiguous extent.
func (n *naiveMapper) SpanVLBN() (int64, int64) {
	return n.base, n.base + n.cells*int64(n.cellBlocks)
}

// SpanOnDisk: the extent lives wholly on one disk.
func (n *naiveMapper) SpanOnDisk(di int) (int64, int64) {
	if di != n.diskIdx {
		return 0, 0
	}
	return n.SpanVLBN()
}

var (
	_ Dim0Runner  = (*naiveMapper)(nil)
	_ CellSized   = (*naiveMapper)(nil)
	_ Spanned     = (*naiveMapper)(nil)
	_ DiskSpanned = (*naiveMapper)(nil)
)
