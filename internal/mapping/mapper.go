// Package mapping provides a uniform interface over the four data
// placements the paper evaluates (§5): Naive (linearized along Dim0),
// Z-order, Hilbert, and MultiMap, plus the Gray-coded curve mentioned
// in related work. All mappers place an N-dimensional grid of
// single-block cells onto a logical volume.
package mapping

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lvm"
	"repro/internal/sfc"
)

// Kind identifies a mapping algorithm.
type Kind int

const (
	Naive Kind = iota
	ZOrder
	Hilbert
	Gray
	MultiMap
)

// Kinds lists the four mappings compared in the paper's evaluation, in
// the order its figures use.
func Kinds() []Kind { return []Kind{Naive, ZOrder, Hilbert, MultiMap} }

func (k Kind) String() string {
	switch k {
	case Naive:
		return "Naive"
	case ZOrder:
		return "Z-order"
	case Hilbert:
		return "Hilbert"
	case Gray:
		return "Gray"
	case MultiMap:
		return "MultiMap"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a CLI-friendly name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "naive":
		return Naive, nil
	case "zorder", "z-order", "z":
		return ZOrder, nil
	case "hilbert":
		return Hilbert, nil
	case "gray":
		return Gray, nil
	case "multimap", "mm":
		return MultiMap, nil
	default:
		return 0, fmt.Errorf("mapping: unknown kind %q", s)
	}
}

// Mapper places grid cells on a volume. Implementations are safe for
// concurrent readers after construction.
type Mapper interface {
	// Kind identifies the algorithm.
	Kind() Kind
	// Dims returns the dataset side lengths.
	Dims() []int
	// CellVLBN returns the volume LBN storing the cell.
	CellVLBN(cell []int) (int64, error)
}

// Dim0Runner is implemented by mappers that can expand a run of cells
// along Dim0 into contiguous requests directly (MultiMap and Naive);
// the storage manager uses it to favour sequential access (§5.2).
type Dim0Runner interface {
	Dim0Run(cell []int, length int) ([]lvm.Request, error)
}

// SemiSequential is implemented by mappers whose non-Dim0 neighbours
// are adjacent blocks, so beam queries should be issued unsorted and
// left to the disk's internal scheduler (§5.2).
type SemiSequential interface {
	semiSequential()
}

// BoxPlanner is implemented by mappers that can expand a whole query
// box [lo,hi) into ascending, coalesced requests directly — cheaper
// than one CellVLBN lookup per cell. The curve mappings use it to
// replace per-cell rank searches with one bulk sort-and-merge.
type BoxPlanner interface {
	BoxRequests(lo, hi []int) ([]lvm.Request, error)
}

// Options configures dataset placement for all mappers.
type Options struct {
	// DiskIdx pins the dataset to one member disk; -1 lets MultiMap
	// decluster basic cubes across disks (linear mappings treat -1 as
	// disk 0: a linearized dataset is a single contiguous extent).
	DiskIdx int
	// BaseVLBN is the first block of the extent used by the linear
	// mappings (ignored by MultiMap, which allocates basic cubes).
	// Default 0 places the extent at the start of the disk segment.
	BaseVLBN int64
	// CellBlocks is the cell size in blocks (default 1) — the paper's
	// "a single cell can occupy multiple LBNs" (§4). CellVLBN returns
	// the first block; CellExtents covers the full cell.
	CellBlocks int
}

// normalize fills defaulted fields.
func (o Options) normalize() (Options, error) {
	if o.CellBlocks == 0 {
		o.CellBlocks = 1
	}
	if o.CellBlocks < 1 {
		return o, fmt.Errorf("mapping: cell size %d must be positive", o.CellBlocks)
	}
	return o, nil
}

// Spanned is implemented by every mapper; SpanVLBN reports the
// half-open VLBN interval the dataset occupies on the volume. The
// interval is conservative (it may include allocation gaps and
// unfilled edge-cube space); layers that carve auxiliary extents —
// like the update layer's overflow pages — use it to prove they do not
// collide with mapped cells.
type Spanned interface {
	SpanVLBN() (start, end int64)
}

// DiskSpanned refines Spanned per member disk: SpanOnDisk reports the
// conservative VLBN interval the dataset occupies within disk di's
// segment (start == end when the dataset does not touch that disk).
// The update layer uses it to validate one overflow extent per disk
// against only the cells actually placed there — under a declustered
// MultiMap dataset the global span straddles every disk and would
// falsely collide with any per-disk tail extent.
type DiskSpanned interface {
	SpanOnDisk(di int) (start, end int64)
}

// CellSized is implemented by every mapper; it reports the cell size in
// blocks and the full extent list of one cell (two extents only when a
// MultiMap cell wraps its circular track).
type CellSized interface {
	CellBlocks() int
	CellExtents(cell []int) ([]lvm.Request, error)
}

// New builds a mapper of the given kind for a dataset.
func New(kind Kind, vol *lvm.Volume, dims []int, opts Options) (Mapper, error) {
	var err error
	if opts, err = opts.normalize(); err != nil {
		return nil, err
	}
	switch kind {
	case Naive:
		return newNaive(vol, dims, opts)
	case ZOrder:
		c, err := sfc.NewZOrder(dims)
		if err != nil {
			return nil, err
		}
		return newCurveMapper(ZOrder, vol, dims, c, opts)
	case Hilbert:
		c, err := sfc.NewHilbert(dims)
		if err != nil {
			return nil, err
		}
		return newCurveMapper(Hilbert, vol, dims, c, opts)
	case Gray:
		c, err := sfc.NewGrayCurve(dims)
		if err != nil {
			return nil, err
		}
		return newCurveMapper(Gray, vol, dims, c, opts)
	case MultiMap:
		return newMultiMapper(vol, dims, opts)
	default:
		return nil, fmt.Errorf("mapping: unknown kind %d", int(kind))
	}
}

// Dim0Align returns the Dim0 slab-alignment quantum for sharding a
// dataset of the given shape under the given placement: MultiMap's
// basic-cube side K0 — so shard slab boundaries coincide with cube
// boundaries and no cube's sequential Dim0 run is split across shards
// — and 1 for the linear mappings, whose locality has no Dim0 grain.
// The volume stands in for any shard member (all shards mirror its
// geometry), and nothing is allocated.
func Dim0Align(kind Kind, vol *lvm.Volume, dims []int, opts Options) (int, error) {
	if kind != MultiMap {
		return 1, nil
	}
	opts, err := opts.normalize()
	if err != nil {
		return 0, err
	}
	spec, err := core.ChooseCube(vol, dims, core.MapOptions{
		DiskIdx: opts.DiskIdx, CellBlocks: opts.CellBlocks,
	})
	if err != nil {
		return 0, err
	}
	return spec.K[0], nil
}

// checkExtent validates that a linear extent of n cells fits on the
// chosen disk segment.
func checkExtent(vol *lvm.Volume, dims []int, opts Options) (base int64, diskIdx int, err error) {
	diskIdx = opts.DiskIdx
	if diskIdx < 0 {
		diskIdx = 0
	}
	if diskIdx >= vol.NumDisks() {
		return 0, 0, fmt.Errorf("mapping: disk index %d out of range", diskIdx)
	}
	n := sfc.NumCells(dims) * int64(opts.CellBlocks)
	base = vol.DiskStart(diskIdx) + opts.BaseVLBN
	if opts.BaseVLBN < 0 || opts.BaseVLBN+n > vol.DiskBlocks(diskIdx) {
		return 0, 0, fmt.Errorf("mapping: extent [%d,+%d) does not fit on disk %d (%d blocks)",
			opts.BaseVLBN, n, diskIdx, vol.DiskBlocks(diskIdx))
	}
	return base, diskIdx, nil
}

// multiMapper adapts core.Mapping to the Mapper interface.
type multiMapper struct {
	m *core.Mapping
}

func newMultiMapper(vol *lvm.Volume, dims []int, opts Options) (Mapper, error) {
	m, err := core.NewMapping(vol, dims, core.MapOptions{
		DiskIdx: opts.DiskIdx, CellBlocks: opts.CellBlocks,
	})
	if err != nil {
		return nil, err
	}
	return &multiMapper{m: m}, nil
}

func (mm *multiMapper) Kind() Kind  { return MultiMap }
func (mm *multiMapper) Dims() []int { return mm.m.Dims() }

func (mm *multiMapper) CellVLBN(cell []int) (int64, error) { return mm.m.CellVLBN(cell) }

func (mm *multiMapper) Dim0Run(cell []int, length int) ([]lvm.Request, error) {
	return mm.m.Dim0Run(cell, length)
}

func (mm *multiMapper) semiSequential() {}

func (mm *multiMapper) CellBlocks() int { return mm.m.CellBlocks() }

func (mm *multiMapper) CellExtents(cell []int) ([]lvm.Request, error) {
	return mm.m.CellExtents(cell)
}

// Core exposes the underlying core.Mapping (for inspection by
// experiments and tests).
func (mm *multiMapper) Core() *core.Mapping { return mm.m }

func (mm *multiMapper) SpanVLBN() (int64, int64) { return mm.m.SpanVLBN() }

func (mm *multiMapper) SpanOnDisk(di int) (int64, int64) { return mm.m.SpanOnDisk(di) }

var (
	_ Dim0Runner     = (*multiMapper)(nil)
	_ SemiSequential = (*multiMapper)(nil)
	_ CellSized      = (*multiMapper)(nil)
	_ Spanned        = (*multiMapper)(nil)
	_ DiskSpanned    = (*multiMapper)(nil)
)
