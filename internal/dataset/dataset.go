// Package dataset provides the grid-dataset abstraction shared by the
// paper's three evaluation workloads (§5.1): grid shapes, per-disk
// chunking, and deterministic synthetic generators.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Grid is an N-dimensional dataset of single-block cells.
type Grid struct {
	dims []int
}

// NewGrid validates the shape and returns the grid.
func NewGrid(dims ...int) (*Grid, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("dataset: empty dimension list")
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("dataset: dimension %d has non-positive length %d", i, d)
		}
	}
	return &Grid{dims: append([]int(nil), dims...)}, nil
}

// Dims returns the side lengths.
func (g *Grid) Dims() []int { return g.dims }

// N returns the dimensionality.
func (g *Grid) N() int { return len(g.dims) }

// Cells returns the total cell count.
func (g *Grid) Cells() int64 {
	n := int64(1)
	for _, d := range g.dims {
		n *= int64(d)
	}
	return n
}

// Contains reports whether a cell lies in the grid.
func (g *Grid) Contains(cell []int) bool {
	if len(cell) != len(g.dims) {
		return false
	}
	for i, x := range cell {
		if x < 0 || x >= g.dims[i] {
			return false
		}
	}
	return true
}

// Chunk is an axis-aligned sub-grid produced by Chunks.
type Chunk struct {
	// Lo is the chunk's origin in the parent grid.
	Lo []int
	// Dims is the chunk's shape.
	Dims []int
}

// Chunks partitions the grid into chunks of at most maxSide cells per
// dimension, in row-major chunk order. This reproduces §5.3's
// partitioning of the 1024^3 dataset into 259^3 per-disk chunks.
func (g *Grid) Chunks(maxSide []int) ([]Chunk, error) {
	if len(maxSide) != len(g.dims) {
		return nil, fmt.Errorf("dataset: maxSide arity %d, want %d", len(maxSide), len(g.dims))
	}
	per := make([]int, len(g.dims))
	for i := range g.dims {
		if maxSide[i] <= 0 {
			return nil, fmt.Errorf("dataset: maxSide[%d] must be positive", i)
		}
		per[i] = (g.dims[i] + maxSide[i] - 1) / maxSide[i]
	}
	var out []Chunk
	idx := make([]int, len(g.dims))
	for {
		c := Chunk{Lo: make([]int, len(g.dims)), Dims: make([]int, len(g.dims))}
		for i := range g.dims {
			c.Lo[i] = idx[i] * maxSide[i]
			c.Dims[i] = maxSide[i]
			if c.Lo[i]+c.Dims[i] > g.dims[i] {
				c.Dims[i] = g.dims[i] - c.Lo[i]
			}
		}
		out = append(out, c)
		i := 0
		for i < len(idx) {
			idx[i]++
			if idx[i] < per[i] {
				break
			}
			idx[i] = 0
			i++
		}
		if i == len(idx) {
			return out, nil
		}
	}
}

// Synthetic3D returns the paper's synthetic uniform dataset (§5.3):
// 1024^3 cells chunked into at most 259^3 per disk. scale in (0,1]
// shrinks both proportionally for fast runs; scale 1 is paper size.
func Synthetic3D(scale float64) (grid *Grid, chunkSide int, err error) {
	if scale <= 0 || scale > 1 {
		return nil, 0, fmt.Errorf("dataset: scale %v outside (0,1]", scale)
	}
	side := int(1024 * scale)
	if side < 8 {
		side = 8
	}
	chunkSide = int(259 * scale)
	if chunkSide < 4 {
		chunkSide = 4
	}
	g, err := NewGrid(side, side, side)
	if err != nil {
		return nil, 0, err
	}
	return g, chunkSide, nil
}

// RandomBeam draws a beam query for the grid: the dimension dim varies
// over its full length, the others are fixed uniformly at random —
// §5.3's "each run selects a random value ... for the two fixed
// dimensions".
func (g *Grid) RandomBeam(rng *rand.Rand, dim int) ([]int, error) {
	if dim < 0 || dim >= len(g.dims) {
		return nil, fmt.Errorf("dataset: beam dimension %d out of range", dim)
	}
	fixed := make([]int, len(g.dims))
	for i := range g.dims {
		if i != dim {
			fixed[i] = rng.Intn(g.dims[i])
		}
	}
	return fixed, nil
}

// RandomRange draws an equal-side-length cube covering selectivity
// fraction sel of the grid, with a uniformly random corner — §5.1's
// range query. It returns the box as [lo, hi).
func (g *Grid) RandomRange(rng *rand.Rand, sel float64) (lo, hi []int, err error) {
	if sel <= 0 || sel > 1 {
		return nil, nil, fmt.Errorf("dataset: selectivity %v outside (0,1]", sel)
	}
	// Equal length per dimension: side_i = dims_i * sel^(1/N).
	frac := math.Pow(sel, 1.0/float64(len(g.dims)))
	lo = make([]int, len(g.dims))
	hi = make([]int, len(g.dims))
	for i, d := range g.dims {
		side := int(float64(d)*frac + 0.5)
		if side < 1 {
			side = 1
		}
		if side > d {
			side = d
		}
		lo[i] = 0
		if d > side {
			lo[i] = rng.Intn(d - side + 1)
		}
		hi[i] = lo[i] + side
	}
	return lo, hi, nil
}
