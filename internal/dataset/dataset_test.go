package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := NewGrid(4, 0); err == nil {
		t.Error("zero dim accepted")
	}
	g, err := NewGrid(4, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.Cells() != 120 {
		t.Errorf("N=%d Cells=%d", g.N(), g.Cells())
	}
	if !g.Contains([]int{3, 4, 5}) || g.Contains([]int{4, 0, 0}) || g.Contains([]int{0, 0}) {
		t.Error("Contains wrong")
	}
}

func TestChunksTileGrid(t *testing.T) {
	g, _ := NewGrid(10, 7)
	chunks, err := g.Chunks([]int{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	// 3 x 3 chunks; total cells must equal the grid.
	if len(chunks) != 9 {
		t.Fatalf("got %d chunks, want 9", len(chunks))
	}
	var cells int64
	seen := map[[2]int]bool{}
	for _, c := range chunks {
		n := int64(1)
		for i := range c.Dims {
			if c.Dims[i] < 1 || c.Dims[i] > []int{4, 3}[i] {
				t.Fatalf("chunk dims out of bounds: %+v", c)
			}
			n *= int64(c.Dims[i])
		}
		cells += n
		key := [2]int{c.Lo[0], c.Lo[1]}
		if seen[key] {
			t.Fatalf("duplicate chunk at %v", key)
		}
		seen[key] = true
	}
	if cells != g.Cells() {
		t.Fatalf("chunks cover %d cells, grid has %d", cells, g.Cells())
	}
}

func TestChunksPaperShape(t *testing.T) {
	// §5.3: 1024^3 partitioned into at most 259^3 chunks -> 4^3 chunks,
	// the corner ones truncated to 247.
	g, _ := NewGrid(1024, 1024, 1024)
	chunks, err := g.Chunks([]int{259, 259, 259})
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 64 {
		t.Fatalf("got %d chunks, want 64", len(chunks))
	}
	first := chunks[0]
	if first.Dims[0] != 259 {
		t.Errorf("interior chunk side %d, want 259", first.Dims[0])
	}
	last := chunks[63]
	if last.Dims[0] != 1024-3*259 {
		t.Errorf("edge chunk side %d, want %d", last.Dims[0], 1024-3*259)
	}
}

func TestChunksValidation(t *testing.T) {
	g, _ := NewGrid(10, 7)
	if _, err := g.Chunks([]int{4}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := g.Chunks([]int{4, 0}); err == nil {
		t.Error("zero chunk side accepted")
	}
}

func TestSynthetic3D(t *testing.T) {
	g, chunk, err := Synthetic3D(1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dims()[0] != 1024 || chunk != 259 {
		t.Errorf("full scale: dims=%v chunk=%d", g.Dims(), chunk)
	}
	g, chunk, err = Synthetic3D(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dims()[0] != 256 || chunk != 64 {
		t.Errorf("quarter scale: dims=%v chunk=%d", g.Dims(), chunk)
	}
	if _, _, err := Synthetic3D(0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, _, err := Synthetic3D(1.5); err == nil {
		t.Error("scale >1 accepted")
	}
}

func TestRandomBeamInRange(t *testing.T) {
	g, _ := NewGrid(20, 30, 40)
	rng := rand.New(rand.NewSource(3))
	for dim := 0; dim < 3; dim++ {
		for i := 0; i < 50; i++ {
			fixed, err := g.RandomBeam(rng, dim)
			if err != nil {
				t.Fatal(err)
			}
			for j, x := range fixed {
				if j == dim {
					continue
				}
				if x < 0 || x >= g.Dims()[j] {
					t.Fatalf("fixed[%d]=%d out of range", j, x)
				}
			}
		}
	}
	if _, err := g.RandomBeam(rng, 3); err == nil {
		t.Error("bad dim accepted")
	}
}

func TestRandomRangeSelectivity(t *testing.T) {
	g, _ := NewGrid(100, 100, 100)
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sel := []float64{0.0001, 0.001, 0.01, 0.05, 0.2, 0.5, 1}[int(uint64(seed)%7)]
		lo, hi, err := g.RandomRange(r, sel)
		if err != nil {
			return false
		}
		vol := int64(1)
		for i := range lo {
			if lo[i] < 0 || hi[i] > 100 || lo[i] >= hi[i] {
				return false
			}
			if hi[i]-lo[i] != hi[0]-lo[0] {
				return false // equal-length cube required
			}
			vol *= int64(hi[i] - lo[i])
		}
		// Achieved selectivity within a factor accounting for rounding.
		got := float64(vol) / float64(g.Cells())
		return got > sel/3 && got < sel*3+0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if _, _, err := g.RandomRange(rng, 0); err == nil {
		t.Error("zero selectivity accepted")
	}
	if _, _, err := g.RandomRange(rng, 1.1); err == nil {
		t.Error("selectivity >1 accepted")
	}
}

func TestRandomRangeFullSelectivity(t *testing.T) {
	g, _ := NewGrid(17, 9)
	rng := rand.New(rand.NewSource(1))
	lo, hi, err := g.RandomRange(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo[0] != 0 || hi[0] != 17 || lo[1] != 0 || hi[1] != 9 {
		t.Errorf("100%% selectivity should cover the grid: [%v,%v)", lo, hi)
	}
}
