package trace

import (
	"math"
	"strings"
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
)

func capture(t *testing.T) *Trace {
	t.Helper()
	v, err := lvm.New(16, disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	comps, _, err := v.ServeBatch([]lvm.Request{
		{VLBN: 100, Count: 4},
		{VLBN: 2000, Count: 1},
		{VLBN: 104, Count: 2},
	}, disk.SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	tr.Add(comps)
	return tr
}

func TestTraceCapture(t *testing.T) {
	tr := capture(t)
	if tr.Len() != 3 {
		t.Fatalf("Len=%d, want 3", tr.Len())
	}
	recs := tr.Records()
	for i, r := range recs {
		if r.Seq != i {
			t.Errorf("record %d has seq %d", i, r.Seq)
		}
		if r.TotalMs() <= 0 {
			t.Errorf("record %d has non-positive total", i)
		}
		if r.TotalMs() != r.CmdMs+r.SeekMs+r.RotMs+r.XferMs {
			t.Errorf("record %d total mismatch", i)
		}
	}
	if recs[0].VLBN != 100 || recs[0].Count != 4 {
		t.Errorf("first record wrong: %+v", recs[0])
	}
}

func TestSummarize(t *testing.T) {
	tr := capture(t)
	s := tr.Summarize()
	if s.Requests != 3 || s.Blocks != 7 {
		t.Fatalf("summary %+v", s)
	}
	if sum := s.CmdMs + s.SeekMs + s.RotMs + s.XferMs; s.TotalMs <= 0 || math.Abs(s.TotalMs-sum) > 1e-9 {
		t.Fatalf("summary totals inconsistent: %+v", s)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Fatalf("percentiles not monotone: %+v", s)
	}
	out := s.String()
	for _, want := range []string{"requests 3", "command", "positioning"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var tr Trace
	s := tr.Summarize()
	if s.Requests != 0 || s.Max != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	if !strings.Contains(s.String(), "requests 0") {
		t.Error("empty summary renders wrong")
	}
}

func TestDump(t *testing.T) {
	tr := capture(t)
	full := tr.Dump(0)
	if strings.Count(full, "\n") != 4 { // header + 3 rows
		t.Errorf("full dump wrong:\n%s", full)
	}
	short := tr.Dump(2)
	if strings.Count(short, "\n") != 3 {
		t.Errorf("short dump wrong:\n%s", short)
	}
	if !strings.Contains(full, "2000") {
		t.Error("dump missing VLBN column data")
	}
}
