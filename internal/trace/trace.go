// Package trace captures per-request service records from the
// simulated volume and summarizes them: totals, component breakdowns,
// and latency percentiles. The mmtrace tool uses it to show *why* a
// mapping behaves the way it does, request by request.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lvm"
)

// Record is one serviced request.
type Record struct {
	Seq      int
	VLBN     int64
	Count    int
	DiskIdx  int
	CmdMs    float64
	SeekMs   float64
	RotMs    float64
	XferMs   float64
	FinishMs float64
}

// TotalMs returns the request's service time.
func (r Record) TotalMs() float64 { return r.CmdMs + r.SeekMs + r.RotMs + r.XferMs }

// Trace is an ordered capture of request completions.
type Trace struct {
	records []Record
}

// Add appends completions in service order.
func (t *Trace) Add(comps []lvm.Completion) {
	for _, c := range comps {
		t.records = append(t.records, Record{
			Seq:      len(t.records),
			VLBN:     c.Req.VLBN,
			Count:    c.Req.Count,
			DiskIdx:  c.DiskIdx,
			CmdMs:    c.Cost.CommandMs,
			SeekMs:   c.Cost.SeekMs,
			RotMs:    c.Cost.RotateMs,
			XferMs:   c.Cost.TransferMs,
			FinishMs: c.FinishMs,
		})
	}
}

// Len returns the number of captured requests.
func (t *Trace) Len() int { return len(t.records) }

// Records returns the capture in service order.
func (t *Trace) Records() []Record { return t.records }

// Summary aggregates a trace.
type Summary struct {
	Requests int
	Blocks   int64
	TotalMs  float64
	CmdMs    float64
	SeekMs   float64
	RotMs    float64
	XferMs   float64
	// Positioning percentiles (cmd+seek+rot) in ms.
	P50, P90, P99, Max float64
}

// Summarize computes the aggregate view.
func (t *Trace) Summarize() Summary {
	var s Summary
	pos := make([]float64, 0, len(t.records))
	for _, r := range t.records {
		s.Requests++
		s.Blocks += int64(r.Count)
		s.CmdMs += r.CmdMs
		s.SeekMs += r.SeekMs
		s.RotMs += r.RotMs
		s.XferMs += r.XferMs
		s.TotalMs += r.TotalMs()
		pos = append(pos, r.CmdMs+r.SeekMs+r.RotMs)
	}
	if len(pos) == 0 {
		return s
	}
	sort.Float64s(pos)
	q := func(p float64) float64 { return pos[int(p*float64(len(pos)-1))] }
	s.P50, s.P90, s.P99, s.Max = q(0.50), q(0.90), q(0.99), pos[len(pos)-1]
	return s
}

// String renders the summary.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d, blocks %d, total %.1f ms\n", s.Requests, s.Blocks, s.TotalMs)
	if s.TotalMs > 0 {
		fmt.Fprintf(&b, "  command %.1f ms (%.0f%%), seek %.1f ms (%.0f%%), rotate %.1f ms (%.0f%%), transfer %.1f ms (%.0f%%)\n",
			s.CmdMs, 100*s.CmdMs/s.TotalMs,
			s.SeekMs, 100*s.SeekMs/s.TotalMs,
			s.RotMs, 100*s.RotMs/s.TotalMs,
			s.XferMs, 100*s.XferMs/s.TotalMs)
	}
	fmt.Fprintf(&b, "  positioning per request: p50 %.2f, p90 %.2f, p99 %.2f, max %.2f ms", s.P50, s.P90, s.P99, s.Max)
	return b.String()
}

// Dump renders the first n records as a table (all if n <= 0).
func (t *Trace) Dump(n int) string {
	if n <= 0 || n > len(t.records) {
		n = len(t.records)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %12s %6s %5s %8s %8s %8s %8s %10s\n",
		"seq", "vlbn", "count", "disk", "cmd", "seek", "rot", "xfer", "finish")
	for _, r := range t.records[:n] {
		fmt.Fprintf(&b, "%6d %12d %6d %5d %8.3f %8.3f %8.3f %8.3f %10.2f\n",
			r.Seq, r.VLBN, r.Count, r.DiskIdx, r.CmdMs, r.SeekMs, r.RotMs, r.XferMs, r.FinishMs)
	}
	return b.String()
}
