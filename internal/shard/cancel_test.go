package shard

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/mapping"
)

// TestScatterGatherCancel cancels a multi-shard box mid-flight and
// checks the cancellation contract: the first failure (here ctx's own)
// cancels every sibling's remaining work promptly, the partial Stats
// merge deterministically in part order, nothing is attributed for
// unissued chunks (session totals still equal the per-shard attributed
// sums), and no goroutine outlives the query.
func TestScatterGatherCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dims := []int{40, 12, 8}
	g, closeAll := testGroup(t, mapping.MultiMap, dims, 4, 0)
	defer closeAll()
	ss := g.Begin(engine.SessionOptions{MaxInflight: 2})

	// Warm run so the cancel run has served work behind it on every
	// shard (making the attribution check meaningful).
	if _, err := ss.Box(context.Background(), []int{0, 0, 0}, []int{40, 12, 8}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := ss.Box(ctx, []int{0, 0, 0}, []int{40, 12, 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st.Cells != 0 || st.TotalMs != 0 {
		t.Fatalf("pre-cancelled scatter still issued I/O: %+v", st)
	}
	if st.Cancelled == 0 {
		t.Fatal("cancelled parts not counted")
	}

	// Cancel mid-flight: a deadline that fires while the scatter runs.
	tctx, tcancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer tcancel()
	for i := 0; i < 50; i++ { // keep issuing until the deadline bites
		if _, err = ss.Box(tctx, []int{0, 0, 0}, []int{40, 12, 8}); err != nil {
			break
		}
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight cancel returned %v", err)
	}

	// Attribution: everything the session folded equals everything the
	// shards attributed — cancelled work charged nowhere.
	var attr engine.Stats
	for _, tot := range g.ServiceTotals() {
		attr.Accumulate(tot.Attributed)
	}
	sum := ss.Totals()
	if sum.Cells != attr.Cells || sum.Requests != attr.Requests || sum.Padding != attr.Padding {
		t.Fatalf("session totals %+v != per-shard attributed %+v", sum, attr)
	}
	if diff := math.Abs(sum.TotalMs - attr.TotalMs); diff > 1e-6*(1+sum.TotalMs) {
		t.Fatalf("attributed time drift %g", diff)
	}
	settleGoroutines(t, baseline)
}

// TestScatterGatherSiblingCancellation: when one part fails, the
// sibling shards' remaining chunks are cancelled promptly rather than
// running their plans to completion.
func TestScatterGatherSiblingCancellation(t *testing.T) {
	dims := []int{40, 12, 8}
	g, closeAll := testGroup(t, mapping.MultiMap, dims, 2, 0)
	defer closeAll()
	// Closing shard 1's service makes any part routed there fail
	// immediately with ErrClosed — the "first error" of the scatter.
	g.Member(1).Svc.Close()
	ss := g.Begin(engine.SessionOptions{MaxInflight: 2})
	st, err := ss.Box(context.Background(), []int{0, 0, 0}, []int{40, 12, 8})
	if !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed (the real failure, not the Canceled it induced)", err)
	}
	// Shard 0's part was cancelled by the sibling failure; whatever it
	// already issued is in its totals, and the session folded the same
	// partial work (sum property under sibling cancellation).
	attr := g.Member(0).Svc.Totals().Attributed
	sum := ss.Totals()
	if sum.Cells != attr.Cells || sum.Requests != attr.Requests {
		t.Fatalf("partial fold mismatch: session %+v, shard0 attributed %+v", sum, attr)
	}
	if st.Cells != sum.Cells {
		t.Fatalf("returned partial stats %d cells, session folded %d", st.Cells, sum.Cells)
	}
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline after cancelled queries (planner goroutines exit with their
// queries, service loops once their queues drain).
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}
