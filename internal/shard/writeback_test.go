package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

// wbGroup builds a multi-shard group whose services run write-back with
// triggers pushed out of the way, so only session-level Flush/Close
// commits.
func wbGroup(t testing.TB, shards int) (*Group, func()) {
	t.Helper()
	vols := make([]*lvm.Volume, shards)
	svcs := make([]*engine.Service, shards)
	for i := range vols {
		v, err := lvm.New(16, disk.MediumTestDisk())
		if err != nil {
			t.Fatal(err)
		}
		vols[i] = v
		svcs[i] = engine.NewService(v, engine.ServiceOptions{
			WriteBack: engine.WriteBackOptions{
				Enabled:         true,
				WatermarkBlocks: 1 << 40,
				FlushInterval:   time.Hour,
			},
		})
	}
	g, err := Build(vols, svcs, mapping.MultiMap, []int{40, 12, 8},
		mapping.Options{DiskIdx: 0}, query.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g, func() {
		for _, svc := range svcs {
			svc.Close()
		}
	}
}

// TestShardSessionFlushOnClose: writes buffered on several shards all
// commit when the scatter-gather session closes — per-shard flush, no
// shard left holding dirty data, attribution-sum intact group-wide.
func TestShardSessionFlushOnClose(t *testing.T) {
	const shards = 3
	g, closeAll := wbGroup(t, shards)
	defer closeAll()
	ss := g.Begin(engine.SessionOptions{})

	for i := 0; i < shards; i++ {
		st, err := ss.Member(i).Write(context.Background(),
			[]lvm.Request{{VLBN: 100, Count: 8}}, disk.SchedSPTF)
		if err != nil {
			t.Fatalf("shard %d write: %v", i, err)
		}
		if st.TotalMs != 0 || st.Writes != 8 {
			t.Fatalf("shard %d write not absorbed: %+v", i, st)
		}
	}
	for i := 0; i < shards; i++ {
		if tot := g.Member(i).Svc.Totals(); tot.DirtyBlocks != 8 {
			t.Fatalf("shard %d dirty=%d before close, want 8", i, tot.DirtyBlocks)
		}
	}
	if err := ss.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	var sumAttr engine.Stats
	for i := 0; i < shards; i++ {
		tot := g.Member(i).Svc.Totals()
		if tot.DirtyBlocks != 0 || tot.FlushBatches != 1 {
			t.Fatalf("shard %d not flushed exactly once on session close: %+v", i, tot)
		}
		sumAttr.Accumulate(tot.Attributed)
	}
	lt := ss.Totals()
	if lt.TotalMs <= 0 || lt.FlushBatches != shards || lt.Writes != 8*shards {
		t.Fatalf("session totals missing flush credits: %+v", lt)
	}
	lt.ElapsedMs = sumAttr.ElapsedMs
	if lt != sumAttr {
		t.Fatalf("attribution sum broken after per-shard flush: %+v vs %+v", lt, sumAttr)
	}
}

// TestShardSessionClosedErrs: every path of a scatter-gather session on
// closed services — member writes, member flushes, the session-level
// Flush/Close, and queries — fails with engine.ErrClosed rather than
// hanging or panicking on the retired loops.
func TestShardSessionClosedErrs(t *testing.T) {
	g, closeAll := wbGroup(t, 2)
	ss := g.Begin(engine.SessionOptions{})
	closeAll()

	for i := 0; i < g.NumShards(); i++ {
		if _, err := ss.Member(i).Write(context.Background(),
			[]lvm.Request{{VLBN: 10, Count: 2}}, disk.SchedSPTF); !errors.Is(err, engine.ErrClosed) {
			t.Fatalf("shard %d Write on closed service: %v, want ErrClosed", i, err)
		}
		if err := ss.Member(i).Flush(context.Background()); !errors.Is(err, engine.ErrClosed) {
			t.Fatalf("shard %d Flush on closed service: %v, want ErrClosed", i, err)
		}
	}
	if err := ss.Flush(context.Background()); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("session Flush on closed services: %v, want ErrClosed", err)
	}
	if err := ss.Close(context.Background()); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("session Close on closed services: %v, want ErrClosed", err)
	}
	if _, err := ss.Box(context.Background(), []int{0, 0, 0}, []int{40, 1, 1}); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("Box on closed services: %v, want ErrClosed", err)
	}
}
