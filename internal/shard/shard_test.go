package shard

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

// TestRouterInvariants pins the partition contract: cuts cover the
// grid, interior cuts are aligned, slabs are non-empty, ShardOf agrees
// with the slabs, and SplitBox partitions any box without losing or
// duplicating cells.
func TestRouterInvariants(t *testing.T) {
	for _, tc := range []struct {
		dims   []int
		shards int
		align  int
	}{
		{[]int{40, 12, 8}, 1, 10},
		{[]int{40, 12, 8}, 2, 10},
		{[]int{40, 12, 8}, 4, 10},
		{[]int{41, 12, 8}, 3, 10}, // ragged: 5 quanta over 3 shards
		{[]int{7, 5}, 7, 1},
	} {
		r, err := NewRouter(tc.dims, tc.shards, tc.align)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if r.NumShards() != tc.shards {
			t.Fatalf("%+v: NumShards=%d", tc, r.NumShards())
		}
		prevHi := 0
		for i := 0; i < tc.shards; i++ {
			lo, hi := r.Slab(i)
			if lo != prevHi || hi <= lo {
				t.Fatalf("%+v: slab %d = [%d,%d) after %d", tc, i, lo, hi, prevHi)
			}
			if i > 0 && lo%tc.align != 0 {
				t.Fatalf("%+v: cut %d at %d not aligned to %d", tc, i, lo, tc.align)
			}
			if ld := r.LocalDims(i); ld[0] != hi-lo {
				t.Fatalf("%+v: LocalDims(%d)=%v for slab [%d,%d)", tc, i, ld, lo, hi)
			}
			prevHi = hi
		}
		if prevHi != tc.dims[0] {
			t.Fatalf("%+v: slabs end at %d, want %d", tc, prevHi, tc.dims[0])
		}
		cell := make([]int, len(tc.dims))
		for x := 0; x < tc.dims[0]; x++ {
			cell[0] = x
			si, err := r.ShardOf(cell)
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := r.Slab(si)
			if x < lo || x >= hi {
				t.Fatalf("%+v: ShardOf(%d)=%d but slab is [%d,%d)", tc, x, si, lo, hi)
			}
			if lc := r.Localize(si, cell); lc[0] != x-lo {
				t.Fatalf("%+v: Localize(%d,%d)=%v", tc, si, x, lc)
			}
		}
		// SplitBox partitions every Dim0 interval exactly.
		lo := make([]int, len(tc.dims))
		hi := append([]int(nil), tc.dims...)
		for a := 0; a < tc.dims[0]; a++ {
			for b := a + 1; b <= tc.dims[0]; b++ {
				lo[0], hi[0] = a, b
				total := 0
				prevShard := -1
				for _, p := range r.SplitBox(lo, hi) {
					if p.Shard <= prevShard {
						t.Fatalf("parts out of shard order")
					}
					prevShard = p.Shard
					slo, _ := r.Slab(p.Shard)
					if p.Lo[0]+slo < a || p.Hi[0]+slo > b {
						t.Fatalf("part %+v outside box [%d,%d)", p, a, b)
					}
					total += p.Hi[0] - p.Lo[0]
				}
				if total != b-a {
					t.Fatalf("box [%d,%d) split into %d Dim0 cells", a, b, total)
				}
			}
		}
	}
}

func TestRouterRejects(t *testing.T) {
	if _, err := NewRouter([]int{10, 4}, 3, 5); err == nil {
		t.Error("3 shards over 2 quanta accepted")
	}
	if _, err := NewRouter([]int{10, 4}, 0, 1); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewRouter([]int{10, 4}, 2, 0); err == nil {
		t.Error("zero alignment accepted")
	}
	if _, err := NewRouter([]int{0, 4}, 1, 1); err == nil {
		t.Error("empty dimension accepted")
	}
	if _, err := NewRouter(nil, 1, 1); err == nil {
		t.Error("no dimensions accepted")
	}
	r, err := NewRouter([]int{10, 4}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ShardOf([]int{10, 0}); err == nil {
		t.Error("out-of-range cell routed")
	}
	if _, err := r.ShardOf([]int{0}); err == nil {
		t.Error("arity mismatch routed")
	}
}

func testGroup(t testing.TB, kind mapping.Kind, dims []int, shards int, cacheBlocks int64) (*Group, func()) {
	t.Helper()
	vols := make([]*lvm.Volume, shards)
	svcs := make([]*engine.Service, shards)
	for i := range vols {
		v, err := lvm.New(16, disk.MediumTestDisk())
		if err != nil {
			t.Fatal(err)
		}
		vols[i] = v
		svcs[i] = engine.NewService(v, engine.ServiceOptions{CacheBlocks: cacheBlocks})
	}
	g, err := Build(vols, svcs, kind, dims, mapping.Options{DiskIdx: 0}, query.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g, func() {
		for _, svc := range svcs {
			svc.Close()
		}
	}
}

// TestSingleShardMatchesDirectExecutor: a 1-shard scatter-gather
// session must reproduce the synchronous executor's Stats bit for bit,
// for every mapping — the shard layer's equivalence guarantee
// (cmd/fig6probe's "shard" mode diffs the same property at Fig-6
// scale).
func TestSingleShardMatchesDirectExecutor(t *testing.T) {
	dims := []int{40, 12, 8}
	for _, kind := range mapping.Kinds() {
		g, closeAll := testGroup(t, kind, dims, 1, 0)
		vd, err := lvm.New(16, disk.MediumTestDisk())
		if err != nil {
			t.Fatal(err)
		}
		m, err := mapping.New(kind, vd, dims, mapping.Options{DiskIdx: 0})
		if err != nil {
			t.Fatal(err)
		}
		direct := query.NewExecutor(vd, m)

		ss := g.Begin(engine.SessionOptions{})
		gotB, err := ss.Beam(context.Background(), 2, []int{7, 3, 0})
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := direct.Beam(2, []int{7, 3, 0})
		if err != nil {
			t.Fatal(err)
		}
		if gotB != wantB {
			t.Errorf("%v: shard beam %+v != direct %+v", kind, gotB, wantB)
		}
		gotR, err := ss.Box(context.Background(), []int{1, 1, 1}, []int{20, 9, 5})
		if err != nil {
			t.Fatal(err)
		}
		wantR, err := direct.Range([]int{1, 1, 1}, []int{20, 9, 5})
		if err != nil {
			t.Fatal(err)
		}
		if gotR != wantR {
			t.Errorf("%v: shard range %+v != direct %+v", kind, gotR, wantR)
		}
		closeAll()
	}
}

// TestScatterGatherCells: on a multi-shard group every query must still
// credit exactly its cells, whether it lands on one shard or spans
// several, and the slab math must route beams to the right member.
func TestScatterGatherCells(t *testing.T) {
	dims := []int{40, 12, 8}
	for _, shards := range []int{2, 4} {
		g, closeAll := testGroup(t, mapping.MultiMap, dims, shards, 0)
		ss := g.Begin(engine.SessionOptions{})
		// Dim0 beam: spans every shard.
		st, err := ss.Beam(context.Background(), 0, []int{0, 5, 2})
		if err != nil {
			t.Fatal(err)
		}
		if st.Cells != int64(dims[0]) {
			t.Fatalf("%d shards: Dim0 beam fetched %d cells, want %d", shards, st.Cells, dims[0])
		}
		// Dim1 beam: lands on exactly one shard.
		st, err = ss.Beam(context.Background(), 1, []int{33, 0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if st.Cells != int64(dims[1]) {
			t.Fatalf("%d shards: Dim1 beam fetched %d cells, want %d", shards, st.Cells, dims[1])
		}
		si, err := g.Router().ShardOf([]int{33, 0, 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < shards; i++ {
			tot := g.Member(i).Svc.Totals()
			if (tot.Batches > 1) != (i == si) { // every shard served 1 batch for the Dim0 beam
				t.Fatalf("%d shards: shard %d batches=%d, Dim1 beam owner is %d",
					shards, i, tot.Batches, si)
			}
		}
		// A box spanning all shards.
		st, err = ss.Box(context.Background(), []int{0, 0, 0}, []int{40, 3, 2})
		if err != nil {
			t.Fatal(err)
		}
		if st.Cells != 40*3*2 {
			t.Fatalf("%d shards: box fetched %d cells, want %d", shards, st.Cells, 40*3*2)
		}
		// Bad boxes are rejected, not clamped.
		if _, err := ss.Box(context.Background(), []int{0, 0, 0}, []int{41, 3, 2}); err == nil {
			t.Fatal("out-of-range Dim0 box accepted")
		}
		if _, err := ss.Box(context.Background(), []int{0, 0}, []int{10, 3}); err == nil {
			t.Fatal("arity mismatch accepted")
		}
		closeAll()
	}
}

// TestScatterGatherAttributionSum is the acceptance property under
// -race: concurrent scatter-gather sessions running mixed reads and
// writes across shards; the merged per-session Stats must sum to the
// sum of the per-shard ServiceTotals.Attributed.
func TestScatterGatherAttributionSum(t *testing.T) {
	dims := []int{40, 12, 8}
	g, closeAll := testGroup(t, mapping.MultiMap, dims, 3, 4096)
	defer closeAll()

	const clients = 6
	sessions := make([]*Session, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		sessions[i] = g.Begin(engine.SessionOptions{MaxInflight: 1 + i%2})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(900 + i)))
			for q := 0; q < 10; q++ {
				switch rng.Intn(4) {
				case 0: // write to a random cell's shard
					cell := []int{rng.Intn(dims[0]), rng.Intn(dims[1]), rng.Intn(dims[2])}
					si, err := g.Router().ShardOf(cell)
					if err != nil {
						errs[i] = err
						return
					}
					_, vlbn, err := g.CellVLBN(cell)
					if err != nil {
						errs[i] = err
						return
					}
					if _, err := sessions[i].Member(si).Write(context.Background(),
						[]lvm.Request{{VLBN: vlbn, Count: 1}}, disk.SchedSPTF); err != nil {
						errs[i] = err
						return
					}
				case 1:
					dim := rng.Intn(3)
					fixed := []int{rng.Intn(dims[0]), rng.Intn(dims[1]), rng.Intn(dims[2])}
					st, err := sessions[i].Beam(context.Background(), dim, fixed)
					if err != nil {
						errs[i] = err
						return
					}
					if st.Cells != int64(dims[dim]) {
						errs[i] = fmt.Errorf("beam fetched %d cells, want %d", st.Cells, dims[dim])
						return
					}
				default:
					lo := []int{rng.Intn(30), rng.Intn(6), rng.Intn(4)}
					hi := []int{lo[0] + 1 + rng.Intn(10), lo[1] + 1 + rng.Intn(4), lo[2] + 1 + rng.Intn(3)}
					want := int64(hi[0]-lo[0]) * int64(hi[1]-lo[1]) * int64(hi[2]-lo[2])
					st, err := sessions[i].Box(context.Background(), lo, hi)
					if err != nil {
						errs[i] = err
						return
					}
					if st.Cells != want {
						errs[i] = fmt.Errorf("box fetched %d cells, want %d", st.Cells, want)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	var sum engine.Stats
	for _, s := range sessions {
		sum.Accumulate(s.Totals())
	}
	var attr engine.Stats
	served := 0
	for _, tot := range g.ServiceTotals() {
		attr.Accumulate(tot.Attributed)
		if tot.Batches > 0 {
			served++
		}
	}
	if served != g.NumShards() {
		t.Fatalf("only %d of %d shards served work", served, g.NumShards())
	}
	if sum.Cells != attr.Cells || sum.Requests != attr.Requests || sum.Padding != attr.Padding ||
		sum.CacheHits != attr.CacheHits || sum.CacheMisses != attr.CacheMisses ||
		sum.Writes != attr.Writes || sum.InvalidatedBlocks != attr.InvalidatedBlocks {
		t.Fatalf("session sums %+v != per-shard attributed sums %+v", sum, attr)
	}
	if diff := math.Abs(sum.TotalMs - attr.TotalMs); diff > 1e-6*(1+sum.TotalMs) {
		t.Fatalf("attributed time drift %g: %v vs %v", diff, sum.TotalMs, attr.TotalMs)
	}
	if sum.TotalMs <= 0 || sum.Writes == 0 {
		t.Fatalf("workload served nothing: %+v", sum)
	}
}

// BenchmarkScatterGather measures the same client workload at 1, 2,
// and 4 shards: each op is one Dim0-spanning range query per client,
// so higher shard counts split the work across more service loops
// (true CPU parallelism on multi-core hosts).
func BenchmarkScatterGather(b *testing.B) {
	dims := []int{64, 24, 16}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			g, closeAll := testGroup(b, mapping.MultiMap, dims, shards, 0)
			defer closeAll()
			const clients = 4
			sessions := make([]*Session, clients)
			for i := range sessions {
				sessions[i] = g.Begin(engine.SessionOptions{})
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				var wg sync.WaitGroup
				for i := 0; i < clients; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						lo := []int{0, (i * 3) % dims[1], (i * 2) % dims[2]}
						hi := []int{dims[0], lo[1] + 3, lo[2] + 2}
						if _, err := sessions[i].Box(context.Background(), lo, hi); err != nil {
							b.Error(err)
						}
					}(i)
				}
				wg.Wait()
			}
		})
	}
}
