package shard

import (
	"context"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/mapping"
)

// TestGroupClassTotalsMerge: the group-wide per-class view must be the
// deterministic by-name merge of the member services' ClassTotals,
// sorted by class name — the same fold the implementation documents —
// and every class that ran traffic shows up with ops on it.
func TestGroupClassTotalsMerge(t *testing.T) {
	dims := []int{40, 12, 8}
	g, closeAll := testGroup(t, mapping.MultiMap, dims, 3, 4096)
	defer closeAll()
	if err := g.SetFairShare(256, []engine.QoSClass{
		{Name: "interactive", Weight: 1},
		{Name: "bulk", Weight: 4},
	}); err != nil {
		t.Fatal(err)
	}

	// One session per class plus an unclassed one, every query spanning
	// all shards (Dim0 beams and full-Dim0 boxes) so each member service
	// accrues traffic for each class.
	classes := []string{"interactive", "bulk", ""}
	errs := make([]error, len(classes))
	var wg sync.WaitGroup
	for i, class := range classes {
		ss := g.Begin(engine.SessionOptions{Class: class, MaxInflight: 2})
		wg.Add(1)
		go func(i int, ss *Session) {
			defer wg.Done()
			for q := 0; q < 4; q++ {
				if _, err := ss.Beam(context.Background(), 0, []int{0, q, q}); err != nil {
					errs[i] = err
					return
				}
				if _, err := ss.Box(context.Background(), []int{0, q, 0}, []int{40, q + 2, 3}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, ss)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("class %q: %v", classes[i], err)
		}
	}

	merged := g.ClassTotals()
	if len(merged) != len(classes) {
		t.Fatalf("merged %d classes, want %d: %+v", len(merged), len(classes), merged)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Class >= merged[i].Class {
			t.Fatalf("classes not sorted by name: %q before %q", merged[i-1].Class, merged[i].Class)
		}
	}

	// Reproduce the documented fold by hand — by-name sums across
	// members in shard order — and demand an exact match: the merge is
	// deterministic, so even the float accumulation must agree.
	want := map[string]engine.ClassTotals{}
	for i := 0; i < g.NumShards(); i++ {
		for _, ct := range g.Member(i).Svc.ClassTotals() {
			agg := want[ct.Class]
			agg.Class = ct.Class
			agg.Ops += ct.Ops
			agg.UrgentOps += ct.UrgentOps
			agg.Deferred += ct.Deferred
			agg.Attributed.Accumulate(ct.Attributed)
			want[ct.Class] = agg
		}
	}
	for _, ct := range merged {
		if ct.Ops == 0 {
			t.Fatalf("class %q served no ops: %+v", ct.Class, ct)
		}
		if w, ok := want[ct.Class]; !ok || ct != w {
			t.Fatalf("class %q merged %+v, member fold %+v", ct.Class, ct, want[ct.Class])
		}
	}

	// Group-wide attribution-sum per class: the classes' attributed
	// stats must add up to the members' total attributed work.
	var byClass, byShard engine.Stats
	for _, ct := range merged {
		byClass.Accumulate(ct.Attributed)
	}
	for _, tot := range g.ServiceTotals() {
		byShard.Accumulate(tot.Attributed)
	}
	if byClass.Cells != byShard.Cells || byClass.Requests != byShard.Requests ||
		byClass.CacheHits != byShard.CacheHits || byClass.CacheMisses != byShard.CacheMisses {
		t.Fatalf("per-class sums %+v != per-shard sums %+v", byClass, byShard)
	}
}
