package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

// Member is one shard's full execution stack: an independent volume,
// the engine.Service loop that owns its head state and extent cache,
// the shard-local mapping of the slab's grid, and the storage-manager
// planner over it.
type Member struct {
	Vol  *lvm.Volume
	Svc  *engine.Service
	Map  mapping.Mapper
	Exec *query.Executor
}

// Group is a sharded dataset: a Router plus one Member per slab. Build
// it once, then open scatter-gather Sessions for each client.
type Group struct {
	r       *Router
	members []Member
}

// Build maps a dataset of the given shape across one volume per shard
// (each with its running service), choosing the Dim0 slab alignment
// from the placement (MultiMap's basic-cube side K0; 1 for the linear
// mappings) and mapping each shard's slab grid onto its own volume with
// the same placement options and executor options throughout. With one
// volume the group degenerates to exactly the single-volume stack —
// same mapping, same planner, same service — which is what makes
// single-shard scatter-gather execution bit-identical to the unsharded
// path.
func Build(vols []*lvm.Volume, svcs []*engine.Service, kind mapping.Kind, dims []int,
	mo mapping.Options, eo query.ExecOptions) (*Group, error) {
	if len(vols) == 0 {
		return nil, fmt.Errorf("shard: at least one volume required")
	}
	if len(vols) != len(svcs) {
		return nil, fmt.Errorf("shard: %d volumes but %d services", len(vols), len(svcs))
	}
	align, err := mapping.Dim0Align(kind, vols[0], dims, mo)
	if err != nil {
		return nil, err
	}
	// Slabs align to the global basic-cube grid when it has at least one
	// cube row per shard. A short Dim0 (or a cube side chosen near the
	// whole dimension) can leave fewer cube rows than shards; then the
	// alignment relaxes by halving until every shard owns a slab — each
	// shard maps its slab with its own basic cube anyway, so the
	// per-shard sequential and semi-sequential locality is unaffected,
	// only the slab cuts stop coinciding with the unsharded layout's
	// cube boundaries.
	for align > 1 && (dims[0]+align-1)/align < len(vols) {
		align = (align + 1) / 2
	}
	r, err := NewRouter(dims, len(vols), align)
	if err != nil {
		return nil, err
	}
	g := &Group{r: r, members: make([]Member, len(vols))}
	for i := range vols {
		m, err := mapping.New(kind, vols[i], r.LocalDims(i), mo)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		g.members[i] = Member{
			Vol:  vols[i],
			Svc:  svcs[i],
			Map:  m,
			Exec: query.NewExecutorOptions(vols[i], m, eo),
		}
	}
	return g, nil
}

// Rebind builds a new Group over fresh volumes and services while
// sharing the source group's router and per-shard mappings — the clone
// hook: a cloned dataset's volumes carry bit-for-bit the parent's
// blocks at snapshot time, so the parent's cell placement is exactly
// the clone's. Re-deriving the mappings from the clone volumes could
// drift (mapping.New chooses the basic-cube side from volume geometry,
// and a pool clone's segment layout equals the parent's only at
// snapshot), so the Mapper objects are shared outright — they are
// immutable after construction. Only the executors are rebuilt, bound
// to the new volumes.
func Rebind(g *Group, vols []*lvm.Volume, svcs []*engine.Service, eo query.ExecOptions) (*Group, error) {
	if len(vols) != len(g.members) {
		return nil, fmt.Errorf("shard: rebind needs %d volumes, got %d", len(g.members), len(vols))
	}
	if len(vols) != len(svcs) {
		return nil, fmt.Errorf("shard: %d volumes but %d services", len(vols), len(svcs))
	}
	ng := &Group{r: g.r, members: make([]Member, len(vols))}
	for i := range vols {
		m := g.members[i].Map
		ng.members[i] = Member{
			Vol:  vols[i],
			Svc:  svcs[i],
			Map:  m,
			Exec: query.NewExecutorOptions(vols[i], m, eo),
		}
	}
	return ng, nil
}

// Router returns the group's partition.
func (g *Group) Router() *Router { return g.r }

// NumShards returns the number of members.
func (g *Group) NumShards() int { return len(g.members) }

// Member returns shard i's execution stack.
func (g *Group) Member(i int) *Member { return &g.members[i] }

// CellVLBN routes a global cell to its owning shard and returns that
// shard's index with the shard-local volume LBN storing the cell.
func (g *Group) CellVLBN(cell []int) (shard int, vlbn int64, err error) {
	si, err := g.r.ShardOf(cell)
	if err != nil {
		return 0, 0, err
	}
	vlbn, err = g.members[si].Map.CellVLBN(g.r.Localize(si, cell))
	return si, vlbn, err
}

// ServiceTotals snapshots every shard service's bookkeeping, in shard
// order. Summing each session's Totals over all of a group's sessions
// reproduces the sum of these entries' Attributed fields — the
// attribution-sum property, now group-wide.
func (g *Group) ServiceTotals() []engine.ServiceTotals {
	out := make([]engine.ServiceTotals, len(g.members))
	for i := range g.members {
		out[i] = g.members[i].Svc.Totals()
	}
	return out
}

// QueueDepths snapshots every member service's admission backlog (ops
// queued awaiting admission), in shard order — the daemon metrics
// feed's queue-depth gauge.
func (g *Group) QueueDepths() []int {
	out := make([]int, len(g.members))
	for i := range g.members {
		out[i] = g.members[i].Svc.QueueDepth()
	}
	return out
}

// ClassTotals merges every shard service's per-QoS-class bookkeeping
// deterministically: classes are summed by name across shards (in
// shard order) and returned sorted by class name, exactly the order
// engine.Service.ClassTotals uses — so the group-wide view is
// reproducible whatever order the shards served their batches in.
// Each class's Attributed sums the shards' per-class shares; the
// attribution-sum property therefore holds group-wide per class, with
// the same ElapsedMs caveat as the engine-level ClassTotals.
func (g *Group) ClassTotals() []engine.ClassTotals {
	byName := make(map[string]*engine.ClassTotals)
	var names []string
	for i := range g.members {
		for _, ct := range g.members[i].Svc.ClassTotals() {
			agg := byName[ct.Class]
			if agg == nil {
				agg = &engine.ClassTotals{Class: ct.Class}
				byName[ct.Class] = agg
				names = append(names, ct.Class)
			}
			agg.Ops += ct.Ops
			agg.UrgentOps += ct.UrgentOps
			agg.Deferred += ct.Deferred
			agg.Attributed.Accumulate(ct.Attributed)
		}
	}
	sort.Strings(names)
	out := make([]engine.ClassTotals, len(names))
	for i, name := range names {
		out[i] = *byName[name]
	}
	return out
}

// SetFairShare reconfigures weighted-fair admission on every member
// service (see engine.Service.SetFairShare), in shard order; the first
// error is returned after all shards were attempted.
func (g *Group) SetFairShare(quantum int64, classes []engine.QoSClass) error {
	var first error
	for i := range g.members {
		if err := g.members[i].Svc.SetFairShare(quantum, classes); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Begin opens a scatter-gather session: one engine session per shard
// service, driven concurrently by each query that spans shards.
func (g *Group) Begin(opts engine.SessionOptions) *Session {
	s := &Session{g: g, es: make([]*engine.Session, len(g.members))}
	for i := range g.members {
		s.es[i] = g.members[i].Svc.NewSession(opts)
	}
	return s
}

// Session is one client's scatter-gather handle on a sharded dataset.
// Each query box is split by the router into per-shard sub-boxes; every
// sub-box is planned by its shard's own streaming planner and submitted
// through that shard's engine session, all shards in flight at once
// (shards scale across CPUs, not just across a batch); the per-shard
// Stats are then merged by summation in shard order.
//
// Merge contract: every merged field — costs, cells, padding, cache
// hits and misses, writes, invalidations, and ElapsedMs — is the sum of
// the per-shard parts, so session totals keep satisfying the
// attribution-sum property against the per-shard ServiceTotals.
// Summed ElapsedMs is therefore per-shard simulated wall-clock time
// stacked up, not the host wall-clock of the scatter (which is roughly
// the maximum over the shards).
//
// A Session is safe for concurrent use; queries from many goroutines
// interleave exactly as they would on the member engine sessions.
type Session struct {
	g  *Group
	es []*engine.Session
}

// Member returns the engine-level session bound to shard i, for
// operations that target one shard directly: the update layer routes a
// cell mutation's write ops and chain fetches through the owning
// shard's member session.
func (s *Session) Member(i int) engine.QuerySession { return s.es[i] }

// Flush commits every member service's write-back dirty buffer, in
// shard order. A shard whose flush fails does not strand the others:
// the remaining shards are still flushed, and the first error is
// returned. A no-op on services without write-back. Returns
// engine.ErrClosed (test with errors.Is) for shards whose service has
// been closed.
func (s *Session) Flush(ctx context.Context) error {
	var first error
	for _, es := range s.es {
		if err := es.Flush(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close retires the scatter-gather session: every shard's write-back
// buffer is flushed so no write acknowledged through this session is
// left uncommitted. The member services themselves stay open — they
// are owned by the Group and shared with other sessions.
func (s *Session) Close(ctx context.Context) error {
	return s.Flush(ctx)
}

// Totals returns the session's accumulated statistics across all its
// queries on every shard, summed in shard order.
func (s *Session) Totals() engine.Stats {
	var sum engine.Stats
	for _, es := range s.es {
		sum.Accumulate(es.Totals())
	}
	return sum
}

// Beam runs the paper's beam query — all cells along dim, the other
// coordinates fixed — across the shards it touches. A beam along Dim0
// spans every shard; beams along other dimensions land on exactly one.
func (s *Session) Beam(ctx context.Context, dim int, fixed []int) (engine.Stats, error) {
	lo, hi, err := query.BeamBox(s.g.r.dims, dim, fixed)
	if err != nil {
		return engine.Stats{}, err
	}
	return s.Box(ctx, lo, hi)
}

// Box fetches the global box [lo, hi) (hi exclusive per dimension)
// scatter-gather: sub-boxes run on their shards concurrently and the
// per-shard Stats merge by summation. A single-shard box runs inline on
// the owning member — the path that stays bit-identical to the
// unsharded executor.
//
// Cancellation propagates across the scatter: the per-shard plans run
// under a context derived from ctx, and the first part to fail —
// including a part whose shard dropped its chunks on ctx's own
// cancellation — cancels every sibling shard's remaining work
// (errgroup-style), so no shard keeps issuing simulated I/O for a
// query that cannot complete. Partial Stats merge deterministically:
// every part's partial result accumulates in part order (the router's
// slab order), whatever order the shards actually stopped in, and the
// returned error prefers the first real failure over the sibling
// cancellations it induced.
func (s *Session) Box(ctx context.Context, lo, hi []int) (engine.Stats, error) {
	return s.box(ctx, lo, hi, nil)
}

// BoxStream is Box with chunk-by-chunk result streaming: as each
// per-shard plan chunk retires, onChunk receives the owning shard's
// index and that chunk's own Stats (cell units, like the final
// aggregate). On a scatter across several shards the callbacks from
// concurrent parts are serialized — onChunk is never invoked
// concurrently — but their interleaving across shards follows the
// actual service order, so a wire client watches the scatter progress
// live. The returned aggregate is identical to Box's.
func (s *Session) BoxStream(ctx context.Context, lo, hi []int, onChunk func(shard int, st engine.Stats)) (engine.Stats, error) {
	return s.box(ctx, lo, hi, onChunk)
}

func (s *Session) box(ctx context.Context, lo, hi []int, onChunk func(int, engine.Stats)) (engine.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The same validation the single-volume storage manager applies —
	// the router would otherwise silently clamp an out-of-range Dim0
	// bound. Each part's executor re-validates its sub-box; that double
	// check is accepted, costing O(#dims) next to the query itself.
	if _, err := query.CheckBox(s.g.r.dims, lo, hi); err != nil {
		return engine.Stats{}, err
	}
	parts := s.g.r.SplitBox(lo, hi)
	// hookFor builds the per-shard chunk callback: nil stays nil (the
	// non-streaming path, byte-for-byte RangeOn), and on a multi-part
	// scatter the callbacks from concurrent shard goroutines serialize
	// under one mutex so the consumer never sees two chunks at once.
	var cbMu sync.Mutex
	hookFor := func(shard int, serialize bool) func(engine.Stats) {
		if onChunk == nil {
			return nil
		}
		return func(st engine.Stats) {
			if serialize {
				cbMu.Lock()
				defer cbMu.Unlock()
			}
			onChunk(shard, st)
		}
	}
	if len(parts) == 1 {
		p := parts[0]
		return s.g.members[p.Shard].Exec.RangeStreamOn(ctx, s.es[p.Shard], p.Lo, p.Hi, hookFor(p.Shard, false))
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stats := make([]engine.Stats, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for k := range parts {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			p := parts[k]
			stats[k], errs[k] = s.g.members[p.Shard].Exec.RangeStreamOn(sctx, s.es[p.Shard], p.Lo, p.Hi, hookFor(p.Shard, true))
			if errs[k] != nil {
				cancel() // first failure stops the sibling shards promptly
			}
		}(k)
	}
	wg.Wait()
	// Merge in part order — deterministic whatever the shard scheduling
	// was — and pick the reported error the same way: the first part
	// with any error, upgraded to the first part with a non-context
	// error when one exists (so a real failure is not masked by the
	// Canceled it propagated to its siblings). When the caller's own
	// ctx is done, that error wins: it is the query's true cause.
	var merged engine.Stats
	var first error
	for k := range parts {
		merged.Accumulate(stats[k])
		if errs[k] != nil && first == nil {
			first = errs[k]
		}
	}
	for k := range parts {
		if e := errs[k]; e != nil && !errors.Is(e, context.Canceled) && !errors.Is(e, context.DeadlineExceeded) {
			first = e
			break
		}
	}
	if first != nil {
		if err := ctx.Err(); err != nil {
			first = err
		}
		return merged, first
	}
	return merged, nil
}
