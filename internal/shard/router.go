// Package shard spreads one logical dataset across several independent
// volumes, each with its own engine.Service loop goroutine, head state,
// and extent cache — the scale-out axis the per-volume query service
// was built to enable. A deterministic Router partitions the grid along
// Dim0 into slabs aligned to MultiMap's basic-cube boundaries, so every
// shard keeps the paper's sequential (Dim0) and semi-sequential
// (adjacency-chain) locality intact; a scatter-gather Session splits
// each query box by owning shard, runs the per-shard sub-plans through
// all shard services concurrently, and merges the per-shard Stats so
// the attribution-sum property still holds group-wide.
package shard

import (
	"fmt"
)

// Router is the deterministic Dim0 partition of a dataset grid over N
// shards: shard i owns the global Dim0 slab [Cuts[i], Cuts[i+1]), with
// every interior cut a multiple of the alignment quantum (MultiMap's
// basic-cube side K0), so no cube's sequential run straddles shards.
// Routing is pure address arithmetic — no shared state, safe for any
// number of goroutines.
type Router struct {
	dims  []int
	cuts  []int // len NumShards+1; cuts[0]=0, cuts[n]=dims[0]
	align int
}

// NewRouter partitions a grid of the given side lengths into shards
// slabs along Dim0, each cut aligned to a multiple of align (the
// basic-cube Dim0 side for MultiMap; 1 for mappings without a Dim0
// grain). The aligned slab quanta are distributed as evenly as
// possible; the partition fails when the grid has fewer quanta than
// shards, since an empty shard could never own a cell.
func NewRouter(dims []int, shards, align int) (*Router, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("shard: empty dimension list")
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("shard: dimension %d has non-positive length %d", i, d)
		}
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be positive", shards)
	}
	if align < 1 {
		return nil, fmt.Errorf("shard: alignment %d must be positive", align)
	}
	quanta := (dims[0] + align - 1) / align
	if shards > quanta {
		return nil, fmt.Errorf(
			"shard: %d shards over Dim0 length %d at alignment %d leaves an empty shard (%d slab quanta)",
			shards, dims[0], align, quanta)
	}
	r := &Router{dims: append([]int(nil), dims...), align: align}
	r.cuts = make([]int, shards+1)
	for i := 1; i < shards; i++ {
		r.cuts[i] = align * (i * quanta / shards)
	}
	r.cuts[shards] = dims[0]
	return r, nil
}

// NumShards returns the number of slabs.
func (r *Router) NumShards() int { return len(r.cuts) - 1 }

// Dims returns the global dataset side lengths.
func (r *Router) Dims() []int { return r.dims }

// Align returns the Dim0 alignment quantum the cuts honour.
func (r *Router) Align() int { return r.align }

// Slab returns shard i's global Dim0 interval [lo, hi).
func (r *Router) Slab(i int) (lo, hi int) { return r.cuts[i], r.cuts[i+1] }

// LocalDims returns shard i's local grid shape: the global shape with
// Dim0 shrunk to the slab length.
func (r *Router) LocalDims(i int) []int {
	d := append([]int(nil), r.dims...)
	d[0] = r.cuts[i+1] - r.cuts[i]
	return d
}

// ShardOf returns the shard owning a global cell coordinate.
func (r *Router) ShardOf(cell []int) (int, error) {
	if len(cell) != len(r.dims) {
		return 0, fmt.Errorf("shard: cell has %d dims, want %d", len(cell), len(r.dims))
	}
	x := cell[0]
	if x < 0 || x >= r.dims[0] {
		return 0, fmt.Errorf("shard: Dim0 coordinate %d outside [0,%d)", x, r.dims[0])
	}
	// The cuts are few (one per shard): a linear scan beats binary
	// search at realistic shard counts.
	for i := 1; i < len(r.cuts); i++ {
		if x < r.cuts[i] {
			return i - 1, nil
		}
	}
	return 0, fmt.Errorf("shard: unroutable coordinate %d", x) // unreachable
}

// Localize converts a global cell to shard i's local coordinates.
func (r *Router) Localize(i int, cell []int) []int {
	local := append([]int(nil), cell...)
	local[0] -= r.cuts[i]
	return local
}

// Part is one shard's share of a query box, in that shard's local
// coordinates.
type Part struct {
	Shard  int
	Lo, Hi []int
}

// SplitBox partitions a global box [lo, hi) along the Dim0 cuts into
// per-shard sub-boxes in local coordinates, in shard order. Shards the
// box does not touch contribute no part; the parts' cell counts sum to
// the box's. Bounds are not validated here — each shard's planner
// rejects a bad sub-box exactly as the single-volume planner would.
func (r *Router) SplitBox(lo, hi []int) []Part {
	var parts []Part
	for i := 0; i < r.NumShards(); i++ {
		s, e := r.cuts[i], r.cuts[i+1]
		plo, phi := lo[0], hi[0]
		if plo < s {
			plo = s
		}
		if phi > e {
			phi = e
		}
		if plo >= phi {
			continue
		}
		l := append([]int(nil), lo...)
		h := append([]int(nil), hi...)
		l[0], h[0] = plo-s, phi-s
		parts = append(parts, Part{Shard: i, Lo: l, Hi: h})
	}
	return parts
}
