package sfc

import (
	"fmt"
	"slices"
)

// Curve is an invertible mapping between grid cells and positions along
// a space-filling curve. Keys are unique per cell but, on grids whose
// side lengths are not powers of two, not dense: the curve also visits
// points outside the grid.
type Curve interface {
	// Dims returns the grid shape the curve was built for.
	Dims() []int
	// Key returns the cell's position along the curve.
	Key(cell []int) (uint64, error)
	// Cell inverts Key into out.
	Cell(key uint64, out []int) error
}

// NumCells returns the number of cells in a grid shape.
func NumCells(dims []int) int64 {
	n := int64(1)
	for _, d := range dims {
		n *= int64(d)
	}
	return n
}

// Ranked densifies a curve over its grid: cells are numbered 0..N-1 in
// curve order with no gaps. This reproduces the paper's layout step
// where cells ordered by curve value are "stored sequentially on disks"
// (§5.2). For power-of-two grids the curve is already dense and no
// auxiliary memory is used; otherwise Ranked materializes the sorted
// key list once (8 bytes per cell).
type Ranked struct {
	curve Curve
	n     int64
	keys  []uint64 // nil when the curve is dense on this grid
}

// NewRanked builds the dense ranking for the curve over its grid.
func NewRanked(curve Curve) (*Ranked, error) {
	dims := curve.Dims()
	n := NumCells(dims)
	r := &Ranked{curve: curve, n: n}
	if denseOnGrid(curve) {
		return r, nil
	}
	keys := make([]uint64, 0, n)
	cell := make([]int, len(dims))
	for {
		k, err := curve.Key(cell)
		if err != nil {
			return nil, fmt.Errorf("sfc: ranking: %w", err)
		}
		keys = append(keys, k)
		if !nextCell(cell, dims) {
			break
		}
	}
	SortKeys(keys)
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			return nil, fmt.Errorf("sfc: curve is not injective: duplicate key %d", keys[i])
		}
	}
	r.keys = keys
	return r, nil
}

// denseOnGrid reports whether the curve's key space exactly matches the
// grid (every dimension a power of two of the curve's width), so keys
// are already dense ranks.
func denseOnGrid(curve Curve) bool {
	switch c := curve.(type) {
	case *ZOrder:
		for i, d := range c.dims {
			if d != 1<<uint(c.bw[i]) {
				return false
			}
		}
		return true
	case *Hilbert:
		for _, d := range c.dims {
			if d != 1<<uint(c.order) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// nextCell advances cell through the grid in row-major order (first
// dimension fastest) and reports whether it wrapped to the end.
func nextCell(cell, dims []int) bool {
	for i := 0; i < len(dims); i++ {
		cell[i]++
		if cell[i] < dims[i] {
			return true
		}
		cell[i] = 0
	}
	return false
}

// Len returns the number of cells.
func (r *Ranked) Len() int64 { return r.n }

// Dims returns the grid shape.
func (r *Ranked) Dims() []int { return r.curve.Dims() }

// Rank returns the cell's dense position along the curve, in [0, Len).
func (r *Ranked) Rank(cell []int) (int64, error) {
	k, err := r.curve.Key(cell)
	if err != nil {
		return 0, err
	}
	if r.keys == nil {
		return int64(k), nil
	}
	i, ok := slices.BinarySearch(r.keys, k)
	if !ok {
		return 0, fmt.Errorf("sfc: cell %v not in ranked grid", cell)
	}
	return int64(i), nil
}

// KeyOf returns the raw (sparse) curve key of a cell; pair with
// RanksOfSortedKeys for bulk conversion.
func (r *Ranked) KeyOf(cell []int) (uint64, error) { return r.curve.Key(cell) }

// RanksOfSortedKeys converts ascending raw curve keys into dense ranks
// in place. Small batches use per-key binary search; batches comparable
// to the grid size use a single linear merge over the sorted key list,
// which is what makes bulk range planning O(n) instead of O(n log N).
func (r *Ranked) RanksOfSortedKeys(keys []uint64) error {
	if r.keys == nil {
		// Dense curve: keys are ranks already; only bounds need checking,
		// and keys are ascending so the last one suffices.
		if n := len(keys); n > 0 && keys[n-1] >= uint64(r.n) {
			return fmt.Errorf("sfc: key %d not in ranked grid", keys[n-1])
		}
		return nil
	}
	if int64(len(keys))*32 < int64(len(r.keys)) {
		for i, k := range keys {
			j, ok := slices.BinarySearch(r.keys, k)
			if !ok {
				return fmt.Errorf("sfc: key %d not in ranked grid", k)
			}
			keys[i] = uint64(j)
		}
		return nil
	}
	j := 0
	for i, k := range keys {
		for j < len(r.keys) && r.keys[j] < k {
			j++
		}
		if j == len(r.keys) || r.keys[j] != k {
			return fmt.Errorf("sfc: key %d not in ranked grid", k)
		}
		keys[i] = uint64(j)
		// Duplicate input keys (multi-visit callers) keep the same rank,
		// so j is not advanced here.
	}
	return nil
}

// CellAt inverts Rank, writing the cell with the given dense position
// into out.
func (r *Ranked) CellAt(rank int64, out []int) error {
	if rank < 0 || rank >= r.n {
		return fmt.Errorf("sfc: rank %d out of [0,%d)", rank, r.n)
	}
	k := uint64(rank)
	if r.keys != nil {
		k = r.keys[rank]
	}
	return r.curve.Cell(k, out)
}
