package sfc

import "fmt"

// Hilbert enumerates an N-dimensional grid along the Hilbert curve,
// using Skilling's transpose algorithm (AIP Conf. Proc. 707, 2004).
// All dimensions share the bit width of the longest one; non-square
// grids are handled downstream by rank compaction, matching the paper's
// implementation which orders the dataset's cells by curve value and
// packs them densely (§5.2).
type Hilbert struct {
	dims    []int
	order   int // bits per dimension
	keyBits int
}

// NewHilbert builds a Hilbert curve over the given grid shape.
func NewHilbert(dims []int) (*Hilbert, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("sfc: empty dimension list")
	}
	order := 1
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("sfc: dimension %d has non-positive length %d", i, d)
		}
		if b := bitsFor(d); b > order {
			order = b
		}
	}
	kb := order * len(dims)
	if kb > 63 {
		return nil, fmt.Errorf("sfc: Hilbert key needs %d bits, max 63", kb)
	}
	return &Hilbert{dims: append([]int(nil), dims...), order: order, keyBits: kb}, nil
}

// Dims returns the grid shape.
func (h *Hilbert) Dims() []int { return h.dims }

// Order returns the bits per dimension.
func (h *Hilbert) Order() int { return h.order }

// KeyBits returns the number of significant bits in a key.
func (h *Hilbert) KeyBits() int { return h.keyBits }

// Key maps a cell coordinate to its Hilbert index.
func (h *Hilbert) Key(cell []int) (uint64, error) {
	if len(cell) != len(h.dims) {
		return 0, fmt.Errorf("sfc: cell has %d dims, want %d", len(cell), len(h.dims))
	}
	x := make([]uint32, len(cell))
	for i, c := range cell {
		if c < 0 || c >= 1<<uint(h.order) {
			return 0, fmt.Errorf("sfc: coordinate %d = %d outside curve space [0,%d)", i, c, 1<<uint(h.order))
		}
		x[i] = uint32(c)
	}
	axesToTranspose(x, h.order)
	return h.interleaveTransposed(x), nil
}

// Cell inverts Key, writing the coordinate into out.
func (h *Hilbert) Cell(key uint64, out []int) error {
	if len(out) != len(h.dims) {
		return fmt.Errorf("sfc: out has %d dims, want %d", len(out), len(h.dims))
	}
	if h.keyBits < 64 && key >= 1<<uint(h.keyBits) {
		return fmt.Errorf("sfc: key %d outside curve space", key)
	}
	x := h.deinterleaveTransposed(key)
	transposeToAxes(x, h.order)
	for i := range out {
		out[i] = int(x[i])
	}
	return nil
}

// interleaveTransposed packs the transposed representation into a
// single integer: bit (order-1) of x[0] is the most significant key
// bit, then bit (order-1) of x[1], and so on.
func (h *Hilbert) interleaveTransposed(x []uint32) uint64 {
	var key uint64
	for level := h.order - 1; level >= 0; level-- {
		for i := range x {
			key = key<<1 | uint64(x[i]>>uint(level))&1
		}
	}
	return key
}

func (h *Hilbert) deinterleaveTransposed(key uint64) []uint32 {
	x := make([]uint32, len(h.dims))
	shift := h.keyBits
	for level := h.order - 1; level >= 0; level-- {
		for i := range x {
			shift--
			x[i] |= uint32(key>>uint(shift)&1) << uint(level)
		}
	}
	return x
}

// axesToTranspose converts coordinates to the transposed Hilbert index
// in place. Skilling's algorithm: undo excess work from the high bit
// down, then Gray-encode.
func axesToTranspose(x []uint32, order int) {
	n := len(x)
	m := uint32(1) << uint(order-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose in place.
func transposeToAxes(x []uint32, order int) {
	n := len(x)
	m := uint32(2) << uint(order-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}
