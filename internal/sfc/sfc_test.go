package sfc

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// enumerate returns every cell of a small grid in row-major order.
func enumerate(dims []int) [][]int {
	var out [][]int
	cell := make([]int, len(dims))
	for {
		out = append(out, append([]int(nil), cell...))
		if !nextCell(cell, dims) {
			break
		}
	}
	return out
}

func curvesFor(t *testing.T, dims []int) map[string]Curve {
	t.Helper()
	z, err := NewZOrder(dims)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHilbert(dims)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrayCurve(dims)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Curve{"zorder": z, "hilbert": h, "gray": g}
}

func TestCurveBijectiveExhaustive(t *testing.T) {
	shapes := [][]int{
		{8, 8},
		{4, 4, 4},
		{5, 3},       // paper's 2-D example shape
		{5, 3, 3},    // paper's 3-D example shape
		{5, 3, 3, 2}, // paper's 4-D example shape
		{7, 2, 9},
		{16},
		{2, 2, 2, 2, 2},
	}
	for _, dims := range shapes {
		for name, c := range curvesFor(t, dims) {
			seen := map[uint64][]int{}
			for _, cell := range enumerate(dims) {
				k, err := c.Key(cell)
				if err != nil {
					t.Fatalf("%s %v: Key(%v): %v", name, dims, cell, err)
				}
				if prev, dup := seen[k]; dup {
					t.Fatalf("%s %v: key %d for both %v and %v", name, dims, k, prev, cell)
				}
				seen[k] = cell
				out := make([]int, len(dims))
				if err := c.Cell(k, out); err != nil {
					t.Fatalf("%s %v: Cell(%d): %v", name, dims, k, err)
				}
				for i := range out {
					if out[i] != cell[i] {
						t.Fatalf("%s %v: roundtrip %v -> %d -> %v", name, dims, cell, k, out)
					}
				}
			}
		}
	}
}

func TestCurveValidation(t *testing.T) {
	for _, mk := range []func([]int) (Curve, error){
		func(d []int) (Curve, error) { return NewZOrder(d) },
		func(d []int) (Curve, error) { return NewHilbert(d) },
		func(d []int) (Curve, error) { return NewGrayCurve(d) },
	} {
		if _, err := mk(nil); err == nil {
			t.Error("empty dims accepted")
		}
		if _, err := mk([]int{4, 0}); err == nil {
			t.Error("zero dim accepted")
		}
		if _, err := mk([]int{1 << 30, 1 << 30, 1 << 30}); err == nil {
			t.Error("key overflow accepted")
		}
		c, err := mk([]int{8, 8})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Key([]int{1}); err == nil {
			t.Error("wrong arity accepted")
		}
		if _, err := c.Key([]int{-1, 0}); err == nil {
			t.Error("negative coordinate accepted")
		}
		if err := c.Cell(0, make([]int, 3)); err == nil {
			t.Error("wrong out arity accepted")
		}
	}
}

// TestHilbertUnitSteps: consecutive Hilbert keys map to cells at
// Manhattan distance exactly 1 — the curve's defining continuity
// property, and the reason it clusters better than Z-order.
func TestHilbertUnitSteps(t *testing.T) {
	for _, dims := range [][]int{{16, 16}, {8, 8, 8}, {4, 4, 4, 4}} {
		h, err := NewHilbert(dims)
		if err != nil {
			t.Fatal(err)
		}
		n := int64(1)
		for _, d := range dims {
			n *= int64(d)
		}
		prev := make([]int, len(dims))
		cur := make([]int, len(dims))
		if err := h.Cell(0, prev); err != nil {
			t.Fatal(err)
		}
		for k := int64(1); k < n; k++ {
			if err := h.Cell(uint64(k), cur); err != nil {
				t.Fatal(err)
			}
			dist := 0
			for i := range cur {
				d := cur[i] - prev[i]
				if d < 0 {
					d = -d
				}
				dist += d
			}
			if dist != 1 {
				t.Fatalf("%v: Hilbert step %d -> %d moves distance %d (%v -> %v)",
					dims, k-1, k, dist, prev, cur)
			}
			copy(prev, cur)
		}
	}
}

// TestGrayAdjacentKeysDifferOneBit: consecutive Gray-curve ranks
// correspond to Z-keys differing in exactly one bit.
func TestGrayAdjacentKeysDifferOneBit(t *testing.T) {
	for v := uint64(0); v < 4096; v++ {
		a, b := binaryToGray(v), binaryToGray(v+1)
		x := a ^ b
		if x == 0 || x&(x-1) != 0 {
			t.Fatalf("gray(%d)=%b and gray(%d)=%b differ in more than one bit", v, a, v+1, b)
		}
	}
}

func TestGrayRoundTripQuick(t *testing.T) {
	f := func(v uint64) bool { return grayToBinary(binaryToGray(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZOrderKeyBitsCompact(t *testing.T) {
	// Unequal dims must not waste key space: (1024,4) needs 12 bits,
	// not 20.
	z, err := NewZOrder([]int{1024, 4})
	if err != nil {
		t.Fatal(err)
	}
	if z.KeyBits() != 12 {
		t.Errorf("KeyBits=%d, want 12", z.KeyBits())
	}
	k, err := z.Key([]int{1023, 3})
	if err != nil {
		t.Fatal(err)
	}
	if k != 1<<12-1 {
		t.Errorf("max cell key %d, want %d", k, 1<<12-1)
	}
}

func TestRankedDenseOnPow2(t *testing.T) {
	for name, c := range curvesFor(t, []int{8, 8, 8}) {
		r, err := NewRanked(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name != "gray" && r.keys != nil {
			t.Errorf("%s: pow-2 grid should not materialize keys", name)
		}
		if r.Len() != 512 {
			t.Errorf("%s: Len=%d, want 512", name, r.Len())
		}
	}
}

func TestRankedBijective(t *testing.T) {
	dims := []int{5, 3, 3}
	for name, c := range curvesFor(t, dims) {
		r, err := NewRanked(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Len() != 45 {
			t.Fatalf("%s: Len=%d, want 45", name, r.Len())
		}
		seen := make([]bool, r.Len())
		out := make([]int, len(dims))
		for _, cell := range enumerate(dims) {
			rk, err := r.Rank(cell)
			if err != nil {
				t.Fatalf("%s: Rank(%v): %v", name, cell, err)
			}
			if rk < 0 || rk >= r.Len() {
				t.Fatalf("%s: rank %d out of range", name, rk)
			}
			if seen[rk] {
				t.Fatalf("%s: rank %d assigned twice", name, rk)
			}
			seen[rk] = true
			if err := r.CellAt(rk, out); err != nil {
				t.Fatalf("%s: CellAt(%d): %v", name, rk, err)
			}
			for i := range out {
				if out[i] != cell[i] {
					t.Fatalf("%s: roundtrip %v -> %d -> %v", name, cell, rk, out)
				}
			}
		}
	}
}

func TestRankedPreservesCurveOrder(t *testing.T) {
	// Rank must be monotone in curve key: compaction renumbers but
	// never reorders.
	dims := []int{6, 5, 4}
	for name, c := range curvesFor(t, dims) {
		r, err := NewRanked(c)
		if err != nil {
			t.Fatal(err)
		}
		type pair struct {
			key  uint64
			rank int64
		}
		var pairs []pair
		for _, cell := range enumerate(dims) {
			k, _ := c.Key(cell)
			rk, _ := r.Rank(cell)
			pairs = append(pairs, pair{k, rk})
		}
		for i := range pairs {
			for j := range pairs {
				if (pairs[i].key < pairs[j].key) != (pairs[i].rank < pairs[j].rank) {
					t.Fatalf("%s: rank order disagrees with key order", name)
				}
			}
		}
	}
}

func TestRankedCellAtBounds(t *testing.T) {
	c, _ := NewZOrder([]int{3, 3})
	r, err := NewRanked(c)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, 2)
	if err := r.CellAt(-1, out); err == nil {
		t.Error("negative rank accepted")
	}
	if err := r.CellAt(9, out); err == nil {
		t.Error("rank past end accepted")
	}
}

func TestNumCells(t *testing.T) {
	if n := NumCells([]int{259, 259, 259}); n != 259*259*259 {
		t.Errorf("NumCells wrong: %d", n)
	}
}

// TestHilbertClustersBetterThanZ reproduces the clustering-property
// claim the paper cites (Moon et al.): the average number of contiguous
// curve runs for random 2-D range queries is lower for Hilbert.
func TestHilbertClustersBetterThanZ(t *testing.T) {
	dims := []int{32, 32}
	z, _ := NewZOrder(dims)
	h, _ := NewHilbert(dims)
	rng := rand.New(rand.NewSource(8))
	runs := func(c Curve) float64 {
		total := 0
		const trials = 60
		for trial := 0; trial < trials; trial++ {
			w := 4 + rng.Intn(8)
			x0 := rng.Intn(dims[0] - w)
			y0 := rng.Intn(dims[1] - w)
			var keys []uint64
			for x := x0; x < x0+w; x++ {
				for y := y0; y < y0+w; y++ {
					k, _ := c.Key([]int{x, y})
					keys = append(keys, k)
				}
			}
			// Count contiguous runs of consecutive keys.
			m := map[uint64]bool{}
			for _, k := range keys {
				m[k] = true
			}
			for _, k := range keys {
				if !m[k-1] {
					total++
				}
			}
		}
		return float64(total) / trials
	}
	zRuns, hRuns := runs(z), runs(h)
	if hRuns >= zRuns {
		t.Errorf("Hilbert runs/query %.1f not better than Z-order %.1f", hRuns, zRuns)
	}
}

func TestSortKeysMatchesSlicesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 100, radixSortThreshold + 1000} {
		keys := make([]uint64, n)
		want := make([]uint64, n)
		for i := range keys {
			// Mix of small and huge keys so whole byte lanes are constant.
			keys[i] = uint64(rng.Int63n(1 << 20))
			if i%7 == 0 {
				keys[i] |= uint64(rng.Int63()) << 20
			}
			want[i] = keys[i]
		}
		SortKeys(keys)
		slices.Sort(want)
		if !slices.Equal(keys, want) {
			t.Fatalf("n=%d: radix order differs from comparison sort", n)
		}
	}
}

func TestRanksOfSortedKeysMatchesRank(t *testing.T) {
	dims := []int{7, 5, 6} // non-power-of-two: sparse keys, real ranking
	c, err := NewHilbert(dims)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRanked(c)
	if err != nil {
		t.Fatal(err)
	}
	var keys []uint64
	var cells [][]int
	cell := []int{1, 0, 2}
	lo, hi := []int{1, 0, 2}, []int{6, 4, 5}
	for {
		k, err := r.KeyOf(cell)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
		cells = append(cells, append([]int(nil), cell...))
		done := true
		for i := 0; i < len(cell); i++ {
			cell[i]++
			if cell[i] < hi[i] {
				done = false
				break
			}
			cell[i] = lo[i]
		}
		if done {
			break
		}
	}
	want := map[uint64]bool{}
	for _, cl := range cells {
		rk, err := r.Rank(cl)
		if err != nil {
			t.Fatal(err)
		}
		want[uint64(rk)] = true
	}
	SortKeys(keys)
	if err := r.RanksOfSortedKeys(keys); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if !want[k] {
			t.Fatalf("bulk rank %d (index %d) not produced by per-cell Rank", k, i)
		}
		if i > 0 && keys[i] < keys[i-1] {
			t.Fatalf("bulk ranks not ascending at %d", i)
		}
	}
	// An out-of-grid key must be rejected.
	bad := []uint64{^uint64(0) >> 8}
	if err := r.RanksOfSortedKeys(bad); err == nil {
		t.Error("foreign key accepted")
	}
	// Same contract on a dense (power-of-two) grid, where keys are
	// already ranks and only bounds are checked.
	dc, err := NewHilbert([]int{8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := NewRanked(dc)
	if err != nil {
		t.Fatal(err)
	}
	if err := dr.RanksOfSortedKeys([]uint64{0, 511}); err != nil {
		t.Errorf("in-grid dense keys rejected: %v", err)
	}
	if err := dr.RanksOfSortedKeys([]uint64{0, 512}); err == nil {
		t.Error("dense grid accepted out-of-range key")
	}
}
