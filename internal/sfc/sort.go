package sfc

import "slices"

// radixSortThreshold is the size below which comparison sort wins: the
// radix passes have a fixed per-pass cost that only amortizes on bulk
// inputs.
const radixSortThreshold = 1 << 12

// SortKeys sorts curve keys ascending. Large inputs use an LSD radix
// sort (skipping byte positions that are constant across the input), a
// several-fold win over comparison sorting on the multi-million-key
// batches a range-query planner produces.
func SortKeys(keys []uint64) {
	if len(keys) < radixSortThreshold {
		slices.Sort(keys)
		return
	}
	var lo, hi uint64
	hi = 0
	lo = ^uint64(0)
	for _, k := range keys {
		lo &= k
		hi |= k
	}
	// Bytes where every key agrees carry no ordering information.
	varying := lo ^ hi
	buf := make([]uint64, len(keys))
	src, dst := keys, buf
	for shift := uint(0); shift < 64; shift += 8 {
		if (varying>>shift)&0xff == 0 {
			continue
		}
		var counts [256]int
		for _, k := range src {
			counts[(k>>shift)&0xff]++
		}
		pos := 0
		for b := 0; b < 256; b++ {
			n := counts[b]
			counts[b] = pos
			pos += n
		}
		for _, k := range src {
			b := (k >> shift) & 0xff
			dst[counts[b]] = k
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}
