// Package sfc implements the space-filling curves the paper compares
// against (§2, §5): Z-ordering (Orenstein), the Hilbert curve, and the
// Gray-coded curve (Faloutsos), plus the rank compaction that packs a
// curve over a non-power-of-two grid into a dense sequence of cells
// "stored sequentially on disks" (§5.2).
package sfc

import (
	"fmt"
	"math/bits"
)

// bitsFor returns the number of bits needed to index a dimension of
// length n (at least 1).
func bitsFor(n int) int {
	if n <= 1 {
		return 1
	}
	return bits.Len(uint(n - 1))
}

// checkDims validates a grid shape and returns the per-dimension bit
// widths and their sum.
func checkDims(dims []int) ([]int, int, error) {
	if len(dims) == 0 {
		return nil, 0, fmt.Errorf("sfc: empty dimension list")
	}
	bw := make([]int, len(dims))
	total := 0
	for i, d := range dims {
		if d <= 0 {
			return nil, 0, fmt.Errorf("sfc: dimension %d has non-positive length %d", i, d)
		}
		bw[i] = bitsFor(d)
		total += bw[i]
	}
	if total > 63 {
		return nil, 0, fmt.Errorf("sfc: grid needs %d key bits, max 63", total)
	}
	return bw, total, nil
}

// ZOrder enumerates an N-dimensional grid in Z (Morton) order, with
// per-dimension bit widths so elongated grids interleave only as many
// bits as each dimension needs.
type ZOrder struct {
	dims    []int
	bw      []int // bit width per dimension
	keyBits int
}

// NewZOrder builds a Z-order curve over the given grid shape.
func NewZOrder(dims []int) (*ZOrder, error) {
	bw, total, err := checkDims(dims)
	if err != nil {
		return nil, err
	}
	z := &ZOrder{dims: append([]int(nil), dims...), bw: bw, keyBits: total}
	return z, nil
}

// Dims returns the grid shape.
func (z *ZOrder) Dims() []int { return z.dims }

// KeyBits returns the number of significant bits in a key.
func (z *ZOrder) KeyBits() int { return z.keyBits }

// Key maps a cell coordinate to its Z-order key. Bits are interleaved
// round-robin from the most significant downward, skipping dimensions
// that have exhausted their width — the standard generalization to
// unequal dimension lengths.
func (z *ZOrder) Key(cell []int) (uint64, error) {
	if err := z.validate(cell); err != nil {
		return 0, err
	}
	var key uint64
	maxBW := 0
	for _, b := range z.bw {
		if b > maxBW {
			maxBW = b
		}
	}
	for level := maxBW - 1; level >= 0; level-- {
		for i := range z.dims {
			if level >= z.bw[i] {
				continue
			}
			key = key<<1 | uint64(cell[i]>>uint(level))&1
		}
	}
	return key, nil
}

// Cell inverts Key, writing the coordinate into out (len == len(dims)).
func (z *ZOrder) Cell(key uint64, out []int) error {
	if len(out) != len(z.dims) {
		return fmt.Errorf("sfc: out has %d dims, want %d", len(out), len(z.dims))
	}
	for i := range out {
		out[i] = 0
	}
	maxBW := 0
	for _, b := range z.bw {
		if b > maxBW {
			maxBW = b
		}
	}
	// Consume bits in the same order Key produced them.
	shift := z.keyBits
	for level := maxBW - 1; level >= 0; level-- {
		for i := range z.dims {
			if level >= z.bw[i] {
				continue
			}
			shift--
			out[i] |= int(key>>uint(shift)&1) << uint(level)
		}
	}
	return nil
}

func (z *ZOrder) validate(cell []int) error {
	if len(cell) != len(z.dims) {
		return fmt.Errorf("sfc: cell has %d dims, want %d", len(cell), len(z.dims))
	}
	for i, c := range cell {
		if c < 0 || c >= 1<<uint(z.bw[i]) {
			return fmt.Errorf("sfc: coordinate %d = %d outside key space [0,%d)", i, c, 1<<uint(z.bw[i]))
		}
	}
	return nil
}

// GrayCurve orders cells by the Gray-coded curve of Faloutsos: the
// Z-order key reinterpreted as a reflected Gray code. Neighbouring keys
// differ in one interleaved bit, improving clustering slightly over
// plain Z-order.
type GrayCurve struct {
	z *ZOrder
}

// NewGrayCurve builds a Gray-coded curve over the grid shape.
func NewGrayCurve(dims []int) (*GrayCurve, error) {
	z, err := NewZOrder(dims)
	if err != nil {
		return nil, err
	}
	return &GrayCurve{z: z}, nil
}

// Dims returns the grid shape.
func (g *GrayCurve) Dims() []int { return g.z.dims }

// Key maps a cell to its position along the Gray-coded curve.
func (g *GrayCurve) Key(cell []int) (uint64, error) {
	zk, err := g.z.Key(cell)
	if err != nil {
		return 0, err
	}
	return grayToBinary(zk), nil
}

// Cell inverts Key.
func (g *GrayCurve) Cell(key uint64, out []int) error {
	return g.z.Cell(binaryToGray(key), out)
}

// binaryToGray returns the reflected Gray code of v.
func binaryToGray(v uint64) uint64 { return v ^ (v >> 1) }

// grayToBinary inverts binaryToGray.
func grayToBinary(v uint64) uint64 {
	for shift := uint(1); shift < 64; shift <<= 1 {
		v ^= v >> shift
	}
	return v
}
