// Package lvm implements the logical volume manager of the paper's
// prototype (§5.1): it exports a single logical block address space over
// one or more simulated drives and exposes the adjacency model to
// applications through GetAdjacent and GetTrackBoundaries, without
// revealing disk-specific details.
//
// A Volume is an ordered list of segments, each a contiguous run of
// physical blocks on one Drive. Volume LBNs (VLBNs) are the
// concatenation of the segments' block ranges. The classic constructor
// New gives a volume exactly one whole-drive segment per geometry — the
// paper's configuration, where a dataset owns its drives for life. Pool
// volumes (internal/pool) instead map thin-provisioned, growable,
// possibly copy-on-write extents carved out of shared drives; the
// segment machinery is invisible to them both: every exported query
// speaks (segment index, VLBN), and for classic volumes segment index
// and drive index coincide, so the paper path is bit-identical.
//
// Chunk-grain declustering (§4.4) is provided by Declusterer. All
// adjacency relations stay within a single segment, as they must:
// adjacency is a property of one arm and one platter stack, and a
// pooled extent's neighbors may belong to another tenant.
//
// # Concurrency contract
//
// The segment table is an immutable snapshot behind an atomic pointer:
// geometry queries (Locate, GetAdjacent, GetTrackBoundaries, Zones, ...)
// are read-only and safe for any number of goroutines, even while the
// volume is being grown. Structural mutators — Extend, MarkCOW,
// ResolveCOW — serialize on an internal mutex and publish a fresh
// snapshot; growth is append-only, so segment indices and the VLBNs of
// existing blocks never change under a reader's feet (ResolveCOW is the
// one exception: it splits segments and renumbers indices, and only the
// owning service loop calls it, between batches).
//
// Head-state mutators — ServeBatch, Reset, and direct Disk access such
// as RandomizePosition — take each Drive's own mutex, because pooled
// drives are shared between tenants' service loops. Within one volume
// the owner rule of the paper path still holds: a single synchronous
// caller (engine.Run, the experiment drivers) or the per-volume
// engine.Service loop goroutine issues every batch, and ServeBatch's
// own per-drive goroutines touch each drive only under its lock.
//
// The same ownership rule covers the service's extent cache over this
// volume's blocks: only the service loop may insert or invalidate
// cache entries. Writes reach the drives exclusively as service write
// ops, which invalidate every cached extent overlapping the mutated
// block ranges before the write's cost is charged. Cache entries are
// keyed by VLBN, which is stable across Extend and ResolveCOW — only
// the physical mapping moves, never the logical address.
package lvm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/disk"
)

// DefaultAdjacencyDepth is the paper's evaluation setting (§5.3): both
// drives are configured with D = 128 adjacent blocks per LBN.
const DefaultAdjacencyDepth = 128

// Request is a contiguous read of Count blocks at a volume LBN.
type Request struct {
	VLBN  int64
	Count int
}

// Completion records one serviced request and the segment that served
// it (for classic volumes, the segment index is the disk index).
type Completion struct {
	Req      Request
	DiskIdx  int
	Cost     disk.AccessCost
	FinishMs float64
}

// Drive is one physical simulated drive. Classic volumes built with New
// own their drives outright; pool volumes share drives, with extents of
// many tenants carved from one drive. The mutex serializes head-state
// mutation across every volume mapped onto the drive — within one
// volume the service loop is the single owner, but two tenants' service
// loops may reach the same pooled drive concurrently.
type Drive struct {
	mu sync.Mutex
	d  *disk.Disk
}

// NewDrive wraps a fresh simulated disk of the given geometry.
func NewDrive(g *disk.Geometry) *Drive { return &Drive{d: disk.New(g)} }

// Disk exposes the underlying simulated disk for statistics and
// single-owner setup (RandomizePosition before traffic starts).
func (dr *Drive) Disk() *disk.Disk { return dr.d }

// Geometry returns the drive's immutable geometry.
func (dr *Drive) Geometry() *disk.Geometry { return dr.d.Geometry() }

// Extent is one contiguous run of physical blocks on a drive — the unit
// a pool allocates and a volume maps as a segment. A COW extent is a
// read-only view of blocks owned by a snapshot or parent volume: reads
// fall through to the shared physical blocks, and the first write to
// any track faults that track into a privately allocated extent (see
// CowSpans and ResolveCOW).
type Extent struct {
	Drive     *Drive
	PhysStart int64
	Blocks    int64
	COW       bool
}

// CowAllocFunc allocates a private replacement extent for one faulted
// COW span: blocks blocks with the given track length, preferring (but
// not required to use) the drive currently backing the span. The pool
// installs one per volume via SetCowAlloc and records the allocation
// against the tenant's space accounting as a side effect.
type CowAllocFunc func(prefer *Drive, trackLen int, blocks int64) (*Drive, int64, error)

// segment is one mapped extent with its position in the VLBN space.
type segment struct {
	drive     *Drive
	physStart int64
	blocks    int64
	startVLBN int64
	cow       bool
}

func (s *segment) physEnd() int64 { return s.physStart + s.blocks }
func (s *segment) endVLBN() int64 { return s.startVLBN + s.blocks }

// segSet is one immutable snapshot of a volume's segment table, with
// the per-drive indices ServeBatch needs to group and back-map I/O.
type segSet struct {
	segs     []segment
	total    int64
	hasCow   bool
	drives   []*Drive // distinct drives, first-appearance order
	driveIdx map[*Drive]int
	byDrive  [][]int // per drive: segment indices sorted by physStart
}

func buildSegSet(segs []segment) *segSet {
	ss := &segSet{segs: segs, driveIdx: make(map[*Drive]int)}
	for i := range segs {
		s := &segs[i]
		ss.total += s.blocks
		if s.cow {
			ss.hasCow = true
		}
		k, ok := ss.driveIdx[s.drive]
		if !ok {
			k = len(ss.drives)
			ss.driveIdx[s.drive] = k
			ss.drives = append(ss.drives, s.drive)
			ss.byDrive = append(ss.byDrive, nil)
		}
		ss.byDrive[k] = append(ss.byDrive[k], i)
	}
	for _, idxs := range ss.byDrive {
		sort.Slice(idxs, func(a, b int) bool {
			return segs[idxs[a]].physStart < segs[idxs[b]].physStart
		})
	}
	return ss
}

func (ss *segSet) locate(vlbn int64) (int, int64, error) {
	if vlbn < 0 || vlbn >= ss.total {
		return 0, 0, fmt.Errorf("lvm: VLBN %d out of range [0,%d)", vlbn, ss.total)
	}
	i := sort.Search(len(ss.segs), func(i int) bool { return ss.segs[i].startVLBN > vlbn }) - 1
	return i, vlbn - ss.segs[i].startVLBN, nil
}

// segOnDrive maps a physical LBN served on drive k back to its segment.
// A volume's segments are physically disjoint, so it is unique.
func (ss *segSet) segOnDrive(k int, phys int64) int {
	idxs := ss.byDrive[k]
	j := sort.Search(len(idxs), func(j int) bool { return ss.segs[idxs[j]].physStart > phys }) - 1
	return idxs[j]
}

// Volume is a logical volume over one or more simulated drives.
type Volume struct {
	set      atomic.Pointer[segSet]
	adjDepth int

	// mu serializes structural mutation — Extend, MarkCOW, ResolveCOW —
	// against each other (a pool Grow goroutine racing the service
	// loop's COW commit). Readers never take it: they work on the
	// atomic snapshot loaded at call entry.
	mu       sync.Mutex
	cowAlloc CowAllocFunc

	// scratch pools ServeBatch's routing buffers: the serve hot path is
	// allocation-free in steady state apart from the returned
	// completions. A pool (not a single buffer) because concurrent
	// callers are legal — the engine's per-drive dispatchers, and
	// multiple tenants' service loops sharing pooled drives.
	scratch sync.Pool
}

// serveScratch is one ServeBatch call's reusable routing state.
type serveScratch struct {
	counts   []int
	routed   []disk.Request
	onDrive  []int
	perDrive [][]disk.Request
	comps    [][]disk.Completion
	errs     []error
	busyMs   []float64
}

// size readies the scratch for nd drives and nr requests, reusing
// every backing array (including the per-drive sub-batch buffers,
// which keep their capacity across calls).
func (sc *serveScratch) size(nd, nr int) {
	if cap(sc.counts) < nd {
		sc.counts = make([]int, nd)
		sc.perDrive = make([][]disk.Request, nd)
		sc.comps = make([][]disk.Completion, nd)
		sc.errs = make([]error, nd)
		sc.busyMs = make([]float64, nd)
	} else {
		sc.counts = sc.counts[:nd]
		clear(sc.counts)
		sc.perDrive = sc.perDrive[:nd]
		sc.comps = sc.comps[:nd]
		clear(sc.comps)
		sc.errs = sc.errs[:nd]
		clear(sc.errs)
		sc.busyMs = sc.busyMs[:nd]
		clear(sc.busyMs)
	}
	for k := range sc.perDrive {
		sc.perDrive[k] = sc.perDrive[k][:0]
	}
	if cap(sc.routed) < nr {
		sc.routed = make([]disk.Request, nr)
		sc.onDrive = make([]int, nr)
	} else {
		sc.routed = sc.routed[:nr]
		sc.onDrive = sc.onDrive[:nr]
	}
}

// New builds a volume from disk geometries. Each geometry gets its own
// fresh simulated drive, fully owned by the volume as one whole-drive
// segment — the paper's configuration. adjDepth is the exported
// adjacency depth D; pass 0 for DefaultAdjacencyDepth. The depth is
// capped by every member drive's settle range.
func New(adjDepth int, geoms ...*disk.Geometry) (*Volume, error) {
	if len(geoms) == 0 {
		return nil, fmt.Errorf("lvm: volume needs at least one disk")
	}
	exts := make([]Extent, len(geoms))
	for i, g := range geoms {
		exts[i] = Extent{Drive: NewDrive(g), Blocks: g.TotalBlocks()}
	}
	return NewFromExtents(adjDepth, exts)
}

// NewFromExtents builds a volume whose VLBN space is the concatenation
// of the given extents, in order. This is the pool constructor: extents
// reference shared drives and may start anywhere on them. Pool callers
// keep extents track-aligned and within a single geometry zone so that
// track and zone arithmetic (GetTrackBoundaries, Zones) is exact inside
// every segment; New's whole-drive extents satisfy this trivially.
func NewFromExtents(adjDepth int, extents []Extent) (*Volume, error) {
	if len(extents) == 0 {
		return nil, fmt.Errorf("lvm: volume needs at least one extent")
	}
	if adjDepth == 0 {
		adjDepth = DefaultAdjacencyDepth
	}
	if adjDepth < 1 {
		return nil, fmt.Errorf("lvm: adjacency depth %d must be positive", adjDepth)
	}
	segs := make([]segment, 0, len(extents))
	var off int64
	for _, e := range extents {
		if err := checkExtent(e, adjDepth); err != nil {
			return nil, err
		}
		segs = append(segs, segment{
			drive:     e.Drive,
			physStart: e.PhysStart,
			blocks:    e.Blocks,
			startVLBN: off,
			cow:       e.COW,
		})
		off += e.Blocks
	}
	v := &Volume{adjDepth: adjDepth}
	v.set.Store(buildSegSet(segs))
	return v, nil
}

func checkExtent(e Extent, adjDepth int) error {
	if e.Drive == nil {
		return fmt.Errorf("lvm: extent has no drive")
	}
	g := e.Drive.Geometry()
	if span := g.AdjSpan(); adjDepth > span {
		return fmt.Errorf("lvm: adjacency depth %d exceeds %s settle span %d",
			adjDepth, g.Name, span)
	}
	if e.Blocks <= 0 {
		return fmt.Errorf("lvm: extent size must be positive, got %d blocks", e.Blocks)
	}
	if e.PhysStart < 0 || e.PhysStart+e.Blocks > g.TotalBlocks() {
		return fmt.Errorf("lvm: extent [%d,+%d) exceeds %s capacity %d",
			e.PhysStart, e.Blocks, g.Name, g.TotalBlocks())
	}
	return nil
}

// NewLike builds a fresh volume mirroring v's hardware: one fresh
// whole drive per segment, with the segments' geometries in order, the
// same adjacency depth, and pristine head state. Sharded stores use it
// to spawn per-shard volumes identical to a drive-owning primary; pool
// tenants allocate shard volumes through the pool instead. Geometries
// are immutable and safely shared between the volumes.
func NewLike(v *Volume) *Volume {
	ss := v.set.Load()
	geoms := make([]*disk.Geometry, len(ss.segs))
	for i := range ss.segs {
		geoms[i] = ss.segs[i].drive.Geometry()
	}
	// New validated these exact inputs when v was built, so it cannot
	// fail here.
	nv, err := New(v.adjDepth, geoms...)
	if err != nil {
		panic(fmt.Sprintf("lvm: NewLike on a valid volume failed: %v", err))
	}
	return nv
}

// AdjacencyDepth returns the exported D: how many adjacent blocks each
// VLBN has (fewer only near the end of a segment).
func (v *Volume) AdjacencyDepth() int { return v.adjDepth }

// NumDisks returns the number of segments the volume presents as member
// disks (for classic volumes, exactly the member drives).
func (v *Volume) NumDisks() int { return len(v.set.Load().segs) }

// Disk returns the drive backing segment i (for statistics and
// inspection). Distinct segments of a pool volume may share a drive.
func (v *Volume) Disk(i int) *disk.Disk { return v.set.Load().segs[i].drive.d }

// Drives returns the distinct drives backing the volume, in first-use
// order.
func (v *Volume) Drives() []*Drive {
	ss := v.set.Load()
	return append([]*Drive(nil), ss.drives...)
}

// TotalBlocks returns the volume capacity in blocks.
func (v *Volume) TotalBlocks() int64 { return v.set.Load().total }

// HasCOW reports whether any segment is still copy-on-write.
func (v *Volume) HasCOW() bool { return v.set.Load().hasCow }

// Locate resolves a VLBN to (segment index, segment-local LBN).
func (v *Volume) Locate(vlbn int64) (diskIdx int, lbn int64, err error) {
	return v.set.Load().locate(vlbn)
}

// VLBN converts a segment-local LBN back to a volume LBN.
func (v *Volume) VLBN(diskIdx int, lbn int64) int64 {
	return v.set.Load().segs[diskIdx].startVLBN + lbn
}

// DiskStart returns the first VLBN of segment i.
func (v *Volume) DiskStart(diskIdx int) int64 {
	return v.set.Load().segs[diskIdx].startVLBN
}

// DiskBlocks returns the capacity, in blocks, of segment i.
func (v *Volume) DiskBlocks(diskIdx int) int64 {
	return v.set.Load().segs[diskIdx].blocks
}

// GetAdjacent returns up to d adjacent blocks of vlbn (d <= D), the
// interface call of §3.2. Adjacency never crosses segments; near the
// edges of a segment the list is shorter (a pooled extent's physical
// neighbors may belong to another tenant and are not reachable).
func (v *Volume) GetAdjacent(vlbn int64, d int) ([]int64, error) {
	if d < 1 || d > v.adjDepth {
		return nil, fmt.Errorf("lvm: requested depth %d out of [1,%d]", d, v.adjDepth)
	}
	ss := v.set.Load()
	si, off, err := ss.locate(vlbn)
	if err != nil {
		return nil, err
	}
	seg := &ss.segs[si]
	adjs, err := seg.drive.Geometry().Adjacent(seg.physStart+off, d)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, len(adjs))
	for _, a := range adjs {
		if a < seg.physStart || a >= seg.physEnd() {
			continue
		}
		out = append(out, seg.startVLBN+(a-seg.physStart))
	}
	return out, nil
}

// GetAdjacentK returns the k-th adjacent block of vlbn (1 <= k <= D).
func (v *Volume) GetAdjacentK(vlbn int64, k int) (int64, error) {
	if k < 1 || k > v.adjDepth {
		return 0, fmt.Errorf("lvm: adjacency index %d out of [1,%d]", k, v.adjDepth)
	}
	ss := v.set.Load()
	si, off, err := ss.locate(vlbn)
	if err != nil {
		return 0, err
	}
	seg := &ss.segs[si]
	a, err := seg.drive.Geometry().AdjacentBlock(seg.physStart+off, k)
	if err != nil {
		return 0, err
	}
	if a < seg.physStart || a >= seg.physEnd() {
		return 0, fmt.Errorf("lvm: adjacent %d of VLBN %d falls outside its extent", k, vlbn)
	}
	return seg.startVLBN + (a - seg.physStart), nil
}

// GetTrackBoundaries returns the half-open VLBN interval of the track
// containing vlbn, the second interface call of §3.2, clipped to the
// containing segment (pool extents are track-aligned, so the clip only
// matters for defensive callers).
func (v *Volume) GetTrackBoundaries(vlbn int64) (start, next int64, err error) {
	ss := v.set.Load()
	si, off, err := ss.locate(vlbn)
	if err != nil {
		return 0, 0, err
	}
	seg := &ss.segs[si]
	s, n, err := seg.drive.Geometry().TrackBoundaries(seg.physStart + off)
	if err != nil {
		return 0, 0, err
	}
	if s < seg.physStart {
		s = seg.physStart
	}
	if n > seg.physEnd() {
		n = seg.physEnd()
	}
	return seg.startVLBN + (s - seg.physStart), seg.startVLBN + (n - seg.physStart), nil
}

// TrackLen returns the track length (the paper's T) at vlbn.
func (v *Volume) TrackLen(vlbn int64) (int, error) {
	ss := v.set.Load()
	si, off, err := ss.locate(vlbn)
	if err != nil {
		return 0, err
	}
	return ss.segs[si].drive.Geometry().TrackLen(ss.segs[si].physStart + off), nil
}

// ZoneExtent describes a run of same-track-length blocks in one
// segment, in volume coordinates. MultiMap sizes basic cubes per zone
// and never maps a cube across a zone boundary.
type ZoneExtent struct {
	DiskIdx   int
	StartVLBN int64
	Blocks    int64
	TrackLen  int
	Tracks    int
}

// Zones enumerates the zone extents of every segment in VLBN order:
// each geometry zone intersected with the segment's physical range.
// For classic whole-drive volumes this is exactly the member disks'
// zone lists; a pool segment lies within a single zone and yields one
// extent.
func (v *Volume) Zones() []ZoneExtent {
	ss := v.set.Load()
	var out []ZoneExtent
	for si := range ss.segs {
		seg := &ss.segs[si]
		g := seg.drive.Geometry()
		for zi := 0; zi < g.NumZones(); zi++ {
			z := g.ZoneByIndex(zi)
			nTracks := z.Cylinders() * g.Surfaces
			zStart := z.StartLBN()
			zEnd := zStart + int64(nTracks)*int64(z.SectorsPerTrack)
			lo := max(zStart, seg.physStart)
			hi := min(zEnd, seg.physEnd())
			if lo >= hi {
				continue
			}
			blocks := hi - lo
			out = append(out, ZoneExtent{
				DiskIdx:   si,
				StartVLBN: seg.startVLBN + (lo - seg.physStart),
				Blocks:    blocks,
				TrackLen:  z.SectorsPerTrack,
				Tracks:    int(blocks / int64(z.SectorsPerTrack)),
			})
		}
	}
	return out
}

// ServeBatch routes requests to their segments and services each busy
// drive's sub-batch — every segment of this volume on that drive in one
// scheduler pass, so SPTF sees the drive's whole physical workload —
// with the given policy. Drives are serviced concurrently, one
// goroutine per busy drive, each under its Drive mutex, so the
// simulated elapsed time (the maximum over the drives' busy intervals)
// is also how the work is actually performed, even when other tenants
// share the drives. Completions are returned grouped by drive in
// first-use order (for classic volumes: disk order), in per-drive
// service order, each tagged with its segment index.
//
// ServeBatch must be serialized per volume with every other head-state
// mutator (see the package concurrency contract); concurrent callers go
// through an engine.Service instead of calling it directly.
func (v *Volume) ServeBatch(reqs []Request, policy disk.SchedPolicy) ([]Completion, float64, error) {
	ss := v.set.Load()
	sc, _ := v.scratch.Get().(*serveScratch)
	if sc == nil {
		sc = &serveScratch{}
	}
	defer func() {
		// Drop the per-drive completion slices before pooling: they are
		// owned by the disk layer, not the scratch.
		clear(sc.comps)
		v.scratch.Put(sc)
	}()
	sc.size(len(ss.drives), len(reqs))
	counts, routed, onDrive := sc.counts, sc.routed, sc.onDrive
	// Route: one pass to locate and validate, counting per-drive load.
	for i, r := range reqs {
		si, off, err := ss.locate(r.VLBN)
		if err != nil {
			return nil, 0, err
		}
		seg := &ss.segs[si]
		if off+int64(r.Count) > seg.blocks {
			return nil, 0, fmt.Errorf("lvm: request [%d,+%d) crosses disk %d segment end",
				r.VLBN, r.Count, si)
		}
		k := ss.driveIdx[seg.drive]
		routed[i] = disk.Request{LBN: seg.physStart + off, Count: r.Count}
		onDrive[i] = k
		counts[k]++
	}
	perDrive := sc.perDrive
	busy := 0
	for _, n := range counts {
		if n > 0 {
			busy++
		}
	}
	for i, r := range routed {
		perDrive[onDrive[i]] = append(perDrive[onDrive[i]], r)
	}

	comps, errs, busyMs := sc.comps, sc.errs, sc.busyMs
	serve := func(k int) {
		dr := ss.drives[k]
		dr.mu.Lock()
		start := dr.d.NowMs()
		comps[k], errs[k] = dr.d.ServeBatch(perDrive[k], policy)
		busyMs[k] = dr.d.NowMs() - start
		dr.mu.Unlock()
	}
	if busy == 1 {
		// Common single-drive path: no goroutine overhead.
		for k := range perDrive {
			if len(perDrive[k]) > 0 {
				serve(k)
			}
		}
	} else if busy > 1 {
		var wg sync.WaitGroup
		for k := range perDrive {
			if len(perDrive[k]) == 0 {
				continue
			}
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				serve(k)
			}(k)
		}
		wg.Wait()
	}

	var elapsed float64
	out := make([]Completion, 0, len(reqs))
	for k := range ss.drives {
		if len(perDrive[k]) == 0 {
			continue
		}
		if errs[k] != nil {
			return nil, 0, errs[k]
		}
		if busyMs[k] > elapsed {
			elapsed = busyMs[k]
		}
		for _, c := range comps[k] {
			si := ss.segOnDrive(k, c.Req.LBN)
			seg := &ss.segs[si]
			out = append(out, Completion{
				Req:      Request{VLBN: seg.startVLBN + (c.Req.LBN - seg.physStart), Count: c.Req.Count},
				DiskIdx:  si,
				Cost:     c.Cost,
				FinishMs: c.FinishMs,
			})
		}
	}
	return out, elapsed, nil
}

// Extend appends extents to the volume, growing its VLBN space online —
// the lvextend of the simulated stack. Growth is append-only: existing
// segment indices, their DiskStart/DiskBlocks, and every mapped VLBN
// are unchanged, so concurrent readers (and the service loop mid-batch)
// observe either the old or the new snapshot, both valid.
func (v *Volume) Extend(extents []Extent) error {
	if len(extents) == 0 {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	ss := v.set.Load()
	segs := append(make([]segment, 0, len(ss.segs)+len(extents)), ss.segs...)
	off := ss.total
	for _, e := range extents {
		if err := checkExtent(e, v.adjDepth); err != nil {
			return err
		}
		segs = append(segs, segment{
			drive:     e.Drive,
			physStart: e.PhysStart,
			blocks:    e.Blocks,
			startVLBN: off,
			cow:       e.COW,
		})
		off += e.Blocks
	}
	v.set.Store(buildSegSet(segs))
	return nil
}

// MarkCOW flips every segment to copy-on-write: the volume keeps
// reading the blocks it maps, but the next write to any track must
// fault it into a private extent first (CowSpans/ResolveCOW). The pool
// calls this on a parent volume when it is snapshotted — the frozen
// extents now belong to the snapshot, and the parent breaks sharing on
// write exactly like a clone does.
func (v *Volume) MarkCOW() {
	v.mu.Lock()
	defer v.mu.Unlock()
	ss := v.set.Load()
	segs := append([]segment(nil), ss.segs...)
	for i := range segs {
		segs[i].cow = true
	}
	v.set.Store(buildSegSet(segs))
}

// Extents returns the volume's current extent table in VLBN order,
// with COW marks. The pool uses it to freeze a snapshot's view.
func (v *Volume) Extents() []Extent {
	ss := v.set.Load()
	out := make([]Extent, len(ss.segs))
	for i := range ss.segs {
		s := &ss.segs[i]
		out[i] = Extent{Drive: s.drive, PhysStart: s.physStart, Blocks: s.blocks, COW: s.cow}
	}
	return out
}

// SetCowAlloc installs the pool's allocator for private COW
// replacement extents. Volumes without one (classic volumes, and pool
// volumes never snapshotted or cloned) never need it: CowSpans returns
// nil when nothing is copy-on-write.
func (v *Volume) SetCowAlloc(f CowAllocFunc) {
	v.mu.Lock()
	v.cowAlloc = f
	v.mu.Unlock()
}

// CowSpans returns the track-granule spans of reqs that still map to
// copy-on-write extents, merged per segment and in VLBN order — the
// fault set a write must read (at the shared parent location) and then
// resolve (ResolveCOW) before its own I/O is issued. Nil when the
// volume has no COW segments, which the common case detects with one
// atomic load. Request ranges outside the volume are ignored here; the
// write path surfaces those as routing errors.
func (v *Volume) CowSpans(reqs []Request) []Request {
	ss := v.set.Load()
	if !ss.hasCow {
		return nil
	}
	type span struct {
		seg        int
		start, end int64
	}
	var spans []span
	for _, r := range reqs {
		lo, hi := r.VLBN, r.VLBN+int64(r.Count)
		lo = max(lo, 0)
		hi = min(hi, ss.total)
		for lo < hi {
			si, off, err := ss.locate(lo)
			if err != nil {
				break
			}
			seg := &ss.segs[si]
			cur := min(hi, seg.endVLBN())
			if seg.cow {
				g := seg.drive.Geometry()
				start, end := lo, cur
				if s, _, err := g.TrackBoundaries(seg.physStart + off); err == nil {
					start = max(seg.startVLBN, seg.startVLBN+(s-seg.physStart))
				}
				if _, n, err := g.TrackBoundaries(seg.physStart + (cur - 1 - seg.startVLBN)); err == nil {
					end = min(seg.endVLBN(), seg.startVLBN+(n-seg.physStart))
				}
				spans = append(spans, span{seg: si, start: start, end: end})
			}
			lo = cur
		}
	}
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
	merged := spans[:1]
	for _, sp := range spans[1:] {
		last := &merged[len(merged)-1]
		if sp.seg == last.seg && sp.start <= last.end {
			last.end = max(last.end, sp.end)
			continue
		}
		merged = append(merged, sp)
	}
	out := make([]Request, len(merged))
	for i, sp := range merged {
		out[i] = Request{VLBN: sp.start, Count: int(sp.end - sp.start)}
	}
	return out
}

// ResolveCOW breaks sharing under the given fault spans: each span (as
// returned by CowSpans, after its fault read has been served at the
// shared location) is remapped onto a freshly allocated private extent.
// The segment table is republished atomically; VLBNs never change, only
// their physical mapping, so cached extents and mapping state stay
// valid. Splitting renumbers segment indices, so callers must re-derive
// segment boundaries (Locate, DiskBlocks) after a resolve — the engine
// write path does exactly that before issuing the write I/O.
func (v *Volume) ResolveCOW(spans []Request) error {
	if len(spans) == 0 {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.cowAlloc == nil {
		return fmt.Errorf("lvm: COW fault without an allocator (volume not pool-backed)")
	}
	segs := append([]segment(nil), v.set.Load().segs...)
	for _, sp := range spans {
		// Locate against the evolving table: earlier spans in this call
		// have already split segments.
		si := sort.Search(len(segs), func(i int) bool { return segs[i].startVLBN > sp.VLBN }) - 1
		if si < 0 {
			return fmt.Errorf("lvm: COW span at VLBN %d out of range", sp.VLBN)
		}
		seg := segs[si]
		spStart, spEnd := sp.VLBN, sp.VLBN+int64(sp.Count)
		if spEnd > seg.endVLBN() {
			return fmt.Errorf("lvm: COW span [%d,+%d) crosses segment boundary", sp.VLBN, sp.Count)
		}
		if !seg.cow {
			continue
		}
		tl := seg.drive.Geometry().TrackLen(seg.physStart + (spStart - seg.startVLBN))
		dr, phys, err := v.cowAlloc(seg.drive, tl, int64(sp.Count))
		if err != nil {
			return fmt.Errorf("lvm: COW allocation failed: %w", err)
		}
		repl := make([]segment, 0, 3)
		if spStart > seg.startVLBN {
			pre := seg
			pre.blocks = spStart - seg.startVLBN
			repl = append(repl, pre)
		}
		repl = append(repl, segment{drive: dr, physStart: phys, blocks: int64(sp.Count), startVLBN: spStart})
		if spEnd < seg.endVLBN() {
			post := seg
			post.physStart += spEnd - seg.startVLBN
			post.blocks = seg.endVLBN() - spEnd
			post.startVLBN = spEnd
			repl = append(repl, post)
		}
		ns := make([]segment, 0, len(segs)+len(repl)-1)
		ns = append(ns, segs[:si]...)
		ns = append(ns, repl...)
		ns = append(ns, segs[si+1:]...)
		segs = ns
	}
	v.set.Store(buildSegSet(segs))
	return nil
}

// Reset restores every backing drive to its initial state. Like
// ServeBatch it mutates head state: under a running engine.Service it
// must be issued through the service (Service.Reset), which serializes
// it after every in-flight batch. On a pool volume Reset touches shared
// drives and is reserved for drive-owning volumes.
func (v *Volume) Reset() {
	ss := v.set.Load()
	for _, dr := range ss.drives {
		dr.mu.Lock()
		dr.d.Reset()
		dr.mu.Unlock()
	}
}

// Stats returns per-segment accumulated statistics of the backing
// drives (per-disk for classic volumes; pool segments sharing a drive
// repeat its stats).
func (v *Volume) Stats() []disk.Stats {
	ss := v.set.Load()
	out := make([]disk.Stats, len(ss.segs))
	for i := range ss.segs {
		out[i] = ss.segs[i].drive.d.Stats()
	}
	return out
}
