// Package lvm implements the logical volume manager of the paper's
// prototype (§5.1): it exports a single logical block address space over
// one or more simulated disks and exposes the adjacency model to
// applications through GetAdjacent and GetTrackBoundaries, without
// revealing disk-specific details.
//
// Volume LBNs (VLBNs) are the concatenation of the member disks'
// address spaces; chunk-grain declustering (§4.4) is provided by
// Declusterer. All adjacency relations stay within a single disk, as
// they must: adjacency is a property of one arm and one platter stack.
//
// # Concurrency contract
//
// A Volume's geometry queries (Locate, GetAdjacent, GetTrackBoundaries,
// Zones, ...) are read-only and safe for any number of goroutines. The
// head-state mutators — ServeBatch, Reset, and direct Disk access such
// as RandomizePosition — are NOT: they must be serialized by exactly
// one owner. In this codebase that owner is either a single synchronous
// caller (engine.Run, the experiment drivers) or the per-volume
// engine.Service loop goroutine, which concurrent sessions submit to
// over its queue; the public multimap.Volume routes Reset through that
// loop whenever a service is running. ServeBatch's own per-disk
// goroutines are internal: each member disk is touched only by its own
// goroutine within one ServeBatch call.
//
// The same ownership rule covers the service's extent cache over this
// volume's blocks: only the service loop may insert or invalidate
// cache entries. Writes reach the disks exclusively as service write
// ops, which invalidate every cached extent overlapping the mutated
// block ranges before the write's cost is charged — no other goroutine
// may mutate blocks behind the cache's back, or a later read would
// replay a stale extent's cost.
package lvm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/disk"
)

// DefaultAdjacencyDepth is the paper's evaluation setting (§5.3): both
// drives are configured with D = 128 adjacent blocks per LBN.
const DefaultAdjacencyDepth = 128

// Request is a contiguous read of Count blocks at a volume LBN.
type Request struct {
	VLBN  int64
	Count int
}

// Completion records one serviced request and the disk that served it.
type Completion struct {
	Req      Request
	DiskIdx  int
	Cost     disk.AccessCost
	FinishMs float64
}

// Volume is a logical volume over one or more simulated disks.
type Volume struct {
	disks    []*disk.Disk
	starts   []int64 // first VLBN of each disk's segment
	total    int64
	adjDepth int
}

// New builds a volume from disk geometries. Each geometry gets its own
// simulated drive. adjDepth is the exported adjacency depth D; pass 0
// for DefaultAdjacencyDepth. The depth is capped by every member disk's
// settle range.
func New(adjDepth int, geoms ...*disk.Geometry) (*Volume, error) {
	if len(geoms) == 0 {
		return nil, fmt.Errorf("lvm: volume needs at least one disk")
	}
	if adjDepth == 0 {
		adjDepth = DefaultAdjacencyDepth
	}
	if adjDepth < 1 {
		return nil, fmt.Errorf("lvm: adjacency depth %d must be positive", adjDepth)
	}
	v := &Volume{adjDepth: adjDepth}
	var off int64
	for _, g := range geoms {
		if span := g.AdjSpan(); adjDepth > span {
			return nil, fmt.Errorf("lvm: adjacency depth %d exceeds %s settle span %d",
				adjDepth, g.Name, span)
		}
		v.disks = append(v.disks, disk.New(g))
		v.starts = append(v.starts, off)
		off += g.TotalBlocks()
	}
	v.total = off
	return v, nil
}

// NewLike builds a fresh volume mirroring v's hardware: the same
// member-disk geometries in the same order, the same adjacency depth,
// and pristine head state. Sharded stores use it to spawn per-shard
// volumes identical to the primary. Geometries are immutable and safely
// shared between the volumes.
func NewLike(v *Volume) *Volume {
	geoms := make([]*disk.Geometry, len(v.disks))
	for i, d := range v.disks {
		geoms[i] = d.Geometry()
	}
	// New validated these exact inputs when v was built, so it cannot
	// fail here.
	nv, err := New(v.adjDepth, geoms...)
	if err != nil {
		panic(fmt.Sprintf("lvm: NewLike on a valid volume failed: %v", err))
	}
	return nv
}

// AdjacencyDepth returns the exported D: how many adjacent blocks each
// VLBN has (fewer only near the end of a disk).
func (v *Volume) AdjacencyDepth() int { return v.adjDepth }

// NumDisks returns the number of member disks.
func (v *Volume) NumDisks() int { return len(v.disks) }

// Disk returns the i-th member drive (for statistics and inspection).
func (v *Volume) Disk(i int) *disk.Disk { return v.disks[i] }

// TotalBlocks returns the volume capacity in blocks.
func (v *Volume) TotalBlocks() int64 { return v.total }

// Locate resolves a VLBN to (disk index, disk-local LBN).
func (v *Volume) Locate(vlbn int64) (diskIdx int, lbn int64, err error) {
	if vlbn < 0 || vlbn >= v.total {
		return 0, 0, fmt.Errorf("lvm: VLBN %d out of range [0,%d)", vlbn, v.total)
	}
	i := sort.Search(len(v.starts), func(i int) bool { return v.starts[i] > vlbn }) - 1
	return i, vlbn - v.starts[i], nil
}

// VLBN converts a disk-local LBN back to a volume LBN.
func (v *Volume) VLBN(diskIdx int, lbn int64) int64 { return v.starts[diskIdx] + lbn }

// DiskStart returns the first VLBN of disk i's segment.
func (v *Volume) DiskStart(diskIdx int) int64 { return v.starts[diskIdx] }

// DiskBlocks returns the capacity, in blocks, of disk i's segment.
func (v *Volume) DiskBlocks(diskIdx int) int64 {
	return v.disks[diskIdx].Geometry().TotalBlocks()
}

// GetAdjacent returns up to d adjacent blocks of vlbn (d <= D), the
// interface call of §3.2. Adjacency never crosses disks; near the end
// of a disk the list is shorter.
func (v *Volume) GetAdjacent(vlbn int64, d int) ([]int64, error) {
	if d < 1 || d > v.adjDepth {
		return nil, fmt.Errorf("lvm: requested depth %d out of [1,%d]", d, v.adjDepth)
	}
	di, lbn, err := v.Locate(vlbn)
	if err != nil {
		return nil, err
	}
	adjs, err := v.disks[di].Geometry().Adjacent(lbn, d)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(adjs))
	for i, a := range adjs {
		out[i] = v.VLBN(di, a)
	}
	return out, nil
}

// GetAdjacentK returns the k-th adjacent block of vlbn (1 <= k <= D).
func (v *Volume) GetAdjacentK(vlbn int64, k int) (int64, error) {
	if k < 1 || k > v.adjDepth {
		return 0, fmt.Errorf("lvm: adjacency index %d out of [1,%d]", k, v.adjDepth)
	}
	di, lbn, err := v.Locate(vlbn)
	if err != nil {
		return 0, err
	}
	a, err := v.disks[di].Geometry().AdjacentBlock(lbn, k)
	if err != nil {
		return 0, err
	}
	return v.VLBN(di, a), nil
}

// GetTrackBoundaries returns the half-open VLBN interval of the track
// containing vlbn, the second interface call of §3.2.
func (v *Volume) GetTrackBoundaries(vlbn int64) (start, next int64, err error) {
	di, lbn, err := v.Locate(vlbn)
	if err != nil {
		return 0, 0, err
	}
	s, n, err := v.disks[di].Geometry().TrackBoundaries(lbn)
	if err != nil {
		return 0, 0, err
	}
	return v.VLBN(di, s), v.VLBN(di, n), nil
}

// TrackLen returns the track length (the paper's T) at vlbn.
func (v *Volume) TrackLen(vlbn int64) (int, error) {
	di, lbn, err := v.Locate(vlbn)
	if err != nil {
		return 0, err
	}
	return v.disks[di].Geometry().TrackLen(lbn), nil
}

// ZoneExtent describes a run of same-track-length cylinders on one
// member disk, in volume coordinates. MultiMap sizes basic cubes per
// zone and never maps a cube across a zone boundary.
type ZoneExtent struct {
	DiskIdx   int
	StartVLBN int64
	Blocks    int64
	TrackLen  int
	Tracks    int
}

// Zones enumerates the zone extents of every member disk in VLBN order.
func (v *Volume) Zones() []ZoneExtent {
	var out []ZoneExtent
	for di, d := range v.disks {
		g := d.Geometry()
		for zi := 0; zi < g.NumZones(); zi++ {
			z := g.ZoneByIndex(zi)
			nTracks := z.Cylinders() * g.Surfaces
			out = append(out, ZoneExtent{
				DiskIdx:   di,
				StartVLBN: v.VLBN(di, z.StartLBN()),
				Blocks:    int64(nTracks) * int64(z.SectorsPerTrack),
				TrackLen:  z.SectorsPerTrack,
				Tracks:    nTracks,
			})
		}
	}
	return out
}

// ServeBatch routes requests to their disks and services each disk's
// sub-batch with the given policy. Member disks are serviced
// concurrently — one goroutine per busy drive, each drive touched only
// by its own goroutine — so the simulated elapsed time (the maximum
// over the member disks' busy intervals) is also how the work is
// actually performed. Completions are returned grouped by disk, in
// per-disk service order.
//
// ServeBatch mutates head state and must be serialized with every
// other mutator (see the package concurrency contract); concurrent
// callers go through an engine.Service instead of calling it directly.
func (v *Volume) ServeBatch(reqs []Request, policy disk.SchedPolicy) ([]Completion, float64, error) {
	// Route: one pass to locate and validate, counting per-disk load so
	// the sub-batches are allocated exactly once.
	counts := make([]int, len(v.disks))
	routed := make([]disk.Request, len(reqs))
	disks := make([]int, len(reqs))
	for i, r := range reqs {
		di, lbn, err := v.Locate(r.VLBN)
		if err != nil {
			return nil, 0, err
		}
		if lbn+int64(r.Count) > v.DiskBlocks(di) {
			return nil, 0, fmt.Errorf("lvm: request [%d,+%d) crosses disk %d segment end",
				r.VLBN, r.Count, di)
		}
		routed[i] = disk.Request{LBN: lbn, Count: r.Count}
		disks[i] = di
		counts[di]++
	}
	perDisk := make([][]disk.Request, len(v.disks))
	busy := 0
	for di, n := range counts {
		if n > 0 {
			perDisk[di] = make([]disk.Request, 0, n)
			busy++
		}
	}
	for i, r := range routed {
		perDisk[disks[i]] = append(perDisk[disks[i]], r)
	}

	comps := make([][]disk.Completion, len(v.disks))
	errs := make([]error, len(v.disks))
	starts := make([]float64, len(v.disks))
	serve := func(di int) {
		d := v.disks[di]
		starts[di] = d.NowMs()
		comps[di], errs[di] = d.ServeBatch(perDisk[di], policy)
	}
	if busy == 1 {
		// Common single-disk path: no goroutine overhead.
		for di := range perDisk {
			if len(perDisk[di]) > 0 {
				serve(di)
			}
		}
	} else if busy > 1 {
		var wg sync.WaitGroup
		for di := range perDisk {
			if len(perDisk[di]) == 0 {
				continue
			}
			wg.Add(1)
			go func(di int) {
				defer wg.Done()
				serve(di)
			}(di)
		}
		wg.Wait()
	}

	var elapsed float64
	out := make([]Completion, 0, len(reqs))
	for di := range v.disks {
		if len(perDisk[di]) == 0 {
			continue
		}
		if errs[di] != nil {
			return nil, 0, errs[di]
		}
		if b := v.disks[di].NowMs() - starts[di]; b > elapsed {
			elapsed = b
		}
		for _, c := range comps[di] {
			out = append(out, Completion{
				Req:      Request{VLBN: v.VLBN(di, c.Req.LBN), Count: c.Req.Count},
				DiskIdx:  di,
				Cost:     c.Cost,
				FinishMs: c.FinishMs,
			})
		}
	}
	return out, elapsed, nil
}

// Reset restores every member disk to its initial state. Like
// ServeBatch it mutates head state: under a running engine.Service it
// must be issued through the service (Service.Reset), which serializes
// it after every in-flight batch.
func (v *Volume) Reset() {
	for _, d := range v.disks {
		d.Reset()
	}
}

// Stats returns per-disk accumulated statistics.
func (v *Volume) Stats() []disk.Stats {
	out := make([]disk.Stats, len(v.disks))
	for i, d := range v.disks {
		out[i] = d.Stats()
	}
	return out
}
