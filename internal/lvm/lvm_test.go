package lvm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/disk"
)

func twoDiskVolume(t *testing.T) *Volume {
	t.Helper()
	v, err := New(16, disk.SmallTestDisk(), disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("empty volume accepted")
	}
	if _, err := New(-1, disk.SmallTestDisk()); err == nil {
		t.Error("negative depth accepted")
	}
	g := disk.SmallTestDisk()
	if _, err := New(g.AdjSpan()+1, g); err == nil {
		t.Error("depth beyond settle span accepted")
	}
	v, err := New(0, disk.AtlasTenKIII())
	if err != nil {
		t.Fatal(err)
	}
	if v.AdjacencyDepth() != DefaultAdjacencyDepth {
		t.Errorf("default depth %d, want %d", v.AdjacencyDepth(), DefaultAdjacencyDepth)
	}
}

func TestLocateRoundTrip(t *testing.T) {
	v := twoDiskVolume(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vlbn := rng.Int63n(v.TotalBlocks())
		di, lbn, err := v.Locate(vlbn)
		if err != nil {
			return false
		}
		return v.VLBN(di, lbn) == vlbn && lbn >= 0 && lbn < v.DiskBlocks(di)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if _, _, err := v.Locate(-1); err == nil {
		t.Error("negative VLBN accepted")
	}
	if _, _, err := v.Locate(v.TotalBlocks()); err == nil {
		t.Error("VLBN past end accepted")
	}
}

func TestSegmentBoundaries(t *testing.T) {
	v := twoDiskVolume(t)
	d0 := v.DiskBlocks(0)
	di, lbn, err := v.Locate(d0 - 1)
	if err != nil || di != 0 || lbn != d0-1 {
		t.Fatalf("last block of disk 0: got (%d,%d,%v)", di, lbn, err)
	}
	di, lbn, err = v.Locate(d0)
	if err != nil || di != 1 || lbn != 0 {
		t.Fatalf("first block of disk 1: got (%d,%d,%v)", di, lbn, err)
	}
}

func TestGetAdjacentMatchesDisk(t *testing.T) {
	v := twoDiskVolume(t)
	g := v.Disk(1).Geometry()
	lbn := int64(100)
	vlbn := v.VLBN(1, lbn)
	want, err := g.Adjacent(lbn, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.GetAdjacent(vlbn, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d adjacents, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != v.VLBN(1, want[i]) {
			t.Fatalf("adjacent %d: got %d, want %d", i, got[i], v.VLBN(1, want[i]))
		}
		// Adjacency must never leave the disk segment.
		di, _, _ := v.Locate(got[i])
		if di != 1 {
			t.Fatalf("adjacency crossed disks")
		}
	}
	k2, err := v.GetAdjacentK(vlbn, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k2 != got[1] {
		t.Fatalf("GetAdjacentK(2)=%d, want %d", k2, got[1])
	}
}

func TestGetAdjacentDepthLimit(t *testing.T) {
	v := twoDiskVolume(t)
	if _, err := v.GetAdjacent(0, v.AdjacencyDepth()+1); err == nil {
		t.Error("depth beyond D accepted")
	}
	if _, err := v.GetAdjacentK(0, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestGetTrackBoundaries(t *testing.T) {
	v := twoDiskVolume(t)
	vlbn := v.VLBN(1, 57)
	start, next, err := v.GetTrackBoundaries(vlbn)
	if err != nil {
		t.Fatal(err)
	}
	if vlbn < start || vlbn >= next {
		t.Fatalf("vlbn outside its track boundaries")
	}
	tl, err := v.TrackLen(vlbn)
	if err != nil {
		t.Fatal(err)
	}
	if int(next-start) != tl {
		t.Fatalf("track interval %d != track length %d", next-start, tl)
	}
}

func TestZonesCoverVolume(t *testing.T) {
	v := twoDiskVolume(t)
	zones := v.Zones()
	var blocks int64
	for i, z := range zones {
		blocks += z.Blocks
		if z.Blocks != int64(z.Tracks)*int64(z.TrackLen) {
			t.Fatalf("zone %d: blocks %d != tracks*tracklen", i, z.Blocks)
		}
	}
	if blocks != v.TotalBlocks() {
		t.Fatalf("zones cover %d blocks, volume has %d", blocks, v.TotalBlocks())
	}
}

// TestLocateSegmentEdges pins the binary-search Locate on every segment
// boundary of a multi-disk volume: the first and last VLBN of each
// member segment must resolve to that disk, with exact local LBNs.
func TestLocateSegmentEdges(t *testing.T) {
	v, err := New(16, disk.SmallTestDisk(), disk.SmallTestDisk(), disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	for di := 0; di < v.NumDisks(); di++ {
		first := v.DiskStart(di)
		last := first + v.DiskBlocks(di) - 1
		gd, lbn, err := v.Locate(first)
		if err != nil || gd != di || lbn != 0 {
			t.Errorf("Locate(first of disk %d) = (%d,%d,%v), want (%d,0)", di, gd, lbn, err, di)
		}
		gd, lbn, err = v.Locate(last)
		if err != nil || gd != di || lbn != v.DiskBlocks(di)-1 {
			t.Errorf("Locate(last of disk %d) = (%d,%d,%v), want (%d,%d)",
				di, gd, lbn, err, di, v.DiskBlocks(di)-1)
		}
	}
}

// TestServeBatchConcurrentDisks drives large batches across all member
// disks of a multi-disk volume repeatedly; under -race this verifies
// that the per-disk goroutines never share drive state.
func TestServeBatchConcurrentDisks(t *testing.T) {
	v, err := New(16, disk.SmallTestDisk(), disk.SmallTestDisk(), disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 5; round++ {
		reqs := make([]Request, 300)
		for i := range reqs {
			reqs[i] = Request{VLBN: rng.Int63n(v.TotalBlocks() - 4), Count: 1 + rng.Intn(4)}
		}
		// Keep requests inside their disk segment.
		for i := range reqs {
			di, lbn, err := v.Locate(reqs[i].VLBN)
			if err != nil {
				t.Fatal(err)
			}
			if over := lbn + int64(reqs[i].Count) - v.DiskBlocks(di); over > 0 {
				reqs[i].VLBN -= over
			}
		}
		comps, elapsed, err := v.ServeBatch(reqs, disk.SchedSPTF)
		if err != nil {
			t.Fatal(err)
		}
		if len(comps) != len(reqs) {
			t.Fatalf("round %d: %d completions for %d requests", round, len(comps), len(reqs))
		}
		// Elapsed is the max per-disk busy time, so it can never exceed
		// the serial sum and must be positive.
		var sum float64
		for _, c := range comps {
			sum += c.Cost.TotalMs()
		}
		if elapsed <= 0 || elapsed > sum {
			t.Fatalf("round %d: elapsed %.3f outside (0, %.3f]", round, elapsed, sum)
		}
	}
	s := v.Stats()
	var served int64
	for _, st := range s {
		served += st.Requests
	}
	if served != 5*300 {
		t.Fatalf("disks served %d requests in total, want %d", served, 5*300)
	}
}

func TestServeBatchRoutesToDisks(t *testing.T) {
	v := twoDiskVolume(t)
	reqs := []Request{
		{VLBN: 10, Count: 2},
		{VLBN: v.DiskStart(1) + 20, Count: 1},
		{VLBN: 30, Count: 1},
	}
	comps, elapsed, err := v.ServeBatch(reqs, disk.SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("got %d completions", len(comps))
	}
	var on0, on1 int
	for _, c := range comps {
		switch c.DiskIdx {
		case 0:
			on0++
		case 1:
			on1++
		}
	}
	if on0 != 2 || on1 != 1 {
		t.Fatalf("routing wrong: %d on disk0, %d on disk1", on0, on1)
	}
	if elapsed <= 0 {
		t.Fatal("elapsed must be positive")
	}
	s := v.Stats()
	if s[0].Requests != 2 || s[1].Requests != 1 {
		t.Fatalf("per-disk stats wrong: %+v", s)
	}
}

func TestServeBatchParallelElapsed(t *testing.T) {
	// Elapsed for a batch split across two disks is the max per-disk
	// time, not the sum: disks position independently.
	v := twoDiskVolume(t)
	reqs := []Request{{VLBN: 1000, Count: 1}, {VLBN: v.DiskStart(1) + 1000, Count: 1}}
	comps, elapsed, err := v.ServeBatch(reqs, disk.SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	sum := comps[0].Cost.TotalMs() + comps[1].Cost.TotalMs()
	if elapsed >= sum {
		t.Fatalf("elapsed %.2f not better than serial %.2f", elapsed, sum)
	}
}

func TestServeBatchRejectsCrossSegment(t *testing.T) {
	v := twoDiskVolume(t)
	r := Request{VLBN: v.DiskStart(1) - 1, Count: 2}
	if _, _, err := v.ServeBatch([]Request{r}, disk.SchedFIFO); err == nil {
		t.Error("cross-segment request accepted")
	}
}

func TestReset(t *testing.T) {
	v := twoDiskVolume(t)
	if _, _, err := v.ServeBatch([]Request{{VLBN: 5, Count: 1}}, disk.SchedFIFO); err != nil {
		t.Fatal(err)
	}
	v.Reset()
	for i, s := range v.Stats() {
		if s.Requests != 0 {
			t.Fatalf("disk %d stats survived reset: %+v", i, s)
		}
	}
}

func TestDeclusterer(t *testing.T) {
	v := twoDiskVolume(t)
	d, err := NewDeclusterer(v, 100)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	var disks []int
	for i := 0; i < 10; i++ {
		vlbn, di, err := d.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if seen[vlbn] {
			t.Fatalf("unit %d allocated twice", vlbn)
		}
		seen[vlbn] = true
		disks = append(disks, di)
		// Unit must lie fully within its disk segment.
		ld, lbn, _ := v.Locate(vlbn)
		if ld != di || lbn%100 != 0 {
			t.Fatalf("unit at %d not unit-aligned on disk %d", vlbn, di)
		}
	}
	// Round-robin: alternating disks.
	for i := 1; i < len(disks); i++ {
		if disks[i] == disks[i-1] {
			t.Fatalf("round-robin broken: %v", disks)
		}
	}
	alloc := d.Allocated()
	if alloc[0]+alloc[1] != 10 {
		t.Fatalf("allocated %v, want total 10", alloc)
	}
}

func TestDeclustererAllocOn(t *testing.T) {
	v := twoDiskVolume(t)
	d, err := NewDeclusterer(v, 50)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.AllocOn(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.AllocOn(1)
	if err != nil {
		t.Fatal(err)
	}
	if b != a+50 {
		t.Fatalf("consecutive units on one disk not contiguous: %d then %d", a, b)
	}
	if _, err := d.AllocOn(7); err == nil {
		t.Error("bad disk index accepted")
	}
}

func TestDeclustererExhaustion(t *testing.T) {
	v, err := New(16, disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	unit := v.DiskBlocks(0) / 2
	d, err := NewDeclusterer(v, unit)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := d.Alloc(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, _, err := d.Alloc(); err == nil {
		t.Error("allocation past capacity accepted")
	}
	if _, err := NewDeclusterer(v, v.DiskBlocks(0)+1); err == nil {
		t.Error("unit larger than disk accepted")
	}
	if _, err := NewDeclusterer(v, 0); err == nil {
		t.Error("zero unit accepted")
	}
}

// zone0TL returns the track length of the geometry's first zone, the
// granule pool-style extents are aligned to in these tests.
func zone0TL(g *disk.Geometry) int64 {
	return int64(g.ZoneByIndex(0).SectorsPerTrack)
}

func TestNewFromExtentsValidation(t *testing.T) {
	g := disk.SmallTestDisk()
	dr := NewDrive(g)
	tl := zone0TL(g)
	if _, err := NewFromExtents(16, nil); err == nil {
		t.Error("empty extent list accepted")
	}
	if _, err := NewFromExtents(16, []Extent{{Drive: nil, Blocks: tl}}); err == nil {
		t.Error("extent without a drive accepted")
	}
	if _, err := NewFromExtents(16, []Extent{{Drive: dr, Blocks: 0}}); err == nil {
		t.Error("zero-block extent accepted")
	}
	if _, err := NewFromExtents(16, []Extent{{Drive: dr, PhysStart: -1, Blocks: tl}}); err == nil {
		t.Error("negative physical start accepted")
	}
	if _, err := NewFromExtents(16, []Extent{{Drive: dr, PhysStart: g.TotalBlocks() - 1, Blocks: 2}}); err == nil {
		t.Error("extent past drive capacity accepted")
	}
	if _, err := NewFromExtents(g.AdjSpan()+1, []Extent{{Drive: dr, Blocks: tl}}); err == nil {
		t.Error("depth beyond settle span accepted")
	}
	v, err := NewFromExtents(0, []Extent{{Drive: NewDrive(disk.AtlasTenKIII()), Blocks: tl}})
	if err != nil {
		t.Fatal(err)
	}
	if v.AdjacencyDepth() != DefaultAdjacencyDepth {
		t.Errorf("default depth %d, want %d", v.AdjacencyDepth(), DefaultAdjacencyDepth)
	}
}

// TestPoolExtentMapping pins the pool shape the classic tests never hit:
// two non-contiguous extents carved from ONE shared drive become two
// segments of one VLBN space, and ServeBatch routes and back-maps both
// through the single drive.
func TestPoolExtentMapping(t *testing.T) {
	g := disk.SmallTestDisk()
	dr := NewDrive(g)
	tl := zone0TL(g)
	v, err := NewFromExtents(16, []Extent{
		{Drive: dr, PhysStart: 0, Blocks: 4 * tl},
		{Drive: dr, PhysStart: 8 * tl, Blocks: 2 * tl},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.NumDisks() != 2 || v.TotalBlocks() != 6*tl {
		t.Fatalf("got %d segments over %d blocks, want 2 over %d", v.NumDisks(), v.TotalBlocks(), 6*tl)
	}
	if len(v.Drives()) != 1 {
		t.Fatalf("segments on one drive report %d distinct drives", len(v.Drives()))
	}
	if v.DiskStart(1) != 4*tl || v.DiskBlocks(1) != 2*tl {
		t.Fatalf("segment 1 at (%d,+%d), want (%d,+%d)", v.DiskStart(1), v.DiskBlocks(1), 4*tl, 2*tl)
	}
	// The VLBN space is contiguous across the physical gap.
	di, lbn, err := v.Locate(4*tl - 1)
	if err != nil || di != 0 || lbn != 4*tl-1 {
		t.Fatalf("last block of segment 0: got (%d,%d,%v)", di, lbn, err)
	}
	di, lbn, err = v.Locate(4 * tl)
	if err != nil || di != 1 || lbn != 0 {
		t.Fatalf("first block of segment 1: got (%d,%d,%v)", di, lbn, err)
	}
	comps, elapsed, err := v.ServeBatch([]Request{
		{VLBN: tl, Count: 2},
		{VLBN: 5 * tl, Count: 1},
	}, disk.SchedSPTF)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 || elapsed <= 0 {
		t.Fatalf("got %d completions, elapsed %.3f", len(comps), elapsed)
	}
	for _, c := range comps {
		want := 0
		if c.Req.VLBN >= 4*tl {
			want = 1
		}
		if c.DiskIdx != want {
			t.Fatalf("completion at VLBN %d tagged segment %d, want %d", c.Req.VLBN, c.DiskIdx, want)
		}
	}
}

// TestExtendAppendOnly verifies online growth: extents append to the
// VLBN space, and every pre-growth address — segment index, start, and
// local LBN — is bit-identical afterwards.
func TestExtendAppendOnly(t *testing.T) {
	g := disk.SmallTestDisk()
	dr := NewDrive(g)
	tl := zone0TL(g)
	v, err := NewFromExtents(16, []Extent{{Drive: dr, PhysStart: 0, Blocks: 4 * tl}})
	if err != nil {
		t.Fatal(err)
	}
	type loc struct {
		di  int
		lbn int64
	}
	pre := map[int64]loc{}
	for vlbn := int64(0); vlbn < v.TotalBlocks(); vlbn += tl / 2 {
		di, lbn, err := v.Locate(vlbn)
		if err != nil {
			t.Fatal(err)
		}
		pre[vlbn] = loc{di, lbn}
	}
	if err := v.Extend(nil); err != nil {
		t.Fatal(err)
	}
	if v.NumDisks() != 1 {
		t.Fatal("empty Extend changed the segment table")
	}
	// A bad extent must reject the whole call without publishing.
	if err := v.Extend([]Extent{{Drive: dr, PhysStart: 6 * tl, Blocks: 0}}); err == nil {
		t.Error("zero-block growth extent accepted")
	}
	if v.NumDisks() != 1 || v.TotalBlocks() != 4*tl {
		t.Fatal("failed Extend mutated the volume")
	}
	dr2 := NewDrive(disk.SmallTestDisk())
	if err := v.Extend([]Extent{
		{Drive: dr, PhysStart: 6 * tl, Blocks: 2 * tl},
		{Drive: dr2, PhysStart: 0, Blocks: tl},
	}); err != nil {
		t.Fatal(err)
	}
	if v.NumDisks() != 3 || v.TotalBlocks() != 7*tl {
		t.Fatalf("grown to %d segments over %d blocks, want 3 over %d", v.NumDisks(), v.TotalBlocks(), 7*tl)
	}
	if v.DiskStart(1) != 4*tl || v.DiskStart(2) != 6*tl {
		t.Fatalf("new segments at %d and %d, want %d and %d", v.DiskStart(1), v.DiskStart(2), 4*tl, 6*tl)
	}
	if len(v.Drives()) != 2 {
		t.Fatalf("got %d distinct drives, want 2", len(v.Drives()))
	}
	for vlbn, want := range pre {
		di, lbn, err := v.Locate(vlbn)
		if err != nil || di != want.di || lbn != want.lbn {
			t.Fatalf("VLBN %d moved under growth: got (%d,%d,%v), want (%d,%d)",
				vlbn, di, lbn, err, want.di, want.lbn)
		}
	}
	// Growth can bring in copy-on-write extents (a clone growing over a
	// second snapshot generation); the fast-path flag must follow.
	if v.HasCOW() {
		t.Fatal("volume copy-on-write before any COW extent")
	}
	if err := v.Extend([]Extent{{Drive: dr2, PhysStart: 2 * tl, Blocks: tl, COW: true}}); err != nil {
		t.Fatal(err)
	}
	if !v.HasCOW() {
		t.Fatal("COW growth extent did not mark the volume")
	}
}

// TestCowSpansAndResolve walks the copy-on-write cycle at the lvm
// layer: MarkCOW freezes every segment, CowSpans widens dirty ranges to
// track granules, and ResolveCOW remaps each faulted span onto a
// private extent — splitting the segment in place while every VLBN keeps
// resolving, just onto new physical homes.
func TestCowSpansAndResolve(t *testing.T) {
	g := disk.SmallTestDisk()
	dr := NewDrive(g)
	tl := zone0TL(g)
	v, err := NewFromExtents(16, []Extent{{Drive: dr, PhysStart: 0, Blocks: 4 * tl}})
	if err != nil {
		t.Fatal(err)
	}
	if v.HasCOW() {
		t.Fatal("fresh volume reports COW segments")
	}
	if spans := v.CowSpans([]Request{{VLBN: 0, Count: int(v.TotalBlocks())}}); spans != nil {
		t.Fatalf("non-COW volume produced fault spans %v", spans)
	}
	v.MarkCOW()
	if !v.HasCOW() {
		t.Fatal("MarkCOW did not mark the volume")
	}

	// A sub-track write faults its whole containing track.
	faultVLBN := 2*tl + 3
	spans := v.CowSpans([]Request{{VLBN: faultVLBN, Count: 2}})
	if len(spans) != 1 {
		t.Fatalf("got %d fault spans, want 1", len(spans))
	}
	start, next, err := v.GetTrackBoundaries(faultVLBN)
	if err != nil {
		t.Fatal(err)
	}
	if spans[0].VLBN != start || int64(spans[0].Count) != next-start {
		t.Fatalf("fault span [%d,+%d), want the track [%d,%d)", spans[0].VLBN, spans[0].Count, start, next)
	}
	// A write crossing a track boundary faults both tracks as one span.
	wide := v.CowSpans([]Request{{VLBN: tl - 1, Count: 2}})
	if len(wide) != 1 || wide[0].VLBN != 0 || int64(wide[0].Count) != 2*tl {
		t.Fatalf("cross-track fault spans %v, want [0,+%d)", wide, 2*tl)
	}

	if err := v.ResolveCOW(spans); err == nil {
		t.Fatal("ResolveCOW without an allocator accepted")
	}
	v.SetCowAlloc(func(prefer *Drive, trackLen int, blocks int64) (*Drive, int64, error) {
		// Fresh drive per fault: trivially correct placement for a unit test.
		return NewDrive(disk.SmallTestDisk()), 0, nil
	})
	if err := v.ResolveCOW(spans); err != nil {
		t.Fatal(err)
	}
	// The middle-track fault splits the one segment into pre | private | post.
	if v.NumDisks() != 3 || v.TotalBlocks() != 4*tl {
		t.Fatalf("resolved volume has %d segments over %d blocks, want 3 over %d",
			v.NumDisks(), v.TotalBlocks(), 4*tl)
	}
	di, lbn, err := v.Locate(faultVLBN)
	if err != nil {
		t.Fatal(err)
	}
	if v.Disk(di) == dr.Disk() {
		t.Fatal("faulted VLBN still maps to the shared parent drive")
	}
	if got := v.VLBN(di, lbn); got != faultVLBN {
		t.Fatalf("faulted VLBN round-trips to %d", got)
	}
	for _, vlbn := range []int64{0, start - 1, next, 4*tl - 1} {
		di, _, err := v.Locate(vlbn)
		if err != nil {
			t.Fatal(err)
		}
		if v.Disk(di) != dr.Disk() {
			t.Fatalf("unfaulted VLBN %d moved off the parent drive", vlbn)
		}
	}
	// The resolved track is private now: no further faults there, while
	// the surrounding segments stay copy-on-write.
	if spans := v.CowSpans([]Request{{VLBN: faultVLBN, Count: 1}}); spans != nil {
		t.Fatalf("resolved track still faults: %v", spans)
	}
	if !v.HasCOW() {
		t.Fatal("surrounding segments lost their COW mark")
	}

	// Resolving every remaining span clears the volume's COW state.
	rest := v.CowSpans([]Request{{VLBN: 0, Count: int(v.TotalBlocks())}})
	if len(rest) != 2 {
		t.Fatalf("got %d remaining fault spans, want 2 (pre and post segments)", len(rest))
	}
	if err := v.ResolveCOW(rest); err != nil {
		t.Fatal(err)
	}
	if v.HasCOW() {
		t.Fatal("fully resolved volume still reports COW segments")
	}
	if spans := v.CowSpans([]Request{{VLBN: 0, Count: int(v.TotalBlocks())}}); spans != nil {
		t.Fatalf("fully resolved volume produced fault spans %v", spans)
	}

	// Allocator failure surfaces as an error, not a corrupt table.
	v.MarkCOW()
	v.SetCowAlloc(func(prefer *Drive, trackLen int, blocks int64) (*Drive, int64, error) {
		return nil, 0, fmt.Errorf("pool exhausted")
	})
	before := v.NumDisks()
	if err := v.ResolveCOW(v.CowSpans([]Request{{VLBN: 0, Count: 1}})); err == nil {
		t.Fatal("allocator failure swallowed")
	}
	if v.NumDisks() != before {
		t.Fatal("failed resolve republished the segment table")
	}

	// A span crossing a segment boundary is a caller bug and must be
	// rejected: CowSpans never produces one.
	if err := v.ResolveCOW([]Request{{VLBN: v.DiskStart(1) - 1, Count: 2}}); err == nil {
		t.Fatal("cross-segment COW span accepted")
	}
}
