package lvm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/disk"
)

func twoDiskVolume(t *testing.T) *Volume {
	t.Helper()
	v, err := New(16, disk.SmallTestDisk(), disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("empty volume accepted")
	}
	if _, err := New(-1, disk.SmallTestDisk()); err == nil {
		t.Error("negative depth accepted")
	}
	g := disk.SmallTestDisk()
	if _, err := New(g.AdjSpan()+1, g); err == nil {
		t.Error("depth beyond settle span accepted")
	}
	v, err := New(0, disk.AtlasTenKIII())
	if err != nil {
		t.Fatal(err)
	}
	if v.AdjacencyDepth() != DefaultAdjacencyDepth {
		t.Errorf("default depth %d, want %d", v.AdjacencyDepth(), DefaultAdjacencyDepth)
	}
}

func TestLocateRoundTrip(t *testing.T) {
	v := twoDiskVolume(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vlbn := rng.Int63n(v.TotalBlocks())
		di, lbn, err := v.Locate(vlbn)
		if err != nil {
			return false
		}
		return v.VLBN(di, lbn) == vlbn && lbn >= 0 && lbn < v.DiskBlocks(di)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if _, _, err := v.Locate(-1); err == nil {
		t.Error("negative VLBN accepted")
	}
	if _, _, err := v.Locate(v.TotalBlocks()); err == nil {
		t.Error("VLBN past end accepted")
	}
}

func TestSegmentBoundaries(t *testing.T) {
	v := twoDiskVolume(t)
	d0 := v.DiskBlocks(0)
	di, lbn, err := v.Locate(d0 - 1)
	if err != nil || di != 0 || lbn != d0-1 {
		t.Fatalf("last block of disk 0: got (%d,%d,%v)", di, lbn, err)
	}
	di, lbn, err = v.Locate(d0)
	if err != nil || di != 1 || lbn != 0 {
		t.Fatalf("first block of disk 1: got (%d,%d,%v)", di, lbn, err)
	}
}

func TestGetAdjacentMatchesDisk(t *testing.T) {
	v := twoDiskVolume(t)
	g := v.Disk(1).Geometry()
	lbn := int64(100)
	vlbn := v.VLBN(1, lbn)
	want, err := g.Adjacent(lbn, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.GetAdjacent(vlbn, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d adjacents, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != v.VLBN(1, want[i]) {
			t.Fatalf("adjacent %d: got %d, want %d", i, got[i], v.VLBN(1, want[i]))
		}
		// Adjacency must never leave the disk segment.
		di, _, _ := v.Locate(got[i])
		if di != 1 {
			t.Fatalf("adjacency crossed disks")
		}
	}
	k2, err := v.GetAdjacentK(vlbn, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k2 != got[1] {
		t.Fatalf("GetAdjacentK(2)=%d, want %d", k2, got[1])
	}
}

func TestGetAdjacentDepthLimit(t *testing.T) {
	v := twoDiskVolume(t)
	if _, err := v.GetAdjacent(0, v.AdjacencyDepth()+1); err == nil {
		t.Error("depth beyond D accepted")
	}
	if _, err := v.GetAdjacentK(0, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestGetTrackBoundaries(t *testing.T) {
	v := twoDiskVolume(t)
	vlbn := v.VLBN(1, 57)
	start, next, err := v.GetTrackBoundaries(vlbn)
	if err != nil {
		t.Fatal(err)
	}
	if vlbn < start || vlbn >= next {
		t.Fatalf("vlbn outside its track boundaries")
	}
	tl, err := v.TrackLen(vlbn)
	if err != nil {
		t.Fatal(err)
	}
	if int(next-start) != tl {
		t.Fatalf("track interval %d != track length %d", next-start, tl)
	}
}

func TestZonesCoverVolume(t *testing.T) {
	v := twoDiskVolume(t)
	zones := v.Zones()
	var blocks int64
	for i, z := range zones {
		blocks += z.Blocks
		if z.Blocks != int64(z.Tracks)*int64(z.TrackLen) {
			t.Fatalf("zone %d: blocks %d != tracks*tracklen", i, z.Blocks)
		}
	}
	if blocks != v.TotalBlocks() {
		t.Fatalf("zones cover %d blocks, volume has %d", blocks, v.TotalBlocks())
	}
}

// TestLocateSegmentEdges pins the binary-search Locate on every segment
// boundary of a multi-disk volume: the first and last VLBN of each
// member segment must resolve to that disk, with exact local LBNs.
func TestLocateSegmentEdges(t *testing.T) {
	v, err := New(16, disk.SmallTestDisk(), disk.SmallTestDisk(), disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	for di := 0; di < v.NumDisks(); di++ {
		first := v.DiskStart(di)
		last := first + v.DiskBlocks(di) - 1
		gd, lbn, err := v.Locate(first)
		if err != nil || gd != di || lbn != 0 {
			t.Errorf("Locate(first of disk %d) = (%d,%d,%v), want (%d,0)", di, gd, lbn, err, di)
		}
		gd, lbn, err = v.Locate(last)
		if err != nil || gd != di || lbn != v.DiskBlocks(di)-1 {
			t.Errorf("Locate(last of disk %d) = (%d,%d,%v), want (%d,%d)",
				di, gd, lbn, err, di, v.DiskBlocks(di)-1)
		}
	}
}

// TestServeBatchConcurrentDisks drives large batches across all member
// disks of a multi-disk volume repeatedly; under -race this verifies
// that the per-disk goroutines never share drive state.
func TestServeBatchConcurrentDisks(t *testing.T) {
	v, err := New(16, disk.SmallTestDisk(), disk.SmallTestDisk(), disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 5; round++ {
		reqs := make([]Request, 300)
		for i := range reqs {
			reqs[i] = Request{VLBN: rng.Int63n(v.TotalBlocks() - 4), Count: 1 + rng.Intn(4)}
		}
		// Keep requests inside their disk segment.
		for i := range reqs {
			di, lbn, err := v.Locate(reqs[i].VLBN)
			if err != nil {
				t.Fatal(err)
			}
			if over := lbn + int64(reqs[i].Count) - v.DiskBlocks(di); over > 0 {
				reqs[i].VLBN -= over
			}
		}
		comps, elapsed, err := v.ServeBatch(reqs, disk.SchedSPTF)
		if err != nil {
			t.Fatal(err)
		}
		if len(comps) != len(reqs) {
			t.Fatalf("round %d: %d completions for %d requests", round, len(comps), len(reqs))
		}
		// Elapsed is the max per-disk busy time, so it can never exceed
		// the serial sum and must be positive.
		var sum float64
		for _, c := range comps {
			sum += c.Cost.TotalMs()
		}
		if elapsed <= 0 || elapsed > sum {
			t.Fatalf("round %d: elapsed %.3f outside (0, %.3f]", round, elapsed, sum)
		}
	}
	s := v.Stats()
	var served int64
	for _, st := range s {
		served += st.Requests
	}
	if served != 5*300 {
		t.Fatalf("disks served %d requests in total, want %d", served, 5*300)
	}
}

func TestServeBatchRoutesToDisks(t *testing.T) {
	v := twoDiskVolume(t)
	reqs := []Request{
		{VLBN: 10, Count: 2},
		{VLBN: v.DiskStart(1) + 20, Count: 1},
		{VLBN: 30, Count: 1},
	}
	comps, elapsed, err := v.ServeBatch(reqs, disk.SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("got %d completions", len(comps))
	}
	var on0, on1 int
	for _, c := range comps {
		switch c.DiskIdx {
		case 0:
			on0++
		case 1:
			on1++
		}
	}
	if on0 != 2 || on1 != 1 {
		t.Fatalf("routing wrong: %d on disk0, %d on disk1", on0, on1)
	}
	if elapsed <= 0 {
		t.Fatal("elapsed must be positive")
	}
	s := v.Stats()
	if s[0].Requests != 2 || s[1].Requests != 1 {
		t.Fatalf("per-disk stats wrong: %+v", s)
	}
}

func TestServeBatchParallelElapsed(t *testing.T) {
	// Elapsed for a batch split across two disks is the max per-disk
	// time, not the sum: disks position independently.
	v := twoDiskVolume(t)
	reqs := []Request{{VLBN: 1000, Count: 1}, {VLBN: v.DiskStart(1) + 1000, Count: 1}}
	comps, elapsed, err := v.ServeBatch(reqs, disk.SchedFIFO)
	if err != nil {
		t.Fatal(err)
	}
	sum := comps[0].Cost.TotalMs() + comps[1].Cost.TotalMs()
	if elapsed >= sum {
		t.Fatalf("elapsed %.2f not better than serial %.2f", elapsed, sum)
	}
}

func TestServeBatchRejectsCrossSegment(t *testing.T) {
	v := twoDiskVolume(t)
	r := Request{VLBN: v.DiskStart(1) - 1, Count: 2}
	if _, _, err := v.ServeBatch([]Request{r}, disk.SchedFIFO); err == nil {
		t.Error("cross-segment request accepted")
	}
}

func TestReset(t *testing.T) {
	v := twoDiskVolume(t)
	if _, _, err := v.ServeBatch([]Request{{VLBN: 5, Count: 1}}, disk.SchedFIFO); err != nil {
		t.Fatal(err)
	}
	v.Reset()
	for i, s := range v.Stats() {
		if s.Requests != 0 {
			t.Fatalf("disk %d stats survived reset: %+v", i, s)
		}
	}
}

func TestDeclusterer(t *testing.T) {
	v := twoDiskVolume(t)
	d, err := NewDeclusterer(v, 100)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	var disks []int
	for i := 0; i < 10; i++ {
		vlbn, di, err := d.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if seen[vlbn] {
			t.Fatalf("unit %d allocated twice", vlbn)
		}
		seen[vlbn] = true
		disks = append(disks, di)
		// Unit must lie fully within its disk segment.
		ld, lbn, _ := v.Locate(vlbn)
		if ld != di || lbn%100 != 0 {
			t.Fatalf("unit at %d not unit-aligned on disk %d", vlbn, di)
		}
	}
	// Round-robin: alternating disks.
	for i := 1; i < len(disks); i++ {
		if disks[i] == disks[i-1] {
			t.Fatalf("round-robin broken: %v", disks)
		}
	}
	alloc := d.Allocated()
	if alloc[0]+alloc[1] != 10 {
		t.Fatalf("allocated %v, want total 10", alloc)
	}
}

func TestDeclustererAllocOn(t *testing.T) {
	v := twoDiskVolume(t)
	d, err := NewDeclusterer(v, 50)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.AllocOn(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.AllocOn(1)
	if err != nil {
		t.Fatal(err)
	}
	if b != a+50 {
		t.Fatalf("consecutive units on one disk not contiguous: %d then %d", a, b)
	}
	if _, err := d.AllocOn(7); err == nil {
		t.Error("bad disk index accepted")
	}
}

func TestDeclustererExhaustion(t *testing.T) {
	v, err := New(16, disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	unit := v.DiskBlocks(0) / 2
	d, err := NewDeclusterer(v, unit)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := d.Alloc(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, _, err := d.Alloc(); err == nil {
		t.Error("allocation past capacity accepted")
	}
	if _, err := NewDeclusterer(v, v.DiskBlocks(0)+1); err == nil {
		t.Error("unit larger than disk accepted")
	}
	if _, err := NewDeclusterer(v, 0); err == nil {
		t.Error("zero unit accepted")
	}
}
