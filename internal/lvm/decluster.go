package lvm

import "fmt"

// Declusterer assigns fixed-size allocation units (the paper's basic
// cubes, §4.4) round-robin across the volume's disks, the way
// traditional volume managers decluster stripe units. Each disk's
// segment is carved into consecutive unit-sized extents.
type Declusterer struct {
	v          *Volume
	unitBlocks int64
	perDisk    []int64 // units that fit on each disk
	next       []int64 // next free unit index per disk
	rr         int     // round-robin cursor
}

// NewDeclusterer creates a declusterer with the given allocation unit
// size in blocks.
func NewDeclusterer(v *Volume, unitBlocks int64) (*Declusterer, error) {
	if unitBlocks <= 0 {
		return nil, fmt.Errorf("lvm: allocation unit must be positive, got %d", unitBlocks)
	}
	d := &Declusterer{v: v, unitBlocks: unitBlocks}
	for i := 0; i < v.NumDisks(); i++ {
		n := v.DiskBlocks(i) / unitBlocks
		if n == 0 {
			return nil, fmt.Errorf("lvm: disk %d smaller than one allocation unit", i)
		}
		d.perDisk = append(d.perDisk, n)
		d.next = append(d.next, 0)
	}
	return d, nil
}

// Alloc reserves the next allocation unit, rotating across disks, and
// returns its starting VLBN and disk index.
func (d *Declusterer) Alloc() (vlbn int64, diskIdx int, err error) {
	for tries := 0; tries < d.v.NumDisks(); tries++ {
		di := d.rr
		d.rr = (d.rr + 1) % d.v.NumDisks()
		if d.next[di] < d.perDisk[di] {
			u := d.next[di]
			d.next[di]++
			return d.v.DiskStart(di) + u*d.unitBlocks, di, nil
		}
	}
	return 0, 0, fmt.Errorf("lvm: volume full: all %d disks out of %d-block units",
		d.v.NumDisks(), d.unitBlocks)
}

// AllocOn reserves the next unit on a specific disk, for callers that
// manage placement themselves (e.g. MultiMap keeping a dataset chunk's
// basic cubes on one disk).
func (d *Declusterer) AllocOn(diskIdx int) (int64, error) {
	if diskIdx < 0 || diskIdx >= d.v.NumDisks() {
		return 0, fmt.Errorf("lvm: disk index %d out of range", diskIdx)
	}
	if d.next[diskIdx] >= d.perDisk[diskIdx] {
		return 0, fmt.Errorf("lvm: disk %d out of %d-block units", diskIdx, d.unitBlocks)
	}
	u := d.next[diskIdx]
	d.next[diskIdx]++
	return d.v.DiskStart(diskIdx) + u*d.unitBlocks, nil
}

// Allocated returns how many units have been reserved on each disk.
func (d *Declusterer) Allocated() []int64 {
	out := make([]int64, len(d.next))
	copy(out, d.next)
	return out
}
