package core

import "testing"

func TestNewCubeSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		k      []int
		t, d   int
		tracks int
		ok     bool
	}{
		{"paper 3d example", []int{5, 3, 3}, 5, 9, 9, true},
		{"paper 4d example", []int{5, 3, 3, 2}, 5, 9, 18, true},
		{"1d rejected", []int{5}, 5, 9, 9, false},
		{"eq1: K0 > T", []int{6, 3, 3}, 5, 9, 9, false},
		{"eq3: inner product > D", []int{5, 4, 3, 2}, 5, 9, 100, false},
		{"eq2: tracks exceed zone", []int{5, 3, 4}, 5, 9, 11, false},
		{"zero side", []int{5, 0, 3}, 5, 9, 9, false},
		{"2d minimal", []int{4, 7}, 4, 1, 7, true},
	}
	for _, tc := range cases {
		_, err := NewCubeSpec(tc.k, tc.t, tc.d, tc.tracks)
		if (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestCubeSpecDerived(t *testing.T) {
	s, err := NewCubeSpec([]int{5, 3, 3, 2}, 12, 9, 18)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 4 {
		t.Errorf("N=%d", s.N())
	}
	if s.Tracks() != 18 {
		t.Errorf("Tracks=%d, want 18", s.Tracks())
	}
	if s.Cells() != 90 {
		t.Errorf("Cells=%d, want 90", s.Cells())
	}
	// Strides per §4.2: Dim1 jumps 1, Dim2 jumps K1, Dim3 jumps K1*K2.
	for i, want := range []int{0, 1, 3, 9} {
		if i == 0 {
			continue
		}
		if got := s.Stride(i); got != want {
			t.Errorf("Stride(%d)=%d, want %d", i, got, want)
		}
	}
	if got := s.CubesPerTrack(12); got != 2 {
		t.Errorf("CubesPerTrack(12)=%d, want 2", got)
	}
	if got := s.CubesPerTrack(4); got != 0 {
		t.Errorf("CubesPerTrack(4)=%d, want 0", got)
	}
	if got := s.WastedFraction(12); got != 2.0/12 {
		t.Errorf("WastedFraction(12)=%v, want %v", got, 2.0/12)
	}
	if got := s.WastedFraction(4); got != 1.0 {
		t.Errorf("WastedFraction(4)=%v, want 1", got)
	}
}

func TestMaxDims(t *testing.T) {
	// Eq. 5: Nmax = 2 + log2(D).
	cases := map[int]int{1: 2, 2: 3, 4: 4, 128: 9, 256: 10, 1024: 12}
	for d, want := range cases {
		if got := MaxDims(d); got != want {
			t.Errorf("MaxDims(%d)=%d, want %d", d, got, want)
		}
	}
	// Paper: D on the order of hundreds allows more than 10 dimensions.
	if MaxDims(512) <= 10 {
		t.Error("hundreds of adjacent blocks should support >10 dims")
	}
}

func TestChooseBasicCubeSatisfiesEquations(t *testing.T) {
	cases := []struct {
		dims   []int
		t, d   int
		tracks int
	}{
		{[]int{259, 259, 259}, 453, 128, 10000},
		{[]int{591, 75, 25, 25}, 686, 128, 9000},
		{[]int{1024, 4}, 600, 128, 5000},
		{[]int{5, 3, 3}, 40, 16, 200},
		{[]int{100, 100, 100, 100, 100}, 500, 128, 8000},
	}
	for _, tc := range cases {
		s, err := ChooseBasicCube(tc.dims, tc.t, tc.d, tc.tracks)
		if err != nil {
			t.Fatalf("ChooseBasicCube(%v): %v", tc.dims, err)
		}
		if s.K[0] > tc.t {
			t.Errorf("%v: Eq.1 violated: K0=%d > T=%d", tc.dims, s.K[0], tc.t)
		}
		inner := 1
		for i := 1; i < s.N()-1; i++ {
			inner *= s.K[i]
		}
		if inner > tc.d {
			t.Errorf("%v: Eq.3 violated: inner=%d > D=%d", tc.dims, inner, tc.d)
		}
		if s.Tracks() > tc.tracks {
			t.Errorf("%v: Eq.2 violated: %d tracks > %d", tc.dims, s.Tracks(), tc.tracks)
		}
		for i := range s.K {
			if s.K[i] > tc.dims[i] {
				t.Errorf("%v: K[%d]=%d exceeds dataset length %d", tc.dims, i, s.K[i], tc.dims[i])
			}
		}
	}
}

func TestChooseBasicCubePrefersFullDims(t *testing.T) {
	// When the dataset fits within the constraints, the cube should
	// cover it exactly (one cube, maximal locality).
	s, err := ChooseBasicCube([]int{5, 3, 3}, 40, 16, 200)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{5, 3, 3} {
		if s.K[i] != want {
			t.Errorf("K[%d]=%d, want %d", i, s.K[i], want)
		}
	}
}

func TestChooseBasicCube3DPaperScale(t *testing.T) {
	// The paper's synthetic experiment: 259-cell chunks, D=128. The
	// middle dimension must take the whole D budget.
	s, err := ChooseBasicCube([]int{259, 259, 259}, 453, 128, 44000)
	if err != nil {
		t.Fatal(err)
	}
	// K0: with S0=259 < T=453, a single 259-cell cube would strand
	// 43% of every track. Splitting Dim0 into 3 cubes of 87 packs 5
	// slots per 453-sector track (96% utilization) at the cost of two
	// same-track slot hops per beam, which gap bridging makes free.
	if s.K[0] != 87 {
		t.Errorf("K0=%d, want 87 (5 slots on a 453 track)", s.K[0])
	}
	if util := float64((453/s.K[0])*s.K[0]) / 453; util < 0.9 {
		t.Errorf("K0=%d packs only %.0f%% of a track", s.K[0], util*100)
	}
	// D=128 forces ceil(259/128) = 3 cubes along Dim1; balancing then
	// shrinks K1 to ceil(259/3) = 87 so the 3 cubes tile with 2 cells
	// of edge waste instead of 125.
	if s.K[1] != 87 {
		t.Errorf("K1=%d, want balanced 87 under D=128", s.K[1])
	}
	if ceil := (259 + s.K[1] - 1) / s.K[1]; ceil != 3 {
		t.Errorf("K1=%d needs %d cubes, want 3 (same as K1=128)", s.K[1], ceil)
	}
	if s.K[2] > 259 || s.K[2] < 1 {
		t.Errorf("K2=%d out of range", s.K[2])
	}
}

func TestChooseBasicCubeErrors(t *testing.T) {
	if _, err := ChooseBasicCube([]int{10}, 40, 16, 100); err == nil {
		t.Error("1-D accepted")
	}
	if _, err := ChooseBasicCube([]int{10, -1}, 40, 16, 100); err == nil {
		t.Error("negative dim accepted")
	}
	if _, err := ChooseBasicCube([]int{10, 10}, 0, 16, 100); err == nil {
		t.Error("zero track length accepted")
	}
	if _, err := ChooseBasicCube([]int{10, 10, 10}, 40, 16, 0); err == nil {
		t.Error("zero-track zone accepted")
	}
}
