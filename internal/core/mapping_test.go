package core

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// testVolume returns a single-small-disk volume with D=16.
func testVolume(t *testing.T) *lvm.Volume {
	t.Helper()
	v, err := lvm.New(16, disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func mustMapping(t *testing.T, v *lvm.Volume, dims []int, opts MapOptions) *Mapping {
	t.Helper()
	m, err := NewMapping(v, dims, opts)
	if err != nil {
		t.Fatalf("NewMapping(%v): %v", dims, err)
	}
	return m
}

// enumCells iterates all cells of a grid.
func enumCells(dims []int, f func(cell []int)) {
	cell := make([]int, len(dims))
	for {
		f(cell)
		i := 0
		for i < len(dims) {
			cell[i]++
			if cell[i] < dims[i] {
				break
			}
			cell[i] = 0
			i++
		}
		if i == len(dims) {
			return
		}
	}
}

func TestMappingBijective(t *testing.T) {
	for _, dims := range [][]int{{25, 9, 7}, {12, 5}, {10, 3, 3, 2}} {
		v := testVolume(t)
		m := mustMapping(t, v, dims, MapOptions{DiskIdx: 0})
		seen := make(map[int64][]int)
		enumCells(dims, func(cell []int) {
			vlbn, err := m.CellVLBN(cell)
			if err != nil {
				t.Fatalf("%v: CellVLBN(%v): %v", dims, cell, err)
			}
			if prev, dup := seen[vlbn]; dup {
				t.Fatalf("%v: VLBN %d stores both %v and %v", dims, vlbn, prev, cell)
			}
			seen[vlbn] = append([]int(nil), cell...)
		})
	}
}

func TestMappingMatchesFig5(t *testing.T) {
	// The cached-chain mapping must agree with the paper's Figure 5
	// algorithm run through the raw LVM interface, cell for cell, on
	// every cube.
	dims := []int{25, 9, 7}
	v := testVolume(t)
	m := mustMapping(t, v, dims, MapOptions{DiskIdx: 0})
	spec := m.Spec()
	enumCells(dims, func(cell []int) {
		got, err := m.CellVLBN(cell)
		if err != nil {
			t.Fatal(err)
		}
		ci, r, err := m.split(cell)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MapCellFig5(v, m.cubes[ci].base, spec, r)
		if err != nil {
			t.Fatalf("Fig5(%v): %v", cell, err)
		}
		if got != want {
			t.Fatalf("cell %v: CellVLBN=%d, Fig5=%d", cell, got, want)
		}
	})
}

func TestMappingDim0Sequential(t *testing.T) {
	// Cells adjacent along Dim0 within one cube map to consecutive
	// LBNs (modulo the circular track wrap).
	dims := []int{20, 6, 4}
	v := testVolume(t)
	m := mustMapping(t, v, dims, MapOptions{DiskIdx: 0})
	k0 := m.Spec().K[0]
	enumCells(dims, func(cell []int) {
		if cell[0]%k0 == k0-1 || cell[0] == dims[0]-1 {
			return // cube boundary
		}
		a, _ := m.CellVLBN(cell)
		next := append([]int(nil), cell...)
		next[0]++
		b, _ := m.CellVLBN(next)
		if b == a+1 {
			return
		}
		// Wrap: b must be the track start of a's track.
		start, nxt, err := v.GetTrackBoundaries(a)
		if err != nil {
			t.Fatal(err)
		}
		if !(a == nxt-1 && b == start) {
			t.Fatalf("cell %v -> %d, next -> %d: neither consecutive nor track wrap", cell, a, b)
		}
	})
}

func TestMappingHigherDimsAreAdjacentBlocks(t *testing.T) {
	// One step along Dimi (i >= 1) must land exactly on the
	// strides[i]-th adjacent block of the predecessor: the property
	// that makes access semi-sequential.
	dims := []int{20, 6, 4}
	v := testVolume(t)
	m := mustMapping(t, v, dims, MapOptions{DiskIdx: 0})
	spec := m.Spec()
	enumCells(dims, func(cell []int) {
		if cell[0] != 0 {
			return // chain heads only: Dim0 offset commutes (tested via Fig5)
		}
		for i := 1; i < len(dims); i++ {
			if cell[i]%spec.K[i] == spec.K[i]-1 || cell[i] == dims[i]-1 {
				continue // cube boundary
			}
			next := append([]int(nil), cell...)
			next[i]++
			a, _ := m.CellVLBN(cell)
			b, _ := m.CellVLBN(next)
			want, err := v.GetAdjacentK(a, spec.Stride(i))
			if err != nil {
				t.Fatal(err)
			}
			if b != want {
				t.Fatalf("cell %v dim %d: next at %d, want adjacent block %d", cell, i, b, want)
			}
		}
	})
}

func TestMappingCubesStayInZone(t *testing.T) {
	// A basic cube never crosses a zone boundary (§4.2): every chain
	// head of a cube lies in the cube's zone extent.
	dims := []int{28, 14, 12} // big enough to spill into zone 1 of the small disk
	v := testVolume(t)
	m := mustMapping(t, v, dims, MapOptions{DiskIdx: 0})
	zones := v.Zones()
	zoneOf := func(vlbn int64) int {
		for i, z := range zones {
			if vlbn >= z.StartVLBN && vlbn < z.StartVLBN+z.Blocks {
				return i
			}
		}
		return -1
	}
	for ci := range m.cubes {
		cz := zoneOf(m.cubes[ci].base)
		if cz < 0 {
			t.Fatalf("cube %d base outside any zone", ci)
		}
		for _, h := range m.cubes[ci].heads {
			if zoneOf(h) != cz {
				t.Fatalf("cube %d crosses zones: base in %d, head %d elsewhere", ci, cz, h)
			}
		}
	}
}

func TestMappingDeclustersAcrossDisks(t *testing.T) {
	v, err := lvm.New(16, disk.SmallTestDisk(), disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	m := mustMapping(t, v, []int{30, 14, 12}, MapOptions{DiskIdx: -1})
	if m.NumCubes() < 2 {
		t.Skip("dataset fits one cube; cannot observe declustering")
	}
	seen := map[int]bool{}
	for ci := 0; ci < m.NumCubes(); ci++ {
		seen[m.CubeDisk(ci)] = true
	}
	if len(seen) != 2 {
		t.Errorf("cubes on %d disks, want 2", len(seen))
	}
}

func TestMappingPinsToDisk(t *testing.T) {
	v, err := lvm.New(16, disk.SmallTestDisk(), disk.SmallTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	m := mustMapping(t, v, []int{30, 14, 12}, MapOptions{DiskIdx: 1})
	for ci := 0; ci < m.NumCubes(); ci++ {
		if m.CubeDisk(ci) != 1 {
			t.Fatalf("cube %d on disk %d, want 1", ci, m.CubeDisk(ci))
		}
	}
}

func TestMappingTooBig(t *testing.T) {
	v := testVolume(t)
	if _, err := NewMapping(v, []int{4000, 400, 400}, MapOptions{DiskIdx: 0}); err == nil {
		t.Error("oversized dataset accepted")
	}
}

func TestMappingValidation(t *testing.T) {
	v := testVolume(t)
	if _, err := NewMapping(v, []int{10}, MapOptions{}); err == nil {
		t.Error("1-D accepted")
	}
	m := mustMapping(t, v, []int{10, 4}, MapOptions{DiskIdx: 0})
	if _, err := m.CellVLBN([]int{1}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := m.CellVLBN([]int{10, 0}); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
	if _, err := m.CellVLBN([]int{-1, 0}); err == nil {
		t.Error("negative coordinate accepted")
	}
}

func TestDim0RunCoversCells(t *testing.T) {
	dims := []int{33, 5, 4}
	v := testVolume(t)
	m := mustMapping(t, v, dims, MapOptions{DiskIdx: 0})
	for _, run := range []struct{ start, length int }{
		{0, 33}, {5, 20}, {30, 3}, {0, 1},
	} {
		cell := []int{run.start, 2, 1}
		reqs, err := m.Dim0Run(cell, run.length)
		if err != nil {
			t.Fatalf("Dim0Run(%v,%d): %v", cell, run.length, err)
		}
		want := map[int64]bool{}
		for x := run.start; x < run.start+run.length; x++ {
			vlbn, _ := m.CellVLBN([]int{x, 2, 1})
			want[vlbn] = true
		}
		got := map[int64]bool{}
		total := 0
		for _, r := range reqs {
			for i := 0; i < r.Count; i++ {
				got[r.VLBN+int64(i)] = true
			}
			total += r.Count
		}
		if total != run.length {
			t.Fatalf("run %+v: requests cover %d blocks, want %d", run, total, run.length)
		}
		for vlbn := range want {
			if !got[vlbn] {
				t.Fatalf("run %+v: cell block %d missing from requests", run, vlbn)
			}
		}
	}
	if _, err := m.Dim0Run([]int{30, 0, 0}, 10); err == nil {
		t.Error("run past Dim0 end accepted")
	}
	if _, err := m.Dim0Run([]int{0, 0, 0}, 0); err == nil {
		t.Error("zero-length run accepted")
	}
}

func TestMappingBlocks(t *testing.T) {
	v := testVolume(t)
	m := mustMapping(t, v, []int{25, 9, 7}, MapOptions{DiskIdx: 0})
	if got, want := m.Blocks(), int64(m.NumCubes())*m.Spec().Cells(); got != want {
		t.Errorf("Blocks=%d, want %d", got, want)
	}
	if len(m.CubesPerDim()) != 3 {
		t.Error("CubesPerDim arity wrong")
	}
}
