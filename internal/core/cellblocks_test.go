package core

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// multiBlockMapping builds a mapping with 4-block cells on the medium
// test disk.
func multiBlockMapping(t *testing.T, dims []int, b int) (*lvm.Volume, *Mapping) {
	t.Helper()
	v, err := lvm.New(32, disk.MediumTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapping(v, dims, MapOptions{DiskIdx: 0, CellBlocks: b})
	if err != nil {
		t.Fatal(err)
	}
	return v, m
}

// TestMultiBlockCellsDisjoint: cells occupy non-overlapping B-block
// extents.
func TestMultiBlockCellsDisjoint(t *testing.T) {
	const b = 4
	dims := []int{15, 6, 4}
	_, m := multiBlockMapping(t, dims, b)
	if m.CellBlocks() != b {
		t.Fatalf("CellBlocks=%d", m.CellBlocks())
	}
	used := map[int64][]int{}
	enumCells(dims, func(cell []int) {
		exts, err := m.CellExtents(cell)
		if err != nil {
			t.Fatalf("CellExtents(%v): %v", cell, err)
		}
		total := 0
		for _, e := range exts {
			total += e.Count
			for i := int64(0); i < int64(e.Count); i++ {
				if prev, clash := used[e.VLBN+i]; clash {
					t.Fatalf("block %d used by both %v and %v", e.VLBN+i, prev, cell)
				}
				used[e.VLBN+i] = append([]int(nil), cell...)
			}
		}
		if total != b {
			t.Fatalf("cell %v extents cover %d blocks, want %d", cell, total, b)
		}
	})
	if len(used) != 15*6*4*b {
		t.Fatalf("%d blocks used, want %d", len(used), 15*6*4*b)
	}
}

// TestMultiBlockDim0Sequential: Dim0 neighbours are back-to-back
// B-block runs (modulo the circular track wrap).
func TestMultiBlockDim0Sequential(t *testing.T) {
	const b = 3
	dims := []int{20, 5, 3}
	v, m := multiBlockMapping(t, dims, b)
	k0 := m.Spec().K[0]
	enumCells(dims, func(cell []int) {
		if cell[0]%k0 == k0-1 || cell[0] == dims[0]-1 {
			return
		}
		a, _ := m.CellVLBN(cell)
		next := append([]int(nil), cell...)
		next[0]++
		c, _ := m.CellVLBN(next)
		if c == a+b {
			return
		}
		start, _, err := v.GetTrackBoundaries(a)
		if err != nil {
			t.Fatal(err)
		}
		// Wrap case: the successor starts at the track head.
		off := a - start
		tl, _ := v.TrackLen(a)
		if (off+b)%int64(tl) != c-start {
			t.Fatalf("cell %v at %d: Dim0 successor at %d neither contiguous nor wrapped", cell, a, c)
		}
	})
}

// TestMultiBlockSemiSeqTiming: after reading a full B-block cell, its
// Dim1 successor is reachable for settle-time cost — the adjacency
// window opens after the whole cell's transfer, as §4 promises.
func TestMultiBlockSemiSeqTiming(t *testing.T) {
	const b = 4
	dims := []int{15, 6, 4}
	v, m := multiBlockMapping(t, dims, b)
	g := v.Disk(0).Geometry()
	k := m.Spec().K
	d := v.Disk(0)
	for _, cell := range [][]int{{0, 0, 0}, {3, 1, 2}, {7, 2, 1}} {
		if cell[1]+1 >= k[1] {
			continue
		}
		next := append([]int(nil), cell...)
		next[1]++
		d.Reset()
		srcExts, err := m.CellExtents(cell)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range srcExts {
			if _, err := d.Access(disk.Request{LBN: e.VLBN - v.DiskStart(0), Count: e.Count}); err != nil {
				t.Fatal(err)
			}
		}
		dstExts, err := m.CellExtents(next)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := d.Access(disk.Request{LBN: dstExts[0].VLBN - v.DiskStart(0), Count: dstExts[0].Count})
		if err != nil {
			t.Fatal(err)
		}
		pos := cost.CommandMs + cost.SeekMs + cost.RotateMs
		hi := g.CommandMs + g.SettleMs + 5*g.SectorTimeMs(0)
		if pos > hi {
			t.Fatalf("cell %v: Dim1 hop after %d-block read costs %.3f ms, want <= %.3f",
				cell, b, pos, hi)
		}
	}
}

// TestMultiBlockDim0RunBlocks: Dim0Run emits cells*B blocks.
func TestMultiBlockDim0RunBlocks(t *testing.T) {
	const b = 2
	dims := []int{18, 5, 3}
	_, m := multiBlockMapping(t, dims, b)
	reqs, err := m.Dim0Run([]int{2, 1, 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range reqs {
		total += r.Count
	}
	if total != 9*b {
		t.Fatalf("run covers %d blocks, want %d", total, 9*b)
	}
}

func TestMultiBlockValidation(t *testing.T) {
	v, err := lvm.New(32, disk.MediumTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMapping(v, []int{10, 4}, MapOptions{DiskIdx: 0, CellBlocks: -1}); err == nil {
		t.Error("negative cell size accepted")
	}
	if _, err := NewMapping(v, []int{10, 4}, MapOptions{DiskIdx: 0, CellBlocks: 10_000}); err == nil {
		t.Error("cell larger than a track accepted")
	}
}
