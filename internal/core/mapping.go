package core

import (
	"fmt"

	"repro/internal/lvm"
)

// Mapping is a MultiMap placement of an N-dimensional dataset on a
// logical volume: the dataset is cut into basic cubes (§4.4), cubes are
// allocated within disk zones (never across a zone boundary), and cells
// inside each cube follow the Fig. 5 adjacency chains.
type Mapping struct {
	vol        *lvm.Volume
	dims       []int
	spec       *CubeSpec
	cellBlocks int // blocks per cell

	cubesPerDim []int
	cubeStride  []int // row-major strides over the cube grid
	cubes       []cubePlace
	nextFree    int64 // first VLBN after the last allocated cube group
}

// cubePlace is one allocated basic cube.
type cubePlace struct {
	// base is the VLBN storing the cube's (0,...,0) cell.
	base int64
	// zoneStart and trackLen give the containing zone so sector
	// arithmetic (wrap along a track) works with plain LBN math.
	zoneStart int64
	trackLen  int
	diskIdx   int
	// heads[j] is the VLBN of cell (0, x1, ..., xN-1) where j is the
	// mixed-radix inner index sum(x_i * spec.strides[i]). Cells along
	// Dim0 occupy consecutive sectors (mod T) after the head.
	heads []int64
}

// MapOptions controls dataset placement.
type MapOptions struct {
	// DiskIdx pins all cubes to one member disk; -1 declusters cubes
	// round-robin across all disks (§4.4).
	DiskIdx int
	// MinTrackLen skips zones with tracks shorter than this. Zero
	// means any zone at least K0 long.
	MinTrackLen int
	// StartVLBN makes allocation begin at the first whole track at or
	// after this volume address, so several mappings can share a disk.
	StartVLBN int64
	// CellBlocks is the cell size in blocks (default 1). The paper
	// notes a cell may occupy multiple LBNs without affecting the
	// approach: Dim0 stays sequential (cells are back-to-back runs)
	// and adjacency chains hop from the end of each multi-block cell.
	CellBlocks int
}

// ChooseCube runs the basic-cube selection phase of NewMapping —
// option validation, zone filtering, and the §4.4 spec choice — without
// allocating anything on the volume. The shard router uses it to learn
// the Dim0 cube side K0 (its slab alignment quantum) before any
// per-shard mapping exists; NewMapping itself builds on it.
func ChooseCube(vol *lvm.Volume, dims []int, opts MapOptions) (*CubeSpec, error) {
	spec, _, err := chooseCubeZones(vol, dims, opts)
	return spec, err
}

// chooseCubeZones is ChooseCube plus the usable-zone list the spec was
// sized for, which the allocation phase needs too.
func chooseCubeZones(vol *lvm.Volume, dims []int, opts MapOptions) (*CubeSpec, []lvm.ZoneExtent, error) {
	if len(dims) < 2 {
		return nil, nil, fmt.Errorf("core: MultiMap needs at least 2 dimensions, got %d", len(dims))
	}
	if opts.CellBlocks == 0 {
		opts.CellBlocks = 1
	}
	if opts.CellBlocks < 1 {
		return nil, nil, fmt.Errorf("core: cell size %d blocks must be positive", opts.CellBlocks)
	}
	zones := usableZones(vol, opts)
	if len(zones) == 0 {
		return nil, nil, fmt.Errorf("core: no usable zones on volume for options %+v", opts)
	}
	// Size the cube for the first allocation zone; K0 is additionally
	// capped by the smallest track length among candidate zones so a
	// cube fits wherever it lands (§4.4 discussion). Multi-block cells
	// shrink the per-track cell budget (Eq. 1 becomes K0*B <= T).
	minT := zones[0].TrackLen
	for _, z := range zones {
		if z.TrackLen < minT {
			minT = z.TrackLen
		}
	}
	if minT/opts.CellBlocks < 1 {
		return nil, nil, fmt.Errorf("core: cell size %d exceeds the shortest track (%d blocks)",
			opts.CellBlocks, minT)
	}
	spec, err := ChooseBasicCube(dims, minT/opts.CellBlocks, vol.AdjacencyDepth(), zones[0].Tracks)
	if err != nil {
		return nil, nil, err
	}
	return spec, zones, nil
}

// NewMapping allocates and maps a dataset of the given side lengths.
// The basic cube is chosen per §4.4 from the first usable zone; in
// zones with different track lengths only the per-track packing count
// changes, so cube addressing stays uniform.
func NewMapping(vol *lvm.Volume, dims []int, opts MapOptions) (*Mapping, error) {
	if opts.CellBlocks == 0 {
		opts.CellBlocks = 1
	}
	spec, zones, err := chooseCubeZones(vol, dims, opts)
	if err != nil {
		return nil, err
	}
	// Fit loop: a cube whose track group doesn't divide the zones'
	// track counts evenly can strand capacity (leftover tracks shorter
	// than one group per zone). If allocation fails, shrink the last
	// dimension — halving the group size roughly halves the stranding —
	// and retry; give up when the cube bottoms out.
	for {
		m, allocErr := newMappingWithSpec(vol, dims, spec, zones, opts.StartVLBN, opts.CellBlocks)
		if allocErr == nil {
			return m, nil
		}
		if spec.K[len(spec.K)-1] <= 1 {
			return nil, allocErr
		}
		shrunk := append([]int(nil), spec.K...)
		shrunk[len(shrunk)-1] = (shrunk[len(shrunk)-1] + 1) / 2
		spec, err = NewCubeSpec(shrunk, spec.T, spec.D, zones[0].Tracks)
		if err != nil {
			return nil, err
		}
	}
}

// newMappingWithSpec builds a mapping for one candidate cube spec.
func newMappingWithSpec(vol *lvm.Volume, dims []int, spec *CubeSpec,
	zones []lvm.ZoneExtent, startVLBN int64, cellBlocks int) (*Mapping, error) {
	m := &Mapping{vol: vol, dims: append([]int(nil), dims...), spec: spec, cellBlocks: cellBlocks}
	m.cubesPerDim = make([]int, len(dims))
	m.cubeStride = make([]int, len(dims))
	stride := 1
	for i := range dims {
		m.cubesPerDim[i] = (dims[i] + spec.K[i] - 1) / spec.K[i]
		m.cubeStride[i] = stride
		stride *= m.cubesPerDim[i]
	}
	nCubes := stride
	if err := m.allocate(zones, nCubes, startVLBN); err != nil {
		return nil, err
	}
	if err := m.buildChains(); err != nil {
		return nil, err
	}
	return m, nil
}

// usableZones filters and orders the volume's zone extents per options.
func usableZones(vol *lvm.Volume, opts MapOptions) []lvm.ZoneExtent {
	var out []lvm.ZoneExtent
	for _, z := range vol.Zones() {
		if opts.DiskIdx >= 0 && z.DiskIdx != opts.DiskIdx {
			continue
		}
		if z.TrackLen < opts.MinTrackLen {
			continue
		}
		out = append(out, z)
	}
	return out
}

// cubeCursor hands out cube slots from one disk's zones, group by
// group, honouring the start address.
type cubeCursor struct {
	spec       *CubeSpec
	cellBlocks int
	zones      []lvm.ZoneExtent
	startVLBN  int64
	zi         int // current zone
	group      int // current group within the zone
	slot       int // next packing slot within the group
}

// next returns the next cube placement on this disk plus the first
// VLBN past its group, or ok=false when the disk is full.
func (c *cubeCursor) next() (cubePlace, int64, bool) {
	groupTracks := c.spec.Tracks()
	slotBlocks := c.spec.K[0] * c.cellBlocks
	for c.zi < len(c.zones) {
		z := c.zones[c.zi]
		if z.TrackLen < slotBlocks {
			c.zi++
			c.group, c.slot = 0, 0
			continue
		}
		firstTrack := 0
		if c.startVLBN > z.StartVLBN {
			off := c.startVLBN - z.StartVLBN
			firstTrack = int((off + int64(z.TrackLen) - 1) / int64(z.TrackLen))
		}
		nGroups := (z.Tracks - firstTrack) / groupTracks
		perGroup := z.TrackLen / slotBlocks
		if firstTrack >= z.Tracks || c.group >= nGroups {
			c.zi++
			c.group, c.slot = 0, 0
			continue
		}
		groupStart := z.StartVLBN + int64(firstTrack+c.group*groupTracks)*int64(z.TrackLen)
		p := cubePlace{
			base:      groupStart + int64(c.slot)*int64(slotBlocks),
			zoneStart: z.StartVLBN,
			trackLen:  z.TrackLen,
			diskIdx:   z.DiskIdx,
		}
		c.slot++
		if c.slot == perGroup {
			c.slot = 0
			c.group++
		}
		return p, groupStart + int64(groupTracks)*int64(z.TrackLen), true
	}
	return cubePlace{}, 0, false
}

// allocate places all cubes. With a pinned disk the cubes fill its
// zones in order; with DiskIdx -1 cubes are declustered round-robin
// across the member disks (§4.4), like stripe units in a traditional
// volume manager.
func (m *Mapping) allocate(zones []lvm.ZoneExtent, nCubes int, startVLBN int64) error {
	m.cubes = make([]cubePlace, 0, nCubes)
	// One cursor per disk present in the zone list.
	var order []int
	byDisk := map[int]*cubeCursor{}
	for _, z := range zones {
		c, ok := byDisk[z.DiskIdx]
		if !ok {
			c = &cubeCursor{spec: m.spec, cellBlocks: m.cellBlocks, startVLBN: startVLBN}
			byDisk[z.DiskIdx] = c
			order = append(order, z.DiskIdx)
		}
		c.zones = append(c.zones, z)
	}
	rr := 0
	exhausted := 0
	for len(m.cubes) < nCubes && exhausted < len(order) {
		cur := byDisk[order[rr%len(order)]]
		rr++
		p, groupEnd, ok := cur.next()
		if !ok {
			exhausted++
			continue
		}
		exhausted = 0
		m.cubes = append(m.cubes, p)
		if groupEnd > m.nextFree {
			m.nextFree = groupEnd
		}
	}
	if len(m.cubes) < nCubes {
		return fmt.Errorf("core: volume too small: placed %d of %d basic cubes", len(m.cubes), nCubes)
	}
	return nil
}

// buildChains materializes each cube's chain heads with one
// GetAdjacentK call per head, following Fig. 5: a step along Dimi jumps
// strides[i] adjacent blocks.
func (m *Mapping) buildChains() error {
	n := len(m.dims)
	inner := m.spec.Tracks() // number of chain heads per cube
	for ci := range m.cubes {
		cp := &m.cubes[ci]
		cp.heads = make([]int64, inner)
		cp.heads[0] = cp.base
		counter := make([]int, n) // counter[0] unused
		for idx := 1; idx < inner; idx++ {
			// Increment the mixed-radix counter over dims 1..N-1 and
			// note which digit moved.
			dim := 1
			for counter[dim]+1 == m.spec.K[dim] {
				counter[dim] = 0
				dim++
			}
			counter[dim]++
			stride := m.spec.strides[dim]
			// Hop from the last block of the previous cell so the
			// adjacency window opens right after its transfer ends.
			prev := cp.heads[idx-stride] + int64(m.cellBlocks-1)
			head, err := m.vol.GetAdjacentK(prev, stride)
			if err != nil {
				return fmt.Errorf("core: chain for cube %d head %d: %w", ci, idx, err)
			}
			cp.heads[idx] = head
		}
	}
	return nil
}

// Dims returns the dataset side lengths.
func (m *Mapping) Dims() []int { return m.dims }

// Spec returns the basic cube specification in use.
func (m *Mapping) Spec() *CubeSpec { return m.spec }

// NumCubes returns how many basic cubes the dataset occupies.
func (m *Mapping) NumCubes() int { return len(m.cubes) }

// CubesPerDim returns the cube-grid shape (ceil(Si/Ki) per §4.4).
func (m *Mapping) CubesPerDim() []int { return m.cubesPerDim }

// CubeDisk returns the disk index holding cube ci.
func (m *Mapping) CubeDisk(ci int) int { return m.cubes[ci].diskIdx }

// split returns the cube index and in-cube coordinates of a cell.
func (m *Mapping) split(cell []int) (cubeIdx int, r []int, err error) {
	if len(cell) != len(m.dims) {
		return 0, nil, fmt.Errorf("core: cell has %d dims, want %d", len(cell), len(m.dims))
	}
	r = make([]int, len(cell))
	for i, x := range cell {
		if x < 0 || x >= m.dims[i] {
			return 0, nil, fmt.Errorf("core: coordinate %d = %d outside [0,%d)", i, x, m.dims[i])
		}
		cubeIdx += x / m.spec.K[i] * m.cubeStride[i]
		r[i] = x % m.spec.K[i]
	}
	return cubeIdx, r, nil
}

// CellVLBN maps a cell coordinate to the volume LBN storing it.
func (m *Mapping) CellVLBN(cell []int) (int64, error) {
	ci, r, err := m.split(cell)
	if err != nil {
		return 0, err
	}
	cp := &m.cubes[ci]
	inner := 0
	for i := 1; i < len(r); i++ {
		inner += r[i] * m.spec.strides[i]
	}
	head := cp.heads[inner]
	// Walk r[0] cells (of cellBlocks sectors each) along the head's
	// track, wrapping at the track end: tracks are rotationally
	// circular, so the wrapped successor is still transfer-adjacent.
	off := (head - cp.zoneStart) % int64(cp.trackLen)
	trackStart := head - off
	return trackStart + (off+int64(r[0])*int64(m.cellBlocks))%int64(cp.trackLen), nil
}

// CellBlocks returns the cell size in blocks.
func (m *Mapping) CellBlocks() int { return m.cellBlocks }

// CellExtents returns the LBN extents storing a cell: one request, or
// two when the cell wraps its circular track (the wrapped tail is
// rotationally contiguous with the head, so fetching both costs pure
// transfer). For single-block cells this is always one extent.
func (m *Mapping) CellExtents(cell []int) ([]lvm.Request, error) {
	start, err := m.CellVLBN(cell)
	if err != nil {
		return nil, err
	}
	ci, _, err := m.split(cell)
	if err != nil {
		return nil, err
	}
	cp := &m.cubes[ci]
	off := (start - cp.zoneStart) % int64(cp.trackLen)
	trackStart := start - off
	first := int64(cp.trackLen) - off
	if first >= int64(m.cellBlocks) {
		return []lvm.Request{{VLBN: start, Count: m.cellBlocks}}, nil
	}
	return []lvm.Request{
		{VLBN: start, Count: int(first)},
		{VLBN: trackStart, Count: m.cellBlocks - int(first)},
	}, nil
}

// Dim0Run expands a run of cells along Dim0 starting at cell (which
// must be in range) into at most a few contiguous VLBN requests: one
// per basic cube crossed, plus one extra when a run wraps past its
// track end. length cells are covered.
func (m *Mapping) Dim0Run(cell []int, length int) ([]lvm.Request, error) {
	if length <= 0 {
		return nil, fmt.Errorf("core: run length must be positive, got %d", length)
	}
	if cell[0]+length > m.dims[0] {
		return nil, fmt.Errorf("core: run [%d,+%d) exceeds Dim0 length %d", cell[0], length, m.dims[0])
	}
	cur := append([]int(nil), cell...)
	var out []lvm.Request
	remaining := length
	for remaining > 0 {
		ci, r, err := m.split(cur)
		if err != nil {
			return nil, err
		}
		cp := &m.cubes[ci]
		inCube := m.spec.K[0] - r[0]
		if inCube > remaining {
			inCube = remaining
		}
		inner := 0
		for i := 1; i < len(r); i++ {
			inner += r[i] * m.spec.strides[i]
		}
		head := cp.heads[inner]
		off := (head - cp.zoneStart) % int64(cp.trackLen)
		trackStart := head - off
		start := (off + int64(r[0])*int64(m.cellBlocks)) % int64(cp.trackLen)
		blocks := int64(inCube) * int64(m.cellBlocks)
		// First segment: up to the track end.
		seg := int64(cp.trackLen) - start
		if seg > blocks {
			seg = blocks
		}
		out = append(out, lvm.Request{VLBN: trackStart + start, Count: int(seg)})
		if rest := blocks - seg; rest > 0 {
			out = append(out, lvm.Request{VLBN: trackStart, Count: int(rest)})
		}
		cur[0] += inCube
		remaining -= inCube
	}
	return out, nil
}

// Blocks returns the total number of blocks reserved by the mapping,
// including unfilled edge-cube space (§4.4).
func (m *Mapping) Blocks() int64 {
	return int64(len(m.cubes)) * m.spec.Cells() * int64(m.cellBlocks)
}

// NextFreeVLBN returns the first volume address past the last allocated
// cube group, where a subsequent mapping or extent may begin.
func (m *Mapping) NextFreeVLBN() int64 { return m.nextFree }

// SpanVLBN returns the half-open VLBN interval the mapping may touch:
// from the first track of the lowest allocated cube group to the first
// free VLBN past the last. The interval is conservative — it includes
// unfilled edge-cube space and allocation gaps — which is what overlap
// checks against other on-disk extents want.
func (m *Mapping) SpanVLBN() (start, end int64) {
	if len(m.cubes) == 0 {
		return 0, 0
	}
	start = m.cubes[0].base
	for _, cp := range m.cubes {
		t := int64(cp.trackLen)
		// Cells wrap circularly within their track, so the whole first
		// track of the cube's group counts as touched.
		ts := cp.zoneStart + (cp.base-cp.zoneStart)/t*t
		if ts < start {
			start = ts
		}
	}
	return start, m.nextFree
}

// SpanOnDisk refines SpanVLBN per member disk: the conservative VLBN
// interval the mapping may touch within disk di's segment, from the
// first track of its lowest cube group there to the end of its highest.
// start == end when no cube landed on that disk. Layers carving
// auxiliary per-disk extents (the update layer's overflow pages) use it
// so a tail extent on one disk is only checked against the cells
// actually placed on that disk — the global span would falsely collide
// for declustered datasets.
func (m *Mapping) SpanOnDisk(di int) (start, end int64) {
	groupTracks := int64(m.spec.Tracks())
	first := true
	for i := range m.cubes {
		cp := &m.cubes[i]
		if cp.diskIdx != di {
			continue
		}
		t := int64(cp.trackLen)
		// Cells wrap circularly within their tracks, so the cube's whole
		// group — groupTracks full tracks from the group's first track —
		// counts as touched. Every packing slot of a group starts on the
		// group's first track, so that track start is recoverable from
		// the cube base alone.
		ts := cp.zoneStart + (cp.base-cp.zoneStart)/t*t
		te := ts + groupTracks*t
		if first || ts < start {
			start = ts
		}
		if first || te > end {
			end = te
		}
		first = false
	}
	if first {
		return 0, 0
	}
	return start, end
}
