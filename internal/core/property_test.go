package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// TestMappingBijectiveQuick: MultiMap is a bijection from cells to
// blocks for random dataset shapes and dimensionalities.
func TestMappingBijectiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3) // 2-4 dims
		dims := make([]int, n)
		cells := 1
		for i := range dims {
			dims[i] = 2 + rng.Intn(9)
			cells *= dims[i]
		}
		if cells > 4000 {
			return true // keep the check fast
		}
		v, err := lvm.New(16, disk.SmallTestDisk())
		if err != nil {
			return false
		}
		m, err := NewMapping(v, dims, MapOptions{DiskIdx: 0})
		if err != nil {
			// Tiny disk: some shapes legitimately don't fit.
			return true
		}
		seen := map[int64]bool{}
		ok := true
		enumCells(dims, func(cell []int) {
			vlbn, err := m.CellVLBN(cell)
			if err != nil || seen[vlbn] {
				ok = false
				return
			}
			seen[vlbn] = true
		})
		return ok && len(seen) == cells
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMappingEquationsHoldQuick: every constructed mapping satisfies the
// paper's Equations 1-3 against its volume.
func TestMappingEquationsHoldQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{2 + rng.Intn(40), 2 + rng.Intn(20), 2 + rng.Intn(10)}
		v, err := lvm.New(16, disk.MediumTestDisk())
		if err != nil {
			return false
		}
		m, err := NewMapping(v, dims, MapOptions{DiskIdx: 0})
		if err != nil {
			return true
		}
		spec := m.Spec()
		// Eq. 1: K0 fits every zone the mapping used.
		for _, z := range v.Zones() {
			if z.TrackLen >= spec.K[0] {
				continue
			}
			// Zones shorter than K0 must hold no cubes.
			for ci := 0; ci < m.NumCubes(); ci++ {
				base, _ := m.CellVLBN(zeroCell(dims, ci, m))
				if base >= z.StartVLBN && base < z.StartVLBN+z.Blocks {
					return false
				}
			}
		}
		// Eq. 3.
		inner := 1
		for i := 1; i < spec.N()-1; i++ {
			inner *= spec.K[i]
		}
		return inner <= v.AdjacencyDepth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// zeroCell returns some cell of cube ci (its grid origin).
func zeroCell(dims []int, ci int, m *Mapping) []int {
	cell := make([]int, len(dims))
	rem := ci
	for i := range dims {
		cpd := m.CubesPerDim()[i]
		cell[i] = (rem % cpd) * m.Spec().K[i]
		rem /= cpd
	}
	return cell
}

// TestDim0RunMatchesPerCellQuick: Dim0Run covers exactly the blocks of
// the per-cell mapping for random runs.
func TestDim0RunMatchesPerCellQuick(t *testing.T) {
	v, err := lvm.New(16, disk.MediumTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{50, 9, 6}
	m, err := NewMapping(v, dims, MapOptions{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x1, x2 := rng.Intn(dims[1]), rng.Intn(dims[2])
		start := rng.Intn(dims[0])
		length := 1 + rng.Intn(dims[0]-start)
		reqs, err := m.Dim0Run([]int{start, x1, x2}, length)
		if err != nil {
			return false
		}
		want := map[int64]bool{}
		for x := start; x < start+length; x++ {
			vlbn, err := m.CellVLBN([]int{x, x1, x2})
			if err != nil {
				return false
			}
			want[vlbn] = true
		}
		got := 0
		for _, r := range reqs {
			for i := 0; i < r.Count; i++ {
				if !want[r.VLBN+int64(i)] {
					return false
				}
				got++
			}
		}
		return got == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMappingsAreDisjointQuick: two mappings sharing a disk through
// StartVLBN never overlap.
func TestMappingsAreDisjointQuick(t *testing.T) {
	v, err := lvm.New(16, disk.MediumTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewMapping(v, []int{30, 8, 5}, MapOptions{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMapping(v, []int{20, 6, 4}, MapOptions{DiskIdx: 0, StartVLBN: a.NextFreeVLBN()})
	if err != nil {
		t.Fatal(err)
	}
	blocksA := map[int64]bool{}
	enumCells(a.Dims(), func(cell []int) {
		vlbn, err := a.CellVLBN(cell)
		if err != nil {
			t.Fatal(err)
		}
		blocksA[vlbn] = true
	})
	enumCells(b.Dims(), func(cell []int) {
		vlbn, err := b.CellVLBN(cell)
		if err != nil {
			t.Fatal(err)
		}
		if blocksA[vlbn] {
			t.Fatalf("mappings overlap at VLBN %d", vlbn)
		}
	})
}

// TestSemiSeqCostInvariant: fetching any two Dim1-adjacent cells in
// sequence costs the semi-sequential step, regardless of position in
// the dataset (as long as both are in the same cube).
func TestSemiSeqCostInvariant(t *testing.T) {
	g := disk.MediumTestDisk()
	v, err := lvm.New(16, g)
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{40, 12, 6}
	m, err := NewMapping(v, dims, MapOptions{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	k := m.Spec().K
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 60; trial++ {
		x0, x1, x2 := rng.Intn(dims[0]), rng.Intn(dims[1]-1), rng.Intn(dims[2])
		if (x1+1)%k[1] == 0 {
			continue // cube boundary
		}
		a, err := m.CellVLBN([]int{x0, x1, x2})
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.CellVLBN([]int{x0, x1 + 1, x2})
		if err != nil {
			t.Fatal(err)
		}
		d := v.Disk(0)
		d.Reset()
		if _, err := d.Access(disk.Request{LBN: a - v.DiskStart(0), Count: 1}); err != nil {
			t.Fatal(err)
		}
		cost, err := d.Access(disk.Request{LBN: b - v.DiskStart(0), Count: 1})
		if err != nil {
			t.Fatal(err)
		}
		if limit := g.SemiSeqStepMs(0) * 1.05; cost.TotalMs() > limit {
			t.Fatalf("cell (%d,%d,%d)->Dim1 next cost %.3f ms, semi-seq limit %.3f",
				x0, x1, x2, cost.TotalMs(), limit)
		}
	}
}
