package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/lvm"
)

// ErrOverflowExhausted is returned when an insert or load needs a
// fresh overflow page and every overflow extent is full. Detect it
// with errors.Is: the condition is recoverable by adding capacity
// (AddOverflow after a volume grow) and retrying, which is exactly
// what the pool's auto-grow hook does.
var ErrOverflowExhausted = errors.New("core: overflow extent exhausted")

// CellLocator maps a cell coordinate to its home block. Both MultiMap's
// Mapping and the linear mappings satisfy it, so CellStore works with
// any placement.
type CellLocator func(cell []int) (int64, error)

// CellStore implements the paper's online-update support (§4.6): each
// cell is loaded at a tunable fill factor; inserts that overflow a
// cell's home block go to overflow pages; underflowing cells past a
// reclamation threshold are compacted by Reorganize.
//
// The store tracks chain state only — it performs no I/O itself.
// Every mutator returns the list of block extents it dirtied, so the
// caller can submit them as a write op to the volume's engine.Service,
// which invalidates overlapping cached extents and charges the write's
// simulated cost. A CellStore is safe for concurrent use; each method
// is atomic under an internal mutex.
type CellStore struct {
	locate   CellLocator
	capacity int     // points a block can hold
	fill     float64 // initial fill factor at load time
	reclaim  float64 // underflow threshold triggering reorganization

	mu       sync.Mutex
	counts   map[int64]int   // live points per block (home or overflow)
	chains   map[int64]int64 // block -> its overflow page (0 = none)
	overflow struct {
		ext  []lvm.Request // free extents for overflow pages
		next []int64       // next free block within each extent
		rr   int           // round-robin cursor over the extents
	}
	reorgs int
}

// NewCellStore builds a store over the locator. capacity is points per
// block; fillFactor in (0,1] reserves insert headroom at load; the
// reclaim threshold in [0,1) triggers reorganization when a chain's
// occupancy falls below it. Overflow pages are carved from the given
// free extents, allocated round-robin across them — with one extent per
// member disk (how the update layer carves them), overflow chains
// spread their pages over every disk instead of piling onto one.
func NewCellStore(locate CellLocator, capacity int, fillFactor, reclaim float64,
	overflow []lvm.Request) (*CellStore, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("core: capacity must be positive, got %d", capacity)
	}
	if fillFactor <= 0 || fillFactor > 1 {
		return nil, fmt.Errorf("core: fill factor %v outside (0,1]", fillFactor)
	}
	if reclaim < 0 || reclaim >= 1 {
		return nil, fmt.Errorf("core: reclaim threshold %v outside [0,1)", reclaim)
	}
	s := &CellStore{
		locate:   locate,
		capacity: capacity,
		fill:     fillFactor,
		reclaim:  reclaim,
		counts:   make(map[int64]int),
		chains:   make(map[int64]int64),
	}
	for _, e := range overflow {
		if e.Count < 0 {
			return nil, fmt.Errorf("core: negative overflow extent [%d,+%d)", e.VLBN, e.Count)
		}
		if e.Count == 0 {
			continue
		}
		s.overflow.ext = append(s.overflow.ext, e)
		s.overflow.next = append(s.overflow.next, e.VLBN)
	}
	return s, nil
}

// AddOverflow appends fresh free extents to the store's overflow pool —
// the online-growth hook: when the volume underneath grows (a
// thin-provisioned pool volume extended past its initial capacity), the
// new blocks become overflow pages without re-opening the store, so
// §4.6 chain growth continues across the capacity boundary. The
// round-robin cursor is untouched; existing chains and counts are
// unaffected.
func (s *CellStore) AddOverflow(extents []lvm.Request) error {
	for _, e := range extents {
		if e.Count < 0 {
			return fmt.Errorf("core: negative overflow extent [%d,+%d)", e.VLBN, e.Count)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range extents {
		if e.Count == 0 {
			continue
		}
		s.overflow.ext = append(s.overflow.ext, e)
		s.overflow.next = append(s.overflow.next, e.VLBN)
	}
	return nil
}

// Clone returns a deep copy of the store's chain state bound to the
// given locator — the snapshot/clone hook: a cloned volume shares the
// parent's block contents (copy-on-write underneath), so the clone's
// chain bookkeeping starts as an exact copy and then diverges
// independently. The copy is atomic with respect to concurrent
// mutations of the parent.
func (s *CellStore) Clone(locate CellLocator) *CellStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &CellStore{
		locate:   locate,
		capacity: s.capacity,
		fill:     s.fill,
		reclaim:  s.reclaim,
		counts:   make(map[int64]int, len(s.counts)),
		chains:   make(map[int64]int64, len(s.chains)),
		reorgs:   s.reorgs,
	}
	for b, n := range s.counts {
		c.counts[b] = n
	}
	for b, nxt := range s.chains {
		c.chains[b] = nxt
	}
	c.overflow.ext = append([]lvm.Request(nil), s.overflow.ext...)
	c.overflow.next = append([]int64(nil), s.overflow.next...)
	c.overflow.rr = s.overflow.rr
	return c
}

// writeSet accumulates the blocks one mutation dirties and emits them
// as sorted, coalesced single-extent requests.
type writeSet struct {
	blocks map[int64]struct{}
}

func (w *writeSet) add(b int64) {
	if w.blocks == nil {
		w.blocks = make(map[int64]struct{})
	}
	w.blocks[b] = struct{}{}
}

// reqs returns the dirtied blocks as ascending requests, adjacent
// blocks merged into one extent.
func (w *writeSet) reqs() []lvm.Request {
	if len(w.blocks) == 0 {
		return nil
	}
	bs := make([]int64, 0, len(w.blocks))
	for b := range w.blocks {
		bs = append(bs, b)
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	out := []lvm.Request{{VLBN: bs[0], Count: 1}}
	for _, b := range bs[1:] {
		if last := &out[len(out)-1]; b == last.VLBN+int64(last.Count) {
			last.Count++
		} else {
			out = append(out, lvm.Request{VLBN: b, Count: 1})
		}
	}
	return out
}

// LoadCell bulk-loads n points into a cell, honouring the fill factor:
// every chain block keeps at most capacity*fill points and the rest
// spill to overflow pages immediately (a bulk load of a skewed cell).
// Loading into a non-empty cell tops its existing chain blocks up to
// the fill budget first — never past it, so no block ever exceeds its
// physical capacity — before growing the chain. It returns the block
// extents the load dirtied.
func (s *CellStore) LoadCell(cell []int, n int) ([]lvm.Request, error) {
	if n < 0 {
		return nil, fmt.Errorf("core: negative point count")
	}
	home, err := s.locate(cell)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var w writeSet
	budget := int(float64(s.capacity) * s.fill)
	if budget < 1 {
		budget = 1
	}
	// Top up the existing chain first (a block past the budget — filled
	// by inserts — contributes no headroom).
	for b := home; n > 0; {
		if free := budget - s.counts[b]; free > 0 {
			take := n
			if take > free {
				take = free
			}
			s.counts[b] += take
			w.add(b)
			n -= take
		}
		nxt, ok := s.chains[b]
		if !ok {
			break
		}
		b = nxt
	}
	for n > 0 {
		page, tail, err := s.appendPage(home)
		if err != nil {
			return w.reqs(), err
		}
		w.add(tail) // the chain pointer written into the old tail
		take := n
		if take > budget {
			take = budget
		}
		s.counts[page] += take
		w.add(page)
		n -= take
	}
	return w.reqs(), nil
}

// Insert adds one point to a cell: into free space in the destination
// cell if any, otherwise into (possibly new) overflow pages (§4.6). It
// returns the block extents the insert dirtied — the block that
// received the point, plus the old chain tail and the fresh page when
// the chain grew.
func (s *CellStore) Insert(cell []int) ([]lvm.Request, error) {
	home, err := s.locate(cell)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var w writeSet
	for b := home; ; {
		if s.counts[b] < s.capacity {
			s.counts[b]++
			w.add(b)
			return w.reqs(), nil
		}
		nxt, ok := s.chains[b]
		if !ok {
			page, tail, err := s.appendPage(home)
			if err != nil {
				return nil, err
			}
			w.add(tail)
			nxt = page
		}
		b = nxt
	}
}

// Delete removes one point from a cell's chain, reorganizing the chain
// if its occupancy drops below the reclamation threshold. It returns
// the block extents the delete dirtied — one block usually, the whole
// pre-compaction chain when a reorganization ran.
func (s *CellStore) Delete(cell []int) ([]lvm.Request, error) {
	home, err := s.locate(cell)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Remove from the tail-most non-empty block, keeping early blocks
	// dense.
	var blocks []int64
	for b := home; ; {
		blocks = append(blocks, b)
		nxt, ok := s.chains[b]
		if !ok {
			break
		}
		b = nxt
	}
	var w writeSet
	for i := len(blocks) - 1; i >= 0; i-- {
		if s.counts[blocks[i]] > 0 {
			s.counts[blocks[i]]--
			w.add(blocks[i])
			if s.occupancy(home) < s.reclaim {
				for _, b := range s.reorganize(home) {
					w.add(b)
				}
			}
			return w.reqs(), nil
		}
	}
	return nil, fmt.Errorf("core: delete from empty cell %v", cell)
}

// appendPage allocates a fresh overflow page at the chain tail and
// returns (page, tail): the new page and the block whose chain pointer
// was rewritten to reach it. Pages come from the overflow extents
// round-robin, skipping exhausted extents.
func (s *CellStore) appendPage(home int64) (page, tail int64, err error) {
	o := &s.overflow
	alloc := -1
	for k := 0; k < len(o.ext); k++ {
		j := (o.rr + k) % len(o.ext)
		if o.next[j] < o.ext[j].VLBN+int64(o.ext[j].Count) {
			alloc = j
			break
		}
	}
	if alloc < 0 {
		return 0, 0, ErrOverflowExhausted
	}
	page = o.next[alloc]
	o.next[alloc]++
	o.rr = alloc + 1
	tail = home
	for {
		nxt, ok := s.chains[tail]
		if !ok {
			break
		}
		tail = nxt
	}
	s.chains[tail] = page
	return page, tail, nil
}

// occupancy returns the chain's live fraction of its total capacity.
func (s *CellStore) occupancy(home int64) float64 {
	points, blocks := 0, 0
	for b := home; ; {
		points += s.counts[b]
		blocks++
		nxt, ok := s.chains[b]
		if !ok {
			break
		}
		b = nxt
	}
	return float64(points) / float64(blocks*s.capacity)
}

// reorganize compacts a chain: all points move as low as possible and
// empty tail pages are dropped (their blocks leak back to the store's
// free list conceptually; the paper calls reorganization "an expensive
// operation for any mapping technique" and so do we by counting it and
// by returning every pre-compaction chain block as dirtied).
func (s *CellStore) reorganize(home int64) []int64 {
	var blocks []int64
	points := 0
	for b := home; ; {
		points += s.counts[b]
		blocks = append(blocks, b)
		nxt, ok := s.chains[b]
		if !ok {
			break
		}
		b = nxt
	}
	for _, b := range blocks {
		take := points
		if take > s.capacity {
			take = s.capacity
		}
		s.counts[b] = take
		points -= take
	}
	// Drop empty tail links.
	for i := 0; i < len(blocks)-1; i++ {
		if s.counts[blocks[i+1]] == 0 {
			delete(s.chains, blocks[i])
			for j := i + 1; j < len(blocks)-1; j++ {
				delete(s.chains, blocks[j])
			}
			for j := i + 1; j < len(blocks); j++ {
				delete(s.counts, blocks[j])
			}
			break
		}
	}
	s.reorgs++
	return blocks
}

// Reorganizations returns how many chain compactions have run.
func (s *CellStore) Reorganizations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reorgs
}

// Points returns the live point count of a cell's chain.
func (s *CellStore) Points(cell []int) (int, error) {
	home, err := s.locate(cell)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for b := home; ; {
		n += s.counts[b]
		nxt, ok := s.chains[b]
		if !ok {
			return n, nil
		}
		b = nxt
	}
}

// ReadRequests returns the I/O requests needed to fetch a cell: its
// home block plus any overflow pages. The snapshot is atomic — it
// reflects the chain as of some instant between concurrent mutations.
func (s *CellStore) ReadRequests(cell []int) ([]lvm.Request, error) {
	home, err := s.locate(cell)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	reqs := []lvm.Request{{VLBN: home, Count: 1}}
	for b := home; ; {
		nxt, ok := s.chains[b]
		if !ok {
			return reqs, nil
		}
		reqs = append(reqs, lvm.Request{VLBN: nxt, Count: 1})
		b = nxt
	}
}

// ChainLen returns the number of blocks in a cell's chain (1 = no
// overflow).
func (s *CellStore) ChainLen(cell []int) (int, error) {
	reqs, err := s.ReadRequests(cell)
	if err != nil {
		return 0, err
	}
	return len(reqs), nil
}
