package core

import (
	"fmt"

	"repro/internal/lvm"
)

// CellLocator maps a cell coordinate to its home block. Both MultiMap's
// Mapping and the linear mappings satisfy it, so CellStore works with
// any placement.
type CellLocator func(cell []int) (int64, error)

// CellStore implements the paper's online-update support (§4.6): each
// cell is loaded at a tunable fill factor; inserts that overflow a
// cell's home block go to overflow pages; underflowing cells past a
// reclamation threshold are compacted by Reorganize.
type CellStore struct {
	locate   CellLocator
	capacity int     // points a block can hold
	fill     float64 // initial fill factor at load time
	reclaim  float64 // underflow threshold triggering reorganization

	counts   map[int64]int   // live points per block (home or overflow)
	chains   map[int64]int64 // block -> its overflow page (0 = none)
	overflow struct {
		next, end int64 // free extent for overflow pages
	}
	reorgs int
}

// NewCellStore builds a store over the locator. capacity is points per
// block; fillFactor in (0,1] reserves insert headroom at load; the
// reclaim threshold in [0,1) triggers reorganization when a chain's
// occupancy falls below it. Overflow pages are carved from the free
// extent [overflowStart, overflowStart+overflowBlocks).
func NewCellStore(locate CellLocator, capacity int, fillFactor, reclaim float64,
	overflowStart, overflowBlocks int64) (*CellStore, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("core: capacity must be positive, got %d", capacity)
	}
	if fillFactor <= 0 || fillFactor > 1 {
		return nil, fmt.Errorf("core: fill factor %v outside (0,1]", fillFactor)
	}
	if reclaim < 0 || reclaim >= 1 {
		return nil, fmt.Errorf("core: reclaim threshold %v outside [0,1)", reclaim)
	}
	if overflowBlocks < 0 {
		return nil, fmt.Errorf("core: negative overflow extent")
	}
	s := &CellStore{
		locate:   locate,
		capacity: capacity,
		fill:     fillFactor,
		reclaim:  reclaim,
		counts:   make(map[int64]int),
		chains:   make(map[int64]int64),
	}
	s.overflow.next = overflowStart
	s.overflow.end = overflowStart + overflowBlocks
	return s, nil
}

// LoadCell bulk-loads n points into a cell, honouring the fill factor:
// the home block keeps at most capacity*fill points and the rest spill
// to overflow pages immediately (a bulk load of a skewed cell).
func (s *CellStore) LoadCell(cell []int, n int) error {
	if n < 0 {
		return fmt.Errorf("core: negative point count")
	}
	home, err := s.locate(cell)
	if err != nil {
		return err
	}
	budget := int(float64(s.capacity) * s.fill)
	if budget < 1 {
		budget = 1
	}
	take := n
	if take > budget {
		take = budget
	}
	s.counts[home] += take
	n -= take
	for n > 0 {
		page, err := s.appendPage(home)
		if err != nil {
			return err
		}
		take = n
		if take > budget {
			take = budget
		}
		s.counts[page] += take
		n -= take
	}
	return nil
}

// Insert adds one point to a cell: into free space in the destination
// cell if any, otherwise into (possibly new) overflow pages (§4.6).
func (s *CellStore) Insert(cell []int) error {
	home, err := s.locate(cell)
	if err != nil {
		return err
	}
	for b := home; ; {
		if s.counts[b] < s.capacity {
			s.counts[b]++
			return nil
		}
		nxt, ok := s.chains[b]
		if !ok {
			nxt, err = s.appendPage(home)
			if err != nil {
				return err
			}
		}
		b = nxt
	}
}

// Delete removes one point from a cell's chain, reorganizing the chain
// if its occupancy drops below the reclamation threshold.
func (s *CellStore) Delete(cell []int) error {
	home, err := s.locate(cell)
	if err != nil {
		return err
	}
	// Remove from the tail-most non-empty block, keeping early blocks
	// dense.
	var blocks []int64
	for b := home; ; {
		blocks = append(blocks, b)
		nxt, ok := s.chains[b]
		if !ok {
			break
		}
		b = nxt
	}
	for i := len(blocks) - 1; i >= 0; i-- {
		if s.counts[blocks[i]] > 0 {
			s.counts[blocks[i]]--
			if s.occupancy(home) < s.reclaim {
				s.reorganize(home)
			}
			return nil
		}
	}
	return fmt.Errorf("core: delete from empty cell %v", cell)
}

// appendPage allocates a fresh overflow page at the chain tail.
func (s *CellStore) appendPage(home int64) (int64, error) {
	if s.overflow.next >= s.overflow.end {
		return 0, fmt.Errorf("core: overflow extent exhausted")
	}
	page := s.overflow.next
	s.overflow.next++
	tail := home
	for {
		nxt, ok := s.chains[tail]
		if !ok {
			break
		}
		tail = nxt
	}
	s.chains[tail] = page
	return page, nil
}

// occupancy returns the chain's live fraction of its total capacity.
func (s *CellStore) occupancy(home int64) float64 {
	points, blocks := 0, 0
	for b := home; ; {
		points += s.counts[b]
		blocks++
		nxt, ok := s.chains[b]
		if !ok {
			break
		}
		b = nxt
	}
	return float64(points) / float64(blocks*s.capacity)
}

// reorganize compacts a chain: all points move as low as possible and
// empty tail pages are dropped (their blocks leak back to the store's
// free list conceptually; the paper calls reorganization "an expensive
// operation for any mapping technique" and so do we by counting it).
func (s *CellStore) reorganize(home int64) {
	var blocks []int64
	points := 0
	for b := home; ; {
		points += s.counts[b]
		blocks = append(blocks, b)
		nxt, ok := s.chains[b]
		if !ok {
			break
		}
		b = nxt
	}
	for _, b := range blocks {
		take := points
		if take > s.capacity {
			take = s.capacity
		}
		s.counts[b] = take
		points -= take
	}
	// Drop empty tail links.
	for i := 0; i < len(blocks)-1; i++ {
		if s.counts[blocks[i+1]] == 0 {
			delete(s.chains, blocks[i])
			for j := i + 1; j < len(blocks)-1; j++ {
				delete(s.chains, blocks[j])
			}
			for j := i + 1; j < len(blocks); j++ {
				delete(s.counts, blocks[j])
			}
			break
		}
	}
	s.reorgs++
}

// Reorganizations returns how many chain compactions have run.
func (s *CellStore) Reorganizations() int { return s.reorgs }

// Points returns the live point count of a cell's chain.
func (s *CellStore) Points(cell []int) (int, error) {
	home, err := s.locate(cell)
	if err != nil {
		return 0, err
	}
	n := 0
	for b := home; ; {
		n += s.counts[b]
		nxt, ok := s.chains[b]
		if !ok {
			return n, nil
		}
		b = nxt
	}
}

// ReadRequests returns the I/O requests needed to fetch a cell: its
// home block plus any overflow pages.
func (s *CellStore) ReadRequests(cell []int) ([]lvm.Request, error) {
	home, err := s.locate(cell)
	if err != nil {
		return nil, err
	}
	reqs := []lvm.Request{{VLBN: home, Count: 1}}
	for b := home; ; {
		nxt, ok := s.chains[b]
		if !ok {
			return reqs, nil
		}
		reqs = append(reqs, lvm.Request{VLBN: nxt, Count: 1})
		b = nxt
	}
}

// ChainLen returns the number of blocks in a cell's chain (1 = no
// overflow).
func (s *CellStore) ChainLen(cell []int) (int, error) {
	reqs, err := s.ReadRequests(cell)
	if err != nil {
		return 0, err
	}
	return len(reqs), nil
}
