package core

import (
	"fmt"

	"repro/internal/lvm"
)

// MapCellFig5 is the paper's Figure 5 algorithm, verbatim: it maps one
// in-cube cell coordinate to an LBN starting from the cube's first
// block, using only the LVM interface calls (GetTrackBoundaries and
// repeated GetAdjacent jumps). One step along Dimi jumps
// K1*K2*...*K(i-1) adjacent blocks.
//
// Mapping.CellVLBN computes the same function from cached chain heads;
// tests assert the two agree cell-for-cell. This function costs
// O(sum of coordinates) interface calls and exists as the executable
// specification.
func MapCellFig5(vol *lvm.Volume, base int64, spec *CubeSpec, cell []int) (int64, error) {
	if len(cell) != spec.N() {
		return 0, fmt.Errorf("core: cell has %d dims, want %d", len(cell), spec.N())
	}
	for i, x := range cell {
		if x < 0 || x >= spec.K[i] {
			return 0, fmt.Errorf("core: coordinate %d = %d outside cube [0,%d)", i, x, spec.K[i])
		}
	}
	// l := base + x0, wrapping at the track end (the track is
	// rotationally circular).
	start, next, err := vol.GetTrackBoundaries(base)
	if err != nil {
		return 0, err
	}
	t := next - start
	l := start + (base-start+int64(cell[0]))%t

	// Each outer iteration advances one step along Dimi; each step is
	// one jump of strides[i] adjacent blocks.
	step := 1
	for i := 1; i < spec.N(); i++ {
		for j := 0; j < cell[i]; j++ {
			l, err = vol.GetAdjacentK(l, step)
			if err != nil {
				return 0, fmt.Errorf("core: Fig5 step %d along dim %d: %w", j, i, err)
			}
		}
		step *= spec.K[i]
	}
	return l, nil
}
