package core

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/lvm"
)

// TestHighDimensionalMapping exercises §4.3: a disk with adjacency
// depth D supports up to 2 + log2(D) dimensions. MediumTestDisk at
// D=32 supports 7; map a 6-D dataset and check every invariant.
func TestHighDimensionalMapping(t *testing.T) {
	v, err := lvm.New(32, disk.MediumTestDisk())
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{12, 3, 3, 2, 2, 2}
	m, err := NewMapping(v, dims, MapOptions{DiskIdx: 0})
	if err != nil {
		t.Fatalf("6-D mapping: %v", err)
	}
	spec := m.Spec()
	if spec.N() != 6 {
		t.Fatalf("spec has %d dims", spec.N())
	}
	inner := 1
	for i := 1; i <= spec.N()-2; i++ {
		inner *= spec.K[i]
	}
	if inner > 32 {
		t.Fatalf("Eq.3 violated: inner product %d > D=32", inner)
	}
	// Bijectivity across all 864 cells.
	seen := map[int64]bool{}
	enumCells(dims, func(cell []int) {
		vlbn, err := m.CellVLBN(cell)
		if err != nil {
			t.Fatalf("CellVLBN(%v): %v", cell, err)
		}
		if seen[vlbn] {
			t.Fatalf("duplicate block for %v", cell)
		}
		seen[vlbn] = true
	})
	// Every in-cube step along every dimension >= 1 is an adjacency hop.
	g := v.Disk(0).Geometry()
	d := v.Disk(0)
	cell := make([]int, 6)
	for dim := 1; dim < 6; dim++ {
		for i := range cell {
			cell[i] = 0
		}
		if spec.K[dim] < 2 {
			continue
		}
		a, _ := m.CellVLBN(cell)
		cell[dim] = 1
		b, _ := m.CellVLBN(cell)
		d.Reset()
		if _, err := d.Access(disk.Request{LBN: a - v.DiskStart(0), Count: 1}); err != nil {
			t.Fatal(err)
		}
		cost, err := d.Access(disk.Request{LBN: b - v.DiskStart(0), Count: 1})
		if err != nil {
			t.Fatal(err)
		}
		if pos := cost.CommandMs + cost.SeekMs + cost.RotateMs; pos > g.CommandMs+g.SettleMs+4*g.SectorTimeMs(0) {
			t.Errorf("dim %d step costs %.3f ms: not semi-sequential", dim, pos)
		}
	}
}

// TestBeyondMaxDimsRejected: a dataset needing more dimensions than
// Eq. 5 allows must be rejected, not silently mis-mapped.
func TestBeyondMaxDimsRejected(t *testing.T) {
	v, err := lvm.New(4, disk.MediumTestDisk()) // D=4 -> Nmax=4
	if err != nil {
		t.Fatal(err)
	}
	// 6-D with middle dims forced >= 2 each needs inner product >= 16 > 4.
	// ChooseBasicCube shrinks middles to 1 instead, which still maps —
	// so the right check is that the spec honours Eq. 3.
	m, err := NewMapping(v, []int{12, 2, 2, 2, 2, 2}, MapOptions{DiskIdx: 0})
	if err != nil {
		return // rejection is acceptable
	}
	inner := 1
	for i := 1; i <= m.Spec().N()-2; i++ {
		inner *= m.Spec().K[i]
	}
	if inner > 4 {
		t.Fatalf("Eq.3 violated at D=4: inner %d", inner)
	}
}

// TestMixedDriveVolume: a volume mixing both paper drives still maps
// and declusters correctly (different zone tables per member).
func TestMixedDriveVolume(t *testing.T) {
	v, err := lvm.New(0, disk.AtlasTenKIII(), disk.CheetahThirtySixES())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMapping(v, []int{100, 50, 20}, MapOptions{DiskIdx: -1})
	if err != nil {
		t.Fatal(err)
	}
	disks := map[int]bool{}
	for ci := 0; ci < m.NumCubes(); ci++ {
		disks[m.CubeDisk(ci)] = true
	}
	if m.NumCubes() >= 2 && len(disks) != 2 {
		t.Errorf("cubes not declustered across mixed drives: %v", disks)
	}
	seen := map[int64]bool{}
	enumCells([]int{100, 50, 20}, func(cell []int) {
		vlbn, err := m.CellVLBN(cell)
		if err != nil {
			t.Fatalf("CellVLBN(%v): %v", cell, err)
		}
		if seen[vlbn] {
			t.Fatalf("duplicate block")
		}
		seen[vlbn] = true
	})
}
