// Package core implements the MultiMap mapping algorithm (§4 of the
// paper): it places an N-dimensional grid of cells onto a logical
// volume so that Dim0 runs along disk tracks (sequential access) and
// every other dimension runs along chains of adjacent blocks
// (semi-sequential access).
//
// The dataset is partitioned into basic cubes — the largest subgrids
// that can be mapped without losing spatial locality (§4.2) — which are
// then used as allocation units (§4.4). The package talks to the volume
// exclusively through the two interface calls the paper's LVM exports,
// GetAdjacent and GetTrackBoundaries, plus plain LBN arithmetic within
// zones.
package core

import "fmt"

// CubeSpec describes a basic cube: the side lengths K0..K(N-1) chosen
// under the paper's Equations 1-3 for a particular zone's track length
// T and the volume's adjacency depth D.
type CubeSpec struct {
	// K holds the basic cube's side lengths.
	K []int
	// T is the track length the cube was sized for (Eq. 1: K[0] <= T).
	T int
	// D is the adjacency depth bound (Eq. 3: K[1]*...*K[N-2] <= D).
	D int

	// strides[i] is the adjacency jump width for one step along Dimi:
	// the product K[1]*...*K[i-1] (§4.2). strides[0] is unused.
	strides []int
}

// NewCubeSpec validates side lengths against Equations 1-3 and returns
// the spec. tracksInZone bounds the cube's track footprint (Eq. 2).
func NewCubeSpec(k []int, trackLen, adjDepth, tracksInZone int) (*CubeSpec, error) {
	n := len(k)
	if n < 2 {
		return nil, fmt.Errorf("core: basic cube needs at least 2 dimensions, got %d", n)
	}
	for i, ki := range k {
		if ki <= 0 {
			return nil, fmt.Errorf("core: K[%d] = %d must be positive", i, ki)
		}
	}
	if k[0] > trackLen {
		return nil, fmt.Errorf("core: Eq.1 violated: K[0] = %d exceeds track length %d", k[0], trackLen)
	}
	inner := 1
	for i := 1; i <= n-2; i++ {
		inner *= k[i]
	}
	if inner > adjDepth {
		return nil, fmt.Errorf("core: Eq.3 violated: K[1..N-2] product %d exceeds D = %d", inner, adjDepth)
	}
	if tracks := inner * k[n-1]; tracks > tracksInZone {
		return nil, fmt.Errorf("core: Eq.2 violated: cube needs %d tracks, zone has %d", tracks, tracksInZone)
	}
	s := &CubeSpec{K: append([]int(nil), k...), T: trackLen, D: adjDepth}
	s.strides = make([]int, n)
	stride := 1
	for i := 1; i < n; i++ {
		s.strides[i] = stride
		stride *= k[i]
	}
	return s, nil
}

// N returns the number of dimensions.
func (s *CubeSpec) N() int { return len(s.K) }

// Tracks returns the cube's track footprint: K[1]*...*K[N-1].
func (s *CubeSpec) Tracks() int {
	t := 1
	for i := 1; i < len(s.K); i++ {
		t *= s.K[i]
	}
	return t
}

// Cells returns the number of cells in the cube.
func (s *CubeSpec) Cells() int64 {
	c := int64(1)
	for _, ki := range s.K {
		c *= int64(ki)
	}
	return c
}

// CubesPerTrack returns how many cubes pack side by side along a track
// of length t (§4.4: when K[0] < T, pack as many as possible).
func (s *CubeSpec) CubesPerTrack(t int) int {
	if t < s.K[0] {
		return 0
	}
	return t / s.K[0]
}

// Stride returns the adjacency jump width for one step along dim i >= 1.
func (s *CubeSpec) Stride(i int) int { return s.strides[i] }

// WastedFraction returns the fraction of track space left unmapped when
// packing cubes on tracks of length t (§4.4: (T mod K0)/T).
func (s *CubeSpec) WastedFraction(t int) float64 {
	if t < s.K[0] {
		return 1
	}
	return float64(t%s.K[0]) / float64(t)
}

// MaxDims returns the paper's Eq. 5 bound on the number of dimensions a
// disk with adjacency depth d supports: Nmax = 2 + log2(d).
func MaxDims(d int) int {
	n := 2
	for d >= 2 {
		d >>= 1
		n++
	}
	return n
}

// ChooseBasicCube picks cube side lengths for a dataset with side
// lengths dims, a zone with track length trackLen and tracksInZone
// tracks, and adjacency depth adjDepth. Following §4.4, the cube is
// made as large as possible: K0 = min(S0, T); the middle dimensions
// split the D budget in proportion to their dataset lengths; the last
// dimension takes whatever track budget remains.
func ChooseBasicCube(dims []int, trackLen, adjDepth, tracksInZone int) (*CubeSpec, error) {
	n := len(dims)
	if n < 2 {
		return nil, fmt.Errorf("core: MultiMap needs at least 2 dimensions, got %d", n)
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("core: dataset dimension %d has non-positive length %d", i, d)
		}
	}
	if trackLen < 1 || adjDepth < 1 || tracksInZone < 1 {
		return nil, fmt.Errorf("core: invalid zone parameters (T=%d, D=%d, tracks=%d)",
			trackLen, adjDepth, tracksInZone)
	}
	k := make([]int, n)
	k[0] = chooseK0(dims[0], trackLen)
	// Middle dimensions: greedily grow the dimension with the largest
	// remaining dataset-to-cube ratio while the product stays within D.
	for i := 1; i <= n-2; i++ {
		k[i] = 1
	}
	for {
		best, bestRatio := -1, 1.0
		prod := 1
		for i := 1; i <= n-2; i++ {
			prod *= k[i]
		}
		for i := 1; i <= n-2; i++ {
			if k[i] >= dims[i] {
				continue
			}
			if prod/k[i]*(k[i]+1) > adjDepth {
				continue
			}
			if ratio := float64(dims[i]) / float64(k[i]); ratio > bestRatio {
				best, bestRatio = i, ratio
			}
		}
		if best < 0 {
			break
		}
		k[best]++
	}
	// Balance the middle dimensions too: ceil(75/18) = 5 cubes either
	// way, so K=15 wastes less edge-cube space than K=18.
	for i := 1; i <= n-2; i++ {
		k[i] = balance(dims[i], k[i])
	}
	inner := 1
	for i := 1; i <= n-2; i++ {
		inner *= k[i]
	}
	// Last dimension: bounded by the zone's track budget (Eq. 2).
	k[n-1] = dims[n-1]
	if maxLast := tracksInZone / inner; k[n-1] > maxLast {
		k[n-1] = maxLast
	}
	if k[n-1] < 1 {
		return nil, fmt.Errorf("core: zone with %d tracks cannot hold any cube slice (inner product %d)",
			tracksInZone, inner)
	}
	k[n-1] = balance(dims[n-1], k[n-1])

	// Packing pass (§4.4): when K0 < T, each track holds T/K0 cube
	// slots. If the cube grid has fewer cubes than slots, track space
	// is stranded and a full scan degrades from near-sequential to one
	// settle per track. Shrink the largest non-Dim0 side (halving the
	// cube, preserving Eqs. 2-3) until enough cubes exist to fill the
	// slots — or the cube cannot shrink further.
	slots := trackLen / k[0]
	for {
		cubes := 1
		cells := int64(k[0])
		for i := 1; i < n; i++ {
			cubes *= (dims[i] + k[i] - 1) / k[i]
			cells *= int64(k[i])
		}
		if cubes >= slots {
			break
		}
		// Locality beats packing for cubes already smaller than a
		// couple of tracks: stop rather than shred a tiny dataset.
		if cells/2 < int64(trackLen) {
			break
		}
		j := -1
		for i := 1; i < n; i++ {
			if k[i] > 1 && (j < 0 || k[i] > k[j]) {
				j = i
			}
		}
		if j < 0 {
			break
		}
		k[j] = balance(dims[j], (k[j]+1)/2)
	}
	return NewCubeSpec(k, trackLen, adjDepth, tracksInZone)
}

// balance shrinks a cube side to spread a dataset dimension evenly over
// the cube count it already requires: the same number of cubes covers
// the dimension with minimal unfilled edge-cube space (§4.4).
func balance(s, k int) int {
	if k >= s {
		return s
	}
	cubes := (s + k - 1) / k
	return (s + cubes - 1) / cubes
}

// chooseK0 picks the Dim0 side. When S0 >= T the choice is forced
// (K0 = T, perfect track packing — the paper's preferred setup). When
// S0 < T, splitting Dim0 into a few cubes lets more cubes pack per
// track (§4.4), trading a rare cube jump on Dim0 beams for much better
// track utilization on scans: score candidates by packed fraction with
// a small penalty per extra cube.
func chooseK0(s0, trackLen int) int {
	if s0 >= trackLen {
		return trackLen
	}
	bestK, bestScore := s0, -1.0
	for cubes := 1; cubes <= 8 && (s0+cubes-1)/cubes >= 1; cubes++ {
		k := balance(s0, (s0+cubes-1)/cubes)
		util := float64((trackLen/k)*k) / float64(trackLen)
		score := util - 0.02*float64(cubes-1)
		if score > bestScore {
			bestK, bestScore = k, score
		}
	}
	return bestK
}
