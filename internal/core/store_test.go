package core

import (
	"fmt"
	"testing"

	"repro/internal/lvm"
)

// gridLocator is a trivial row-major locator for store tests.
func gridLocator(dims []int) CellLocator {
	return func(cell []int) (int64, error) {
		if len(cell) != len(dims) {
			return 0, fmt.Errorf("arity")
		}
		var lbn int64
		stride := int64(1)
		for i := range cell {
			if cell[i] < 0 || cell[i] >= dims[i] {
				return 0, fmt.Errorf("range")
			}
			lbn += int64(cell[i]) * stride
			stride *= int64(dims[i])
		}
		return lbn, nil
	}
}

func newTestStore(t *testing.T, capacity int, fill, reclaim float64) *CellStore {
	t.Helper()
	s, err := NewCellStore(gridLocator([]int{4, 4}), capacity, fill, reclaim,
		[]lvm.Request{{VLBN: 1000, Count: 100}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewCellStoreValidation(t *testing.T) {
	loc := gridLocator([]int{2, 2})
	cases := []struct {
		capacity       int
		fill, reclaim  float64
		overflowBlocks int
	}{
		{0, 1, 0, 10},
		{4, 0, 0, 10},
		{4, 1.5, 0, 10},
		{4, 1, 1, 10},
		{4, 1, -0.1, 10},
		{4, 1, 0, -1},
	}
	for _, tc := range cases {
		if _, err := NewCellStore(loc, tc.capacity, tc.fill, tc.reclaim,
			[]lvm.Request{{VLBN: 1000, Count: tc.overflowBlocks}}); err == nil {
			t.Errorf("invalid config %+v accepted", tc)
		}
	}
}

func TestLoadCellHonoursFillFactor(t *testing.T) {
	s := newTestStore(t, 10, 0.5, 0)
	// 12 points at fill 0.5 => 5 per block => 3 blocks.
	if _, err := s.LoadCell([]int{1, 1}, 12); err != nil {
		t.Fatal(err)
	}
	n, err := s.Points([]int{1, 1})
	if err != nil || n != 12 {
		t.Fatalf("Points=%d err=%v, want 12", n, err)
	}
	cl, _ := s.ChainLen([]int{1, 1})
	if cl != 3 {
		t.Fatalf("ChainLen=%d, want 3", cl)
	}
}

// TestLoadCellNeverOverfillsBlocks: repeated loads (and loads after
// inserts) must honour the per-block fill budget instead of stacking
// points past a block's physical capacity.
func TestLoadCellNeverOverfillsBlocks(t *testing.T) {
	s := newTestStore(t, 10, 1, 0)
	cell := []int{2, 2}
	if _, err := s.LoadCell(cell, 10); err != nil { // fills the home block
		t.Fatal(err)
	}
	if _, err := s.LoadCell(cell, 10); err != nil { // must spill, not overfill
		t.Fatal(err)
	}
	if n, _ := s.Points(cell); n != 20 {
		t.Fatalf("Points=%d, want 20", n)
	}
	if cl, _ := s.ChainLen(cell); cl != 2 {
		t.Fatalf("ChainLen=%d, want 2 (second load must overflow)", cl)
	}
	// With fill < 1, a second load tops the home block up to the budget
	// before growing the chain.
	s = newTestStore(t, 10, 0.5, 0)
	if _, err := s.LoadCell(cell, 3); err != nil { // 3 of 5 budget
		t.Fatal(err)
	}
	if _, err := s.LoadCell(cell, 4); err != nil { // 2 top up home, 2 spill
		t.Fatal(err)
	}
	if n, _ := s.Points(cell); n != 7 {
		t.Fatalf("Points=%d, want 7", n)
	}
	if cl, _ := s.ChainLen(cell); cl != 2 {
		t.Fatalf("ChainLen=%d, want 2", cl)
	}
	// A home block filled past the budget by inserts contributes no
	// headroom — the load goes straight to fresh pages.
	s = newTestStore(t, 4, 0.5, 0)
	for i := 0; i < 4; i++ { // inserts fill home to capacity 4 > budget 2
		if _, err := s.Insert(cell); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.LoadCell(cell, 2); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Points(cell); n != 6 {
		t.Fatalf("Points=%d, want 6", n)
	}
	if cl, _ := s.ChainLen(cell); cl != 2 {
		t.Fatalf("ChainLen=%d, want 2 (over-budget home must not absorb the load)", cl)
	}
}

func TestInsertUsesHeadroomThenOverflows(t *testing.T) {
	s := newTestStore(t, 10, 0.5, 0)
	if _, err := s.LoadCell([]int{0, 0}, 5); err != nil { // home at fill budget
		t.Fatal(err)
	}
	// 5 inserts fit in the home block's headroom.
	for i := 0; i < 5; i++ {
		if _, err := s.Insert([]int{0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if cl, _ := s.ChainLen([]int{0, 0}); cl != 1 {
		t.Fatalf("headroom inserts created overflow (chain %d)", cl)
	}
	// The next insert must allocate an overflow page.
	if _, err := s.Insert([]int{0, 0}); err != nil {
		t.Fatal(err)
	}
	if cl, _ := s.ChainLen([]int{0, 0}); cl != 2 {
		t.Fatalf("ChainLen=%d, want 2 after overflow", cl)
	}
	if n, _ := s.Points([]int{0, 0}); n != 11 {
		t.Fatalf("Points=%d, want 11", n)
	}
}

func TestReadRequestsIncludeOverflowPages(t *testing.T) {
	s := newTestStore(t, 2, 1, 0)
	if _, err := s.LoadCell([]int{2, 3}, 5); err != nil {
		t.Fatal(err)
	}
	reqs, err := s.ReadRequests([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("got %d requests, want 3 (home + 2 overflow)", len(reqs))
	}
	home, _ := gridLocator([]int{4, 4})([]int{2, 3})
	if reqs[0].VLBN != home {
		t.Fatalf("first request %d, want home %d", reqs[0].VLBN, home)
	}
	for _, r := range reqs[1:] {
		if r.VLBN < 1000 || r.VLBN >= 1100 {
			t.Fatalf("overflow page %d outside the overflow extent", r.VLBN)
		}
	}
}

func TestOverflowExhaustion(t *testing.T) {
	s, err := NewCellStore(gridLocator([]int{2, 2}), 1, 1, 0, []lvm.Request{{VLBN: 1000, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Insert([]int{0, 0}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if _, err := s.Insert([]int{0, 0}); err == nil {
		t.Fatal("insert past overflow extent accepted")
	}
}

// TestOverflowRoundRobinAcrossExtents: with one overflow extent per
// disk, successive overflow pages must alternate extents rather than
// filling the first one, and exhausted extents are skipped until every
// extent is full.
func TestOverflowRoundRobinAcrossExtents(t *testing.T) {
	extents := []lvm.Request{{VLBN: 1000, Count: 2}, {VLBN: 5000, Count: 3}}
	s, err := NewCellStore(gridLocator([]int{2, 2}), 1, 1, 0, extents)
	if err != nil {
		t.Fatal(err)
	}
	cell := []int{0, 0}
	// Home holds 1 point; the next 5 inserts each allocate one page.
	for i := 0; i < 6; i++ {
		if _, err := s.Insert(cell); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	reqs, err := s.ReadRequests(cell)
	if err != nil {
		t.Fatal(err)
	}
	var pages []int64
	for _, r := range reqs[1:] {
		pages = append(pages, r.VLBN)
	}
	// Round-robin: 1000, 5000, 1001, 5001, then extent 0 is exhausted
	// and the last page falls through to extent 1.
	want := []int64{1000, 5000, 1001, 5001, 5002}
	if len(pages) != len(want) {
		t.Fatalf("allocated %d pages, want %d", len(pages), len(want))
	}
	for i := range want {
		if pages[i] != want[i] {
			t.Fatalf("page %d at %d, want %d (pages %v)", i, pages[i], want[i], pages)
		}
	}
	// Both extents full: the next overflow allocation fails.
	if _, err := s.Insert(cell); err == nil {
		t.Fatal("insert past every overflow extent accepted")
	}
}

func TestDeleteAndReorganize(t *testing.T) {
	s := newTestStore(t, 4, 1, 0.4)
	if _, err := s.LoadCell([]int{3, 3}, 12); err != nil { // 3 full blocks
		t.Fatal(err)
	}
	// Delete down to 4 points: occupancy 4/12 = 0.33 < 0.4 triggers
	// reorganization, compacting to a single block.
	for i := 0; i < 8; i++ {
		if _, err := s.Delete([]int{3, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Reorganizations() == 0 {
		t.Fatal("no reorganization despite underflow")
	}
	if cl, _ := s.ChainLen([]int{3, 3}); cl != 1 {
		t.Fatalf("chain not compacted: %d blocks", cl)
	}
	if n, _ := s.Points([]int{3, 3}); n != 4 {
		t.Fatalf("Points=%d, want 4", n)
	}
}

func TestDeleteEmptyCell(t *testing.T) {
	s := newTestStore(t, 4, 1, 0)
	if _, err := s.Delete([]int{0, 1}); err == nil {
		t.Fatal("delete from empty cell accepted")
	}
}

func TestStorePreservesPointTotals(t *testing.T) {
	s := newTestStore(t, 3, 1, 0.3)
	want := 0
	for i := 0; i < 50; i++ {
		cell := []int{i % 4, (i / 4) % 4}
		if _, err := s.Insert(cell); err != nil {
			t.Fatal(err)
		}
		want++
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Delete([]int{0, 0}); err == nil {
			want--
		} else {
			break
		}
	}
	got := 0
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			n, err := s.Points([]int{x, y})
			if err != nil {
				t.Fatal(err)
			}
			got += n
		}
	}
	if got != want {
		t.Fatalf("total points %d, want %d", got, want)
	}
}

func TestStoreWithMultiMapLocator(t *testing.T) {
	// End-to-end: the store runs over a real MultiMap mapping.
	v := testVolume(t)
	m := mustMapping(t, v, []int{10, 4, 3}, MapOptions{DiskIdx: 0})
	// Overflow extent after the mapped region.
	s, err := NewCellStore(m.CellVLBN, 8, 0.75, 0.2,
		[]lvm.Request{{VLBN: v.TotalBlocks() - 500, Count: 500}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Insert([]int{i % 10, i % 4, i % 3}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.Points([]int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no points landed in cell (0,0,0)")
	}
}
