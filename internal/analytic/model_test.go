package analytic

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lvm"
	"repro/internal/mapping"
	"repro/internal/query"
)

// simBeam measures a beam query on the simulator.
func simBeam(t *testing.T, g *disk.Geometry, kind mapping.Kind, dims []int, dim int, seed int64) float64 {
	t.Helper()
	v, err := lvm.New(0, g)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.New(kind, v, dims, mapping.Options{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	e := query.NewExecutor(v, m)
	rng := rand.New(rand.NewSource(seed))
	v.Disk(0).RandomizePosition(rng)
	fixed := make([]int, len(dims))
	for i := range fixed {
		if i != dim {
			fixed[i] = rng.Intn(dims[i])
		}
	}
	st, err := e.Beam(dim, fixed)
	if err != nil {
		t.Fatal(err)
	}
	return st.TotalMs
}

func within(t *testing.T, name string, model, sim, tol float64) {
	t.Helper()
	if sim == 0 {
		t.Fatalf("%s: zero simulated time", name)
	}
	if r := model / sim; r < 1/(1+tol) || r > 1+tol {
		t.Errorf("%s: model %.1f ms vs simulated %.1f ms (ratio %.2f, tolerance %.0f%%)",
			name, model, sim, r, tol*100)
	}
}

// TestModelMatchesSimulatorBeams validates the reconstructed model
// against the simulator on the paper's synthetic 3-D chunk shape
// (scaled to keep runtime sane).
func TestModelMatchesSimulatorBeams(t *testing.T) {
	g := disk.AtlasTenKIII()
	dims := []int{130, 130, 130}
	m := New(g)

	// Cube spec as the real mapping would choose it.
	v, err := lvm.New(0, g)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := core.NewMapping(v, dims, core.MapOptions{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	spec := mm.Spec()

	for dim := 0; dim < 3; dim++ {
		var simN, simM float64
		const runs = 5
		for s := int64(0); s < runs; s++ {
			simN += simBeam(t, g, mapping.Naive, dims, dim, 100+s)
			simM += simBeam(t, g, mapping.MultiMap, dims, dim, 200+s)
		}
		simN /= runs
		simM /= runs
		modelN, err := m.NaiveBeamMs(dims, dim)
		if err != nil {
			t.Fatal(err)
		}
		modelM, err := m.MultiMapBeamMs(spec, dims, dim)
		if err != nil {
			t.Fatal(err)
		}
		within(t, "naive beam dim"+string(rune('0'+dim)), modelN, simN, 0.45)
		within(t, "multimap beam dim"+string(rune('0'+dim)), modelM, simM, 0.45)
	}
}

// TestModelMatchesSimulatorRanges validates range-query estimates.
func TestModelMatchesSimulatorRanges(t *testing.T) {
	g := disk.AtlasTenKIII()
	dims := []int{130, 130, 130}
	m := New(g)
	v, err := lvm.New(0, g)
	if err != nil {
		t.Fatal(err)
	}
	mmCore, err := core.NewMapping(v, dims, core.MapOptions{DiskIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	spec := mmCore.Spec()

	for _, q := range [][]int{{130, 13, 13}, {40, 40, 40}, {13, 13, 13}} {
		lo := []int{0, 0, 0}
		hi := []int{q[0], q[1], q[2]}

		run := func(kind mapping.Kind) float64 {
			vv, err := lvm.New(0, g)
			if err != nil {
				t.Fatal(err)
			}
			mp, err := mapping.New(kind, vv, dims, mapping.Options{DiskIdx: 0})
			if err != nil {
				t.Fatal(err)
			}
			st, err := query.NewExecutor(vv, mp).Range(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			return st.TotalMs
		}
		simN, simM := run(mapping.Naive), run(mapping.MultiMap)
		modelN, err := m.NaiveRangeMs(dims, q)
		if err != nil {
			t.Fatal(err)
		}
		modelM, err := m.MultiMapRangeMs(spec, dims, q)
		if err != nil {
			t.Fatal(err)
		}
		within(t, "naive range", modelN, simN, 0.5)
		within(t, "multimap range", modelM, simM, 0.5)

		// The model must agree with the simulator on WHO WINS.
		sp, err := m.SpeedupEstimate(spec, dims, q)
		if err != nil {
			t.Fatal(err)
		}
		simSp := simN / simM
		if (sp > 1.15) != (simSp > 1.15) && (sp < 0.87) != (simSp < 0.87) {
			t.Errorf("box %v: model speedup %.2f vs simulated %.2f disagree on the winner", q, sp, simSp)
		}
	}
}

func TestModelValidation(t *testing.T) {
	m := New(disk.AtlasTenKIII())
	dims := []int{10, 10, 10}
	if _, err := m.NaiveBeamMs(dims, 3); err == nil {
		t.Error("bad dim accepted")
	}
	if _, err := m.NaiveRangeMs(dims, []int{10, 10}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := m.NaiveRangeMs(dims, []int{11, 1, 1}); err == nil {
		t.Error("oversized box accepted")
	}
	spec, err := core.NewCubeSpec([]int{10, 5, 5}, 600, 128, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MultiMapBeamMs(spec, []int{10, 10}, 0); err == nil {
		t.Error("spec/dims arity mismatch accepted")
	}
	if _, err := m.MultiMapRangeMs(spec, dims, []int{0, 1, 1}); err == nil {
		t.Error("zero box side accepted")
	}
}

// TestModelHeadlineShape: the closed-form model alone must reproduce
// the paper's qualitative claims.
func TestModelHeadlineShape(t *testing.T) {
	g := disk.AtlasTenKIII()
	m := New(g)
	dims := []int{259, 259, 259}
	spec, err := core.ChooseBasicCube(dims, 453, 128, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Streaming parity on Dim0.
	n0, _ := m.NaiveBeamMs(dims, 0)
	m0, _ := m.MultiMapBeamMs(spec, dims, 0)
	if m0 > n0*1.5 {
		t.Errorf("model: MultiMap Dim0 beam %.1f vs Naive %.1f — should match streaming", m0, n0)
	}
	// Semi-sequential advantage off the major order.
	for dim := 1; dim < 3; dim++ {
		nv, _ := m.NaiveBeamMs(dims, dim)
		mv, _ := m.MultiMapBeamMs(spec, dims, dim)
		if mv >= nv {
			t.Errorf("model: dim %d beam MultiMap %.1f not better than Naive %.1f", dim, mv, nv)
		}
	}
	// Range speedup > 1 for a mid-selectivity cube.
	sp, err := m.SpeedupEstimate(spec, dims, []int{60, 60, 60})
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 1 {
		t.Errorf("model: range speedup %.2f, want > 1", sp)
	}
}
