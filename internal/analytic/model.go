// Package analytic reconstructs the paper's analytical I/O cost model
// (§5: "we also developed an analytical model to estimate the I/O cost
// for any query ... for Naive and MultiMap given disk parameters, the
// dimensions of the dataset, and the size of the query"; detailed in
// tech report CMU-PDL-05-102, which the ICDE paper does not reprint).
//
// The model is closed-form and deliberately first-order: it tracks the
// dominant positioning terms (command overhead, settle-bounded seeks,
// rotational phase progression at fixed strides, media transfer) and is
// validated against the simulator in this package's tests. It serves as
// an oracle for sanity-checking experiments and for capacity planning
// without running the simulator.
package analytic

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/disk"
)

// Model estimates query costs on one drive. Estimates use the outermost
// zone's track length, matching datasets allocated from the start of
// the drive.
type Model struct {
	g *disk.Geometry

	rotMs    float64
	sectorMs float64
	trackLen int
}

// New builds a model for a drive.
func New(g *disk.Geometry) *Model {
	t := g.ZoneByIndex(0).SectorsPerTrack
	return &Model{
		g:        g,
		rotMs:    g.RotationMs(),
		sectorMs: g.RotationMs() / float64(t),
		trackLen: t,
	}
}

// firstAccessMs is the expected cost of the initial positioning from an
// unknown head position: command overhead, an average seek, and half a
// rotation.
func (m *Model) firstAccessMs() float64 {
	return m.g.CommandMs + m.g.SeekAvgMs + m.rotMs/2
}

// pmod returns x mod m in [0, m).
func pmod(x, m float64) float64 {
	r := math.Mod(x, m)
	if r < 0 {
		r += m
	}
	return r
}

// stepMs is the expected cost of fetching `length` blocks whose start
// lies `strideBlocks` after the previous request's start, for a linear
// layout: the head stays put or seeks the crossed tracks, then waits
// for the platter to bring the target around.
func (m *Model) stepMs(strideBlocks int64, length int) float64 {
	tracks := int(strideBlocks / int64(m.trackLen))
	gapSectors := float64(strideBlocks % int64(m.trackLen))
	var seek float64
	if tracks > 0 {
		cyls := tracks / m.g.Surfaces
		if cyls == 0 {
			seek = m.g.HeadSwitchMs
		} else {
			seek = m.g.SeekTimeMs(cyls)
		}
	}
	// The platter advances while the command processes and the arm
	// moves; the target sits gapSectors ahead of the previous start.
	advance := m.g.CommandMs + seek
	wait := pmod(gapSectors*m.sectorMs-advance, m.rotMs)
	return m.g.CommandMs + seek + wait + float64(length)*m.sectorMs
}

// semiSeqStepMs is the cost of one adjacency hop plus the run transfer.
func (m *Model) semiSeqStepMs(length int) float64 {
	return m.g.SemiSeqStepMs(0) + float64(length-1)*m.sectorMs
}

// cubeJumpMs approximates moving between basic-cube groups: command,
// a settle-class seek (groups of one dataset are near each other), and
// half a rotation of latency.
func (m *Model) cubeJumpMs(length int) float64 {
	return m.g.CommandMs + m.g.SettleMs + m.rotMs/2 + float64(length)*m.sectorMs
}

// strides returns the row-major stride of each dimension in blocks.
func strides(dims []int) []int64 {
	out := make([]int64, len(dims))
	s := int64(1)
	for i, d := range dims {
		out[i] = s
		s *= int64(d)
	}
	return out
}

// NaiveBeamMs estimates the total I/O time of a beam query along dim
// for a Naive (Dim0-major linearized) layout.
func (m *Model) NaiveBeamMs(dims []int, dim int) (float64, error) {
	if dim < 0 || dim >= len(dims) {
		return 0, fmt.Errorf("analytic: beam dim %d out of range", dim)
	}
	n := dims[dim]
	if dim == 0 {
		// One sequential request.
		return m.firstAccessMs() + float64(n)*m.sectorMs, nil
	}
	st := strides(dims)[dim]
	return m.firstAccessMs() + m.sectorMs + float64(n-1)*m.stepMs(st, 1), nil
}

// MultiMapBeamMs estimates the total I/O time of a beam query along dim
// for a MultiMap layout with the given basic cube.
func (m *Model) MultiMapBeamMs(spec *core.CubeSpec, dims []int, dim int) (float64, error) {
	if dim < 0 || dim >= len(dims) {
		return 0, fmt.Errorf("analytic: beam dim %d out of range", dim)
	}
	if len(dims) != spec.N() {
		return 0, fmt.Errorf("analytic: dims/spec arity mismatch")
	}
	n := dims[dim]
	k := spec.K[dim]
	crossings := float64((n - 1) / k)
	if dim == 0 {
		// Sequential within each cube row. Dim0 cube crossings land on
		// the adjacent packing slot of the same track, and the storage
		// manager bridges the few padding sectors between slots, so a
		// crossing costs only that read-through.
		return m.firstAccessMs() + float64(n)*m.sectorMs + crossings*2*m.sectorMs, nil
	}
	inCube := float64(n-1) - crossings
	return m.firstAccessMs() + m.sectorMs +
		inCube*m.semiSeqStepMs(1) + crossings*m.cubeJumpMs(1), nil
}

// boxSteps counts, for each dimension >= 1, how many inter-run steps a
// row-major sweep of the box takes along that dimension.
func boxSteps(q []int) []int64 {
	// Total runs = prod(q[1:]); steps along dim i happen
	// (q_i - 1) * prod(q[i+1:]) times.
	out := make([]int64, len(q))
	suffix := int64(1)
	for i := len(q) - 1; i >= 1; i-- {
		out[i] = int64(q[i]-1) * suffix
		suffix *= int64(q[i])
	}
	return out
}

// NaiveRangeMs estimates the total I/O time of a range query fetching a
// box of q[i] cells per dimension from a Naive layout.
func (m *Model) NaiveRangeMs(dims, q []int) (float64, error) {
	if err := checkBox(dims, q); err != nil {
		return 0, err
	}
	st := strides(dims)
	steps := boxSteps(q)
	total := m.firstAccessMs() + float64(q[0])*m.sectorMs
	for i := 1; i < len(dims); i++ {
		if steps[i] == 0 {
			continue
		}
		// A step along dim i jumps stride_i blocks minus the sweep
		// already consumed by lower dimensions; the dominant term is
		// the stride itself.
		total += float64(steps[i]) * m.stepMs(st[i], q[0])
	}
	return total, nil
}

// MultiMapRangeMs estimates the total I/O time of a range query on a
// MultiMap layout.
func (m *Model) MultiMapRangeMs(spec *core.CubeSpec, dims, q []int) (float64, error) {
	if err := checkBox(dims, q); err != nil {
		return 0, err
	}
	if len(dims) != spec.N() {
		return 0, fmt.Errorf("analytic: dims/spec arity mismatch")
	}
	steps := boxSteps(q)
	total := m.firstAccessMs() + float64(q[0])*m.sectorMs
	for i := 1; i < len(dims); i++ {
		if steps[i] == 0 {
			continue
		}
		// Steps along dim i are adjacency hops except when they cross a
		// cube boundary, every K_i-th step.
		cross := float64(steps[i]) / float64(spec.K[i])
		inCube := float64(steps[i]) - cross
		total += inCube*m.semiSeqStepMs(q[0]) + cross*m.cubeJumpMs(q[0])
	}
	// Dim0 cube crossings are same-track slot hops bridged by the
	// storage manager: a couple of padding sectors per extra cube.
	if extra := (q[0] - 1) / spec.K[0]; extra > 0 {
		runs := int64(1)
		for i := 1; i < len(q); i++ {
			runs *= int64(q[i])
		}
		total += float64(runs) * float64(extra) * 2 * m.sectorMs
	}
	return total, nil
}

func checkBox(dims, q []int) error {
	if len(dims) != len(q) {
		return fmt.Errorf("analytic: box arity %d, dims arity %d", len(q), len(dims))
	}
	for i := range q {
		if q[i] < 1 || q[i] > dims[i] {
			return fmt.Errorf("analytic: box side %d on dim %d outside [1,%d]", q[i], i, dims[i])
		}
	}
	return nil
}

// SpeedupEstimate returns the modelled Naive/MultiMap total-time ratio
// for a range query — the quantity Fig. 6(b) plots per selectivity.
func (m *Model) SpeedupEstimate(spec *core.CubeSpec, dims, q []int) (float64, error) {
	nv, err := m.NaiveRangeMs(dims, q)
	if err != nil {
		return 0, err
	}
	mm, err := m.MultiMapRangeMs(spec, dims, q)
	if err != nil {
		return 0, err
	}
	return nv / mm, nil
}
